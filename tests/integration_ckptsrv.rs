//! Integration tests for the networked checkpoint store: a distributed
//! run whose workers fetch weights from `swt-ckpt-server` must produce a
//! trace bit-identical to the same run over the shared `DirStore` — with
//! healthy workers, with a worker SIGKILLed mid-run, with the server
//! restarted mid-run, and with shared-secret authentication enabled.

use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;
use swt::prelude::*;

#[path = "util/mod.rs"]
mod util;
use util::{assert_traces_identical, poll_until, temp_dir};

fn nas_config(candidates: usize, workers: usize) -> NasConfig {
    NasConfig::quick(TransferScheme::Lcs, candidates, workers, 9)
}

/// A dist config whose workers dial `url` instead of opening the DirStore.
/// `store_dir` still names a scratch dir (the coordinator creates it) but
/// no checkpoint bytes land there.
fn dist_config(store_dir: PathBuf, url: &str) -> DistConfig {
    let mut cfg = DistConfig::new(AppKind::Uno, DataScale::Quick, 11, store_dir);
    cfg.worker_exe = Some(PathBuf::from(env!("CARGO_BIN_EXE_swt")));
    cfg.store_url = Some(url.to_string());
    cfg
}

fn run_in_process(cfg: &NasConfig, store_dir: &PathBuf) -> NasTrace {
    let problem = Arc::new(AppKind::Uno.problem(DataScale::Quick, 11));
    let space = Arc::new(SearchSpace::for_app(AppKind::Uno));
    let store: Arc<dyn CheckpointStore> = Arc::new(DirStore::new(store_dir).unwrap());
    run_nas(problem, space, store, cfg)
}

fn start_server(tag: &str, secret: &str) -> (CkptServer, PathBuf) {
    let spill = temp_dir(&format!("ckptsrv_{tag}"));
    let mut cfg = ServerConfig::new("127.0.0.1:0", &spill);
    cfg.secret = secret.to_string();
    (CkptServer::start(cfg).expect("server must start"), spill)
}

#[test]
fn remote_store_run_matches_dirstore_run() {
    let cfg = nas_config(10, 2);
    let local_store = temp_dir("rs_ab_local");
    let local = run_in_process(&cfg, &local_store);

    let (server, spill) = start_server("ab", "");
    let url = format!("tcp://{}", server.addr());
    let scratch = temp_dir("rs_ab_scratch");
    let distributed =
        run_nas_dist(&cfg, &dist_config(scratch.clone(), &url)).expect("remote-store run failed");

    assert_traces_identical(&local, &distributed, "remote-store 2-worker run");

    // Every candidate checkpoint lives on the server (an un-namespaced run
    // shares the "default" bucket), and nothing leaked into the scratch dir.
    let probe = RemoteStore::connect(&url, "default", "");
    for e in &distributed.events {
        assert!(
            poll_until(Duration::from_secs(5), || probe.exists(&format!("c{}", e.id))),
            "missing checkpoint c{} on the server",
            e.id
        );
    }
    let scratch_store = DirStore::new(&scratch).unwrap();
    assert!(scratch_store.list().is_empty(), "no checkpoint may bypass the server");

    drop(server);
    for dir in [local_store, spill, scratch] {
        let _ = std::fs::remove_dir_all(dir);
    }
}

#[test]
fn killed_worker_recovers_through_the_remote_store() {
    swt_obs::enable();
    let cfg = nas_config(10, 2);
    let local_store = temp_dir("rs_kill_local");
    let local = run_in_process(&cfg, &local_store);

    let (server, spill) = start_server("kill", "");
    let url = format!("tcp://{}", server.addr());
    let scratch = temp_dir("rs_kill_scratch");
    let mut dist = dist_config(scratch.clone(), &url);
    // SIGKILL worker 1 mid-run — possibly mid-GetTensors. The server must
    // shrug off the severed session and the reassigned candidate must pull
    // its parent's weights to the surviving worker, keeping the trace
    // bit-identical.
    dist.kill_worker_after = Some(KillPlan { worker: 1, after_results: 3 });
    let distributed = run_nas_dist(&cfg, &dist).expect("degraded remote-store run failed");

    assert_traces_identical(&local, &distributed, "remote-store run with worker 1 killed");

    drop(server);
    for dir in [local_store, spill, scratch] {
        let _ = std::fs::remove_dir_all(dir);
    }
}

#[test]
fn server_restart_mid_run_is_ridden_out_by_worker_backoff() {
    swt_obs::enable();
    let cfg = nas_config(10, 2);
    let local_store = temp_dir("rs_restart_local");
    let local = run_in_process(&cfg, &local_store);

    let (mut server, spill) = start_server("restart", "");
    let addr = server.addr().to_string();
    let url = format!("tcp://{addr}");
    let scratch = temp_dir("rs_restart_scratch");

    // Bounce the server mid-run: wait until some checkpoints have been
    // put (so sessions are live and warm), stop, and restart on the same
    // port over the same spill dir. Workers retry with backoff for ~6s,
    // far longer than the outage, so the run must complete untouched.
    let reconnects_before = swt_obs::counter!("ckptsrv.client.reconnects").get();
    let bounce_spill = spill.clone();
    let bouncer = std::thread::spawn(move || {
        let probe = RemoteStore::connect(&addr, "default", "");
        assert!(
            poll_until(Duration::from_secs(30), || probe.exists("c0")),
            "run never put its first checkpoint"
        );
        drop(probe); // the probe's session dies with the server below
        server.stop();
        let cfg = ServerConfig::new(addr.as_str(), &bounce_spill);
        CkptServer::start(cfg).expect("rebind on the same port")
    });

    let distributed = run_nas_dist(&cfg, &dist_config(scratch.clone(), &url))
        .expect("run across server restart failed");
    let server2 = bouncer.join().expect("bouncer thread panicked");

    assert_traces_identical(&local, &distributed, "run across a server restart");

    drop(server2);
    let _ = reconnects_before; // workers reconnect in their own processes
    for dir in [local_store, spill, scratch] {
        let _ = std::fs::remove_dir_all(dir);
    }
}

#[test]
fn secured_run_round_trips_with_shared_secret() {
    let cfg = nas_config(6, 2);
    let local_store = temp_dir("rs_auth_local");
    let local = run_in_process(&cfg, &local_store);

    let secret = "integration-secret";
    let (server, spill) = start_server("auth", secret);
    let url = format!("tcp://{}", server.addr());
    let scratch = temp_dir("rs_auth_scratch");

    // Workers read the shared secret from the environment they inherit.
    // (Other tests in this binary only talk to open-mode servers, which
    // ignore the Hello MAC, so this process-wide setting is benign there.)
    std::env::set_var("SWT_CKPT_SECRET", secret);
    let distributed =
        run_nas_dist(&cfg, &dist_config(scratch.clone(), &url)).expect("secured run failed");

    assert_traces_identical(&local, &distributed, "secured remote-store run");
    // And the wrong secret still bounces off the same server.
    let intruder = RemoteStore::connect(&url, "default", "not-the-secret");
    assert!(intruder.load_raw("c0").is_err(), "wrong secret must not read checkpoints");

    drop(server);
    for dir in [local_store, spill, scratch] {
        let _ = std::fs::remove_dir_all(dir);
    }
}
