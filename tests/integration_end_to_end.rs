//! Integration: the full two-phase pipeline of the paper — estimation NAS,
//! top-K selection, full training with early stopping, then checkpoint
//! retention — all through the `swt` facade.

use std::sync::Arc;
use swt::prelude::*;

#[test]
fn estimate_then_fully_train_top_k() {
    let app = AppKind::Uno;
    let problem = Arc::new(app.problem(DataScale::Quick, 42));
    let space = Arc::new(SearchSpace::for_app(app));
    let store: Arc<dyn CheckpointStore> = Arc::new(MemStore::new());

    // Phase one: candidate estimation with LCS transfer.
    let cfg = NasConfig::quick(TransferScheme::Lcs, 10, 2, 7);
    let trace = run_nas(Arc::clone(&problem), Arc::clone(&space), Arc::clone(&store), &cfg);
    assert_eq!(trace.events.len(), 10);
    assert!(trace.wall_secs > 0.0);

    // Top-K selection is by estimated score, descending.
    let top = trace.top_k(3);
    assert_eq!(top.len(), 3);
    assert!(top.windows(2).all(|w| w[0].score >= w[1].score));

    // Phase two: full training of the top 3 for up to 5 epochs.
    let report = full_train_top_k(
        &problem,
        Arc::clone(&space),
        Arc::clone(&store),
        &trace,
        3,
        5,
        f64::INFINITY,
    );
    assert_eq!(report.outcomes.len(), 3);
    for o in &report.outcomes {
        assert!(o.metric_early_stop.is_finite(), "c{}", o.id);
        assert!(o.metric_full.is_finite(), "c{}", o.id);
        assert!(o.epochs_early_stop >= 1 && o.epochs_early_stop <= 5, "c{}", o.id);
        assert!(o.params > 0, "c{}", o.id);
    }
    assert!(report.mean_epochs() >= 1.0);

    // Retention: prune everything but the top-3 checkpoints.
    let keep: Vec<String> = top.iter().map(|e| format!("c{}", e.id)).collect();
    let deleted = swt::checkpoint::prune_except(store.as_ref(), &keep);
    assert_eq!(deleted, 7);
    let mut left = store.list();
    left.sort();
    let mut want = keep.clone();
    want.sort();
    assert_eq!(left, want);
}

#[test]
fn pair_experiment_runs_over_a_trace() {
    // The paper's pairwise transfer experiment (Fig. 2 machinery) end to
    // end: sample provider/receiver pairs from a finished trace and score
    // the transfer benefit.
    let app = AppKind::Uno;
    let problem = Arc::new(app.problem(DataScale::Quick, 42));
    let space = Arc::new(SearchSpace::for_app(app));
    let store: Arc<dyn CheckpointStore> = Arc::new(MemStore::new());
    let cfg = NasConfig::quick(TransferScheme::Lcs, 6, 2, 3);
    let trace = run_nas(Arc::clone(&problem), Arc::clone(&space), Arc::clone(&store), &cfg);

    let outcomes = run_pair_experiment(&problem, space, store, &trace, 8, 5, false);
    assert_eq!(outcomes.len(), 8);
    let summary = PairSummary::of(&outcomes);
    assert!((0.0..=1.0).contains(&summary.shareable));
}
