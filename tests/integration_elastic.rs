//! The elastic dist matrix — this PR's headline test. One seed, five pool
//! shapes:
//!
//! | cell            | pool history                                        |
//! |-----------------|-----------------------------------------------------|
//! | `fixed`         | 2 workers, healthy throughout                       |
//! | `late_join`     | starts with 1 of 2, a second joins mid-run          |
//! | `join_then_kill`| 2 workers, a third joins, then one is SIGKILLed     |
//! | `kill_then_join`| 2 workers, one SIGKILLed, a replacement joins       |
//! | `join_rejected` | 2 workers at `max_workers=2`; a join is refused     |
//!
//! Every cell must produce a canonical trace byte-identical to the
//! in-process baseline — elasticity and failures change *which process*
//! evaluates a candidate, never the schedule — and every cell's merged
//! cross-process metrics must be conserved: the fold of all per-worker
//! snapshots equals the per-counter sum over processes, with GEMM work,
//! checkpoint writes and provider-cache hits all visibly nonzero.

use std::path::PathBuf;
use std::sync::Arc;
use swt::prelude::*;

#[path = "util/mod.rs"]
mod util;
use util::{assert_conserved, assert_traces_identical, temp_dir};

const CANDIDATES: usize = 12;
const WINDOW: usize = 2;
const SEED: u64 = 9;
const DATA_SEED: u64 = 11;

struct Cell {
    name: &'static str,
    initial_workers: Option<usize>,
    max_workers: usize,
    join: Option<JoinPlan>,
    kill: Option<KillPlan>,
    expect_joined: usize,
    expect_rejected: usize,
    expect_lost: usize,
}

const MATRIX: &[Cell] = &[
    Cell {
        name: "fixed",
        initial_workers: None,
        max_workers: 2,
        join: None,
        kill: None,
        expect_joined: 0,
        expect_rejected: 0,
        expect_lost: 0,
    },
    Cell {
        // True scale-out: one process at launch against the 2-wide window,
        // so the pending queue has real backlog for the joiner to drain.
        name: "late_join",
        initial_workers: Some(1),
        max_workers: 2,
        join: Some(JoinPlan { after_results: 2, count: 1 }),
        kill: None,
        expect_joined: 1,
        expect_rejected: 0,
        expect_lost: 0,
    },
    Cell {
        name: "join_then_kill",
        initial_workers: None,
        max_workers: 3,
        join: Some(JoinPlan { after_results: 2, count: 1 }),
        kill: Some(KillPlan { worker: 0, after_results: 4 }),
        expect_joined: 1,
        expect_rejected: 0,
        expect_lost: 1,
    },
    Cell {
        // The kill (a SIGKILL, detected via EOF well before result 6)
        // frees a slot below max_workers, so the later join is admitted.
        name: "kill_then_join",
        initial_workers: None,
        max_workers: 2,
        join: Some(JoinPlan { after_results: 6, count: 1 }),
        kill: Some(KillPlan { worker: 1, after_results: 2 }),
        expect_joined: 1,
        expect_rejected: 0,
        expect_lost: 1,
    },
    Cell {
        name: "join_rejected",
        initial_workers: None,
        max_workers: 2,
        join: Some(JoinPlan { after_results: 2, count: 1 }),
        kill: None,
        expect_joined: 0,
        expect_rejected: 1,
        expect_lost: 0,
    },
];

/// Small population so most of the run consists of mutated children: every
/// child transfers from its parent, which means checkpoint reads through
/// the worker-side provider cache (index read fills, tensor read hits).
fn nas_config() -> NasConfig {
    NasConfig {
        population_size: 6,
        sample_size: 4,
        ..NasConfig::quick(TransferScheme::Lcs, CANDIDATES, WINDOW, SEED)
    }
}

fn run_cell(cell: &Cell) -> (NasTrace, DistRunStats, PathBuf) {
    let store = temp_dir(&format!("elastic_{}", cell.name));
    let mut dist = DistConfig::new(AppKind::Uno, DataScale::Quick, DATA_SEED, store.clone());
    dist.worker_exe = Some(PathBuf::from(env!("CARGO_BIN_EXE_swt")));
    dist.initial_workers = cell.initial_workers;
    dist.max_workers = cell.max_workers;
    dist.join_after = cell.join.clone();
    dist.kill_worker_after = cell.kill.clone();
    let (trace, stats) = run_nas_dist_with_stats(&nas_config(), &dist)
        .unwrap_or_else(|e| panic!("cell `{}` failed: {e}", cell.name));
    (trace, stats, store)
}

/// The batched-evaluation determinism cell, alongside the elastic matrix:
/// packing the dispatch window onto fewer slot threads (`batch_eval=auto`,
/// and a forced `Fixed` shape) must reproduce the unbatched canonical trace
/// byte for byte — batching changes thread shape, never the schedule or any
/// candidate's numbers.
#[test]
fn batched_evaluation_reproduces_the_unbatched_canonical_trace() {
    let problem = Arc::new(AppKind::Uno.problem(DataScale::Quick, DATA_SEED));
    let space = Arc::new(SearchSpace::for_app(AppKind::Uno));

    let run = |batch_eval: BatchEval| {
        let store: Arc<dyn CheckpointStore> = Arc::new(MemStore::new());
        let cfg = NasConfig { batch_eval, ..nas_config() };
        run_nas(Arc::clone(&problem), Arc::clone(&space), store, &cfg)
    };

    let reference = run(BatchEval::Off);
    assert!(
        reference.events.iter().any(|e| e.transfer_tensors > 0),
        "config must produce weight-transferring children or the cell is vacuous"
    );
    for batch_eval in [BatchEval::Auto, BatchEval::Fixed(WINDOW)] {
        let batched = run(batch_eval);
        assert_traces_identical(&reference, &batched, "batched");
        assert_eq!(
            batched.canonical_csv(),
            reference.canonical_csv(),
            "batch_eval={batch_eval}: canonical trace diverged from batch_eval=off"
        );
    }
}

/// Rung re-dispatch under failure: with the multi-fidelity pipeline on
/// (successive halving + zero-cost pre-filter), a SIGKILLed worker mid-run
/// must not change the canonical trace. Promotions are scheduled by the
/// backend-agnostic strategy loop, so the kill only changes which process
/// evaluates a rung — reassignment stays invisible exactly as in the
/// fidelity-off matrix.
#[test]
fn fidelity_pipeline_survives_a_worker_kill_bit_identically() {
    let cfg = NasConfig {
        fidelity: FidelityConfig::new(2, vec![1, 2], 0.25, None).expect("valid fidelity knobs"),
        ..nas_config()
    };

    // In-process reference with the pipeline on.
    let problem = Arc::new(AppKind::Uno.problem(DataScale::Quick, DATA_SEED));
    let space = Arc::new(SearchSpace::for_app(AppKind::Uno));
    let local_store = temp_dir("elastic_fidelity_local");
    let store: Arc<dyn CheckpointStore> = Arc::new(DirStore::new(&local_store).unwrap());
    let local = run_nas(problem, space, store, &cfg);
    assert!(
        local.events.iter().any(|e| e.rung > 0),
        "no candidate was promoted — the kill cell would be vacuous"
    );
    assert!(
        local.events.iter().any(|e| e.stop == StopReason::Pruned),
        "no candidate was pruned — the kill cell would be vacuous"
    );
    let prefiltered_locally =
        local.events.iter().filter(|e| e.stop == StopReason::Prefiltered).count() as u64;

    // Same config through the dist backend, one worker SIGKILLed mid-run.
    let store_dir = temp_dir("elastic_fidelity_dist");
    let mut dist = DistConfig::new(AppKind::Uno, DataScale::Quick, DATA_SEED, store_dir.clone());
    dist.worker_exe = Some(PathBuf::from(env!("CARGO_BIN_EXE_swt")));
    dist.kill_worker_after = Some(KillPlan { worker: 0, after_results: 4 });
    let (trace, stats) =
        run_nas_dist_with_stats(&cfg, &dist).expect("fidelity kill cell failed to run");

    assert_traces_identical(&local, &trace, "fidelity_kill");
    assert_eq!(
        trace.canonical_csv(),
        local.canonical_csv(),
        "fidelity-on canonical trace diverged from in-process under a worker kill"
    );
    assert_eq!(stats.lost, 1, "the injected kill must be observed");
    assert!(stats.reassigned >= 1, "a mid-evaluation kill must trigger reassignment");

    // The workers' streamed stop counters saw the same pipeline the trace
    // did (>= because a reassigned candidate may be counted on two
    // processes: once on the killed worker, once on the survivor).
    if prefiltered_locally > 0 {
        let merged = stats.workers_report();
        assert!(
            merged.counter("fidelity.stopped.prefiltered") >= prefiltered_locally,
            "worker-side prefiltered count below the trace's"
        );
    }

    let _ = std::fs::remove_dir_all(&store_dir);
    let _ = std::fs::remove_dir_all(&local_store);
}

#[test]
fn same_seed_same_trace_across_the_elastic_matrix() {
    // In-process reference: the canonical trace every cell must reproduce.
    let cfg = nas_config();
    let local_store = temp_dir("elastic_local");
    let problem = Arc::new(AppKind::Uno.problem(DataScale::Quick, DATA_SEED));
    let space = Arc::new(SearchSpace::for_app(AppKind::Uno));
    let store: Arc<dyn CheckpointStore> = Arc::new(DirStore::new(&local_store).unwrap());
    let local = run_nas(problem, space, store, &cfg);
    let reference = local.canonical_csv();
    assert!(
        local.events.iter().any(|e| e.transfer_tensors > 0),
        "config must produce weight-transferring children or the matrix is vacuous"
    );

    for cell in MATRIX {
        let (trace, stats, store) = run_cell(cell);

        // Determinism: bit-identical canonical trace, whatever the pool did.
        assert_traces_identical(&local, &trace, cell.name);
        assert_eq!(
            trace.canonical_csv(),
            reference,
            "cell `{}`: canonical trace CSV diverged from the fixed-pool reference",
            cell.name
        );

        // Elasticity bookkeeping matches the injected scenario exactly.
        assert_eq!(stats.joined, cell.expect_joined, "cell `{}`: joined", cell.name);
        assert_eq!(stats.rejected, cell.expect_rejected, "cell `{}`: rejected", cell.name);
        assert_eq!(stats.lost, cell.expect_lost, "cell `{}`: lost", cell.name);
        if cell.expect_lost > 0 {
            assert!(
                stats.reassigned >= 1,
                "cell `{}`: a mid-evaluation kill must trigger reassignment",
                cell.name
            );
        }

        // Metrics: merged totals are conserved sums over processes, and the
        // work itself is visible — training GEMMs, checkpoint writes, and
        // provider-cache hits from parent reads (index fill + tensor hit).
        assert!(
            !stats.per_worker.is_empty(),
            "cell `{}`: no worker delivered a metrics snapshot",
            cell.name
        );
        assert_conserved(&stats, cell.name);
        let merged = stats.workers_report();
        assert!(
            merged.counter_prefix_sum("tensor.gemm.") > 0,
            "cell `{}`: no GEMM work recorded across workers",
            cell.name
        );
        assert!(
            merged.counter("ckpt.dir.saved_bytes") > 0,
            "cell `{}`: no checkpoint bytes written across workers",
            cell.name
        );
        assert!(
            merged.counter("ckpt.cache.hits") > 0,
            "cell `{}`: provider cache never hit across workers",
            cell.name
        );
        assert!(
            merged.counter("nn.epochs_trained") >= CANDIDATES as u64,
            "cell `{}`: merged epoch count below the candidate budget",
            cell.name
        );

        let _ = std::fs::remove_dir_all(&store);
    }
    let _ = std::fs::remove_dir_all(&local_store);
}
