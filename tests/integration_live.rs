//! Live-telemetry integration: the streamed run view must (1) never
//! perturb the canonical NAS trace, (2) expose a seq-monotone, eventually
//! consistent `/status` while a distributed run is in flight, and (3)
//! settle on exactly the totals the merged run report shows.

use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::Duration;
use swt::prelude::*;
use swt_obs::json::Json;

#[path = "util/mod.rs"]
mod util;
use util::temp_dir;

/// These tests toggle the process-global observability switches; the cargo
/// test harness runs tests concurrently, so serialize them.
fn global_lock() -> MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

fn nas_config(candidates: usize, workers: usize) -> NasConfig {
    NasConfig::quick(TransferScheme::Lcs, candidates, workers, 9)
}

fn dist_config(store: PathBuf) -> DistConfig {
    let mut cfg = DistConfig::new(AppKind::Uno, DataScale::Quick, 11, store);
    cfg.worker_exe = Some(PathBuf::from(env!("CARGO_BIN_EXE_swt")));
    cfg
}

fn run_in_process(cfg: &NasConfig, store_dir: &PathBuf) -> NasTrace {
    let problem = Arc::new(AppKind::Uno.problem(DataScale::Quick, 11));
    let space = Arc::new(SearchSpace::for_app(AppKind::Uno));
    let store: Arc<dyn CheckpointStore> = Arc::new(DirStore::new(store_dir).unwrap());
    run_nas(problem, space, store, cfg)
}

#[test]
fn telemetry_does_not_perturb_the_canonical_trace() {
    let _lock = global_lock();
    let cfg = nas_config(8, 2);

    swt_obs::disable();
    swt_obs::timeline::disable();
    let store_off = temp_dir("tl_off");
    let off = run_in_process(&cfg, &store_off);

    swt_obs::enable();
    swt_obs::timeline::enable();
    let store_on = temp_dir("tl_on");
    let on = run_in_process(&cfg, &store_on);
    swt_obs::timeline::disable();
    swt_obs::disable();

    assert_eq!(
        off.canonical_csv(),
        on.canonical_csv(),
        "canonical trace must be bit-identical with telemetry on vs off"
    );
    let _ = std::fs::remove_dir_all(&store_off);
    let _ = std::fs::remove_dir_all(&store_on);
}

#[test]
fn live_view_tracks_a_distributed_run_and_settles_on_report_totals() {
    let _lock = global_lock();
    swt_obs::enable();
    swt_obs::timeline::enable();

    let total = 10usize;
    let cfg = nas_config(total, 2);
    let store = temp_dir("live_dist");
    let mut dist = dist_config(store.clone());
    // Make the run elastic: a third worker joins mid-run, and the view must
    // pick it up like any other.
    dist.join_after = Some(JoinPlan { after_results: 3, count: 1 });
    let live = Arc::new(LiveRunView::new());
    dist.live = Some(Arc::clone(&live));

    let server = ObsServer::start("127.0.0.1:0", Arc::clone(&live) as Arc<dyn ServeSource>)
        .expect("live server must start");
    let addr = server.addr().to_string();

    // Poll `/status` concurrently with the run, recording every per-worker
    // seq observation in order.
    let stop = Arc::new(AtomicBool::new(false));
    let poller_stop = Arc::clone(&stop);
    let poll_addr = addr.clone();
    let poller = std::thread::spawn(move || {
        let mut polls = 0usize;
        let mut seqs: Vec<(usize, u64)> = Vec::new();
        while !poller_stop.load(Ordering::Relaxed) {
            if let Ok(body) = swt_obs::serve::http_get(&poll_addr, "/status") {
                if let Ok(doc) = Json::parse(&body) {
                    polls += 1;
                    for w in doc.get("workers").and_then(Json::as_array).unwrap_or(&[]) {
                        let id = w.get("id").and_then(Json::as_u64).unwrap_or(0) as usize;
                        let seq = w.get("seq").and_then(Json::as_u64).unwrap_or(0);
                        seqs.push((id, seq));
                    }
                }
            }
            std::thread::sleep(Duration::from_millis(20));
        }
        (polls, seqs)
    });

    let (trace, stats) = run_nas_dist_with_stats(&cfg, &dist).expect("distributed run failed");
    stop.store(true, Ordering::Relaxed);
    let (polls, seqs) = poller.join().expect("poller must not panic");

    assert_eq!(trace.events.len(), total);
    assert!(polls > 0, "the status endpoint must answer while the run is live");
    // Lost frames may only make the view stale, never step it backwards:
    // every observed per-worker seq is non-decreasing.
    let mut last: HashMap<usize, u64> = HashMap::new();
    for (id, seq) in seqs {
        let prev = last.entry(id).or_insert(0);
        assert!(*prev <= seq, "worker {id} seq regressed: {} -> {seq}", *prev);
        *prev = seq;
    }

    // The settled view holds exactly the snapshots the run report merged.
    assert_eq!(
        live.workers_report(),
        stats.workers_report(),
        "final live view must equal the merged per-worker report"
    );

    // Every worker that produced results streamed the pool's span split.
    let workers = live.workers();
    assert!(
        workers.iter().filter(|w| w.frames > 0).count() >= 2,
        "both initial workers must have streamed telemetry"
    );
    for (id, w) in workers.iter().enumerate().filter(|(_, w)| w.results > 0) {
        for path in ["nas.queue_wait", "nas.eval", "nas.result_send"] {
            assert!(w.span_total_ns(path) > 0, "worker {id} never reported span {path}");
        }
    }

    // `/trace` is a loadable Chrome trace carrying worker-attributed
    // events (pid = worker + 1).
    let body = swt_obs::serve::http_get(&addr, "/trace").expect("trace fetch failed");
    let doc = Json::parse(&body).expect("trace must be valid JSON");
    let rows = doc.get("traceEvents").and_then(Json::as_array).expect("traceEvents array");
    assert!(!rows.is_empty(), "trace must carry events");
    assert!(
        rows.iter().any(|r| r.get("pid").and_then(Json::as_u64).is_some_and(|p| p >= 1)),
        "worker events must appear under their own pid"
    );

    // `/metrics` renders merged counter families plus run-level gauges.
    let metrics = swt_obs::serve::http_get(&addr, "/metrics").expect("metrics fetch failed");
    assert!(metrics.contains("swt_counter{"), "counter family missing:\n{metrics}");
    assert!(metrics.contains("swt_live_results_total"), "run-level gauges missing");

    drop(server);
    swt_obs::timeline::disable();
    swt_obs::disable();
    let _ = std::fs::remove_dir_all(&store);
}
