//! Integration: provider checkpoint → transfer plan → receiver model, over
//! real search-space candidates (the paper's Fig. 6 steps ③–⑤ in-process).

use swt::prelude::*;

/// Find a (parent, mutated child) pair whose LCS plan moves at least one
/// tensor. Mutations can change every shape, so scan a few seeds.
fn sharing_pair(space: &SearchSpace) -> (ModelSpec, ModelSpec, TransferPlan) {
    for seed in 0..32 {
        let mut rng = Rng::seed(seed);
        let parent = space.sample(&mut rng);
        let child = space.mutate(&parent, &mut rng);
        let pspec = space.materialize(&parent).unwrap();
        let cspec = space.materialize(&child).unwrap();
        let plan = TransferPlan::build(
            Matcher::Lcs,
            &ShapeSeq::of(&pspec).unwrap(),
            &ShapeSeq::of(&cspec).unwrap(),
        );
        if !plan.is_empty() {
            return (pspec, cspec, plan);
        }
    }
    panic!("no shareable parent/child pair in 32 seeds");
}

#[test]
fn lcs_transfer_copies_parent_weights_into_child() {
    let space = SearchSpace::for_app(AppKind::Uno);
    let (pspec, cspec, plan) = sharing_pair(&space);

    let provider = Model::build(&pspec, 1).unwrap();
    let ckpt = provider.state_dict();
    let mut receiver = Model::build(&cspec, 2).unwrap();
    let before = receiver.state_dict();

    let stats = apply_transfer(&plan, &ckpt, &mut receiver);
    assert_eq!(stats.tensors, plan.tensors(), "plan fully applied");
    assert!(stats.bytes > 0);
    assert_eq!(stats.skipped, 0, "plans over materialized specs never skip");

    // Every transferred receiver tensor now holds the provider's values.
    let after = receiver.state_dict();
    let lookup = |entries: &[(String, Tensor)], name: &str| {
        entries.iter().find(|(n, _)| n == name).map(|(_, t)| t.clone()).unwrap()
    };
    for (pname, rname) in plan.pairs() {
        let want = lookup(&ckpt, pname);
        let got = lookup(&after, rname);
        assert!(got.approx_eq(&want, 0.0), "{pname} -> {rname} not copied");
    }
    // And at least one untouched parameter kept the receiver's own init.
    let touched: std::collections::HashSet<&str> =
        plan.pairs().iter().map(|(_, r)| r.as_str()).collect();
    let untouched_kept = before
        .iter()
        .filter(|(n, _)| !touched.contains(n.as_str()))
        .all(|(n, t)| lookup(&after, n).approx_eq(t, 0.0));
    assert!(untouched_kept, "non-plan parameters must be untouched");
}

#[test]
fn transferred_model_still_trains_and_infers() {
    let space = SearchSpace::for_app(AppKind::Uno);
    let (pspec, cspec, plan) = sharing_pair(&space);
    let provider = Model::build(&pspec, 3).unwrap();
    let mut receiver = Model::build(&cspec, 4).unwrap();
    apply_transfer(&plan, &provider.state_dict(), &mut receiver);

    let problem = AppKind::Uno.problem(DataScale::Quick, 5);
    let trainer = Trainer::new(problem.loss, problem.metric);
    let cfg = TrainConfig {
        epochs: 1,
        batch_size: problem.batch_size,
        adam: Default::default(),
        shuffle_seed: 6,
        early_stop: None,
        convergence: None,
    };
    let report = trainer.fit(&mut receiver, &problem.train, &problem.val, &cfg);
    assert!(report.final_metric.is_finite(), "post-transfer training diverged");
}

#[test]
fn lp_and_lcs_plans_agree_on_identical_sequences() {
    // Same architecture on both sides: both matchers must transfer
    // everything (coverage 1.0), and the pairs must be the identity map.
    let space = SearchSpace::for_app(AppKind::Cifar10);
    let mut rng = Rng::seed(9);
    let spec = space.materialize(&space.sample(&mut rng)).unwrap();
    let seq = ShapeSeq::of(&spec).unwrap();
    for matcher in [Matcher::Lp, Matcher::Lcs] {
        let plan = TransferPlan::build(matcher, &seq, &seq);
        assert!((plan.coverage() - 1.0).abs() < 1e-12, "{matcher:?}");
        assert!(plan.pairs().iter().all(|(p, r)| p == r), "{matcher:?}");
    }
}
