//! Integration: failure and edge paths — corrupt checkpoints, missing ids,
//! empty transfer plans, filesystem-backed stores, and degenerate NAS
//! budgets. Nothing here may panic; errors must surface as `Result`s or
//! empty statistics.

use std::sync::Arc;
use swt::checkpoint::{decode, encode, FormatError};
use swt::prelude::*;

#[path = "util/mod.rs"]
mod util;
use util::temp_dir;

#[test]
fn missing_checkpoint_is_an_error_not_a_panic() {
    let store = MemStore::new();
    assert!(store.load("nope").is_err());
    assert!(!store.exists("nope"));
    assert_eq!(store.size_bytes("nope"), None);
    assert!(!store.delete("nope"));
}

#[test]
fn corrupt_checkpoint_bytes_fail_to_decode() {
    // Truncations and flipped header bytes of a valid checkpoint must all
    // surface as FormatError.
    let mut rng = Rng::seed(1);
    let entries = vec![("w".to_string(), Tensor::rand_normal([3, 4], 0.0, 1.0, &mut rng))];
    let good = encode(&entries);
    assert_eq!(decode(&good).unwrap().len(), 1);

    let _: FormatError = decode(&[]).unwrap_err();
    for cut in [1, good.len() / 2, good.len() - 1] {
        assert!(decode(&good[..cut]).is_err(), "truncation at {cut} must fail");
    }
    let mut flipped = good.clone();
    flipped[0] ^= 0xFF;
    assert!(decode(&flipped).is_err(), "bad magic must fail");
}

#[test]
fn dir_store_round_trips_and_survives_deletes() {
    let dir = temp_dir("dirstore");
    let store = DirStore::new(&dir).unwrap();
    let mut rng = Rng::seed(2);
    let entries = vec![
        ("a/kernel".to_string(), Tensor::rand_normal([5, 2], 0.0, 1.0, &mut rng)),
        ("a/bias".to_string(), Tensor::rand_normal([2], 0.0, 1.0, &mut rng)),
    ];
    let bytes = store.save("c0", &entries).unwrap();
    assert!(bytes > 0);
    assert_eq!(store.size_bytes("c0"), Some(bytes));

    let back = store.load("c0").unwrap();
    assert_eq!(back.len(), entries.len());
    for ((n0, t0), (n1, t1)) in entries.iter().zip(&back) {
        assert_eq!(n0, n1);
        assert!(t0.approx_eq(t1, 0.0));
    }
    assert!(store.delete("c0"));
    assert!(store.load("c0").is_err());
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn empty_transfer_plan_is_a_harmless_noop() {
    // A receiver with no shapes in common with the provider: the plan is
    // empty and applying it changes nothing.
    let provider = ShapeSeq::from_params(vec![("p0/kernel".to_string(), Shape::new([7, 7]))]);
    let receiver = ShapeSeq::from_params(vec![("r0/kernel".to_string(), Shape::new([3, 5]))]);
    let plan = TransferPlan::build(Matcher::Lcs, &provider, &receiver);
    assert!(plan.is_empty());
    assert_eq!(plan.coverage(), 0.0);

    let space = SearchSpace::for_app(AppKind::Uno);
    let mut rng = Rng::seed(3);
    let spec = space.materialize(&space.sample(&mut rng)).unwrap();
    let mut model = Model::build(&spec, 4).unwrap();
    let before = model.state_dict();
    let stats = apply_transfer(&plan, &[], &mut model);
    assert_eq!((stats.tensors, stats.bytes), (0, 0));
    let after = model.state_dict();
    for ((_, t0), (_, t1)) in before.iter().zip(&after) {
        assert!(t0.approx_eq(t1, 0.0));
    }
}

#[test]
fn transfer_plan_skips_pairs_whose_checkpoint_is_missing() {
    // A plan whose provider tensors are absent from the checkpoint must
    // count skips rather than fail.
    let space = SearchSpace::for_app(AppKind::Uno);
    let mut rng = Rng::seed(5);
    let spec = space.materialize(&space.sample(&mut rng)).unwrap();
    let seq = ShapeSeq::of(&spec).unwrap();
    let plan = TransferPlan::build(Matcher::Lcs, &seq, &seq);
    assert!(!plan.is_empty());

    let mut model = Model::build(&spec, 6).unwrap();
    let stats = apply_transfer(&plan, &[], &mut model);
    assert_eq!(stats.tensors, 0);
    assert_eq!(stats.skipped, plan.tensors());
}

#[test]
fn one_candidate_budget_still_completes() {
    let problem = Arc::new(AppKind::Uno.problem(DataScale::Quick, 11));
    let space = Arc::new(SearchSpace::for_app(AppKind::Uno));
    let store: Arc<dyn CheckpointStore> = Arc::new(MemStore::new());
    let cfg = NasConfig::quick(TransferScheme::Lcs, 1, 2, 9);
    let trace = run_nas(problem, space, store, &cfg);
    assert_eq!(trace.events.len(), 1);
    let e = &trace.events[0];
    assert!(e.parent.is_none(), "a lone first candidate has no parent");
    assert_eq!(e.transfer_tensors, 0);
    assert!(e.score.is_finite());
}
