//! Integration: the NAS runner across transfer schemes — trace invariants,
//! checkpointing of every candidate, and single-worker determinism.

use std::sync::Arc;
use swt::prelude::*;

fn quick_run(scheme: TransferScheme, workers: usize, seed: u64) -> (NasTrace, Arc<MemStore>) {
    let problem = Arc::new(AppKind::Uno.problem(DataScale::Quick, 11));
    let space = Arc::new(SearchSpace::for_app(AppKind::Uno));
    let store = Arc::new(MemStore::new());
    let cfg = NasConfig::quick(scheme, 8, workers, seed);
    let trace = run_nas(problem, space, Arc::clone(&store) as Arc<dyn CheckpointStore>, &cfg);
    (trace, store)
}

#[test]
fn every_scheme_produces_a_complete_valid_trace() {
    for scheme in TransferScheme::all() {
        let (trace, store) = quick_run(scheme, 2, 7);
        assert_eq!(trace.events.len(), 8, "{scheme:?}");
        assert_eq!(trace.scheme, scheme);

        let mut ids: Vec<u64> = trace.events.iter().map(|e| e.id).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 8, "{scheme:?}: candidate ids must be unique");

        for e in &trace.events {
            assert!(e.score.is_finite(), "{scheme:?} c{}", e.id);
            assert!(e.t_end >= e.t_start, "{scheme:?} c{}", e.id);
            assert!(e.checkpoint_bytes > 0, "{scheme:?} c{}", e.id);
            // Every candidate's checkpoint is retrievable for later transfer.
            assert!(store.exists(&format!("c{}", e.id)), "{scheme:?} c{}", e.id);
        }

        let transferred = trace.events.iter().filter(|e| e.transfer_tensors > 0).count();
        if scheme == TransferScheme::Baseline {
            assert_eq!(transferred, 0, "baseline must never transfer");
        }
    }
}

#[test]
fn lcs_scheme_actually_transfers_weights() {
    // The quick config's warmup population is 16 random candidates; a
    // 24-candidate budget guarantees 8 mutated children, and Uno is the
    // paper's most shareable app — transfer must fire.
    let problem = Arc::new(AppKind::Uno.problem(DataScale::Quick, 11));
    let space = Arc::new(SearchSpace::for_app(AppKind::Uno));
    let store: Arc<dyn CheckpointStore> = Arc::new(MemStore::new());
    let cfg = NasConfig::quick(TransferScheme::Lcs, 24, 2, 7);
    let trace = run_nas(problem, space, store, &cfg);
    let transferred: Vec<_> = trace.events.iter().filter(|e| e.transfer_tensors > 0).collect();
    assert!(!transferred.is_empty(), "no candidate received weights");
    for e in transferred {
        assert!(e.parent.is_some(), "c{} transferred without a parent", e.id);
        assert!(e.transfer_bytes > 0, "c{}", e.id);
    }
}

#[test]
fn single_worker_runs_are_deterministic() {
    let (a, _) = quick_run(TransferScheme::Lcs, 1, 13);
    let (b, _) = quick_run(TransferScheme::Lcs, 1, 13);
    let key = |t: &NasTrace| {
        let mut v: Vec<(u64, String, u64)> = t
            .events
            .iter()
            .map(|e| (e.id, format!("{:.9}", e.score), e.checkpoint_bytes))
            .collect();
        v.sort();
        v
    };
    assert_eq!(key(&a), key(&b), "same seed + 1 worker must reproduce scores");
}

#[test]
fn trace_csv_round_trip_preserves_events() {
    let (trace, _) = quick_run(TransferScheme::Lp, 1, 3);
    let dir = std::env::temp_dir().join(format!("swt_trace_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("trace.csv");
    trace.write_csv(&path).unwrap();
    let back = NasTrace::read_csv(&path).unwrap();
    std::fs::remove_dir_all(&dir).ok();

    assert_eq!(back.events.len(), trace.events.len());
    for (x, y) in trace.events.iter().zip(&back.events) {
        assert_eq!(x.id, y.id);
        assert_eq!(x.parent, y.parent);
        assert!((x.score - y.score).abs() < 1e-9, "c{}", x.id);
        assert_eq!(x.transfer_tensors, y.transfer_tensors);
    }
}

/// Run with an explicit store and namespace (the helpers above own their
/// stores; the shared-store tests below need to inject one).
fn run_with_store(
    store: Arc<dyn CheckpointStore>,
    namespace: &str,
    seed: u64,
    candidates: usize,
) -> NasTrace {
    let problem = Arc::new(AppKind::Uno.problem(DataScale::Quick, 11));
    let space = Arc::new(SearchSpace::for_app(AppKind::Uno));
    let mut cfg = NasConfig::quick(TransferScheme::Lcs, candidates, 2, seed);
    cfg.namespace = namespace.to_string();
    // No per-run cache wrapper: these tests read and write the injected
    // store directly (one of them wraps it in a single shared CachedStore).
    cfg.cache_bytes = 0;
    run_nas(problem, space, store, &cfg)
}

fn score_bits(t: &NasTrace) -> Vec<(u64, u64, usize)> {
    t.events.iter().map(|e| (e.id, e.score.to_bits(), e.transfer_tensors)).collect()
}

#[test]
fn concurrent_namespaced_runs_on_one_store_match_isolated_runs() {
    // Two searches share one store — the paper's experiments share one
    // parallel file system — under *concurrent* load. Distinct namespaces
    // must keep them fully independent: each concurrent trace must be
    // bit-identical to the same search run alone on a private store.
    let iso_a = run_with_store(Arc::new(MemStore::new()), "", 21, 24);
    let iso_b = run_with_store(Arc::new(MemStore::new()), "", 22, 24);

    let shared = Arc::new(MemStore::new());
    let (a, b) = std::thread::scope(|s| {
        let sa = Arc::clone(&shared);
        let sb = Arc::clone(&shared);
        let ha = s.spawn(move || run_with_store(sa, "expA_", 21, 24));
        let hb = s.spawn(move || run_with_store(sb, "expB_", 22, 24));
        (ha.join().unwrap(), hb.join().unwrap())
    });

    assert_eq!(score_bits(&iso_a), score_bits(&a), "run A corrupted by its neighbour");
    assert_eq!(score_bits(&iso_b), score_bits(&b), "run B corrupted by its neighbour");
    for e in &a.events {
        assert!(shared.exists(&format!("expA_c{}", e.id)));
    }
    for e in &b.events {
        assert!(shared.exists(&format!("expB_c{}", e.id)));
    }
    assert!(!shared.exists("c0"), "no run may write outside its namespace");
}

#[test]
fn shared_cached_store_stays_coherent_under_concurrent_runs() {
    // Same workload through one *shared* CachedStore: the cache's
    // generation counters must invalidate stale entries as both runs save
    // and re-read providers concurrently, so every score still matches the
    // uncached isolated baselines exactly — and the cache must actually
    // serve hits while honouring its byte budget.
    let iso_a = run_with_store(Arc::new(MemStore::new()), "", 21, 24);
    let iso_b = run_with_store(Arc::new(MemStore::new()), "", 22, 24);

    swt::obs::enable();
    let reg = swt::obs::registry::global();
    let hits_before = reg.counter("ckpt.cache.hits").get();

    let budget: u64 = 1 << 20;
    let cached = Arc::new(CachedStore::new(MemStore::new(), budget));
    let (a, b) = std::thread::scope(|s| {
        let sa: Arc<dyn CheckpointStore> = Arc::clone(&cached) as _;
        let sb: Arc<dyn CheckpointStore> = Arc::clone(&cached) as _;
        let ha = s.spawn(move || run_with_store(sa, "expA_", 21, 24));
        let hb = s.spawn(move || run_with_store(sb, "expB_", 22, 24));
        (ha.join().unwrap(), hb.join().unwrap())
    });

    assert_eq!(score_bits(&iso_a), score_bits(&a), "cached run A diverged from uncached");
    assert_eq!(score_bits(&iso_b), score_bits(&b), "cached run B diverged from uncached");
    let hits = reg.counter("ckpt.cache.hits").get() - hits_before;
    assert!(hits > 0, "provider re-reads should hit the shared cache");
    assert!(cached.resident_bytes() <= budget, "cache exceeded its byte budget");
}
