//! The autoscale dist matrix — elasticity driven by the coordinator's own
//! policy instead of injected join/kill plans. One seed, four pool shapes:
//!
//! | cell             | pool history                                        |
//! |------------------|-----------------------------------------------------|
//! | `static`         | 2 workers, no policy — the fixed-pool baseline      |
//! | `grow`           | starts at 1, policy buys a second on backlog        |
//! | `shrink_on_drain`| starts at 3 > window, policy retires the idle spare |
//! | `grow_then_kill` | starts at 1, grows, the grown worker is SIGKILLed   |
//!
//! Every cell must reproduce the in-process canonical trace byte for byte:
//! the policy only ever changes *which process* evaluates a candidate
//! (`DistBackend::capacity()` stays the constant window), never the
//! schedule. Merged cross-process counters stay conserved in every cell,
//! and the grow cell additionally proves the live `/status` view surfaces
//! the decision stream *mid-run* via `poll_until`.

use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;
use swt::obs::json::Json;
use swt::prelude::*;

#[path = "util/mod.rs"]
mod util;
use util::{assert_conserved, assert_traces_identical, poll_until, temp_dir};

const CANDIDATES: usize = 12;
const WINDOW: usize = 2;
const SEED: u64 = 9;
const DATA_SEED: u64 = 11;

/// Same shape as the elastic matrix: a small population so most children
/// transfer weights from a parent (checkpoint traffic in every cell).
fn nas_config() -> NasConfig {
    NasConfig {
        population_size: 6,
        sample_size: 4,
        ..NasConfig::quick(TransferScheme::Lcs, CANDIDATES, WINDOW, SEED)
    }
}

struct Cell {
    name: &'static str,
    initial_workers: Option<usize>,
    max_workers: usize,
    autoscale: Option<PolicyConfig>,
    kill: Option<KillPlan>,
    expect_grown_min: usize,
    expect_retired_min: usize,
    expect_lost: usize,
}

fn matrix() -> Vec<Cell> {
    vec![
        Cell {
            name: "static",
            initial_workers: None,
            max_workers: 2,
            autoscale: None,
            kill: None,
            expect_grown_min: 0,
            expect_retired_min: 0,
            expect_lost: 0,
        },
        Cell {
            // One process against the 2-wide window: the pending queue has
            // real backlog, so the policy must buy a second worker.
            name: "grow",
            initial_workers: Some(1),
            max_workers: 2,
            autoscale: Some(PolicyConfig::bounded(1, 2)),
            kill: None,
            expect_grown_min: 1,
            expect_retired_min: 0,
            expect_lost: 0,
        },
        Cell {
            // Three processes against the 2-wide window: one is always idle
            // after every flush, so once the idle patience elapses the
            // policy retires it — drain-then-close, never below the floor.
            name: "shrink_on_drain",
            initial_workers: Some(3),
            max_workers: 3,
            autoscale: Some(PolicyConfig::bounded(2, 3)),
            kill: None,
            expect_grown_min: 0,
            expect_retired_min: 1,
            expect_lost: 0,
        },
        Cell {
            // The policy grows the pool, then the *grown* worker (slot 1)
            // is SIGKILLed mid-evaluation: loss detection and candidate
            // reassignment must compose with autoscale bookkeeping.
            name: "grow_then_kill",
            initial_workers: Some(1),
            max_workers: 2,
            autoscale: Some(PolicyConfig::bounded(1, 2)),
            kill: Some(KillPlan { worker: 1, after_results: 6 }),
            expect_grown_min: 1,
            expect_retired_min: 0,
            expect_lost: 1,
        },
    ]
}

fn dist_config(cell: &Cell, store: PathBuf) -> DistConfig {
    let mut dist = DistConfig::new(AppKind::Uno, DataScale::Quick, DATA_SEED, store);
    dist.worker_exe = Some(PathBuf::from(env!("CARGO_BIN_EXE_swt")));
    dist.initial_workers = cell.initial_workers;
    dist.max_workers = cell.max_workers;
    dist.autoscale = cell.autoscale.clone();
    dist.kill_worker_after = cell.kill.clone();
    dist
}

#[test]
fn autoscale_matrix_reproduces_the_fixed_pool_trace() {
    // In-process reference: the canonical trace every cell must reproduce.
    let cfg = nas_config();
    let local_store = temp_dir("autoscale_local");
    let problem = Arc::new(AppKind::Uno.problem(DataScale::Quick, DATA_SEED));
    let space = Arc::new(SearchSpace::for_app(AppKind::Uno));
    let store: Arc<dyn CheckpointStore> = Arc::new(DirStore::new(&local_store).unwrap());
    let local = run_nas(problem, space, store, &cfg);
    let reference = local.canonical_csv();
    assert!(
        local.events.iter().any(|e| e.transfer_tensors > 0),
        "config must produce weight-transferring children or the matrix is vacuous"
    );

    for cell in matrix() {
        let store = temp_dir(&format!("autoscale_{}", cell.name));
        let dist = dist_config(&cell, store.clone());
        let (trace, stats) = run_nas_dist_with_stats(&nas_config(), &dist)
            .unwrap_or_else(|e| panic!("cell `{}` failed: {e}", cell.name));

        // Determinism: whatever the policy did to the pool, the canonical
        // trace is byte-identical to the in-process fixed-pool reference.
        assert_traces_identical(&local, &trace, cell.name);
        assert_eq!(
            trace.canonical_csv(),
            reference,
            "cell `{}`: canonical trace CSV diverged from the fixed-pool reference",
            cell.name
        );

        // Autoscale bookkeeping matches the scenario.
        assert!(
            stats.grown >= cell.expect_grown_min,
            "cell `{}`: grown {} below expected {}",
            cell.name,
            stats.grown,
            cell.expect_grown_min
        );
        assert!(
            stats.retired >= cell.expect_retired_min,
            "cell `{}`: retired {} below expected {}",
            cell.name,
            stats.retired,
            cell.expect_retired_min
        );
        assert_eq!(stats.lost, cell.expect_lost, "cell `{}`: lost", cell.name);
        if cell.autoscale.is_none() {
            assert_eq!(
                (stats.grown, stats.retired),
                (0, 0),
                "a fixed pool must never grow or retire"
            );
        }
        if cell.expect_lost > 0 {
            assert!(
                stats.reassigned >= 1,
                "cell `{}`: a mid-evaluation kill must trigger reassignment",
                cell.name
            );
        }
        // A retired worker drains first: retirement must never register as
        // a loss, and the pool never retires below the policy floor.
        if let Some(policy) = &cell.autoscale {
            assert!(
                stats.retired + policy.min_workers
                    <= cell.initial_workers.unwrap_or(WINDOW) + stats.grown,
                "cell `{}`: retired past the policy floor",
                cell.name
            );
        }

        // Metrics stay conserved across processes — including the ones a
        // retired worker streamed in its final telemetry before closing.
        assert!(
            !stats.per_worker.is_empty(),
            "cell `{}`: no worker delivered a metrics snapshot",
            cell.name
        );
        assert_conserved(&stats, cell.name);
        let merged = stats.workers_report();
        assert!(
            merged.counter_prefix_sum("tensor.gemm.") > 0,
            "cell `{}`: no GEMM work recorded across workers",
            cell.name
        );
        assert!(
            merged.counter("ckpt.dir.saved_bytes") > 0,
            "cell `{}`: no checkpoint bytes written across workers",
            cell.name
        );
        assert!(
            merged.counter("nn.epochs_trained") >= CANDIDATES as u64,
            "cell `{}`: merged epoch count below the candidate budget",
            cell.name
        );

        let _ = std::fs::remove_dir_all(&store);
    }
    let _ = std::fs::remove_dir_all(&local_store);
}

/// The decision stream is observable while the run is still going: attach a
/// `LiveRunView`, run the grow cell on a background thread, and poll the
/// same `/status` JSON the HTTP monitor serves until the autoscale object
/// reports a grow — *before* the run finishes, not from a post-mortem.
#[test]
fn live_status_surfaces_autoscale_decisions_mid_run() {
    let store = temp_dir("autoscale_live");
    let cell = Cell {
        name: "grow_live",
        initial_workers: Some(1),
        max_workers: 2,
        autoscale: Some(PolicyConfig::bounded(1, 2)),
        kill: None,
        expect_grown_min: 1,
        expect_retired_min: 0,
        expect_lost: 0,
    };
    let mut dist = dist_config(&cell, store.clone());
    let live = Arc::new(LiveRunView::new());
    dist.live = Some(Arc::clone(&live));

    let runner = std::thread::spawn(move || run_nas_dist_with_stats(&nas_config(), &dist));

    let grow_visible = poll_until(Duration::from_secs(120), || {
        let status = match Json::parse(&ServeSource::status_json(live.as_ref())) {
            Ok(s) => s,
            Err(_) => return false,
        };
        let auto = match status.get("autoscale") {
            Some(a) => a,
            None => return false,
        };
        auto.get("enabled") == Some(&Json::Bool(true))
            && auto.get("grows").and_then(Json::as_f64).unwrap_or(0.0) >= 1.0
    });

    let (trace, stats) = runner.join().expect("runner thread panicked").expect("grow cell failed");
    assert!(grow_visible, "no autoscale grow surfaced in /status while the run was live");
    assert!(stats.grown >= 1, "the policy never actually grew the pool");
    assert_eq!(trace.events.len(), CANDIDATES, "run must still complete every candidate");

    // The decision log itself is part of the status payload.
    let status = Json::parse(&ServeSource::status_json(live.as_ref()))
        .expect("final /status must stay parseable");
    let log = status
        .get("autoscale")
        .and_then(|a| a.get("log"))
        .and_then(Json::as_array)
        .expect("autoscale.log missing from /status");
    assert!(!log.is_empty(), "decision log empty despite a recorded grow");

    let _ = std::fs::remove_dir_all(&store);
}
