//! Integration tests for `swt-dist`: multi-process runs must be
//! bit-identical to the in-process thread pool — with healthy workers and
//! with a worker SIGKILLed mid-run.
//!
//! The worker binary comes from `CARGO_BIN_EXE_swt` (cargo builds package
//! bins for integration tests), passed explicitly so the tests are immune
//! to stale binaries elsewhere on the path.

use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;
use swt::prelude::*;

#[path = "util/mod.rs"]
mod util;
use util::{assert_traces_identical, poll_until, temp_dir};

fn nas_config(candidates: usize, workers: usize) -> NasConfig {
    NasConfig::quick(TransferScheme::Lcs, candidates, workers, 9)
}

fn dist_config(store: PathBuf) -> DistConfig {
    let mut cfg = DistConfig::new(AppKind::Uno, DataScale::Quick, 11, store);
    cfg.worker_exe = Some(PathBuf::from(env!("CARGO_BIN_EXE_swt")));
    cfg
}

fn run_in_process(cfg: &NasConfig, store_dir: &PathBuf) -> NasTrace {
    let problem = Arc::new(AppKind::Uno.problem(DataScale::Quick, 11));
    let space = Arc::new(SearchSpace::for_app(AppKind::Uno));
    let store: Arc<dyn CheckpointStore> = Arc::new(DirStore::new(store_dir).unwrap());
    run_nas(problem, space, store, cfg)
}

#[test]
fn distributed_run_matches_in_process_run() {
    let cfg = nas_config(10, 2);
    let local_store = temp_dir("ab_local");
    let local = run_in_process(&cfg, &local_store);

    let dist_store = temp_dir("ab_dist");
    let dist = dist_config(dist_store.clone());
    let distributed = run_nas_dist(&cfg, &dist).expect("distributed run failed");

    assert_traces_identical(&local, &distributed, "healthy 2-worker run");
    // Workers shared one DirStore: every candidate checkpoint is on disk.
    // Checkpoints are written by *worker* processes, so wait on a deadline
    // rather than asserting instantly.
    let store = DirStore::new(&dist_store).unwrap();
    for e in &distributed.events {
        assert!(
            poll_until(Duration::from_secs(5), || store.exists(&format!("c{}", e.id))),
            "missing checkpoint c{}",
            e.id
        );
    }
    let _ = std::fs::remove_dir_all(&local_store);
    let _ = std::fs::remove_dir_all(&dist_store);
}

#[test]
fn killed_worker_is_detected_and_its_candidate_reassigned() {
    swt_obs::enable();
    let cfg = nas_config(10, 2);
    let local_store = temp_dir("kill_local");
    let local = run_in_process(&cfg, &local_store);

    let reassigned_before = swt_obs::registry::global().counter("dist.reassigned").get();
    let lost_before = swt_obs::registry::global().counter("dist.workers_lost").get();

    let dist_store = temp_dir("kill_dist");
    let mut dist = dist_config(dist_store.clone());
    // SIGKILL worker 1 while the run is mid-flight: with a 2-wide window,
    // worker 1 holds an in-flight candidate at that point, so the
    // reassignment path must run for the trace to complete.
    dist.kill_worker_after = Some(KillPlan { worker: 1, after_results: 3 });
    let distributed = run_nas_dist(&cfg, &dist).expect("degraded run failed");

    assert_traces_identical(&local, &distributed, "run with worker 1 killed");
    let lost = swt_obs::registry::global().counter("dist.workers_lost").get() - lost_before;
    let reassigned =
        swt_obs::registry::global().counter("dist.reassigned").get() - reassigned_before;
    assert_eq!(lost, 1, "exactly one worker was killed");
    assert!(reassigned >= 1, "the killed worker's in-flight candidate must be reassigned");
    let _ = std::fs::remove_dir_all(&local_store);
    let _ = std::fs::remove_dir_all(&dist_store);
}

#[test]
fn single_worker_distributed_run_completes() {
    // Degenerate pool: the coordinator must work with a 1-wide window too
    // (this is also the post-failure steady state of a 2-worker run).
    let cfg = nas_config(6, 1);
    let local_store = temp_dir("one_local");
    let local = run_in_process(&cfg, &local_store);
    let dist_store = temp_dir("one_dist");
    let dist = dist_config(dist_store.clone());
    let distributed = run_nas_dist(&cfg, &dist).expect("single-worker run failed");
    assert_traces_identical(&local, &distributed, "single-worker run");
    let _ = std::fs::remove_dir_all(&local_store);
    let _ = std::fs::remove_dir_all(&dist_store);
}

#[test]
fn two_runs_share_one_store_via_namespaces() {
    // Two distributed runs share one DirStore root — the paper's parallel
    // file system shared by concurrent experiments — and must not
    // interfere, because their checkpoint ids live in distinct namespaces.
    let shared_store = temp_dir("shared");
    let isolated_store = temp_dir("isolated");

    let mut cfg_a = nas_config(6, 2);
    cfg_a.namespace = "expA_".into();
    let mut cfg_b = nas_config(6, 2);
    cfg_b.namespace = "expB_".into();
    cfg_b.seed = 10; // a different search so collisions would actually corrupt

    // Baselines in isolation.
    let mut iso_cfg_a = cfg_a.clone();
    iso_cfg_a.namespace = String::new();
    let isolated_a = run_in_process(&iso_cfg_a, &isolated_store);

    let a = run_nas_dist(&cfg_a, &dist_config(shared_store.clone())).expect("run A failed");
    let b = run_nas_dist(&cfg_b, &dist_config(shared_store.clone())).expect("run B failed");

    assert_traces_identical(&isolated_a, &a, "shared-store run A vs isolated baseline");
    let store = DirStore::new(&shared_store).unwrap();
    for e in a.events.iter() {
        assert!(poll_until(Duration::from_secs(5), || store.exists(&format!("expA_c{}", e.id))));
    }
    for e in b.events.iter() {
        assert!(poll_until(Duration::from_secs(5), || store.exists(&format!("expB_c{}", e.id))));
    }
    assert!(!store.exists("c0"), "no run may write outside its namespace");
    let _ = std::fs::remove_dir_all(&shared_store);
    let _ = std::fs::remove_dir_all(&isolated_store);
}
