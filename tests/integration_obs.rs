//! Integration: the observability layer against a real NAS run.
//!
//! One test function on purpose: swt-obs aggregates into a global registry,
//! and this file's `[[test]]` target gives it a process of its own, so no
//! other integration test can race the enable/reset/capture sequence.

use std::sync::Arc;
use swt::prelude::*;

/// A quick NAS run with instrumentation enabled must produce a run report
/// whose per-worker span breakdown (queue wait / eval, with train, transfer
/// and save beneath) accounts for the trace's wall time, and the report must
/// survive a JSON round trip unchanged.
#[test]
fn run_report_accounts_for_worker_time() {
    swt::obs::enable();
    swt::obs::reset();

    // 24 candidates over a 16-member warm-up population: the last 8 are
    // evolution children, so LCS transfer is guaranteed to fire.
    let problem = Arc::new(AppKind::Uno.problem(DataScale::Quick, 11));
    let space = Arc::new(SearchSpace::for_app(AppKind::Uno));
    let store: Arc<dyn CheckpointStore> = Arc::new(MemStore::new());
    let cfg = NasConfig::quick(TransferScheme::Lcs, 24, 2, 7);
    let trace = run_nas(problem, space, store, &cfg);
    let report = RunReport::capture().with_meta("scheme", "LCS");
    swt::obs::disable();
    swt::obs::reset();

    // Every worker shows up with its own breakdown.
    assert_eq!(report.workers(), vec![0, 1]);

    // A worker thread's life is recv (nas.queue_wait), evaluation (nas.eval)
    // and the result handoff (nas.result_send); together they must cover the
    // run's wall clock.
    for &w in &[0usize, 1] {
        let wait = report.worker_span_secs(Some(w), "nas.queue_wait");
        let eval = report.worker_span_secs(Some(w), "nas.eval");
        let send = report.worker_span_secs(Some(w), "nas.result_send");
        assert!(eval > 0.0, "worker {w} evaluated nothing");
        let covered = wait + eval + send;
        let rel = (covered - trace.wall_secs).abs() / trace.wall_secs;
        assert!(
            rel < 0.10,
            "worker {w}: spans cover {covered:.4}s of wall {:.4}s ({:.1}% off)",
            trace.wall_secs,
            rel * 100.0
        );
    }

    // The evaluation phases nest under nas.eval, and each did real work.
    for path in
        ["nas.eval.train", "nas.eval.train.epoch.batch", "nas.eval.transfer", "nas.eval.save"]
    {
        assert!(report.span_total_secs(path) > 0.0, "span {path} recorded no time");
    }
    // Train time dominates transfer and save on the hot path.
    assert!(report.span_total_secs("nas.eval.train") > report.span_total_secs("nas.eval.save"));

    // Counters line up with the trace.
    assert_eq!(report.counter("nas.candidates_evaluated"), 24);
    assert_eq!(report.counter("nas.candidates_dispatched"), 24);
    assert!(report.counter("nn.batches_trained") > 0);
    assert!(report.counter("nas.transfer.tensors") > 0, "LCS children must transfer");
    let traced_bytes: u64 = trace.events.iter().map(|e| e.checkpoint_bytes).sum();
    assert_eq!(report.counter("nas.checkpoint.bytes"), traced_bytes);

    // report.json round trip: exact (f64 Display is shortest-round-trip).
    let path = std::env::temp_dir().join(format!("swt_obs_it_{}.report.json", std::process::id()));
    report.write_json(&path).unwrap();
    let back = RunReport::read_json(&path).unwrap();
    std::fs::remove_file(&path).unwrap();
    assert_eq!(back, report);
}
