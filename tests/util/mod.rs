//! Shared infrastructure for the integration tests.
//!
//! Integration-test binaries are separate crates; each `#[path]`-includes
//! this module, so every helper is `pub` and some are unused in any single
//! binary (hence the `dead_code` allowance).

#![allow(dead_code)]

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};
use swt::prelude::*;

static DIR_SEQ: AtomicU64 = AtomicU64::new(0);

/// A temp dir unique across processes (pid) and across calls within this
/// process (counter), so concurrent test binaries and repeated tests in one
/// binary can never collide on a path.
pub fn temp_dir(tag: &str) -> PathBuf {
    let seq = DIR_SEQ.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!("swt_{tag}_{}_{seq}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Poll `cond` until it returns true or `timeout` elapses — the
/// deadline-based replacement for fixed sleeps when a test waits on state
/// produced by another process (worker checkpoints on the shared store,
/// reaped children, …). Returns whether the condition was met, so callers
/// assert with their own message.
pub fn poll_until(timeout: Duration, mut cond: impl FnMut() -> bool) -> bool {
    let deadline = Instant::now() + timeout;
    loop {
        if cond() {
            return true;
        }
        if Instant::now() > deadline {
            // One last look: the condition may have become true while the
            // poller was asleep right at the deadline.
            return cond();
        }
        std::thread::sleep(Duration::from_millis(10));
    }
}

/// Conservation: folding every per-worker snapshot through
/// `RunReport::merge` must equal the plain per-counter (and per-histogram)
/// sum over processes — report.json totals for a multi-process run are
/// produced exactly this way.
pub fn assert_conserved(stats: &DistRunStats, what: &str) {
    let merged = stats.workers_report();
    let mut names: Vec<&str> = Vec::new();
    for (_, m) in &stats.per_worker {
        for c in &m.counters {
            if !names.contains(&c.name.as_str()) {
                names.push(&c.name);
            }
        }
    }
    assert!(!names.is_empty(), "{what}: workers reported no counters at all");
    for name in names {
        let sum: u64 = stats.per_worker.iter().map(|(_, m)| m.counter(name)).sum();
        assert_eq!(merged.counter(name), sum, "{what}: counter `{name}` not conserved");
    }
    for h in &merged.histograms {
        let (mut count, mut sum) = (0u64, 0u64);
        for (_, m) in &stats.per_worker {
            if let Some(wh) = m.histograms.iter().find(|x| x.name == h.name) {
                count += wh.count;
                sum += wh.sum;
            }
        }
        assert_eq!((h.count, h.sum), (count, sum), "{what}: histogram `{}` not conserved", h.name);
    }
}

/// The A/B identity contract: everything the strategy and the paper's
/// analyses consume must match bit-for-bit.
pub fn assert_traces_identical(a: &NasTrace, b: &NasTrace, what: &str) {
    assert_eq!(a.events.len(), b.events.len(), "{what}: event counts differ");
    for (x, y) in a.events.iter().zip(&b.events) {
        assert_eq!(x.id, y.id, "{what}: id order diverged");
        assert_eq!(x.arch, y.arch, "{what}: arch of c{} diverged", x.id);
        assert_eq!(x.parent, y.parent, "{what}: parent of c{} diverged", x.id);
        assert_eq!(
            x.score.to_bits(),
            y.score.to_bits(),
            "{what}: score of c{} diverged ({} vs {})",
            x.id,
            x.score,
            y.score
        );
        assert_eq!(
            x.transfer_tensors, y.transfer_tensors,
            "{what}: transfer tensors of c{} diverged",
            x.id
        );
        assert_eq!(
            x.transfer_bytes, y.transfer_bytes,
            "{what}: transfer bytes of c{} diverged",
            x.id
        );
    }
    let top_a: Vec<u64> = a.top_k(5).iter().map(|e| e.id).collect();
    let top_b: Vec<u64> = b.top_k(5).iter().map(|e| e.id).collect();
    assert_eq!(top_a, top_b, "{what}: top-K diverged");
}
