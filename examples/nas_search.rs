//! Scheme comparison: run the same NAS budget under Baseline, LP and LCS on
//! one application and compare discovery curves and top models — a miniature
//! of the paper's Figs. 7/8.
//!
//! ```sh
//! cargo run --release -p swt --example nas_search [cifar10|mnist|nt3|uno]
//! ```

use std::sync::Arc;
use swt::prelude::*;

fn main() {
    let app = match std::env::args().nth(1).as_deref() {
        Some("cifar10") => AppKind::Cifar10,
        Some("mnist") => AppKind::Mnist,
        Some("nt3") => AppKind::Nt3,
        _ => AppKind::Uno,
    };
    let candidates = 60;
    println!("app: {}, {} candidates per scheme\n", app.name(), candidates);

    let problem = Arc::new(app.problem(DataScale::Quick, 42));
    let space = Arc::new(SearchSpace::for_app(app));

    let mut results = Vec::new();
    for scheme in TransferScheme::all() {
        let store: Arc<dyn CheckpointStore> = Arc::new(MemStore::new());
        let cfg = NasConfig::quick(scheme, candidates, 2, 7);
        let trace = run_nas(Arc::clone(&problem), Arc::clone(&space), Arc::clone(&store), &cfg);

        // Best-so-far curve over completion order (Fig. 7 in miniature).
        let mut best = f64::NEG_INFINITY;
        let curve: Vec<f64> = trace
            .by_completion()
            .iter()
            .map(|e| {
                best = best.max(e.score);
                best
            })
            .collect();
        let quartiles: Vec<String> =
            [candidates / 4, candidates / 2, 3 * candidates / 4, candidates - 1]
                .iter()
                .map(|&i| format!("{:.3}", curve[i]))
                .collect();
        println!(
            "{:<8} best-so-far at 25/50/75/100% of budget: {}",
            scheme.name(),
            quartiles.join(" / ")
        );

        // Phase two on the top-5.
        let report =
            full_train_top_k(&problem, Arc::clone(&space), store, &trace, 5, 20, f64::INFINITY);
        let metrics: Vec<f64> = report.metrics_early();
        results.push((scheme, report.mean_epochs(), Summary::of(&metrics)));
    }

    println!("\nfull training of each scheme's top-5 (early stopping):");
    for (scheme, epochs, metrics) in &results {
        println!(
            "{:<8} mean epochs to converge {:>5.2}   final metric {}",
            scheme.name(),
            epochs,
            metrics.pm(3)
        );
    }
    let baseline = results[0].1;
    for (scheme, epochs, _) in &results[1..] {
        println!(
            "{:<8} full-training speedup vs baseline: {:.2}x",
            scheme.name(),
            baseline / epochs
        );
    }
}
