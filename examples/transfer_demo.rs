//! Transfer demo: build two structurally similar CNNs by hand, inspect
//! their shape sequences, compare LP vs LCS plans (the paper's Fig. 3
//! scenario), and measure the convergence effect of the transfer.
//!
//! ```sh
//! cargo run --release -p swt --example transfer_demo
//! ```

use swt::nn::AdamConfig;
use swt::prelude::*;

/// A small CNN; `extra_conv` inserts one extra convolution in the middle,
/// exactly like the receiver of the paper's Fig. 3.
fn cnn(extra_conv: bool) -> ModelSpec {
    use swt::tensor::Padding;
    let mut ops = vec![
        LayerSpec::Conv2D { filters: 8, kernel: 3, padding: Padding::Same, l2: 0.0 },
        LayerSpec::Activation(Activation::Relu),
        LayerSpec::MaxPool2D { size: 2, stride: 2 },
    ];
    if extra_conv {
        ops.push(LayerSpec::Conv2D { filters: 8, kernel: 3, padding: Padding::Same, l2: 0.0 });
        ops.push(LayerSpec::Activation(Activation::Relu));
    }
    ops.extend([LayerSpec::Flatten, LayerSpec::Dense { units: 10, activation: None }]);
    ModelSpec::chain(vec![10, 10, 1], ops).unwrap()
}

fn main() {
    let provider_spec = cnn(false);
    let receiver_spec = cnn(true);

    // Shape sequences (Fig. 3): one element per parameterised layer.
    let pseq = ShapeSeq::of(&provider_spec).unwrap();
    let rseq = ShapeSeq::of(&receiver_spec).unwrap();
    println!("provider shape sequence:");
    for e in pseq.entries() {
        println!("  {:<12} {}", e.layer, e.primary);
    }
    println!("receiver shape sequence (one inserted conv):");
    for e in rseq.entries() {
        println!("  {:<12} {}", e.layer, e.primary);
    }

    // LP stops at the insertion; LCS matches across it.
    let lp = TransferPlan::build(Matcher::Lp, &pseq, &rseq);
    let lcs = TransferPlan::build(Matcher::Lcs, &pseq, &rseq);
    println!(
        "\nLP : {} layers, {} tensors, {} bytes",
        lp.matched_layers(),
        lp.tensors(),
        lp.bytes()
    );
    println!(
        "LCS: {} layers, {} tensors, {} bytes  (>= LP, Section IV-A)",
        lcs.matched_layers(),
        lcs.tensors(),
        lcs.bytes()
    );
    for (p, r) in lcs.layers() {
        println!("  {p} -> {r}");
    }

    // Train the provider briefly, then compare the receiver's one-epoch
    // score with and without the transfer (the Fig. 4 pair experiment in
    // miniature).
    let (train, val) = swt::data::image_classification(512, 128, 10, 10, 1, 10, 0.5, 99);
    let trainer = Trainer::new(Loss::CategoricalCrossEntropy, Metric::Accuracy);
    let cfg = TrainConfig {
        epochs: 1,
        batch_size: 64,
        adam: AdamConfig { lr: 0.01, ..Default::default() },
        shuffle_seed: 1,
        early_stop: None,
        convergence: None,
    };

    let mut provider = Model::build(&provider_spec, 1).unwrap();
    let mut warm = cfg.clone();
    warm.epochs = 3;
    let prov_report = trainer.fit(&mut provider, &train, &val, &warm);
    println!("\nprovider trained 3 epochs -> accuracy {:.3}", prov_report.final_metric);

    let mut cold = Model::build(&receiver_spec, 2).unwrap();
    let cold_report = trainer.fit(&mut cold, &train, &val, &cfg);

    let mut transferred = Model::build(&receiver_spec, 2).unwrap();
    let stats = apply_transfer(&lcs, &provider.state_dict(), &mut transferred);
    let warm_report = trainer.fit(&mut transferred, &train, &val, &cfg);

    println!(
        "receiver after 1 epoch:  random init {:.3}   LCS transfer {:.3}  ({} tensors moved)",
        cold_report.final_metric, warm_report.final_metric, stats.tensors
    );
    if warm_report.final_metric > cold_report.final_metric {
        println!("-> a positive pair: transfer accelerated convergence (Section IV-B)");
    } else {
        println!("-> a negative pair this time — transfer is not guaranteed to help");
    }
}
