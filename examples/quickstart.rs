//! Quickstart: run a small NAS with selective weight transfer and print the
//! best discovered architectures.
//!
//! ```sh
//! cargo run --release -p swt --example quickstart
//! ```

use std::sync::Arc;
use swt::prelude::*;

fn main() {
    // 1. Pick an application. `AppKind` bundles the synthetic dataset, the
    //    loss/metric and the paper's per-app hyperparameters (Table I).
    let app = AppKind::Uno;
    let problem = Arc::new(app.problem(DataScale::Quick, 42));
    println!(
        "{}: {} train / {} val samples, objective {:?}",
        app.name(),
        problem.train.len(),
        problem.val.len(),
        problem.metric
    );

    // 2. The search space (Section VII-A) and a checkpoint store.
    let space = Arc::new(SearchSpace::for_app(app));
    println!(
        "search space: {} variable nodes, ~{:.2e} candidate models",
        space.num_nodes(),
        space.size()
    );
    let store: Arc<dyn CheckpointStore> = Arc::new(MemStore::new());

    // 3. Run regularized evolution with LCS weight transfer (Algorithm 1):
    //    every mutated child is initialised from its parent's checkpoint.
    let cfg = NasConfig::quick(TransferScheme::Lcs, 40, 2, 7);
    let trace = run_nas(Arc::clone(&problem), Arc::clone(&space), Arc::clone(&store), &cfg);
    println!(
        "\nevaluated {} candidates in {:.1}s ({} transferred weights from a parent)",
        trace.events.len(),
        trace.wall_secs,
        trace.events.iter().filter(|e| e.transfer_tensors > 0).count()
    );

    // 4. Inspect the top-5 candidates by estimated score.
    println!("\ntop-5 candidates by one-epoch estimate:");
    for e in trace.top_k(5) {
        println!(
            "  c{:<3} score {:.4}  arch {}  (parent: {})",
            e.id,
            e.score,
            e.arch,
            e.parent.map(|p| format!("c{p}")).unwrap_or_else(|| "none".into()),
        );
    }

    // 5. Phase two: fully train the top-3 with the paper's early stopping.
    let report = full_train_top_k(&problem, space, store, &trace, 3, 20, f64::INFINITY);
    println!("\nfull training of the top-3 (early stopping, patience 2):");
    for o in &report.outcomes {
        println!(
            "  c{:<3} estimate {:.4} -> converged {:.4} in {} epochs ({} params)",
            o.id, o.estimate, o.metric_early_stop, o.epochs_early_stop, o.params
        );
    }
}
