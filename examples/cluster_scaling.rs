//! Cluster scaling: explore how the candidate-estimation phase scales with
//! GPU count and how checkpoint I/O erodes scalability for short-training
//! applications — the phenomenon behind the paper's Fig. 10 NT3 result.
//!
//! ```sh
//! cargo run --release -p swt --example cluster_scaling
//! ```

use swt::prelude::*;

fn tasks(train_secs: f64, ckpt_mb: f64, transferred: bool, n: usize) -> Vec<TaskCost> {
    (0..n)
        .map(|i| TaskCost {
            // Mild heterogeneity, like a real candidate population.
            train_secs: train_secs * (0.8 + 0.4 * ((i % 5) as f64 / 4.0)),
            read_bytes: if transferred && i > n / 8 { (ckpt_mb * 1e6) as u64 } else { 0 },
            transfer_secs: if transferred { 0.1 } else { 0.0 },
            write_bytes: (ckpt_mb * 1e6) as u64,
        })
        .collect()
}

fn main() {
    println!("400-candidate estimation phase on simulated A100 nodes\n");
    println!(
        "{:<28} {:>9} {:>9} {:>9} {:>7} {:>7}",
        "workload", "8 GPUs", "16 GPUs", "32 GPUs", "8->16", "16->32"
    );
    let cases = [
        ("long training, small ckpt", tasks(45.0, 10.0, true, 400)),
        ("long training, big ckpt", tasks(45.0, 50.0, true, 400)),
        ("short training, big ckpt", tasks(6.0, 46.0, true, 400)),
        ("short, big ckpt, baseline", tasks(6.0, 46.0, false, 400)),
    ];
    for (name, ts) in &cases {
        let mut times = Vec::new();
        for nodes in [1usize, 2, 4] {
            times.push(simulate(&ClusterConfig::node_type_a(nodes), ts).makespan);
        }
        println!(
            "{:<28} {:>8.0}s {:>8.0}s {:>8.0}s {:>6.2}x {:>6.2}x",
            name,
            times[0],
            times[1],
            times[2],
            times[0] / times[1],
            times[1] / times[2]
        );
    }
    println!("\nLong-training workloads scale ~linearly regardless of checkpoint size;");
    println!("short-training + large-checkpoint (the NT3 profile) loses scalability —");
    println!("and weight transfer's extra checkpoint reads amplify that, exactly as in Fig. 10.");

    // Utilisation view for the NT3-like case.
    println!("\nutilisation of the short-training case:");
    for nodes in [1usize, 2, 4] {
        let r = simulate(&ClusterConfig::node_type_a(nodes), &cases[2].1);
        println!(
            "  {:>2} GPUs: makespan {:>6.0}s, utilisation {:>5.1}%, I/O {:>6.0}s",
            nodes * 8,
            r.makespan,
            100.0 * r.utilization,
            r.io_secs
        );
    }
}
