//! The coordinator's in-flight picture of a distributed run.
//!
//! Workers stream [`Telemetry`] frames (cumulative span/gauge snapshots
//! plus timeline-event deltas) between `Result`s; the coordinator folds
//! each one into a [`LiveRunView`] — per-worker gauges, queue depth,
//! candidates in flight, and an EWMA of per-candidate wall cost. The view
//! implements [`ServeSource`], so `swt dist-run --serve` can expose it as
//! `/status` (JSON), `/metrics` (Prometheus text) and `/trace` (Chrome
//! trace JSON) while the run is still going.
//!
//! Consistency model: everything here is *monitoring*, deliberately
//! decoupled from scheduling. Frames apply only when their per-worker
//! `seq` is strictly greater than the last applied one — a reordered or
//! replayed frame counts as stale and changes nothing — so lost or late
//! telemetry degrades the view to staleness, never corruption, and never
//! perturbs the run itself.

use crate::policy::PoolSnapshot;
use crate::wire::{GaugeSnap, SpanTotalRow, Telemetry, WorkerMetrics};
use std::collections::VecDeque;
use std::fmt;
use std::sync::{Mutex, MutexGuard};
use std::time::Instant;
use swt_obs::json::Json;
use swt_obs::registry::WORKER_SLOTS;
use swt_obs::timeline::{self, EventKind, TimelineEvent};
use swt_obs::{RunReport, ServeSource};

/// Upper bound on buffered worker timeline events kept for `/trace`. The
/// oldest are discarded first (and counted), same contract as the source
/// rings.
pub const MAX_VIEW_EVENTS: usize = 16_384;

/// Smoothing factor for the per-candidate wall-cost EWMA.
const EWMA_ALPHA: f64 = 0.2;

/// Upper bound on retained autoscale decision-log lines in the view (the
/// policy keeps its own, larger, log; this is the `/status` window).
pub const MAX_VIEW_DECISIONS: usize = 64;

/// What the coordinator currently knows about one worker.
#[derive(Debug, Clone, Default)]
pub struct WorkerView {
    pub alive: bool,
    /// Retire frame sent; the worker is draining and takes no new work.
    pub retiring: bool,
    /// Highest telemetry seq applied (frames at or below it are stale).
    pub last_seq: u64,
    /// Telemetry frames applied / rejected as stale.
    pub frames: u64,
    pub stale_frames: u64,
    /// Ring-overwritten events the worker reported (staleness signal).
    pub dropped_events: u64,
    /// Candidate id currently being evaluated, if any.
    pub current: Option<u64>,
    /// Results delivered by this worker.
    pub results: u64,
    /// Worker-process uptime at its last snapshot, nanoseconds.
    pub uptime_ns: u64,
    /// Latest cumulative span totals…
    pub spans: Vec<SpanTotalRow>,
    /// …and the previous snapshot's, so deltas survive the overwrite.
    pub prev_spans: Vec<SpanTotalRow>,
    pub gauges: Vec<GaugeSnap>,
    /// Latest cumulative counter/histogram snapshot (from `Result`/`Stats`).
    pub metrics: Option<WorkerMetrics>,
}

/// The stop-reason counter suffixes a worker reports under
/// `fidelity.stopped.*`. `pruned` is decided coordinator-side (after each
/// rung's ranking), so its per-worker count stays 0 by design — it is kept
/// in the table so `/status` and `dist-top` render a stable schema.
pub const STOP_COUNTER_KINDS: [&str; 3] = ["converged", "pruned", "prefiltered"];

impl WorkerView {
    /// Cumulative nanoseconds under `path` in the latest snapshot.
    pub fn span_total_ns(&self, path: &str) -> u64 {
        self.spans.iter().find(|s| s.path == path).map_or(0, |s| s.total_ns)
    }

    /// This worker's `fidelity.stopped.{kind}` count from its latest
    /// metrics snapshot (0 when absent or fidelity is off).
    pub fn stopped(&self, kind: &str) -> u64 {
        self.metrics.as_ref().map_or(0, |m| m.counter(&format!("fidelity.stopped.{kind}")))
    }

    /// Nanoseconds under `path` gained between the last two snapshots.
    pub fn span_delta_ns(&self, path: &str) -> u64 {
        let prev = self.prev_spans.iter().find(|s| s.path == path).map_or(0, |s| s.total_ns);
        self.span_total_ns(path).saturating_sub(prev)
    }
}

/// Autoscale monitoring state surfaced under `"autoscale"` in `/status`.
#[derive(Debug, Default)]
struct AutoscaleState {
    enabled: bool,
    grows: u64,
    shrinks: u64,
    holds: u64,
    /// Most recent decision lines, oldest first.
    log: VecDeque<String>,
}

#[derive(Debug, Default)]
struct Inner {
    meta: Vec<(String, String)>,
    window: usize,
    queue_depth: usize,
    inflight: usize,
    /// Spawned workers that have not completed their handshake yet.
    connecting: usize,
    results: u64,
    ewma_secs: f64,
    autoscale: AutoscaleState,
    workers: Vec<WorkerView>,
    /// Worker timeline events, oldest first, as `(pid, event)` with
    /// `pid = worker + 1` (pid 0 is this process's own timeline).
    events: VecDeque<(u32, TimelineEvent)>,
    events_dropped: u64,
}

impl Inner {
    fn ensure_worker(&mut self, worker: usize) {
        if self.workers.len() <= worker {
            self.workers.resize_with(worker + 1, WorkerView::default);
        }
    }
}

/// Shared, lock-per-update live view. Cheap to clone behind an `Arc`;
/// every method takes `&self`.
#[derive(Default)]
pub struct LiveRunView {
    started: Option<Instant>,
    inner: Mutex<Inner>,
}

impl fmt::Debug for LiveRunView {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let inner = self.lock();
        f.debug_struct("LiveRunView")
            .field("workers", &inner.workers.len())
            .field("results", &inner.results)
            .field("queue_depth", &inner.queue_depth)
            .finish()
    }
}

impl LiveRunView {
    pub fn new() -> LiveRunView {
        LiveRunView { started: Some(Instant::now()), inner: Mutex::new(Inner::default()) }
    }

    fn lock(&self) -> MutexGuard<'_, Inner> {
        // The view holds no invariants worth poisoning over; recover.
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Record a `key=value` pair shown in `/status` (app, scale, …).
    pub fn set_meta(&self, key: &str, value: impl ToString) {
        let mut inner = self.lock();
        let value = value.to_string();
        match inner.meta.iter_mut().find(|(k, _)| k == key) {
            Some((_, v)) => *v = value,
            None => inner.meta.push((key.to_string(), value)),
        }
    }

    /// The coordinator's dispatch window (evaluation parallelism).
    pub fn set_window(&self, window: usize) {
        self.lock().window = window;
    }

    pub fn worker_added(&self, worker: usize) {
        let mut inner = self.lock();
        inner.ensure_worker(worker);
        inner.workers[worker].alive = true;
    }

    pub fn worker_lost(&self, worker: usize) {
        let mut inner = self.lock();
        inner.ensure_worker(worker);
        inner.workers[worker].alive = false;
        inner.workers[worker].current = None;
    }

    /// `worker` was sent a `Retire` frame and is draining; it no longer
    /// counts toward dispatchable capacity.
    pub fn worker_retiring(&self, worker: usize) {
        let mut inner = self.lock();
        inner.ensure_worker(worker);
        inner.workers[worker].retiring = true;
    }

    /// Spawned-but-not-yet-handshaken worker count — capacity the policy
    /// has already paid for.
    pub fn set_connecting(&self, connecting: usize) {
        self.lock().connecting = connecting;
    }

    /// The plain-data snapshot [`crate::policy::ScalePolicy::decide`]
    /// consumes: the dispatch picture plus the live/idle/connecting worker
    /// counts, all wall-clock-free.
    pub fn pool_snapshot(&self) -> PoolSnapshot {
        let inner = self.lock();
        let live = inner.workers.iter().filter(|w| w.alive && !w.retiring).count();
        let idle =
            inner.workers.iter().filter(|w| w.alive && !w.retiring && w.current.is_none()).count();
        PoolSnapshot {
            queue_depth: inner.queue_depth,
            inflight: inner.inflight,
            live,
            idle,
            connecting: inner.connecting,
            results: inner.results,
            ewma_secs: inner.ewma_secs,
        }
    }

    /// Fold one autoscale decision into the view's `/status` window:
    /// `kind` indexes (grow, shrink, hold); `line` is the policy's
    /// formatted decision-log line.
    pub fn record_autoscale(&self, line: &str, grows: u64, shrinks: u64, holds: u64) {
        let mut inner = self.lock();
        let a = &mut inner.autoscale;
        a.enabled = true;
        a.grows = grows;
        a.shrinks = shrinks;
        a.holds = holds;
        if a.log.len() >= MAX_VIEW_DECISIONS {
            a.log.pop_front();
        }
        a.log.push_back(line.to_string());
    }

    /// Update the dispatch picture: queued (not yet handed out) and
    /// in-flight candidate counts.
    pub fn set_queue(&self, queue_depth: usize, inflight: usize) {
        let mut inner = self.lock();
        inner.queue_depth = queue_depth;
        inner.inflight = inflight;
    }

    /// `worker` started evaluating candidate `id`.
    pub fn set_current(&self, worker: usize, id: Option<u64>) {
        let mut inner = self.lock();
        inner.ensure_worker(worker);
        inner.workers[worker].current = id;
    }

    /// A result arrived from `worker` after `secs` of submit-to-delivery
    /// wall time (queue wait included — that is the cost the search pays).
    pub fn record_result(&self, worker: usize, secs: f64) {
        let mut inner = self.lock();
        inner.results += 1;
        inner.ewma_secs = if inner.results == 1 {
            secs
        } else {
            EWMA_ALPHA * secs + (1.0 - EWMA_ALPHA) * inner.ewma_secs
        };
        inner.ensure_worker(worker);
        inner.workers[worker].results += 1;
        inner.workers[worker].current = None;
    }

    /// Keep `worker`'s latest cumulative counter/histogram snapshot
    /// (latest-wins, same rule the run report uses).
    pub fn fold_metrics(&self, worker: usize, metrics: &WorkerMetrics) {
        let mut inner = self.lock();
        inner.ensure_worker(worker);
        inner.workers[worker].metrics = Some(metrics.clone());
    }

    /// Fold one telemetry frame from `worker`. Returns `false` (and counts
    /// a stale frame) when its seq does not advance the stream.
    pub fn apply_telemetry(&self, worker: usize, t: &Telemetry) -> bool {
        let mut inner = self.lock();
        inner.ensure_worker(worker);
        {
            let w = &mut inner.workers[worker];
            if t.seq <= w.last_seq {
                w.stale_frames += 1;
                return false;
            }
            w.last_seq = t.seq;
            w.frames += 1;
            w.alive = true;
            w.uptime_ns = t.uptime_ns;
            w.dropped_events = w.dropped_events.saturating_add(t.dropped_events);
            w.prev_spans = std::mem::replace(&mut w.spans, t.spans.clone());
            w.gauges = t.gauges.clone();
        }
        let pid = worker as u32 + 1;
        for ev in &t.events {
            // Decode already bounds-checked the index; unknown names (a
            // peer speaking a future dialect) are skipped, not fatal.
            let Some(name) = t.names.get(ev.name as usize) else { continue };
            if inner.events.len() >= MAX_VIEW_EVENTS {
                inner.events.pop_front();
                inner.events_dropped += 1;
            }
            inner.events.push_back((
                pid,
                TimelineEvent {
                    seq: ev.t_ns, // slot seq is worker-local; order by time instead
                    kind: if ev.kind == 1 { EventKind::Counter } else { EventKind::Span },
                    name: name.clone(),
                    t_ns: ev.t_ns,
                    dur_ns: ev.dur_ns,
                    delta: ev.delta,
                },
            ));
        }
        true
    }

    /// Snapshot of every worker's view (index = worker id).
    pub fn workers(&self) -> Vec<WorkerView> {
        self.lock().workers.clone()
    }

    /// Results folded so far.
    pub fn results(&self) -> u64 {
        self.lock().results
    }

    /// Merge of the latest counter/histogram snapshot of every worker —
    /// the live analogue of `DistRunStats::workers_report`, and equal to
    /// it once the final `Stats` frames have been folded.
    pub fn workers_report(&self) -> RunReport {
        let inner = self.lock();
        let mut merged = RunReport::default();
        for w in &inner.workers {
            if let Some(m) = &w.metrics {
                merged.merge(&m.to_report());
            }
        }
        merged
    }
}

impl ServeSource for LiveRunView {
    fn status_json(&self) -> String {
        let inner = self.lock();
        let uptime = self.started.map_or(0.0, |s| s.elapsed().as_secs_f64());
        let workers: Vec<Json> = inner
            .workers
            .iter()
            .enumerate()
            .map(|(id, w)| {
                let spans = w
                    .spans
                    .iter()
                    .map(|s| {
                        Json::Obj(vec![
                            ("path".to_string(), Json::Str(s.path.clone())),
                            ("count".to_string(), Json::Num(s.count as f64)),
                            ("total_secs".to_string(), Json::Num(s.total_ns as f64 / 1e9)),
                            (
                                "delta_secs".to_string(),
                                Json::Num(w.span_delta_ns(&s.path) as f64 / 1e9),
                            ),
                        ])
                    })
                    .collect();
                let gauges = w
                    .gauges
                    .iter()
                    .map(|g| {
                        Json::Obj(vec![
                            ("name".to_string(), Json::Str(g.name.clone())),
                            ("value".to_string(), Json::Num(g.value as f64)),
                            ("max".to_string(), Json::Num(g.max as f64)),
                        ])
                    })
                    .collect();
                Json::Obj(vec![
                    ("id".to_string(), Json::Num(id as f64)),
                    ("alive".to_string(), Json::Bool(w.alive)),
                    ("retiring".to_string(), Json::Bool(w.retiring)),
                    ("seq".to_string(), Json::Num(w.last_seq as f64)),
                    ("frames".to_string(), Json::Num(w.frames as f64)),
                    ("stale_frames".to_string(), Json::Num(w.stale_frames as f64)),
                    ("dropped_events".to_string(), Json::Num(w.dropped_events as f64)),
                    (
                        "current".to_string(),
                        w.current.map_or(Json::Null, |id| Json::Num(id as f64)),
                    ),
                    ("results".to_string(), Json::Num(w.results as f64)),
                    ("uptime_secs".to_string(), Json::Num(w.uptime_ns as f64 / 1e9)),
                    (
                        "stopped".to_string(),
                        Json::Obj(
                            STOP_COUNTER_KINDS
                                .iter()
                                .map(|k| (k.to_string(), Json::Num(w.stopped(k) as f64)))
                                .collect(),
                        ),
                    ),
                    ("spans".to_string(), Json::Arr(spans)),
                    ("gauges".to_string(), Json::Arr(gauges)),
                ])
            })
            .collect();
        let meta =
            inner.meta.iter().map(|(k, v)| (k.clone(), Json::Str(v.clone()))).collect::<Vec<_>>();
        let live = inner.workers.iter().filter(|w| w.alive).count();
        let autoscale = Json::Obj(vec![
            ("enabled".to_string(), Json::Bool(inner.autoscale.enabled)),
            ("grows".to_string(), Json::Num(inner.autoscale.grows as f64)),
            ("shrinks".to_string(), Json::Num(inner.autoscale.shrinks as f64)),
            ("holds".to_string(), Json::Num(inner.autoscale.holds as f64)),
            (
                "log".to_string(),
                Json::Arr(inner.autoscale.log.iter().map(|l| Json::Str(l.clone())).collect()),
            ),
        ]);
        Json::Obj(vec![
            ("meta".to_string(), Json::Obj(meta)),
            ("uptime_secs".to_string(), Json::Num(uptime)),
            ("window".to_string(), Json::Num(inner.window as f64)),
            ("queue_depth".to_string(), Json::Num(inner.queue_depth as f64)),
            ("inflight".to_string(), Json::Num(inner.inflight as f64)),
            ("connecting".to_string(), Json::Num(inner.connecting as f64)),
            ("results".to_string(), Json::Num(inner.results as f64)),
            ("workers_live".to_string(), Json::Num(live as f64)),
            ("ewma_candidate_secs".to_string(), Json::Num(inner.ewma_secs)),
            ("autoscale".to_string(), autoscale),
            ("events_buffered".to_string(), Json::Num(inner.events.len() as f64)),
            ("events_dropped".to_string(), Json::Num(inner.events_dropped as f64)),
            ("workers".to_string(), Json::Arr(workers)),
        ])
        .render()
    }

    fn metrics_text(&self) -> String {
        // Coordinator-process registry plus every worker's latest snapshot:
        // the same merge the final report performs, just mid-run.
        let mut merged = RunReport::capture();
        merged.merge(&self.workers_report());
        let mut text = swt_obs::serve::prometheus_text(&merged);
        let inner = self.lock();
        let live = inner.workers.iter().filter(|w| w.alive).count();
        text.push_str(&format!("swt_live_queue_depth {}\n", inner.queue_depth));
        text.push_str(&format!("swt_live_inflight {}\n", inner.inflight));
        text.push_str(&format!("swt_live_connecting {}\n", inner.connecting));
        text.push_str(&format!("swt_live_workers {}\n", live));
        text.push_str(&format!("swt_live_results_total {}\n", inner.results));
        text.push_str(&format!("swt_live_ewma_candidate_seconds {}\n", inner.ewma_secs));
        text
    }

    fn trace_json(&self) -> String {
        // Worker events (pid = worker + 1) merged with this process's own
        // timeline (pid 0, tid = slot), ordered by time.
        let mut rows: Vec<(u32, u32, TimelineEvent)> = Vec::new();
        for slot in 0..=WORKER_SLOTS {
            for ev in timeline::drain_since(slot, 0).events {
                rows.push((0, slot as u32, ev));
            }
        }
        {
            let inner = self.lock();
            rows.extend(inner.events.iter().map(|(pid, ev)| (*pid, 0u32, ev.clone())));
        }
        rows.sort_by_key(|(_, _, ev)| ev.t_ns);
        timeline::chrome_trace_json(&rows)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::WireEvent;

    fn frame(seq: u64) -> Telemetry {
        Telemetry {
            seq,
            uptime_ns: seq * 1_000,
            spans: vec![SpanTotalRow {
                path: "nas.eval".to_string(),
                count: seq,
                total_ns: seq * 500,
            }],
            gauges: vec![GaugeSnap { name: "pool.depth".to_string(), value: 2, max: 4 }],
            names: vec!["nas.eval".to_string()],
            events: vec![WireEvent { name: 0, kind: 0, t_ns: seq, dur_ns: 10, delta: 0 }],
            dropped_events: 0,
        }
    }

    #[test]
    fn stale_and_replayed_frames_do_not_regress_the_view() {
        let live = LiveRunView::new();
        assert!(live.apply_telemetry(1, &frame(1)));
        assert!(live.apply_telemetry(1, &frame(3)));
        assert!(!live.apply_telemetry(1, &frame(2)), "reordered frame is stale");
        assert!(!live.apply_telemetry(1, &frame(3)), "replayed frame is stale");
        let w = &live.workers()[1];
        assert_eq!(w.last_seq, 3);
        assert_eq!(w.frames, 2);
        assert_eq!(w.stale_frames, 2);
        assert_eq!(w.span_total_ns("nas.eval"), 1_500);
        assert_eq!(w.span_delta_ns("nas.eval"), 1_000, "delta spans snapshots 1 → 3");
    }

    #[test]
    fn ewma_and_result_accounting() -> Result<(), String> {
        let live = LiveRunView::new();
        live.set_current(0, Some(7));
        live.record_result(0, 1.0);
        live.record_result(0, 2.0);
        let w = &live.workers()[0];
        assert_eq!(w.results, 2);
        assert_eq!(w.current, None);
        assert_eq!(live.results(), 2);
        let status = Json::parse(&live.status_json())?;
        let ewma = status.get("ewma_candidate_secs").and_then(Json::as_f64).unwrap_or(0.0);
        assert!((ewma - 1.2).abs() < 1e-9, "ewma(1, 2) with α=0.2 → 1.2, got {ewma}");
        Ok(())
    }

    #[test]
    fn stop_reason_counts_surface_in_status() -> Result<(), String> {
        use swt_obs::report::CounterRow;
        let live = LiveRunView::new();
        live.worker_added(0);
        // No metrics yet: the schema is stable, the counts zero.
        let status = Json::parse(&live.status_json())?;
        let stopped = |s: &Json, i: usize| {
            s.get("workers")
                .and_then(Json::as_array)
                .and_then(|w| w.get(i))
                .and_then(|w| w.get("stopped"))
                .cloned()
                .ok_or_else(|| "worker stopped object missing from /status".to_string())
        };
        let stopped0 = stopped(&status, 0)?;
        for kind in STOP_COUNTER_KINDS {
            assert_eq!(stopped0.get(kind).and_then(Json::as_f64), Some(0.0));
        }
        // Fold a snapshot carrying fidelity counters.
        live.fold_metrics(
            0,
            &WorkerMetrics {
                counters: vec![
                    CounterRow { name: "fidelity.stopped.converged".into(), value: 3 },
                    CounterRow { name: "fidelity.stopped.prefiltered".into(), value: 5 },
                    CounterRow { name: "nas.candidates_evaluated".into(), value: 9 },
                ],
                histograms: vec![],
            },
        );
        assert_eq!(live.workers()[0].stopped("converged"), 3);
        assert_eq!(live.workers()[0].stopped("prefiltered"), 5);
        assert_eq!(live.workers()[0].stopped("pruned"), 0);
        let status = Json::parse(&live.status_json())?;
        let stopped0 = stopped(&status, 0)?;
        assert_eq!(stopped0.get("converged").and_then(Json::as_f64), Some(3.0));
        assert_eq!(stopped0.get("prefiltered").and_then(Json::as_f64), Some(5.0));
        Ok(())
    }

    #[test]
    fn pool_snapshot_and_autoscale_log_surface_in_status() -> Result<(), String> {
        let live = LiveRunView::new();
        live.worker_added(0);
        live.worker_added(1);
        live.worker_added(2);
        live.record_result(0, 0.5);
        live.set_current(0, Some(4));
        live.worker_retiring(2);
        live.set_queue(3, 2);
        live.set_connecting(1);
        let s = live.pool_snapshot();
        assert_eq!((s.queue_depth, s.inflight, s.connecting), (3, 2, 1));
        assert_eq!(
            (s.live, s.idle),
            (2, 1),
            "retiring worker leaves the pool; busy one is not idle"
        );
        assert_eq!((s.outstanding(), s.effective()), (5, 3));
        assert!((s.ewma_secs - 0.5).abs() < 1e-12);

        live.record_autoscale("t=1 -> grow +1", 1, 0, 0);
        let status = Json::parse(&live.status_json())?;
        let auto = status.get("autoscale").ok_or("autoscale object missing")?;
        assert_eq!(auto.get("enabled"), Some(&Json::Bool(true)));
        assert_eq!(auto.get("grows").and_then(Json::as_f64), Some(1.0));
        let log = auto.get("log").and_then(Json::as_array).ok_or("log missing")?;
        assert_eq!(log.len(), 1);
        assert_eq!(status.get("connecting").and_then(Json::as_f64), Some(1.0));
        let workers = status.get("workers").and_then(Json::as_array).ok_or("workers")?;
        assert_eq!(workers[2].get("retiring"), Some(&Json::Bool(true)));
        Ok(())
    }

    #[test]
    fn endpoints_render_for_an_empty_and_a_populated_view() -> Result<(), String> {
        let live = LiveRunView::new();
        live.set_meta("app", "mnist-mlp");
        live.set_window(4);
        assert!(Json::parse(&live.status_json()).is_ok());
        assert!(Json::parse(&live.trace_json()).is_ok());
        live.apply_telemetry(0, &frame(1));
        let status = Json::parse(&live.status_json())?;
        assert_eq!(
            status.get("meta").and_then(|m| m.get("app")).and_then(Json::as_str),
            Some("mnist-mlp")
        );
        let trace = Json::parse(&live.trace_json())?;
        let rows = trace.get("traceEvents").and_then(Json::as_array).map_or(0, |r| r.len());
        assert!(rows >= 1, "worker event must appear in the trace");
        let metrics = live.metrics_text();
        assert!(metrics.contains("swt_live_workers"), "run-level gauges present");
        Ok(())
    }
}
