//! The autoscaling policy: a pure, wall-clock-free function of observed
//! pool state (DESIGN.md §13).
//!
//! [`ScalePolicy::decide`] consumes the same [`LiveRunView`] that `/status`
//! and `dist-top` render — queue depth, in-flight count, live/idle workers
//! and the EWMA per-candidate cost — and returns a [`ScaleDecision`]:
//! grow, shrink or hold. The *actuator* (the coordinator) turns a grow into
//! spawned `swt dist-worker` children and a shrink into `Retire` frames to
//! idle workers; the policy itself never touches a socket or a process.
//!
//! Determinism contract: decisions are a pure function of the sequence of
//! snapshots fed to `decide` plus the [`PolicyConfig`]. There is no clock
//! anywhere — cooldown and idle patience are counted in *decision ticks*
//! (one per `decide` call), so a scripted view sequence replays to a
//! byte-identical decision log on any host. That is what makes the policy
//! testable by simulation (`crates/dist/tests/policy_props.rs`) and
//! replayable against the `swt-cluster` cost model (`bench_autoscale`).
//!
//! Scheduling stays untouched by construction: the policy reads the view
//! and proposes a pool size; `DistBackend::capacity()` (the dispatch
//! window) never changes, so *which candidate* runs, and in what order the
//! strategy sees results, is identical to a fixed-pool run — only *which
//! process* evaluates it moves. Canonical traces therefore stay
//! bit-identical with autoscaling on or off.

use crate::live::LiveRunView;
use std::fmt;

/// Hard ceiling on any configured worker pool — shared with the wire-v6
/// `HelloAck` tail validation, so a hostile peer cannot announce an absurd
/// pool either.
pub const MAX_POOL_WORKERS: usize = 4096;

/// Upper bound on retained decision-log lines. The oldest are dropped
/// first (and counted) — monitoring state must stay bounded on long runs.
pub const MAX_DECISION_LOG: usize = 4096;

/// What the policy sees at one decision tick — a plain-data snapshot of
/// [`LiveRunView`], extracted by [`LiveRunView::pool_snapshot`]. Tests and
/// the `swt-cluster` replay harness construct these directly.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct PoolSnapshot {
    /// Submitted candidates not yet handed to a worker.
    pub queue_depth: usize,
    /// Candidates handed to a worker, result still pending.
    pub inflight: usize,
    /// Live workers able to take work (alive and not retiring).
    pub live: usize,
    /// Subset of `live` with no candidate assigned.
    pub idle: usize,
    /// Spawned workers that have not completed their handshake yet —
    /// capacity already paid for; the policy must not double-grow on it.
    pub connecting: usize,
    /// Results delivered so far.
    pub results: u64,
    /// EWMA of submit-to-delivery wall cost per candidate, seconds.
    pub ewma_secs: f64,
}

impl PoolSnapshot {
    /// Work the pool still owes the strategy: queued plus in-flight.
    pub fn outstanding(&self) -> usize {
        self.queue_depth + self.inflight
    }

    /// Capacity once pending spawns land: live plus connecting.
    pub fn effective(&self) -> usize {
        self.live + self.connecting
    }
}

/// One scaling decision. Counts are bounded by the config: a `Grow` never
/// pushes `live + connecting` past `max_workers`, a `Shrink` never takes
/// the pool below `min_workers` and only ever names idle workers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScaleDecision {
    Hold,
    /// Spawn this many extra workers.
    Grow(usize),
    /// Retire this many idle workers (drain-then-close).
    Shrink(usize),
}

impl fmt::Display for ScaleDecision {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScaleDecision::Hold => write!(f, "hold"),
            ScaleDecision::Grow(n) => write!(f, "grow +{n}"),
            ScaleDecision::Shrink(n) => write!(f, "shrink -{n}"),
        }
    }
}

/// Why a [`PolicyConfig`] was rejected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PolicyError {
    /// `min_workers` must be ≥ 1 — the pool can never scale to zero.
    ZeroMinWorkers,
    /// `min_workers` must not exceed `max_workers`.
    MinAboveMax { min: usize, max: usize },
    /// `max_workers` beyond [`MAX_POOL_WORKERS`].
    MaxAboveCap { max: usize },
    /// `backlog_per_worker` must be a finite, non-negative threshold.
    BadBacklogThreshold,
    /// A wall/cost target must be finite and positive when set.
    BadTarget(&'static str),
}

impl fmt::Display for PolicyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PolicyError::ZeroMinWorkers => write!(f, "min_workers must be at least 1"),
            PolicyError::MinAboveMax { min, max } => {
                write!(f, "min_workers {min} exceeds max_workers {max}")
            }
            PolicyError::MaxAboveCap { max } => {
                write!(f, "max_workers {max} exceeds the pool cap {MAX_POOL_WORKERS}")
            }
            PolicyError::BadBacklogThreshold => {
                write!(f, "backlog_per_worker must be finite and non-negative")
            }
            PolicyError::BadTarget(which) => {
                write!(f, "{which} must be finite and positive when set")
            }
        }
    }
}

impl std::error::Error for PolicyError {}

/// Tuning knobs for [`ScalePolicy`]. All units are decision ticks or
/// workers — never seconds of wall clock (see the module docs).
#[derive(Debug, Clone, PartialEq)]
pub struct PolicyConfig {
    /// The pool never shrinks below this many live workers (≥ 1).
    pub min_workers: usize,
    /// The pool (live + connecting) never grows past this.
    pub max_workers: usize,
    /// After any grow/shrink, hold for this many ticks — the anti-flapping
    /// half of the hysteresis story.
    pub cooldown_ticks: u64,
    /// Grow watermark: grow when `queue_depth > backlog_per_worker ×
    /// (live + connecting)`. The shrink condition (queue exactly empty,
    /// workers idle) sits strictly below it, so the two can never both
    /// fire — the other half of the hysteresis story.
    pub backlog_per_worker: f64,
    /// Consecutive ticks of (empty queue, idle workers, nothing
    /// connecting) required before a shrink. Absorbs the transient idleness
    /// between a result and the next dispatch.
    pub idle_patience: u64,
    /// Workers added per grow decision (growth is gradual by design; the
    /// cooldown then judges the effect before the next step).
    pub grow_step: usize,
    /// Wall-clock budget for the remaining work, seconds. When the
    /// projected completion (`outstanding × ewma / effective`) exceeds it,
    /// the policy grows even without a queue backlog.
    pub target_wall_secs: Option<f64>,
    /// Cost budget, worker-seconds per evaluation wave: the pool is capped
    /// so `workers × ewma ≤ budget`, i.e. one wave of concurrent
    /// evaluations never costs more than this.
    pub cost_budget_secs: Option<f64>,
}

impl Default for PolicyConfig {
    fn default() -> PolicyConfig {
        PolicyConfig {
            min_workers: 1,
            max_workers: 8,
            cooldown_ticks: 2,
            backlog_per_worker: 0.5,
            idle_patience: 2,
            grow_step: 1,
            target_wall_secs: None,
            cost_budget_secs: None,
        }
    }
}

impl PolicyConfig {
    /// A policy bounded by `[min, max]` workers, other knobs at defaults.
    pub fn bounded(min_workers: usize, max_workers: usize) -> PolicyConfig {
        PolicyConfig { min_workers, max_workers, ..PolicyConfig::default() }
    }

    /// Check every invariant [`ScalePolicy::new`] relies on.
    pub fn validate(&self) -> Result<(), PolicyError> {
        if self.min_workers == 0 {
            return Err(PolicyError::ZeroMinWorkers);
        }
        if self.min_workers > self.max_workers {
            return Err(PolicyError::MinAboveMax { min: self.min_workers, max: self.max_workers });
        }
        if self.max_workers > MAX_POOL_WORKERS {
            return Err(PolicyError::MaxAboveCap { max: self.max_workers });
        }
        if !self.backlog_per_worker.is_finite() || self.backlog_per_worker < 0.0 {
            return Err(PolicyError::BadBacklogThreshold);
        }
        for (name, target) in [
            ("target_wall_secs", self.target_wall_secs),
            ("cost_budget_secs", self.cost_budget_secs),
        ] {
            if let Some(t) = target {
                if !t.is_finite() || t <= 0.0 {
                    return Err(PolicyError::BadTarget(name));
                }
            }
        }
        Ok(())
    }
}

/// The policy state machine (DESIGN.md §13): config plus exactly the state
/// hysteresis needs — the tick counter, the last-action tick and the
/// consecutive-idle counter — and the decision log.
#[derive(Debug)]
pub struct ScalePolicy {
    cfg: PolicyConfig,
    /// Decision ticks elapsed (one per `decide` call).
    tick: u64,
    /// Tick of the last non-hold decision; `None` before the first.
    last_action: Option<u64>,
    /// Consecutive ticks the shrink condition has held.
    idle_ticks: u64,
    grows: u64,
    shrinks: u64,
    holds: u64,
    log: Vec<String>,
    log_dropped: u64,
}

impl ScalePolicy {
    pub fn new(cfg: PolicyConfig) -> Result<ScalePolicy, PolicyError> {
        cfg.validate()?;
        Ok(ScalePolicy {
            cfg,
            tick: 0,
            last_action: None,
            idle_ticks: 0,
            grows: 0,
            shrinks: 0,
            holds: 0,
            log: Vec::new(),
            log_dropped: 0,
        })
    }

    pub fn config(&self) -> &PolicyConfig {
        &self.cfg
    }

    /// Ticks elapsed — the policy's only notion of time.
    pub fn tick(&self) -> u64 {
        self.tick
    }

    /// `(grow, shrink, hold)` decision tallies.
    pub fn tally(&self) -> (u64, u64, u64) {
        (self.grows, self.shrinks, self.holds)
    }

    /// The retained decision-log lines, oldest first (bounded by
    /// [`MAX_DECISION_LOG`]; `log_dropped` counts evictions).
    pub fn log(&self) -> &[String] {
        &self.log
    }

    pub fn log_dropped(&self) -> u64 {
        self.log_dropped
    }

    /// The full retained log as one newline-terminated string — what the
    /// determinism property pins byte-for-byte.
    pub fn log_text(&self) -> String {
        let mut out = String::new();
        for line in &self.log {
            out.push_str(line);
            out.push('\n');
        }
        out
    }

    /// Decide against the live view — the production entry point: one call
    /// per coordinator decision tick, reading the same view `/status`
    /// serves.
    pub fn decide(&mut self, view: &LiveRunView) -> ScaleDecision {
        let snap = view.pool_snapshot();
        self.decide_snapshot(&snap)
    }

    /// Decide against an explicit snapshot — the simulation/test entry
    /// point ([`crate::live::LiveRunView::pool_snapshot`] produces the
    /// production input; scripted sequences and the `swt-cluster` replay
    /// build snapshots directly).
    pub fn decide_snapshot(&mut self, s: &PoolSnapshot) -> ScaleDecision {
        self.tick += 1;
        // Hysteresis state advances every tick, including cooldown ticks:
        // patience measures how long the pool has *actually* been drained,
        // not how long we have been allowed to act on it.
        let idle_now = s.queue_depth == 0 && s.idle > 0 && s.connecting == 0;
        self.idle_ticks = if idle_now { self.idle_ticks + 1 } else { 0 };

        let decision = self.evaluate(s, idle_now);
        match decision {
            ScaleDecision::Hold => self.holds += 1,
            ScaleDecision::Grow(_) => {
                self.grows += 1;
                self.last_action = Some(self.tick);
            }
            ScaleDecision::Shrink(_) => {
                self.shrinks += 1;
                self.last_action = Some(self.tick);
                self.idle_ticks = 0;
            }
        }
        let line = format!(
            "t={} q={} inflight={} live={} idle={} conn={} ewma_ms={:.3} -> {}",
            self.tick,
            s.queue_depth,
            s.inflight,
            s.live,
            s.idle,
            s.connecting,
            s.ewma_secs * 1e3,
            decision
        );
        if self.log.len() >= MAX_DECISION_LOG {
            self.log.remove(0);
            self.log_dropped += 1;
        }
        self.log.push(line);
        decision
    }

    fn evaluate(&self, s: &PoolSnapshot, idle_now: bool) -> ScaleDecision {
        let cfg = &self.cfg;
        if let Some(last) = self.last_action {
            if self.tick.saturating_sub(last) <= cfg.cooldown_ticks {
                return ScaleDecision::Hold;
            }
        }
        let effective = s.effective();
        let outstanding = s.outstanding();

        // Grow signals: queue backlog past the watermark, or a wall-clock
        // target the current pool cannot meet. Both need *work to exist* —
        // monotonicity (more queued work never shrinks) falls out of the
        // queue==0 guard on the shrink branch below.
        let backlog = s.queue_depth as f64 > cfg.backlog_per_worker * effective as f64;
        let projected = if effective > 0 && s.ewma_secs > 0.0 {
            outstanding as f64 * s.ewma_secs / effective as f64
        } else {
            0.0
        };
        let wall_pressure = cfg.target_wall_secs.is_some_and(|t| projected > t);
        if (backlog || wall_pressure) && effective < cfg.max_workers {
            let mut want = cfg.grow_step.max(1).min(cfg.max_workers - effective);
            // Never provision past the work that exists: extra workers
            // beyond `outstanding` are pure idle cost.
            want = want.min(outstanding.saturating_sub(effective));
            // Cost budget: cap the pool so one wave of concurrent
            // evaluations (workers × ewma) stays within budget.
            if let Some(budget) = cfg.cost_budget_secs {
                if s.ewma_secs > 0.0 {
                    let cap = ((budget / s.ewma_secs) as usize).max(cfg.min_workers);
                    want = want.min(cap.saturating_sub(effective));
                }
            }
            if want > 0 {
                return ScaleDecision::Grow(want);
            }
            return ScaleDecision::Hold;
        }

        // Shrink: only a provably drained pool — queue empty, workers idle,
        // nothing connecting — and only after `idle_patience` consecutive
        // such ticks. Never below `min_workers`, never a busy worker.
        if idle_now && self.idle_ticks > cfg.idle_patience && s.live > cfg.min_workers {
            let n = s.idle.min(s.live - cfg.min_workers);
            if n > 0 {
                return ScaleDecision::Shrink(n);
            }
        }
        ScaleDecision::Hold
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snap(queue: usize, inflight: usize, live: usize, idle: usize) -> PoolSnapshot {
        PoolSnapshot {
            queue_depth: queue,
            inflight,
            live,
            idle,
            connecting: 0,
            results: 0,
            ewma_secs: 0.1,
        }
    }

    #[test]
    fn backlog_grows_and_cooldown_holds() -> Result<(), PolicyError> {
        let mut p = ScalePolicy::new(PolicyConfig::bounded(1, 4))?;
        assert_eq!(p.decide_snapshot(&snap(3, 1, 1, 0)), ScaleDecision::Grow(1));
        // Within the cooldown the same pressure holds.
        assert_eq!(p.decide_snapshot(&snap(3, 1, 1, 0)), ScaleDecision::Hold);
        assert_eq!(p.decide_snapshot(&snap(3, 1, 1, 0)), ScaleDecision::Hold);
        assert_eq!(p.decide_snapshot(&snap(3, 1, 1, 0)), ScaleDecision::Grow(1));
        Ok(())
    }

    #[test]
    fn drained_pool_shrinks_to_min_after_patience() -> Result<(), PolicyError> {
        let mut p = ScalePolicy::new(PolicyConfig::bounded(1, 4))?;
        assert_eq!(p.decide_snapshot(&snap(0, 1, 3, 2)), ScaleDecision::Hold);
        assert_eq!(p.decide_snapshot(&snap(0, 1, 3, 2)), ScaleDecision::Hold);
        assert_eq!(p.decide_snapshot(&snap(0, 1, 3, 2)), ScaleDecision::Shrink(2));
        Ok(())
    }

    #[test]
    fn connecting_capacity_suppresses_double_grow() -> Result<(), PolicyError> {
        let mut p =
            ScalePolicy::new(PolicyConfig { cooldown_ticks: 0, ..PolicyConfig::bounded(1, 4) })?;
        let s = PoolSnapshot { connecting: 3, ..snap(1, 1, 1, 0) };
        // live+connecting = 4 = max; queue 1 is under the 0.5×4 watermark
        // anyway — either way, no further grow.
        assert_eq!(p.decide_snapshot(&s), ScaleDecision::Hold);
        Ok(())
    }

    #[test]
    fn never_provisions_past_outstanding_work() -> Result<(), PolicyError> {
        let mut p =
            ScalePolicy::new(PolicyConfig { grow_step: 8, ..PolicyConfig::bounded(1, 16) })?;
        // 2 queued + 1 in flight on 1 worker: grow to 3, not to 9.
        assert_eq!(p.decide_snapshot(&snap(2, 1, 1, 0)), ScaleDecision::Grow(2));
        Ok(())
    }

    #[test]
    fn cost_budget_caps_the_wave() -> Result<(), PolicyError> {
        let mut p = ScalePolicy::new(PolicyConfig {
            grow_step: 8,
            cost_budget_secs: Some(0.25), // ewma 0.1 s → at most 2 workers
            ..PolicyConfig::bounded(1, 16)
        })?;
        assert_eq!(p.decide_snapshot(&snap(10, 1, 1, 0)), ScaleDecision::Grow(1));
        Ok(())
    }

    #[test]
    fn wall_target_grows_without_backlog() -> Result<(), PolicyError> {
        let mut p = ScalePolicy::new(PolicyConfig {
            backlog_per_worker: 1e9, // backlog signal off
            target_wall_secs: Some(0.5),
            ..PolicyConfig::bounded(1, 8)
        })?;
        // 10 outstanding × 0.1 s / 2 workers = 0.5 s projected — at the
        // target, no pressure.
        assert_eq!(p.decide_snapshot(&snap(2, 8, 2, 0)), ScaleDecision::Hold);
        // 20 outstanding: projected 1.0 s > 0.5 s — grow.
        assert_eq!(p.decide_snapshot(&snap(2, 18, 2, 0)), ScaleDecision::Grow(1));
        Ok(())
    }

    #[test]
    fn config_validation_rejects_bad_bounds() {
        assert_eq!(PolicyConfig::bounded(0, 4).validate(), Err(PolicyError::ZeroMinWorkers));
        assert_eq!(
            PolicyConfig::bounded(5, 4).validate(),
            Err(PolicyError::MinAboveMax { min: 5, max: 4 })
        );
        assert_eq!(
            PolicyConfig::bounded(1, MAX_POOL_WORKERS + 1).validate(),
            Err(PolicyError::MaxAboveCap { max: MAX_POOL_WORKERS + 1 })
        );
        let bad = PolicyConfig { target_wall_secs: Some(0.0), ..PolicyConfig::default() };
        assert_eq!(bad.validate(), Err(PolicyError::BadTarget("target_wall_secs")));
        let bad = PolicyConfig { backlog_per_worker: f64::NAN, ..PolicyConfig::default() };
        assert_eq!(bad.validate(), Err(PolicyError::BadBacklogThreshold));
    }

    #[test]
    fn decides_against_a_scripted_live_view() -> Result<(), PolicyError> {
        // The production entry point: a real LiveRunView, scripted.
        let view = LiveRunView::new();
        view.worker_added(0);
        view.set_current(0, Some(1));
        view.set_queue(3, 1);
        view.record_result(0, 0.1);
        view.set_current(0, Some(2));
        let mut p = ScalePolicy::new(PolicyConfig::bounded(1, 4))?;
        assert_eq!(p.decide(&view), ScaleDecision::Grow(1));
        Ok(())
    }
}
