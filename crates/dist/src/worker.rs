//! The worker process: one simulated GPU evaluating candidates.
//!
//! Lifecycle: connect → `Hello`/`HelloAck` (version check, receive the
//! [`RunSpec`]) → build the problem, search space and evaluator locally →
//! evaluate `Task` frames one at a time, answering `Ping`s concurrently
//! from a reader thread, until `Shutdown` or the socket dies.
//!
//! Failure model: the worker is deliberately fragile. An evaluation panic
//! (e.g. the shared store becomes unwritable mid-save) kills the process;
//! the coordinator sees the dead socket and reassigns the candidate —
//! recovery lives in exactly one place, coordinator-side. Protocol
//! violations are answered with an `Error` frame before exiting, so the
//! coordinator logs a cause instead of a bare EOF.

use crate::frame::{read_frame, write_frame, WireError, PROTOCOL_VERSION};
use crate::wire::{Msg, RunSpec, Telemetry, WorkerMetrics};
use std::net::TcpStream;
use std::sync::mpsc;
use std::sync::{Arc, Mutex};
use swt_checkpoint::{CachedStore, CheckpointStore, DirStore};
use swt_ckpt_server::RemoteStore;
use swt_nas::{Candidate, Evaluator};
use swt_space::SearchSpace;

fn send(stream: &Mutex<TcpStream>, msg: &Msg) -> Result<(), WireError> {
    let payload = msg.encode()?;
    let mut guard = stream.lock().unwrap_or_else(|e| e.into_inner());
    write_frame(&mut *guard, msg.frame_type(), &payload)
}

/// Shared live-telemetry stream state: the per-frame sequence number and
/// the timeline-drain cursor. Both the main loop (after each `Result`) and
/// the reader thread (after each `Pong`, i.e. at heartbeat cadence) emit
/// frames, so the pair lives behind one mutex to keep seqs strictly
/// increasing and drains non-overlapping.
struct TelemetryState {
    seq: u64,
    cursor: u64,
    slot: usize,
}

/// Capture and send one telemetry frame. Cheap enough for heartbeat
/// cadence: a registry walk plus a bounded ring drain.
fn send_telemetry(
    stream: &Mutex<TcpStream>,
    state: &Mutex<TelemetryState>,
) -> Result<(), WireError> {
    let telemetry = {
        let mut st = state.lock().unwrap_or_else(|e| e.into_inner());
        st.seq += 1;
        let (seq, slot) = (st.seq, st.slot);
        Telemetry::capture(seq, slot, &mut st.cursor)
    };
    send(stream, &Msg::Telemetry { telemetry })
}

/// Run the worker protocol loop on an established connection. Returns when
/// the coordinator sends `Shutdown` or the connection fails.
pub fn run_worker(stream: TcpStream, worker_id: u64) -> Result<(), WireError> {
    // Metrics are recorded process-locally and shipped to the coordinator as
    // cumulative snapshots (one per `Result`, a final one in `Stats`);
    // without this the worker's GEMM/checkpoint/cache counters stay zero and
    // the merged run report under-counts. The timeline rings are bounded
    // (staleness, not growth, on overflow), so they stay on unconditionally
    // too: live `Telemetry` frames then need no extra negotiation.
    swt_obs::enable();
    swt_obs::timeline::enable();
    swt_obs::span::set_worker(worker_id as usize);
    stream.set_nodelay(true)?;
    let reader_stream = stream.try_clone()?;
    let writer = Arc::new(Mutex::new(stream));

    send(&writer, &Msg::Hello { version: PROTOCOL_VERSION, worker_id, pid: std::process::id() })?;
    let mut buf = Vec::new();
    let run = {
        let mut guard = writer.lock().unwrap_or_else(|e| e.into_inner());
        let ty = read_frame(&mut *guard, &mut buf)?;
        match Msg::decode(ty, &buf)? {
            Msg::HelloAck { version, run } => {
                if version != PROTOCOL_VERSION {
                    let err =
                        WireError::VersionMismatch { ours: PROTOCOL_VERSION, theirs: version };
                    drop(guard);
                    let _ = send(&writer, &Msg::Error { message: err.to_string() });
                    return Err(err);
                }
                run
            }
            Msg::Error { message } => return Err(WireError::Protocol(message)),
            other => {
                let err = WireError::Protocol(format!(
                    "expected HelloAck, got frame {:#04x}",
                    other.frame_type()
                ));
                drop(guard);
                let _ = send(&writer, &Msg::Error { message: err.to_string() });
                return Err(err);
            }
        }
    };
    swt_obs::info!(
        "swt_dist",
        "worker {worker_id} handshake ok: app={} scale={:?} threads={} elastic={}",
        run.app.name(),
        run.scale,
        run.threads,
        // v6 autoscale tail: a nonzero max means this pool may grow/shrink
        // around us while we run.
        if run.autoscale_max > 0 {
            format!("{}..={}", run.autoscale_min, run.autoscale_max)
        } else {
            "off".into()
        }
    );

    // Pin this process's intra-op thread budget: each worker models one GPU
    // and must not fan out to the whole machine (same policy as the
    // in-process pool, but per process instead of per run).
    let _budget = swt_tensor::parallel::scoped_max_threads(run.threads.max(1) as usize);
    let mut evaluator = build_evaluator(&run)?;

    // The reader thread owns the receive half: it answers Pings immediately
    // (heartbeats must flow while the main thread is deep in a long
    // evaluation) and forwards Tasks over a channel. Dropping the sender —
    // on Shutdown, a protocol violation, or a dead socket — ends the main
    // loop below.
    let (task_tx, task_rx) = mpsc::channel::<Candidate>();
    // One telemetry stream per worker, shared by both sending sites: the
    // heartbeat responder below (steady cadence even mid-evaluation) and
    // the main loop (fresh snapshot right after each `Result`).
    let telemetry = Arc::new(Mutex::new(TelemetryState {
        seq: 0,
        cursor: 0,
        slot: swt_obs::registry::SpanStat::slot_for(Some(worker_id as usize)),
    }));
    let ping_writer = Arc::clone(&writer);
    let ping_telemetry = Arc::clone(&telemetry);
    let reader = std::thread::spawn(move || -> Result<(), WireError> {
        let mut reader_stream = reader_stream;
        let mut buf = Vec::new();
        loop {
            let ty = read_frame(&mut reader_stream, &mut buf)?;
            match Msg::decode(ty, &buf) {
                Ok(Msg::Ping { nonce }) => {
                    send(&ping_writer, &Msg::Pong { nonce })?;
                    send_telemetry(&ping_writer, &ping_telemetry)?;
                }
                Ok(Msg::Task { cand }) => {
                    if task_tx.send(cand).is_err() {
                        return Ok(()); // main loop gone; nothing left to do
                    }
                }
                Ok(Msg::Shutdown) => return Ok(()),
                Ok(Msg::Retire { decision, reason }) => {
                    // Drain-then-close: the coordinator only retires idle
                    // workers, so the main loop has nothing in flight —
                    // dropping task_tx ends it and the normal teardown
                    // (final telemetry + Stats) runs.
                    swt_obs::info!(
                        "swt_dist",
                        "worker retired by autoscale decision {decision}: {reason}"
                    );
                    return Ok(());
                }
                Ok(Msg::Error { message }) => return Err(WireError::Protocol(message)),
                Ok(other) => {
                    let err = format!("unexpected frame {:#04x} at worker", other.frame_type());
                    let _ = send(&ping_writer, &Msg::Error { message: err.clone() });
                    return Err(WireError::Protocol(err));
                }
                Err(err) => {
                    let _ = send(&ping_writer, &Msg::Error { message: err.to_string() });
                    return Err(err);
                }
            }
        }
    });

    // Main loop: evaluate until the reader closes the channel. A panic in
    // `evaluate` (store write failure, poisoned state) intentionally kills
    // the process — the coordinator reassigns.
    let mut eval_err = None;
    loop {
        // Mirror the in-process pool's span names so a live view shows the
        // same queue_wait / eval / result_send split either way.
        let cand = {
            let _wait_span = swt_obs::span!("nas.queue_wait");
            match task_rx.recv() {
                Ok(cand) => cand,
                Err(_) => break,
            }
        };
        let id = cand.id;
        let rung = cand.rung;
        let outcome = evaluator.evaluate(&cand);
        let stats = WorkerMetrics::capture();
        let sent = {
            let _send_span = swt_obs::span!("nas.result_send");
            send(&writer, &Msg::Result { id, outcome, stats, rung })
        };
        if let Err(e) = sent {
            eval_err = Some(e);
            break;
        }
        if let Err(e) = send_telemetry(&writer, &telemetry) {
            eval_err = Some(e);
            break;
        }
    }
    // Clean teardown: flush the final cumulative snapshot. Best-effort — the
    // coordinator falls back to the last Result snapshot if this frame is
    // lost, so a dead socket here must not turn a clean shutdown into an
    // error.
    if eval_err.is_none() {
        // Final telemetry first: the `Stats` frame is what the coordinator
        // treats as the authoritative last snapshot, so it goes last.
        let _ = send_telemetry(&writer, &telemetry);
        let _ = send(&writer, &Msg::Stats { stats: WorkerMetrics::capture() });
    }
    // Unblock the reader if we exited first (send failure): closing the
    // socket fails its blocking read.
    {
        let guard = writer.lock().unwrap_or_else(|e| e.into_inner());
        let _ = guard.shutdown(std::net::Shutdown::Both);
    }
    let reader_result = match reader.join() {
        Ok(res) => res,
        Err(_) => Err(WireError::Protocol("worker reader thread panicked".into())),
    };
    match (eval_err, reader_result) {
        (Some(e), _) => Err(e),
        (None, Err(e)) => match e {
            // A dead socket after we stopped sending is the normal
            // coordinator-initiated teardown, not a failure.
            WireError::Io(_) => Ok(()),
            other => Err(other),
        },
        (None, Ok(())) => Ok(()),
    }
}

fn build_evaluator(run: &RunSpec) -> Result<Evaluator, WireError> {
    let problem = Arc::new(run.app.problem(run.scale, run.data_seed));
    let space = Arc::new(SearchSpace::for_app(run.app));
    // Each worker fronts the shared store with its own provider cache (its
    // slice of the run's byte budget): a parent checkpoint read for the
    // index and again for the tensors costs one store round-trip, not two,
    // and repeat parents are served from memory entirely. The backend is
    // the shared `DirStore` by default, or — when the coordinator sent a
    // v5 `store_url` — a `RemoteStore` session with the checkpoint server,
    // bucketed by the run's namespace.
    let store: Arc<dyn CheckpointStore> = if run.store_url.is_empty() {
        let dir = DirStore::new(&run.store_dir)?;
        if run.cache_bytes > 0 {
            Arc::new(CachedStore::new(dir, run.cache_bytes))
        } else {
            Arc::new(dir)
        }
    } else {
        let secret = std::env::var("SWT_CKPT_SECRET").unwrap_or_default();
        // Bucket names must be valid tokens; an un-namespaced run shares
        // the server's "default" bucket (ids are still unique per run).
        let bucket = if run.namespace.is_empty() { "default" } else { run.namespace.as_str() };
        let remote = RemoteStore::connect(&run.store_url, bucket, &secret);
        if run.cache_bytes > 0 {
            Arc::new(CachedStore::new(remote, run.cache_bytes))
        } else {
            Arc::new(remote)
        }
    };
    let mut evaluator = Evaluator::with_namespace(
        problem,
        space,
        store,
        run.scheme,
        run.epochs as usize,
        run.run_seed,
        run.namespace.clone(),
    );
    // The fidelity knobs travel in the RunSpec so every worker applies the
    // same pre-filter threshold and convergence rule the in-process pool
    // would — the off-switch identity gate depends on this symmetry.
    evaluator.set_fidelity(run.eval_fidelity());
    Ok(evaluator)
}

/// Entry point for the `swt dist-worker` bin mode: connect and run.
pub fn worker_main(connect: &str, worker_id: u64) -> Result<(), WireError> {
    let stream = TcpStream::connect(connect)?;
    run_worker(stream, worker_id)
}
