//! Locating and launching worker processes.
//!
//! Workers are children of the coordinator process running the `swt`
//! binary's `dist-worker` mode. The binary is found, in order, from the
//! `SWT_DIST_WORKER_EXE` environment variable, an explicit
//! [`crate::DistConfig::worker_exe`] override, or next to the current
//! executable — which covers both `swt dist-run` (the worker is the same
//! binary) and test/bench binaries (cargo puts package bins in the same
//! target directory, one level above `deps/`).

use std::io;
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};

/// Environment variable overriding worker-binary discovery.
pub const WORKER_EXE_ENV: &str = "SWT_DIST_WORKER_EXE";

fn exe_name() -> String {
    format!("swt{}", std::env::consts::EXE_SUFFIX)
}

/// Resolve the worker executable path.
pub fn find_worker_exe(overridden: Option<&PathBuf>) -> io::Result<PathBuf> {
    if let Some(path) = std::env::var_os(WORKER_EXE_ENV) {
        return Ok(PathBuf::from(path));
    }
    if let Some(path) = overridden {
        return Ok(path.clone());
    }
    let exe = std::env::current_exe()?;
    let mut dir = exe
        .parent()
        .ok_or_else(|| io::Error::new(io::ErrorKind::NotFound, "current exe has no parent dir"))?
        .to_path_buf();
    // Test and bench binaries live in target/{profile}/deps/; the package
    // binary lands one level up.
    loop {
        let candidate = dir.join(exe_name());
        if candidate.is_file() {
            return Ok(candidate);
        }
        if !dir.pop() {
            return Err(io::Error::new(
                io::ErrorKind::NotFound,
                format!(
                    "worker binary `{}` not found near {} — build it with \
                     `cargo build -p swt` or set {WORKER_EXE_ENV}",
                    exe_name(),
                    exe.display()
                ),
            ));
        }
    }
}

/// Spawn one worker child connecting back to `addr` as `worker_id`.
///
/// stdin is closed (workers take everything from the socket); stdout/stderr
/// are inherited so worker logs (and crash messages) surface in the
/// coordinator's terminal.
pub fn spawn_worker(exe: &PathBuf, addr: &str, worker_id: usize) -> io::Result<Child> {
    Command::new(exe)
        .arg("dist-worker")
        .arg("--connect")
        .arg(addr)
        .arg("--worker-id")
        .arg(worker_id.to_string())
        .stdin(Stdio::null())
        .spawn()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn explicit_override_wins_when_env_is_unset() -> io::Result<()> {
        if std::env::var_os(WORKER_EXE_ENV).is_some() {
            return Ok(()); // environment pins the answer; nothing to test
        }
        let path = PathBuf::from("/nonexistent/swt");
        assert_eq!(find_worker_exe(Some(&path))?, path);
        Ok(())
    }
}
