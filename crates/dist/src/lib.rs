//! `swt-dist`: multi-process NAS execution (the paper's §IV cluster shape).
//!
//! The paper runs two-phase NAS on a DeepHyper/Ray coordinator–worker
//! cluster whose evaluators share checkpoints through a parallel file
//! system. This crate reproduces that topology with std only: a
//! *coordinator* process runs the search-strategy loop (the generic
//! `swt_nas::run_nas_with_backend`) and dispatches candidates to *worker*
//! processes over a length-prefixed binary protocol on localhost TCP;
//! workers evaluate candidates and share one `DirStore` on disk — the
//! parallel-file-system stand-in.
//!
//! Everything is built for reproducibility under failure (Li & Talwalkar's
//! requirement for distributed NAS): the runner's deterministic dispatch
//! window plus per-candidate seeding makes distributed runs — even runs
//! where workers are SIGKILLed mid-flight — bit-identical to the
//! single-process thread pool. See DESIGN.md §10 for the protocol and
//! failure model.
//!
//! Modules: [`frame`] (framing + errors), [`wire`] (typed messages),
//! [`coordinator`] ([`DistBackend`]), [`worker`] (the `swt dist-worker`
//! loop), [`spawn`] (child-process management), [`live`] (the streamed
//! in-flight run view behind `swt dist-run --serve`), [`policy`] (the
//! autoscaling decision function behind `--autoscale`).

pub mod coordinator;
pub mod frame;
pub mod live;
pub mod policy;
pub mod spawn;
pub mod wire;
pub mod worker;

pub use coordinator::DistBackend;
pub use frame::{WireError, MAX_FRAME_LEN, PROTOCOL_VERSION};
pub use live::{LiveRunView, WorkerView, STOP_COUNTER_KINDS};
pub use policy::{
    PolicyConfig, PolicyError, PoolSnapshot, ScaleDecision, ScalePolicy, MAX_POOL_WORKERS,
};
pub use wire::{Msg, RunSpec, Telemetry, WorkerMetrics};
pub use worker::worker_main;

use std::io;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;
use swt_data::{AppKind, DataScale};
use swt_nas::runner::NasConfig;
use swt_nas::trace::NasTrace;
use swt_obs::RunReport;
use swt_space::SearchSpace;

/// Fault injection: SIGKILL `worker` once `after_results` results have been
/// delivered to the strategy. Used by `bench_dist` and the CI smoke gate to
/// exercise the reassignment path deterministically.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KillPlan {
    pub worker: usize,
    pub after_results: usize,
}

/// Elastic scale-out injection: once `after_results` results have been
/// delivered to the strategy, spawn `count` extra worker processes and block
/// until the coordinator has admitted (or, at `max_workers`, rejected) every
/// one of them. Blocking makes the join visible at a deterministic point in
/// the schedule, which the test matrix and the CI smoke gate rely on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JoinPlan {
    pub after_results: usize,
    pub count: usize,
}

/// Per-run statistics the coordinator hands back from
/// [`DistBackend::finish`]: each worker process's last cumulative metrics
/// snapshot plus the elasticity/failure tallies for this run. Instance-local
/// on purpose — tests assert conservation on these without diffing the
/// process-global registry.
#[derive(Debug, Clone, Default)]
pub struct DistRunStats {
    /// `(worker slot, last snapshot)` for every worker that delivered one.
    pub per_worker: Vec<(usize, WorkerMetrics)>,
    /// Workers admitted after launch (late `Hello`s).
    pub joined: usize,
    /// Join attempts refused because the pool was at `max_workers`.
    pub rejected: usize,
    /// Workers declared lost (crash or heartbeat timeout).
    pub lost: usize,
    /// Candidates reassigned off lost workers.
    pub reassigned: usize,
    /// Workers spawned by autoscale grow decisions.
    pub grown: usize,
    /// Workers drained out of the pool by autoscale shrink decisions.
    pub retired: usize,
}

impl DistRunStats {
    /// Merge every worker snapshot into one counters/histograms-only
    /// [`RunReport`] — the cross-process half of the run's totals.
    pub fn workers_report(&self) -> RunReport {
        let mut out = RunReport::default();
        for (_, metrics) in &self.per_worker {
            out.merge(&metrics.to_report());
        }
        out
    }
}

/// Distribution-specific configuration, complementing
/// [`swt_nas::runner::NasConfig`] (which holds everything the strategy and
/// evaluators need).
#[derive(Debug, Clone)]
pub struct DistConfig {
    pub app: AppKind,
    pub scale: DataScale,
    /// Seed of the synthetic dataset; workers rebuild identical data.
    pub data_seed: u64,
    /// Root of the shared on-disk checkpoint store.
    pub store_dir: PathBuf,
    /// Networked checkpoint store endpoint (`tcp://host:port`). `None`
    /// keeps the shared `DirStore` at `store_dir` — the default, and the
    /// configuration whose traces the A/B identity gates pin. `Some` makes
    /// every worker dial a `swt-ckpt-server` instead (secret from the
    /// `SWT_CKPT_SECRET` env var; `NasConfig::namespace` is the bucket).
    pub store_url: Option<String>,
    /// Ping cadence; also the coordinator's event-poll granularity.
    pub heartbeat_interval: Duration,
    /// An unanswered ping older than this marks the worker lost.
    pub heartbeat_timeout: Duration,
    /// How long workers get to spawn + connect back.
    pub connect_timeout: Duration,
    /// Worker binary override (`SWT_DIST_WORKER_EXE` beats this; see
    /// [`spawn::find_worker_exe`]).
    pub worker_exe: Option<PathBuf>,
    /// Optional fault injection for benches/tests.
    pub kill_worker_after: Option<KillPlan>,
    /// Processes to spawn at launch (default: `nas.workers`). May be below
    /// the dispatch window: the window is sized by `nas.workers` alone, so a
    /// short-handed pool just queues the overflow until workers join —
    /// elasticity never changes the schedule, only who evaluates it.
    pub initial_workers: Option<usize>,
    /// Hard cap on concurrently-live workers; late joins beyond it are
    /// refused with an `Error` frame (`dist.joins_rejected`).
    pub max_workers: usize,
    /// Optional scale-out injection for benches/tests.
    pub join_after: Option<JoinPlan>,
    /// Autoscaling policy; `None` (the default) keeps the pool fixed. The
    /// policy only ever changes which *processes* evaluate — the dispatch
    /// window, and with it the candidate schedule, never moves (its
    /// `max_workers` must not exceed [`DistConfig::max_workers`]).
    pub autoscale: Option<PolicyConfig>,
    /// Live run view the coordinator folds streamed telemetry into. Pass a
    /// view that is also handed to an [`swt_obs::ObsServer`] to watch the
    /// run over HTTP; when `None` the backend keeps a private one (the
    /// stream is always folded — monitoring must not change behaviour).
    pub live: Option<Arc<LiveRunView>>,
}

impl DistConfig {
    /// Defaults tuned for slow shared CI machines: generous timeouts, since
    /// a loaded single-core host can starve a healthy worker's reader
    /// thread for whole seconds.
    pub fn new(app: AppKind, scale: DataScale, data_seed: u64, store_dir: PathBuf) -> Self {
        DistConfig {
            app,
            scale,
            data_seed,
            store_dir,
            store_url: None,
            heartbeat_interval: Duration::from_millis(200),
            heartbeat_timeout: Duration::from_secs(5),
            connect_timeout: Duration::from_secs(30),
            worker_exe: None,
            kill_worker_after: None,
            initial_workers: None,
            max_workers: 64,
            join_after: None,
            autoscale: None,
            live: None,
        }
    }
}

/// Run one NAS candidate-estimation phase on worker processes.
///
/// The counterpart of `swt_nas::run_nas`: same strategy loop, same
/// deterministic schedule, but evaluation happens in `nas.workers` child
/// processes sharing the `DirStore` at `dist.store_dir`. For a given
/// `NasConfig` the returned trace's scores, architectures, parents and
/// transfer counts are bit-identical to the in-process run's.
pub fn run_nas_dist(nas: &NasConfig, dist: &DistConfig) -> io::Result<NasTrace> {
    run_nas_dist_with_stats(nas, dist).map(|(trace, _)| trace)
}

/// [`run_nas_dist`], additionally returning the run's [`DistRunStats`]
/// (worker metric snapshots + join/loss tallies). The graceful
/// [`DistBackend::finish`] teardown this uses also folds every worker's
/// counters and histograms into the process-global registry, so a
/// `RunReport::capture()` after this call reports whole-run totals.
pub fn run_nas_dist_with_stats(
    nas: &NasConfig,
    dist: &DistConfig,
) -> io::Result<(NasTrace, DistRunStats)> {
    let space = Arc::new(SearchSpace::for_app(dist.app));
    let mut backend = DistBackend::launch(nas, dist)?;
    let trace = swt_nas::run_nas_with_backend(dist.app.name(), space, nas, &mut backend)?;
    let stats = backend.finish()?;
    drop(backend); // joins readers, reaps any straggling children
    Ok((trace, stats))
}
