//! `swt-dist`: multi-process NAS execution (the paper's §IV cluster shape).
//!
//! The paper runs two-phase NAS on a DeepHyper/Ray coordinator–worker
//! cluster whose evaluators share checkpoints through a parallel file
//! system. This crate reproduces that topology with std only: a
//! *coordinator* process runs the search-strategy loop (the generic
//! `swt_nas::run_nas_with_backend`) and dispatches candidates to *worker*
//! processes over a length-prefixed binary protocol on localhost TCP;
//! workers evaluate candidates and share one `DirStore` on disk — the
//! parallel-file-system stand-in.
//!
//! Everything is built for reproducibility under failure (Li & Talwalkar's
//! requirement for distributed NAS): the runner's deterministic dispatch
//! window plus per-candidate seeding makes distributed runs — even runs
//! where workers are SIGKILLed mid-flight — bit-identical to the
//! single-process thread pool. See DESIGN.md §10 for the protocol and
//! failure model.
//!
//! Modules: [`frame`] (framing + errors), [`wire`] (typed messages),
//! [`coordinator`] ([`DistBackend`]), [`worker`] (the `swt dist-worker`
//! loop), [`spawn`] (child-process management).

pub mod coordinator;
pub mod frame;
pub mod spawn;
pub mod wire;
pub mod worker;

pub use coordinator::DistBackend;
pub use frame::{WireError, MAX_FRAME_LEN, PROTOCOL_VERSION};
pub use wire::{Msg, RunSpec};
pub use worker::worker_main;

use std::io;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;
use swt_data::{AppKind, DataScale};
use swt_nas::runner::NasConfig;
use swt_nas::trace::NasTrace;
use swt_space::SearchSpace;

/// Fault injection: SIGKILL `worker` once `after_results` results have been
/// delivered to the strategy. Used by `bench_dist` and the CI smoke gate to
/// exercise the reassignment path deterministically.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KillPlan {
    pub worker: usize,
    pub after_results: usize,
}

/// Distribution-specific configuration, complementing
/// [`swt_nas::runner::NasConfig`] (which holds everything the strategy and
/// evaluators need).
#[derive(Debug, Clone)]
pub struct DistConfig {
    pub app: AppKind,
    pub scale: DataScale,
    /// Seed of the synthetic dataset; workers rebuild identical data.
    pub data_seed: u64,
    /// Root of the shared on-disk checkpoint store.
    pub store_dir: PathBuf,
    /// Ping cadence; also the coordinator's event-poll granularity.
    pub heartbeat_interval: Duration,
    /// An unanswered ping older than this marks the worker lost.
    pub heartbeat_timeout: Duration,
    /// How long workers get to spawn + connect back.
    pub connect_timeout: Duration,
    /// Worker binary override (`SWT_DIST_WORKER_EXE` beats this; see
    /// [`spawn::find_worker_exe`]).
    pub worker_exe: Option<PathBuf>,
    /// Optional fault injection for benches/tests.
    pub kill_worker_after: Option<KillPlan>,
}

impl DistConfig {
    /// Defaults tuned for slow shared CI machines: generous timeouts, since
    /// a loaded single-core host can starve a healthy worker's reader
    /// thread for whole seconds.
    pub fn new(app: AppKind, scale: DataScale, data_seed: u64, store_dir: PathBuf) -> Self {
        DistConfig {
            app,
            scale,
            data_seed,
            store_dir,
            heartbeat_interval: Duration::from_millis(200),
            heartbeat_timeout: Duration::from_secs(5),
            connect_timeout: Duration::from_secs(30),
            worker_exe: None,
            kill_worker_after: None,
        }
    }
}

/// Run one NAS candidate-estimation phase on worker processes.
///
/// The counterpart of `swt_nas::run_nas`: same strategy loop, same
/// deterministic schedule, but evaluation happens in `nas.workers` child
/// processes sharing the `DirStore` at `dist.store_dir`. For a given
/// `NasConfig` the returned trace's scores, architectures, parents and
/// transfer counts are bit-identical to the in-process run's.
pub fn run_nas_dist(nas: &NasConfig, dist: &DistConfig) -> io::Result<NasTrace> {
    let space = Arc::new(SearchSpace::for_app(dist.app));
    let mut backend = DistBackend::launch(nas, dist)?;
    let trace = swt_nas::run_nas_with_backend(dist.app.name(), space, nas, &mut backend)?;
    drop(backend); // joins readers, reaps children
    Ok(trace)
}
