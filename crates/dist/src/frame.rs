//! Frame layer of the dist wire protocol.
//!
//! The mechanism — `[u32 len LE][u8 type][payload]` framing, the
//! bounds-checked [`Cursor`], [`put_string`], and the typed [`WireError`] —
//! lives in the shared `swt-wire` crate (the checkpoint server speaks the
//! same framing). This module re-exports those primitives and layers the
//! dist-specific pieces on top: the protocol version and the
//! `dist.frames_tx` / `dist.frames_rx` counters.

use std::io::{Read, Write};

pub use swt_wire::{put_string, Cursor, WireError, MAX_FRAME_LEN};

/// Protocol version exchanged in the handshake. Bump on any frame-layout
/// change; coordinator and worker refuse mismatched peers.
///
/// v2: `Result` frames carry the worker's cumulative metrics snapshot, a
/// `Stats` frame (0x09) delivers the final snapshot at shutdown, and
/// `HelloAck`'s `RunSpec` gains the per-worker provider-cache byte budget.
///
/// v3: a `Telemetry` frame (0x0A) streams seq-numbered span/gauge snapshots
/// plus timeline event batches between `Result`s. The addition is purely
/// additive — every v2 frame decodes unchanged — but the version is bumped
/// because v2 peers would drop the connection on the unknown type byte.
///
/// v4: multi-fidelity fields travel as *optional tails* — fixed-size field
/// groups appended after each frame's v3 payload. `HelloAck` gains the run's
/// fidelity knobs (prefilter quantile, convergence window/min-delta), `Task`
/// the candidate's rung and per-task epoch override, and `Result` the
/// worker's stop reason plus echoed rung. A v3-shaped payload (no tail)
/// still decodes, with fidelity-off defaults; a *partial* tail is malformed.
///
/// v5: `HelloAck`'s `RunSpec` gains a variable-length `store_url` tail
/// (`[u16 len][bytes]`) after the v4 fidelity group, selecting the remote
/// checkpoint store (`tcp://host:port`); empty or absent means the shared
/// `DirStore` directory. Both the v3-shaped and v4-shaped payloads still
/// decode (with an empty url); a partial url tail is malformed.
///
/// v6: autoscaling. A `Retire` frame (0x0B) drains an idle worker out of the
/// pool (same orderly teardown as `Shutdown`, but counted as a retirement),
/// and `HelloAck`'s `RunSpec` gains an autoscale tail (`[u32 min_workers]`
/// `[u32 max_workers]`) after the v5 store tail so workers can log that they
/// joined an elastic pool. `(0, 0)` means autoscale off; any other pair must
/// satisfy `1 ≤ min ≤ max ≤ MAX_POOL_WORKERS`. All earlier-shaped payloads
/// still decode (autoscale off); a partial tail is malformed.
pub const PROTOCOL_VERSION: u32 = 6;

/// Write one frame. Counts `dist.frames_tx`.
pub fn write_frame(w: &mut impl Write, ty: u8, payload: &[u8]) -> Result<(), WireError> {
    swt_wire::write_frame(w, ty, payload)?;
    swt_obs::counter!("dist.frames_tx").inc();
    Ok(())
}

/// Read one frame into `buf` (reused across calls), returning the type
/// byte. Counts `dist.frames_rx`. EOF before a complete header surfaces as
/// `WireError::Io(UnexpectedEof)`.
pub fn read_frame(r: &mut impl Read, buf: &mut Vec<u8>) -> Result<u8, WireError> {
    let ty = swt_wire::read_frame(r, buf)?;
    swt_obs::counter!("dist.frames_rx").inc();
    Ok(ty)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_round_trip() -> Result<(), WireError> {
        let mut wire = Vec::new();
        write_frame(&mut wire, 0x03, b"hello")?;
        write_frame(&mut wire, 0x07, b"")?;
        let mut r = &wire[..];
        let mut buf = Vec::new();
        let ty = read_frame(&mut r, &mut buf)?;
        assert_eq!((ty, buf.as_slice()), (0x03, &b"hello"[..]));
        let ty = read_frame(&mut r, &mut buf)?;
        assert_eq!((ty, buf.len()), (0x07, 0));
        Ok(())
    }

    #[test]
    fn oversized_frame_is_rejected_not_allocated() {
        // A hostile header announcing 4 GiB must fail fast.
        let mut wire = Vec::new();
        wire.extend_from_slice(&u32::MAX.to_le_bytes());
        wire.push(0x01);
        let mut buf = Vec::new();
        let got = read_frame(&mut &wire[..], &mut buf);
        assert!(matches!(got, Err(WireError::FrameTooLarge(u32::MAX))), "got {got:?}");
    }

    #[test]
    fn truncated_stream_is_an_io_error() {
        let mut wire = Vec::new();
        let _ = write_frame(&mut wire, 0x03, b"hello");
        wire.truncate(wire.len() - 2);
        let mut buf = Vec::new();
        assert!(matches!(read_frame(&mut &wire[..], &mut buf), Err(WireError::Io(_))));
    }

    #[test]
    fn frame_counters_advance() -> Result<(), WireError> {
        swt_obs::enable(); // counter mutators are gated on enabled()
        let tx0 = swt_obs::counter!("dist.frames_tx").get();
        let rx0 = swt_obs::counter!("dist.frames_rx").get();
        let mut wire = Vec::new();
        write_frame(&mut wire, 0x01, b"x")?;
        let mut buf = Vec::new();
        read_frame(&mut &wire[..], &mut buf)?;
        assert!(swt_obs::counter!("dist.frames_tx").get() > tx0);
        assert!(swt_obs::counter!("dist.frames_rx").get() > rx0);
        Ok(())
    }

    #[test]
    fn cursor_rejects_truncation_and_trailing_bytes() {
        let mut c = Cursor::new(&[1, 0]);
        assert!(matches!(c.u32(), Err(WireError::Malformed(_))));
        let mut c = Cursor::new(&[1, 0, 0, 0, 9]);
        let _ = c.u32();
        assert!(matches!(c.finish(), Err(WireError::Malformed(_))));
    }

    #[test]
    fn string_round_trip_and_invalid_utf8() -> Result<(), WireError> {
        let mut out = Vec::new();
        put_string(&mut out, "namespace_α")?;
        let mut c = Cursor::new(&out);
        assert_eq!(c.string()?, "namespace_α");
        c.finish()?;
        let bad = [2u8, 0, 0xff, 0xfe];
        let mut c = Cursor::new(&bad);
        assert!(matches!(c.string(), Err(WireError::Malformed(_))));
        Ok(())
    }
}
