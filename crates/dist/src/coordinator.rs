//! The coordinator: spawns workers, speaks the wire protocol, and exposes
//! the pool to the NAS runner as an [`EvalBackend`].
//!
//! Failure model (DESIGN.md §10): a worker is *lost* when its socket dies
//! (process crash → immediate EOF) or an outstanding heartbeat goes
//! unanswered past the timeout (hang/partition). A lost worker's in-flight
//! candidate goes back to the front of the pending queue and is re-evaluated
//! elsewhere — candidate seeds derive from `(run_seed, id)` and parent
//! checkpoints are immutable once written, so the re-run reproduces the
//! original result exactly and the run stays bit-identical to a failure-free
//! one. The pool degrades gracefully down to a single surviving worker;
//! only losing *all* workers aborts the run.

use crate::frame::{read_frame, write_frame, WireError, PROTOCOL_VERSION};
use crate::spawn::{find_worker_exe, spawn_worker};
use crate::wire::{Msg, RunSpec};
use crate::DistConfig;
use std::collections::{HashMap, VecDeque};
use std::io;
use std::net::{TcpListener, TcpStream};
use std::process::Child;
use std::sync::mpsc::{self, RecvTimeoutError};
use std::sync::Arc;
use std::time::{Duration, Instant};
use swt_nas::runner::NasConfig;
use swt_nas::{BackendResult, Candidate, EvalBackend};

enum Event {
    Msg { worker: usize, msg: Msg },
    Gone { worker: usize, reason: String },
}

struct WorkerSlot {
    child: Child,
    /// Write half; `None` once the worker is lost.
    writer: Option<TcpStream>,
    reader: Option<std::thread::JoinHandle<()>>,
    /// Candidate currently evaluating on this worker.
    current: Option<u64>,
    alive: bool,
    /// Ping in flight: `(nonce, send time)`. A worker with an outstanding
    /// ping older than the timeout is declared lost — liveness is judged on
    /// unanswered pings, never on mere quietness (an idle worker between
    /// tasks is silent but healthy).
    outstanding_ping: Option<(u64, Instant)>,
    rtt: Arc<swt_obs::metrics::Histogram>,
}

/// Multi-process evaluation backend: the coordinator side of `swt-dist`.
pub struct DistBackend {
    slots: Vec<WorkerSlot>,
    rx: mpsc::Receiver<Event>,
    /// Submitted candidates not yet assigned to a worker (grows past 1 only
    /// while the pool is degraded below the dispatch window).
    pending: VecDeque<Candidate>,
    /// Assigned-or-pending candidates by id, with their submit timestamp.
    inflight: HashMap<u64, (Candidate, f64)>,
    start: Instant,
    interval: Duration,
    timeout: Duration,
    next_nonce: u64,
    results_delivered: usize,
    kill_plan: Option<crate::KillPlan>,
}

impl DistBackend {
    /// Bind a localhost listener, spawn `nas.workers` worker processes, and
    /// complete the handshake with each.
    pub fn launch(nas: &NasConfig, dist: &DistConfig) -> io::Result<DistBackend> {
        let n = nas.workers;
        assert!(n > 0, "need at least one worker");
        let listener = TcpListener::bind(("127.0.0.1", 0))?;
        let addr = listener.local_addr()?.to_string();
        let exe = find_worker_exe(dist.worker_exe.as_ref())?;
        swt_obs::info!("swt_dist", "coordinator on {addr}, spawning {n} × {}", exe.display());

        let hardware = std::thread::available_parallelism().map_or(1, |v| v.get());
        let run = RunSpec {
            app: dist.app,
            scale: dist.scale,
            data_seed: dist.data_seed,
            scheme: nas.scheme,
            epochs: nas.epochs as u32,
            run_seed: nas.seed,
            namespace: nas.namespace.clone(),
            store_dir: dist.store_dir.to_string_lossy().into_owned(),
            threads: (hardware / n).max(1) as u32,
        };

        let mut children = Vec::with_capacity(n);
        for worker_id in 0..n {
            children.push(Some(spawn_worker(&exe, &addr, worker_id)?));
        }

        // Accept until every worker has completed its handshake. The
        // listener polls non-blocking so a child that dies before
        // connecting (bad exe, immediate crash) turns into a clear error
        // instead of a hung accept.
        listener.set_nonblocking(true)?;
        let deadline = Instant::now() + dist.connect_timeout;
        let mut streams: Vec<Option<TcpStream>> = (0..n).map(|_| None).collect();
        let mut connected = 0;
        while connected < n {
            match listener.accept() {
                Ok((stream, _)) => {
                    stream.set_nonblocking(false)?;
                    stream.set_nodelay(true)?;
                    let worker_id = handshake(stream, &run, &mut streams)?;
                    connected += 1;
                    swt_obs::info!("swt_dist", "worker {worker_id} connected ({connected}/{n})");
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    for (worker_id, child) in children.iter_mut().enumerate() {
                        let exited = match child {
                            Some(c) => c.try_wait()?.map(|status| (worker_id, status)),
                            None => None,
                        };
                        if let Some((worker_id, status)) = exited {
                            reap_all(&mut children);
                            return Err(io::Error::new(
                                io::ErrorKind::ConnectionAborted,
                                format!("worker {worker_id} exited during startup: {status}"),
                            ));
                        }
                    }
                    if Instant::now() > deadline {
                        reap_all(&mut children);
                        return Err(io::Error::new(
                            io::ErrorKind::TimedOut,
                            format!("only {connected}/{n} workers connected before the deadline"),
                        ));
                    }
                    std::thread::sleep(Duration::from_millis(5));
                }
                Err(e) => {
                    reap_all(&mut children);
                    return Err(e);
                }
            }
        }

        let (tx, rx) = mpsc::channel();
        let mut slots = Vec::with_capacity(n);
        for (worker, (child, stream)) in children.into_iter().zip(streams).enumerate() {
            let (Some(child), Some(stream)) = (child, stream) else {
                return Err(io::Error::other("worker slot not filled"));
            };
            let reader_stream = stream.try_clone()?;
            let tx = tx.clone();
            let reader = std::thread::spawn(move || reader_loop(worker, reader_stream, tx));
            slots.push(WorkerSlot {
                child,
                writer: Some(stream),
                reader: Some(reader),
                current: None,
                alive: true,
                outstanding_ping: None,
                rtt: swt_obs::registry::global().histogram(&format!("dist.rtt_ns.w{worker}")),
            });
        }

        Ok(DistBackend {
            slots,
            rx,
            pending: VecDeque::new(),
            inflight: HashMap::new(),
            start: Instant::now(),
            interval: dist.heartbeat_interval,
            timeout: dist.heartbeat_timeout,
            next_nonce: 0,
            results_delivered: 0,
            kill_plan: dist.kill_worker_after.clone(),
        })
    }

    fn send_to(&mut self, worker: usize, msg: &Msg) -> Result<(), WireError> {
        let payload = msg.encode()?;
        let stream = self.slots[worker]
            .writer
            .as_mut()
            .ok_or_else(|| WireError::Protocol(format!("worker {worker} already lost")))?;
        write_frame(stream, msg.frame_type(), &payload)
    }

    /// Declare `worker` lost: reclaim its candidate for reassignment, close
    /// its socket and reap the process. Errors only when no worker is left.
    fn mark_lost(&mut self, worker: usize, reason: &str) -> io::Result<()> {
        if !self.slots[worker].alive {
            return Ok(());
        }
        swt_obs::warn!("swt_dist", "worker {worker} lost: {reason}");
        swt_obs::counter!("dist.workers_lost").inc();
        let slot = &mut self.slots[worker];
        slot.alive = false;
        slot.outstanding_ping = None;
        if let Some(stream) = slot.writer.take() {
            let _ = stream.shutdown(std::net::Shutdown::Both);
        }
        let _ = slot.child.kill();
        let _ = slot.child.wait();
        if let Some(id) = slot.current.take() {
            if let Some((cand, _)) = self.inflight.get(&id) {
                swt_obs::counter!("dist.reassigned").inc();
                swt_obs::info!("swt_dist", "reassigning candidate {id} from dead worker {worker}");
                self.pending.push_front(cand.clone());
            }
        }
        if self.slots.iter().any(|s| s.alive) {
            Ok(())
        } else {
            Err(io::Error::new(
                io::ErrorKind::ConnectionAborted,
                format!("all {} workers lost (last: worker {worker}: {reason})", self.slots.len()),
            ))
        }
    }

    /// Hand pending candidates to idle live workers.
    fn flush(&mut self) -> io::Result<()> {
        loop {
            if self.pending.is_empty() {
                return Ok(());
            }
            let Some(worker) = self
                .slots
                .iter()
                .position(|s| s.alive && s.current.is_none() && s.writer.is_some())
            else {
                return Ok(()); // every live worker busy; keep queueing
            };
            let Some(cand) = self.pending.pop_front() else {
                return Ok(());
            };
            let id = cand.id;
            match self.send_to(worker, &Msg::Task { cand: cand.clone() }) {
                Ok(()) => self.slots[worker].current = Some(id),
                Err(e) => {
                    self.pending.push_front(cand);
                    self.mark_lost(worker, &format!("task write failed: {e}"))?;
                }
            }
        }
    }

    /// One heartbeat round: time out workers with stale outstanding pings,
    /// ping everyone else.
    fn heartbeat_tick(&mut self) -> io::Result<()> {
        for worker in 0..self.slots.len() {
            if !self.slots[worker].alive {
                continue;
            }
            if let Some((_, sent)) = self.slots[worker].outstanding_ping {
                if sent.elapsed() > self.timeout {
                    self.mark_lost(worker, "heartbeat timeout")?;
                }
                continue;
            }
            let nonce = self.next_nonce;
            self.next_nonce += 1;
            match self.send_to(worker, &Msg::Ping { nonce }) {
                Ok(()) => self.slots[worker].outstanding_ping = Some((nonce, Instant::now())),
                Err(e) => self.mark_lost(worker, &format!("ping write failed: {e}"))?,
            }
        }
        self.flush()
    }

    /// Fault injection for benches and the CI smoke gate: SIGKILL a worker
    /// after the configured number of delivered results, then let the
    /// ordinary detection/reassignment machinery pick up the pieces. The
    /// kill waits until the victim is mid-evaluation, so the reassignment
    /// path (not merely loss detection) is guaranteed to run.
    fn maybe_inject_kill(&mut self) {
        let due = match &self.kill_plan {
            Some(plan) => {
                self.results_delivered >= plan.after_results
                    && self.slots.get(plan.worker).is_some_and(|s| s.alive && s.current.is_some())
            }
            None => false,
        };
        if !due {
            return;
        }
        if let Some(plan) = self.kill_plan.take() {
            if let Some(slot) = self.slots.get_mut(plan.worker) {
                if slot.alive {
                    swt_obs::info!(
                        "swt_dist",
                        "fault injection: SIGKILL worker {} after {} results",
                        plan.worker,
                        self.results_delivered
                    );
                    let _ = slot.child.kill();
                }
            }
        }
    }
}

impl EvalBackend for DistBackend {
    fn capacity(&self) -> usize {
        // Constant: the dispatch window must not shrink when workers die,
        // or the canonical schedule (and thus determinism) would change.
        self.slots.len()
    }

    fn submit(&mut self, cand: Candidate) -> io::Result<()> {
        let t_submit = self.start.elapsed().as_secs_f64();
        self.inflight.insert(cand.id, (cand.clone(), t_submit));
        self.pending.push_back(cand);
        self.flush()?;
        self.maybe_inject_kill();
        Ok(())
    }

    fn next_result(&mut self) -> io::Result<BackendResult> {
        loop {
            match self.rx.recv_timeout(self.interval) {
                Ok(Event::Msg { worker, msg }) => match msg {
                    Msg::Result { id, outcome } => {
                        if self.slots[worker].current == Some(id) {
                            self.slots[worker].current = None;
                        }
                        let Some((cand, t_start)) = self.inflight.remove(&id) else {
                            continue; // late duplicate; the runner never sees it
                        };
                        self.results_delivered += 1;
                        self.maybe_inject_kill();
                        self.flush()?;
                        let t_end = self.start.elapsed().as_secs_f64();
                        return Ok(BackendResult { cand, t_start, t_end, outcome });
                    }
                    Msg::Pong { nonce } => {
                        let slot = &mut self.slots[worker];
                        if let Some((expected, sent)) = slot.outstanding_ping {
                            if expected == nonce {
                                slot.outstanding_ping = None;
                                slot.rtt.observe(sent.elapsed().as_nanos() as u64);
                                swt_obs::counter!("dist.heartbeats").inc();
                            }
                        }
                    }
                    Msg::Error { message } => {
                        self.mark_lost(worker, &format!("worker reported: {message}"))?;
                        self.flush()?;
                    }
                    other => {
                        let reason = format!("unexpected frame {:#04x}", other.frame_type());
                        self.mark_lost(worker, &reason)?;
                        self.flush()?;
                    }
                },
                Ok(Event::Gone { worker, reason }) => {
                    self.mark_lost(worker, &reason)?;
                    self.flush()?;
                }
                Err(RecvTimeoutError::Timeout) => self.heartbeat_tick()?,
                Err(RecvTimeoutError::Disconnected) => {
                    return Err(io::Error::new(
                        io::ErrorKind::BrokenPipe,
                        "all worker connections closed with work pending",
                    ));
                }
            }
        }
    }
}

impl Drop for DistBackend {
    fn drop(&mut self) {
        // Graceful first: a Shutdown frame lets idle workers exit cleanly.
        for worker in 0..self.slots.len() {
            if self.slots[worker].writer.is_some() {
                let _ = self.send_to(worker, &Msg::Shutdown);
            }
        }
        for slot in &mut self.slots {
            if let Some(stream) = slot.writer.take() {
                let _ = stream.shutdown(std::net::Shutdown::Both);
            }
            // SIGKILL is a no-op for workers that already exited on
            // Shutdown, and ends stragglers (e.g. mid-evaluation after an
            // aborted run) without blocking the coordinator.
            let _ = slot.child.kill();
            let _ = slot.child.wait();
            if let Some(reader) = slot.reader.take() {
                let _ = reader.join();
            }
        }
    }
}

fn reap_all(children: &mut [Option<Child>]) {
    for child in children.iter_mut().flatten() {
        let _ = child.kill();
        let _ = child.wait();
    }
}

/// Server side of the handshake on a fresh connection: read `Hello`,
/// validate, reply `HelloAck`, and park the stream in its worker slot.
fn handshake(
    stream: TcpStream,
    run: &RunSpec,
    streams: &mut [Option<TcpStream>],
) -> io::Result<usize> {
    let mut stream = stream;
    stream.set_read_timeout(Some(Duration::from_secs(10)))?;
    let mut buf = Vec::new();
    let ty = read_frame(&mut stream, &mut buf).map_err(io::Error::from)?;
    let msg = Msg::decode(ty, &buf).map_err(io::Error::from)?;
    let Msg::Hello { version, worker_id, pid } = msg else {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("expected Hello, got frame {ty:#04x}"),
        ));
    };
    if version != PROTOCOL_VERSION {
        let err = WireError::VersionMismatch { ours: PROTOCOL_VERSION, theirs: version };
        let _ = Msg::Error { message: err.to_string() }
            .encode()
            .map(|p| write_frame(&mut stream, 0x08, &p));
        return Err(err.into());
    }
    let slot = worker_id as usize;
    if slot >= streams.len() || streams[slot].is_some() {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("bogus or duplicate worker id {worker_id} (pid {pid})"),
        ));
    }
    let ack = Msg::HelloAck { version: PROTOCOL_VERSION, run: run.clone() };
    let payload = ack.encode().map_err(io::Error::from)?;
    write_frame(&mut stream, ack.frame_type(), &payload).map_err(io::Error::from)?;
    stream.set_read_timeout(None)?;
    streams[slot] = Some(stream);
    Ok(slot)
}

fn reader_loop(worker: usize, mut stream: TcpStream, tx: mpsc::Sender<Event>) {
    let mut buf = Vec::new();
    loop {
        let decoded = match read_frame(&mut stream, &mut buf) {
            Ok(ty) => Msg::decode(ty, &buf),
            Err(e) => Err(e),
        };
        match decoded {
            Ok(msg) => {
                if tx.send(Event::Msg { worker, msg }).is_err() {
                    return; // coordinator gone; nothing to report to
                }
            }
            Err(err) => {
                let _ = tx.send(Event::Gone { worker, reason: err.to_string() });
                return;
            }
        }
    }
}
