//! The coordinator: spawns workers, speaks the wire protocol, and exposes
//! the pool to the NAS runner as an [`EvalBackend`].
//!
//! Failure model (DESIGN.md §10): a worker is *lost* when its socket dies
//! (process crash → immediate EOF) or an outstanding heartbeat goes
//! unanswered past the timeout (hang/partition). A lost worker's in-flight
//! candidate goes back to the front of the pending queue and is re-evaluated
//! elsewhere — candidate seeds derive from `(run_seed, id)` and parent
//! checkpoints are immutable once written, so the re-run reproduces the
//! original result exactly and the run stays bit-identical to a failure-free
//! one. The pool degrades gracefully down to a single surviving worker;
//! only losing *all* workers aborts the run.
//!
//! Elasticity (DESIGN.md §10): the listener stays open for the whole run,
//! so a `Hello` arriving mid-run is a *join* — the newcomer is handshaken,
//! given a fresh slot, and starts draining the pending queue (or refused
//! with an `Error` frame when the pool already holds `max_workers` live
//! processes). The dispatch window is sized by `nas.workers` alone and
//! never moves: joining changes *which process* evaluates a candidate,
//! never *which candidate* is scheduled, so elastic runs stay bit-identical
//! to fixed-pool runs.
//!
//! Metrics: every `Result` frame carries the worker's cumulative
//! counter/histogram snapshot and a final `Stats` frame arrives during the
//! [`DistBackend::finish`] teardown; the coordinator keeps the latest
//! snapshot per slot and folds them all into the process-global registry,
//! making one `RunReport::capture()` cover the whole multi-process run.

use crate::frame::{read_frame, write_frame, WireError, PROTOCOL_VERSION};
use crate::live::LiveRunView;
use crate::policy::{ScaleDecision, ScalePolicy};
use crate::spawn::{find_worker_exe, spawn_worker};
use crate::wire::{Msg, RunSpec, WorkerMetrics};
use crate::{DistConfig, DistRunStats, JoinPlan, KillPlan};
use std::collections::{HashMap, VecDeque};
use std::io;
use std::net::{TcpListener, TcpStream};
use std::path::PathBuf;
use std::process::Child;
use std::sync::mpsc::{self, RecvTimeoutError};
use std::sync::Arc;
use std::time::{Duration, Instant};
use swt_nas::runner::NasConfig;
use swt_nas::{BackendResult, Candidate, EvalBackend};

enum Event {
    Msg { worker: usize, msg: Msg },
    Gone { worker: usize, reason: String },
}

struct WorkerSlot {
    /// The child process — `None` for workers we did not spawn ourselves
    /// (a join connecting from outside the coordinator's own injection).
    child: Option<Child>,
    /// Write half; `None` once the worker is lost.
    writer: Option<TcpStream>,
    reader: Option<std::thread::JoinHandle<()>>,
    /// Candidate currently evaluating on this worker.
    current: Option<u64>,
    alive: bool,
    /// Sent a `Retire` frame and draining: no new tasks, no pings; its EOF
    /// is an orderly close, not a loss.
    retiring: bool,
    /// Ping in flight: `(nonce, send time)`. A worker with an outstanding
    /// ping older than the timeout is declared lost — liveness is judged on
    /// unanswered pings, never on mere quietness (an idle worker between
    /// tasks is silent but healthy).
    outstanding_ping: Option<(u64, Instant)>,
    rtt: Arc<swt_obs::metrics::Histogram>,
    /// Latest cumulative metrics snapshot received from this worker.
    stats: Option<WorkerMetrics>,
}

/// Multi-process evaluation backend: the coordinator side of `swt-dist`.
pub struct DistBackend {
    /// Kept open (non-blocking) for the whole run: mid-run `Hello`s are
    /// joins.
    listener: TcpListener,
    addr: String,
    exe: PathBuf,
    run: RunSpec,
    /// The deterministic dispatch window (`nas.workers`). Constant for the
    /// backend's lifetime regardless of how the pool grows or shrinks.
    window: usize,
    max_workers: usize,
    slots: Vec<WorkerSlot>,
    tx: mpsc::Sender<Event>,
    rx: mpsc::Receiver<Event>,
    /// Submitted candidates not yet assigned to a worker (grows past 1 only
    /// while the pool is short of the dispatch window).
    pending: VecDeque<Candidate>,
    /// Assigned-or-pending candidates by id, with their submit timestamp.
    inflight: HashMap<u64, (Candidate, f64)>,
    start: Instant,
    interval: Duration,
    timeout: Duration,
    connect_timeout: Duration,
    next_nonce: u64,
    results_delivered: usize,
    kill_plan: Option<KillPlan>,
    join_plan: Option<JoinPlan>,
    /// Children spawned by join injection that have not completed their
    /// handshake yet.
    joining: Vec<Child>,
    joined: usize,
    rejected: usize,
    lost: usize,
    reassigned: usize,
    /// The autoscaling policy (`None` = fixed pool). Ticked from `submit`
    /// and `heartbeat_tick`; it only ever changes *which processes* are in
    /// the pool, never which candidate the window schedules next.
    policy: Option<ScalePolicy>,
    /// Workers spawned by autoscale grow decisions.
    grown: usize,
    /// Workers retired by autoscale shrink decisions.
    retired: usize,
    /// Set by [`DistBackend::finish`]; makes `Drop` a no-op.
    finished: bool,
    /// In-flight run view; streamed `Telemetry` frames fold into it.
    /// Monitoring only — nothing here feeds back into scheduling.
    live: Arc<LiveRunView>,
}

impl DistBackend {
    /// Bind a localhost listener, spawn the initial worker processes
    /// (`dist.initial_workers`, default `nas.workers`), and complete the
    /// handshake with each.
    pub fn launch(nas: &NasConfig, dist: &DistConfig) -> io::Result<DistBackend> {
        let window = nas.workers;
        assert!(window > 0, "need a non-empty dispatch window");
        let n = dist.initial_workers.unwrap_or(window).max(1);
        assert!(n <= dist.max_workers, "initial workers exceed max_workers");
        // Validate the autoscale policy up front: a bad config must fail the
        // launch, not the first decision tick mid-run.
        let policy = match &dist.autoscale {
            Some(cfg) => {
                if cfg.max_workers > dist.max_workers {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidInput,
                        format!(
                            "autoscale max_workers {} exceeds pool max_workers {}",
                            cfg.max_workers, dist.max_workers
                        ),
                    ));
                }
                let policy = ScalePolicy::new(cfg.clone()).map_err(|e| {
                    io::Error::new(io::ErrorKind::InvalidInput, format!("autoscale config: {e}"))
                })?;
                Some(policy)
            }
            None => None,
        };
        let listener = TcpListener::bind(("127.0.0.1", 0))?;
        let addr = listener.local_addr()?.to_string();
        let exe = find_worker_exe(dist.worker_exe.as_ref())?;
        swt_obs::info!("swt_dist", "coordinator on {addr}, spawning {n} × {}", exe.display());

        // Worker resources are budgeted by the window, not the live pool:
        // thread pinning and cache slices must not depend on how many
        // processes happen to be up, or elastic runs would diverge.
        let hardware = std::thread::available_parallelism().map_or(1, |v| v.get());
        let run = RunSpec {
            app: dist.app,
            scale: dist.scale,
            data_seed: dist.data_seed,
            scheme: nas.scheme,
            epochs: nas.epochs as u32,
            run_seed: nas.seed,
            namespace: nas.namespace.clone(),
            store_dir: dist.store_dir.to_string_lossy().into_owned(),
            threads: (hardware / window).max(1) as u32,
            cache_bytes: nas.cache_bytes / window as u64,
            prefilter_quantile: nas.fidelity.prefilter_quantile,
            conv_window: nas.fidelity.convergence.map_or(0, |c| c.window as u32),
            conv_min_delta: nas.fidelity.convergence.map_or(0.0, |c| c.min_delta),
            store_url: dist.store_url.clone().unwrap_or_default(),
            autoscale_min: dist.autoscale.as_ref().map_or(0, |c| c.min_workers as u32),
            autoscale_max: dist.autoscale.as_ref().map_or(0, |c| c.max_workers as u32),
        };

        let mut children = Vec::with_capacity(n);
        for worker_id in 0..n {
            children.push(Some(spawn_worker(&exe, &addr, worker_id)?));
        }

        // Accept until every worker has completed its handshake. The
        // listener polls non-blocking so a child that dies before
        // connecting (bad exe, immediate crash) turns into a clear error
        // instead of a hung accept.
        listener.set_nonblocking(true)?;
        let deadline = Instant::now() + dist.connect_timeout;
        let mut streams: Vec<Option<TcpStream>> = (0..n).map(|_| None).collect();
        let mut connected = 0;
        while connected < n {
            match listener.accept() {
                Ok((stream, _)) => {
                    stream.set_nonblocking(false)?;
                    stream.set_nodelay(true)?;
                    let worker_id = handshake(stream, &run, &mut streams)?;
                    connected += 1;
                    swt_obs::info!("swt_dist", "worker {worker_id} connected ({connected}/{n})");
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    for (worker_id, child) in children.iter_mut().enumerate() {
                        let exited = match child {
                            Some(c) => c.try_wait()?.map(|status| (worker_id, status)),
                            None => None,
                        };
                        if let Some((worker_id, status)) = exited {
                            reap_all(&mut children);
                            return Err(io::Error::new(
                                io::ErrorKind::ConnectionAborted,
                                format!("worker {worker_id} exited during startup: {status}"),
                            ));
                        }
                    }
                    if Instant::now() > deadline {
                        reap_all(&mut children);
                        return Err(io::Error::new(
                            io::ErrorKind::TimedOut,
                            format!("only {connected}/{n} workers connected before the deadline"),
                        ));
                    }
                    std::thread::sleep(Duration::from_millis(5));
                }
                Err(e) => {
                    reap_all(&mut children);
                    return Err(e);
                }
            }
        }

        let live = dist.live.clone().unwrap_or_else(|| Arc::new(LiveRunView::new()));
        live.set_meta("app", dist.app.name());
        live.set_meta("scale", format!("{:?}", dist.scale));
        live.set_meta("addr", &addr);
        live.set_window(window);

        let (tx, rx) = mpsc::channel();
        let mut backend = DistBackend {
            listener,
            addr,
            exe,
            run,
            window,
            max_workers: dist.max_workers,
            slots: Vec::with_capacity(n),
            tx,
            rx,
            pending: VecDeque::new(),
            inflight: HashMap::new(),
            start: Instant::now(),
            interval: dist.heartbeat_interval,
            timeout: dist.heartbeat_timeout,
            connect_timeout: dist.connect_timeout,
            next_nonce: 0,
            results_delivered: 0,
            kill_plan: dist.kill_worker_after.clone(),
            join_plan: dist.join_after.clone(),
            joining: Vec::new(),
            joined: 0,
            rejected: 0,
            lost: 0,
            reassigned: 0,
            policy,
            grown: 0,
            retired: 0,
            finished: false,
            live,
        };
        for (child, stream) in children.into_iter().zip(streams) {
            let (Some(child), Some(stream)) = (child, stream) else {
                return Err(io::Error::other("worker slot not filled"));
            };
            backend.add_slot(Some(child), stream)?;
        }
        Ok(backend)
    }

    /// Park a handshaken connection in a fresh slot and start its reader
    /// thread. Returns the slot index.
    fn add_slot(&mut self, child: Option<Child>, stream: TcpStream) -> io::Result<usize> {
        let worker = self.slots.len();
        let reader_stream = stream.try_clone()?;
        let tx = self.tx.clone();
        let reader = std::thread::spawn(move || reader_loop(worker, reader_stream, tx));
        self.slots.push(WorkerSlot {
            child,
            writer: Some(stream),
            reader: Some(reader),
            current: None,
            alive: true,
            retiring: false,
            outstanding_ping: None,
            rtt: swt_obs::registry::global().histogram(&format!("dist.rtt_ns.w{worker}")),
            stats: None,
        });
        self.live.worker_added(worker);
        Ok(worker)
    }

    /// Push the current dispatch picture into the live view: candidates
    /// still queued vs. handed to a worker.
    fn sync_live_queue(&self) {
        let queued = self.pending.len();
        self.live.set_queue(queued, self.inflight.len().saturating_sub(queued));
    }

    fn live_workers(&self) -> usize {
        self.slots.iter().filter(|s| s.alive).count()
    }

    fn send_to(&mut self, worker: usize, msg: &Msg) -> Result<(), WireError> {
        let payload = msg.encode()?;
        let stream = self.slots[worker]
            .writer
            .as_mut()
            .ok_or_else(|| WireError::Protocol(format!("worker {worker} already lost")))?;
        write_frame(stream, msg.frame_type(), &payload)
    }

    /// Declare `worker` lost: reclaim its candidate for reassignment, close
    /// its socket and reap the process. Errors only when no worker is left.
    fn mark_lost(&mut self, worker: usize, reason: &str) -> io::Result<()> {
        if !self.slots[worker].alive {
            return Ok(());
        }
        swt_obs::warn!("swt_dist", "worker {worker} lost: {reason}");
        swt_obs::counter!("dist.workers_lost").inc();
        self.lost += 1;
        let slot = &mut self.slots[worker];
        slot.alive = false;
        slot.outstanding_ping = None;
        if let Some(stream) = slot.writer.take() {
            let _ = stream.shutdown(std::net::Shutdown::Both);
        }
        if let Some(child) = slot.child.as_mut() {
            let _ = child.kill();
            let _ = child.wait();
        }
        if let Some(id) = slot.current.take() {
            if let Some((cand, _)) = self.inflight.get(&id) {
                swt_obs::counter!("dist.reassigned").inc();
                self.reassigned += 1;
                swt_obs::info!("swt_dist", "reassigning candidate {id} from dead worker {worker}");
                self.pending.push_front(cand.clone());
            }
        }
        self.live.worker_lost(worker);
        self.sync_live_queue();
        if self.slots.iter().any(|s| s.alive) {
            Ok(())
        } else {
            Err(io::Error::new(
                io::ErrorKind::ConnectionAborted,
                format!("all {} workers lost (last: worker {worker}: {reason})", self.slots.len()),
            ))
        }
    }

    /// Close a slot during orderly teardown: same cleanup as a loss, but it
    /// is not one — no loss counter, no reassignment.
    fn close_slot(&mut self, worker: usize) {
        let slot = &mut self.slots[worker];
        slot.alive = false;
        slot.outstanding_ping = None;
        if let Some(stream) = slot.writer.take() {
            let _ = stream.shutdown(std::net::Shutdown::Both);
        }
        if let Some(child) = slot.child.as_mut() {
            let _ = child.kill();
            let _ = child.wait();
        }
        self.live.worker_lost(worker);
    }

    /// The run view telemetry folds into (the one from
    /// [`DistConfig::live`] when set, otherwise backend-private).
    pub fn live(&self) -> Arc<LiveRunView> {
        Arc::clone(&self.live)
    }

    /// Hand pending candidates to idle live workers.
    fn flush(&mut self) -> io::Result<()> {
        loop {
            if self.pending.is_empty() {
                return Ok(());
            }
            let Some(worker) = self
                .slots
                .iter()
                .position(|s| s.alive && !s.retiring && s.current.is_none() && s.writer.is_some())
            else {
                return Ok(()); // every live worker busy; keep queueing
            };
            let Some(cand) = self.pending.pop_front() else {
                return Ok(());
            };
            let id = cand.id;
            match self.send_to(worker, &Msg::Task { cand: cand.clone() }) {
                Ok(()) => {
                    self.slots[worker].current = Some(id);
                    self.live.set_current(worker, Some(id));
                    self.sync_live_queue();
                }
                Err(e) => {
                    self.pending.push_front(cand);
                    self.mark_lost(worker, &format!("task write failed: {e}"))?;
                }
            }
        }
    }

    /// One heartbeat round: time out workers with stale outstanding pings,
    /// ping everyone else, and pick up any join attempts waiting on the
    /// listener.
    fn heartbeat_tick(&mut self) -> io::Result<()> {
        self.poll_joins()?;
        for worker in 0..self.slots.len() {
            // A retiring worker is draining toward EOF: its reader thread is
            // gone, so a ping would never be answered and the timeout would
            // misread the orderly close as a loss.
            if !self.slots[worker].alive || self.slots[worker].retiring {
                continue;
            }
            if let Some((_, sent)) = self.slots[worker].outstanding_ping {
                if sent.elapsed() > self.timeout {
                    self.mark_lost(worker, "heartbeat timeout")?;
                }
                continue;
            }
            let nonce = self.next_nonce;
            self.next_nonce += 1;
            match self.send_to(worker, &Msg::Ping { nonce }) {
                Ok(()) => self.slots[worker].outstanding_ping = Some((nonce, Instant::now())),
                Err(e) => self.mark_lost(worker, &format!("ping write failed: {e}"))?,
            }
        }
        self.flush()?;
        // Quiet-period policy tick: during a drain no `submit` arrives, so
        // the shrink side of the policy only ever fires from here.
        self.maybe_autoscale()
    }

    /// Accept every connection waiting on the (non-blocking) listener and
    /// run the join protocol on each.
    fn poll_joins(&mut self) -> io::Result<()> {
        loop {
            match self.listener.accept() {
                Ok((stream, _)) => self.handle_join(stream)?,
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return Ok(()),
                Err(e) => return Err(e),
            }
        }
    }

    /// The join protocol on one mid-run connection: read `Hello`, validate
    /// the version, then either admit (HelloAck + fresh slot) or refuse
    /// (`Error` frame) when the pool is at `max_workers`. A malformed or
    /// mismatched join never aborts the run — the connection is dropped and
    /// the run continues on the existing pool.
    fn handle_join(&mut self, stream: TcpStream) -> io::Result<()> {
        let mut stream = stream;
        stream.set_nonblocking(false)?;
        stream.set_nodelay(true)?;
        stream.set_read_timeout(Some(Duration::from_secs(10)))?;
        let mut buf = Vec::new();
        let hello = match read_frame(&mut stream, &mut buf).and_then(|ty| Msg::decode(ty, &buf)) {
            Ok(msg) => msg,
            Err(e) => {
                swt_obs::warn!("swt_dist", "join attempt with unreadable Hello dropped: {e}");
                return Ok(());
            }
        };
        let Msg::Hello { version, worker_id, pid } = hello else {
            swt_obs::warn!(
                "swt_dist",
                "join attempt opened with frame {:#04x}, not Hello; dropped",
                hello.frame_type()
            );
            return Ok(());
        };
        // If this is a process we spawned (join injection), take ownership
        // of its handle so it gets reaped with its slot.
        let child = self.joining.iter().position(|c| c.id() == pid).map(|i| self.joining.remove(i));
        if version != PROTOCOL_VERSION {
            let err = WireError::VersionMismatch { ours: PROTOCOL_VERSION, theirs: version };
            send_error(&mut stream, &err.to_string());
            reap(child);
            swt_obs::warn!("swt_dist", "join from pid {pid} refused: {err}");
            return Ok(());
        }
        if self.live_workers() >= self.max_workers {
            swt_obs::counter!("dist.joins_rejected").inc();
            self.rejected += 1;
            send_error(
                &mut stream,
                &format!("join rejected: pool already at max_workers={}", self.max_workers),
            );
            reap(child);
            swt_obs::info!(
                "swt_dist",
                "join from pid {pid} rejected at max_workers={}",
                self.max_workers
            );
            return Ok(());
        }
        let ack = Msg::HelloAck { version: PROTOCOL_VERSION, run: self.run.clone() };
        let sent =
            ack.encode().and_then(|payload| write_frame(&mut stream, ack.frame_type(), &payload));
        if let Err(e) = sent {
            reap(child);
            swt_obs::warn!("swt_dist", "join from pid {pid} died during HelloAck: {e}");
            return Ok(());
        }
        stream.set_read_timeout(None)?;
        let slot = self.add_slot(child, stream)?;
        swt_obs::counter!("dist.workers_joined").inc();
        self.joined += 1;
        swt_obs::info!(
            "swt_dist",
            "worker joined mid-run as slot {slot} (hello id {worker_id}, pid {pid}); \
             pool now {} live / window {}",
            self.live_workers(),
            self.window
        );
        self.flush()
    }

    /// Elastic scale-out injection for tests, benches and the CI smoke
    /// gate: once the configured number of results has been delivered,
    /// spawn the planned workers and block until the coordinator has
    /// admitted or rejected every one of them, so the join lands at a
    /// deterministic point in the schedule.
    fn maybe_inject_join(&mut self) -> io::Result<()> {
        let due = self
            .join_plan
            .as_ref()
            .is_some_and(|plan| self.results_delivered >= plan.after_results);
        if !due {
            return Ok(());
        }
        let Some(plan) = self.join_plan.take() else {
            return Ok(());
        };
        swt_obs::info!(
            "swt_dist",
            "join injection: spawning {} worker(s) after {} results",
            plan.count,
            self.results_delivered
        );
        let resolved_target = self.joined + self.rejected + plan.count;
        for i in 0..plan.count {
            let worker_id = self.slots.len() + i;
            self.joining.push(spawn_worker(&self.exe, &self.addr, worker_id)?);
        }
        let deadline = Instant::now() + self.connect_timeout;
        while self.joined + self.rejected < resolved_target {
            self.poll_joins()?;
            if self.joined + self.rejected >= resolved_target {
                break;
            }
            if Instant::now() > deadline {
                return Err(io::Error::new(
                    io::ErrorKind::TimedOut,
                    "injected worker join did not resolve before the deadline",
                ));
            }
            std::thread::sleep(Duration::from_millis(5));
        }
        Ok(())
    }

    /// Fault injection for benches and the CI smoke gate: SIGKILL a worker
    /// after the configured number of delivered results, then let the
    /// ordinary detection/reassignment machinery pick up the pieces. The
    /// kill waits until the victim is mid-evaluation, so the reassignment
    /// path (not merely loss detection) is guaranteed to run.
    fn maybe_inject_kill(&mut self) {
        let due = match &self.kill_plan {
            Some(plan) => {
                self.results_delivered >= plan.after_results
                    && self.slots.get(plan.worker).is_some_and(|s| s.alive && s.current.is_some())
            }
            None => false,
        };
        if !due {
            return;
        }
        if let Some(plan) = self.kill_plan.take() {
            if let Some(slot) = self.slots.get_mut(plan.worker) {
                if slot.alive {
                    swt_obs::info!(
                        "swt_dist",
                        "fault injection: SIGKILL worker {} after {} results",
                        plan.worker,
                        self.results_delivered
                    );
                    if let Some(child) = slot.child.as_mut() {
                        let _ = child.kill();
                    }
                }
            }
        }
    }

    /// One autoscale decision tick: snapshot the pool, let the policy
    /// decide, record the decision, actuate. Called from `submit`
    /// (post-flush, so steady state shows every live worker busy — no
    /// transient-idle flapping) and from `heartbeat_tick` (quiet periods
    /// and the end-of-run drain). Ticks are decision-counted, never
    /// wall-clock, so the decision log reproduces run-to-run.
    fn maybe_autoscale(&mut self) -> io::Result<()> {
        let Some(mut policy) = self.policy.take() else {
            return Ok(());
        };
        self.live.set_connecting(self.joining.len());
        let decision = policy.decide(&self.live);
        let (grows, shrinks, holds) = policy.tally();
        if let Some(line) = policy.log().last() {
            self.live.record_autoscale(line, grows, shrinks, holds);
        }
        let min_workers = policy.config().min_workers;
        let tick = policy.tick();
        let result = self.actuate(decision, min_workers, tick);
        self.policy = Some(policy);
        result
    }

    /// Carry out one [`ScaleDecision`]. Grow spawns children that come back
    /// through the ordinary join protocol; shrink sends `Retire` to idle
    /// workers only (drain-then-close, never mid-candidate), keeping at
    /// least `min_workers` non-retiring live processes.
    fn actuate(
        &mut self,
        decision: ScaleDecision,
        min_workers: usize,
        tick: u64,
    ) -> io::Result<()> {
        match decision {
            ScaleDecision::Hold => {
                swt_obs::counter!("autoscale.hold").inc();
            }
            ScaleDecision::Grow(n) => {
                swt_obs::counter!("autoscale.grow").inc();
                swt_obs::info!("swt_dist", "autoscale decision {tick}: grow pool by {n}");
                for _ in 0..n {
                    let worker_id = self.slots.len() + self.joining.len();
                    self.joining.push(spawn_worker(&self.exe, &self.addr, worker_id)?);
                    self.grown += 1;
                }
                self.live.set_connecting(self.joining.len());
            }
            ScaleDecision::Shrink(n) => {
                swt_obs::counter!("autoscale.shrink").inc();
                // Re-derive the retire set from coordinator state rather
                // than trusting the snapshot: only idle, live, non-retiring
                // slots qualify, and the floor is re-checked here.
                let mut spare = self
                    .slots
                    .iter()
                    .filter(|s| s.alive && !s.retiring)
                    .count()
                    .saturating_sub(min_workers);
                let mut to_retire = Vec::new();
                for (i, slot) in self.slots.iter().enumerate() {
                    if to_retire.len() >= n || spare == 0 {
                        break;
                    }
                    if slot.alive
                        && !slot.retiring
                        && slot.current.is_none()
                        && slot.writer.is_some()
                    {
                        to_retire.push(i);
                        spare -= 1;
                    }
                }
                for worker in to_retire {
                    let msg = Msg::Retire {
                        decision: tick,
                        reason: format!("autoscale decision {tick}: pool past demand"),
                    };
                    match self.send_to(worker, &msg) {
                        Ok(()) => {
                            swt_obs::info!(
                                "swt_dist",
                                "autoscale decision {tick}: retiring idle worker {worker}"
                            );
                            let slot = &mut self.slots[worker];
                            slot.retiring = true;
                            slot.outstanding_ping = None;
                            self.live.worker_retiring(worker);
                            self.retired += 1;
                        }
                        Err(e) => self.mark_lost(worker, &format!("retire write failed: {e}"))?,
                    }
                }
            }
        }
        Ok(())
    }

    /// A retiring worker's socket closed: the drain-then-close handshake
    /// completing, not a failure — no loss counter. The candidate reclaim
    /// is purely defensive (retires go only to idle workers, so `current`
    /// should always be empty here).
    fn retire_complete(&mut self, worker: usize, reason: &str) -> io::Result<()> {
        if !self.slots[worker].alive {
            return Ok(());
        }
        swt_obs::info!("swt_dist", "worker {worker} retired and closed ({reason})");
        swt_obs::counter!("dist.workers_retired").inc();
        if let Some(id) = self.slots[worker].current.take() {
            if let Some((cand, _)) = self.inflight.get(&id) {
                swt_obs::counter!("dist.reassigned").inc();
                self.reassigned += 1;
                self.pending.push_front(cand.clone());
            }
        }
        self.close_slot(worker);
        self.sync_live_queue();
        if self.slots.iter().any(|s| s.alive) || self.inflight.is_empty() {
            Ok(())
        } else {
            Err(io::Error::new(
                io::ErrorKind::ConnectionAborted,
                format!("all workers gone after worker {worker} retired with work pending"),
            ))
        }
    }

    /// Graceful teardown: send `Shutdown` to every live worker, drain the
    /// final `Stats` frames they flush on the way out, fold every worker's
    /// latest snapshot into the process-global registry, and return the
    /// run's [`DistRunStats`]. After this, `Drop` is a no-op.
    pub fn finish(&mut self) -> io::Result<DistRunStats> {
        self.finished = true;
        for worker in 0..self.slots.len() {
            if self.slots[worker].alive && self.slots[worker].writer.is_some() {
                let _ = self.send_to(worker, &Msg::Shutdown);
            }
        }
        // Workers answer Shutdown with a final Stats frame and close their
        // socket; wait (bounded) for every live socket to drain. A worker
        // that stalls here keeps its last per-Result snapshot — cumulative
        // snapshots make the fallback lossy only for post-last-Result work.
        let deadline = Instant::now() + self.timeout;
        while self.slots.iter().any(|s| s.alive) && Instant::now() < deadline {
            match self.rx.recv_timeout(Duration::from_millis(50)) {
                Ok(Event::Msg { worker, msg }) => match msg {
                    Msg::Stats { stats } | Msg::Result { stats, .. } => {
                        self.live.fold_metrics(worker, &stats);
                        self.slots[worker].stats = Some(stats);
                    }
                    Msg::Telemetry { telemetry } => {
                        self.live.apply_telemetry(worker, &telemetry);
                    }
                    _ => {}
                },
                Ok(Event::Gone { worker, .. }) => self.close_slot(worker),
                Err(RecvTimeoutError::Timeout) => {}
                Err(RecvTimeoutError::Disconnected) => break,
            }
        }
        for worker in 0..self.slots.len() {
            self.close_slot(worker);
        }
        for child in &mut self.joining {
            let _ = child.kill();
            let _ = child.wait();
        }
        self.joining.clear();
        for slot in &mut self.slots {
            if let Some(reader) = slot.reader.take() {
                let _ = reader.join();
            }
        }

        let per_worker: Vec<(usize, WorkerMetrics)> = self
            .slots
            .iter()
            .enumerate()
            .filter_map(|(i, s)| s.stats.clone().map(|m| (i, m)))
            .collect();
        // Settle the live view on exactly the snapshots the run report will
        // use, so a final `/status` poll and `report.json` agree.
        for (worker, metrics) in &per_worker {
            self.live.fold_metrics(*worker, metrics);
        }
        self.sync_live_queue();
        // Fold worker-process totals into this process's registry so one
        // `RunReport::capture()` after the run reports whole-run sums.
        // Gated: a disabled-observability run must stay metrics-silent.
        if swt_obs::enabled() {
            let registry = swt_obs::registry::global();
            for (_, metrics) in &per_worker {
                metrics.to_report().absorb_into(registry);
            }
        }
        Ok(DistRunStats {
            per_worker,
            joined: self.joined,
            rejected: self.rejected,
            lost: self.lost,
            reassigned: self.reassigned,
            grown: self.grown,
            retired: self.retired,
        })
    }
}

impl EvalBackend for DistBackend {
    fn capacity(&self) -> usize {
        // Constant: the dispatch window must not follow the live pool as
        // workers die or join, or the canonical schedule (and thus
        // determinism) would change.
        self.window
    }

    fn submit(&mut self, cand: Candidate) -> io::Result<()> {
        let t_submit = self.start.elapsed().as_secs_f64();
        self.inflight.insert(cand.id, (cand.clone(), t_submit));
        self.pending.push_back(cand);
        self.sync_live_queue();
        self.flush()?;
        self.maybe_inject_join()?;
        self.maybe_inject_kill();
        // Admit any grow-spawned workers waiting on the listener: a busy
        // run may never hit the heartbeat timeout, so the submit path must
        // drain the accept queue too.
        if !self.joining.is_empty() {
            self.poll_joins()?;
        }
        self.maybe_autoscale()
    }

    fn next_result(&mut self) -> io::Result<BackendResult> {
        loop {
            match self.rx.recv_timeout(self.interval) {
                Ok(Event::Msg { worker, msg }) => match msg {
                    Msg::Result { id, outcome, stats, .. } => {
                        self.live.fold_metrics(worker, &stats);
                        self.slots[worker].stats = Some(stats);
                        if self.slots[worker].current == Some(id) {
                            self.slots[worker].current = None;
                        }
                        let Some((cand, t_start)) = self.inflight.remove(&id) else {
                            continue; // late duplicate; the runner never sees it
                        };
                        self.results_delivered += 1;
                        self.maybe_inject_join()?;
                        self.maybe_inject_kill();
                        self.flush()?;
                        let t_end = self.start.elapsed().as_secs_f64();
                        self.live.record_result(worker, t_end - t_start);
                        self.sync_live_queue();
                        return Ok(BackendResult { cand, t_start, t_end, outcome });
                    }
                    Msg::Telemetry { telemetry } => {
                        // Monitoring stream: fold and keep going. A stale
                        // seq is counted by the view, never an error.
                        self.live.apply_telemetry(worker, &telemetry);
                    }
                    Msg::Pong { nonce } => {
                        let slot = &mut self.slots[worker];
                        if let Some((expected, sent)) = slot.outstanding_ping {
                            if expected == nonce {
                                slot.outstanding_ping = None;
                                slot.rtt.observe(sent.elapsed().as_nanos() as u64);
                                swt_obs::counter!("dist.heartbeats").inc();
                            }
                        }
                    }
                    Msg::Stats { stats } => {
                        // An early final snapshot (worker winding down);
                        // keep it — it supersedes the per-Result one.
                        self.slots[worker].stats = Some(stats);
                    }
                    Msg::Error { message } => {
                        self.mark_lost(worker, &format!("worker reported: {message}"))?;
                        self.flush()?;
                    }
                    other => {
                        let reason = format!("unexpected frame {:#04x}", other.frame_type());
                        self.mark_lost(worker, &reason)?;
                        self.flush()?;
                    }
                },
                Ok(Event::Gone { worker, reason }) => {
                    if self.slots[worker].retiring {
                        self.retire_complete(worker, &reason)?;
                    } else {
                        self.mark_lost(worker, &reason)?;
                    }
                    self.flush()?;
                }
                Err(RecvTimeoutError::Timeout) => self.heartbeat_tick()?,
                Err(RecvTimeoutError::Disconnected) => {
                    return Err(io::Error::new(
                        io::ErrorKind::BrokenPipe,
                        "all worker connections closed with work pending",
                    ));
                }
            }
        }
    }
}

impl Drop for DistBackend {
    fn drop(&mut self) {
        // The abort path only: a graceful teardown goes through `finish`,
        // which already reaped everything.
        if self.finished {
            return;
        }
        // Graceful first: a Shutdown frame lets idle workers exit cleanly.
        for worker in 0..self.slots.len() {
            if self.slots[worker].writer.is_some() {
                let _ = self.send_to(worker, &Msg::Shutdown);
            }
        }
        for worker in 0..self.slots.len() {
            // close_slot SIGKILLs — a no-op for workers that already exited
            // on Shutdown, and it ends stragglers (e.g. mid-evaluation
            // after an aborted run) without blocking the coordinator.
            self.close_slot(worker);
        }
        for child in &mut self.joining {
            let _ = child.kill();
            let _ = child.wait();
        }
        for slot in &mut self.slots {
            if let Some(reader) = slot.reader.take() {
                let _ = reader.join();
            }
        }
    }
}

fn reap_all(children: &mut [Option<Child>]) {
    for child in children.iter_mut().flatten() {
        let _ = child.kill();
        let _ = child.wait();
    }
}

fn reap(child: Option<Child>) {
    if let Some(mut child) = child {
        let _ = child.kill();
        let _ = child.wait();
    }
}

/// Best-effort `Error` frame to a peer we are about to drop.
fn send_error(stream: &mut TcpStream, message: &str) {
    let msg = Msg::Error { message: message.to_string() };
    if let Ok(payload) = msg.encode() {
        let _ = write_frame(stream, msg.frame_type(), &payload);
    }
}

/// Server side of the handshake on a fresh connection during startup: read
/// `Hello`, validate, reply `HelloAck`, and park the stream in its worker
/// slot. (Mid-run connections go through the join protocol instead.)
fn handshake(
    stream: TcpStream,
    run: &RunSpec,
    streams: &mut [Option<TcpStream>],
) -> io::Result<usize> {
    let mut stream = stream;
    stream.set_read_timeout(Some(Duration::from_secs(10)))?;
    let mut buf = Vec::new();
    let ty = read_frame(&mut stream, &mut buf).map_err(io::Error::from)?;
    let msg = Msg::decode(ty, &buf).map_err(io::Error::from)?;
    let Msg::Hello { version, worker_id, pid } = msg else {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("expected Hello, got frame {ty:#04x}"),
        ));
    };
    if version != PROTOCOL_VERSION {
        let err = WireError::VersionMismatch { ours: PROTOCOL_VERSION, theirs: version };
        send_error(&mut stream, &err.to_string());
        return Err(err.into());
    }
    let slot = worker_id as usize;
    if slot >= streams.len() || streams[slot].is_some() {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("bogus or duplicate worker id {worker_id} (pid {pid})"),
        ));
    }
    let ack = Msg::HelloAck { version: PROTOCOL_VERSION, run: run.clone() };
    let payload = ack.encode().map_err(io::Error::from)?;
    write_frame(&mut stream, ack.frame_type(), &payload).map_err(io::Error::from)?;
    stream.set_read_timeout(None)?;
    streams[slot] = Some(stream);
    Ok(slot)
}

fn reader_loop(worker: usize, mut stream: TcpStream, tx: mpsc::Sender<Event>) {
    let mut buf = Vec::new();
    loop {
        let decoded = match read_frame(&mut stream, &mut buf) {
            Ok(ty) => Msg::decode(ty, &buf),
            Err(e) => Err(e),
        };
        match decoded {
            Ok(msg) => {
                if tx.send(Event::Msg { worker, msg }).is_err() {
                    return; // coordinator gone; nothing to report to
                }
            }
            Err(err) => {
                let _ = tx.send(Event::Gone { worker, reason: err.to_string() });
                return;
            }
        }
    }
}
