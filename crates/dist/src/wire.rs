//! Message layer: typed frames and their payload encodings (DESIGN.md §10).
//!
//! | type | frame     | direction           | payload                                 |
//! |------|-----------|---------------------|-----------------------------------------|
//! | 0x01 | Hello     | worker → coordinator| version, worker_id, pid                 |
//! | 0x02 | HelloAck  | coordinator → worker| version, [`RunSpec`]                    |
//! | 0x03 | Task      | coordinator → worker| candidate id, parent, arch sequence     |
//! | 0x04 | Result    | worker → coordinator| id + [`EvalOutcome`] + [`WorkerMetrics`]|
//! | 0x05 | Ping      | coordinator → worker| nonce                                   |
//! | 0x06 | Pong      | worker → coordinator| echoed nonce                            |
//! | 0x07 | Shutdown  | coordinator → worker| (empty)                                 |
//! | 0x08 | Error     | either              | utf-8 description                       |
//! | 0x09 | Stats     | worker → coordinator| final cumulative [`WorkerMetrics`]      |
//! | 0x0A | Telemetry | worker → coordinator| seq-numbered [`Telemetry`] snapshot     |
//! | 0x0B | Retire    | coordinator → worker| decision tick + utf-8 reason            |
//!
//! All integers little-endian; floats as IEEE-754 bit patterns (scores must
//! round-trip bit-exactly — the A/B identity gate compares them with `==`).
//!
//! Wire v4 appends fixed-size *fidelity tails*: `HelloAck` carries the run's
//! prefilter/convergence knobs, `Task` the candidate's rung and per-task
//! epoch override, `Result` the stop reason plus echoed rung. Decoders probe
//! [`Cursor::at_end`] after the v3 fields, so a v3-shaped payload still
//! decodes (fidelity-off defaults) while a partial tail is malformed.
//!
//! Wire v5 appends one more optional tail to `HelloAck`: the run's
//! `store_url` (`[u16 len][bytes]`, after the fidelity group), selecting a
//! networked checkpoint store. The same `at_end` probe runs again after the
//! fidelity tail, so both v3- and v4-shaped payloads still decode (empty
//! url = local `DirStore`), while a partial url tail is malformed.
//!
//! Wire v6 adds the autoscaling pieces: a `Retire` frame (0x0B, the
//! drain-then-close half of a shrink decision) and an *autoscale tail* on
//! `HelloAck` — `[u32 min_workers][u32 max_workers]` after the store tail,
//! informing the worker that the pool is elastic and it may be retired
//! mid-run. `(0, 0)` means autoscaling off; anything else must satisfy
//! `1 ≤ min ≤ max ≤ MAX_POOL_WORKERS` — hostile worker counts are
//! malformed, and (as with v4/v5) only the exact v5 boundary decodes as a
//! valid prefix; a partial tail is malformed.

use crate::frame::{put_string, Cursor, WireError};
use crate::policy::MAX_POOL_WORKERS;
use swt_core::{TransferScheme, TransferStats};
use swt_data::{AppKind, DataScale};
use swt_nas::{Candidate, Convergence, EvalFidelity, EvalOutcome, StopReason, MAX_RUNGS};
use swt_obs::metrics::{bucket_bound, bucket_index, HIST_BUCKETS};
use swt_obs::report::{CounterRow, HistogramRow};
use swt_obs::RunReport;
use swt_space::ArchSeq;

/// Everything a worker needs to reproduce the coordinator's evaluation
/// environment, sent once in `HelloAck`. The worker builds the same
/// problem/search-space/evaluator from these fields that `run_nas` builds
/// in-process — that is the whole determinism story: candidate seeds derive
/// from `(run_seed, id)` and the data from `(app, scale, data_seed)`.
#[derive(Debug, Clone, PartialEq)]
pub struct RunSpec {
    pub app: AppKind,
    pub scale: DataScale,
    pub data_seed: u64,
    pub scheme: TransferScheme,
    pub epochs: u32,
    pub run_seed: u64,
    /// Checkpoint-id namespace (see `NasConfig::namespace`).
    pub namespace: String,
    /// Root of the shared `DirStore` (the stand-in for the paper's parallel
    /// file system).
    pub store_dir: String,
    /// Intra-op thread budget this worker must pin
    /// (`hardware / workers`, floored at 1 — same policy as the in-process
    /// pool).
    pub threads: u32,
    /// Per-worker provider-cache byte budget: the worker wraps its
    /// `DirStore` in a `CachedStore` of this size (0 disables caching).
    /// Sized coordinator-side as the run's cache budget split across the
    /// dispatch window, mirroring the in-process shared cache.
    pub cache_bytes: u64,
    /// Zero-cost pre-filter quantile in `[0, 1)`; 0 disables the filter
    /// (wire v4, defaults when the peer sends a v3-shaped `HelloAck`).
    pub prefilter_quantile: f64,
    /// Convergence window in epochs; 0 disables per-candidate early
    /// stopping (wire v4).
    pub conv_window: u32,
    /// Loss-delta threshold paired with `conv_window` (wire v4).
    pub conv_min_delta: f64,
    /// Checkpoint-store endpoint, e.g. `tcp://host:port` (wire v5, empty
    /// when the peer sent a v3/v4-shaped `HelloAck`). Empty means "use the
    /// shared `DirStore` at `store_dir`" — the pre-v5 behaviour; non-empty
    /// means the worker dials a `swt-ckpt-server` and speaks the store
    /// protocol, with `namespace` doubling as its tenant bucket.
    pub store_url: String,
    /// Autoscale pool floor (wire v6; 0 together with `autoscale_max`
    /// means the pool is fixed). Informational for the worker — the
    /// coordinator owns every scaling decision — but it makes the RunSpec
    /// a complete record of the run's configuration and tells the worker
    /// it may be retired mid-run.
    pub autoscale_min: u32,
    /// Autoscale pool ceiling (wire v6; see `autoscale_min`).
    pub autoscale_max: u32,
}

impl RunSpec {
    /// The evaluator-side fidelity knobs carried by this spec — what a
    /// worker passes to `Evaluator::set_fidelity` so its evaluations match
    /// the coordinator's in-process ones bit for bit.
    pub fn eval_fidelity(&self) -> EvalFidelity {
        EvalFidelity {
            prefilter_quantile: self.prefilter_quantile,
            convergence: (self.conv_window > 0).then_some(Convergence {
                window: self.conv_window as usize,
                min_delta: self.conv_min_delta,
            }),
        }
    }
}

/// A worker process's cumulative counter/histogram snapshot, shipped in
/// every `Result` frame and finally in a `Stats` frame at shutdown.
///
/// Snapshots are *cumulative since worker start*, not deltas: the
/// coordinator keeps only the latest snapshot per worker, so a lost frame
/// (or a worker killed mid-run) costs at most the metrics of work done
/// after its last delivered `Result` — never double counting. Merging the
/// latest snapshot of every process plus the coordinator's own registry
/// yields whole-run totals (`report.json` conservation).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct WorkerMetrics {
    pub counters: Vec<CounterRow>,
    pub histograms: Vec<HistogramRow>,
}

impl WorkerMetrics {
    /// Snapshot this process's global registry (counters + histograms only;
    /// spans and gauges are process-local and stay out of the wire format).
    pub fn capture() -> WorkerMetrics {
        let report = RunReport::capture();
        WorkerMetrics { counters: report.counters, histograms: report.histograms }
    }

    /// View the snapshot as a counters/histograms-only [`RunReport`], the
    /// shape `RunReport::merge` and `absorb_into` consume.
    pub fn to_report(&self) -> RunReport {
        RunReport {
            counters: self.counters.clone(),
            histograms: self.histograms.clone(),
            ..RunReport::default()
        }
    }

    /// A counter's value in this snapshot (0 when absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.iter().find(|c| c.name == name).map_or(0, |c| c.value)
    }

    /// Sum of every counter whose name starts with `prefix`.
    pub fn counter_prefix_sum(&self, prefix: &str) -> u64 {
        self.counters.iter().filter(|c| c.name.starts_with(prefix)).map(|c| c.value).sum()
    }

    fn encode_into(&self, out: &mut Vec<u8>) -> Result<(), WireError> {
        let n = u32::try_from(self.counters.len())
            .map_err(|_| WireError::Malformed("too many counters"))?;
        out.extend_from_slice(&n.to_le_bytes());
        for c in &self.counters {
            put_string(out, &c.name)?;
            out.extend_from_slice(&c.value.to_le_bytes());
        }
        let n = u32::try_from(self.histograms.len())
            .map_err(|_| WireError::Malformed("too many histograms"))?;
        out.extend_from_slice(&n.to_le_bytes());
        for h in &self.histograms {
            put_string(out, &h.name)?;
            out.extend_from_slice(&h.count.to_le_bytes());
            out.extend_from_slice(&h.sum.to_le_bytes());
            let nb = u8::try_from(h.buckets.len().min(HIST_BUCKETS))
                .map_err(|_| WireError::Malformed("too many histogram buckets"))?;
            out.push(nb);
            for &(bound, count) in h.buckets.iter().take(HIST_BUCKETS) {
                // Bounds travel as their pow2 bucket index — one byte, and
                // u64::MAX (the overflow bucket) needs no special case.
                out.push(bucket_index(bound) as u8);
                out.extend_from_slice(&count.to_le_bytes());
            }
        }
        Ok(())
    }

    fn decode_from(c: &mut Cursor<'_>) -> Result<WorkerMetrics, WireError> {
        let n = c.u32()? as usize;
        // Capacity is clamped: a hostile count must not pre-allocate beyond
        // what the (already length-capped) payload can actually hold.
        let mut counters = Vec::with_capacity(n.min(256));
        for _ in 0..n {
            let name = c.string()?;
            let value = c.u64()?;
            counters.push(CounterRow { name, value });
        }
        let n = c.u32()? as usize;
        let mut histograms = Vec::with_capacity(n.min(256));
        for _ in 0..n {
            let name = c.string()?;
            let count = c.u64()?;
            let sum = c.u64()?;
            let nb = c.u8()? as usize;
            if nb > HIST_BUCKETS {
                return Err(WireError::Malformed("histogram bucket count out of range"));
            }
            let mut buckets = Vec::with_capacity(nb);
            for _ in 0..nb {
                let idx = c.u8()? as usize;
                if idx >= HIST_BUCKETS {
                    return Err(WireError::Malformed("histogram bucket index out of range"));
                }
                buckets.push((bucket_bound(idx), c.u64()?));
            }
            histograms.push(HistogramRow { name, count, sum, buckets });
        }
        Ok(WorkerMetrics { counters, histograms })
    }
}

/// Upper bound on timeline events per `Telemetry` frame. A drain larger
/// than this is split across frames by the sender; a decode announcing
/// more is hostile and rejected outright.
pub const MAX_TELEMETRY_EVENTS: usize = 2048;

/// Upper bound on the per-frame event-name string table.
pub const MAX_TELEMETRY_NAMES: usize = 1024;

/// Cumulative wall time of one span path, summed across worker slots —
/// the in-flight analogue of a report's span rows (a worker process only
/// ever attributes to its own slot, so the sum loses nothing).
#[derive(Debug, Clone, PartialEq)]
pub struct SpanTotalRow {
    pub path: String,
    pub count: u64,
    pub total_ns: u64,
}

/// One gauge's current value and high-watermark at snapshot time.
#[derive(Debug, Clone, PartialEq)]
pub struct GaugeSnap {
    pub name: String,
    pub value: i64,
    pub max: i64,
}

/// One timeline event on the wire; `name` indexes the frame's string
/// table. `kind` 0 = span (`dur_ns` meaningful), 1 = counter mark
/// (`delta` meaningful).
#[derive(Debug, Clone, PartialEq)]
pub struct WireEvent {
    pub name: u16,
    pub kind: u8,
    pub t_ns: u64,
    pub dur_ns: u64,
    pub delta: i64,
}

/// A worker's periodic live-telemetry snapshot (frame 0x0A, wire v3).
///
/// `seq` increments per frame on each worker; the coordinator ignores any
/// frame whose seq is not strictly greater than the last applied one, so
/// reordering or loss degrades to staleness, never corruption. `spans` and
/// `gauges` are *cumulative* (latest-wins like [`WorkerMetrics`]); only
/// the `events` batch is a delta, cursor-tracked against the worker's
/// timeline ring — overwritten events surface in `dropped_events`.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Telemetry {
    pub seq: u64,
    /// Nanoseconds since the worker's timeline epoch at capture time.
    pub uptime_ns: u64,
    pub spans: Vec<SpanTotalRow>,
    pub gauges: Vec<GaugeSnap>,
    /// Event-name string table (`WireEvent::name` indexes into this).
    pub names: Vec<String>,
    pub events: Vec<WireEvent>,
    /// Ring-overwritten events since the last capture — the staleness
    /// signal a slow coordinator sees instead of corrupted history.
    pub dropped_events: u64,
}

impl Telemetry {
    /// Snapshot this process's live registry + timeline for the wire.
    ///
    /// `cursor` is the caller-owned timeline read position for
    /// `worker_slot`; it advances to cover exactly the events taken, so an
    /// oversized drain simply spills into the next frame. Flushes the
    /// calling thread's buffered spans first so its own just-closed spans
    /// are visible.
    pub fn capture(seq: u64, worker_slot: usize, cursor: &mut u64) -> Telemetry {
        swt_obs::span::flush_thread();
        let mut spans = Vec::new();
        swt_obs::registry::global().for_each_span(|path, stat| {
            let mut count = 0u64;
            let mut total_ns = 0u64;
            for slot in 0..=swt_obs::registry::WORKER_SLOTS {
                let (c, t, ..) = stat.snapshot(slot);
                count += c;
                total_ns += t;
            }
            if count > 0 {
                spans.push(SpanTotalRow { path: path.to_string(), count, total_ns });
            }
        });
        let mut gauges = Vec::new();
        swt_obs::registry::global().for_each_gauge(|name, g| {
            let (value, max) = (g.get(), g.max());
            if value != 0 || max != 0 {
                gauges.push(GaugeSnap { name: name.to_string(), value, max });
            }
        });
        let drain = swt_obs::timeline::drain_since(worker_slot, *cursor);
        let mut names: Vec<String> = Vec::new();
        let mut events = Vec::new();
        let mut taken = 0usize;
        for ev in &drain.events {
            if events.len() >= MAX_TELEMETRY_EVENTS {
                break;
            }
            let idx = match names.iter().position(|n| n == &ev.name) {
                Some(i) => i,
                None if names.len() < MAX_TELEMETRY_NAMES => {
                    names.push(ev.name.clone());
                    names.len() - 1
                }
                // A saturated name table (pathological) drops the event;
                // the cursor still advances so the stream cannot stall.
                None => {
                    taken += 1;
                    continue;
                }
            };
            events.push(WireEvent {
                name: idx as u16,
                kind: match ev.kind {
                    swt_obs::timeline::EventKind::Span => 0,
                    swt_obs::timeline::EventKind::Counter => 1,
                },
                t_ns: ev.t_ns,
                dur_ns: ev.dur_ns,
                delta: ev.delta,
            });
            taken += 1;
        }
        *cursor = match drain.events.get(taken.wrapping_sub(1)) {
            Some(last) if taken > 0 => last.seq + 1,
            _ => drain.next_seq.max(*cursor),
        };
        Telemetry {
            seq,
            uptime_ns: swt_obs::timeline::now_ns(),
            spans,
            gauges,
            names,
            events,
            dropped_events: drain.dropped,
        }
    }

    /// Total nanoseconds recorded under `path` in this snapshot (0 when
    /// absent).
    pub fn span_total_ns(&self, path: &str) -> u64 {
        self.spans.iter().find(|s| s.path == path).map_or(0, |s| s.total_ns)
    }

    fn encode_into(&self, out: &mut Vec<u8>) -> Result<(), WireError> {
        out.extend_from_slice(&self.seq.to_le_bytes());
        out.extend_from_slice(&self.uptime_ns.to_le_bytes());
        out.extend_from_slice(&self.dropped_events.to_le_bytes());
        let n =
            u32::try_from(self.spans.len()).map_err(|_| WireError::Malformed("too many spans"))?;
        out.extend_from_slice(&n.to_le_bytes());
        for s in &self.spans {
            put_string(out, &s.path)?;
            out.extend_from_slice(&s.count.to_le_bytes());
            out.extend_from_slice(&s.total_ns.to_le_bytes());
        }
        let n = u32::try_from(self.gauges.len())
            .map_err(|_| WireError::Malformed("too many gauges"))?;
        out.extend_from_slice(&n.to_le_bytes());
        for g in &self.gauges {
            put_string(out, &g.name)?;
            out.extend_from_slice(&g.value.to_le_bytes());
            out.extend_from_slice(&g.max.to_le_bytes());
        }
        if self.names.len() > MAX_TELEMETRY_NAMES {
            return Err(WireError::Malformed("telemetry name table too large"));
        }
        out.extend_from_slice(&(self.names.len() as u16).to_le_bytes());
        for name in &self.names {
            put_string(out, name)?;
        }
        if self.events.len() > MAX_TELEMETRY_EVENTS {
            return Err(WireError::Malformed("telemetry event batch too large"));
        }
        out.extend_from_slice(&(self.events.len() as u32).to_le_bytes());
        for ev in &self.events {
            out.extend_from_slice(&ev.name.to_le_bytes());
            out.push(ev.kind);
            out.extend_from_slice(&ev.t_ns.to_le_bytes());
            out.extend_from_slice(&ev.dur_ns.to_le_bytes());
            out.extend_from_slice(&ev.delta.to_le_bytes());
        }
        Ok(())
    }

    fn decode_from(c: &mut Cursor<'_>) -> Result<Telemetry, WireError> {
        let seq = c.u64()?;
        let uptime_ns = c.u64()?;
        let dropped_events = c.u64()?;
        let n = c.u32()? as usize;
        // Capacity clamped like WorkerMetrics: hostile counts must not
        // pre-allocate beyond what the length-capped payload can hold.
        let mut spans = Vec::with_capacity(n.min(256));
        for _ in 0..n {
            let path = c.string()?;
            let count = c.u64()?;
            let total_ns = c.u64()?;
            spans.push(SpanTotalRow { path, count, total_ns });
        }
        let n = c.u32()? as usize;
        let mut gauges = Vec::with_capacity(n.min(256));
        for _ in 0..n {
            let name = c.string()?;
            let value = c.u64()? as i64;
            let max = c.u64()? as i64;
            gauges.push(GaugeSnap { name, value, max });
        }
        let n = c.u16()? as usize;
        if n > MAX_TELEMETRY_NAMES {
            return Err(WireError::Malformed("telemetry name table too large"));
        }
        let mut names = Vec::with_capacity(n.min(256));
        for _ in 0..n {
            names.push(c.string()?);
        }
        let n = c.u32()? as usize;
        if n > MAX_TELEMETRY_EVENTS {
            return Err(WireError::Malformed("telemetry event batch too large"));
        }
        let mut events = Vec::with_capacity(n.min(256));
        for _ in 0..n {
            let name = c.u16()?;
            if name as usize >= names.len() {
                return Err(WireError::Malformed("telemetry event name index out of range"));
            }
            let kind = c.u8()?;
            if kind > 1 {
                return Err(WireError::Malformed("unknown telemetry event kind"));
            }
            let t_ns = c.u64()?;
            let dur_ns = c.u64()?;
            let delta = c.u64()? as i64;
            events.push(WireEvent { name, kind, t_ns, dur_ns, delta });
        }
        Ok(Telemetry { seq, uptime_ns, spans, gauges, names, events, dropped_events })
    }
}

/// One decoded protocol message.
#[derive(Debug, Clone, PartialEq)]
pub enum Msg {
    Hello {
        version: u32,
        worker_id: u64,
        pid: u32,
    },
    HelloAck {
        version: u32,
        run: RunSpec,
    },
    Task {
        cand: Candidate,
    },
    Result {
        id: u64,
        outcome: EvalOutcome,
        stats: WorkerMetrics,
        /// The rung of the task this result answers, echoed by the worker
        /// (wire v4; 0 from a v3-shaped payload). Scheduling ignores it —
        /// the coordinator tracks rungs in its in-flight table — but it
        /// keeps `Result` frames self-describing for monitors and logs.
        rung: u8,
    },
    Ping {
        nonce: u64,
    },
    Pong {
        nonce: u64,
    },
    Shutdown,
    Error {
        message: String,
    },
    /// Final cumulative metrics snapshot, sent by a worker right before it
    /// closes its socket in response to `Shutdown`.
    Stats {
        stats: WorkerMetrics,
    },
    /// Periodic live-telemetry snapshot (wire v3): span/gauge state plus a
    /// timeline event batch, folded into the coordinator's `LiveRunView`.
    Telemetry {
        telemetry: Telemetry,
    },
    /// Drain-then-close (wire v6): the autoscaler picked this *idle* worker
    /// to shrink the pool. The worker flushes its final telemetry and
    /// `Stats` snapshot and exits cleanly — same teardown as `Shutdown`,
    /// but initiated by a policy decision, so the coordinator counts the
    /// departure as a retirement, never a loss.
    Retire {
        /// The policy decision tick that retired this worker.
        decision: u64,
        /// Human-readable decision context, for the worker's log.
        reason: String,
    },
}

fn app_code(app: AppKind) -> u8 {
    match app {
        AppKind::Cifar10 => 0,
        AppKind::Mnist => 1,
        AppKind::Nt3 => 2,
        AppKind::Uno => 3,
    }
}

fn app_from(code: u8) -> Result<AppKind, WireError> {
    match code {
        0 => Ok(AppKind::Cifar10),
        1 => Ok(AppKind::Mnist),
        2 => Ok(AppKind::Nt3),
        3 => Ok(AppKind::Uno),
        _ => Err(WireError::Malformed("unknown app code")),
    }
}

fn scheme_code(s: TransferScheme) -> u8 {
    match s {
        TransferScheme::Baseline => 0,
        TransferScheme::Lp => 1,
        TransferScheme::Lcs => 2,
    }
}

fn scheme_from(code: u8) -> Result<TransferScheme, WireError> {
    match code {
        0 => Ok(TransferScheme::Baseline),
        1 => Ok(TransferScheme::Lp),
        2 => Ok(TransferScheme::Lcs),
        _ => Err(WireError::Malformed("unknown scheme code")),
    }
}

impl Msg {
    /// The frame-type byte of this message.
    pub fn frame_type(&self) -> u8 {
        match self {
            Msg::Hello { .. } => 0x01,
            Msg::HelloAck { .. } => 0x02,
            Msg::Task { .. } => 0x03,
            Msg::Result { .. } => 0x04,
            Msg::Ping { .. } => 0x05,
            Msg::Pong { .. } => 0x06,
            Msg::Shutdown => 0x07,
            Msg::Error { .. } => 0x08,
            Msg::Stats { .. } => 0x09,
            Msg::Telemetry { .. } => 0x0A,
            Msg::Retire { .. } => 0x0B,
        }
    }

    /// Encode the payload (without the frame header).
    pub fn encode(&self) -> Result<Vec<u8>, WireError> {
        let mut out = Vec::new();
        match self {
            Msg::Hello { version, worker_id, pid } => {
                out.extend_from_slice(&version.to_le_bytes());
                out.extend_from_slice(&worker_id.to_le_bytes());
                out.extend_from_slice(&pid.to_le_bytes());
            }
            Msg::HelloAck { version, run } => {
                out.extend_from_slice(&version.to_le_bytes());
                out.push(app_code(run.app));
                out.push(match run.scale {
                    DataScale::Quick => 0,
                    DataScale::Full => 1,
                });
                out.extend_from_slice(&run.data_seed.to_le_bytes());
                out.push(scheme_code(run.scheme));
                out.extend_from_slice(&run.epochs.to_le_bytes());
                out.extend_from_slice(&run.run_seed.to_le_bytes());
                put_string(&mut out, &run.namespace)?;
                put_string(&mut out, &run.store_dir)?;
                out.extend_from_slice(&run.threads.to_le_bytes());
                out.extend_from_slice(&run.cache_bytes.to_le_bytes());
                // v4 fidelity tail.
                out.extend_from_slice(&run.prefilter_quantile.to_bits().to_le_bytes());
                out.extend_from_slice(&run.conv_window.to_le_bytes());
                out.extend_from_slice(&run.conv_min_delta.to_bits().to_le_bytes());
                // v5 store tail.
                put_string(&mut out, &run.store_url)?;
                // v6 autoscale tail.
                out.extend_from_slice(&run.autoscale_min.to_le_bytes());
                out.extend_from_slice(&run.autoscale_max.to_le_bytes());
            }
            Msg::Task { cand } => {
                out.extend_from_slice(&cand.id.to_le_bytes());
                out.push(u8::from(cand.parent.is_some()));
                out.extend_from_slice(&cand.parent.unwrap_or(0).to_le_bytes());
                let choices = cand.arch.choices();
                let len = u16::try_from(choices.len())
                    .map_err(|_| WireError::Malformed("architecture too long"))?;
                out.extend_from_slice(&len.to_le_bytes());
                for &c in choices {
                    out.extend_from_slice(&c.to_le_bytes());
                }
                // v4 fidelity tail: rung + optional per-task epoch override.
                if cand.rung as usize >= MAX_RUNGS {
                    return Err(WireError::Malformed("rung index out of range"));
                }
                out.push(cand.rung);
                out.push(u8::from(cand.epochs.is_some()));
                let epochs = match cand.epochs {
                    Some(e) => {
                        u32::try_from(e).map_err(|_| WireError::Malformed("epochs too large"))?
                    }
                    None => 0,
                };
                out.extend_from_slice(&epochs.to_le_bytes());
            }
            Msg::Result { id, outcome, stats, rung } => {
                out.extend_from_slice(&id.to_le_bytes());
                out.extend_from_slice(&outcome.score.to_bits().to_le_bytes());
                out.extend_from_slice(&outcome.train_secs.to_bits().to_le_bytes());
                out.extend_from_slice(&outcome.transfer_secs.to_bits().to_le_bytes());
                out.extend_from_slice(&outcome.save_secs.to_bits().to_le_bytes());
                out.extend_from_slice(&outcome.checkpoint_bytes.to_le_bytes());
                out.extend_from_slice(&(outcome.transfer.tensors as u64).to_le_bytes());
                out.extend_from_slice(&(outcome.transfer.bytes as u64).to_le_bytes());
                out.extend_from_slice(&(outcome.transfer.skipped as u64).to_le_bytes());
                out.extend_from_slice(&(outcome.epochs as u32).to_le_bytes());
                stats.encode_into(&mut out)?;
                // v4 fidelity tail: stop reason + echoed rung.
                out.push(outcome.stop.code());
                if *rung as usize >= MAX_RUNGS {
                    return Err(WireError::Malformed("rung index out of range"));
                }
                out.push(*rung);
            }
            Msg::Ping { nonce } | Msg::Pong { nonce } => {
                out.extend_from_slice(&nonce.to_le_bytes());
            }
            Msg::Shutdown => {}
            Msg::Error { message } => {
                put_string(&mut out, message)?;
            }
            Msg::Stats { stats } => {
                stats.encode_into(&mut out)?;
            }
            Msg::Telemetry { telemetry } => {
                telemetry.encode_into(&mut out)?;
            }
            Msg::Retire { decision, reason } => {
                out.extend_from_slice(&decision.to_le_bytes());
                put_string(&mut out, reason)?;
            }
        }
        Ok(out)
    }

    /// Decode a payload of frame type `ty`. Never panics: every malformed
    /// input maps to a [`WireError`].
    pub fn decode(ty: u8, payload: &[u8]) -> Result<Msg, WireError> {
        let mut c = Cursor::new(payload);
        let msg = match ty {
            0x01 => Msg::Hello { version: c.u32()?, worker_id: c.u64()?, pid: c.u32()? },
            0x02 => {
                let version = c.u32()?;
                let app = app_from(c.u8()?)?;
                let scale = match c.u8()? {
                    0 => DataScale::Quick,
                    1 => DataScale::Full,
                    _ => return Err(WireError::Malformed("unknown scale code")),
                };
                let data_seed = c.u64()?;
                let scheme = scheme_from(c.u8()?)?;
                let epochs = c.u32()?;
                let run_seed = c.u64()?;
                let namespace = c.string()?;
                let store_dir = c.string()?;
                let threads = c.u32()?;
                let cache_bytes = c.u64()?;
                // v4 fidelity tail; fidelity-off defaults for v3 payloads.
                let (prefilter_quantile, conv_window, conv_min_delta) = if c.at_end() {
                    (0.0, 0, 0.0)
                } else {
                    let q = c.f64()?;
                    if !(0.0..1.0).contains(&q) {
                        return Err(WireError::Malformed("prefilter quantile out of range"));
                    }
                    let window = c.u32()?;
                    let min_delta = c.f64()?;
                    if min_delta.is_nan() || min_delta < 0.0 {
                        return Err(WireError::Malformed("negative convergence min-delta"));
                    }
                    (q, window, min_delta)
                };
                // v5 store tail; empty url (local DirStore) for v3/v4
                // payloads.
                let store_url = if c.at_end() { String::new() } else { c.string()? };
                // v6 autoscale tail; (0, 0) = autoscale off for v3/v4/v5
                // payloads.
                let (autoscale_min, autoscale_max) = if c.at_end() {
                    (0, 0)
                } else {
                    let min = c.u32()?;
                    let max = c.u32()?;
                    let off = min == 0 && max == 0;
                    if !off && (min == 0 || min > max || max as usize > MAX_POOL_WORKERS) {
                        return Err(WireError::Malformed("hostile autoscale worker counts"));
                    }
                    (min, max)
                };
                Msg::HelloAck {
                    version,
                    run: RunSpec {
                        app,
                        scale,
                        data_seed,
                        scheme,
                        epochs,
                        run_seed,
                        namespace,
                        store_dir,
                        threads,
                        cache_bytes,
                        prefilter_quantile,
                        conv_window,
                        conv_min_delta,
                        store_url,
                        autoscale_min,
                        autoscale_max,
                    },
                }
            }
            0x03 => {
                let id = c.u64()?;
                let has_parent = c.u8()?;
                let parent_raw = c.u64()?;
                let parent = match has_parent {
                    0 => None,
                    1 => Some(parent_raw),
                    _ => return Err(WireError::Malformed("invalid parent flag")),
                };
                let n = c.u16()? as usize;
                let mut choices = Vec::with_capacity(n);
                for _ in 0..n {
                    choices.push(c.u16()?);
                }
                // v4 fidelity tail; rung-0 full-budget defaults for v3.
                let (rung, epochs) = if c.at_end() {
                    (0, None)
                } else {
                    let rung = c.u8()?;
                    if rung as usize >= MAX_RUNGS {
                        return Err(WireError::Malformed("rung index out of range"));
                    }
                    let has_epochs = c.u8()?;
                    let epochs_raw = c.u32()?;
                    let epochs = match has_epochs {
                        0 => None,
                        1 => Some(epochs_raw as usize),
                        _ => return Err(WireError::Malformed("invalid epochs flag")),
                    };
                    (rung, epochs)
                };
                Msg::Task {
                    cand: Candidate { id, arch: ArchSeq::new(choices), parent, rung, epochs },
                }
            }
            0x04 => {
                let id = c.u64()?;
                let score = c.f64()?;
                let train_secs = c.f64()?;
                let transfer_secs = c.f64()?;
                let save_secs = c.f64()?;
                let checkpoint_bytes = c.u64()?;
                let tensors = c.u64()? as usize;
                let bytes = c.u64()? as usize;
                let skipped = c.u64()? as usize;
                let epochs = c.u32()? as usize;
                let stats = WorkerMetrics::decode_from(&mut c)?;
                // v4 fidelity tail; budget-exhausted rung-0 defaults for v3.
                let (stop, rung) = if c.at_end() {
                    (StopReason::BudgetExhausted, 0)
                } else {
                    let stop = StopReason::from_code(c.u8()?)
                        .ok_or(WireError::Malformed("unknown stop reason"))?;
                    let rung = c.u8()?;
                    if rung as usize >= MAX_RUNGS {
                        return Err(WireError::Malformed("rung index out of range"));
                    }
                    (stop, rung)
                };
                Msg::Result {
                    id,
                    outcome: EvalOutcome {
                        id,
                        score,
                        train_secs,
                        transfer_secs,
                        save_secs,
                        checkpoint_bytes,
                        transfer: TransferStats { tensors, bytes, skipped },
                        epochs,
                        stop,
                    },
                    stats,
                    rung,
                }
            }
            0x05 => Msg::Ping { nonce: c.u64()? },
            0x06 => Msg::Pong { nonce: c.u64()? },
            0x07 => Msg::Shutdown,
            0x08 => Msg::Error { message: c.string()? },
            0x09 => Msg::Stats { stats: WorkerMetrics::decode_from(&mut c)? },
            0x0A => Msg::Telemetry { telemetry: Telemetry::decode_from(&mut c)? },
            0x0B => Msg::Retire { decision: c.u64()?, reason: c.string()? },
            other => return Err(WireError::UnknownType(other)),
        };
        c.finish()?;
        Ok(msg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::PROTOCOL_VERSION;

    fn round_trip(msg: Msg) -> Result<(), WireError> {
        let payload = msg.encode()?;
        let back = Msg::decode(msg.frame_type(), &payload)?;
        assert_eq!(back, msg);
        Ok(())
    }

    #[test]
    fn all_frames_round_trip() -> Result<(), WireError> {
        round_trip(Msg::Hello { version: PROTOCOL_VERSION, worker_id: 3, pid: 4242 })?;
        round_trip(Msg::HelloAck { version: PROTOCOL_VERSION, run: sample_run() })?;
        round_trip(Msg::HelloAck {
            version: PROTOCOL_VERSION,
            run: RunSpec {
                prefilter_quantile: 0.25,
                conv_window: 3,
                conv_min_delta: 1e-4,
                ..sample_run()
            },
        })?;
        round_trip(Msg::HelloAck {
            version: PROTOCOL_VERSION,
            run: RunSpec { store_url: "tcp://127.0.0.1:7421".into(), ..sample_run() },
        })?;
        round_trip(Msg::HelloAck {
            version: PROTOCOL_VERSION,
            run: RunSpec { autoscale_min: 1, autoscale_max: 8, ..sample_run() },
        })?;
        round_trip(Msg::Task {
            cand: Candidate {
                id: 7,
                arch: ArchSeq::new(vec![1, 0, 4, 2]),
                parent: Some(3),
                rung: 2,
                epochs: Some(4),
            },
        })?;
        round_trip(Msg::Task { cand: Candidate::new(0, ArchSeq::new(vec![2]), None) })?;
        round_trip(Msg::Result {
            id: 7,
            outcome: EvalOutcome {
                id: 7,
                score: 0.12345678901234567,
                train_secs: 1.5,
                transfer_secs: 0.25,
                save_secs: 0.01,
                checkpoint_bytes: 1 << 20,
                transfer: TransferStats { tensors: 5, bytes: 4096, skipped: 1 },
                epochs: 1,
                stop: StopReason::Converged,
            },
            stats: sample_metrics(),
            rung: 1,
        })?;
        round_trip(Msg::Ping { nonce: u64::MAX })?;
        round_trip(Msg::Pong { nonce: 0 })?;
        round_trip(Msg::Shutdown)?;
        round_trip(Msg::Error { message: "checkpoint store unreachable".into() })?;
        round_trip(Msg::Stats { stats: sample_metrics() })?;
        round_trip(Msg::Stats { stats: WorkerMetrics::default() })?;
        round_trip(Msg::Telemetry { telemetry: sample_telemetry() })?;
        round_trip(Msg::Telemetry { telemetry: Telemetry::default() })?;
        round_trip(Msg::Retire { decision: 17, reason: "pool drained to min".into() })?;
        Ok(())
    }

    fn sample_run() -> RunSpec {
        RunSpec {
            app: AppKind::Uno,
            scale: DataScale::Quick,
            data_seed: 11,
            scheme: TransferScheme::Lcs,
            epochs: 1,
            run_seed: 9,
            namespace: "dist_".into(),
            store_dir: "/tmp/swt_store".into(),
            threads: 1,
            cache_bytes: 1 << 22,
            prefilter_quantile: 0.0,
            conv_window: 0,
            conv_min_delta: 0.0,
            store_url: String::new(),
            autoscale_min: 0,
            autoscale_max: 0,
        }
    }

    fn sample_telemetry() -> Telemetry {
        Telemetry {
            seq: 42,
            uptime_ns: 1_000_000_007,
            spans: vec![
                SpanTotalRow { path: "nas.eval".into(), count: 5, total_ns: 5_000_000 },
                SpanTotalRow { path: "nas.queue_wait".into(), count: 5, total_ns: 700 },
            ],
            gauges: vec![GaugeSnap { name: "eval.batch.size".into(), value: -1, max: 4 }],
            names: vec!["nas.eval".into(), "nas.dispatch".into()],
            events: vec![
                WireEvent { name: 0, kind: 0, t_ns: 10, dur_ns: 90, delta: 0 },
                WireEvent { name: 1, kind: 1, t_ns: 120, dur_ns: 0, delta: -3 },
            ],
            dropped_events: 9,
        }
    }

    #[test]
    fn telemetry_rejects_hostile_payloads() -> Result<(), WireError> {
        // Event referencing a name index beyond the table.
        let payload = {
            // encode_into validates only sizes, so build the bad frame by
            // patching a good one: the name index lives at a fixed offset
            // from the end (2 events × 27 bytes).
            let mut p = Msg::Telemetry { telemetry: sample_telemetry() }.encode()?;
            let off = p.len() - 2 * 27;
            p[off..off + 2].copy_from_slice(&(sample_telemetry().names.len() as u16).to_le_bytes());
            p
        };
        assert!(matches!(Msg::decode(0x0A, &payload), Err(WireError::Malformed(_))));

        // Unknown event kind.
        let mut p = Msg::Telemetry { telemetry: sample_telemetry() }.encode()?;
        let off = p.len() - 2 * 27 + 2;
        p[off] = 7;
        assert!(matches!(Msg::decode(0x0A, &p), Err(WireError::Malformed(_))));

        // Oversized event batch announcement.
        let t = Telemetry { seq: 1, ..Default::default() };
        let mut p = Msg::Telemetry { telemetry: t }.encode()?;
        let len = p.len();
        p[len - 4..].copy_from_slice(&((MAX_TELEMETRY_EVENTS as u32 + 1).to_le_bytes()));
        assert!(matches!(Msg::decode(0x0A, &p), Err(WireError::Malformed(_))));
        Ok(())
    }

    #[test]
    fn telemetry_capture_advances_its_cursor() {
        // seq numbers and cursors are plain data — hostile values must be
        // handled by the *consumer* (LiveRunView ignores non-monotone seqs);
        // here we pin the producer side: capture never rewinds its cursor.
        let mut cursor = u64::MAX - 1; // hostile: far beyond the ring
        let t = Telemetry::capture(1, swt_obs::registry::UNATTRIBUTED_SLOT, &mut cursor);
        assert!(t.events.is_empty());
        assert!(cursor >= u64::MAX - 1, "cursor must never rewind");
    }

    fn sample_metrics() -> WorkerMetrics {
        WorkerMetrics {
            counters: vec![
                CounterRow { name: "ckpt.cache.hits".into(), value: 12 },
                CounterRow { name: "tensor.gemm.calls".into(), value: 4096 },
            ],
            histograms: vec![HistogramRow {
                name: "ckpt.save_ns".into(),
                count: 3,
                sum: 900,
                // Includes the overflow bucket: its u64::MAX bound must
                // survive the index-based encoding.
                buckets: vec![(255, 2), (u64::MAX, 1)],
            }],
        }
    }

    #[test]
    fn stats_with_bad_bucket_fields_error_cleanly() {
        // Bucket count beyond HIST_BUCKETS.
        let mut bad = Vec::new();
        bad.extend_from_slice(&0u32.to_le_bytes()); // no counters
        bad.extend_from_slice(&1u32.to_le_bytes()); // one histogram
        let _ = put_string(&mut bad, "h");
        bad.extend_from_slice(&1u64.to_le_bytes()); // count
        bad.extend_from_slice(&1u64.to_le_bytes()); // sum
        bad.push(HIST_BUCKETS as u8 + 1);
        assert!(matches!(Msg::decode(0x09, &bad), Err(WireError::Malformed(_))));

        // Bucket index out of range.
        let mut bad = Vec::new();
        bad.extend_from_slice(&0u32.to_le_bytes());
        bad.extend_from_slice(&1u32.to_le_bytes());
        let _ = put_string(&mut bad, "h");
        bad.extend_from_slice(&1u64.to_le_bytes());
        bad.extend_from_slice(&1u64.to_le_bytes());
        bad.push(1);
        bad.push(HIST_BUCKETS as u8); // first invalid index
        bad.extend_from_slice(&1u64.to_le_bytes());
        assert!(matches!(Msg::decode(0x09, &bad), Err(WireError::Malformed(_))));

        // Hostile counter count must not pre-allocate: payload ends early.
        let mut bad = Vec::new();
        bad.extend_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(Msg::decode(0x09, &bad), Err(WireError::Malformed(_))));
    }

    #[test]
    fn scores_round_trip_bit_exactly() -> Result<(), WireError> {
        // NaN payloads and signed zeros must survive: identity gates compare
        // bit patterns, not approximate values.
        for bits in [f64::to_bits(-0.0), f64::NAN.to_bits() | 1, f64::MIN_POSITIVE.to_bits()] {
            let msg = Msg::Result {
                id: 1,
                outcome: EvalOutcome {
                    id: 1,
                    score: f64::from_bits(bits),
                    train_secs: 0.0,
                    transfer_secs: 0.0,
                    save_secs: 0.0,
                    checkpoint_bytes: 0,
                    transfer: TransferStats::default(),
                    epochs: 0,
                    stop: StopReason::BudgetExhausted,
                },
                stats: WorkerMetrics::default(),
                rung: 0,
            };
            let decoded = Msg::decode(0x04, &msg.encode()?)?;
            let Msg::Result { outcome, .. } = decoded else {
                return Err(WireError::Malformed("wrong decode variant"));
            };
            assert_eq!(outcome.score.to_bits(), bits);
        }
        Ok(())
    }

    #[test]
    fn v3_shaped_payloads_decode_with_fidelity_defaults() -> Result<(), WireError> {
        // Truncating a v4 payload at the v3 boundary (dropping the whole
        // tail) must decode with fidelity-off defaults — that is the
        // backward-decode contract.
        let full = Msg::HelloAck {
            version: PROTOCOL_VERSION,
            run: RunSpec { store_url: "tcp://127.0.0.1:7421".into(), ..sample_run() },
        }
        .encode()?;
        let mut p = full.clone();
        // autoscale tail (2 × u32) + store tail (u16 + 20) + fidelity tail
        p.truncate(p.len() - 8 - 22 - 20);
        let Msg::HelloAck { run, .. } = Msg::decode(0x02, &p)? else { unreachable!() };
        assert_eq!(run, sample_run());
        assert_eq!(run.eval_fidelity(), EvalFidelity::default());

        // Truncating at the v4 boundary (dropping the v6 autoscale and v5
        // store tails) must keep the fidelity fields and default the url to
        // empty.
        let mut p = full.clone();
        p.truncate(p.len() - 8 - 22);
        let Msg::HelloAck { run, .. } = Msg::decode(0x02, &p)? else { unreachable!() };
        assert_eq!(run, sample_run());

        // Truncating at the v5 boundary (dropping only the v6 autoscale
        // tail) must keep the store url and default autoscale to off.
        let mut p = full;
        p.truncate(p.len() - 8);
        let Msg::HelloAck { run, .. } = Msg::decode(0x02, &p)? else { unreachable!() };
        assert_eq!(run.store_url, "tcp://127.0.0.1:7421");
        assert_eq!((run.autoscale_min, run.autoscale_max), (0, 0));

        let cand = Candidate {
            rung: 1,
            epochs: Some(2),
            ..Candidate::new(5, ArchSeq::new(vec![3, 1]), None)
        };
        let mut p = Msg::Task { cand }.encode()?;
        p.truncate(p.len() - 6); // u8 + u8 + u32
        let Msg::Task { cand } = Msg::decode(0x03, &p)? else { unreachable!() };
        assert_eq!((cand.rung, cand.epochs), (0, None));

        let msg = Msg::Result {
            id: 2,
            outcome: EvalOutcome {
                id: 2,
                score: 0.5,
                train_secs: 0.0,
                transfer_secs: 0.0,
                save_secs: 0.0,
                checkpoint_bytes: 0,
                transfer: TransferStats::default(),
                epochs: 1,
                stop: StopReason::Pruned,
            },
            stats: WorkerMetrics::default(),
            rung: 3,
        };
        let mut p = msg.encode()?;
        p.truncate(p.len() - 2); // stop + rung
        let Msg::Result { outcome, rung, .. } = Msg::decode(0x04, &p)? else { unreachable!() };
        assert_eq!((outcome.stop, rung), (StopReason::BudgetExhausted, 0));
        Ok(())
    }

    #[test]
    fn hostile_fidelity_tails_are_rejected() -> Result<(), WireError> {
        // Unknown stop discriminant.
        let msg = Msg::Result {
            id: 1,
            outcome: EvalOutcome {
                id: 1,
                score: 0.0,
                train_secs: 0.0,
                transfer_secs: 0.0,
                save_secs: 0.0,
                checkpoint_bytes: 0,
                transfer: TransferStats::default(),
                epochs: 0,
                stop: StopReason::BudgetExhausted,
            },
            stats: WorkerMetrics::default(),
            rung: 0,
        };
        let p = msg.encode()?;
        let mut bad = p.clone();
        let n = bad.len();
        bad[n - 2] = 4; // first invalid StopReason code
        assert!(matches!(
            Msg::decode(0x04, &bad),
            Err(WireError::Malformed("unknown stop reason"))
        ));
        // Out-of-range rung in a Result.
        let mut bad = p.clone();
        bad[n - 1] = MAX_RUNGS as u8;
        assert!(matches!(Msg::decode(0x04, &bad), Err(WireError::Malformed(_))));
        // Partial tail (stop present, rung missing) is malformed, not a
        // silent default: only the exact v3 boundary is a valid prefix.
        let mut bad = p;
        bad.truncate(n - 1);
        assert!(matches!(Msg::decode(0x04, &bad), Err(WireError::Malformed(_))));

        // Out-of-range rung / bogus epochs flag in a Task.
        let p = Msg::Task { cand: Candidate::new(1, ArchSeq::new(vec![2]), None) }.encode()?;
        let n = p.len();
        let mut bad = p.clone();
        bad[n - 6] = MAX_RUNGS as u8;
        assert!(matches!(Msg::decode(0x03, &bad), Err(WireError::Malformed(_))));
        let mut bad = p;
        bad[n - 5] = 2;
        assert!(matches!(
            Msg::decode(0x03, &bad),
            Err(WireError::Malformed("invalid epochs flag"))
        ));

        // Quantile ≥ 1 / NaN min-delta in a HelloAck. The empty v5 store
        // tail (2 bytes) and the v6 autoscale tail (8 bytes) sit after the
        // fidelity group, shifting offsets.
        let bad_run = Msg::HelloAck {
            version: PROTOCOL_VERSION,
            run: RunSpec { prefilter_quantile: 0.5, ..sample_run() },
        }
        .encode()?;
        let n = bad_run.len();
        let mut bad = bad_run.clone();
        bad[n - 30..n - 22].copy_from_slice(&1.0f64.to_bits().to_le_bytes());
        assert!(matches!(Msg::decode(0x02, &bad), Err(WireError::Malformed(_))));
        let mut bad = bad_run.clone();
        bad[n - 18..n - 10].copy_from_slice(&f64::NAN.to_bits().to_le_bytes());
        assert!(matches!(Msg::decode(0x02, &bad), Err(WireError::Malformed(_))));
        // Store-url tail whose length prefix promises more bytes than the
        // payload holds: a partial tail is malformed, never a default. (The
        // announced 500 bytes swallow the autoscale tail and run off the
        // end.)
        let mut bad = bad_run.clone();
        bad[n - 10..n - 8].copy_from_slice(&500u16.to_le_bytes());
        assert!(matches!(Msg::decode(0x02, &bad), Err(WireError::Malformed(_))));

        // Hostile autoscale worker counts: min > max, min == 0 with a
        // nonzero max, and max beyond the pool cap are all malformed.
        for (min, max) in
            [(5u32, 2u32), (0, 3), (1, MAX_POOL_WORKERS as u32 + 1), (u32::MAX, u32::MAX)]
        {
            let mut bad = bad_run.clone();
            bad[n - 8..n - 4].copy_from_slice(&min.to_le_bytes());
            bad[n - 4..].copy_from_slice(&max.to_le_bytes());
            assert!(
                matches!(
                    Msg::decode(0x02, &bad),
                    Err(WireError::Malformed("hostile autoscale worker counts"))
                ),
                "({min}, {max}) must be rejected"
            );
        }
        // Partial autoscale tail (min present, max missing) is malformed,
        // never a default: only the exact v5 boundary is a valid prefix.
        let mut bad = bad_run;
        bad.truncate(n - 4);
        assert!(matches!(Msg::decode(0x02, &bad), Err(WireError::Malformed(_))));
        Ok(())
    }

    #[test]
    fn run_spec_fidelity_maps_onto_evaluator_knobs() {
        let run = RunSpec {
            prefilter_quantile: 0.25,
            conv_window: 3,
            conv_min_delta: 1e-4,
            ..sample_run()
        };
        let f = run.eval_fidelity();
        assert_eq!(f.prefilter_quantile, 0.25);
        assert_eq!(f.convergence, Some(Convergence { window: 3, min_delta: 1e-4 }));
        assert!(f.enabled());
        assert!(!sample_run().eval_fidelity().enabled());
    }

    #[test]
    fn malformed_payloads_error_cleanly() {
        // Truncated Task.
        assert!(matches!(Msg::decode(0x03, &[1, 2, 3]), Err(WireError::Malformed(_))));
        // Unknown frame type.
        assert!(matches!(Msg::decode(0x7f, &[]), Err(WireError::UnknownType(0x7f))));
        // Trailing garbage after a valid Ping.
        let ping = [0u8; 9];
        assert!(matches!(Msg::decode(0x05, &ping), Err(WireError::Malformed(_))));
        // Bad parent flag.
        let mut bad = Vec::new();
        bad.extend_from_slice(&1u64.to_le_bytes());
        bad.push(9);
        bad.extend_from_slice(&0u64.to_le_bytes());
        bad.extend_from_slice(&0u16.to_le_bytes());
        assert!(matches!(Msg::decode(0x03, &bad), Err(WireError::Malformed(_))));
        // Arch length that promises more choices than the payload holds.
        let mut short = Vec::new();
        short.extend_from_slice(&1u64.to_le_bytes());
        short.push(0);
        short.extend_from_slice(&0u64.to_le_bytes());
        short.extend_from_slice(&500u16.to_le_bytes());
        assert!(matches!(Msg::decode(0x03, &short), Err(WireError::Malformed(_))));
    }
}
