//! Message layer: typed frames and their payload encodings (DESIGN.md §10).
//!
//! | type | frame     | direction           | payload                                 |
//! |------|-----------|---------------------|-----------------------------------------|
//! | 0x01 | Hello     | worker → coordinator| version, worker_id, pid                 |
//! | 0x02 | HelloAck  | coordinator → worker| version, [`RunSpec`]                    |
//! | 0x03 | Task      | coordinator → worker| candidate id, parent, arch sequence     |
//! | 0x04 | Result    | worker → coordinator| id + full [`EvalOutcome`] fields        |
//! | 0x05 | Ping      | coordinator → worker| nonce                                   |
//! | 0x06 | Pong      | worker → coordinator| echoed nonce                            |
//! | 0x07 | Shutdown  | coordinator → worker| (empty)                                 |
//! | 0x08 | Error     | either              | utf-8 description                       |
//!
//! All integers little-endian; floats as IEEE-754 bit patterns (scores must
//! round-trip bit-exactly — the A/B identity gate compares them with `==`).

use crate::frame::{put_string, Cursor, WireError};
use swt_core::{TransferScheme, TransferStats};
use swt_data::{AppKind, DataScale};
use swt_nas::{Candidate, EvalOutcome};
use swt_space::ArchSeq;

/// Everything a worker needs to reproduce the coordinator's evaluation
/// environment, sent once in `HelloAck`. The worker builds the same
/// problem/search-space/evaluator from these fields that `run_nas` builds
/// in-process — that is the whole determinism story: candidate seeds derive
/// from `(run_seed, id)` and the data from `(app, scale, data_seed)`.
#[derive(Debug, Clone, PartialEq)]
pub struct RunSpec {
    pub app: AppKind,
    pub scale: DataScale,
    pub data_seed: u64,
    pub scheme: TransferScheme,
    pub epochs: u32,
    pub run_seed: u64,
    /// Checkpoint-id namespace (see `NasConfig::namespace`).
    pub namespace: String,
    /// Root of the shared `DirStore` (the stand-in for the paper's parallel
    /// file system).
    pub store_dir: String,
    /// Intra-op thread budget this worker must pin
    /// (`hardware / workers`, floored at 1 — same policy as the in-process
    /// pool).
    pub threads: u32,
}

/// One decoded protocol message.
#[derive(Debug, Clone, PartialEq)]
pub enum Msg {
    Hello { version: u32, worker_id: u64, pid: u32 },
    HelloAck { version: u32, run: RunSpec },
    Task { cand: Candidate },
    Result { id: u64, outcome: EvalOutcome },
    Ping { nonce: u64 },
    Pong { nonce: u64 },
    Shutdown,
    Error { message: String },
}

fn app_code(app: AppKind) -> u8 {
    match app {
        AppKind::Cifar10 => 0,
        AppKind::Mnist => 1,
        AppKind::Nt3 => 2,
        AppKind::Uno => 3,
    }
}

fn app_from(code: u8) -> Result<AppKind, WireError> {
    match code {
        0 => Ok(AppKind::Cifar10),
        1 => Ok(AppKind::Mnist),
        2 => Ok(AppKind::Nt3),
        3 => Ok(AppKind::Uno),
        _ => Err(WireError::Malformed("unknown app code")),
    }
}

fn scheme_code(s: TransferScheme) -> u8 {
    match s {
        TransferScheme::Baseline => 0,
        TransferScheme::Lp => 1,
        TransferScheme::Lcs => 2,
    }
}

fn scheme_from(code: u8) -> Result<TransferScheme, WireError> {
    match code {
        0 => Ok(TransferScheme::Baseline),
        1 => Ok(TransferScheme::Lp),
        2 => Ok(TransferScheme::Lcs),
        _ => Err(WireError::Malformed("unknown scheme code")),
    }
}

impl Msg {
    /// The frame-type byte of this message.
    pub fn frame_type(&self) -> u8 {
        match self {
            Msg::Hello { .. } => 0x01,
            Msg::HelloAck { .. } => 0x02,
            Msg::Task { .. } => 0x03,
            Msg::Result { .. } => 0x04,
            Msg::Ping { .. } => 0x05,
            Msg::Pong { .. } => 0x06,
            Msg::Shutdown => 0x07,
            Msg::Error { .. } => 0x08,
        }
    }

    /// Encode the payload (without the frame header).
    pub fn encode(&self) -> Result<Vec<u8>, WireError> {
        let mut out = Vec::new();
        match self {
            Msg::Hello { version, worker_id, pid } => {
                out.extend_from_slice(&version.to_le_bytes());
                out.extend_from_slice(&worker_id.to_le_bytes());
                out.extend_from_slice(&pid.to_le_bytes());
            }
            Msg::HelloAck { version, run } => {
                out.extend_from_slice(&version.to_le_bytes());
                out.push(app_code(run.app));
                out.push(match run.scale {
                    DataScale::Quick => 0,
                    DataScale::Full => 1,
                });
                out.extend_from_slice(&run.data_seed.to_le_bytes());
                out.push(scheme_code(run.scheme));
                out.extend_from_slice(&run.epochs.to_le_bytes());
                out.extend_from_slice(&run.run_seed.to_le_bytes());
                put_string(&mut out, &run.namespace)?;
                put_string(&mut out, &run.store_dir)?;
                out.extend_from_slice(&run.threads.to_le_bytes());
            }
            Msg::Task { cand } => {
                out.extend_from_slice(&cand.id.to_le_bytes());
                out.push(u8::from(cand.parent.is_some()));
                out.extend_from_slice(&cand.parent.unwrap_or(0).to_le_bytes());
                let choices = cand.arch.choices();
                let len = u16::try_from(choices.len())
                    .map_err(|_| WireError::Malformed("architecture too long"))?;
                out.extend_from_slice(&len.to_le_bytes());
                for &c in choices {
                    out.extend_from_slice(&c.to_le_bytes());
                }
            }
            Msg::Result { id, outcome } => {
                out.extend_from_slice(&id.to_le_bytes());
                out.extend_from_slice(&outcome.score.to_bits().to_le_bytes());
                out.extend_from_slice(&outcome.train_secs.to_bits().to_le_bytes());
                out.extend_from_slice(&outcome.transfer_secs.to_bits().to_le_bytes());
                out.extend_from_slice(&outcome.save_secs.to_bits().to_le_bytes());
                out.extend_from_slice(&outcome.checkpoint_bytes.to_le_bytes());
                out.extend_from_slice(&(outcome.transfer.tensors as u64).to_le_bytes());
                out.extend_from_slice(&(outcome.transfer.bytes as u64).to_le_bytes());
                out.extend_from_slice(&(outcome.transfer.skipped as u64).to_le_bytes());
                out.extend_from_slice(&(outcome.epochs as u32).to_le_bytes());
            }
            Msg::Ping { nonce } | Msg::Pong { nonce } => {
                out.extend_from_slice(&nonce.to_le_bytes());
            }
            Msg::Shutdown => {}
            Msg::Error { message } => {
                put_string(&mut out, message)?;
            }
        }
        Ok(out)
    }

    /// Decode a payload of frame type `ty`. Never panics: every malformed
    /// input maps to a [`WireError`].
    pub fn decode(ty: u8, payload: &[u8]) -> Result<Msg, WireError> {
        let mut c = Cursor::new(payload);
        let msg = match ty {
            0x01 => Msg::Hello { version: c.u32()?, worker_id: c.u64()?, pid: c.u32()? },
            0x02 => {
                let version = c.u32()?;
                let app = app_from(c.u8()?)?;
                let scale = match c.u8()? {
                    0 => DataScale::Quick,
                    1 => DataScale::Full,
                    _ => return Err(WireError::Malformed("unknown scale code")),
                };
                let data_seed = c.u64()?;
                let scheme = scheme_from(c.u8()?)?;
                let epochs = c.u32()?;
                let run_seed = c.u64()?;
                let namespace = c.string()?;
                let store_dir = c.string()?;
                let threads = c.u32()?;
                Msg::HelloAck {
                    version,
                    run: RunSpec {
                        app,
                        scale,
                        data_seed,
                        scheme,
                        epochs,
                        run_seed,
                        namespace,
                        store_dir,
                        threads,
                    },
                }
            }
            0x03 => {
                let id = c.u64()?;
                let has_parent = c.u8()?;
                let parent_raw = c.u64()?;
                let parent = match has_parent {
                    0 => None,
                    1 => Some(parent_raw),
                    _ => return Err(WireError::Malformed("invalid parent flag")),
                };
                let n = c.u16()? as usize;
                let mut choices = Vec::with_capacity(n);
                for _ in 0..n {
                    choices.push(c.u16()?);
                }
                Msg::Task { cand: Candidate { id, arch: ArchSeq::new(choices), parent } }
            }
            0x04 => {
                let id = c.u64()?;
                let score = c.f64()?;
                let train_secs = c.f64()?;
                let transfer_secs = c.f64()?;
                let save_secs = c.f64()?;
                let checkpoint_bytes = c.u64()?;
                let tensors = c.u64()? as usize;
                let bytes = c.u64()? as usize;
                let skipped = c.u64()? as usize;
                let epochs = c.u32()? as usize;
                Msg::Result {
                    id,
                    outcome: EvalOutcome {
                        id,
                        score,
                        train_secs,
                        transfer_secs,
                        save_secs,
                        checkpoint_bytes,
                        transfer: TransferStats { tensors, bytes, skipped },
                        epochs,
                    },
                }
            }
            0x05 => Msg::Ping { nonce: c.u64()? },
            0x06 => Msg::Pong { nonce: c.u64()? },
            0x07 => Msg::Shutdown,
            0x08 => Msg::Error { message: c.string()? },
            other => return Err(WireError::UnknownType(other)),
        };
        c.finish()?;
        Ok(msg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::PROTOCOL_VERSION;

    fn round_trip(msg: Msg) -> Result<(), WireError> {
        let payload = msg.encode()?;
        let back = Msg::decode(msg.frame_type(), &payload)?;
        assert_eq!(back, msg);
        Ok(())
    }

    #[test]
    fn all_frames_round_trip() -> Result<(), WireError> {
        round_trip(Msg::Hello { version: PROTOCOL_VERSION, worker_id: 3, pid: 4242 })?;
        round_trip(Msg::HelloAck {
            version: PROTOCOL_VERSION,
            run: RunSpec {
                app: AppKind::Uno,
                scale: DataScale::Quick,
                data_seed: 11,
                scheme: TransferScheme::Lcs,
                epochs: 1,
                run_seed: 9,
                namespace: "dist_".into(),
                store_dir: "/tmp/swt_store".into(),
                threads: 1,
            },
        })?;
        round_trip(Msg::Task {
            cand: Candidate { id: 7, arch: ArchSeq::new(vec![1, 0, 4, 2]), parent: Some(3) },
        })?;
        round_trip(Msg::Task {
            cand: Candidate { id: 0, arch: ArchSeq::new(vec![2]), parent: None },
        })?;
        round_trip(Msg::Result {
            id: 7,
            outcome: EvalOutcome {
                id: 7,
                score: 0.12345678901234567,
                train_secs: 1.5,
                transfer_secs: 0.25,
                save_secs: 0.01,
                checkpoint_bytes: 1 << 20,
                transfer: TransferStats { tensors: 5, bytes: 4096, skipped: 1 },
                epochs: 1,
            },
        })?;
        round_trip(Msg::Ping { nonce: u64::MAX })?;
        round_trip(Msg::Pong { nonce: 0 })?;
        round_trip(Msg::Shutdown)?;
        round_trip(Msg::Error { message: "checkpoint store unreachable".into() })?;
        Ok(())
    }

    #[test]
    fn scores_round_trip_bit_exactly() -> Result<(), WireError> {
        // NaN payloads and signed zeros must survive: identity gates compare
        // bit patterns, not approximate values.
        for bits in [f64::to_bits(-0.0), f64::NAN.to_bits() | 1, f64::MIN_POSITIVE.to_bits()] {
            let msg = Msg::Result {
                id: 1,
                outcome: EvalOutcome {
                    id: 1,
                    score: f64::from_bits(bits),
                    train_secs: 0.0,
                    transfer_secs: 0.0,
                    save_secs: 0.0,
                    checkpoint_bytes: 0,
                    transfer: TransferStats::default(),
                    epochs: 0,
                },
            };
            let decoded = Msg::decode(0x04, &msg.encode()?)?;
            let Msg::Result { outcome, .. } = decoded else {
                return Err(WireError::Malformed("wrong decode variant"));
            };
            assert_eq!(outcome.score.to_bits(), bits);
        }
        Ok(())
    }

    #[test]
    fn malformed_payloads_error_cleanly() {
        // Truncated Task.
        assert!(matches!(Msg::decode(0x03, &[1, 2, 3]), Err(WireError::Malformed(_))));
        // Unknown frame type.
        assert!(matches!(Msg::decode(0x7f, &[]), Err(WireError::UnknownType(0x7f))));
        // Trailing garbage after a valid Ping.
        let ping = [0u8; 9];
        assert!(matches!(Msg::decode(0x05, &ping), Err(WireError::Malformed(_))));
        // Bad parent flag.
        let mut bad = Vec::new();
        bad.extend_from_slice(&1u64.to_le_bytes());
        bad.push(9);
        bad.extend_from_slice(&0u64.to_le_bytes());
        bad.extend_from_slice(&0u16.to_le_bytes());
        assert!(matches!(Msg::decode(0x03, &bad), Err(WireError::Malformed(_))));
        // Arch length that promises more choices than the payload holds.
        let mut short = Vec::new();
        short.extend_from_slice(&1u64.to_le_bytes());
        short.push(0);
        short.extend_from_slice(&0u64.to_le_bytes());
        short.extend_from_slice(&500u16.to_le_bytes());
        assert!(matches!(Msg::decode(0x03, &short), Err(WireError::Malformed(_))));
    }
}
