//! Seeded fuzz coverage of the wire protocol's decode surface (satellite of
//! the elastic-matrix PR): every frame type under truncation, bit flips,
//! random payloads, unknown tags, and hostile length prefixes must come
//! back as a typed [`WireError`] or a valid `Msg` — never a panic, never an
//! unbounded allocation. Deterministic (fixed seeds, no time/randomness
//! from the environment) so a failure always reproduces.

use std::io::Cursor as IoCursor;
use swt_core::{TransferScheme, TransferStats};
use swt_data::{AppKind, DataScale};
use swt_dist::frame::{read_frame, write_frame};
use swt_dist::wire::{
    GaugeSnap, Msg, RunSpec, SpanTotalRow, Telemetry, WireEvent, WorkerMetrics,
    MAX_TELEMETRY_EVENTS, MAX_TELEMETRY_NAMES,
};
use swt_dist::{WireError, MAX_FRAME_LEN, PROTOCOL_VERSION};
use swt_nas::{Candidate, EvalOutcome, StopReason, MAX_RUNGS};
use swt_obs::report::{CounterRow, HistogramRow};
use swt_space::ArchSeq;
use swt_tensor::Rng;

/// Every known frame-type byte (0x01 Hello … 0x0B Retire).
const FRAME_TYPES: std::ops::RangeInclusive<u8> = 0x01..=0x0B;

/// The corpus HelloAck's store endpoint — non-empty so the wire-v5 store
/// tail is actually exercised by the truncation sweeps.
const CORPUS_URL: &str = "tcp://127.0.0.1:9999";

/// One valid message of every frame type — the fuzz corpus seeds.
fn corpus() -> Vec<Msg> {
    let stats = WorkerMetrics {
        counters: vec![
            CounterRow { name: "ckpt.cache.hits".into(), value: 12 },
            CounterRow { name: "tensor.gemm.blocked".into(), value: 4096 },
        ],
        histograms: vec![HistogramRow {
            name: "ckpt.save_ns".into(),
            count: 3,
            sum: 900,
            buckets: vec![(255, 2), (u64::MAX, 1)],
        }],
    };
    vec![
        Msg::Hello { version: PROTOCOL_VERSION, worker_id: 3, pid: 4242 },
        Msg::HelloAck {
            version: PROTOCOL_VERSION,
            run: RunSpec {
                app: AppKind::Uno,
                scale: DataScale::Quick,
                data_seed: 11,
                scheme: TransferScheme::Lcs,
                epochs: 1,
                run_seed: 9,
                namespace: "dist_".into(),
                store_dir: "/tmp/swt_store".into(),
                threads: 1,
                cache_bytes: 1 << 22,
                prefilter_quantile: 0.25,
                conv_window: 3,
                conv_min_delta: 1e-4,
                store_url: CORPUS_URL.into(),
                // Nonzero so the wire-v6 autoscale tail carries a real
                // bound pair through the truncation sweeps.
                autoscale_min: 1,
                autoscale_max: 8,
            },
        },
        Msg::Task {
            cand: Candidate {
                id: 7,
                arch: ArchSeq::new(vec![1, 0, 4, 2]),
                parent: Some(3),
                rung: 2,
                epochs: Some(4),
            },
        },
        Msg::Result {
            id: 7,
            outcome: EvalOutcome {
                id: 7,
                score: 0.12345678901234567,
                train_secs: 1.5,
                transfer_secs: 0.25,
                save_secs: 0.01,
                checkpoint_bytes: 1 << 20,
                transfer: TransferStats { tensors: 5, bytes: 4096, skipped: 1 },
                epochs: 1,
                stop: StopReason::Converged,
            },
            stats: stats.clone(),
            rung: 2,
        },
        Msg::Ping { nonce: u64::MAX },
        Msg::Pong { nonce: 0 },
        Msg::Shutdown,
        Msg::Error { message: "checkpoint store unreachable".into() },
        Msg::Stats { stats },
        Msg::Telemetry {
            telemetry: Telemetry {
                seq: u64::MAX - 1, // hostile-adjacent seq must survive the trip
                uptime_ns: 123_456_789,
                spans: vec![SpanTotalRow { path: "nas.eval".into(), count: 4, total_ns: 99 }],
                gauges: vec![GaugeSnap { name: "pool.queue_depth".into(), value: -1, max: 8 }],
                names: vec!["nas.eval".into(), "nas.dispatch".into()],
                events: vec![
                    WireEvent { name: 0, kind: 0, t_ns: 10, dur_ns: 5, delta: 0 },
                    WireEvent { name: 1, kind: 1, t_ns: 20, dur_ns: 0, delta: -3 },
                ],
                dropped_events: 7,
            },
        },
        Msg::Retire { decision: 42, reason: "pool past demand".into() },
    ]
}

/// Byte length of a frame type's wire-v4 fidelity tail (0 = no tail).
fn fidelity_tail_len(ty: u8) -> usize {
    match ty {
        0x02 => 20, // prefilter f64 + conv_window u32 + conv_min_delta f64
        0x03 => 6,  // rung u8 + has_epochs u8 + epochs u32
        0x04 => 2,  // stop u8 + rung u8
        _ => 0,
    }
}

/// Byte length of the corpus message's wire-v5 store tail (HelloAck only:
/// u16 length prefix + url bytes).
fn store_tail_len(ty: u8) -> usize {
    if ty == 0x02 {
        2 + CORPUS_URL.len()
    } else {
        0
    }
}

/// Byte length of the wire-v6 autoscale tail (HelloAck only: min + max u32).
fn autoscale_tail_len(ty: u8) -> usize {
    if ty == 0x02 {
        8
    } else {
        0
    }
}

/// The strict prefixes of a corpus payload that must still decode — the
/// optional-tail version boundaries. Tail-less frames have none; fidelity
/// frames have the v3 boundary; HelloAck additionally has the v4 boundary
/// (fidelity kept, store tail dropped) and the v5 boundary (store tail
/// kept, autoscale tail dropped).
fn valid_cuts(ty: u8, len: usize) -> Vec<usize> {
    let mut cuts = Vec::new();
    let (fid, store, auto) = (fidelity_tail_len(ty), store_tail_len(ty), autoscale_tail_len(ty));
    if fid > 0 {
        cuts.push(len - auto - store - fid);
    }
    if store > 0 {
        cuts.push(len - auto - store);
    }
    if auto > 0 {
        cuts.push(len - auto);
    }
    cuts
}

#[test]
fn every_truncation_of_every_frame_is_a_typed_error() {
    for msg in corpus() {
        let payload = msg.encode().expect("corpus must encode");
        assert_eq!(Msg::decode(msg.frame_type(), &payload).expect("corpus round-trip"), msg);
        let cuts = valid_cuts(msg.frame_type(), payload.len());
        // Every strict prefix either starves a fixed-width read or leaves a
        // count without its elements; none may decode, none may panic. The
        // one carve-out: optional-tail frames (HelloAck/Task/Result) decode
        // at exactly their version boundaries — the backward-decode
        // contract (v3 for all three, additionally v4 for HelloAck).
        for cut in 0..payload.len() {
            let got = Msg::decode(msg.frame_type(), &payload[..cut]);
            if cuts.contains(&cut) {
                assert!(
                    got.is_ok(),
                    "type {:#04x} must decode its version-boundary prefix ({cut} bytes)",
                    msg.frame_type()
                );
            } else {
                assert!(
                    got.is_err(),
                    "type {:#04x} truncated to {cut}/{} bytes decoded successfully",
                    msg.frame_type(),
                    payload.len()
                );
            }
        }
    }
}

#[test]
fn v3_boundary_prefixes_decode_with_fidelity_defaults() {
    for msg in corpus() {
        let ty = msg.frame_type();
        if fidelity_tail_len(ty) == 0 {
            continue;
        }
        let payload = msg.encode().expect("corpus must encode");
        let v3 =
            payload.len() - fidelity_tail_len(ty) - store_tail_len(ty) - autoscale_tail_len(ty);
        match Msg::decode(ty, &payload[..v3]).expect("v3-shaped prefix must decode") {
            Msg::HelloAck { run, .. } => {
                assert_eq!(run.prefilter_quantile, 0.0);
                assert_eq!((run.conv_window, run.conv_min_delta), (0, 0.0));
                assert!(!run.eval_fidelity().enabled());
                assert!(run.store_url.is_empty(), "v3 prefix must default to DirStore");
            }
            Msg::Task { cand } => assert_eq!((cand.rung, cand.epochs), (0, None)),
            Msg::Result { outcome, rung, .. } => {
                assert_eq!(outcome.stop, StopReason::BudgetExhausted);
                assert_eq!(rung, 0);
            }
            other => panic!("unexpected decode variant for tag {:#04x}: {other:?}", ty),
        }
        // HelloAck's v4 boundary keeps the fidelity knobs, drops the url
        // and the autoscale pair.
        if ty == 0x02 {
            let v4 = payload.len() - store_tail_len(ty) - autoscale_tail_len(ty);
            let Msg::HelloAck { run, .. } =
                Msg::decode(ty, &payload[..v4]).expect("v4-shaped prefix must decode")
            else {
                panic!("HelloAck payload decoded to another variant");
            };
            assert_eq!(run.prefilter_quantile, 0.25);
            assert!(run.store_url.is_empty());
            assert_eq!((run.autoscale_min, run.autoscale_max), (0, 0));

            // The v5 boundary keeps the url, defaults autoscale to off.
            let v5 = payload.len() - autoscale_tail_len(ty);
            let Msg::HelloAck { run, .. } =
                Msg::decode(ty, &payload[..v5]).expect("v5-shaped prefix must decode")
            else {
                panic!("HelloAck payload decoded to another variant");
            };
            assert_eq!(run.store_url, CORPUS_URL);
            assert_eq!((run.autoscale_min, run.autoscale_max), (0, 0));
        }
    }
}

#[test]
fn hostile_fidelity_tails_are_typed_errors() {
    let corpus = corpus();
    let task = corpus.iter().find(|m| matches!(m, Msg::Task { .. })).unwrap();
    let result = corpus.iter().find(|m| matches!(m, Msg::Result { .. })).unwrap();

    // Out-of-range rung discriminants in Task tails (rung byte sits 6 from
    // the end) and Result tails (last byte).
    for rung in [MAX_RUNGS as u8, 0x80, 0xFF] {
        let mut p = task.encode().unwrap();
        let n = p.len();
        p[n - 6] = rung;
        assert!(
            matches!(Msg::decode(0x03, &p), Err(WireError::Malformed(_))),
            "task rung {rung} must be rejected"
        );
        let mut p = result.encode().unwrap();
        let n = p.len();
        p[n - 1] = rung;
        assert!(
            matches!(Msg::decode(0x04, &p), Err(WireError::Malformed(_))),
            "result rung {rung} must be rejected"
        );
    }

    // Every out-of-range stop discriminant (codes 0–3 are the enum).
    for stop in 4..=u8::MAX {
        let mut p = result.encode().unwrap();
        let n = p.len();
        p[n - 2] = stop;
        assert!(
            matches!(Msg::decode(0x04, &p), Err(WireError::Malformed(_))),
            "stop discriminant {stop} must be rejected"
        );
    }

    // Bogus epochs flag in a Task tail.
    for flag in [2u8, 0xFF] {
        let mut p = task.encode().unwrap();
        let n = p.len();
        p[n - 5] = flag;
        assert!(matches!(Msg::decode(0x03, &p), Err(WireError::Malformed(_))));
    }

    // HelloAck tails smuggling NaN/out-of-range knobs. The store tail
    // (2 + CORPUS_URL.len() bytes) and the 8-byte autoscale tail sit after
    // the fidelity group.
    let ack = corpus.iter().find(|m| matches!(m, Msg::HelloAck { .. })).unwrap();
    let good = ack.encode().unwrap();
    let n = good.len();
    let t = 2 + CORPUS_URL.len() + 8;
    for bits in [f64::NAN.to_bits(), 1.0f64.to_bits(), (-0.5f64).to_bits()] {
        let mut p = good.clone();
        p[n - t - 20..n - t - 12].copy_from_slice(&bits.to_le_bytes());
        assert!(matches!(Msg::decode(0x02, &p), Err(WireError::Malformed(_))));
    }
    for bits in [f64::NAN.to_bits(), (-1e-9f64).to_bits()] {
        let mut p = good.clone();
        p[n - t - 8..n - t].copy_from_slice(&bits.to_le_bytes());
        assert!(matches!(Msg::decode(0x02, &p), Err(WireError::Malformed(_))));
    }
    // A store-url length prefix promising more bytes than the payload
    // holds: a partial v5 tail is malformed, never silently defaulted.
    // (The announced length swallows the autoscale tail and overruns.)
    for len in [CORPUS_URL.len() as u16 + 9, u16::MAX] {
        let mut p = good.clone();
        p[n - t..n - t + 2].copy_from_slice(&len.to_le_bytes());
        assert!(matches!(Msg::decode(0x02, &p), Err(WireError::Malformed(_))));
    }
}

#[test]
fn hostile_autoscale_tails_are_typed_errors() {
    let ack = corpus().into_iter().find(|m| matches!(m, Msg::HelloAck { .. })).unwrap();
    let good = ack.encode().unwrap();
    let n = good.len();

    // Hostile worker-count pairs in the v6 tail: an inverted range, a zero
    // min with a nonzero max, and bounds past the pool cap must all be
    // rejected — a worker must never accept a nonsense elastic envelope.
    for (min, max) in
        [(5u32, 2u32), (0, 1), (1, swt_dist::MAX_POOL_WORKERS as u32 + 1), (u32::MAX, u32::MAX)]
    {
        let mut p = good.clone();
        p[n - 8..n - 4].copy_from_slice(&min.to_le_bytes());
        p[n - 4..].copy_from_slice(&max.to_le_bytes());
        assert!(
            matches!(
                Msg::decode(0x02, &p),
                Err(WireError::Malformed("hostile autoscale worker counts"))
            ),
            "autoscale pair ({min}, {max}) must be rejected"
        );
    }

    // The full in-range envelope decodes, including the degenerate
    // single-worker pool and the cap itself.
    for (min, max) in [(1u32, 1u32), (1, swt_dist::MAX_POOL_WORKERS as u32), (0, 0)] {
        let mut p = good.clone();
        p[n - 8..n - 4].copy_from_slice(&min.to_le_bytes());
        p[n - 4..].copy_from_slice(&max.to_le_bytes());
        let Msg::HelloAck { run, .. } = Msg::decode(0x02, &p).expect("in-range pair must decode")
        else {
            panic!("HelloAck payload decoded to another variant");
        };
        assert_eq!((run.autoscale_min, run.autoscale_max), (min, max));
    }

    // A truncated tail (min present, max missing) is malformed — only the
    // exact v5 boundary is a valid prefix. Every other cut inside the tail
    // must also fail (the truncation sweep covers them; pin the worst one).
    let mut p = good;
    p.truncate(n - 4);
    assert!(matches!(Msg::decode(0x02, &p), Err(WireError::Malformed(_))));
}

#[test]
fn bit_flips_never_panic_and_often_fail_cleanly() {
    let mut rng = Rng::seed(0xF1A5);
    for msg in corpus() {
        let payload = msg.encode().expect("corpus must encode");
        if payload.is_empty() {
            continue; // Shutdown: nothing to corrupt
        }
        for _ in 0..256 {
            let mut mutated = payload.clone();
            let flips = 1 + rng.below(4);
            for _ in 0..flips {
                let byte = rng.below(mutated.len());
                let bit = rng.below(8);
                mutated[byte] ^= 1 << bit;
            }
            // A flip inside a value field may still decode (to a different
            // message); a flip inside structure must fail. Both are fine —
            // what's forbidden is a panic or an abort.
            match Msg::decode(msg.frame_type(), &mutated) {
                Ok(_) | Err(_) => {}
            }
        }
    }
}

#[test]
fn random_payloads_against_every_tag_never_panic() {
    let mut rng = Rng::seed(0xDEC0DE);
    for ty in 0x00..=0x20u8 {
        for round in 0..128usize {
            let len = rng.below(64) * (1 + round % 3);
            let payload: Vec<u8> = (0..len).map(|_| rng.next_u64() as u8).collect();
            match Msg::decode(ty, &payload) {
                Ok(_) | Err(_) => {}
            }
        }
    }
    // Tags outside the table are always UnknownType, even with an empty
    // payload.
    for ty in 0x00..=0xFFu8 {
        if !FRAME_TYPES.contains(&ty) {
            assert!(
                matches!(Msg::decode(ty, &[]), Err(WireError::UnknownType(t)) if t == ty),
                "tag {ty:#04x} must be rejected as unknown"
            );
        }
    }
}

#[test]
fn hostile_counts_cannot_force_large_allocations() {
    // A tiny payload claiming u32::MAX counters/histograms: the clamped
    // capacity plus bounds-checked reads must reject it without ballooning.
    for ty in [0x04u8, 0x09] {
        let mut bad = Vec::new();
        if ty == 0x04 {
            bad.extend_from_slice(&[0u8; 8 + 4 * 8 + 4 * 8 + 4]); // id + floats + ints + epochs
        }
        bad.extend_from_slice(&u32::MAX.to_le_bytes());
        assert!(Msg::decode(ty, &bad).is_err(), "tag {ty:#04x} accepted a hostile count");
    }
    // Same for a Task announcing more arch choices than the payload holds.
    let mut bad = Vec::new();
    bad.extend_from_slice(&1u64.to_le_bytes()); // id
    bad.push(0); // no parent
    bad.extend_from_slice(&0u64.to_le_bytes()); // parent raw
    bad.extend_from_slice(&u16::MAX.to_le_bytes()); // claims 65535 choices
    assert!(Msg::decode(0x03, &bad).is_err());
}

#[test]
fn hostile_telemetry_payloads_are_rejected_without_allocation() {
    // Header: seq + uptime + dropped, then empty span/gauge tables.
    let header = |out: &mut Vec<u8>| {
        out.extend_from_slice(&1u64.to_le_bytes());
        out.extend_from_slice(&2u64.to_le_bytes());
        out.extend_from_slice(&0u64.to_le_bytes());
        out.extend_from_slice(&0u32.to_le_bytes()); // spans
        out.extend_from_slice(&0u32.to_le_bytes()); // gauges
    };

    // An event batch claiming more than the cap: rejected outright, even
    // though the (length-capped) payload could never hold it anyway.
    let mut bad = Vec::new();
    header(&mut bad);
    bad.extend_from_slice(&0u32.to_le_bytes()); // names
    bad.extend_from_slice(&((MAX_TELEMETRY_EVENTS as u32) + 1).to_le_bytes());
    assert!(matches!(Msg::decode(0x0A, &bad), Err(WireError::Malformed(_))));

    // Same for the name table.
    let mut bad = Vec::new();
    header(&mut bad);
    bad.extend_from_slice(&((MAX_TELEMETRY_NAMES as u32) + 1).to_le_bytes());
    assert!(matches!(Msg::decode(0x0A, &bad), Err(WireError::Malformed(_))));

    // An event pointing past the name table, and one with an unknown kind:
    // both must be typed errors, not panics or silent acceptance.
    for (name_idx, kind) in [(5u16, 0u8), (0, 9)] {
        let mut bad = Vec::new();
        header(&mut bad);
        bad.extend_from_slice(&1u32.to_le_bytes()); // one name
        bad.extend_from_slice(&1u16.to_le_bytes());
        bad.push(b'x');
        bad.extend_from_slice(&1u32.to_le_bytes()); // one event
        bad.extend_from_slice(&name_idx.to_le_bytes());
        bad.push(kind);
        bad.extend_from_slice(&[0u8; 24]); // t_ns + dur_ns + delta
        assert!(
            matches!(Msg::decode(0x0A, &bad), Err(WireError::Malformed(_))),
            "name_idx={name_idx} kind={kind} must be rejected"
        );
    }
}

#[test]
fn frame_reader_rejects_oversized_and_truncated_streams() {
    // Oversized length prefix: rejected before any payload allocation.
    let mut header = Vec::new();
    header.extend_from_slice(&((MAX_FRAME_LEN as u32) + 1).to_le_bytes());
    header.push(0x03);
    let mut buf = Vec::new();
    assert!(matches!(
        read_frame(&mut IoCursor::new(&header), &mut buf),
        Err(WireError::FrameTooLarge(_))
    ));

    // A length prefix promising more payload than the stream delivers.
    let mut short = Vec::new();
    short.extend_from_slice(&100u32.to_le_bytes());
    short.push(0x05);
    short.extend_from_slice(&[0u8; 10]);
    assert!(matches!(read_frame(&mut IoCursor::new(&short), &mut buf), Err(WireError::Io(_))));

    // Every truncation of a valid framed stream is an Io error, and the
    // frame layer itself refuses to write an oversized payload.
    let msg = Msg::Ping { nonce: 7 };
    let payload = msg.encode().unwrap();
    let mut framed = Vec::new();
    write_frame(&mut framed, msg.frame_type(), &payload).unwrap();
    for cut in 0..framed.len() {
        assert!(read_frame(&mut IoCursor::new(&framed[..cut]), &mut buf).is_err());
    }
    let ty = read_frame(&mut IoCursor::new(&framed), &mut buf).unwrap();
    assert_eq!(Msg::decode(ty, &buf).unwrap(), msg);
    assert!(matches!(
        write_frame(&mut Vec::new(), 0x03, &vec![0u8; MAX_FRAME_LEN + 1]),
        Err(WireError::FrameTooLarge(_))
    ));
}

#[test]
fn random_frame_streams_never_panic_the_reader() {
    let mut rng = Rng::seed(0xFEED);
    let mut buf = Vec::new();
    for _ in 0..512 {
        let len = rng.below(128);
        let stream: Vec<u8> = (0..len).map(|_| rng.next_u64() as u8).collect();
        let mut cursor = IoCursor::new(&stream);
        // Drain the stream: each frame is either readable (then decodable
        // or a typed error) or the read itself errors; either way the loop
        // terminates without panicking.
        while let Ok(ty) = read_frame(&mut cursor, &mut buf) {
            let _ = Msg::decode(ty, &buf);
        }
    }
}
