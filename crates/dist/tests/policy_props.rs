//! Property tests for the autoscaling policy (this PR's headline harness):
//! seeded randomized pool-snapshot sequences plus scripted scenarios
//! (spike, drain, stale worker, oscillation bait), all wall-clock-free —
//! ticks are decision counts, so every failure reproduces from its seed.
//!
//! Invariants pinned here:
//! * **bounds** — a grow never provisions past `max_workers`, a shrink
//!   never cuts below `min_workers` (and only ever retires idle workers);
//! * **hysteresis/cooldown** — after any grow or shrink, the next
//!   `cooldown_ticks` decisions are holds, whatever the inputs do;
//! * **monotonicity** — queued work never produces a shrink;
//! * **determinism** — the same snapshot sequence yields the same decisions
//!   and a byte-for-byte identical decision log.

use swt_dist::{PolicyConfig, PoolSnapshot, ScaleDecision, ScalePolicy, MAX_POOL_WORKERS};
use swt_tensor::Rng;

/// Random-but-plausible snapshot: pool counts inside the policy envelope,
/// queue and EWMA over wide hostile ranges (including zeros).
fn random_snapshot(rng: &mut Rng, cfg: &PolicyConfig) -> PoolSnapshot {
    let live = 1 + rng.below(cfg.max_workers.max(2));
    let idle = rng.below(live + 1);
    let inflight = live - idle;
    PoolSnapshot {
        queue_depth: rng.below(12),
        inflight,
        live,
        idle,
        connecting: rng.below(3),
        results: rng.below(1000) as u64,
        ewma_secs: rng.below(5000) as f64 / 1000.0,
    }
}

fn policy(cfg: PolicyConfig) -> ScalePolicy {
    ScalePolicy::new(cfg).expect("test configs are valid")
}

#[test]
fn bounds_hold_over_randomized_sequences() {
    for seed in 0..20u64 {
        let cfg = PolicyConfig::bounded(1 + (seed as usize % 3), 4 + (seed as usize % 5));
        let mut p = policy(cfg.clone());
        let mut rng = Rng::seed(0xB0B + seed);
        for _ in 0..500 {
            let s = random_snapshot(&mut rng, &cfg);
            match p.decide_snapshot(&s) {
                ScaleDecision::Grow(n) => {
                    assert!(n > 0, "a grow of zero must be a hold");
                    assert!(
                        s.effective() + n <= cfg.max_workers,
                        "seed {seed}: grow {n} past max {} from effective {}",
                        cfg.max_workers,
                        s.effective()
                    );
                }
                ScaleDecision::Shrink(n) => {
                    assert!(n > 0, "a shrink of zero must be a hold");
                    assert!(
                        s.live - n >= cfg.min_workers,
                        "seed {seed}: shrink {n} below min {} from live {}",
                        cfg.min_workers,
                        s.live
                    );
                    assert!(n <= s.idle, "seed {seed}: shrink {n} exceeds idle {}", s.idle);
                }
                ScaleDecision::Hold => {}
            }
        }
    }
}

#[test]
fn cooldown_forces_holds_after_every_action() {
    for seed in 0..20u64 {
        let cooldown = 1 + (seed % 4);
        let cfg = PolicyConfig { cooldown_ticks: cooldown, ..PolicyConfig::bounded(1, 8) };
        let mut p = policy(cfg.clone());
        let mut rng = Rng::seed(0xC00 + seed);
        let mut quiet_until = 0u64; // tick until which only holds are legal
        for _ in 0..500 {
            let s = random_snapshot(&mut rng, &cfg);
            let d = p.decide_snapshot(&s);
            let tick = p.tick();
            if !matches!(d, ScaleDecision::Hold) {
                assert!(
                    tick > quiet_until,
                    "seed {seed}: {d} at tick {tick} inside the cooldown window \
                     (quiet until {quiet_until})"
                );
                quiet_until = tick + cooldown;
            }
        }
    }
}

#[test]
fn queued_work_never_yields_a_shrink() {
    // Monotonicity: the policy may disagree about growing, but work in the
    // queue can never argue for fewer workers.
    for seed in 0..20u64 {
        let cfg = PolicyConfig::bounded(1, 6);
        let mut p = policy(cfg.clone());
        let mut rng = Rng::seed(0x40B0 + seed);
        for _ in 0..500 {
            let mut s = random_snapshot(&mut rng, &cfg);
            s.queue_depth = 1 + rng.below(20);
            let d = p.decide_snapshot(&s);
            assert!(
                !matches!(d, ScaleDecision::Shrink(_)),
                "seed {seed}: shrink with {} tasks queued",
                s.queue_depth
            );
        }
    }
}

#[test]
fn identical_sequences_replay_byte_for_byte() {
    for seed in [3u64, 0xDEAD, 0xA5CA1E] {
        let cfg = PolicyConfig { target_wall_secs: Some(30.0), ..PolicyConfig::bounded(1, 8) };
        let run = |cfg: &PolicyConfig| {
            let mut p = policy(cfg.clone());
            let mut rng = Rng::seed(seed);
            let decisions: Vec<ScaleDecision> =
                (0..400).map(|_| p.decide_snapshot(&random_snapshot(&mut rng, cfg))).collect();
            (decisions, p.log_text(), p.tally())
        };
        let (da, la, ta) = run(&cfg);
        let (db, lb, tb) = run(&cfg);
        assert_eq!(da, db, "seed {seed:#x}: decisions diverged");
        assert_eq!(ta, tb, "seed {seed:#x}: tallies diverged");
        assert_eq!(la.as_bytes(), lb.as_bytes(), "seed {seed:#x}: decision log not byte-identical");
        assert!(!la.is_empty(), "decision log must record the run");
    }
}

/// Scripted scenario: a queue spike against a small pool must grow — once —
/// and then respect cooldown while the spawned capacity connects.
#[test]
fn spike_grows_once_then_waits_for_capacity() {
    let cfg =
        PolicyConfig { cooldown_ticks: 2, backlog_per_worker: 0.5, ..PolicyConfig::bounded(1, 4) };
    let mut p = policy(cfg);
    let calm = PoolSnapshot {
        queue_depth: 0,
        inflight: 1,
        live: 1,
        idle: 0,
        connecting: 0,
        results: 0,
        ewma_secs: 1.0,
    };
    assert_eq!(p.decide_snapshot(&calm), ScaleDecision::Hold);

    // Spike: 6 queued against 1 live worker.
    let spike = PoolSnapshot { queue_depth: 6, ..calm };
    let d = p.decide_snapshot(&spike);
    let ScaleDecision::Grow(n) = d else { panic!("spike must grow, got {d}") };
    assert!(n >= 1);

    // The spawned workers are connecting: still-spiking snapshots inside
    // the cooldown hold, and effective capacity suppresses a double-buy.
    let connecting = PoolSnapshot { connecting: n, ..spike };
    assert_eq!(p.decide_snapshot(&connecting), ScaleDecision::Hold, "cooldown tick 1");
    assert_eq!(p.decide_snapshot(&connecting), ScaleDecision::Hold, "cooldown tick 2");
}

/// Scripted scenario: a drained pool shrinks to the floor after the idle
/// patience, and stays there — repeated drain ticks never cut below min.
#[test]
fn drain_retires_to_the_floor_and_stops() {
    let cfg = PolicyConfig { cooldown_ticks: 1, idle_patience: 2, ..PolicyConfig::bounded(2, 6) };
    let mut p = policy(cfg);
    let mut live = 5usize;
    let mut retired_total = 0usize;
    for tick in 0..40 {
        let s = PoolSnapshot {
            queue_depth: 0,
            inflight: 0,
            live,
            idle: live,
            connecting: 0,
            results: 20,
            ewma_secs: 0.8,
        };
        match p.decide_snapshot(&s) {
            ScaleDecision::Shrink(n) => {
                live -= n;
                retired_total += n;
                assert!(live >= 2, "tick {tick}: shrank below the floor");
            }
            ScaleDecision::Grow(_) => panic!("tick {tick}: a drained pool must never grow"),
            ScaleDecision::Hold => {}
        }
    }
    assert_eq!(live, 2, "drain must settle exactly at min_workers");
    assert_eq!(retired_total, 3);
}

/// Scripted scenario: a stale worker — spawned capacity that never comes
/// online — must not trigger an unbounded buying spree: `connecting` counts
/// toward effective capacity, so the policy stops at the envelope.
#[test]
fn stale_connecting_worker_cannot_cause_a_buying_spree() {
    let cfg = PolicyConfig { cooldown_ticks: 0, ..PolicyConfig::bounded(1, 4) };
    let mut p = policy(cfg);
    let mut connecting = 0usize;
    for _ in 0..100 {
        let s = PoolSnapshot {
            queue_depth: 10,
            inflight: 1,
            live: 1,
            idle: 0,
            connecting,
            results: 0,
            ewma_secs: 2.0,
        };
        if let ScaleDecision::Grow(n) = p.decide_snapshot(&s) {
            connecting += n; // spawned, but (stale) never handshakes
        }
    }
    let (grows, _, _) = p.tally();
    // 1 live + the stale joiners may never exceed the max of 4.
    assert!(connecting < 4, "policy bought past max with stale joiners: {connecting}");
    assert!(grows <= 3, "policy must stop re-deciding once effective hits max, got {grows} grows");
}

/// Scripted scenario: oscillation bait — the queue flaps between just-above
/// and just-below the backlog threshold every tick. Cooldown must keep the
/// policy from flapping grow/shrink at the same cadence.
#[test]
fn oscillation_bait_cannot_flap_the_pool() {
    let cfg = PolicyConfig { cooldown_ticks: 3, idle_patience: 1, ..PolicyConfig::bounded(1, 6) };
    let mut p = policy(cfg);
    let mut actions_between_cooldowns = Vec::new();
    let mut last_action_tick = 0u64;
    for i in 0..200u64 {
        let s = if i % 2 == 0 {
            PoolSnapshot {
                queue_depth: 5,
                inflight: 2,
                live: 2,
                idle: 0,
                connecting: 0,
                results: i,
                ewma_secs: 1.0,
            }
        } else {
            PoolSnapshot {
                queue_depth: 0,
                inflight: 0,
                live: 2,
                idle: 2,
                connecting: 0,
                results: i,
                ewma_secs: 1.0,
            }
        };
        if !matches!(p.decide_snapshot(&s), ScaleDecision::Hold) {
            let tick = p.tick();
            actions_between_cooldowns.push(tick - last_action_tick);
            last_action_tick = tick;
        }
    }
    // Every pair of consecutive actions is separated by more than the
    // cooldown — the bait cannot extract a decision per flap.
    for (i, gap) in actions_between_cooldowns.iter().enumerate().skip(1) {
        assert!(*gap > 3, "actions {i} and {} only {gap} ticks apart", i - 1);
    }
    // And the bait cannot drive more actions than the cooldown admits.
    assert!(
        actions_between_cooldowns.len() <= 200 / 4 + 1,
        "{} actions in 200 baited ticks",
        actions_between_cooldowns.len()
    );
}

#[test]
fn config_envelope_is_validated() {
    assert!(ScalePolicy::new(PolicyConfig::bounded(0, 4)).is_err(), "zero min must be rejected");
    assert!(ScalePolicy::new(PolicyConfig::bounded(5, 4)).is_err(), "min > max must be rejected");
    assert!(
        ScalePolicy::new(PolicyConfig::bounded(1, MAX_POOL_WORKERS + 1)).is_err(),
        "max past the pool cap must be rejected"
    );
    assert!(ScalePolicy::new(PolicyConfig::bounded(1, MAX_POOL_WORKERS)).is_ok());
    let bad_target = PolicyConfig { target_wall_secs: Some(-1.0), ..PolicyConfig::default() };
    assert!(ScalePolicy::new(bad_target).is_err(), "negative wall target must be rejected");
    let bad_budget = PolicyConfig { cost_budget_secs: Some(f64::NAN), ..PolicyConfig::default() };
    assert!(ScalePolicy::new(bad_budget).is_err(), "NaN cost budget must be rejected");
}
