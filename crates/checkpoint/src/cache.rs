//! Byte-budgeted provider cache.
//!
//! Regularized evolution re-mutates a small elite set, so the same provider
//! checkpoints are read from the store over and over (Underwood et al.
//! observe exactly this evolution pattern in NAS traces). [`CachedStore`]
//! wraps any [`CheckpointStore`] and keeps hot checkpoints resident as
//! *encoded bytes plus their parsed index* — the two artifacts every
//! selective read needs — so a cache hit serves `load_index` without I/O and
//! `load_tensors` with nothing but the bulk byte→f32 conversion of the
//! requested payloads.
//!
//! The cache is sharded (id-hashed) so concurrent evaluator workers do not
//! serialise on one lock, and each shard evicts least-recently-used entries
//! once its slice of the byte budget fills. Writes go straight through to
//! the inner store and invalidate the cached entry; a per-shard generation
//! counter closes the fill/invalidate race, so a reader refilling the cache
//! concurrently with a save can never resurrect pre-save bytes.
//!
//! Observability: `ckpt.cache.hits` / `ckpt.cache.misses` /
//! `ckpt.cache.evictions` counters and the `ckpt.cache.resident_bytes`
//! gauge.

use crate::format::{decode, decode_tensors, parse_index};
use crate::index::CheckpointIndex;
use crate::store::{CheckpointStore, RawCheckpointStore};
use std::collections::HashMap;
use std::io;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use swt_tensor::Tensor;

const SHARDS: usize = 8;

struct CacheEntry {
    raw: Arc<Vec<u8>>,
    index: Arc<CheckpointIndex>,
    last_used: u64,
}

#[derive(Default)]
struct Shard {
    map: HashMap<String, CacheEntry>,
    bytes: u64,
    /// Bumped on every invalidation; fills racing an invalidation are
    /// discarded instead of inserting stale bytes.
    generation: u64,
}

/// A read-through, write-through cache over another checkpoint store.
pub struct CachedStore<S: CheckpointStore> {
    inner: S,
    shards: Vec<Mutex<Shard>>,
    shard_budget: u64,
    clock: AtomicU64,
    resident: AtomicU64,
}

impl<S: CheckpointStore> CachedStore<S> {
    /// Wrap `inner`, keeping at most `budget_bytes` of encoded checkpoints
    /// resident (split evenly across the shards). Entries larger than one
    /// shard's slice are served but never cached.
    pub fn new(inner: S, budget_bytes: u64) -> Self {
        CachedStore {
            inner,
            shards: (0..SHARDS).map(|_| Mutex::new(Shard::default())).collect(),
            shard_budget: budget_bytes / SHARDS as u64,
            clock: AtomicU64::new(0),
            resident: AtomicU64::new(0),
        }
    }

    /// The wrapped store.
    pub fn inner(&self) -> &S {
        &self.inner
    }

    /// Bytes currently resident across all shards.
    pub fn resident_bytes(&self) -> u64 {
        self.resident.load(Ordering::Relaxed)
    }

    fn shard(&self, id: &str) -> &Mutex<Shard> {
        &self.shards[crate::format::fnv1a(id.as_bytes()) as usize % SHARDS]
    }

    fn set_gauge(&self) {
        swt_obs::gauge!("ckpt.cache.resident_bytes")
            .set(self.resident.load(Ordering::Relaxed) as i64);
    }

    fn lookup(&self, id: &str) -> Option<(Arc<Vec<u8>>, Arc<CheckpointIndex>)> {
        let mut shard = self.shard(id).lock().unwrap();
        if let Some(entry) = shard.map.get_mut(id) {
            entry.last_used = self.clock.fetch_add(1, Ordering::Relaxed);
            swt_obs::counter!("ckpt.cache.hits").inc();
            Some((Arc::clone(&entry.raw), Arc::clone(&entry.index)))
        } else {
            swt_obs::counter!("ckpt.cache.misses").inc();
            None
        }
    }

    fn invalidate(&self, id: &str) {
        let mut shard = self.shard(id).lock().unwrap();
        shard.generation += 1;
        if let Some(entry) = shard.map.remove(id) {
            shard.bytes -= entry.raw.len() as u64;
            self.resident.fetch_sub(entry.raw.len() as u64, Ordering::Relaxed);
            self.set_gauge();
        }
    }

    /// Serve `id`'s encoded bytes *and* parsed index from the cache,
    /// filling from the inner store on a miss. This is the server-side
    /// range-read primitive: `swt-ckpt-server` answers `GetIndex` and
    /// `GetTensors` straight off the returned pair without re-parsing.
    pub fn raw_and_index(&self, id: &str) -> io::Result<(Arc<Vec<u8>>, Arc<CheckpointIndex>)> {
        self.fetch(id)
    }

    /// Serve `id` from the cache, filling from the inner store on a miss.
    fn fetch(&self, id: &str) -> io::Result<(Arc<Vec<u8>>, Arc<CheckpointIndex>)> {
        if let Some(hit) = self.lookup(id) {
            return Ok(hit);
        }
        // Record the shard generation *before* the inner read: if a save
        // invalidates while we read, the observed bytes may predate it and
        // must not enter the cache.
        let gen_before = self.shard(id).lock().unwrap().generation;
        let raw = self.inner.load_raw(id)?;
        let index = parse_index(&raw).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
        let raw = Arc::new(raw);
        let index = Arc::new(index);
        let len = raw.len() as u64;
        if len <= self.shard_budget {
            let mut shard = self.shard(id).lock().unwrap();
            if shard.generation == gen_before {
                let entry = CacheEntry {
                    raw: Arc::clone(&raw),
                    index: Arc::clone(&index),
                    last_used: self.clock.fetch_add(1, Ordering::Relaxed),
                };
                if let Some(old) = shard.map.insert(id.to_string(), entry) {
                    shard.bytes -= old.raw.len() as u64;
                    self.resident.fetch_sub(old.raw.len() as u64, Ordering::Relaxed);
                }
                shard.bytes += len;
                self.resident.fetch_add(len, Ordering::Relaxed);
                // Evict least-recently-used entries until this shard fits
                // its slice of the budget again.
                while shard.bytes > self.shard_budget {
                    let Some(victim) = shard
                        .map
                        .iter()
                        .filter(|(k, _)| k.as_str() != id)
                        .min_by_key(|(_, e)| e.last_used)
                        .map(|(k, _)| k.clone())
                    else {
                        break;
                    };
                    let evicted = shard.map.remove(&victim).unwrap();
                    shard.bytes -= evicted.raw.len() as u64;
                    self.resident.fetch_sub(evicted.raw.len() as u64, Ordering::Relaxed);
                    swt_obs::counter!("ckpt.cache.evictions").inc();
                }
                self.set_gauge();
            }
        }
        Ok((raw, index))
    }
}

fn format_err(e: crate::format::FormatError) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, e)
}

impl<S: RawCheckpointStore> RawCheckpointStore for CachedStore<S> {
    fn save_raw(&self, id: &str, bytes: &[u8]) -> io::Result<u64> {
        let n = self.inner.save_raw(id, bytes)?;
        self.invalidate(id);
        Ok(n)
    }
}

impl<S: CheckpointStore> CheckpointStore for CachedStore<S> {
    fn save(&self, id: &str, entries: &[(String, Tensor)]) -> io::Result<u64> {
        let bytes = self.inner.save(id, entries)?;
        self.invalidate(id);
        Ok(bytes)
    }

    fn load(&self, id: &str) -> io::Result<Vec<(String, Tensor)>> {
        let (raw, _) = self.fetch(id)?;
        decode(&raw).map_err(format_err)
    }

    fn load_raw(&self, id: &str) -> io::Result<Vec<u8>> {
        let (raw, _) = self.fetch(id)?;
        Ok((*raw).clone())
    }

    fn load_index(&self, id: &str) -> io::Result<CheckpointIndex> {
        let (_, index) = self.fetch(id)?;
        Ok((*index).clone())
    }

    fn load_tensors(&self, id: &str, names: &[String]) -> io::Result<Vec<(String, Tensor)>> {
        let (raw, index) = self.fetch(id)?;
        decode_tensors(&raw, &index, names).map_err(format_err)
    }

    fn exists(&self, id: &str) -> bool {
        self.shard(id).lock().unwrap().map.contains_key(id) || self.inner.exists(id)
    }

    fn size_bytes(&self, id: &str) -> Option<u64> {
        if let Some(entry) = self.shard(id).lock().unwrap().map.get(id) {
            return Some(entry.raw.len() as u64);
        }
        self.inner.size_bytes(id)
    }

    fn list(&self) -> Vec<String> {
        self.inner.list()
    }

    fn delete(&self, id: &str) -> bool {
        self.invalidate(id);
        self.inner.delete(id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::MemStore;
    use swt_tensor::Rng;

    fn entries(seed: u64) -> Vec<(String, Tensor)> {
        let mut rng = Rng::seed(seed);
        vec![
            ("a/kernel".into(), Tensor::rand_normal([16, 16], 0.0, 1.0, &mut rng)),
            ("a/bias".into(), Tensor::rand_normal([16], 0.0, 1.0, &mut rng)),
        ]
    }

    fn cached(budget: u64) -> CachedStore<MemStore> {
        CachedStore::new(MemStore::new(), budget)
    }

    #[test]
    fn hit_serves_identical_data() {
        let store = cached(1 << 20);
        store.save("c", &entries(1)).unwrap();
        let cold = store.load("c").unwrap();
        assert!(store.resident_bytes() > 0, "first load fills the cache");
        let warm = store.load("c").unwrap();
        assert_eq!(cold.len(), warm.len());
        for ((n1, t1), (n2, t2)) in cold.iter().zip(&warm) {
            assert_eq!(n1, n2);
            assert!(t1.approx_eq(t2, 0.0));
        }
        // Index and partial loads hit the same resident entry.
        assert_eq!(store.load_index("c").unwrap().len(), 2);
        let some = store.load_tensors("c", &["a/bias".to_string()]).unwrap();
        assert!(some[0].1.approx_eq(&cold[1].1, 0.0));
    }

    #[test]
    fn save_invalidates() {
        let store = cached(1 << 20);
        store.save("c", &entries(1)).unwrap();
        let before = store.load("c").unwrap();
        store.save("c", &entries(2)).unwrap();
        let after = store.load("c").unwrap();
        assert!(!before[0].1.approx_eq(&after[0].1, 0.0), "stale bytes served after save");
    }

    #[test]
    fn save_raw_invalidates_and_raw_and_index_serves_fresh_bytes() {
        let store = cached(1 << 20);
        store.save("c", &entries(1)).unwrap();
        let before = store.load("c").unwrap();
        let newer = crate::format::encode(&entries(2));
        store.save_raw("c", &newer).unwrap();
        let after = store.load("c").unwrap();
        assert!(!before[0].1.approx_eq(&after[0].1, 0.0), "stale bytes served after save_raw");
        let (raw, index) = store.raw_and_index("c").unwrap();
        assert_eq!(raw.len(), newer.len());
        assert_eq!(index.len(), 2);
    }

    #[test]
    fn delete_invalidates_and_removes() {
        let store = cached(1 << 20);
        store.save("c", &entries(1)).unwrap();
        store.load("c").unwrap();
        assert!(store.delete("c"));
        assert!(!store.exists("c"));
        assert!(store.load("c").is_err());
        assert_eq!(store.resident_bytes(), 0);
    }

    #[test]
    fn byte_budget_evicts_lru() {
        let one = encode_len_of(&entries(0));
        // Budget fits ~2 entries per shard; loading many distinct ids must
        // keep residency bounded and evict the least recently used.
        let store = cached(one * 2 * SHARDS as u64);
        for i in 0..64 {
            store.save(&format!("c{i}"), &entries(i)).unwrap();
            store.load(&format!("c{i}")).unwrap();
        }
        assert!(
            store.resident_bytes() <= one * 2 * SHARDS as u64,
            "resident {} exceeds budget",
            store.resident_bytes()
        );
        // The most recently loaded id is still resident: loading it again
        // must not change residency (a hit, not a refill).
        let resident = store.resident_bytes();
        store.load("c63").unwrap();
        assert_eq!(store.resident_bytes(), resident);
    }

    #[test]
    fn oversized_entries_are_served_but_not_cached() {
        let store = cached(8); // absurdly small budget
        store.save("big", &entries(3)).unwrap();
        let loaded = store.load("big").unwrap();
        assert_eq!(loaded.len(), 2);
        assert_eq!(store.resident_bytes(), 0);
    }

    #[test]
    fn concurrent_readers_and_writers_stay_consistent() {
        let store = Arc::new(cached(1 << 20));
        let mut handles = Vec::new();
        for t in 0..4u64 {
            let store = Arc::clone(&store);
            handles.push(std::thread::spawn(move || {
                for i in 0..25 {
                    let id = format!("c{}", (t * 25 + i) % 10);
                    store.save(&id, &entries(t * 100 + i)).unwrap();
                    let loaded = store.load(&id).unwrap();
                    assert_eq!(loaded.len(), 2);
                    store.load_index(&id).unwrap();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(store.list().len(), 10);
    }

    fn encode_len_of(entries: &[(String, Tensor)]) -> u64 {
        crate::format::encoded_len(entries)
    }
}
