//! Checkpoint table-of-contents: per-tensor metadata recoverable without
//! touching tensor payloads.
//!
//! A [`CheckpointIndex`] is what the WTC2 header (see [`crate::format`])
//! describes: every tensor's name, shape, payload offset and payload
//! checksum. It is the unit the selective transfer path operates on — the
//! NAS evaluator builds its `TransferPlan` from the provider's index alone
//! and then fetches only the matched payloads, so the dominant cost of
//! weight transfer (reading whole provider checkpoints, Section VIII-E)
//! shrinks to the bytes the plan actually moves.

use swt_tensor::Shape;

/// Metadata of one stored tensor, recoverable from the header alone.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TensorMeta {
    /// Full tensor name, e.g. `n3_conv2d/kernel`.
    pub name: String,
    /// Tensor dimensions.
    pub dims: Vec<usize>,
    /// Absolute byte offset of the f32 payload within the encoded buffer
    /// (0 for synthesized indices, which carry no layout).
    pub offset: u64,
    /// FNV-1a checksum of the payload bytes (0 when the format does not
    /// store per-tensor checksums: WTC1 and synthesized indices).
    pub checksum: u64,
}

impl TensorMeta {
    /// Number of elements.
    pub fn numel(&self) -> usize {
        self.dims.iter().product()
    }

    /// Payload size in bytes (f32 elements).
    pub fn size_bytes(&self) -> u64 {
        4 * self.numel() as u64
    }

    /// The tensor shape.
    pub fn shape(&self) -> Shape {
        Shape::new(self.dims.clone())
    }
}

/// A checkpoint's table of contents: enough to reconstruct the provider's
/// shape sequence, plan a transfer and verify integrity without reading any
/// tensor payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CheckpointIndex {
    /// Container version the index was read from: 1 (WTC1), 2 (WTC2), or
    /// 0 for an index synthesized from already-decoded tensors (no layout).
    version: u8,
    tensors: Vec<TensorMeta>,
    /// Total encoded size in bytes (0 when synthesized).
    encoded_len: u64,
}

impl CheckpointIndex {
    pub(crate) fn new(version: u8, tensors: Vec<TensorMeta>, encoded_len: u64) -> Self {
        CheckpointIndex { version, tensors, encoded_len }
    }

    /// An index carrying names and shapes only — the fallback produced by
    /// [`crate::CheckpointStore::load_index`]'s default implementation for
    /// stores without native header support.
    pub fn synthesized(shapes: impl IntoIterator<Item = (String, Vec<usize>)>) -> Self {
        let tensors = shapes
            .into_iter()
            .map(|(name, dims)| TensorMeta { name, dims, offset: 0, checksum: 0 })
            .collect();
        CheckpointIndex { version: 0, tensors, encoded_len: 0 }
    }

    /// Container version (0 = synthesized, 1 = WTC1, 2 = WTC2).
    pub fn version(&self) -> u8 {
        self.version
    }

    /// Per-tensor metadata in storage order.
    pub fn tensors(&self) -> &[TensorMeta] {
        &self.tensors
    }

    /// Number of tensors.
    pub fn len(&self) -> usize {
        self.tensors.len()
    }

    /// True for a tensor-free checkpoint.
    pub fn is_empty(&self) -> bool {
        self.tensors.is_empty()
    }

    /// Look up one tensor's metadata by full name.
    pub fn get(&self, name: &str) -> Option<&TensorMeta> {
        self.tensors.iter().find(|m| m.name == name)
    }

    /// Total encoded size in bytes (header + payloads + any trailer); 0 for
    /// synthesized indices.
    pub fn encoded_len(&self) -> u64 {
        self.encoded_len
    }

    /// Total payload bytes across all tensors.
    pub fn payload_bytes(&self) -> u64 {
        self.tensors.iter().map(TensorMeta::size_bytes).sum()
    }

    /// Flat `(full_name, shape)` pairs — the input `ShapeSeq::from_params`
    /// expects (the caller filters non-trainable state).
    pub fn param_shapes(&self) -> Vec<(String, Shape)> {
        self.tensors.iter().map(|m| (m.name.clone(), m.shape())).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn index() -> CheckpointIndex {
        CheckpointIndex::synthesized(vec![
            ("a/kernel".to_string(), vec![3, 4]),
            ("a/bias".to_string(), vec![4]),
            ("scalar".to_string(), vec![]),
        ])
    }

    #[test]
    fn meta_accessors() {
        let idx = index();
        assert_eq!(idx.len(), 3);
        assert_eq!(idx.version(), 0);
        let kernel = idx.get("a/kernel").unwrap();
        assert_eq!(kernel.numel(), 12);
        assert_eq!(kernel.size_bytes(), 48);
        assert_eq!(kernel.shape(), Shape::new([3, 4]));
        // Rank-0 tensors hold one element (product of an empty dims list).
        assert_eq!(idx.get("scalar").unwrap().numel(), 1);
        assert!(idx.get("missing").is_none());
        assert_eq!(idx.payload_bytes(), 48 + 16 + 4);
    }

    #[test]
    fn param_shapes_preserve_order() {
        let shapes = index().param_shapes();
        assert_eq!(shapes[0].0, "a/kernel");
        assert_eq!(shapes[1].1, Shape::new([4]));
    }
}
