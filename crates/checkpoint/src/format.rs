//! The "WTC" (weight-transfer checkpoint) binary formats.
//!
//! Two container versions share this module (all integers little-endian):
//!
//! **WTC2** (current, indexed) — a table-of-contents header followed by the
//! raw payloads, so a reader can recover every tensor's name/shape and
//! verify integrity *without touching payload bytes*:
//!
//! ```text
//! magic    [u8; 4] = b"WTC2"
//! toc_len  u32                     byte length of the TOC block below
//! count    u32
//! repeat count times:
//!   name_len u32, name [u8; name_len] (UTF-8)
//!   rank     u32, dims [u64; rank]
//!   offset   u64                   absolute payload offset in the buffer
//!   checksum u64                   FNV-1a over the payload bytes
//! toc_crc  u64                     FNV-1a over everything before it
//! payloads [f32; ...]              concatenated in TOC order
//! ```
//!
//! Payload offsets are redundant with the shape data; the decoder verifies
//! they match the computed layout, so a corrupted header cannot alias two
//! tensors onto one payload.
//!
//! **WTC1** (legacy, decode-only) interleaves each tensor's header with its
//! data and protects the whole file with one trailing checksum — reading
//! *anything* requires scanning *everything*. [`decode`] accepts both
//! versions; [`encode`] writes WTC2. [`encode_v1`] is kept for
//! compatibility round-trip tests against archived checkpoints.
//!
//! The format is the role HDF5 plays in the paper: a portable container of
//! named, shaped weight tensors. Checksums catch truncation and bit rot —
//! important because NAS reads thousands of provider checkpoints.

use crate::index::{CheckpointIndex, TensorMeta};
use std::fmt;
use std::io::{self, Write};
use swt_tensor::{with_thread_workspace, Tensor, Workspace};

const MAGIC_V1: &[u8; 4] = b"WTC1";
const MAGIC_V2: &[u8; 4] = b"WTC2";

/// Decoding failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FormatError {
    /// Wrong magic bytes — not a WTC file.
    BadMagic,
    /// The buffer ended before the declared content.
    Truncated,
    /// A tensor name was not valid UTF-8.
    BadName,
    /// Checksum mismatch: the payload was corrupted.
    Corrupt,
    /// Declared sizes overflow addressable memory.
    Oversized,
}

impl fmt::Display for FormatError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FormatError::BadMagic => write!(f, "not a WTC checkpoint (bad magic)"),
            FormatError::Truncated => write!(f, "checkpoint truncated"),
            FormatError::BadName => write!(f, "tensor name is not valid UTF-8"),
            FormatError::Corrupt => write!(f, "checksum mismatch (corrupted checkpoint)"),
            FormatError::Oversized => write!(f, "declared tensor size is implausibly large"),
        }
    }
}

impl std::error::Error for FormatError {}

pub(crate) fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf29ce484222325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x100000001b3);
    }
    hash
}

// --- bulk (de)serialisation -------------------------------------------------
//
// The hot loops convert whole slices at once instead of pushing 4 bytes per
// element through `Vec::extend_from_slice`: the destination is sized up
// front and filled through `chunks_exact`, which the compiler lowers to
// straight block copies on little-endian targets (`to_le_bytes` /
// `from_le_bytes` are free there).

/// Append `src` to `out` as little-endian f32 bytes.
fn f32s_to_le_bytes(src: &[f32], out: &mut Vec<u8>) {
    let start = out.len();
    out.resize(start + 4 * src.len(), 0);
    for (chunk, &v) in out[start..].chunks_exact_mut(4).zip(src) {
        chunk.copy_from_slice(&v.to_le_bytes());
    }
}

/// Fill `dst` from little-endian f32 bytes. `src.len()` must be
/// `4 * dst.len()`.
fn le_bytes_to_f32s(src: &[u8], dst: &mut [f32]) {
    debug_assert_eq!(src.len(), 4 * dst.len());
    for (v, chunk) in dst.iter_mut().zip(src.chunks_exact(4)) {
        *v = f32::from_le_bytes(chunk.try_into().unwrap());
    }
}

/// FNV-1a over the little-endian byte image of an f32 slice, without
/// materialising it.
fn fnv1a_f32s(data: &[f32]) -> u64 {
    let mut hash: u64 = 0xcbf29ce484222325;
    for v in data {
        for b in v.to_le_bytes() {
            hash ^= u64::from(b);
            hash = hash.wrapping_mul(0x100000001b3);
        }
    }
    hash
}

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], FormatError> {
        if self.pos + n > self.buf.len() {
            return Err(FormatError::Truncated);
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u32(&mut self) -> Result<u32, FormatError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, FormatError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// One `name_len/name/rank/dims` tensor descriptor (shared by both
    /// container versions).
    fn descriptor(&mut self) -> Result<(String, Vec<usize>, usize), FormatError> {
        let name_len = self.u32()? as usize;
        let name = std::str::from_utf8(self.take(name_len)?)
            .map_err(|_| FormatError::BadName)?
            .to_string();
        let rank = self.u32()? as usize;
        let mut raw_dims = Vec::with_capacity(rank.min(16));
        for _ in 0..rank {
            raw_dims.push(self.u64()?);
        }
        let (dims, numel) = checked_dims(&raw_dims)?;
        Ok((name, dims, numel))
    }
}

/// Per-tensor sanity cap: no single tensor in this repository is remotely
/// close to 1 GiB; a declared size beyond that indicates corruption.
const MAX_TENSOR_BYTES: u64 = 1 << 30;

/// Validate declared dimensions with one overflow-checked accumulator (the
/// same value gates the size cap *and* becomes the element count, so a
/// crafted header cannot pass the cap in `u64` and then overflow a 32-bit
/// `usize` product).
fn checked_dims(raw: &[u64]) -> Result<(Vec<usize>, usize), FormatError> {
    let mut numel: u64 = 1;
    for &d in raw {
        // `max(1)` keeps zero dims from masking an overflowing neighbour.
        numel = numel.checked_mul(d.max(1)).ok_or(FormatError::Oversized)?;
    }
    if numel.saturating_mul(4) > MAX_TENSOR_BYTES {
        return Err(FormatError::Oversized);
    }
    let numel = if raw.contains(&0) { 0 } else { numel as usize };
    let dims = raw
        .iter()
        .map(|&d| usize::try_from(d).map_err(|_| FormatError::Oversized))
        .collect::<Result<Vec<usize>, _>>()?;
    Ok((dims, numel))
}

// --- encoding ---------------------------------------------------------------

/// Exact encoded size of a WTC2 checkpoint, computed without encoding.
/// `AsyncStore` uses this for Fig. 11 byte accounting without serialising
/// twice.
pub fn encoded_len(entries: &[(String, Tensor)]) -> u64 {
    let toc: u64 = 4 + entries
        .iter()
        .map(|(n, t)| 24 + n.len() as u64 + 8 * t.shape().rank() as u64)
        .sum::<u64>();
    8 + toc + 8 + entries.iter().map(|(_, t)| 4 * t.numel() as u64).sum::<u64>()
}

/// Serialise named tensors into a WTC2 buffer.
///
/// ```
/// use swt_checkpoint::{encode, decode};
/// use swt_tensor::Tensor;
/// let entries = vec![("layer/kernel".to_string(), Tensor::ones([2, 3]))];
/// let decoded = decode(&encode(&entries)).unwrap();
/// assert_eq!(decoded[0].0, "layer/kernel");
/// assert!(decoded[0].1.approx_eq(&entries[0].1, 0.0));
/// ```
pub fn encode(entries: &[(String, Tensor)]) -> Vec<u8> {
    let mut buf = Vec::with_capacity(encoded_len(entries) as usize);
    encode_to(entries, &mut buf).expect("writing to a Vec cannot fail");
    buf
}

/// Stream a WTC2 checkpoint into `w`, returning the bytes written. The
/// header is materialised (it is small); payloads are written straight from
/// the tensors, so saving never allocates a full copy of the checkpoint.
pub fn encode_to<W: Write>(entries: &[(String, Tensor)], w: &mut W) -> io::Result<u64> {
    let toc_len: usize =
        4 + entries.iter().map(|(n, t)| 24 + n.len() + 8 * t.shape().rank()).sum::<usize>();
    let mut header = Vec::with_capacity(8 + toc_len + 8);
    header.extend_from_slice(MAGIC_V2);
    header.extend_from_slice(&(toc_len as u32).to_le_bytes());
    header.extend_from_slice(&(entries.len() as u32).to_le_bytes());
    let mut offset = (8 + toc_len + 8) as u64;
    for (name, tensor) in entries {
        header.extend_from_slice(&(name.len() as u32).to_le_bytes());
        header.extend_from_slice(name.as_bytes());
        header.extend_from_slice(&(tensor.shape().rank() as u32).to_le_bytes());
        for &d in tensor.shape().dims() {
            header.extend_from_slice(&(d as u64).to_le_bytes());
        }
        header.extend_from_slice(&offset.to_le_bytes());
        header.extend_from_slice(&fnv1a_f32s(tensor.data()).to_le_bytes());
        offset += 4 * tensor.numel() as u64;
    }
    debug_assert_eq!(header.len(), 8 + toc_len);
    let crc = fnv1a(&header);
    header.extend_from_slice(&crc.to_le_bytes());
    w.write_all(&header)?;
    let mut scratch = Vec::new();
    for (_, tensor) in entries {
        scratch.clear();
        f32s_to_le_bytes(tensor.data(), &mut scratch);
        w.write_all(&scratch)?;
    }
    Ok(offset)
}

/// Serialise into the legacy WTC1 layout. Kept so compatibility round-trip
/// tests can prove [`decode`] still reads pre-index checkpoints.
pub fn encode_v1(entries: &[(String, Tensor)]) -> Vec<u8> {
    let payload: usize =
        entries.iter().map(|(n, t)| 4 + n.len() + 4 + 8 * t.shape().rank() + 4 * t.numel()).sum();
    let mut buf = Vec::with_capacity(4 + 4 + payload + 8);
    buf.extend_from_slice(MAGIC_V1);
    buf.extend_from_slice(&(entries.len() as u32).to_le_bytes());
    for (name, tensor) in entries {
        buf.extend_from_slice(&(name.len() as u32).to_le_bytes());
        buf.extend_from_slice(name.as_bytes());
        buf.extend_from_slice(&(tensor.shape().rank() as u32).to_le_bytes());
        for &d in tensor.shape().dims() {
            buf.extend_from_slice(&(d as u64).to_le_bytes());
        }
        f32s_to_le_bytes(tensor.data(), &mut buf);
    }
    let checksum = fnv1a(&buf);
    buf.extend_from_slice(&checksum.to_le_bytes());
    buf
}

// --- index parsing ----------------------------------------------------------

/// Parse a checkpoint's table of contents.
///
/// For WTC2, `buf` only needs to hold the header (magic through `toc_crc`) —
/// this is what lets [`crate::DirStore`] index a checkpoint by reading a few
/// hundred bytes of a multi-megabyte file. For WTC1 the layout interleaves
/// headers with data, so the full buffer is required (and its trailing
/// checksum is verified).
pub fn parse_index(buf: &[u8]) -> Result<CheckpointIndex, FormatError> {
    if buf.len() < 4 {
        return Err(FormatError::Truncated);
    }
    match &buf[..4] {
        m if m == MAGIC_V2 => parse_index_v2(buf),
        m if m == MAGIC_V1 => parse_index_v1(buf),
        _ => Err(FormatError::BadMagic),
    }
}

fn parse_index_v2(buf: &[u8]) -> Result<CheckpointIndex, FormatError> {
    if buf.len() < 8 {
        return Err(FormatError::Truncated);
    }
    let toc_len = u32::from_le_bytes(buf[4..8].try_into().unwrap()) as usize;
    let header_end = 8 + toc_len;
    if buf.len() < header_end + 8 {
        return Err(FormatError::Truncated);
    }
    let declared = u64::from_le_bytes(buf[header_end..header_end + 8].try_into().unwrap());
    if fnv1a(&buf[..header_end]) != declared {
        return Err(FormatError::Corrupt);
    }
    let mut r = Reader { buf: &buf[..header_end], pos: 8 };
    let count = r.u32()? as usize;
    // Each entry occupies at least 24 TOC bytes; a larger count is a lie.
    if count > toc_len / 24 {
        return Err(FormatError::Corrupt);
    }
    let mut tensors = Vec::with_capacity(count);
    let mut expected_offset = (header_end + 8) as u64;
    for _ in 0..count {
        let (name, dims, numel) = r.descriptor()?;
        let offset = r.u64()?;
        let checksum = r.u64()?;
        // Offsets are implied by the shapes; a mismatch means the header
        // was tampered with (e.g. two entries aliasing one payload).
        if offset != expected_offset {
            return Err(FormatError::Corrupt);
        }
        expected_offset += 4 * numel as u64;
        tensors.push(TensorMeta { name, dims, offset, checksum });
    }
    if r.pos != header_end {
        return Err(FormatError::Corrupt);
    }
    Ok(CheckpointIndex::new(2, tensors, expected_offset))
}

fn parse_index_v1(buf: &[u8]) -> Result<CheckpointIndex, FormatError> {
    if buf.len() < 4 + 4 + 8 {
        return Err(FormatError::Truncated);
    }
    let (body, tail) = buf.split_at(buf.len() - 8);
    let declared = u64::from_le_bytes(tail.try_into().unwrap());
    if fnv1a(body) != declared {
        return Err(FormatError::Corrupt);
    }
    let mut r = Reader { buf: body, pos: 4 };
    let count = r.u32()? as usize;
    let mut tensors = Vec::with_capacity(count.min(4096));
    for _ in 0..count {
        let (name, dims, numel) = r.descriptor()?;
        let offset = r.pos as u64;
        r.take(4 * numel)?; // skip the payload, bounds-checked
        tensors.push(TensorMeta { name, dims, offset, checksum: 0 });
    }
    if r.pos != body.len() {
        return Err(FormatError::Corrupt);
    }
    Ok(CheckpointIndex::new(1, tensors, buf.len() as u64))
}

// --- decoding ---------------------------------------------------------------

/// Convert one tensor's raw payload bytes (already isolated, e.g. by a
/// seeked file read or a network range response) into a tensor, verifying
/// the per-tensor checksum when the container records one. The f32 buffer
/// comes from `ws`, so steady-state decoding reuses storage instead of
/// allocating. Public because the remote store's client reassembles
/// tensors from `GetTensors` range payloads with exactly this routine.
pub fn tensor_from_payload(
    meta: &TensorMeta,
    raw: &[u8],
    version: u8,
    ws: &mut Workspace,
) -> Result<Tensor, FormatError> {
    let numel = meta.numel();
    if raw.len() != 4 * numel {
        return Err(FormatError::Truncated);
    }
    if version == 2 && fnv1a(raw) != meta.checksum {
        return Err(FormatError::Corrupt);
    }
    let mut data = ws.take(numel);
    le_bytes_to_f32s(raw, &mut data);
    Ok(Tensor::from_vec(meta.dims.clone(), data))
}

fn extract(
    buf: &[u8],
    index: &CheckpointIndex,
    meta: &TensorMeta,
    ws: &mut Workspace,
) -> Result<Tensor, FormatError> {
    let start = usize::try_from(meta.offset).map_err(|_| FormatError::Oversized)?;
    let len = 4 * meta.numel();
    if start.checked_add(len).is_none_or(|end| end > buf.len()) {
        return Err(FormatError::Truncated);
    }
    tensor_from_payload(meta, &buf[start..start + len], index.version(), ws)
}

/// Deserialise a full WTC buffer (either container version).
pub fn decode(buf: &[u8]) -> Result<Vec<(String, Tensor)>, FormatError> {
    let index = parse_index(buf)?;
    if (buf.len() as u64) < index.encoded_len() {
        return Err(FormatError::Truncated);
    }
    if (buf.len() as u64) > index.encoded_len() {
        return Err(FormatError::Corrupt);
    }
    with_thread_workspace(|ws| {
        index.tensors().iter().map(|m| Ok((m.name.clone(), extract(buf, &index, m, ws)?))).collect()
    })
}

/// Deserialise only the named tensors from an encoded buffer, using a
/// previously parsed index. Names absent from the checkpoint are silently
/// omitted (mirroring `CheckpointStore::load_tensors`); payload bytes of
/// unrequested tensors are never touched.
pub fn decode_tensors(
    buf: &[u8],
    index: &CheckpointIndex,
    names: &[String],
) -> Result<Vec<(String, Tensor)>, FormatError> {
    let want: std::collections::HashSet<&str> = names.iter().map(String::as_str).collect();
    with_thread_workspace(|ws| {
        index
            .tensors()
            .iter()
            .filter(|m| want.contains(m.name.as_str()))
            .map(|m| Ok((m.name.clone(), extract(buf, index, m, ws)?)))
            .collect()
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use swt_tensor::Rng;

    fn sample_entries() -> Vec<(String, Tensor)> {
        let mut rng = Rng::seed(1);
        vec![
            ("n1_conv2d/kernel".into(), Tensor::rand_normal([3, 3, 1, 4], 0.0, 1.0, &mut rng)),
            ("n1_conv2d/bias".into(), Tensor::zeros([4])),
            ("n5_dense/kernel".into(), Tensor::rand_normal([36, 10], 0.0, 1.0, &mut rng)),
            ("scalarish".into(), Tensor::from_vec([1], vec![42.0])),
        ]
    }

    fn assert_same(a: &[(String, Tensor)], b: &[(String, Tensor)]) {
        assert_eq!(a.len(), b.len());
        for ((n1, t1), (n2, t2)) in a.iter().zip(b) {
            assert_eq!(n1, n2);
            assert_eq!(t1.shape(), t2.shape());
            assert!(t1.approx_eq(t2, 0.0));
        }
    }

    #[test]
    fn round_trip_preserves_everything() {
        let entries = sample_entries();
        assert_same(&entries, &decode(&encode(&entries)).unwrap());
    }

    #[test]
    fn wtc1_compat_round_trip() {
        // Archived WTC1 checkpoints must stay readable by the v2 decoder.
        let entries = sample_entries();
        assert_same(&entries, &decode(&encode_v1(&entries)).unwrap());
    }

    #[test]
    fn encoded_len_is_exact() {
        for entries in [sample_entries(), Vec::new()] {
            assert_eq!(encode(&entries).len() as u64, encoded_len(&entries));
        }
    }

    #[test]
    fn empty_checkpoint_round_trips() {
        let decoded = decode(&encode(&[])).unwrap();
        assert!(decoded.is_empty());
        assert!(decode(&encode_v1(&[])).unwrap().is_empty());
    }

    #[test]
    fn bad_magic_detected() {
        let mut buf = encode(&sample_entries());
        buf[0] = b'X';
        assert_eq!(decode(&buf).unwrap_err(), FormatError::BadMagic);
    }

    #[test]
    fn truncation_detected_in_both_versions() {
        for buf in [encode(&sample_entries()), encode_v1(&sample_entries())] {
            // Any prefix must fail (checksum or truncation, never panic).
            for cut in [0, 3, 10, buf.len() / 2, buf.len() - 1] {
                assert!(decode(&buf[..cut]).is_err(), "cut at {cut} accepted");
            }
            let mut extended = buf.clone();
            extended.push(0);
            assert!(decode(&extended).is_err(), "trailing junk accepted");
        }
    }

    #[test]
    fn bit_flip_detected_everywhere() {
        let clean = encode(&sample_entries());
        // Flip one bit at a spread of positions covering the header (TOC),
        // the TOC checksum and several payload bytes: every flip must be
        // caught by either the header CRC or a per-tensor checksum.
        for pos in [5, 9, 20, clean.len() / 2, clean.len() - 1] {
            let mut buf = clean.clone();
            buf[pos] ^= 0x40;
            assert!(decode(&buf).is_err(), "flip at {pos} accepted");
        }
    }

    #[test]
    fn index_reads_from_header_prefix_alone() {
        let entries = sample_entries();
        let buf = encode(&entries);
        let full = parse_index(&buf).unwrap();
        assert_eq!(full.version(), 2);
        assert_eq!(full.len(), entries.len());
        assert_eq!(full.encoded_len(), buf.len() as u64);
        // The header alone (no payload bytes at all) yields the same index.
        let header_len = (buf.len() as u64 - full.payload_bytes()) as usize;
        let from_prefix = parse_index(&buf[..header_len]).unwrap();
        assert_eq!(full, from_prefix);
        for (meta, (name, tensor)) in full.tensors().iter().zip(&entries) {
            assert_eq!(&meta.name, name);
            assert_eq!(meta.shape(), *tensor.shape());
            assert!(meta.offset >= header_len as u64);
        }
    }

    #[test]
    fn wtc1_index_recovers_names_and_shapes() {
        let entries = sample_entries();
        let index = parse_index(&encode_v1(&entries)).unwrap();
        assert_eq!(index.version(), 1);
        let shapes = index.param_shapes();
        assert_eq!(shapes.len(), entries.len());
        for ((name, shape), (n, t)) in shapes.iter().zip(&entries) {
            assert_eq!(name, n);
            assert_eq!(shape, t.shape());
        }
    }

    #[test]
    fn partial_decode_touches_only_requested_tensors() {
        let entries = sample_entries();
        let buf = encode(&entries);
        let index = parse_index(&buf).unwrap();
        let names = vec!["n5_dense/kernel".to_string(), "missing".to_string()];
        let got = decode_tensors(&buf, &index, &names).unwrap();
        assert_eq!(got.len(), 1, "missing names are omitted, not errors");
        assert_eq!(got[0].0, "n5_dense/kernel");
        assert!(got[0].1.approx_eq(&entries[2].1, 0.0));
        // Corrupt an *unrequested* payload: the partial read must not care.
        let mut dirty = buf.clone();
        let first = index.get("n1_conv2d/kernel").unwrap();
        dirty[first.offset as usize] ^= 0xFF;
        assert!(decode_tensors(&dirty, &index, &names).is_ok());
        // ... but a corrupt *requested* payload is caught.
        let dense = index.get("n5_dense/kernel").unwrap();
        let mut dirty = buf;
        dirty[dense.offset as usize] ^= 0xFF;
        assert_eq!(decode_tensors(&dirty, &index, &names).unwrap_err(), FormatError::Corrupt);
    }

    #[test]
    fn oversized_dims_rejected_without_overflow() {
        // A crafted header declaring astronomically large dims must yield
        // Oversized via the checked accumulator, not overflow (the old
        // decoder recomputed numel unchecked as usize).
        for dims in [vec![u64::MAX, u64::MAX], vec![u64::MAX], vec![1 << 40, 1 << 40]] {
            let mut buf = Vec::new();
            buf.extend_from_slice(MAGIC_V1);
            buf.extend_from_slice(&1u32.to_le_bytes());
            buf.extend_from_slice(&1u32.to_le_bytes());
            buf.push(b'x');
            buf.extend_from_slice(&(dims.len() as u32).to_le_bytes());
            for d in &dims {
                buf.extend_from_slice(&d.to_le_bytes());
            }
            let checksum = fnv1a(&buf);
            buf.extend_from_slice(&checksum.to_le_bytes());
            assert_eq!(decode(&buf).unwrap_err(), FormatError::Oversized);
        }
    }

    #[test]
    fn size_matches_f32_payload_plus_small_overhead() {
        // Fig. 11 reads checkpoint sizes; they must track parameter bytes.
        // WTC2 adds 24 TOC bytes per tensor over WTC1, still negligible
        // next to any real layer's payload.
        let entries = sample_entries();
        let payload: usize = entries.iter().map(|(_, t)| t.numel() * 4).sum();
        let buf = encode(&entries);
        assert!(buf.len() > payload);
        assert!(buf.len() < payload + 384, "overhead too large: {}", buf.len() - payload);
    }
}
