//! The "WTC" (weight-transfer checkpoint) binary format.
//!
//! Layout (all integers little-endian):
//!
//! ```text
//! magic   [u8; 4] = b"WTC1"
//! count   u32                      number of tensors
//! repeat count times:
//!   name_len u32, name [u8; name_len] (UTF-8)
//!   rank     u32, dims [u64; rank]
//!   data     [f32; prod(dims)]
//! checksum u64                     FNV-1a over everything before it
//! ```
//!
//! The format is the role HDF5 plays in the paper: a portable container of
//! named, shaped weight tensors. A trailing checksum catches truncation and
//! bit rot — important because NAS reads thousands of provider checkpoints.

use std::fmt;
use swt_tensor::Tensor;

const MAGIC: &[u8; 4] = b"WTC1";

/// Decoding failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FormatError {
    /// Wrong magic bytes — not a WTC file.
    BadMagic,
    /// The buffer ended before the declared content.
    Truncated,
    /// A tensor name was not valid UTF-8.
    BadName,
    /// Checksum mismatch: the payload was corrupted.
    Corrupt,
    /// Declared sizes overflow addressable memory.
    Oversized,
}

impl fmt::Display for FormatError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FormatError::BadMagic => write!(f, "not a WTC checkpoint (bad magic)"),
            FormatError::Truncated => write!(f, "checkpoint truncated"),
            FormatError::BadName => write!(f, "tensor name is not valid UTF-8"),
            FormatError::Corrupt => write!(f, "checksum mismatch (corrupted checkpoint)"),
            FormatError::Oversized => write!(f, "declared tensor size is implausibly large"),
        }
    }
}

impl std::error::Error for FormatError {}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf29ce484222325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x100000001b3);
    }
    hash
}

/// Serialise named tensors into a WTC buffer.
///
/// ```
/// use swt_checkpoint::{encode, decode};
/// use swt_tensor::Tensor;
/// let entries = vec![("layer/kernel".to_string(), Tensor::ones([2, 3]))];
/// let decoded = decode(&encode(&entries)).unwrap();
/// assert_eq!(decoded[0].0, "layer/kernel");
/// assert!(decoded[0].1.approx_eq(&entries[0].1, 0.0));
/// ```
pub fn encode(entries: &[(String, Tensor)]) -> Vec<u8> {
    let payload: usize =
        entries.iter().map(|(n, t)| 4 + n.len() + 4 + 8 * t.shape().rank() + 4 * t.numel()).sum();
    let mut buf = Vec::with_capacity(4 + 4 + payload + 8);
    buf.extend_from_slice(MAGIC);
    buf.extend_from_slice(&(entries.len() as u32).to_le_bytes());
    for (name, tensor) in entries {
        buf.extend_from_slice(&(name.len() as u32).to_le_bytes());
        buf.extend_from_slice(name.as_bytes());
        buf.extend_from_slice(&(tensor.shape().rank() as u32).to_le_bytes());
        for &d in tensor.shape().dims() {
            buf.extend_from_slice(&(d as u64).to_le_bytes());
        }
        for &v in tensor.data() {
            buf.extend_from_slice(&v.to_le_bytes());
        }
    }
    let checksum = fnv1a(&buf);
    buf.extend_from_slice(&checksum.to_le_bytes());
    buf
}

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], FormatError> {
        if self.pos + n > self.buf.len() {
            return Err(FormatError::Truncated);
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u32(&mut self) -> Result<u32, FormatError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, FormatError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }
}

/// Per-tensor sanity cap: no single tensor in this repository is remotely
/// close to 1 GiB; a declared size beyond that indicates corruption.
const MAX_TENSOR_BYTES: u64 = 1 << 30;

/// Deserialise a WTC buffer.
pub fn decode(buf: &[u8]) -> Result<Vec<(String, Tensor)>, FormatError> {
    if buf.len() < 4 + 4 + 8 {
        return Err(FormatError::Truncated);
    }
    if &buf[0..4] != MAGIC {
        return Err(FormatError::BadMagic);
    }
    let (body, tail) = buf.split_at(buf.len() - 8);
    let declared = u64::from_le_bytes(tail.try_into().unwrap());
    if fnv1a(body) != declared {
        return Err(FormatError::Corrupt);
    }
    let mut r = Reader { buf: body, pos: 4 };
    let count = r.u32()? as usize;
    let mut entries = Vec::with_capacity(count);
    for _ in 0..count {
        let name_len = r.u32()? as usize;
        let name =
            std::str::from_utf8(r.take(name_len)?).map_err(|_| FormatError::BadName)?.to_string();
        let rank = r.u32()? as usize;
        let mut dims = Vec::with_capacity(rank);
        let mut numel: u64 = 1;
        for _ in 0..rank {
            let d = r.u64()?;
            numel = numel.saturating_mul(d.max(1));
            dims.push(d as usize);
        }
        if numel * 4 > MAX_TENSOR_BYTES {
            return Err(FormatError::Oversized);
        }
        let numel = dims.iter().product::<usize>();
        let raw = r.take(numel * 4)?;
        let data: Vec<f32> =
            raw.chunks_exact(4).map(|c| f32::from_le_bytes(c.try_into().unwrap())).collect();
        entries.push((name, Tensor::from_vec(dims, data)));
    }
    if r.pos != body.len() {
        return Err(FormatError::Corrupt);
    }
    Ok(entries)
}

#[cfg(test)]
mod tests {
    use super::*;
    use swt_tensor::Rng;

    fn sample_entries() -> Vec<(String, Tensor)> {
        let mut rng = Rng::seed(1);
        vec![
            ("n1_conv2d/kernel".into(), Tensor::rand_normal([3, 3, 1, 4], 0.0, 1.0, &mut rng)),
            ("n1_conv2d/bias".into(), Tensor::zeros([4])),
            ("n5_dense/kernel".into(), Tensor::rand_normal([36, 10], 0.0, 1.0, &mut rng)),
            ("scalarish".into(), Tensor::from_vec([1], vec![42.0])),
        ]
    }

    #[test]
    fn round_trip_preserves_everything() {
        let entries = sample_entries();
        let decoded = decode(&encode(&entries)).unwrap();
        assert_eq!(decoded.len(), entries.len());
        for ((n1, t1), (n2, t2)) in entries.iter().zip(&decoded) {
            assert_eq!(n1, n2);
            assert_eq!(t1.shape(), t2.shape());
            assert!(t1.approx_eq(t2, 0.0));
        }
    }

    #[test]
    fn empty_checkpoint_round_trips() {
        let decoded = decode(&encode(&[])).unwrap();
        assert!(decoded.is_empty());
    }

    #[test]
    fn bad_magic_detected() {
        let mut buf = encode(&sample_entries());
        buf[0] = b'X';
        assert_eq!(decode(&buf).unwrap_err(), FormatError::BadMagic);
    }

    #[test]
    fn truncation_detected() {
        let buf = encode(&sample_entries());
        // Any prefix must fail (checksum or truncation, never panic).
        for cut in [0, 3, 10, buf.len() / 2, buf.len() - 1] {
            assert!(decode(&buf[..cut]).is_err(), "cut at {cut} accepted");
        }
    }

    #[test]
    fn bit_flip_detected() {
        let mut buf = encode(&sample_entries());
        let mid = buf.len() / 2;
        buf[mid] ^= 0x40;
        assert_eq!(decode(&buf).unwrap_err(), FormatError::Corrupt);
    }

    #[test]
    fn size_matches_f32_payload_plus_small_overhead() {
        // Fig. 11 reads checkpoint sizes; they must track parameter bytes.
        let entries = sample_entries();
        let payload: usize = entries.iter().map(|(_, t)| t.numel() * 4).sum();
        let buf = encode(&entries);
        assert!(buf.len() > payload);
        assert!(buf.len() < payload + 256, "overhead too large: {}", buf.len() - payload);
    }
}
