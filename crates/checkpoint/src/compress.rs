//! Lossy checkpoint compression — the second complementary direction the
//! paper's related work surveys (DeepSZ's bounded lossy compression,
//! Check-N-Run's quantization).
//!
//! [`QuantizedStore`] wraps any [`CheckpointStore`] and stores each tensor
//! as linear 8-bit quantization: per-tensor `min`/`max` plus one byte per
//! element, a 4× size reduction with a bounded per-element error of at most
//! half a quantization step (`(max - min) / 510`). Decoded checkpoints are
//! ordinary tensors, so weight transfer works unchanged — the `ext_compress`
//! experiment measures whether the added error harms transfer positivity.
//!
//! The quantized payload is carried *inside* the regular WTC container (two
//! auxiliary tensors per original tensor), so the on-disk format stays
//! self-describing and checksummed.

use crate::store::CheckpointStore;
use std::io;
use swt_tensor::Tensor;

/// Number of quantization levels (u8).
const LEVELS: f32 = 255.0;

/// Quantize one tensor into `(params, payload)` where `params` is
/// `[min, max]` and `payload` packs one byte per element into f32 slots of a
/// rank-1 tensor (4 values per f32 via bit-packing would complicate the
/// container; we store bytes in u8-valued f32s and rely on the *logical*
/// 4x reduction measured by [`QuantizedStore::logical_bytes`]).
fn quantize(t: &Tensor) -> (Tensor, Vec<u8>) {
    let mut lo = f32::INFINITY;
    let mut hi = f32::NEG_INFINITY;
    for &v in t.data() {
        lo = lo.min(v);
        hi = hi.max(v);
    }
    if !lo.is_finite() || !hi.is_finite() {
        lo = 0.0;
        hi = 0.0;
    }
    let scale = if hi > lo { LEVELS / (hi - lo) } else { 0.0 };
    let bytes = t.data().iter().map(|&v| ((v - lo) * scale).round() as u8).collect();
    (Tensor::from_vec([2], vec![lo, hi]), bytes)
}

fn dequantize(shape: &[usize], params: &Tensor, bytes: &[u8]) -> Tensor {
    let lo = params.data()[0];
    let hi = params.data()[1];
    let step = if hi > lo { (hi - lo) / LEVELS } else { 0.0 };
    let data = bytes.iter().map(|&b| lo + f32::from(b) * step).collect();
    Tensor::from_vec(shape.to_vec(), data)
}

/// Maximum absolute reconstruction error of the quantizer for a tensor with
/// the given value range.
pub fn max_quantization_error(lo: f32, hi: f32) -> f32 {
    if hi > lo {
        (hi - lo) / LEVELS / 2.0
    } else {
        0.0
    }
}

/// Byte-packing helpers: the WTC container stores f32 tensors, so the u8
/// payload is packed 4-per-f32 losslessly via bit transmutation.
fn pack_bytes(bytes: &[u8]) -> Tensor {
    let mut padded = bytes.to_vec();
    while !padded.len().is_multiple_of(4) {
        padded.push(0);
    }
    let data: Vec<f32> =
        padded.chunks_exact(4).map(|c| f32::from_le_bytes([c[0], c[1], c[2], c[3]])).collect();
    Tensor::from_vec([data.len()], data)
}

fn unpack_bytes(t: &Tensor, n: usize) -> Vec<u8> {
    let mut out = Vec::with_capacity(t.numel() * 4);
    for &v in t.data() {
        out.extend_from_slice(&v.to_le_bytes());
    }
    out.truncate(n);
    out
}

/// A write-through store that 8-bit-quantizes every tensor.
pub struct QuantizedStore {
    inner: Box<dyn CheckpointStore>,
}

impl QuantizedStore {
    pub fn new(inner: Box<dyn CheckpointStore>) -> Self {
        QuantizedStore { inner }
    }

    /// Logical compressed size of a tensor set: 1 byte/element + params.
    pub fn logical_bytes(entries: &[(String, Tensor)]) -> u64 {
        entries.iter().map(|(_, t)| t.numel() as u64 + 8).sum()
    }
}

impl CheckpointStore for QuantizedStore {
    fn save(&self, id: &str, entries: &[(String, Tensor)]) -> io::Result<u64> {
        let mut encoded = Vec::with_capacity(entries.len() * 3);
        for (name, tensor) in entries {
            let (params, bytes) = quantize(tensor);
            // Shape marker so decode can rebuild the original dims.
            let shape_tensor = Tensor::from_vec(
                [tensor.shape().rank()],
                tensor.shape().dims().iter().map(|&d| d as f32).collect(),
            );
            encoded.push((format!("{name}#shape"), shape_tensor));
            encoded.push((format!("{name}#q"), params));
            encoded.push((format!("{name}#data"), pack_bytes(&bytes)));
        }
        self.inner.save(id, &encoded)?;
        Ok(Self::logical_bytes(entries))
    }

    fn load(&self, id: &str) -> io::Result<Vec<(String, Tensor)>> {
        let encoded = self.inner.load(id)?;
        let bad = || io::Error::new(io::ErrorKind::InvalidData, "malformed quantized checkpoint");
        let mut out = Vec::with_capacity(encoded.len() / 3);
        let mut iter = encoded.chunks_exact(3);
        for chunk in &mut iter {
            let (shape_name, shape_tensor) = &chunk[0];
            let (_q_name, params) = &chunk[1];
            let (_d_name, packed) = &chunk[2];
            let name = shape_name.strip_suffix("#shape").ok_or_else(bad)?.to_string();
            let dims: Vec<usize> = shape_tensor.data().iter().map(|&d| d as usize).collect();
            let numel: usize = dims.iter().product();
            let bytes = unpack_bytes(packed, numel);
            if bytes.len() != numel || params.numel() != 2 {
                return Err(bad());
            }
            out.push((name, dequantize(&dims, params, &bytes)));
        }
        Ok(out)
    }

    fn exists(&self, id: &str) -> bool {
        self.inner.exists(id)
    }

    fn size_bytes(&self, id: &str) -> Option<u64> {
        self.inner.size_bytes(id)
    }

    fn list(&self) -> Vec<String> {
        self.inner.list()
    }

    fn delete(&self, id: &str) -> bool {
        self.inner.delete(id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::MemStore;
    use swt_tensor::Rng;

    fn entries() -> Vec<(String, Tensor)> {
        let mut rng = Rng::seed(5);
        vec![
            ("a/kernel".into(), Tensor::rand_normal([7, 9], 0.0, 1.0, &mut rng)),
            ("a/bias".into(), Tensor::rand_uniform([9], -0.5, 0.5, &mut rng)),
            ("b/kernel".into(), Tensor::rand_normal([3, 3, 2, 4], 0.0, 0.2, &mut rng)),
        ]
    }

    #[test]
    fn round_trip_bounded_error() {
        let store = QuantizedStore::new(Box::new(MemStore::new()));
        let original = entries();
        store.save("c", &original).unwrap();
        let decoded = store.load("c").unwrap();
        assert_eq!(decoded.len(), original.len());
        for ((n1, t1), (n2, t2)) in original.iter().zip(&decoded) {
            assert_eq!(n1, n2);
            assert_eq!(t1.shape(), t2.shape());
            let mut lo = f32::INFINITY;
            let mut hi = f32::NEG_INFINITY;
            for &v in t1.data() {
                lo = lo.min(v);
                hi = hi.max(v);
            }
            let bound = max_quantization_error(lo, hi) + 1e-6;
            for (a, b) in t1.data().iter().zip(t2.data()) {
                assert!((a - b).abs() <= bound, "{n1}: |{a} - {b}| > {bound}");
            }
        }
    }

    #[test]
    fn constant_tensor_is_exact() {
        let store = QuantizedStore::new(Box::new(MemStore::new()));
        let t = vec![("c/kernel".to_string(), Tensor::full([4, 4], 2.5))];
        store.save("k", &t).unwrap();
        assert!(store.load("k").unwrap()[0].1.approx_eq(&t[0].1, 0.0));
    }

    #[test]
    fn reports_logical_compression() {
        let original = entries();
        let raw: u64 = original.iter().map(|(_, t)| 4 * t.numel() as u64).sum();
        let store = QuantizedStore::new(Box::new(MemStore::new()));
        let compressed = store.save("c", &original).unwrap();
        assert!(
            (compressed as f64) < raw as f64 / 3.0,
            "expected ~4x reduction: {compressed} vs {raw}"
        );
    }

    #[test]
    fn odd_length_tensors_pack_correctly() {
        let store = QuantizedStore::new(Box::new(MemStore::new()));
        for n in [1usize, 2, 3, 5, 17] {
            let t = vec![(
                "x/kernel".to_string(),
                Tensor::from_vec([n], (0..n).map(|i| i as f32).collect()),
            )];
            store.save("odd", &t).unwrap();
            let back = store.load("odd").unwrap();
            assert_eq!(back[0].1.numel(), n);
            let bound = max_quantization_error(0.0, (n - 1) as f32) + 1e-6;
            for (a, b) in t[0].1.data().iter().zip(back[0].1.data()) {
                assert!((a - b).abs() <= bound);
            }
        }
    }

    #[test]
    fn transfer_through_quantized_checkpoint_still_works() {
        use swt_tensor::Padding;
        // The downstream use: provider saved quantized, weights transferred.
        let spec = swt_nn_spec();
        let provider = swt_nn::Model::build(&spec, 1).unwrap();
        let store = QuantizedStore::new(Box::new(MemStore::new()));
        store.save("p", &provider.state_dict()).unwrap();
        let ckpt = store.load("p").unwrap();
        let mut receiver = swt_nn::Model::build(&spec, 2).unwrap();
        let mut applied = 0;
        for (name, tensor) in &ckpt {
            if receiver.set_param(name, tensor) {
                applied += 1;
            }
        }
        assert_eq!(applied, provider.named_params().len());
        let _ = Padding::Same;
    }

    fn swt_nn_spec() -> swt_nn::ModelSpec {
        swt_nn::ModelSpec::chain(
            vec![6],
            vec![swt_nn::LayerSpec::Dense { units: 4, activation: None }],
        )
        .unwrap()
    }
}
