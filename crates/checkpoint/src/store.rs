//! Checkpoint storage backends.

use crate::format::{decode, decode_tensors, encode, encode_to, parse_index, FormatError};
use crate::index::CheckpointIndex;
use std::collections::{HashMap, HashSet};
use std::fs::File;
use std::io::{self, BufWriter, Read, Seek, SeekFrom, Write};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};
use swt_tensor::{with_thread_workspace, Tensor};

/// A place to persist candidate checkpoints, keyed by candidate id.
///
/// The paper's evaluators write each scored candidate to a parallel file
/// system and later read parents back for weight transfer (Fig. 6 steps
/// ③/⑤); this trait is that interface. The provided `load_index` /
/// `load_tensors` methods are the *selective* read path (Section VIII-E
/// identifies checkpoint reads as the dominant transfer overhead): backends
/// with native header support override them to serve a transfer plan without
/// decoding — or even reading — unmatched tensor payloads.
pub trait CheckpointStore: Send + Sync {
    /// Persist a checkpoint; returns the serialized size in bytes (Fig. 11's
    /// measured quantity).
    fn save(&self, id: &str, entries: &[(String, Tensor)]) -> io::Result<u64>;

    /// Load a checkpoint by id.
    fn load(&self, id: &str) -> io::Result<Vec<(String, Tensor)>>;

    /// The raw encoded bytes of a checkpoint. Default: re-encode a full
    /// load; backends that hold encoded bytes return them directly (this is
    /// what [`crate::CachedStore`] keeps resident).
    fn load_raw(&self, id: &str) -> io::Result<Vec<u8>> {
        Ok(encode(&self.load(id)?))
    }

    /// The checkpoint's table of contents: names, shapes and layout, without
    /// tensor data. Default: synthesize from a full load (correct but not
    /// faster); indexed backends read only the WTC2 header.
    fn load_index(&self, id: &str) -> io::Result<CheckpointIndex> {
        let entries = self.load(id)?;
        Ok(CheckpointIndex::synthesized(
            entries.into_iter().map(|(n, t)| (n, t.shape().dims().to_vec())),
        ))
    }

    /// Load only the named tensors. Names absent from the checkpoint are
    /// omitted from the result, not errors (a stale plan must degrade, not
    /// fail). Default: full load + filter.
    fn load_tensors(&self, id: &str, names: &[String]) -> io::Result<Vec<(String, Tensor)>> {
        let want: HashSet<&str> = names.iter().map(String::as_str).collect();
        let mut entries = self.load(id)?;
        entries.retain(|(n, _)| want.contains(n.as_str()));
        Ok(entries)
    }

    /// True iff a checkpoint with this id exists.
    fn exists(&self, id: &str) -> bool;

    /// Size in bytes of a stored checkpoint, if present.
    fn size_bytes(&self, id: &str) -> Option<u64>;

    /// Ids of all stored checkpoints (unordered).
    fn list(&self) -> Vec<String>;

    /// Delete a checkpoint if present; returns whether it existed. NAS runs
    /// checkpoint every candidate (Section VI), so long searches need
    /// retention management.
    fn delete(&self, id: &str) -> bool;
}

/// Stores are routinely shared across worker threads as `Arc<dyn
/// CheckpointStore>`; this impl lets wrappers like [`crate::CachedStore`]
/// hold one generically while still dispatching to the inner store's
/// overridden selective-read methods.
impl<T: CheckpointStore + ?Sized> CheckpointStore for Arc<T> {
    fn save(&self, id: &str, entries: &[(String, Tensor)]) -> io::Result<u64> {
        (**self).save(id, entries)
    }
    fn load(&self, id: &str) -> io::Result<Vec<(String, Tensor)>> {
        (**self).load(id)
    }
    fn load_raw(&self, id: &str) -> io::Result<Vec<u8>> {
        (**self).load_raw(id)
    }
    fn load_index(&self, id: &str) -> io::Result<CheckpointIndex> {
        (**self).load_index(id)
    }
    fn load_tensors(&self, id: &str, names: &[String]) -> io::Result<Vec<(String, Tensor)>> {
        (**self).load_tensors(id, names)
    }
    fn exists(&self, id: &str) -> bool {
        (**self).exists(id)
    }
    fn size_bytes(&self, id: &str) -> Option<u64> {
        (**self).size_bytes(id)
    }
    fn list(&self) -> Vec<String> {
        (**self).list()
    }
    fn delete(&self, id: &str) -> bool {
        (**self).delete(id)
    }
}

/// Stores that can ingest a checkpoint as already-encoded WTC bytes,
/// without decoding tensors first. This is the write path of the networked
/// store (`swt-ckpt-server`): a `Put` streams the client's encoded bytes,
/// and re-decoding ~megabytes of tensors just to re-encode them would
/// double the ingest cost. Implementations must be atomic with respect to
/// concurrent readers (no torn observations) and must leave subsequent
/// `load`/`load_index`/`load_tensors` calls indistinguishable from a
/// [`CheckpointStore::save`] of the same entries.
pub trait RawCheckpointStore: CheckpointStore {
    /// Persist pre-encoded checkpoint bytes under `id`; returns the byte
    /// count (== `bytes.len()`). The bytes are trusted to be a valid WTC
    /// container — callers on untrusted paths validate via
    /// [`crate::parse_index`] first.
    fn save_raw(&self, id: &str, bytes: &[u8]) -> io::Result<u64>;
}

impl<T: RawCheckpointStore + ?Sized> RawCheckpointStore for Arc<T> {
    fn save_raw(&self, id: &str, bytes: &[u8]) -> io::Result<u64> {
        (**self).save_raw(id, bytes)
    }
}

/// Retention helper: delete every checkpoint not in `keep`. Returns the
/// number deleted. Typical use: after the top-K are selected, prune the
/// thousands of non-elite candidate checkpoints.
pub fn prune_except(store: &dyn CheckpointStore, keep: &[String]) -> usize {
    let keep: HashSet<&str> = keep.iter().map(String::as_str).collect();
    store
        .list()
        .into_iter()
        .filter(|id| !keep.contains(id.as_str()))
        .filter(|id| store.delete(id))
        .count()
}

fn format_err(e: FormatError) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, e)
}

fn torn_err() -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, "checkpoint file shorter than its index declares")
}

/// Directory-backed store: one `<id>.wtc` file per candidate. Stands in for
/// the paper's HDF5-on-PFS checkpoints.
pub struct DirStore {
    root: PathBuf,
}

impl DirStore {
    /// Open (creating if needed) a store rooted at `root`.
    pub fn new(root: impl Into<PathBuf>) -> io::Result<Self> {
        let root = root.into();
        std::fs::create_dir_all(&root)?;
        Ok(DirStore { root })
    }

    fn path(&self, id: &str) -> PathBuf {
        assert!(
            !id.is_empty() && id.chars().all(|c| c.is_ascii_alphanumeric() || "._-".contains(c)),
            "checkpoint id {id:?} must be a simple token"
        );
        self.root.join(format!("{id}.wtc"))
    }

    /// Open `id` and read its index: the 16-byte fixed header plus the TOC
    /// for WTC2 (a few hundred bytes regardless of checkpoint size), or the
    /// whole file for legacy WTC1. Returns the still-open file positioned
    /// arbitrarily, the index, and the file length.
    fn open_indexed(&self, id: &str) -> io::Result<(File, CheckpointIndex, u64)> {
        let mut f = File::open(self.path(id))?;
        let file_len = f.metadata()?.len();
        let mut head = [0u8; 8];
        f.read_exact(&mut head).map_err(|_| format_err(FormatError::Truncated))?;
        let index = if &head[..4] == b"WTC2" {
            let toc_len = u32::from_le_bytes(head[4..8].try_into().unwrap()) as u64;
            let header_len = 8 + toc_len + 8;
            if header_len > file_len {
                return Err(format_err(FormatError::Truncated));
            }
            let mut header = vec![0u8; header_len as usize];
            header[..8].copy_from_slice(&head);
            f.read_exact(&mut header[8..])?;
            parse_index(&header).map_err(format_err)?
        } else {
            // WTC1 (or garbage — parse_index reports which): the layout
            // interleaves headers with payloads, so index extraction needs
            // the full file.
            let mut buf = Vec::with_capacity(file_len as usize);
            buf.extend_from_slice(&head);
            f.read_to_end(&mut buf)?;
            parse_index(&buf).map_err(format_err)?
        };
        if index.encoded_len() != file_len {
            return Err(torn_err());
        }
        Ok((f, index, file_len))
    }
}

/// Monotonic suffix making concurrent temp files unique within a process.
static TMP_SEQ: AtomicU64 = AtomicU64::new(0);

impl CheckpointStore for DirStore {
    fn save(&self, id: &str, entries: &[(String, Tensor)]) -> io::Result<u64> {
        let t0 = std::time::Instant::now();
        let dst = self.path(id); // validates the id up front
                                 // Write-then-rename so concurrent readers never observe a torn file.
                                 // The temp name carries pid + a process-wide sequence number:
                                 // concurrent saves of the *same id* (two workers re-checkpointing a
                                 // shared elite) must not clobber each other's half-written file.
        let tmp = self.root.join(format!(
            ".{id}.{}.{}.tmp",
            std::process::id(),
            TMP_SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        let result = (|| -> io::Result<u64> {
            // 1 MiB buffer: checkpoints are megabytes, and the default 8 KiB
            // buffer turns one save into thousands of write syscalls.
            let mut w = BufWriter::with_capacity(1 << 20, File::create(&tmp)?);
            let bytes = encode_to(entries, &mut w)?;
            w.flush()?;
            std::fs::rename(&tmp, &dst)?;
            Ok(bytes)
        })();
        if result.is_err() {
            // Never leave a stale temp file behind on a failed save.
            let _ = std::fs::remove_file(&tmp);
        }
        let bytes = result?;
        swt_obs::histogram!("ckpt.dir.save_ns").observe(t0.elapsed().as_nanos() as u64);
        swt_obs::counter!("ckpt.dir.saved_bytes").add(bytes);
        Ok(bytes)
    }

    fn load(&self, id: &str) -> io::Result<Vec<(String, Tensor)>> {
        let t0 = std::time::Instant::now();
        let buf = std::fs::read(self.path(id))?;
        let entries = decode(&buf).map_err(format_err)?;
        swt_obs::histogram!("ckpt.dir.load_ns").observe(t0.elapsed().as_nanos() as u64);
        Ok(entries)
    }

    fn load_raw(&self, id: &str) -> io::Result<Vec<u8>> {
        std::fs::read(self.path(id))
    }

    fn load_index(&self, id: &str) -> io::Result<CheckpointIndex> {
        let t0 = std::time::Instant::now();
        let (_, index, _) = self.open_indexed(id)?;
        swt_obs::histogram!("ckpt.dir.load_index_ns").observe(t0.elapsed().as_nanos() as u64);
        Ok(index)
    }

    fn load_tensors(&self, id: &str, names: &[String]) -> io::Result<Vec<(String, Tensor)>> {
        let t0 = std::time::Instant::now();
        let (mut f, index, _) = self.open_indexed(id)?;
        let want: HashSet<&str> = names.iter().map(String::as_str).collect();
        let mut out = Vec::with_capacity(want.len().min(index.len()));
        let mut read_bytes = 0u64;
        if index.version() == 2 {
            // Seek straight to each requested payload; unmatched tensors are
            // never read off the disk at all.
            let mut raw = Vec::new();
            for meta in index.tensors().iter().filter(|m| want.contains(m.name.as_str())) {
                f.seek(SeekFrom::Start(meta.offset))?;
                raw.clear();
                raw.resize(meta.size_bytes() as usize, 0);
                f.read_exact(&mut raw)?;
                read_bytes += raw.len() as u64;
                let tensor = with_thread_workspace(|ws| {
                    crate::format::tensor_from_payload(meta, &raw, 2, ws)
                })
                .map_err(format_err)?;
                out.push((meta.name.clone(), tensor));
            }
        } else {
            // WTC1 interleaves payloads with headers: fall back to one full
            // sequential read, then decode only the requested tensors.
            let mut buf = Vec::new();
            f.seek(SeekFrom::Start(0))?;
            f.read_to_end(&mut buf)?;
            read_bytes = buf.len() as u64;
            out = decode_tensors(&buf, &index, names).map_err(format_err)?;
        }
        swt_obs::histogram!("ckpt.dir.partial_load_ns").observe(t0.elapsed().as_nanos() as u64);
        swt_obs::counter!("ckpt.dir.partial_read_bytes").add(read_bytes);
        Ok(out)
    }

    fn exists(&self, id: &str) -> bool {
        self.path(id).exists()
    }

    fn size_bytes(&self, id: &str) -> Option<u64> {
        std::fs::metadata(self.path(id)).ok().map(|m| m.len())
    }

    fn list(&self) -> Vec<String> {
        let Ok(dir) = std::fs::read_dir(&self.root) else { return Vec::new() };
        dir.filter_map(|e| {
            let name = e.ok()?.file_name().into_string().ok()?;
            name.strip_suffix(".wtc").map(str::to_string)
        })
        .collect()
    }

    fn delete(&self, id: &str) -> bool {
        std::fs::remove_file(self.path(id)).is_ok()
    }
}

impl RawCheckpointStore for DirStore {
    fn save_raw(&self, id: &str, bytes: &[u8]) -> io::Result<u64> {
        let t0 = std::time::Instant::now();
        let dst = self.path(id); // validates the id up front
                                 // Same write-then-rename discipline as `save`: concurrent readers
                                 // must never observe a torn file, and concurrent raw saves of the
                                 // same id must not clobber each other's temp file.
        let tmp = self.root.join(format!(
            ".{id}.{}.{}.tmp",
            std::process::id(),
            TMP_SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        let result = (|| -> io::Result<u64> {
            std::fs::write(&tmp, bytes)?;
            std::fs::rename(&tmp, &dst)?;
            Ok(bytes.len() as u64)
        })();
        if result.is_err() {
            let _ = std::fs::remove_file(&tmp);
        }
        let n = result?;
        swt_obs::histogram!("ckpt.dir.save_ns").observe(t0.elapsed().as_nanos() as u64);
        swt_obs::counter!("ckpt.dir.saved_bytes").add(n);
        Ok(n)
    }
}

/// In-memory store for tests, pair experiments and the cluster simulator.
#[derive(Default)]
pub struct MemStore {
    map: RwLock<HashMap<String, Vec<u8>>>,
}

impl MemStore {
    pub fn new() -> Self {
        Self::default()
    }

    /// Total bytes across all checkpoints.
    pub fn total_bytes(&self) -> u64 {
        self.map.read().unwrap().values().map(|v| v.len() as u64).sum()
    }

    fn with_buf<R>(&self, id: &str, f: impl FnOnce(&[u8]) -> io::Result<R>) -> io::Result<R> {
        let guard = self.map.read().unwrap();
        let buf = guard.get(id).ok_or_else(|| {
            io::Error::new(io::ErrorKind::NotFound, format!("no checkpoint {id}"))
        })?;
        f(buf)
    }
}

impl CheckpointStore for MemStore {
    fn save(&self, id: &str, entries: &[(String, Tensor)]) -> io::Result<u64> {
        let t0 = std::time::Instant::now();
        let buf = encode(entries);
        let len = buf.len() as u64;
        self.map.write().unwrap().insert(id.to_string(), buf);
        swt_obs::histogram!("ckpt.mem.save_ns").observe(t0.elapsed().as_nanos() as u64);
        swt_obs::counter!("ckpt.mem.saved_bytes").add(len);
        Ok(len)
    }

    fn load(&self, id: &str) -> io::Result<Vec<(String, Tensor)>> {
        let t0 = std::time::Instant::now();
        let entries = self.with_buf(id, |buf| decode(buf).map_err(format_err))?;
        swt_obs::histogram!("ckpt.mem.load_ns").observe(t0.elapsed().as_nanos() as u64);
        Ok(entries)
    }

    fn load_raw(&self, id: &str) -> io::Result<Vec<u8>> {
        self.with_buf(id, |buf| Ok(buf.to_vec()))
    }

    fn load_index(&self, id: &str) -> io::Result<CheckpointIndex> {
        self.with_buf(id, |buf| parse_index(buf).map_err(format_err))
    }

    fn load_tensors(&self, id: &str, names: &[String]) -> io::Result<Vec<(String, Tensor)>> {
        self.with_buf(id, |buf| {
            let index = parse_index(buf).map_err(format_err)?;
            decode_tensors(buf, &index, names).map_err(format_err)
        })
    }

    fn exists(&self, id: &str) -> bool {
        self.map.read().unwrap().contains_key(id)
    }

    fn size_bytes(&self, id: &str) -> Option<u64> {
        self.map.read().unwrap().get(id).map(|v| v.len() as u64)
    }

    fn list(&self) -> Vec<String> {
        self.map.read().unwrap().keys().cloned().collect()
    }

    fn delete(&self, id: &str) -> bool {
        self.map.write().unwrap().remove(id).is_some()
    }
}

impl RawCheckpointStore for MemStore {
    fn save_raw(&self, id: &str, bytes: &[u8]) -> io::Result<u64> {
        let len = bytes.len() as u64;
        self.map.write().unwrap().insert(id.to_string(), bytes.to_vec());
        swt_obs::counter!("ckpt.mem.saved_bytes").add(len);
        Ok(len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::format::encode_v1;
    use swt_tensor::Rng;

    fn entries(seed: u64) -> Vec<(String, Tensor)> {
        let mut rng = Rng::seed(seed);
        vec![
            ("a/kernel".into(), Tensor::rand_normal([4, 4], 0.0, 1.0, &mut rng)),
            ("a/bias".into(), Tensor::zeros([4])),
        ]
    }

    fn exercise(store: &dyn CheckpointStore) {
        assert!(!store.exists("c0"));
        assert!(store.load("c0").is_err());
        let size = store.save("c0", &entries(1)).unwrap();
        assert!(size > 0);
        assert!(store.exists("c0"));
        assert_eq!(store.size_bytes("c0"), Some(size));
        let loaded = store.load("c0").unwrap();
        assert_eq!(loaded.len(), 2);
        assert_eq!(loaded[0].0, "a/kernel");
        // Overwrite wins.
        store.save("c0", &entries(2)).unwrap();
        let again = store.load("c0").unwrap();
        assert!(!again[0].1.approx_eq(&loaded[0].1, 0.0));
        store.save("c1", &entries(3)).unwrap();
        let mut ids = store.list();
        ids.sort();
        assert_eq!(ids, vec!["c0", "c1"]);
    }

    /// The selective read path must agree with a full load, on any backend.
    fn exercise_selective(store: &dyn CheckpointStore) {
        store.save("sel", &entries(9)).unwrap();
        let index = store.load_index("sel").unwrap();
        assert_eq!(index.len(), 2);
        assert_eq!(index.tensors()[0].name, "a/kernel");
        assert_eq!(index.tensors()[0].shape().dims(), &[4, 4]);
        let full = store.load("sel").unwrap();
        let some = store.load_tensors("sel", &["a/bias".to_string(), "ghost".to_string()]).unwrap();
        assert_eq!(some.len(), 1, "absent names are omitted");
        assert_eq!(some[0].0, "a/bias");
        assert!(some[0].1.approx_eq(&full[1].1, 0.0));
        let raw = store.load_raw("sel").unwrap();
        assert_eq!(raw.len() as u64, store.size_bytes("sel").unwrap());
    }

    #[test]
    fn mem_store_behaviour() {
        let store = MemStore::new();
        exercise(&store);
        exercise_selective(&store);
        assert!(store.total_bytes() > 0);
    }

    #[test]
    fn dir_store_behaviour() {
        let dir = std::env::temp_dir().join(format!("swt_ckpt_test_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let store = DirStore::new(&dir).unwrap();
        exercise(&store);
        exercise_selective(&store);
        // Files actually land on disk with the expected suffix.
        assert!(dir.join("c0.wtc").exists());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn dir_store_survives_reopen() {
        let dir = std::env::temp_dir().join(format!("swt_ckpt_reopen_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        {
            let store = DirStore::new(&dir).unwrap();
            store.save("persist", &entries(7)).unwrap();
        }
        let store = DirStore::new(&dir).unwrap();
        assert!(store.exists("persist"));
        assert_eq!(store.load("persist").unwrap().len(), 2);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn dir_store_reads_legacy_wtc1_files() {
        let dir = std::env::temp_dir().join(format!("swt_ckpt_v1_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let store = DirStore::new(&dir).unwrap();
        let original = entries(4);
        std::fs::write(dir.join("old.wtc"), encode_v1(&original)).unwrap();
        let loaded = store.load("old").unwrap();
        assert!(loaded[0].1.approx_eq(&original[0].1, 0.0));
        // Selective reads fall back to a full scan but stay correct.
        let index = store.load_index("old").unwrap();
        assert_eq!(index.version(), 1);
        let some = store.load_tensors("old", &["a/kernel".to_string()]).unwrap();
        assert_eq!(some.len(), 1);
        assert!(some[0].1.approx_eq(&original[0].1, 0.0));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    #[should_panic(expected = "simple token")]
    fn dir_store_rejects_path_traversal() {
        let dir = std::env::temp_dir().join(format!("swt_ckpt_evil_{}", std::process::id()));
        let store = DirStore::new(&dir).unwrap();
        let _ = store.save("../evil", &entries(1));
    }

    #[test]
    fn delete_and_prune() {
        let store = MemStore::new();
        for i in 0..6 {
            store.save(&format!("c{i}"), &entries(i)).unwrap();
        }
        assert!(store.delete("c0"));
        assert!(!store.delete("c0"), "double delete reports absence");
        assert!(!store.exists("c0"));
        let kept = vec!["c2".to_string(), "c4".to_string()];
        let pruned = prune_except(&store, &kept);
        assert_eq!(pruned, 3); // c1, c3, c5
        let mut left = store.list();
        left.sort();
        assert_eq!(left, kept);
    }

    #[test]
    fn dir_store_delete() {
        let dir = std::env::temp_dir().join(format!("swt_ckpt_del_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let store = DirStore::new(&dir).unwrap();
        store.save("x", &entries(1)).unwrap();
        assert!(store.delete("x"));
        assert!(!dir.join("x.wtc").exists());
        assert!(!store.delete("x"));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn mem_store_is_threadsafe() {
        let store = Arc::new(MemStore::new());
        let mut handles = Vec::new();
        for t in 0..8 {
            let store = Arc::clone(&store);
            handles.push(std::thread::spawn(move || {
                for i in 0..20 {
                    let id = format!("t{t}_{i}");
                    store.save(&id, &entries(t * 100 + i)).unwrap();
                    assert!(store.exists(&id));
                    store.load(&id).unwrap();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(store.list().len(), 160);
    }

    #[test]
    fn dir_store_concurrent_same_id_never_tears() {
        // Regression for the shared-tmp-path collision: several writers
        // repeatedly overwrite one id while readers hammer every read path.
        // Every observed state must be a complete, checksum-valid file
        // holding one of the written values — torn or mixed bytes would fail
        // decode (or the per-tensor checksums).
        let dir = std::env::temp_dir().join(format!("swt_ckpt_race_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let store = Arc::new(DirStore::new(&dir).unwrap());
        store.save("hot", &entries(0)).unwrap();
        let mut handles = Vec::new();
        for t in 0..3u64 {
            let store = Arc::clone(&store);
            handles.push(std::thread::spawn(move || {
                for i in 0..30 {
                    store.save("hot", &entries(t * 1000 + i)).unwrap();
                }
            }));
        }
        for _ in 0..3 {
            let store = Arc::clone(&store);
            handles.push(std::thread::spawn(move || {
                for i in 0..60 {
                    let loaded = store.load("hot").expect("load never sees a torn file");
                    assert_eq!(loaded.len(), 2);
                    if i % 2 == 0 {
                        let index = store.load_index("hot").expect("index never torn");
                        assert_eq!(index.len(), 2);
                        let some = store.load_tensors("hot", &["a/kernel".to_string()]).unwrap();
                        assert_eq!(some.len(), 1);
                    }
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        // No temp droppings left behind by the unique-name scheme.
        let leftovers: Vec<String> = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok()?.file_name().into_string().ok())
            .filter(|n| n.ends_with(".tmp"))
            .collect();
        assert!(leftovers.is_empty(), "stale temp files: {leftovers:?}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn save_raw_round_trips_on_every_backend() {
        // Bytes ingested verbatim must be indistinguishable from a `save`
        // of the same entries on every read path.
        let encoded = encode(&entries(5));
        let mem = MemStore::new();
        mem.save_raw("raw", &encoded).unwrap();
        assert_eq!(mem.load_raw("raw").unwrap(), encoded);
        assert_eq!(mem.load("raw").unwrap().len(), 2);

        let dir = std::env::temp_dir().join(format!("swt_ckpt_raw_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let store = DirStore::new(&dir).unwrap();
        store.save_raw("raw", &encoded).unwrap();
        assert_eq!(store.load_raw("raw").unwrap(), encoded);
        assert_eq!(store.load_index("raw").unwrap().version(), 2);
        let some = store.load_tensors("raw", &["a/bias".to_string()]).unwrap();
        assert_eq!(some.len(), 1);
        // Arc dispatch reaches the impl too.
        let arc: Arc<DirStore> = Arc::new(store);
        arc.save_raw("raw2", &encoded).unwrap();
        assert!(arc.exists("raw2"));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn arc_dispatch_reaches_overridden_methods() {
        // The blanket Arc impl must forward to MemStore's native index
        // reader (version 2), not the synthesized default (version 0).
        let store: Arc<dyn CheckpointStore> = Arc::new(MemStore::new());
        store.save("c", &entries(2)).unwrap();
        assert_eq!(store.load_index("c").unwrap().version(), 2);
    }
}
