//! Checkpoint storage backends.

use crate::format::{decode, encode, FormatError};
use std::collections::HashMap;
use std::io;
use std::path::PathBuf;
use std::sync::RwLock;
use swt_tensor::Tensor;

/// A place to persist candidate checkpoints, keyed by candidate id.
///
/// The paper's evaluators write each scored candidate to a parallel file
/// system and later read parents back for weight transfer (Fig. 6 steps
/// ③/⑤); this trait is that interface.
pub trait CheckpointStore: Send + Sync {
    /// Persist a checkpoint; returns the serialized size in bytes (Fig. 11's
    /// measured quantity).
    fn save(&self, id: &str, entries: &[(String, Tensor)]) -> io::Result<u64>;

    /// Load a checkpoint by id.
    fn load(&self, id: &str) -> io::Result<Vec<(String, Tensor)>>;

    /// True iff a checkpoint with this id exists.
    fn exists(&self, id: &str) -> bool;

    /// Size in bytes of a stored checkpoint, if present.
    fn size_bytes(&self, id: &str) -> Option<u64>;

    /// Ids of all stored checkpoints (unordered).
    fn list(&self) -> Vec<String>;

    /// Delete a checkpoint if present; returns whether it existed. NAS runs
    /// checkpoint every candidate (Section VI), so long searches need
    /// retention management.
    fn delete(&self, id: &str) -> bool;
}

/// Retention helper: delete every checkpoint not in `keep`. Returns the
/// number deleted. Typical use: after the top-K are selected, prune the
/// thousands of non-elite candidate checkpoints.
pub fn prune_except(store: &dyn CheckpointStore, keep: &[String]) -> usize {
    let keep: std::collections::HashSet<&str> = keep.iter().map(String::as_str).collect();
    store
        .list()
        .into_iter()
        .filter(|id| !keep.contains(id.as_str()))
        .filter(|id| store.delete(id))
        .count()
}

fn format_err(e: FormatError) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, e)
}

/// Directory-backed store: one `<id>.wtc` file per candidate. Stands in for
/// the paper's HDF5-on-PFS checkpoints.
pub struct DirStore {
    root: PathBuf,
}

impl DirStore {
    /// Open (creating if needed) a store rooted at `root`.
    pub fn new(root: impl Into<PathBuf>) -> io::Result<Self> {
        let root = root.into();
        std::fs::create_dir_all(&root)?;
        Ok(DirStore { root })
    }

    fn path(&self, id: &str) -> PathBuf {
        assert!(
            !id.is_empty() && id.chars().all(|c| c.is_ascii_alphanumeric() || "._-".contains(c)),
            "checkpoint id {id:?} must be a simple token"
        );
        self.root.join(format!("{id}.wtc"))
    }
}

impl CheckpointStore for DirStore {
    fn save(&self, id: &str, entries: &[(String, Tensor)]) -> io::Result<u64> {
        let t0 = std::time::Instant::now();
        let dst = self.path(id); // validates the id up front
        let buf = encode(entries);
        // Write-then-rename so concurrent readers never observe a torn file.
        let tmp = self.root.join(format!(".{id}.tmp"));
        std::fs::write(&tmp, &buf)?;
        std::fs::rename(&tmp, dst)?;
        swt_obs::histogram!("ckpt.dir.save_ns").observe(t0.elapsed().as_nanos() as u64);
        swt_obs::counter!("ckpt.dir.saved_bytes").add(buf.len() as u64);
        Ok(buf.len() as u64)
    }

    fn load(&self, id: &str) -> io::Result<Vec<(String, Tensor)>> {
        let t0 = std::time::Instant::now();
        let buf = std::fs::read(self.path(id))?;
        let entries = decode(&buf).map_err(format_err)?;
        swt_obs::histogram!("ckpt.dir.load_ns").observe(t0.elapsed().as_nanos() as u64);
        Ok(entries)
    }

    fn exists(&self, id: &str) -> bool {
        self.path(id).exists()
    }

    fn size_bytes(&self, id: &str) -> Option<u64> {
        std::fs::metadata(self.path(id)).ok().map(|m| m.len())
    }

    fn list(&self) -> Vec<String> {
        let Ok(dir) = std::fs::read_dir(&self.root) else { return Vec::new() };
        dir.filter_map(|e| {
            let name = e.ok()?.file_name().into_string().ok()?;
            name.strip_suffix(".wtc").map(str::to_string)
        })
        .collect()
    }

    fn delete(&self, id: &str) -> bool {
        std::fs::remove_file(self.path(id)).is_ok()
    }
}

/// In-memory store for tests, pair experiments and the cluster simulator.
#[derive(Default)]
pub struct MemStore {
    map: RwLock<HashMap<String, Vec<u8>>>,
}

impl MemStore {
    pub fn new() -> Self {
        Self::default()
    }

    /// Total bytes across all checkpoints.
    pub fn total_bytes(&self) -> u64 {
        self.map.read().unwrap().values().map(|v| v.len() as u64).sum()
    }
}

impl CheckpointStore for MemStore {
    fn save(&self, id: &str, entries: &[(String, Tensor)]) -> io::Result<u64> {
        let t0 = std::time::Instant::now();
        let buf = encode(entries);
        let len = buf.len() as u64;
        self.map.write().unwrap().insert(id.to_string(), buf);
        swt_obs::histogram!("ckpt.mem.save_ns").observe(t0.elapsed().as_nanos() as u64);
        swt_obs::counter!("ckpt.mem.saved_bytes").add(len);
        Ok(len)
    }

    fn load(&self, id: &str) -> io::Result<Vec<(String, Tensor)>> {
        let t0 = std::time::Instant::now();
        let guard = self.map.read().unwrap();
        let buf = guard.get(id).ok_or_else(|| {
            io::Error::new(io::ErrorKind::NotFound, format!("no checkpoint {id}"))
        })?;
        let entries = decode(buf).map_err(format_err)?;
        swt_obs::histogram!("ckpt.mem.load_ns").observe(t0.elapsed().as_nanos() as u64);
        Ok(entries)
    }

    fn exists(&self, id: &str) -> bool {
        self.map.read().unwrap().contains_key(id)
    }

    fn size_bytes(&self, id: &str) -> Option<u64> {
        self.map.read().unwrap().get(id).map(|v| v.len() as u64)
    }

    fn list(&self) -> Vec<String> {
        self.map.read().unwrap().keys().cloned().collect()
    }

    fn delete(&self, id: &str) -> bool {
        self.map.write().unwrap().remove(id).is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use swt_tensor::Rng;

    fn entries(seed: u64) -> Vec<(String, Tensor)> {
        let mut rng = Rng::seed(seed);
        vec![
            ("a/kernel".into(), Tensor::rand_normal([4, 4], 0.0, 1.0, &mut rng)),
            ("a/bias".into(), Tensor::zeros([4])),
        ]
    }

    fn exercise(store: &dyn CheckpointStore) {
        assert!(!store.exists("c0"));
        assert!(store.load("c0").is_err());
        let size = store.save("c0", &entries(1)).unwrap();
        assert!(size > 0);
        assert!(store.exists("c0"));
        assert_eq!(store.size_bytes("c0"), Some(size));
        let loaded = store.load("c0").unwrap();
        assert_eq!(loaded.len(), 2);
        assert_eq!(loaded[0].0, "a/kernel");
        // Overwrite wins.
        store.save("c0", &entries(2)).unwrap();
        let again = store.load("c0").unwrap();
        assert!(!again[0].1.approx_eq(&loaded[0].1, 0.0));
        store.save("c1", &entries(3)).unwrap();
        let mut ids = store.list();
        ids.sort();
        assert_eq!(ids, vec!["c0", "c1"]);
    }

    #[test]
    fn mem_store_behaviour() {
        let store = MemStore::new();
        exercise(&store);
        assert!(store.total_bytes() > 0);
    }

    #[test]
    fn dir_store_behaviour() {
        let dir = std::env::temp_dir().join(format!("swt_ckpt_test_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let store = DirStore::new(&dir).unwrap();
        exercise(&store);
        // Files actually land on disk with the expected suffix.
        assert!(dir.join("c0.wtc").exists());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn dir_store_survives_reopen() {
        let dir = std::env::temp_dir().join(format!("swt_ckpt_reopen_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        {
            let store = DirStore::new(&dir).unwrap();
            store.save("persist", &entries(7)).unwrap();
        }
        let store = DirStore::new(&dir).unwrap();
        assert!(store.exists("persist"));
        assert_eq!(store.load("persist").unwrap().len(), 2);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    #[should_panic(expected = "simple token")]
    fn dir_store_rejects_path_traversal() {
        let dir = std::env::temp_dir().join(format!("swt_ckpt_evil_{}", std::process::id()));
        let store = DirStore::new(&dir).unwrap();
        let _ = store.save("../evil", &entries(1));
    }

    #[test]
    fn delete_and_prune() {
        let store = MemStore::new();
        for i in 0..6 {
            store.save(&format!("c{i}"), &entries(i)).unwrap();
        }
        assert!(store.delete("c0"));
        assert!(!store.delete("c0"), "double delete reports absence");
        assert!(!store.exists("c0"));
        let kept = vec!["c2".to_string(), "c4".to_string()];
        let pruned = prune_except(&store, &kept);
        assert_eq!(pruned, 3); // c1, c3, c5
        let mut left = store.list();
        left.sort();
        assert_eq!(left, kept);
    }

    #[test]
    fn dir_store_delete() {
        let dir = std::env::temp_dir().join(format!("swt_ckpt_del_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let store = DirStore::new(&dir).unwrap();
        store.save("x", &entries(1)).unwrap();
        assert!(store.delete("x"));
        assert!(!dir.join("x.wtc").exists());
        assert!(!store.delete("x"));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn mem_store_is_threadsafe() {
        use std::sync::Arc;
        let store = Arc::new(MemStore::new());
        let mut handles = Vec::new();
        for t in 0..8 {
            let store = Arc::clone(&store);
            handles.push(std::thread::spawn(move || {
                for i in 0..20 {
                    let id = format!("t{t}_{i}");
                    store.save(&id, &entries(t * 100 + i)).unwrap();
                    assert!(store.exists(&id));
                    store.load(&id).unwrap();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(store.list().len(), 160);
    }
}
