//! Asynchronous checkpointing — the paper's stated future work.
//!
//! Section X: "we plan to extend our approach by complementing it with
//! efficient DNN checkpointing techniques" (VELOC/DeepFreeze-style
//! asynchronous I/O). [`AsyncStore`] wraps any [`CheckpointStore`] and makes
//! `save` return as soon as the tensors are handed to a background writer
//! thread, taking the checkpoint write off the evaluator's critical path —
//! exactly the overhead Fig. 10 charges to NT3.
//!
//! Reads are *consistent*: a `load`/`exists`/`size_bytes` for an id with a
//! pending write blocks until that write has been flushed, so the NAS data
//! flow (children reading parents) is unchanged.

use crate::index::CheckpointIndex;
use crate::store::CheckpointStore;
use std::collections::HashMap;
use std::io;
use std::sync::mpsc::{self, Sender};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use swt_tensor::Tensor;

enum Job {
    Save { id: String, entries: Vec<(String, Tensor)> },
    Shutdown,
}

struct Pending {
    /// Count of queued-but-unflushed writes per id (an id can be
    /// overwritten while earlier writes are still in flight).
    ids: Mutex<HashMap<String, usize>>,
    drained: Condvar,
}

/// A write-behind wrapper around another checkpoint store.
pub struct AsyncStore {
    inner: Arc<dyn CheckpointStore>,
    tx: Sender<Job>,
    pending: Arc<Pending>,
    writer: Option<JoinHandle<()>>,
}

impl AsyncStore {
    /// Wrap `inner` with a single background writer thread.
    pub fn new(inner: Arc<dyn CheckpointStore>) -> Self {
        let (tx, rx) = mpsc::channel::<Job>();
        let pending =
            Arc::new(Pending { ids: Mutex::new(HashMap::new()), drained: Condvar::new() });
        let writer_inner = Arc::clone(&inner);
        let writer_pending = Arc::clone(&pending);
        let writer = std::thread::Builder::new()
            .name("swt-async-ckpt".into())
            .spawn(move || {
                for job in rx {
                    match job {
                        Job::Save { id, entries } => {
                            // Persist, then clear the pending mark and wake
                            // any blocked readers.
                            let _ = writer_inner.save(&id, &entries);
                            swt_obs::gauge!("ckpt.async.queue_depth").dec();
                            let mut ids = writer_pending.ids.lock().unwrap();
                            if let Some(count) = ids.get_mut(&id) {
                                *count -= 1;
                                if *count == 0 {
                                    ids.remove(&id);
                                }
                            }
                            writer_pending.drained.notify_all();
                        }
                        Job::Shutdown => break,
                    }
                }
            })
            .expect("spawn checkpoint writer");
        AsyncStore { inner, tx, pending, writer: Some(writer) }
    }

    /// Block until no writes are pending (used by tests and at run end).
    pub fn flush(&self) {
        let mut ids = self.pending.ids.lock().unwrap();
        while !ids.is_empty() {
            ids = self.pending.drained.wait(ids).unwrap();
        }
    }

    fn wait_for(&self, id: &str) {
        let mut ids = self.pending.ids.lock().unwrap();
        while ids.contains_key(id) {
            ids = self.pending.drained.wait(ids).unwrap();
        }
    }
}

impl CheckpointStore for AsyncStore {
    fn save(&self, id: &str, entries: &[(String, Tensor)]) -> io::Result<u64> {
        // Size accounting must stay exact (Fig. 11); the WTC2 size is pure
        // arithmetic, so no serialisation happens on the caller's thread.
        let bytes = crate::format::encoded_len(entries);
        *self.pending.ids.lock().unwrap().entry(id.to_string()).or_insert(0) += 1;
        // Gauge up before the handoff so the writer's matching `dec` can
        // never observe the queue at a negative depth.
        swt_obs::gauge!("ckpt.async.queue_depth").inc();
        swt_obs::counter!("ckpt.async.enqueued").inc();
        if self.tx.send(Job::Save { id: id.to_string(), entries: entries.to_vec() }).is_err() {
            swt_obs::gauge!("ckpt.async.queue_depth").dec();
            return Err(io::Error::new(io::ErrorKind::BrokenPipe, "writer thread gone"));
        }
        Ok(bytes)
    }

    fn load(&self, id: &str) -> io::Result<Vec<(String, Tensor)>> {
        self.wait_for(id);
        self.inner.load(id)
    }

    fn load_raw(&self, id: &str) -> io::Result<Vec<u8>> {
        self.wait_for(id);
        self.inner.load_raw(id)
    }

    fn load_index(&self, id: &str) -> io::Result<CheckpointIndex> {
        self.wait_for(id);
        self.inner.load_index(id)
    }

    fn load_tensors(&self, id: &str, names: &[String]) -> io::Result<Vec<(String, Tensor)>> {
        self.wait_for(id);
        self.inner.load_tensors(id, names)
    }

    fn exists(&self, id: &str) -> bool {
        self.wait_for(id);
        self.inner.exists(id)
    }

    fn size_bytes(&self, id: &str) -> Option<u64> {
        self.wait_for(id);
        self.inner.size_bytes(id)
    }

    fn list(&self) -> Vec<String> {
        self.flush();
        self.inner.list()
    }

    fn delete(&self, id: &str) -> bool {
        self.wait_for(id);
        self.inner.delete(id)
    }
}

impl Drop for AsyncStore {
    fn drop(&mut self) {
        let _ = self.tx.send(Job::Shutdown);
        if let Some(writer) = self.writer.take() {
            let _ = writer.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::MemStore;

    fn entries(seed: f32) -> Vec<(String, Tensor)> {
        vec![("w/kernel".into(), Tensor::full([64, 64], seed))]
    }

    #[test]
    fn save_then_load_is_consistent() {
        let store = AsyncStore::new(Arc::new(MemStore::new()));
        let bytes = store.save("a", &entries(1.0)).unwrap();
        assert!(bytes > 64 * 64 * 4);
        // load must see the write even if the writer hasn't run yet.
        let loaded = store.load("a").unwrap();
        assert!(loaded[0].1.approx_eq(&Tensor::full([64, 64], 1.0), 0.0));
    }

    #[test]
    fn overwrites_resolve_in_order() {
        let store = AsyncStore::new(Arc::new(MemStore::new()));
        for i in 0..50 {
            store.save("hot", &entries(i as f32)).unwrap();
        }
        let loaded = store.load("hot").unwrap();
        assert!(loaded[0].1.approx_eq(&Tensor::full([64, 64], 49.0), 0.0));
    }

    #[test]
    fn flush_drains_every_pending_write() {
        let inner = Arc::new(MemStore::new());
        let store = AsyncStore::new(Arc::clone(&inner) as Arc<dyn CheckpointStore>);
        for i in 0..20 {
            store.save(&format!("c{i}"), &entries(i as f32)).unwrap();
        }
        store.flush();
        assert_eq!(inner.list().len(), 20);
    }

    #[test]
    fn concurrent_producers_and_readers() {
        let store = Arc::new(AsyncStore::new(Arc::new(MemStore::new())));
        let mut handles = Vec::new();
        for t in 0..4 {
            let store = Arc::clone(&store);
            handles.push(std::thread::spawn(move || {
                for i in 0..10 {
                    let id = format!("t{t}_{i}");
                    store.save(&id, &entries((t * 10 + i) as f32)).unwrap();
                    let loaded = store.load(&id).unwrap();
                    assert_eq!(loaded[0].1.data()[0], (t * 10 + i) as f32);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(store.list().len(), 40);
    }

    #[test]
    fn selective_reads_wait_for_pending_writes() {
        let store = AsyncStore::new(Arc::new(MemStore::new()));
        for i in 0..30 {
            store.save("busy", &entries(i as f32)).unwrap();
        }
        // Index and partial loads must observe the newest enqueued write,
        // exactly like full loads.
        let index = store.load_index("busy").unwrap();
        assert_eq!(index.len(), 1);
        let got = store.load_tensors("busy", &["w/kernel".to_string()]).unwrap();
        assert!(got[0].1.approx_eq(&Tensor::full([64, 64], 29.0), 0.0));
        assert_eq!(store.load_raw("busy").unwrap().len() as u64, index.encoded_len());
    }

    #[test]
    fn prune_racing_inflight_saves_never_loses_kept_ids() {
        // Regression: `prune_except` walking `list()` (which flushes) while
        // another thread keeps enqueueing saves. Kept ids must survive with
        // intact contents; newly saved non-kept ids may or may not be pruned
        // depending on arrival order, but nothing may deadlock or tear.
        use crate::store::prune_except;
        let store = Arc::new(AsyncStore::new(Arc::new(MemStore::new())));
        let keep: Vec<String> = (0..4).map(|i| format!("keep{i}")).collect();
        for (i, id) in keep.iter().enumerate() {
            store.save(id, &entries(i as f32)).unwrap();
        }
        let writer = {
            let store = Arc::clone(&store);
            std::thread::spawn(move || {
                for i in 0..40 {
                    store.save(&format!("extra{i}"), &entries(100.0 + i as f32)).unwrap();
                }
            })
        };
        let pruner = {
            let store = Arc::clone(&store);
            let keep = keep.clone();
            std::thread::spawn(move || {
                for _ in 0..5 {
                    prune_except(store.as_ref(), &keep);
                }
            })
        };
        writer.join().unwrap();
        pruner.join().unwrap();
        store.flush();
        for (i, id) in keep.iter().enumerate() {
            let loaded = store.load(id).expect("kept checkpoint must survive pruning");
            assert!(loaded[0].1.approx_eq(&Tensor::full([64, 64], i as f32), 0.0));
        }
        // A final prune with no concurrent writers leaves exactly the keeps.
        prune_except(store.as_ref(), &keep);
        let mut left = store.list();
        left.sort();
        let mut expected = keep;
        expected.sort();
        assert_eq!(left, expected);
    }

    #[test]
    fn size_matches_sync_store() {
        let sync = MemStore::new();
        let sync_bytes = sync.save("x", &entries(3.0)).unwrap();
        let store = AsyncStore::new(Arc::new(MemStore::new()));
        let async_bytes = store.save("x", &entries(3.0)).unwrap();
        assert_eq!(sync_bytes, async_bytes);
    }
}
