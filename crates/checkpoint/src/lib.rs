//! Model checkpoints: a self-describing binary container of named tensors,
//! plus storage backends.
//!
//! The paper checkpoints every scored candidate in HDF5 on a parallel file
//! system (Section VI); providers for weight transfer are read back from
//! those checkpoints. This crate supplies the equivalent: [`encode`] /
//! [`decode`] for a named-tensor container (the "WTC" format), a
//! directory-backed [`DirStore`] standing in for the PFS, and an in-memory
//! [`MemStore`] for tests and simulation. Checkpoint sizes reported by the
//! stores feed Fig. 11.

pub mod async_store;
pub mod compress;
pub mod format;
pub mod store;

pub use async_store::AsyncStore;
pub use compress::QuantizedStore;
pub use format::{decode, encode, FormatError};
pub use store::{prune_except, CheckpointStore, DirStore, MemStore};
