//! Model checkpoints: a self-describing binary container of named tensors,
//! plus storage backends.
//!
//! The paper checkpoints every scored candidate in HDF5 on a parallel file
//! system (Section VI); providers for weight transfer are read back from
//! those checkpoints. This crate supplies the equivalent: [`encode`] /
//! [`decode`] for a named-tensor container (the "WTC" format), a
//! directory-backed [`DirStore`] standing in for the PFS, and an in-memory
//! [`MemStore`] for tests and simulation. Checkpoint sizes reported by the
//! stores feed Fig. 11.
//!
//! The default container is **WTC2**, an indexed layout whose header is a
//! self-checksummed table of contents ([`CheckpointIndex`]): readers recover
//! every tensor's name, shape, offset and payload checksum without touching
//! payload bytes, which is what makes [`CheckpointStore::load_index`] and
//! [`CheckpointStore::load_tensors`] cheap. Legacy WTC1 files decode
//! transparently. [`CachedStore`] adds a byte-budgeted in-memory cache for
//! hot provider checkpoints.

pub mod async_store;
pub mod cache;
pub mod compress;
pub mod format;
pub mod index;
pub mod store;

pub use async_store::AsyncStore;
pub use cache::CachedStore;
pub use compress::QuantizedStore;
pub use format::{
    decode, decode_tensors, encode, encode_to, encode_v1, encoded_len, parse_index,
    tensor_from_payload, FormatError,
};
pub use index::{CheckpointIndex, TensorMeta};
pub use store::{prune_except, CheckpointStore, DirStore, MemStore, RawCheckpointStore};
