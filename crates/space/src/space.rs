//! Search spaces: variable nodes, sampling, mutation and materialisation.

use crate::arch::ArchSeq;
use swt_data::AppKind;
use swt_nn::{LayerSpec, ModelSpec, SpecError};
use swt_tensor::Rng;

/// A variable node: an ordered set of layer choices (Section II). The
/// architecture sequence stores the chosen index per node.
#[derive(Debug, Clone, PartialEq)]
pub struct VariableNode {
    /// Human-readable node name (e.g. `block0/conv0`).
    pub name: String,
    /// The candidate operations.
    pub choices: Vec<LayerSpec>,
}

impl VariableNode {
    pub fn new(name: impl Into<String>, choices: Vec<LayerSpec>) -> Self {
        assert!(!choices.is_empty(), "variable node needs at least one choice");
        VariableNode { name: name.into(), choices }
    }

    /// Number of choices.
    pub fn arity(&self) -> usize {
        self.choices.len()
    }
}

/// How many rejection-sampling attempts before giving up. Invalid candidates
/// (e.g. pooling a feature map below its window) are possible in every
/// template, like in DeepHyper; valid ones are plentiful, so this bound is
/// never reached in practice.
const MAX_ATTEMPTS: usize = 10_000;

/// A search space: an application template plus its variable nodes.
///
/// The skeleton (inputs, fixed layers, output head) is defined per
/// application in [`crate::apps`]; this type owns the generic machinery —
/// sampling, mutation, size accounting and materialisation.
///
/// ```
/// use swt_space::{distance, SearchSpace};
/// use swt_data::AppKind;
/// use swt_tensor::Rng;
///
/// let space = SearchSpace::for_app(AppKind::Uno);
/// let mut rng = Rng::seed(7);
/// let parent = space.sample(&mut rng);          // a valid random candidate
/// let child = space.mutate(&parent, &mut rng);  // exactly one node changed
/// assert_eq!(distance(&parent, &child), 1);
/// let spec = space.materialize(&child).unwrap();
/// assert!(spec.param_count().unwrap() > 0);
/// ```
#[derive(Debug, Clone)]
pub struct SearchSpace {
    kind: AppKind,
    nodes: Vec<VariableNode>,
}

impl SearchSpace {
    /// Build the paper's search space for an application (Section VII-A,
    /// scaled per DESIGN.md §5).
    pub fn for_app(kind: AppKind) -> SearchSpace {
        SearchSpace { kind, nodes: crate::apps::variable_nodes(kind) }
    }

    /// The application this space belongs to.
    pub fn kind(&self) -> AppKind {
        self.kind
    }

    /// The variable nodes, in architecture-sequence order.
    pub fn nodes(&self) -> &[VariableNode] {
        &self.nodes
    }

    /// Number of variable nodes (`#VNs` in Table I).
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Total number of candidate models (valid or not), as `f64` because the
    /// paper's spaces overflow u64 ("2558T models").
    pub fn size(&self) -> f64 {
        self.nodes.iter().map(|n| n.arity() as f64).product()
    }

    /// The operations selected by an architecture sequence.
    ///
    /// # Panics
    /// Panics if the sequence length or any index is out of range.
    pub fn ops(&self, seq: &ArchSeq) -> Vec<&LayerSpec> {
        assert_eq!(seq.len(), self.nodes.len(), "sequence/space length mismatch");
        self.nodes
            .iter()
            .zip(seq.choices())
            .map(|(node, &c)| {
                assert!(
                    (c as usize) < node.arity(),
                    "choice {c} out of range for node {}",
                    node.name
                );
                &node.choices[c as usize]
            })
            .collect()
    }

    /// Materialise a sequence into a model spec (the fixed skeleton with the
    /// chosen operations spliced in). Fails for structurally invalid
    /// candidates.
    pub fn materialize(&self, seq: &ArchSeq) -> Result<ModelSpec, SpecError> {
        crate::apps::assemble(self.kind, &self.ops(seq))
    }

    /// True iff the sequence materialises into a valid model.
    pub fn is_valid(&self, seq: &ArchSeq) -> bool {
        self.materialize(seq).is_ok()
    }

    /// A uniformly random sequence, not necessarily valid.
    pub fn random_seq(&self, rng: &mut Rng) -> ArchSeq {
        ArchSeq::new(self.nodes.iter().map(|n| rng.below(n.arity()) as u16).collect())
    }

    /// A uniformly random *valid* candidate (rejection sampling, like
    /// DeepHyper's sampler discarding broken graphs).
    pub fn sample(&self, rng: &mut Rng) -> ArchSeq {
        for _ in 0..MAX_ATTEMPTS {
            let seq = self.random_seq(rng);
            if self.is_valid(&seq) {
                return seq;
            }
        }
        panic!("no valid candidate found in {MAX_ATTEMPTS} attempts — degenerate space?");
    }

    /// Mutate exactly one variable node to a *different* choice, retrying
    /// until the child is valid. By construction `d(parent, child) = 1`
    /// (Algorithm 1, line 8).
    ///
    /// # Panics
    /// Panics if every node is single-choice (no mutation possible).
    pub fn mutate(&self, parent: &ArchSeq, rng: &mut Rng) -> ArchSeq {
        assert_eq!(parent.len(), self.nodes.len());
        assert!(self.nodes.iter().any(|n| n.arity() > 1), "space has no mutable node");
        for _ in 0..MAX_ATTEMPTS {
            let node = rng.below(self.nodes.len());
            let arity = self.nodes[node].arity();
            if arity < 2 {
                continue;
            }
            // Pick a different choice uniformly.
            let current = parent.get(node) as usize;
            let mut pick = rng.below(arity - 1);
            if pick >= current {
                pick += 1;
            }
            let child = parent.with_choice(node, pick as u16);
            if self.is_valid(&child) {
                return child;
            }
        }
        panic!("no valid mutation found in {MAX_ATTEMPTS} attempts");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arch::distance;
    use swt_data::AppKind;

    #[test]
    fn all_spaces_sample_valid_models() {
        let mut rng = Rng::seed(1);
        for kind in AppKind::all() {
            let space = SearchSpace::for_app(kind);
            assert!(space.num_nodes() > 0);
            assert!(space.size() > 1e5, "{} space too small: {}", kind.name(), space.size());
            for _ in 0..10 {
                let seq = space.sample(&mut rng);
                assert_eq!(seq.len(), space.num_nodes());
                let spec = space.materialize(&seq).expect("sampled candidate must be valid");
                // And it must build + declare parameters.
                assert!(spec.param_count().unwrap() > 0, "{}", kind.name());
            }
        }
    }

    #[test]
    fn mutation_has_distance_one() {
        let mut rng = Rng::seed(2);
        for kind in AppKind::all() {
            let space = SearchSpace::for_app(kind);
            let parent = space.sample(&mut rng);
            for _ in 0..20 {
                let child = space.mutate(&parent, &mut rng);
                assert_eq!(distance(&parent, &child), 1, "{}", kind.name());
                assert!(space.is_valid(&child));
            }
        }
    }

    #[test]
    fn sampling_is_seed_deterministic() {
        let space = SearchSpace::for_app(AppKind::Mnist);
        let mut r1 = Rng::seed(7);
        let mut r2 = Rng::seed(7);
        for _ in 0..5 {
            assert_eq!(space.sample(&mut r1), space.sample(&mut r2));
        }
    }

    #[test]
    fn sampling_reaches_distinct_candidates() {
        let space = SearchSpace::for_app(AppKind::Uno);
        let mut rng = Rng::seed(3);
        let seqs: std::collections::HashSet<ArchSeq> =
            (0..50).map(|_| space.sample(&mut rng)).collect();
        assert!(seqs.len() > 40, "only {} distinct candidates in 50 draws", seqs.len());
    }

    #[test]
    fn ops_selects_choices() {
        let space = SearchSpace::for_app(AppKind::Uno);
        let seq = ArchSeq::new(vec![0; space.num_nodes()]);
        let ops = space.ops(&seq);
        assert_eq!(ops.len(), space.num_nodes());
        for (node, op) in space.nodes().iter().zip(&ops) {
            assert_eq!(&&node.choices[0], op);
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn ops_rejects_bad_choice_index() {
        let space = SearchSpace::for_app(AppKind::Uno);
        let mut v = vec![0u16; space.num_nodes()];
        v[0] = 200;
        space.ops(&ArchSeq::new(v));
    }
}
