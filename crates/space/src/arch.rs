//! Architecture sequences and the similarity distance `d`.

use std::fmt;

/// An architecture sequence: one choice index per variable node, uniquely
/// identifying a candidate model within its search space (Section II).
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ArchSeq(Vec<u16>);

impl ArchSeq {
    /// Wrap a vector of choice indices.
    pub fn new(choices: Vec<u16>) -> Self {
        ArchSeq(choices)
    }

    /// The choice indices.
    pub fn choices(&self) -> &[u16] {
        &self.0
    }

    /// Number of variable nodes.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// True iff there are no variable nodes.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Choice index of node `i`.
    pub fn get(&self, i: usize) -> u16 {
        self.0[i]
    }

    /// Copy with node `i` set to `choice`.
    pub fn with_choice(&self, i: usize, choice: u16) -> ArchSeq {
        let mut v = self.0.clone();
        v[i] = choice;
        ArchSeq(v)
    }

    /// Compact `1-2-0-2` encoding used in trace files.
    pub fn encode(&self) -> String {
        self.0.iter().map(|c| c.to_string()).collect::<Vec<_>>().join("-")
    }

    /// Parse the [`ArchSeq::encode`] format.
    pub fn decode(s: &str) -> Option<ArchSeq> {
        if s.is_empty() {
            return Some(ArchSeq(Vec::new()));
        }
        s.split('-').map(|part| part.parse::<u16>().ok()).collect::<Option<Vec<_>>>().map(ArchSeq)
    }
}

impl fmt::Display for ArchSeq {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, c) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{c}")?;
        }
        write!(f, "]")
    }
}

/// The paper's similarity distance: the number of variable nodes whose
/// choices differ (`d = Σ arch_seq_A ⊕ arch_seq_B`, Section V-A).
///
/// # Panics
/// Panics if the sequences come from different spaces (different lengths).
pub fn distance(a: &ArchSeq, b: &ArchSeq) -> usize {
    assert_eq!(a.len(), b.len(), "distance requires sequences from the same search space");
    a.choices().iter().zip(b.choices()).filter(|(x, y)| x != y).count()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_example() {
        // d = 1 for [1,2,3] vs [0,2,3] (Section V-A).
        let a = ArchSeq::new(vec![1, 2, 3]);
        let b = ArchSeq::new(vec![0, 2, 3]);
        assert_eq!(distance(&a, &b), 1);
        assert_eq!(distance(&a, &a), 0);
    }

    #[test]
    fn distance_is_symmetric_and_bounded() {
        let a = ArchSeq::new(vec![1, 0, 4, 2, 2]);
        let b = ArchSeq::new(vec![0, 0, 4, 1, 3]);
        assert_eq!(distance(&a, &b), distance(&b, &a));
        assert!(distance(&a, &b) <= a.len());
        assert_eq!(distance(&a, &b), 3);
    }

    #[test]
    #[should_panic(expected = "same search space")]
    fn different_lengths_panic() {
        distance(&ArchSeq::new(vec![1]), &ArchSeq::new(vec![1, 2]));
    }

    #[test]
    fn encode_decode_round_trip() {
        let a = ArchSeq::new(vec![1, 12, 0, 7]);
        assert_eq!(a.encode(), "1-12-0-7");
        assert_eq!(ArchSeq::decode("1-12-0-7").unwrap(), a);
        assert_eq!(ArchSeq::decode(&a.encode()).unwrap(), a);
        assert!(ArchSeq::decode("1-x-2").is_none());
    }

    #[test]
    fn with_choice_changes_one_slot() {
        let a = ArchSeq::new(vec![1, 2, 3]);
        let b = a.with_choice(1, 9);
        assert_eq!(b.choices(), &[1, 9, 3]);
        assert_eq!(distance(&a, &b), 1);
    }

    #[test]
    fn display_matches_paper_notation() {
        assert_eq!(ArchSeq::new(vec![1, 2, 0, 2]).to_string(), "[1, 2, 0, 2]");
    }
}
