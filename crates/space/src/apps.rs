//! The four application search-space templates (Section VII-A).
//!
//! Each template defines (a) the ordered variable nodes with their choice
//! lists and (b) the fixed skeleton the chosen operations are spliced into.
//! Dimensions are scaled relative to the paper (DESIGN.md §5) but every
//! structural property the weight-transfer study relies on is preserved:
//! choice *kinds* per node, node ordering, VGG-block repetition for
//! CIFAR-10, the LeNet-5 layout for MNIST, 1-D convolution for NT3, and
//! Uno's three input towers concatenated with a fourth raw source.

use crate::space::VariableNode;
use swt_data::AppKind;
use swt_nn::{Activation, LayerSpec, ModelSpec, NodeSpec, SpecError};
use swt_tensor::Padding;

/// The ordered variable nodes of an application's search space.
pub fn variable_nodes(kind: AppKind) -> Vec<VariableNode> {
    match kind {
        AppKind::Cifar10 => cifar_nodes(),
        AppKind::Mnist => mnist_nodes(),
        AppKind::Nt3 => nt3_nodes(),
        AppKind::Uno => uno_nodes(),
    }
}

/// Splice chosen operations into the application skeleton.
pub fn assemble(kind: AppKind, ops: &[&LayerSpec]) -> Result<ModelSpec, SpecError> {
    match kind {
        AppKind::Cifar10 => assemble_cifar(ops),
        AppKind::Mnist => assemble_mnist(ops),
        AppKind::Nt3 => assemble_nt3(ops),
        AppKind::Uno => assemble_uno(ops),
    }
}

// ---------------------------------------------------------------------------
// Choice lists
// ---------------------------------------------------------------------------

/// CIFAR "Convolution" node: filters × padding × optional L2 regularizer
/// (paper: "varies the number of filters, 'valid' or 'same' paddings, and
/// whether it has a kernel regularizer (L2 with 0.0005 weight decay)").
fn cifar_conv_choices() -> Vec<LayerSpec> {
    let mut v = Vec::new();
    for &filters in &[8usize, 16, 24] {
        for &padding in &[Padding::Same, Padding::Valid] {
            for &l2 in &[0.0f32, 5e-4] {
                v.push(LayerSpec::Conv2D { filters, kernel: 3, padding, l2 });
            }
        }
    }
    v
}

/// CIFAR "Pooling" node: identity or pooling with different sizes/strides.
fn cifar_pool_choices() -> Vec<LayerSpec> {
    vec![
        LayerSpec::Identity,
        LayerSpec::MaxPool2D { size: 2, stride: 2 },
        LayerSpec::MaxPool2D { size: 3, stride: 2 },
    ]
}

/// CIFAR "BatchNorm" node: apply or not.
fn cifar_bn_choices() -> Vec<LayerSpec> {
    vec![LayerSpec::Identity, LayerSpec::BatchNorm]
}

/// CIFAR "Dense" node after the blocks.
fn cifar_dense_choices() -> Vec<LayerSpec> {
    vec![
        LayerSpec::Identity,
        LayerSpec::Dense { units: 32, activation: Some(Activation::Relu) },
        LayerSpec::Dense { units: 64, activation: Some(Activation::Relu) },
        LayerSpec::Dense { units: 128, activation: Some(Activation::Relu) },
    ]
}

fn cifar_nodes() -> Vec<VariableNode> {
    let mut nodes = Vec::new();
    for block in 0..2 {
        for rep in 0..2 {
            nodes.push(VariableNode::new(format!("b{block}/conv{rep}"), cifar_conv_choices()));
            nodes.push(VariableNode::new(format!("b{block}/pool{rep}"), cifar_pool_choices()));
            nodes.push(VariableNode::new(format!("b{block}/bn{rep}"), cifar_bn_choices()));
        }
    }
    for d in 0..3 {
        nodes.push(VariableNode::new(format!("dense{d}"), cifar_dense_choices()));
    }
    nodes
}

/// MNIST "Convolution" node: filter count × kernel size × padding.
fn mnist_conv_choices() -> Vec<LayerSpec> {
    let mut v = Vec::new();
    for &filters in &[4usize, 8, 12, 16] {
        for &kernel in &[3usize, 5] {
            for &padding in &[Padding::Valid, Padding::Same] {
                v.push(LayerSpec::Conv2D { filters, kernel, padding, l2: 0.0 });
            }
        }
    }
    v
}

/// "Activation" node: relu / tanh / sigmoid (paper).
fn act_choices() -> Vec<LayerSpec> {
    vec![
        LayerSpec::Activation(Activation::Relu),
        LayerSpec::Activation(Activation::Tanh),
        LayerSpec::Activation(Activation::Sigmoid),
    ]
}

/// MNIST "Pooling" node: identity or pooling with sizes/strides 2..5.
fn mnist_pool_choices() -> Vec<LayerSpec> {
    vec![
        LayerSpec::Identity,
        LayerSpec::MaxPool2D { size: 2, stride: 2 },
        LayerSpec::MaxPool2D { size: 3, stride: 2 },
        LayerSpec::MaxPool2D { size: 3, stride: 3 },
        LayerSpec::MaxPool2D { size: 4, stride: 4 },
        LayerSpec::MaxPool2D { size: 5, stride: 5 },
    ]
}

/// MNIST "Dense" node: identity or widths 32..512 (paper), activation
/// supplied by the following Activation node.
fn mnist_dense_choices() -> Vec<LayerSpec> {
    vec![
        LayerSpec::Identity,
        LayerSpec::Dense { units: 32, activation: None },
        LayerSpec::Dense { units: 64, activation: None },
        LayerSpec::Dense { units: 128, activation: None },
        LayerSpec::Dense { units: 256, activation: None },
        LayerSpec::Dense { units: 512, activation: None },
    ]
}

/// "Dropout" node: identity or 2%..50% (paper).
fn dropout_choices() -> Vec<LayerSpec> {
    vec![
        LayerSpec::Identity,
        LayerSpec::Dropout { rate: 0.02 },
        LayerSpec::Dropout { rate: 0.05 },
        LayerSpec::Dropout { rate: 0.10 },
        LayerSpec::Dropout { rate: 0.20 },
        LayerSpec::Dropout { rate: 0.30 },
        LayerSpec::Dropout { rate: 0.40 },
        LayerSpec::Dropout { rate: 0.50 },
    ]
}

/// MNIST variable-node order (paper): Convolution, Activation, Pooling,
/// Convolution, Activation, Pooling, Dense, Activation, Dense, Activation,
/// Dropout — 11 nodes.
fn mnist_nodes() -> Vec<VariableNode> {
    vec![
        VariableNode::new("conv0", mnist_conv_choices()),
        VariableNode::new("act0", act_choices()),
        VariableNode::new("pool0", mnist_pool_choices()),
        VariableNode::new("conv1", mnist_conv_choices()),
        VariableNode::new("act1", act_choices()),
        VariableNode::new("pool1", mnist_pool_choices()),
        VariableNode::new("dense0", mnist_dense_choices()),
        VariableNode::new("act2", act_choices()),
        VariableNode::new("dense1", mnist_dense_choices()),
        VariableNode::new("act3", act_choices()),
        VariableNode::new("drop0", dropout_choices()),
    ]
}

/// NT3 "Convolution" node: 1-D, filters × kernel × padding.
fn nt3_conv_choices() -> Vec<LayerSpec> {
    let mut v = Vec::new();
    for &filters in &[4usize, 8, 16] {
        for &kernel in &[3usize, 5, 7] {
            for &padding in &[Padding::Valid, Padding::Same] {
                v.push(LayerSpec::Conv1D { filters, kernel, padding, l2: 0.0 });
            }
        }
    }
    v
}

fn nt3_pool_choices() -> Vec<LayerSpec> {
    vec![
        LayerSpec::Identity,
        LayerSpec::MaxPool1D { size: 2, stride: 2 },
        LayerSpec::MaxPool1D { size: 3, stride: 3 },
        LayerSpec::MaxPool1D { size: 4, stride: 4 },
        LayerSpec::MaxPool1D { size: 5, stride: 5 },
    ]
}

fn nt3_dense_choices() -> Vec<LayerSpec> {
    vec![
        LayerSpec::Identity,
        LayerSpec::Dense { units: 32, activation: None },
        LayerSpec::Dense { units: 64, activation: None },
        LayerSpec::Dense { units: 128, activation: None },
        LayerSpec::Dense { units: 256, activation: None },
    ]
}

/// NT3 variable-node order (paper): Convolution, Activation, Pooling, Dense,
/// Activation, Dropout, Dense, Activation — with 1-D convolution for the
/// gene-sequence data.
fn nt3_nodes() -> Vec<VariableNode> {
    vec![
        VariableNode::new("conv0", nt3_conv_choices()),
        VariableNode::new("act0", act_choices()),
        VariableNode::new("pool0", nt3_pool_choices()),
        VariableNode::new("dense0", nt3_dense_choices()),
        VariableNode::new("act1", act_choices()),
        VariableNode::new("drop0", dropout_choices()),
        VariableNode::new("dense1", nt3_dense_choices()),
        VariableNode::new("act2", act_choices()),
    ]
}

/// Uno's mixed node (paper): "Identity, a dense layer with 100, 500, or
/// 1,000 neurons, or a dropout layer with 30%, 40%, and 50% dropout
/// connections" — widths scaled to 32/64/128.
fn uno_mixed_choices() -> Vec<LayerSpec> {
    vec![
        LayerSpec::Identity,
        LayerSpec::Dense { units: 32, activation: Some(Activation::Relu) },
        LayerSpec::Dense { units: 64, activation: Some(Activation::Relu) },
        LayerSpec::Dense { units: 128, activation: Some(Activation::Relu) },
        LayerSpec::Dropout { rate: 0.30 },
        LayerSpec::Dropout { rate: 0.40 },
        LayerSpec::Dropout { rate: 0.50 },
    ]
}

/// Uno: three towers of three nodes (one per wide input source) plus a
/// four-node bottom network — 13 variable nodes, all with the same choices
/// (the paper highlights this when explaining why LP suits Uno).
fn uno_nodes() -> Vec<VariableNode> {
    let mut nodes = Vec::new();
    for tower in 0..3 {
        for level in 0..3 {
            nodes.push(VariableNode::new(format!("t{tower}/v{level}"), uno_mixed_choices()));
        }
    }
    for level in 0..4 {
        nodes.push(VariableNode::new(format!("bottom/v{level}"), uno_mixed_choices()));
    }
    nodes
}

// ---------------------------------------------------------------------------
// Skeleton assembly
// ---------------------------------------------------------------------------

/// Incrementally build a linear chain of nodes.
struct ChainBuilder {
    nodes: Vec<NodeSpec>,
    last: usize,
}

impl ChainBuilder {
    fn input(shape: Vec<usize>) -> Self {
        ChainBuilder { nodes: vec![NodeSpec::Input { shape }], last: 0 }
    }

    fn push(&mut self, op: LayerSpec) -> &mut Self {
        self.nodes.push(NodeSpec::Layer { op, inputs: vec![self.last] });
        self.last = self.nodes.len() - 1;
        self
    }

    fn finish(self) -> Result<ModelSpec, SpecError> {
        let out = self.last;
        ModelSpec::new(self.nodes, out)
    }
}

fn expect_ops(ops: &[&LayerSpec], n: usize, app: &str) {
    assert_eq!(ops.len(), n, "{app} expects {n} chosen operations, got {}", ops.len());
}

fn assemble_cifar(ops: &[&LayerSpec]) -> Result<ModelSpec, SpecError> {
    expect_ops(ops, 15, "CIFAR-10");
    let shapes = AppKind::Cifar10.input_shapes();
    let mut b = ChainBuilder::input(shapes[0].clone());
    let mut it = ops.iter();
    for _block in 0..2 {
        for _rep in 0..2 {
            b.push((*it.next().unwrap()).clone()); // conv VN
            b.push(LayerSpec::Activation(Activation::Relu)); // fixed VGG relu
            b.push((*it.next().unwrap()).clone()); // pool VN
            b.push((*it.next().unwrap()).clone()); // batchnorm VN
        }
    }
    b.push(LayerSpec::Flatten);
    for _ in 0..3 {
        b.push((*it.next().unwrap()).clone()); // dense VN
    }
    b.push(LayerSpec::Dense { units: AppKind::Cifar10.output_width(), activation: None });
    b.finish()
}

fn assemble_mnist(ops: &[&LayerSpec]) -> Result<ModelSpec, SpecError> {
    expect_ops(ops, 11, "MNIST");
    let shapes = AppKind::Mnist.input_shapes();
    let mut b = ChainBuilder::input(shapes[0].clone());
    // conv0, act0, pool0, conv1, act1, pool1
    for op in &ops[0..6] {
        b.push((*op).clone());
    }
    b.push(LayerSpec::Flatten);
    // dense0, act2, dense1, act3, drop0
    for op in &ops[6..11] {
        b.push((*op).clone());
    }
    b.push(LayerSpec::Dense { units: AppKind::Mnist.output_width(), activation: None });
    b.finish()
}

fn assemble_nt3(ops: &[&LayerSpec]) -> Result<ModelSpec, SpecError> {
    expect_ops(ops, 8, "NT3");
    let shapes = AppKind::Nt3.input_shapes();
    let mut b = ChainBuilder::input(shapes[0].clone());
    // conv0, act0, pool0
    for op in &ops[0..3] {
        b.push((*op).clone());
    }
    b.push(LayerSpec::Flatten);
    // dense0, act1, drop0, dense1, act2
    for op in &ops[3..8] {
        b.push((*op).clone());
    }
    b.push(LayerSpec::Dense { units: AppKind::Nt3.output_width(), activation: None });
    b.finish()
}

fn assemble_uno(ops: &[&LayerSpec]) -> Result<ModelSpec, SpecError> {
    expect_ops(ops, 13, "Uno");
    let shapes = AppKind::Uno.input_shapes();
    let mut nodes: Vec<NodeSpec> =
        shapes.iter().map(|s| NodeSpec::Input { shape: s.clone() }).collect();
    // Towers over the three wide sources (inputs 1..=3); input 0 is the raw
    // scalar source concatenated at the fusion point.
    let mut tower_outputs = Vec::with_capacity(3);
    let mut op_iter = ops.iter();
    for tower in 0..3 {
        let mut last = tower + 1;
        for _level in 0..3 {
            let op = (*op_iter.next().unwrap()).clone();
            nodes.push(NodeSpec::Layer { op, inputs: vec![last] });
            last = nodes.len() - 1;
        }
        tower_outputs.push(last);
    }
    let mut concat_inputs = tower_outputs;
    concat_inputs.push(0);
    nodes.push(NodeSpec::Layer { op: LayerSpec::Concat, inputs: concat_inputs });
    let mut last = nodes.len() - 1;
    for _level in 0..4 {
        let op = (*op_iter.next().unwrap()).clone();
        nodes.push(NodeSpec::Layer { op, inputs: vec![last] });
        last = nodes.len() - 1;
    }
    nodes.push(NodeSpec::Layer {
        op: LayerSpec::Dense { units: AppKind::Uno.output_width(), activation: None },
        inputs: vec![last],
    });
    let out = nodes.len() - 1;
    ModelSpec::new(nodes, out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arch::ArchSeq;
    use crate::space::SearchSpace;
    use swt_tensor::Rng;

    #[test]
    fn node_counts_match_templates() {
        assert_eq!(variable_nodes(AppKind::Cifar10).len(), 15);
        assert_eq!(variable_nodes(AppKind::Mnist).len(), 11);
        assert_eq!(variable_nodes(AppKind::Nt3).len(), 8);
        assert_eq!(variable_nodes(AppKind::Uno).len(), 13);
    }

    #[test]
    fn uno_nodes_share_one_choice_set() {
        // Section VIII-C: "the variable nodes of Uno choose the same set of
        // operations" — the structural fact behind LP's strength on Uno.
        let nodes = variable_nodes(AppKind::Uno);
        for n in &nodes {
            assert_eq!(n.choices, nodes[0].choices);
        }
    }

    #[test]
    fn cifar_and_nt3_nodes_differ_across_positions() {
        // By contrast CIFAR-10/NT3 mix heterogeneous choice sets.
        let cifar = variable_nodes(AppKind::Cifar10);
        assert_ne!(cifar[0].choices, cifar[1].choices);
        let nt3 = variable_nodes(AppKind::Nt3);
        assert_ne!(nt3[0].choices, nt3[2].choices);
    }

    #[test]
    fn all_zero_sequence_materialises() {
        for kind in AppKind::all() {
            let space = SearchSpace::for_app(kind);
            let seq = ArchSeq::new(vec![0; space.num_nodes()]);
            // Choice 0 is Identity/smallest everywhere except conv nodes,
            // which have no identity; all-zeros must still be a valid model.
            let spec = space
                .materialize(&seq)
                .unwrap_or_else(|e| panic!("{}: all-zero candidate invalid: {e}", kind.name()));
            let shape = spec.output_shape().unwrap();
            assert_eq!(shape.dims(), &[kind.output_width()], "{}", kind.name());
        }
    }

    #[test]
    fn models_end_in_task_head() {
        let mut rng = Rng::seed(5);
        for kind in AppKind::all() {
            let space = SearchSpace::for_app(kind);
            for _ in 0..5 {
                let seq = space.sample(&mut rng);
                let spec = space.materialize(&seq).unwrap();
                assert_eq!(
                    spec.output_shape().unwrap().dims(),
                    &[kind.output_width()],
                    "{}",
                    kind.name()
                );
            }
        }
    }

    #[test]
    fn uno_uses_all_four_inputs() {
        let space = SearchSpace::for_app(AppKind::Uno);
        let seq = ArchSeq::new(vec![0; 13]);
        let spec = space.materialize(&seq).unwrap();
        assert_eq!(spec.input_nodes().len(), 4);
    }

    #[test]
    fn space_sizes_are_large() {
        // Table I analog: sizes must be search-worthy (way beyond what a
        // 400-candidate run can enumerate).
        for kind in AppKind::all() {
            let space = SearchSpace::for_app(kind);
            assert!(space.size() > 1e5, "{}: {}", kind.name(), space.size());
        }
        // And CIFAR must be the largest, as in the paper's Table I ordering.
        let sizes: Vec<f64> =
            AppKind::all().iter().map(|&k| SearchSpace::for_app(k).size()).collect();
        assert!(sizes[0] > sizes[2], "CIFAR larger than NT3");
    }

    #[test]
    fn invalid_pool_stacks_are_rejected_not_panicking() {
        // Force MNIST's most aggressive pooling twice with valid convs: the
        // materialisation must return Err, not panic.
        let space = SearchSpace::for_app(AppKind::Mnist);
        // conv choice 0 (k3 valid) shrinks 10 -> 8; pool (5,5) -> 1; second
        // pool (5,5) on 1 is invalid.
        let seq = ArchSeq::new(vec![0, 0, 5, 0, 0, 5, 0, 0, 0, 0, 0]);
        assert!(space.materialize(&seq).is_err());
        assert!(!space.is_valid(&seq));
    }
}
