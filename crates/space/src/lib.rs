//! NAS search spaces: variable nodes, architecture sequences and the four
//! application templates of the paper's evaluation (Section VII-A).
//!
//! A search space is a fixed skeleton plus an ordered list of *variable
//! nodes*, each offering a set of layer choices. Fixing every node's choice
//! yields an *architecture sequence* — the paper's `[1, 2, 0, 2]` notation —
//! which materialises into a `swt_nn::ModelSpec`. The similarity distance
//! `d` between two candidates is the Hamming distance between their
//! architecture sequences (Section V-A), and mutation changes exactly one
//! node, so an evolution child always has `d = 1` to its parent.

pub mod apps;
pub mod arch;
pub mod space;

pub use arch::{distance, ArchSeq};
pub use space::{SearchSpace, VariableNode};
