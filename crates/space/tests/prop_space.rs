//! Property-style tests over the search spaces, as seeded randomized sweeps
//! (the container builds fully offline, so no proptest).

use swt_data::AppKind;
use swt_space::{distance, ArchSeq, SearchSpace};
use swt_tensor::Rng;

const APPS: [AppKind; 4] = [AppKind::Cifar10, AppKind::Mnist, AppKind::Nt3, AppKind::Uno];

#[test]
fn sampled_candidates_always_materialise() {
    let mut rng = Rng::seed(0x5A3);
    for case in 0..32 {
        let app = APPS[rng.below(APPS.len())];
        let space = SearchSpace::for_app(app);
        let mut sample_rng = Rng::seed(rng.next_u64());
        let seq = space.sample(&mut sample_rng);
        assert_eq!(seq.len(), space.num_nodes(), "case {case} ({app:?})");
        let spec = space.materialize(&seq);
        assert!(spec.is_ok(), "case {case} ({app:?})");
        // Output head is the task head.
        let spec = spec.unwrap();
        let out_shape = spec.output_shape().unwrap();
        assert_eq!(out_shape.dims(), &[app.output_width()][..], "case {case} ({app:?})");
    }
}

#[test]
fn mutation_is_always_distance_one_and_valid() {
    let mut rng = Rng::seed(0x307);
    for case in 0..32 {
        let app = APPS[rng.below(APPS.len())];
        let space = SearchSpace::for_app(app);
        let mut walk_rng = Rng::seed(rng.next_u64());
        let parent = space.sample(&mut walk_rng);
        let child = space.mutate(&parent, &mut walk_rng);
        assert_eq!(distance(&parent, &child), 1, "case {case} ({app:?})");
        assert!(space.is_valid(&child), "case {case} ({app:?})");
        // The changed node's new choice is within its arity.
        for (i, (p, c)) in parent.choices().iter().zip(child.choices()).enumerate() {
            if p != c {
                assert!((*c as usize) < space.nodes()[i].arity(), "case {case} node {i}");
            }
        }
    }
}

#[test]
fn distance_is_a_metric_on_samples() {
    let mut rng = Rng::seed(0xD15);
    for case in 0..32 {
        let app = APPS[rng.below(APPS.len())];
        let space = SearchSpace::for_app(app);
        let mut sample_rng = Rng::seed(rng.next_u64());
        let a = space.sample(&mut sample_rng);
        let b = space.sample(&mut sample_rng);
        let c = space.sample(&mut sample_rng);
        assert_eq!(distance(&a, &a), 0, "case {case}");
        assert_eq!(distance(&a, &b), distance(&b, &a), "case {case}");
        // Triangle inequality for Hamming distance.
        assert!(distance(&a, &c) <= distance(&a, &b) + distance(&b, &c), "case {case}");
    }
}

#[test]
fn arch_seq_codec_round_trips() {
    let mut rng = Rng::seed(0xC0D);
    for case in 0..100 {
        let len = rng.below(24);
        let choices: Vec<u16> = (0..len).map(|_| rng.below(32) as u16).collect();
        let seq = ArchSeq::new(choices);
        assert_eq!(ArchSeq::decode(&seq.encode()), Some(seq), "case {case}");
    }
}

#[test]
fn param_shapes_align_with_built_models() {
    // The load-bearing invariant of the whole transfer pipeline: the
    // declarative shape sequence matches the built model's parameters.
    let mut rng = Rng::seed(0xA11);
    for case in 0..32 {
        let app = APPS[rng.below(APPS.len())];
        let space = SearchSpace::for_app(app);
        let mut sample_rng = Rng::seed(rng.next_u64());
        let spec = space.materialize(&space.sample(&mut sample_rng)).unwrap();
        let declared = spec.param_shapes().unwrap();
        let model = swt_nn::Model::build(&spec, 1).unwrap();
        let built = model.named_params();
        assert_eq!(declared.len(), built.len(), "case {case} ({app:?})");
        for ((dn, ds), (bn, bt)) in declared.iter().zip(built.iter()) {
            assert_eq!(dn, bn, "case {case} ({app:?})");
            assert_eq!(ds, bt.shape(), "case {case} ({app:?})");
        }
    }
}
