//! Property-based tests over the search spaces.

use proptest::prelude::*;
use swt_data::AppKind;
use swt_space::{distance, ArchSeq, SearchSpace};
use swt_tensor::Rng;

fn any_app() -> impl Strategy<Value = AppKind> {
    prop::sample::select(vec![AppKind::Cifar10, AppKind::Mnist, AppKind::Nt3, AppKind::Uno])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn sampled_candidates_always_materialise(app in any_app(), seed in any::<u64>()) {
        let space = SearchSpace::for_app(app);
        let mut rng = Rng::seed(seed);
        let seq = space.sample(&mut rng);
        prop_assert_eq!(seq.len(), space.num_nodes());
        let spec = space.materialize(&seq);
        prop_assert!(spec.is_ok());
        // Output head is the task head.
        let spec = spec.unwrap();
        let out_shape = spec.output_shape().unwrap();
        prop_assert_eq!(out_shape.dims(), &[app.output_width()][..]);
    }

    #[test]
    fn mutation_is_always_distance_one_and_valid(app in any_app(), seed in any::<u64>()) {
        let space = SearchSpace::for_app(app);
        let mut rng = Rng::seed(seed);
        let parent = space.sample(&mut rng);
        let child = space.mutate(&parent, &mut rng);
        prop_assert_eq!(distance(&parent, &child), 1);
        prop_assert!(space.is_valid(&child));
        // The changed node's new choice is within its arity.
        for (i, (p, c)) in parent.choices().iter().zip(child.choices()).enumerate() {
            if p != c {
                prop_assert!((*c as usize) < space.nodes()[i].arity());
            }
        }
    }

    #[test]
    fn distance_is_a_metric_on_samples(app in any_app(), seed in any::<u64>()) {
        let space = SearchSpace::for_app(app);
        let mut rng = Rng::seed(seed);
        let a = space.sample(&mut rng);
        let b = space.sample(&mut rng);
        let c = space.sample(&mut rng);
        prop_assert_eq!(distance(&a, &a), 0);
        prop_assert_eq!(distance(&a, &b), distance(&b, &a));
        // Triangle inequality for Hamming distance.
        prop_assert!(distance(&a, &c) <= distance(&a, &b) + distance(&b, &c));
    }

    #[test]
    fn arch_seq_codec_round_trips(choices in prop::collection::vec(0u16..32, 0..24)) {
        let seq = ArchSeq::new(choices);
        prop_assert_eq!(ArchSeq::decode(&seq.encode()), Some(seq));
    }

    #[test]
    fn param_shapes_align_with_built_models(app in any_app(), seed in any::<u64>()) {
        // The load-bearing invariant of the whole transfer pipeline: the
        // declarative shape sequence matches the built model's parameters.
        let space = SearchSpace::for_app(app);
        let mut rng = Rng::seed(seed);
        let spec = space.materialize(&space.sample(&mut rng)).unwrap();
        let declared = spec.param_shapes().unwrap();
        let model = swt_nn::Model::build(&spec, 1).unwrap();
        let built = model.named_params();
        prop_assert_eq!(declared.len(), built.len());
        for ((dn, ds), (bn, bt)) in declared.iter().zip(built.iter()) {
            prop_assert_eq!(dn, bn);
            prop_assert_eq!(ds, bt.shape());
        }
    }
}
