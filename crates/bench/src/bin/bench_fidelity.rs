//! Multi-fidelity NAS benchmark, emitting `BENCH_fidelity.json`.
//!
//! Usage: `cargo run --release -p swt-bench --bin bench_fidelity [--smoke] [out.json]`
//!
//! Two sections, mirroring the two claims a multi-fidelity pipeline must
//! back up (paper §VIII-D measures exactly this trade for one-epoch
//! estimates):
//!
//! 1. **Rank fidelity** (`fidelity.rank.e{K}`): one fixed random candidate
//!    population evaluated under fidelity-off runs at several epoch budgets.
//!    Kendall tau-b between each cheap ranking and the full-budget ranking
//!    lands in the JSON `meta` (`tau_b_e{K}_vs_e{F}`). A cheap budget is
//!    only admissible as a successive-halving rung if its tau-b clears the
//!    gate — speed bought by shuffling the ranking is not speed.
//! 2. **Pipeline throughput** (`nas.fidelity.*`): the same search once with
//!    fidelity off at the full budget and once with the full pipeline on
//!    (successive halving + zero-cost pre-filter). Both arms examine the
//!    same rung-0 population, so candidates/sec compares directly; the arms
//!    alternate run for run so thermal/scheduler drift hits both equally.
//!
//! In full mode the binary *enforces* the acceptance gates — tau-b at the
//! rung-0 budget >= 0.85 and pipeline speedup >= 2x — and exits nonzero if
//! either fails. `--smoke` shrinks everything to a few seconds for CI
//! gating and only checks that the pipeline actually engaged (pruned and
//! prefiltered candidates exist) and that tau-b is well-formed.

use std::sync::Arc;
use std::time::Instant;
use swt::nas::StrategyKind;
use swt::prelude::*;
use swt_bench::Harness;

fn median(mut ns: Vec<f64>) -> f64 {
    ns.sort_by(|a, b| a.total_cmp(b));
    let mid = ns.len() / 2;
    if ns.len().is_multiple_of(2) {
        (ns[mid - 1] + ns[mid]) / 2.0
    } else {
        ns[mid]
    }
}

/// Rung-0 score per candidate id — the ranking the strategy (and any
/// promotion decision) sees for the initial population.
fn rung0_scores(trace: &NasTrace, n: usize) -> Vec<f64> {
    let mut out = vec![f64::NAN; n];
    for e in &trace.events {
        if e.rung == 0 && (e.id as usize) < n {
            out[e.id as usize] = e.score;
        }
    }
    out
}

fn main() {
    let mut smoke = false;
    let mut out_path = "BENCH_fidelity.json".to_string();
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--smoke" => smoke = true,
            other => out_path = other.to_string(),
        }
    }
    // Fail on an unwritable path now, not after minutes of measurement.
    if let Err(e) = std::fs::write(&out_path, "{}\n") {
        eprintln!("cannot write {out_path}: {e}");
        std::process::exit(1);
    }

    // MNIST-quick is where the learning curves plateau fastest: past ~8
    // epochs the ranking stabilises (adjacent-budget tau-b > 0.85), so a
    // rung-0 budget of 8 against a full budget of 12 is the cheapest cut
    // that is still rank-faithful. Shallower budgets (1-4 epochs) are
    // measured and reported below precisely to show they are *not*
    // admissible — their curves still cross.
    let app = AppKind::Mnist;
    let (candidates, workers, full_epochs, reps) =
        if smoke { (12, 4, 3, 1) } else { (96, 8, 12, 3) };
    let rung0_epochs = if smoke { 1usize } else { 8 };
    let (eta, prefilter) = (4usize, 0.5f64);
    let problem = Arc::new(app.problem(DataScale::Quick, 17));
    let space = Arc::new(SearchSpace::for_app(app));

    // Random strategy: scores never feed back into candidate generation, so
    // every run below draws the *same* population and rankings pair by id.
    let base = |epochs: usize| NasConfig {
        strategy: StrategyKind::Random,
        epochs,
        ..NasConfig::quick(TransferScheme::Lcs, candidates, workers, 9)
    };
    let run = |cfg: &NasConfig| -> (f64, NasTrace) {
        let store: Arc<dyn CheckpointStore> = Arc::new(MemStore::new());
        let t = Instant::now();
        let trace = run_nas(Arc::clone(&problem), Arc::clone(&space), store, cfg);
        (t.elapsed().as_nanos() as f64, trace)
    };

    let mut h = Harness::new();
    let mut meta: Vec<(String, String)> = Vec::new();

    // --- Section 1: rank fidelity of cheap epoch budgets ---
    let mut budgets: Vec<usize> = vec![2, 4, rung0_epochs, full_epochs];
    budgets.retain(|&e| e <= full_epochs);
    budgets.sort_unstable();
    budgets.dedup();
    let mut traces = Vec::new();
    for &e in &budgets {
        let (ns, trace) = run(&base(e));
        h.record(&format!("fidelity.rank.e{e}"), ns, 1);
        traces.push((e, trace));
    }
    let (_, full_trace) = traces.last().expect("at least one budget");
    let full_scores = rung0_scores(full_trace, candidates);
    let mut tau_at_rung0 = f64::NAN;
    for (e, trace) in &traces[..traces.len() - 1] {
        // Same seed + Random strategy must mean the same architectures; a
        // mismatch would silently invalidate every tau below.
        for (a, b) in trace.events.iter().zip(&full_trace.events) {
            assert_eq!(a.arch, b.arch, "populations diverged between budgets");
        }
        let tau = kendall_tau_b(&rung0_scores(trace, candidates), &full_scores);
        println!("tau-b rank({e} epochs) vs rank({full_epochs} epochs): {tau:.4}");
        meta.push((format!("tau_b_e{e}_vs_e{full_epochs}"), format!("{tau:.4}")));
        if *e == rung0_epochs {
            tau_at_rung0 = tau;
        }
    }

    // --- Section 2: pipeline throughput, fidelity off vs on ---
    let off_cfg = base(full_epochs);
    let on_cfg = NasConfig {
        fidelity: FidelityConfig::new(
            eta,
            vec![rung0_epochs, full_epochs],
            prefilter,
            Some(Convergence { window: 3, min_delta: 1e-4 }),
        )
        .expect("bench fidelity knobs are valid"),
        ..base(full_epochs)
    };
    // Warm-up (untimed) passes; keep the on-arm trace to check engagement.
    let _ = run(&off_cfg);
    let (_, on_trace) = run(&on_cfg);
    let (mut off_ns, mut on_ns) = (Vec::new(), Vec::new());
    for rep in 0..reps {
        for (cfg, samples, name) in [(&off_cfg, &mut off_ns, "off"), (&on_cfg, &mut on_ns, "on")] {
            let (ns, _) = run(cfg);
            println!("nas.fidelity rep {}/{reps} fidelity={name}: {:.2}s", rep + 1, ns / 1e9);
            samples.push(ns);
        }
    }
    let count = |s: StopReason| on_trace.events.iter().filter(|e| e.stop == s).count();
    let (pruned, prefiltered, converged) =
        (count(StopReason::Pruned), count(StopReason::Prefiltered), count(StopReason::Converged));
    println!(
        "pipeline stop reasons: {pruned} pruned, {prefiltered} prefiltered, {converged} converged"
    );

    let tag = format!("{}_quick.{candidates}cand_{workers}workers", app.slug());
    let (off, on) = (median(off_ns), median(on_ns));
    h.record(&format!("nas.fidelity.{tag}.fidelity_off"), off, reps);
    h.record(&format!("nas.fidelity.{tag}.fidelity_on"), on, reps);
    let speedup = off / on;
    let cps = |ns: f64| candidates as f64 / (ns / 1e9);
    println!(
        "\nfidelity pipeline: {:.2} -> {:.2} candidates/sec ({speedup:.2}x) at tau-b {tau_at_rung0:.4}",
        cps(off),
        cps(on)
    );
    meta.push(("candidates_per_sec_off".into(), format!("{:.3}", cps(off))));
    meta.push(("candidates_per_sec_on".into(), format!("{:.3}", cps(on))));
    meta.push(("speedup".into(), format!("{speedup:.3}")));
    meta.push(("stopped_pruned".into(), pruned.to_string()));
    meta.push(("stopped_prefiltered".into(), prefiltered.to_string()));
    meta.push(("stopped_converged".into(), converged.to_string()));

    // --- Gates ---
    if smoke {
        // Tiny sizes make the numbers noisy; only require that the pipeline
        // actually engaged and the statistic is well-formed.
        if pruned == 0 || prefiltered == 0 {
            eprintln!("FAIL: smoke run never pruned/prefiltered a candidate");
            std::process::exit(1);
        }
        if !(-1.0..=1.0).contains(&tau_at_rung0) {
            eprintln!("FAIL: tau-b out of range: {tau_at_rung0}");
            std::process::exit(1);
        }
    } else {
        if tau_at_rung0 < 0.85 {
            eprintln!(
                "FAIL: tau-b at the rung-0 budget is {tau_at_rung0:.4} < 0.85 — the cheap \
                 ranking disagrees too much with the full-budget ranking"
            );
            std::process::exit(1);
        }
        if speedup < 2.0 {
            eprintln!("FAIL: pipeline speedup {speedup:.2}x < 2x");
            std::process::exit(1);
        }
    }

    let hardware = std::thread::available_parallelism().map_or(1, |n| n.get());
    meta.push(("hardware_threads".into(), hardware.to_string()));
    let mut kv: Vec<(&str, String)> = vec![
        ("bench", "fidelity".to_string()),
        ("smoke", smoke.to_string()),
        ("profile", if cfg!(debug_assertions) { "debug" } else { "release" }.to_string()),
        ("eta", eta.to_string()),
        ("rungs", format!("{rung0_epochs},{full_epochs}")),
        ("prefilter_quantile", prefilter.to_string()),
    ];
    kv.extend(meta.iter().map(|(k, v)| (k.as_str(), v.clone())));
    std::fs::write(&out_path, h.to_json(&kv)).expect("write benchmark JSON");
    println!("wrote {out_path}");
}
