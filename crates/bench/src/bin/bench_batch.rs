//! Batched candidate evaluation benchmark, emitting `BENCH_batch.json`.
//!
//! Usage: `cargo run --release -p swt-bench --bin bench_batch [--smoke] [out.json]`
//!
//! Two sections:
//!
//! 1. **Kernel sweep** (`gemm.sweep.*`): the blocked GEMM driver across a
//!    range of square sizes, forced-scalar vs runtime-dispatched micro-kernel,
//!    single-threaded. This is the per-op view of what the NAS rows below
//!    aggregate.
//! 2. **Few-shot NAS throughput** (`nas.few_shot.*`): the paper's many-tiny-
//!    models regime (CIFAR-10-like at `DataScale::Quick`) with a dispatch
//!    window far wider than the host's cores. `batch_eval=off` runs the historical
//!    one-thread-per-worker pool; `batch_eval=auto` packs the same window
//!    onto ~one slot thread per core. The two arms alternate run for run so
//!    thermal/scheduler drift hits both equally, and the reported figure is
//!    the per-arm median.
//!
//! Batching is scheduling-only, so the benchmark *asserts* that every run —
//! batched or not — produces one byte-identical canonical trace, and exits
//! nonzero on any mismatch. A throughput number bought with a schedule change
//! would be a bug, not a result.
//!
//! `--smoke` shrinks both sections to a few seconds for CI gating.

use std::hint::black_box;
use std::sync::Arc;
use std::time::Instant;
use swt::prelude::*;
use swt::tensor::{force_scalar_kernel, gemm_kernel_name, matmul};
use swt_bench::Harness;

fn median(mut ns: Vec<f64>) -> f64 {
    ns.sort_by(|a, b| a.total_cmp(b));
    let mid = ns.len() / 2;
    if ns.len().is_multiple_of(2) {
        (ns[mid - 1] + ns[mid]) / 2.0
    } else {
        ns[mid]
    }
}

fn main() {
    let mut smoke = false;
    let mut out_path = "BENCH_batch.json".to_string();
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--smoke" => smoke = true,
            other => out_path = other.to_string(),
        }
    }
    // Fail on an unwritable path now, not after minutes of measurement.
    if let Err(e) = std::fs::write(&out_path, "{}\n") {
        eprintln!("cannot write {out_path}: {e}");
        std::process::exit(1);
    }

    let mut h = Harness::new();
    let mut rng = Rng::seed(0xBA7C);

    // --- Kernel sweep: scalar vs dispatched micro-kernel, single-threaded ---
    swt::tensor::parallel::set_max_threads(1);
    let sizes: &[usize] = if smoke { &[64] } else { &[64, 128, 256, 384, 512] };
    for &n in sizes {
        let a = Tensor::rand_normal([n, n], 0.0, 1.0, &mut rng);
        let b = Tensor::rand_normal([n, n], 0.0, 1.0, &mut rng);
        force_scalar_kernel(true);
        h.bench(&format!("gemm.sweep.scalar.{n}"), || {
            black_box(matmul(&a, &b));
        });
        force_scalar_kernel(false);
        h.bench(&format!("gemm.sweep.simd.{n}"), || {
            black_box(matmul(&a, &b));
        });
    }
    // The NAS arms size their own thread budgets from the worker count.
    swt::tensor::parallel::set_max_threads(0);

    // --- Few-shot NAS: batched vs unbatched on one oversubscribed window ---
    // CIFAR-10-quick is the arena-heaviest of the four apps (im2col buffers),
    // so it shows the cost of one cold per-thread workspace per candidate —
    // exactly what batching removes — most clearly.
    let app = AppKind::Cifar10;
    let (candidates, workers, reps) = if smoke { (12, 8, 1) } else { (128, 128, 5) };
    let problem = Arc::new(app.problem(DataScale::Quick, 17));
    let space = Arc::new(SearchSpace::for_app(app));
    let cfg = |batch_eval: BatchEval| NasConfig {
        batch_eval,
        ..NasConfig::quick(TransferScheme::Lcs, candidates, workers, 5)
    };

    let run = |batch_eval: BatchEval| -> (f64, String) {
        let cfg = cfg(batch_eval);
        let store: Arc<dyn CheckpointStore> = Arc::new(MemStore::new());
        let t = Instant::now();
        let trace = run_nas(Arc::clone(&problem), Arc::clone(&space), store, &cfg);
        let ns = t.elapsed().as_nanos() as f64;
        (ns, trace.canonical_csv())
    };

    // Warm-up (untimed) pass establishes the reference trace.
    let (_, reference) = run(BatchEval::Off);
    let (mut off_ns, mut auto_ns) = (Vec::new(), Vec::new());
    for rep in 0..reps {
        for (arm, samples) in [(BatchEval::Off, &mut off_ns), (BatchEval::Auto, &mut auto_ns)] {
            let (ns, csv) = run(arm);
            println!("nas.few_shot rep {}/{reps} batch_eval={arm}: {:.2}s", rep + 1, ns / 1e9);
            if csv != reference {
                eprintln!(
                    "FAIL: batch_eval={arm} produced a different canonical trace than \
                     batch_eval=off — batching must be scheduling-only"
                );
                std::process::exit(1);
            }
            samples.push(ns);
        }
    }
    println!("canonical traces identical across all {} runs", 2 * reps + 1);
    let tag = format!("{}_quick.{candidates}cand_{workers}workers", app.slug());
    let off = median(off_ns);
    let auto = median(auto_ns);
    h.record(&format!("nas.few_shot.{tag}.batch_off"), off, reps);
    h.record(&format!("nas.few_shot.{tag}.batch_auto"), auto, reps);
    println!("\nnas few_shot batched-vs-unbatched speedup: {:.2}x", off / auto);

    if !smoke {
        if let (Some(scalar), Some(simd)) =
            (h.get("gemm.sweep.scalar.256"), h.get("gemm.sweep.simd.256"))
        {
            println!(
                "gemm sweep 256 simd-vs-scalar speedup: {:.2}x ({})",
                scalar / simd,
                gemm_kernel_name()
            );
        }
    }

    let hardware = std::thread::available_parallelism().map_or(1, |n| n.get());
    let meta = [
        ("bench", "batch".to_string()),
        ("kernel", gemm_kernel_name().to_string()),
        ("hardware_threads", hardware.to_string()),
        ("smoke", smoke.to_string()),
        ("profile", if cfg!(debug_assertions) { "debug" } else { "release" }.to_string()),
    ];
    std::fs::write(&out_path, h.to_json(&meta)).expect("write benchmark JSON");
    println!("wrote {out_path}");
}
