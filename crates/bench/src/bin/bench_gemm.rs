//! GEMM / conv / end-to-end benchmark, emitting `BENCH_gemm.json`.
//!
//! Usage: `cargo run --release -p swt-bench --bin bench_gemm [out.json]`
//!
//! Measures, single-threaded (so numbers are comparable across machines and
//! cap configurations):
//! * naive vs blocked GEMM on square and training-shaped problems — the
//!   blocked driver is measured twice, on the forced portable scalar
//!   micro-kernel (`gemm.blocked.*`) and on the runtime-dispatched kernel
//!   (`gemm.simd.*`, AVX2+FMA where detected; identical to blocked rows on
//!   hosts without SIMD),
//! * im2col conv2d forward on a CIFAR-like layer,
//! * one end-to-end `NasConfig::quick` run per kernel.
//!
//! The JSON is committed as `BENCH_gemm.json` at the repository root so perf
//! changes show up in review diffs.

use std::hint::black_box;
use std::sync::Arc;
use swt::prelude::*;
use swt::tensor::{
    conv2d_forward, force_naive_gemm, force_scalar_kernel, gemm_kernel_name, matmul, matmul_naive,
    Padding,
};
use swt_bench::Harness;

fn main() {
    let out_path = std::env::args().nth(1).unwrap_or_else(|| "BENCH_gemm.json".to_string());
    // Fail on an unwritable path now, not after minutes of measurement.
    if let Err(e) = std::fs::write(&out_path, "{}\n") {
        eprintln!("cannot write {out_path}: {e}");
        std::process::exit(1);
    }
    // Single-threaded kernels: the speedup claimed here must come from the
    // blocked kernel itself, not from parallel fan-out.
    swt::tensor::parallel::set_max_threads(1);

    let mut h = Harness::new();
    let mut rng = Rng::seed(0xBE7C);

    // Square GEMMs (the 256 case is the headline number) plus one
    // training-shaped problem: batch x hidden times hidden x hidden.
    for &(m, k, n) in &[(256usize, 256usize, 256usize), (512, 512, 512), (64, 1024, 256)] {
        let a = Tensor::rand_normal([m, k], 0.0, 1.0, &mut rng);
        let b = Tensor::rand_normal([k, n], 0.0, 1.0, &mut rng);
        h.bench(&format!("gemm.naive.{m}x{k}x{n}"), || {
            black_box(matmul_naive(&a, &b));
        });
        force_scalar_kernel(true);
        h.bench(&format!("gemm.blocked.{m}x{k}x{n}"), || {
            black_box(matmul(&a, &b));
        });
        force_scalar_kernel(false);
        h.bench(&format!("gemm.simd.{m}x{k}x{n}"), || {
            black_box(matmul(&a, &b));
        });
    }

    // CIFAR-like conv layer: NHWC [8, 32, 32, 16] * [3, 3, 16, 32].
    let input = Tensor::rand_normal([8, 32, 32, 16], 0.0, 1.0, &mut rng);
    let kernel = Tensor::rand_normal([3, 3, 16, 32], 0.0, 0.1, &mut rng);
    h.bench("conv2d.forward.8x32x32x16.3x3x16x32", || {
        black_box(conv2d_forward(&input, &kernel, Padding::Same));
    });

    // End-to-end: the same quick NAS run under the naive kernel (the seed's
    // hot path) and the blocked one. The runner re-derives its own thread
    // budget from the worker count, so with 1 worker both runs use identical
    // parallelism and the delta is the GEMM kernel alone.
    let problem = Arc::new(AppKind::Uno.problem(DataScale::Quick, 11));
    let space = Arc::new(SearchSpace::for_app(AppKind::Uno));
    let cfg = NasConfig::quick(TransferScheme::Lcs, 8, 1, 3);
    force_naive_gemm(true);
    h.bench("nas.quick_uno.8cand_1worker.naive_gemm", || {
        let store: Arc<dyn CheckpointStore> = Arc::new(MemStore::new());
        black_box(run_nas(Arc::clone(&problem), Arc::clone(&space), store, &cfg));
    });
    force_naive_gemm(false);
    force_scalar_kernel(true);
    h.bench("nas.quick_uno.8cand_1worker.blocked_gemm", || {
        let store: Arc<dyn CheckpointStore> = Arc::new(MemStore::new());
        black_box(run_nas(Arc::clone(&problem), Arc::clone(&space), store, &cfg));
    });
    force_scalar_kernel(false);
    h.bench("nas.quick_uno.8cand_1worker.simd_gemm", || {
        let store: Arc<dyn CheckpointStore> = Arc::new(MemStore::new());
        black_box(run_nas(Arc::clone(&problem), Arc::clone(&space), store, &cfg));
    });
    swt::tensor::parallel::set_max_threads(1);

    // Speedup summaries for the acceptance headline.
    if let (Some(naive), Some(blocked)) =
        (h.get("gemm.naive.256x256x256"), h.get("gemm.blocked.256x256x256"))
    {
        println!(
            "\ngemm 256x256x256 blocked-vs-naive speedup: {:.2}x (single-threaded)",
            naive / blocked
        );
    }
    if let (Some(blocked), Some(simd)) =
        (h.get("gemm.blocked.256x256x256"), h.get("gemm.simd.256x256x256"))
    {
        println!(
            "gemm 256x256x256 simd-vs-scalar-microkernel speedup: {:.2}x ({})",
            blocked / simd,
            gemm_kernel_name()
        );
    }
    if let (Some(naive), Some(simd)) = (
        h.get("nas.quick_uno.8cand_1worker.naive_gemm"),
        h.get("nas.quick_uno.8cand_1worker.simd_gemm"),
    ) {
        println!("nas quick_uno end-to-end speedup: {:.2}x", naive / simd);
    }

    let meta = [
        ("bench", "gemm".to_string()),
        ("threads", "1".to_string()),
        ("kernel", gemm_kernel_name().to_string()),
        ("profile", if cfg!(debug_assertions) { "debug" } else { "release" }.to_string()),
    ];
    std::fs::write(&out_path, h.to_json(&meta)).expect("write benchmark JSON");
    println!("wrote {out_path}");
}
