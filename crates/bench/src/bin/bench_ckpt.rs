//! Selective checkpoint I/O benchmark, emitting `BENCH_ckpt.json`.
//!
//! Usage: `cargo run --release -p swt-bench --bin bench_ckpt [--smoke] [out.json]`
//!
//! Measures the checkpoint data path the NAS evaluator exercises, before and
//! after the WTC2/selective-read work:
//!
//! 1. full saves and loads in both container formats (WTC1 legacy vs WTC2),
//! 2. the *transfer path*: what a child evaluation pays to read its
//!    provider — formerly a full WTC1 decode, now an index read plus a
//!    partial load of only the matched tensors,
//! 3. the same transfer path against a warmed [`CachedStore`] (evolution
//!    re-reads elite parents constantly, so this is the steady state),
//! 4. an end-to-end A/B: two identical single-worker quick NAS runs, one on
//!    a full-load-only store and one on the selective path + cache. Scores
//!    and transferred-tensor counts must match exactly; only
//!    `transfer_secs` may differ.
//!
//! Exits non-zero if the provider read on the transfer path is not at least
//! 3x faster than the WTC1 full decode, or if the A/B runs diverge.
//!
//! `--smoke` writes the JSON to a temp directory instead of the repository
//! root so CI checks do not dirty the tree.

use std::hint::black_box;
use std::io;
use std::sync::Arc;
use swt::checkpoint::{decode, encode_v1};
use swt::prelude::*;
use swt_bench::Harness;

/// A store wrapper that hides the inner store's selective-read overrides, so
/// the trait's default implementations (full load + filter) take over — the
/// pre-WTC2 provider read path, reproduced exactly.
struct FullLoadOnly<S: CheckpointStore>(S);

impl<S: CheckpointStore> CheckpointStore for FullLoadOnly<S> {
    fn save(&self, id: &str, entries: &[(String, Tensor)]) -> io::Result<u64> {
        self.0.save(id, entries)
    }
    fn load(&self, id: &str) -> io::Result<Vec<(String, Tensor)>> {
        self.0.load(id)
    }
    fn exists(&self, id: &str) -> bool {
        self.0.exists(id)
    }
    fn size_bytes(&self, id: &str) -> Option<u64> {
        self.0.size_bytes(id)
    }
    fn list(&self) -> Vec<String> {
        self.0.list()
    }
    fn delete(&self, id: &str) -> bool {
        self.0.delete(id)
    }
}

/// A provider checkpoint shaped like a real candidate: a small conv stack
/// whose tensors transfer to a mutated child, plus a flatten-dependent dense
/// head that dominates the payload but never matches (its input dim changes
/// with any upstream mutation) and batch-norm running statistics that the
/// planner filters out.
fn provider_entries() -> Vec<(String, Tensor)> {
    let mut rng = Rng::seed(0xC4C4);
    let t = |dims: &[usize], rng: &mut Rng| Tensor::rand_normal(dims.to_vec(), 0.0, 0.1, rng);
    vec![
        ("n1_conv2d/kernel".into(), t(&[3, 3, 16, 32], &mut rng)),
        ("n1_conv2d/bias".into(), t(&[32], &mut rng)),
        ("n2_conv2d/kernel".into(), t(&[3, 3, 32, 64], &mut rng)),
        ("n2_conv2d/bias".into(), t(&[64], &mut rng)),
        ("n3_batchnorm/gamma".into(), t(&[64], &mut rng)),
        ("n3_batchnorm/beta".into(), t(&[64], &mut rng)),
        ("n3_batchnorm/running_mean".into(), t(&[64], &mut rng)),
        ("n3_batchnorm/running_var".into(), t(&[64], &mut rng)),
        ("n4_conv2d/kernel".into(), t(&[3, 3, 64, 64], &mut rng)),
        ("n4_conv2d/bias".into(), t(&[64], &mut rng)),
        ("n5_dense/kernel".into(), t(&[6400, 512], &mut rng)),
        ("n5_dense/bias".into(), t(&[512], &mut rng)),
        ("n6_dense/kernel".into(), t(&[512, 10], &mut rng)),
        ("n6_dense/bias".into(), t(&[10], &mut rng)),
    ]
}

/// The provider tensors a d=1 mutated child actually receives: the conv
/// stack, batch-norm parameters and the output head — everything except the
/// flatten-dependent `n5_dense` giant and the running statistics.
fn transfer_subset() -> Vec<String> {
    [
        "n1_conv2d/kernel",
        "n1_conv2d/bias",
        "n2_conv2d/kernel",
        "n2_conv2d/bias",
        "n3_batchnorm/gamma",
        "n3_batchnorm/beta",
        "n4_conv2d/kernel",
        "n4_conv2d/bias",
        "n6_dense/kernel",
        "n6_dense/bias",
    ]
    .iter()
    .map(|s| s.to_string())
    .collect()
}

fn sum_transfer_secs(trace: &NasTrace) -> f64 {
    trace.events.iter().map(|e| e.transfer_secs).sum()
}

fn sum_transfer_tensors(trace: &NasTrace) -> usize {
    trace.events.iter().map(|e| e.transfer_tensors).sum()
}

fn main() {
    let mut smoke = false;
    let mut out_arg = None;
    for arg in std::env::args().skip(1) {
        if arg == "--smoke" {
            smoke = true;
        } else {
            out_arg = Some(arg);
        }
    }
    let out_path = out_arg.unwrap_or_else(|| {
        if smoke {
            std::env::temp_dir().join("BENCH_ckpt.json").to_string_lossy().into_owned()
        } else {
            "BENCH_ckpt.json".to_string()
        }
    });
    if let Err(e) = std::fs::write(&out_path, "{}\n") {
        eprintln!("cannot write {out_path}: {e}");
        std::process::exit(1);
    }
    swt::tensor::parallel::set_max_threads(1);
    swt::obs::disable();

    let scratch = std::env::temp_dir().join(format!("bench_ckpt_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&scratch);
    std::fs::create_dir_all(&scratch).expect("create scratch dir");

    let entries = provider_entries();
    let subset = transfer_subset();
    let payload: u64 = entries.iter().map(|(_, t)| 4 * t.data().len() as u64).sum();
    let subset_payload: u64 = entries
        .iter()
        .filter(|(n, _)| subset.contains(n))
        .map(|(_, t)| 4 * t.data().len() as u64)
        .sum();
    println!(
        "provider checkpoint: {} tensors, {:.1} MiB payload; transfer subset: {} tensors, \
         {:.2} MiB",
        entries.len(),
        payload as f64 / (1 << 20) as f64,
        subset.len(),
        subset_payload as f64 / (1 << 20) as f64
    );

    let mut h = Harness::new();

    // --- 1. full saves and loads, both formats ------------------------------
    let wtc1_path = scratch.join("provider_v1.wtc");
    h.bench("ckpt.save.wtc1", || {
        std::fs::write(&wtc1_path, encode_v1(&entries)).expect("write wtc1");
    });
    let store = Arc::new(DirStore::new(scratch.join("store")).expect("open store"));
    h.bench("ckpt.save.wtc2", || {
        store.save("provider", &entries).expect("save wtc2");
    });
    h.bench("ckpt.load.full.wtc1", || {
        let buf = std::fs::read(&wtc1_path).expect("read wtc1");
        black_box(decode(&buf).expect("decode wtc1"));
    });
    h.bench("ckpt.load.full.wtc2", || {
        black_box(store.load("provider").expect("load wtc2"));
    });

    // --- 2. the transfer path: index + partial load -------------------------
    h.bench("ckpt.load.index.wtc2", || {
        black_box(store.load_index("provider").expect("load index"));
    });
    h.bench("ckpt.load.transfer.wtc2", || {
        let index = store.load_index("provider").expect("load index");
        black_box(&index);
        black_box(store.load_tensors("provider", &subset).expect("partial load"));
    });

    // --- 3. the same transfer path against a warmed provider cache ----------
    let cached = CachedStore::new(Arc::clone(&store), 256 << 20);
    cached.load_index("provider").expect("warm cache");
    assert!(cached.resident_bytes() > 0, "provider must fit the cache budget");
    h.bench("ckpt.load.transfer.cached", || {
        let index = cached.load_index("provider").expect("cached index");
        black_box(&index);
        black_box(cached.load_tensors("provider", &subset).expect("cached partial load"));
    });

    let full_v1 = h.get("ckpt.load.full.wtc1").unwrap();
    let transfer = h.get("ckpt.load.transfer.wtc2").unwrap();
    let cached_transfer = h.get("ckpt.load.transfer.cached").unwrap();
    let provider_read_speedup = full_v1 / transfer;
    let cache_speedup = full_v1 / cached_transfer;
    println!();
    println!(
        "provider read on the transfer path: {provider_read_speedup:.1}x faster than WTC1 \
         full decode ({:.2} ms -> {:.3} ms)",
        full_v1 / 1e6,
        transfer / 1e6
    );
    println!(
        "warm cache hit: {cache_speedup:.1}x faster than WTC1 full decode ({:.3} ms)",
        cached_transfer / 1e6
    );

    // --- 4. end-to-end A/B: full-load-only vs selective + cache -------------
    // 16-member quick population + 8 children, so the tail of the run
    // exercises the parent-read path under both stores.
    let candidates = 24;
    let problem = Arc::new(AppKind::Uno.problem(DataScale::Quick, 21));
    let space = Arc::new(SearchSpace::for_app(AppKind::Uno));
    let before_store: Arc<dyn CheckpointStore> = Arc::new(FullLoadOnly(
        DirStore::new(scratch.join("nas_before")).expect("open before store"),
    ));
    let before_cfg =
        NasConfig { cache_bytes: 0, ..NasConfig::quick(TransferScheme::Lcs, candidates, 1, 9) };
    let before = run_nas(Arc::clone(&problem), Arc::clone(&space), before_store, &before_cfg);
    let after_store: Arc<dyn CheckpointStore> =
        Arc::new(DirStore::new(scratch.join("nas_after")).expect("open after store"));
    let after_cfg = NasConfig::quick(TransferScheme::Lcs, candidates, 1, 9);
    let after = run_nas(problem, space, after_store, &after_cfg);

    let mut ab_ok = true;
    for (b, a) in before.events.iter().zip(&after.events) {
        if b.id != a.id || b.score != a.score || b.transfer_tensors != a.transfer_tensors {
            eprintln!(
                "A/B divergence at candidate {}: score {} vs {}, tensors {} vs {}",
                b.id, b.score, a.score, b.transfer_tensors, a.transfer_tensors
            );
            ab_ok = false;
        }
    }
    let before_transfer = sum_transfer_secs(&before);
    let after_transfer = sum_transfer_secs(&after);
    println!();
    println!(
        "quick NAS A/B ({candidates} candidates, 1 worker, seed 9): identical scores and \
         {} transferred tensors in both runs",
        sum_transfer_tensors(&after)
    );
    println!(
        "total transfer_secs: {before_transfer:.4}s full-load-only -> {after_transfer:.4}s \
         selective+cache"
    );

    let _ = std::fs::remove_dir_all(&scratch);

    let meta = [
        ("bench", "ckpt".to_string()),
        ("threads", "1".to_string()),
        ("profile", if cfg!(debug_assertions) { "debug" } else { "release" }.to_string()),
        ("payload_bytes", payload.to_string()),
        ("transfer_subset_bytes", subset_payload.to_string()),
        ("provider_read_speedup", format!("{provider_read_speedup:.2}")),
        ("cache_hit_speedup", format!("{cache_speedup:.2}")),
        ("nas_transfer_secs_fullload", format!("{before_transfer:.6}")),
        ("nas_transfer_secs_selective", format!("{after_transfer:.6}")),
        ("nas_transfer_tensors", sum_transfer_tensors(&after).to_string()),
    ];
    std::fs::write(&out_path, h.to_json(&meta)).expect("write benchmark JSON");
    println!("wrote {out_path}");

    let mut failed = false;
    if provider_read_speedup < 3.0 {
        eprintln!("FAIL: provider read speedup {provider_read_speedup:.2}x < 3x");
        failed = true;
    }
    if !ab_ok {
        eprintln!("FAIL: selective transfer changed NAS results");
        failed = true;
    }
    if failed {
        std::process::exit(1);
    }
    println!(
        "PASS: transfer-path read {provider_read_speedup:.1}x faster, cache hit \
         {cache_speedup:.1}x, A/B runs identical"
    );
}
