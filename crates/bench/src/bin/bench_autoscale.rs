//! Autoscaling benchmark, emitting `BENCH_autoscale.json`.
//!
//! Usage: `cargo run --release -p swt-bench --bin bench_autoscale [--smoke] [out.json]`
//!
//! Proves the two properties the coordinator-side autoscaler exists for:
//!
//! 1. **Bit-identical elasticity.** The same quick NAS configuration runs
//!    on the in-process thread pool, on a static 2-worker process pool, on
//!    an autoscaled pool that starts at 1 worker and grows on backlog, and
//!    on an over-provisioned pool of 3 that the policy drains back down.
//!    All four traces must match exactly: the policy only changes *which
//!    process* evaluates a candidate, never the schedule.
//! 2. **Makespan-gap reduction.** The very `ScalePolicy` the coordinator
//!    runs is replayed against the `swt-cluster` cost model on a pinned
//!    synthetic scenario. The gate: the elastic replay's makespan must sit
//!    closer to the wide-pool prediction `simulate(W)` than the static
//!    1-worker baseline does — elasticity must buy back most of the gap
//!    between under-provisioned and fully-provisioned pools, and because
//!    the replay is seeded and wall-clock-free the gate is deterministic
//!    on any host.
//!
//! Exits non-zero if any A/B run diverges, if the policy never grew or
//! never retired where the scenario demands it, or if the replayed policy
//! fails the gap gate.
//!
//! `--smoke` writes the JSON to a temp directory instead of the repository
//! root so CI checks do not dirty the tree. Requires the `swt` binary next
//! to this one (`cargo build --release -p swt`); `SWT_DIST_WORKER_EXE`
//! overrides discovery.

use std::path::PathBuf;
use std::sync::Arc;
use swt::prelude::*;

const CANDIDATES: usize = 24;
const SEED: u64 = 9;
const DATA_SEED: u64 = 11;
/// Pinned replay scenario (the same seed the swt-cluster regression pins).
const SCENARIO_SEED: u64 = 0xA5CA1E;
const SCENARIO_TASKS: usize = 64;
/// Wide-pool worker count the replayed policy may grow to.
const WIDE: usize = 4;

fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("bench_autoscale_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

fn nas_config() -> NasConfig {
    NasConfig::quick(TransferScheme::Lcs, CANDIDATES, 2, SEED)
}

fn dist_config(store: PathBuf) -> DistConfig {
    DistConfig::new(AppKind::Uno, DataScale::Quick, DATA_SEED, store)
}

/// Compare two traces on every deterministic field; report divergences.
fn traces_identical(a: &NasTrace, b: &NasTrace, what: &str) -> bool {
    if a.events.len() != b.events.len() {
        eprintln!("{what}: event counts differ ({} vs {})", a.events.len(), b.events.len());
        return false;
    }
    let mut ok = true;
    for (x, y) in a.events.iter().zip(&b.events) {
        if x.id != y.id
            || x.arch != y.arch
            || x.parent != y.parent
            || x.score.to_bits() != y.score.to_bits()
            || x.transfer_tensors != y.transfer_tensors
            || x.transfer_bytes != y.transfer_bytes
        {
            eprintln!(
                "{what}: candidate {} diverged (score {} vs {}, tensors {} vs {})",
                x.id, x.score, y.score, x.transfer_tensors, y.transfer_tensors
            );
            ok = false;
        }
    }
    let top_a: Vec<u64> = a.top_k(5).iter().map(|e| e.id).collect();
    let top_b: Vec<u64> = b.top_k(5).iter().map(|e| e.id).collect();
    if top_a != top_b {
        eprintln!("{what}: top-5 diverged ({top_a:?} vs {top_b:?})");
        ok = false;
    }
    ok
}

fn main() {
    let mut smoke = false;
    let mut out_arg = None;
    for arg in std::env::args().skip(1) {
        if arg == "--smoke" {
            smoke = true;
        } else {
            out_arg = Some(arg);
        }
    }
    let out_path = out_arg.unwrap_or_else(|| {
        if smoke {
            std::env::temp_dir().join("BENCH_autoscale.json").to_string_lossy().into_owned()
        } else {
            "BENCH_autoscale.json".to_string()
        }
    });
    if let Err(e) = std::fs::write(&out_path, "{}\n") {
        eprintln!("cannot write {out_path}: {e}");
        std::process::exit(1);
    }
    swt::obs::enable();

    // --- in-process baseline ------------------------------------------------
    let problem = Arc::new(AppKind::Uno.problem(DataScale::Quick, DATA_SEED));
    let space = Arc::new(SearchSpace::for_app(AppKind::Uno));
    let local_dir = scratch_dir("local");
    let local_store: Arc<dyn CheckpointStore> =
        Arc::new(DirStore::new(&local_dir).expect("open local store"));
    let local = run_nas(Arc::clone(&problem), Arc::clone(&space), local_store, &nas_config());
    println!(
        "in-process baseline: {CANDIDATES} candidates, 2 threads, {:.2}s wall",
        local.wall_secs
    );

    // --- static 2-worker process pool ---------------------------------------
    let static_dir = scratch_dir("static");
    let fixed = swt::dist::run_nas_dist(&nas_config(), &dist_config(static_dir.clone()))
        .expect("static distributed run failed");
    let static_ok = traces_identical(&local, &fixed, "static 2-worker A/B");
    println!(
        "distributed (2 workers, static): {:.2}s wall, identical = {static_ok}",
        fixed.wall_secs
    );

    // --- autoscaled: start at 1, grow on backlog ----------------------------
    let grow_dir = scratch_dir("grow");
    let mut grow_cfg = dist_config(grow_dir.clone());
    grow_cfg.initial_workers = Some(1);
    grow_cfg.max_workers = 2;
    grow_cfg.autoscale = Some(PolicyConfig::bounded(1, 2));
    let (grow, grow_stats) = swt::dist::run_nas_dist_with_stats(&nas_config(), &grow_cfg)
        .expect("autoscale-grow distributed run failed");
    let grow_ok = traces_identical(&local, &grow, "autoscale-grow A/B");
    println!(
        "distributed (1 worker + autoscale 1..=2): {:.2}s wall, identical = {grow_ok}, \
         grown = {}, retired = {}",
        grow.wall_secs, grow_stats.grown, grow_stats.retired
    );

    // --- autoscaled: start over-provisioned, drain back down ----------------
    // 3 processes against the 2-wide dispatch window leave one always idle;
    // the policy must retire it (drain-then-close) without touching the
    // trace.
    let shrink_dir = scratch_dir("shrink");
    let mut shrink_cfg = dist_config(shrink_dir.clone());
    shrink_cfg.initial_workers = Some(3);
    shrink_cfg.max_workers = 3;
    shrink_cfg.autoscale = Some(PolicyConfig::bounded(2, 3));
    let (shrink, shrink_stats) = swt::dist::run_nas_dist_with_stats(&nas_config(), &shrink_cfg)
        .expect("autoscale-shrink distributed run failed");
    let shrink_ok = traces_identical(&local, &shrink, "autoscale-shrink A/B");
    println!(
        "distributed (3 workers + autoscale 2..=3): {:.2}s wall, identical = {shrink_ok}, \
         grown = {}, retired = {}",
        shrink.wall_secs, shrink_stats.grown, shrink_stats.retired
    );

    // --- the makespan-gap gate: replay the real policy on the cost model ----
    let tasks = scenario_tasks(SCENARIO_SEED, SCENARIO_TASKS);
    let cluster = ClusterConfig {
        name: format!("{WIDE}-worker elastic"),
        gpus: WIDE, // used by simulate(); the replay's pool is policy-owned
        pfs: swt::cluster::PfsModel { read_bw: 1e9, write_bw: 1e9, latency: 0.005 },
        dispatch_secs: 0.02,
    };
    let wide = simulate(&cluster, &tasks).makespan;
    let narrow = simulate(&ClusterConfig { gpus: 1, ..cluster.clone() }, &tasks).makespan;
    let mut policy = ScalePolicy::new(PolicyConfig::bounded(1, WIDE)).expect("valid bench policy");
    let replay_cfg = ReplayConfig { min_workers: 1, max_workers: WIDE, ..ReplayConfig::default() };
    let replay = replay_policy(&cluster, &replay_cfg, &tasks, |view| {
        // Adapt the replay view onto the coordinator's pool snapshot. The
        // replay does not distinguish spawning from live workers, so both
        // count as live — conservative for the grow path (effective
        // capacity is never understated).
        let snapshot = PoolSnapshot {
            queue_depth: view.queue_depth,
            inflight: view.busy,
            live: view.workers,
            idle: view.workers.saturating_sub(view.busy),
            connecting: 0,
            results: view.tick,
            ewma_secs: view.ewma_secs,
        };
        match policy.decide_snapshot(&snapshot) {
            ScaleDecision::Grow(n) => n as isize,
            ScaleDecision::Shrink(n) => -(n as isize),
            ScaleDecision::Hold => 0,
        }
    });
    let gap_elastic = (replay.makespan - wide).abs();
    let gap_static = (narrow - wide).abs();
    let gap_ok = gap_elastic < gap_static;
    println!(
        "replay gate: simulate(1) {narrow:.3}s, simulate({WIDE}) {wide:.3}s, \
         elastic replay {:.3}s (grown {}, retired {}, peak {})",
        replay.makespan, replay.grown, replay.retired, replay.peak_workers
    );
    println!(
        "makespan gap to the wide pool: static {gap_static:.3}s -> elastic {gap_elastic:.3}s \
         ({:.1}% recovered), gate = {gap_ok}",
        if gap_static > 0.0 { 100.0 * (1.0 - gap_elastic / gap_static) } else { 100.0 }
    );

    for dir in [&local_dir, &static_dir, &grow_dir, &shrink_dir] {
        let _ = std::fs::remove_dir_all(dir);
    }

    let transfer_tensors: usize = local.events.iter().map(|e| e.transfer_tensors).sum();
    let meta = [
        ("bench", "autoscale".to_string()),
        ("profile", if cfg!(debug_assertions) { "debug" } else { "release" }.to_string()),
        ("candidates", CANDIDATES.to_string()),
        ("seed", SEED.to_string()),
        ("scenario_seed", format!("{SCENARIO_SEED:#x}")),
        ("scenario_tasks", SCENARIO_TASKS.to_string()),
        ("ab_static_identical", static_ok.to_string()),
        ("ab_grow_identical", grow_ok.to_string()),
        ("ab_shrink_identical", shrink_ok.to_string()),
        ("transfer_tensors", transfer_tensors.to_string()),
        ("workers_grown", grow_stats.grown.to_string()),
        ("workers_retired", shrink_stats.retired.to_string()),
        ("wall_secs_inprocess", format!("{:.3}", local.wall_secs)),
        ("wall_secs_static_2w", format!("{:.3}", fixed.wall_secs)),
        ("wall_secs_autoscale_grow", format!("{:.3}", grow.wall_secs)),
        ("wall_secs_autoscale_shrink", format!("{:.3}", shrink.wall_secs)),
        ("sim_makespan_1w", format!("{narrow:.6}")),
        ("sim_makespan_wide", format!("{wide:.6}")),
        ("replay_makespan", format!("{:.6}", replay.makespan)),
        ("replay_grown", replay.grown.to_string()),
        ("replay_retired", replay.retired.to_string()),
        ("replay_peak_workers", replay.peak_workers.to_string()),
        ("gap_static_secs", format!("{gap_static:.6}")),
        ("gap_elastic_secs", format!("{gap_elastic:.6}")),
    ];
    let h = swt_bench::Harness::new();
    std::fs::write(&out_path, h.to_json(&meta)).expect("write benchmark JSON");
    println!("wrote {out_path}");

    let mut failed = false;
    if !(static_ok && grow_ok && shrink_ok) {
        eprintln!("FAIL: an autoscaled run diverged from the in-process baseline");
        failed = true;
    }
    if grow_stats.grown < 1 {
        eprintln!("FAIL: the backlogged pool never grew (grown = {})", grow_stats.grown);
        failed = true;
    }
    if shrink_stats.retired < 1 {
        eprintln!(
            "FAIL: the over-provisioned pool never retired its spare (retired = {})",
            shrink_stats.retired
        );
        failed = true;
    }
    if transfer_tensors == 0 {
        eprintln!("FAIL: the A/B never transferred weights (vacuous identity check)");
        failed = true;
    }
    if replay.grown < 1 {
        eprintln!("FAIL: the replayed policy never grew on the pinned scenario");
        failed = true;
    }
    if !gap_ok {
        eprintln!(
            "FAIL: elastic replay gap {gap_elastic:.3}s is not below the static gap \
             {gap_static:.3}s"
        );
        failed = true;
    }
    if failed {
        std::process::exit(1);
    }
    println!(
        "PASS: autoscaled == in-process (static, grow and shrink), and the replayed policy \
         recovers the makespan gap"
    );
}
