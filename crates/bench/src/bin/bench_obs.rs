//! Observability overhead benchmark, emitting `BENCH_obs.json`.
//!
//! Usage: `cargo run --release -p swt-bench --bin bench_obs [--smoke] [out.json]`
//!
//! Answers one question: what does the swt-obs instrumentation cost when it
//! is *disabled* (the library default)? The disabled fast path is a relaxed
//! atomic load per call site, so an A/B wall-clock comparison of a training
//! run would drown in scheduler noise. Instead this bench
//!
//! 1. measures the per-op cost of the disabled (and, for reference, enabled)
//!    span and counter fast paths,
//! 2. times the real training hot path — one epoch of candidate estimation,
//!    instrumentation disabled,
//! 3. counts how many instrumentation ops that epoch actually executes, by
//!    re-running it once with swt-obs enabled and reading the run report,
//! 4. derives `overhead = ops * per_op_cost / epoch_time` and exits non-zero
//!    if it reaches 2% (the acceptance budget from DESIGN.md section 8).
//!
//! The op count is deliberately conservative: every counter's *value* is
//! treated as one op even where a single `add(n)` produced it, so the
//! reported percentage is an upper bound.
//!
//! `--smoke` writes the JSON to a temp directory instead of the repository
//! root so CI checks do not dirty the tree.

use std::hint::black_box;
use swt::nn::AdamConfig;
use swt::prelude::*;
use swt_bench::Harness;

/// Ops per timed iteration of the per-op benches; one disabled op is ~1 ns,
/// far below timer resolution.
const LOOP: usize = 4096;

fn main() {
    let mut smoke = false;
    let mut out_arg = None;
    for arg in std::env::args().skip(1) {
        if arg == "--smoke" {
            smoke = true;
        } else {
            out_arg = Some(arg);
        }
    }
    let out_path = out_arg.unwrap_or_else(|| {
        if smoke {
            std::env::temp_dir().join("BENCH_obs.json").to_string_lossy().into_owned()
        } else {
            "BENCH_obs.json".to_string()
        }
    });
    // Fail on an unwritable path now, not after the measurement.
    if let Err(e) = std::fs::write(&out_path, "{}\n") {
        eprintln!("cannot write {out_path}: {e}");
        std::process::exit(1);
    }
    // Single-threaded so per-op and hot-path numbers share one core's clock.
    swt::tensor::parallel::set_max_threads(1);

    let mut h = Harness::new();

    // --- 1. per-op costs --------------------------------------------------
    swt::obs::disable();
    h.bench(&format!("obs.span.disabled.x{LOOP}"), || {
        for _ in 0..LOOP {
            let g = swt::obs::span!("bench.obs.span");
            black_box(&g);
        }
    });
    h.bench(&format!("obs.counter.disabled.x{LOOP}"), || {
        for _ in 0..LOOP {
            swt::obs::counter!("bench.obs.counter").add(1);
        }
    });
    swt::obs::enable();
    h.bench(&format!("obs.span.enabled.x{LOOP}"), || {
        for _ in 0..LOOP {
            let g = swt::obs::span!("bench.obs.span");
            black_box(&g);
        }
    });
    h.bench(&format!("obs.counter.enabled.x{LOOP}"), || {
        for _ in 0..LOOP {
            swt::obs::counter!("bench.obs.counter").add(1);
        }
    });
    swt::obs::disable();
    swt::obs::reset();

    // --- 2. the training hot path, instrumentation disabled ---------------
    let problem = AppKind::Uno.problem(DataScale::Quick, 5);
    let space = SearchSpace::for_app(AppKind::Uno);
    let mut rng = Rng::seed(11);
    let spec = space.materialize(&space.sample(&mut rng)).unwrap();
    let trainer = Trainer::new(problem.loss, problem.metric);
    let cfg = TrainConfig {
        epochs: 1,
        batch_size: problem.batch_size,
        adam: AdamConfig { lr: problem.lr, ..Default::default() },
        shuffle_seed: 3,
        early_stop: None,
        convergence: None,
    };
    h.bench_with_setup(
        "obs.train.one_epoch.disabled",
        || Model::build(&spec, 7).unwrap(),
        |mut model| {
            black_box(trainer.fit(&mut model, &problem.train, &problem.val, &cfg));
        },
    );
    swt::obs::enable();
    h.bench_with_setup(
        "obs.train.one_epoch.enabled",
        || Model::build(&spec, 7).unwrap(),
        |mut model| {
            black_box(trainer.fit(&mut model, &problem.train, &problem.val, &cfg));
        },
    );

    // --- 3. ops executed by one epoch --------------------------------------
    swt::obs::reset();
    let mut model = Model::build(&spec, 7).unwrap();
    trainer.fit(&mut model, &problem.train, &problem.val, &cfg);
    let report = RunReport::capture();
    swt::obs::disable();
    swt::obs::reset();
    let span_ops: u64 = report.spans.iter().map(|s| s.count).sum();
    // Upper bound: counter values count `add(n)` as n ops.
    let counter_ops: u64 = report.counters.iter().map(|c| c.value).sum();
    let batches = report.counter("nn.batches_trained").max(1);

    // --- 4. derived overhead ------------------------------------------------
    let span_ns = h.get(&format!("obs.span.disabled.x{LOOP}")).unwrap() / LOOP as f64;
    let counter_ns = h.get(&format!("obs.counter.disabled.x{LOOP}")).unwrap() / LOOP as f64;
    let epoch_ns = h.get("obs.train.one_epoch.disabled").unwrap();
    let overhead_ns = span_ops as f64 * span_ns + counter_ops as f64 * counter_ns;
    let overhead_pct = 100.0 * overhead_ns / epoch_ns;

    println!();
    println!("disabled span:    {span_ns:.2} ns/op   counter: {counter_ns:.2} ns/op");
    println!(
        "one training epoch ({batches} batches): {:.2} ms, {span_ops} span ops + \
         {counter_ops} counter ops (upper bound)",
        epoch_ns / 1e6
    );
    println!(
        "disabled-instrumentation overhead: {overhead_pct:.4}% of the epoch \
         ({:.1} ns per batch)",
        overhead_ns / batches as f64
    );

    let meta = [
        ("bench", "obs".to_string()),
        ("threads", "1".to_string()),
        ("profile", if cfg!(debug_assertions) { "debug" } else { "release" }.to_string()),
        ("span_ops_per_epoch", span_ops.to_string()),
        ("counter_ops_per_epoch", counter_ops.to_string()),
        ("disabled_overhead_pct", format!("{overhead_pct:.4}")),
    ];
    std::fs::write(&out_path, h.to_json(&meta)).expect("write benchmark JSON");
    println!("wrote {out_path}");

    if overhead_pct >= 2.0 {
        eprintln!("FAIL: disabled-instrumentation overhead {overhead_pct:.4}% >= 2%");
        std::process::exit(1);
    }
    println!("PASS: disabled-instrumentation overhead {overhead_pct:.4}% < 2%");
}
