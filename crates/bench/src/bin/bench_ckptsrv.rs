//! Networked checkpoint store benchmark, emitting `BENCH_ckptsrv.json`.
//!
//! Usage: `cargo run --release -p swt-bench --bin bench_ckptsrv [--smoke] [out.json]`
//!
//! Measures the wire the NAS workers actually pay when the shared store is
//! `swt-ckpt-server` instead of a parallel file system:
//!
//! 1. **bytes on the wire**: what one provider read costs as a full
//!    `GetRaw` transfer versus the selective path (`GetIndex` header plus a
//!    `GetTensors` range response for only the matched subset) — the
//!    paper's core claim, restated at the network layer,
//! 2. **wall time**: full remote load versus the selective remote read,
//!    over a loopback TCP session to an in-process server,
//! 3. the selective read against a worker-side warmed [`CachedStore`]
//!    wrapping the remote session — the steady state for elite parents.
//!
//! Exits non-zero if the selective read moves more than 5% of the full
//! checkpoint's bytes, or if it is not at least 3x faster than the full
//! remote load.
//!
//! `--smoke` writes the JSON to a temp directory instead of the repository
//! root so CI checks do not dirty the tree.

use std::hint::black_box;
use std::sync::Arc;
use swt::prelude::*;

/// The same provider shape `bench_ckpt` uses: a conv stack that transfers,
/// a flatten-dependent dense giant that never does, and batch-norm running
/// statistics the planner filters out.
fn provider_entries() -> Vec<(String, Tensor)> {
    let mut rng = Rng::seed(0xC4C4);
    let t = |dims: &[usize], rng: &mut Rng| Tensor::rand_normal(dims.to_vec(), 0.0, 0.1, rng);
    vec![
        ("n1_conv2d/kernel".into(), t(&[3, 3, 16, 32], &mut rng)),
        ("n1_conv2d/bias".into(), t(&[32], &mut rng)),
        ("n2_conv2d/kernel".into(), t(&[3, 3, 32, 64], &mut rng)),
        ("n2_conv2d/bias".into(), t(&[64], &mut rng)),
        ("n3_batchnorm/gamma".into(), t(&[64], &mut rng)),
        ("n3_batchnorm/beta".into(), t(&[64], &mut rng)),
        ("n3_batchnorm/running_mean".into(), t(&[64], &mut rng)),
        ("n3_batchnorm/running_var".into(), t(&[64], &mut rng)),
        ("n4_conv2d/kernel".into(), t(&[3, 3, 64, 64], &mut rng)),
        ("n4_conv2d/bias".into(), t(&[64], &mut rng)),
        ("n5_dense/kernel".into(), t(&[6400, 512], &mut rng)),
        ("n5_dense/bias".into(), t(&[512], &mut rng)),
        ("n6_dense/kernel".into(), t(&[512, 10], &mut rng)),
        ("n6_dense/bias".into(), t(&[10], &mut rng)),
    ]
}

/// The tensors a d=1 mutated child actually receives.
fn transfer_subset() -> Vec<String> {
    [
        "n1_conv2d/kernel",
        "n1_conv2d/bias",
        "n2_conv2d/kernel",
        "n2_conv2d/bias",
        "n3_batchnorm/gamma",
        "n3_batchnorm/beta",
        "n4_conv2d/kernel",
        "n4_conv2d/bias",
        "n6_dense/kernel",
        "n6_dense/bias",
    ]
    .iter()
    .map(|s| s.to_string())
    .collect()
}

fn counter(name: &str) -> u64 {
    swt::obs::registry::global().counter(name).get()
}

fn main() {
    let mut smoke = false;
    let mut out_arg = None;
    for arg in std::env::args().skip(1) {
        if arg == "--smoke" {
            smoke = true;
        } else {
            out_arg = Some(arg);
        }
    }
    let out_path = out_arg.unwrap_or_else(|| {
        if smoke {
            std::env::temp_dir().join("BENCH_ckptsrv.json").to_string_lossy().into_owned()
        } else {
            "BENCH_ckptsrv.json".to_string()
        }
    });
    if let Err(e) = std::fs::write(&out_path, "{}\n") {
        eprintln!("cannot write {out_path}: {e}");
        std::process::exit(1);
    }
    swt::tensor::parallel::set_max_threads(1);
    // Counters carry the byte accounting, so observability must be on.
    swt::obs::enable();

    let spill = std::env::temp_dir().join(format!("bench_ckptsrv_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&spill);
    let mut server = CkptServer::start(ServerConfig::new("127.0.0.1:0", &spill))
        .expect("start in-process server");
    let client = RemoteStore::connect(&server.addr().to_string(), "bench", "");

    let entries = provider_entries();
    let subset = transfer_subset();
    let put_bytes = client.save("provider", &entries).expect("put provider");
    println!(
        "provider checkpoint on the server: {} tensors, {:.1} MiB container; transfer \
         subset: {} tensors",
        entries.len(),
        put_bytes as f64 / (1 << 20) as f64,
        subset.len()
    );

    // --- 1. bytes on the wire: one full read vs one selective read ----------
    let full_before = counter("ckptsrv.client.full_bytes_rx");
    black_box(client.load_raw("provider").expect("full read"));
    let full_bytes = counter("ckptsrv.client.full_bytes_rx") - full_before;

    let idx_before = counter("ckptsrv.client.index_bytes_rx");
    let tns_before = counter("ckptsrv.client.tensor_bytes_rx");
    black_box(client.load_index("provider").expect("index read"));
    black_box(client.load_tensors("provider", &subset).expect("selective read"));
    let selective_bytes = (counter("ckptsrv.client.index_bytes_rx") - idx_before)
        + (counter("ckptsrv.client.tensor_bytes_rx") - tns_before);
    let byte_ratio = selective_bytes as f64 / full_bytes as f64;
    println!(
        "network bytes per provider read: full {full_bytes} -> selective {selective_bytes} \
         ({:.1}% of full)",
        byte_ratio * 100.0
    );

    // --- 2. wall time over loopback TCP --------------------------------------
    let mut h = swt_bench::Harness::new();
    h.bench("ckptsrv.put", || {
        client.save("provider", &entries).expect("put");
    });
    h.bench("ckptsrv.load.full", || {
        black_box(client.load("provider").expect("full load"));
    });
    h.bench("ckptsrv.load.index", || {
        black_box(client.load_index("provider").expect("index load"));
    });
    h.bench("ckptsrv.load.transfer", || {
        let index = client.load_index("provider").expect("index load");
        black_box(&index);
        black_box(client.load_tensors("provider", &subset).expect("selective load"));
    });

    // --- 3. selective read through a warmed worker-side cache ----------------
    let remote = Arc::new(RemoteStore::connect(&server.addr().to_string(), "bench", ""));
    let cached = CachedStore::new(Arc::clone(&remote), 256 << 20);
    cached.load_index("provider").expect("warm cache");
    h.bench("ckptsrv.load.transfer.cached", || {
        let index = cached.load_index("provider").expect("cached index");
        black_box(&index);
        black_box(cached.load_tensors("provider", &subset).expect("cached selective load"));
    });

    let full = h.get("ckptsrv.load.full").unwrap();
    let transfer = h.get("ckptsrv.load.transfer").unwrap();
    let cached_transfer = h.get("ckptsrv.load.transfer.cached").unwrap();
    let provider_read_speedup = full / transfer;
    let cache_speedup = full / cached_transfer;
    println!();
    println!(
        "wire-level provider read: {provider_read_speedup:.1}x faster selective than full \
         ({:.2} ms -> {:.3} ms); warm cache {cache_speedup:.1}x",
        full / 1e6,
        transfer / 1e6
    );

    server.stop();
    let _ = std::fs::remove_dir_all(&spill);

    let meta = [
        ("bench", "ckptsrv".to_string()),
        ("threads", "1".to_string()),
        ("profile", if cfg!(debug_assertions) { "debug" } else { "release" }.to_string()),
        ("full_read_bytes", full_bytes.to_string()),
        ("selective_read_bytes", selective_bytes.to_string()),
        ("selective_to_full_byte_ratio", format!("{byte_ratio:.4}")),
        ("provider_read_speedup", format!("{provider_read_speedup:.2}")),
        ("cache_hit_speedup", format!("{cache_speedup:.2}")),
    ];
    std::fs::write(&out_path, h.to_json(&meta)).expect("write benchmark JSON");
    println!("wrote {out_path}");

    let mut failed = false;
    if byte_ratio > 0.05 {
        eprintln!("FAIL: selective read moved {:.1}% of the full bytes (> 5%)", byte_ratio * 100.0);
        failed = true;
    }
    if provider_read_speedup < 3.0 {
        eprintln!("FAIL: wire-level provider read speedup {provider_read_speedup:.2}x < 3x");
        failed = true;
    }
    if failed {
        std::process::exit(1);
    }
    println!(
        "PASS: selective read is {:.1}% of full bytes and {provider_read_speedup:.1}x faster",
        byte_ratio * 100.0
    );
}
