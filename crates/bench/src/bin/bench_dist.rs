//! Distributed-execution benchmark, emitting `BENCH_dist.json`.
//!
//! Usage: `cargo run --release -p swt-bench --bin bench_dist [--smoke] [out.json]`
//!
//! Proves the two properties the `swt-dist` subsystem exists for:
//!
//! 1. **Bit-identical distribution.** A quick NAS run on the in-process
//!    thread pool is compared against the same configuration executed on
//!    worker *processes* — once with all workers healthy, and once with a
//!    worker SIGKILLed mid-run (exercising heartbeat loss detection and
//!    task reassignment). Scores, architectures, parents, transfer counts
//!    and the top-K must match exactly in all three runs.
//! 2. **Throughput scaling.** Wall-clock of the distributed run at 1 and 2
//!    workers, compared against the `swt-cluster` analytical simulator's
//!    predicted makespans for the same per-task costs. (On a single-core CI
//!    host the measured speedup saturates near 1x while the simulator —
//!    which models dedicated GPUs — predicts ~2x; both numbers are
//!    recorded, the gate is on identity, not scaling.)
//!
//! Exits non-zero if any A/B run diverges, if the killed-worker run fails
//! to complete, or if the reassignment path was not exercised
//! (`dist.reassigned` must be ≥ 1 and `dist.workers_lost` exactly 1).
//!
//! `--smoke` writes the JSON to a temp directory instead of the repository
//! root so CI checks do not dirty the tree. Requires the `swt` binary next
//! to this one (`cargo build --release -p swt`); `SWT_DIST_WORKER_EXE`
//! overrides discovery.

use std::path::PathBuf;
use std::sync::Arc;
use swt::prelude::*;

const CANDIDATES: usize = 24;
const SEED: u64 = 9;
const DATA_SEED: u64 = 11;

fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("bench_dist_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

fn nas_config(workers: usize) -> NasConfig {
    NasConfig::quick(TransferScheme::Lcs, CANDIDATES, workers, SEED)
}

fn dist_config(store: PathBuf) -> DistConfig {
    DistConfig::new(AppKind::Uno, DataScale::Quick, DATA_SEED, store)
}

/// Compare two traces on every deterministic field; report divergences.
fn traces_identical(a: &NasTrace, b: &NasTrace, what: &str) -> bool {
    if a.events.len() != b.events.len() {
        eprintln!("{what}: event counts differ ({} vs {})", a.events.len(), b.events.len());
        return false;
    }
    let mut ok = true;
    for (x, y) in a.events.iter().zip(&b.events) {
        if x.id != y.id
            || x.arch != y.arch
            || x.parent != y.parent
            || x.score.to_bits() != y.score.to_bits()
            || x.transfer_tensors != y.transfer_tensors
            || x.transfer_bytes != y.transfer_bytes
        {
            eprintln!(
                "{what}: candidate {} diverged (score {} vs {}, tensors {} vs {})",
                x.id, x.score, y.score, x.transfer_tensors, y.transfer_tensors
            );
            ok = false;
        }
    }
    let top_a: Vec<u64> = a.top_k(5).iter().map(|e| e.id).collect();
    let top_b: Vec<u64> = b.top_k(5).iter().map(|e| e.id).collect();
    if top_a != top_b {
        eprintln!("{what}: top-5 diverged ({top_a:?} vs {top_b:?})");
        ok = false;
    }
    ok
}

fn counter(name: &str) -> u64 {
    swt::obs::registry::global().counter(name).get()
}

fn main() {
    let mut smoke = false;
    let mut out_arg = None;
    for arg in std::env::args().skip(1) {
        if arg == "--smoke" {
            smoke = true;
        } else {
            out_arg = Some(arg);
        }
    }
    let out_path = out_arg.unwrap_or_else(|| {
        if smoke {
            std::env::temp_dir().join("BENCH_dist.json").to_string_lossy().into_owned()
        } else {
            "BENCH_dist.json".to_string()
        }
    });
    if let Err(e) = std::fs::write(&out_path, "{}\n") {
        eprintln!("cannot write {out_path}: {e}");
        std::process::exit(1);
    }
    swt::obs::enable();

    // --- in-process baseline ------------------------------------------------
    let problem = Arc::new(AppKind::Uno.problem(DataScale::Quick, DATA_SEED));
    let space = Arc::new(SearchSpace::for_app(AppKind::Uno));
    let local_dir = scratch_dir("local");
    let local_store: Arc<dyn CheckpointStore> =
        Arc::new(DirStore::new(&local_dir).expect("open local store"));
    let local = run_nas(Arc::clone(&problem), Arc::clone(&space), local_store, &nas_config(2));
    println!(
        "in-process baseline: {CANDIDATES} candidates, 2 threads, {:.2}s wall",
        local.wall_secs
    );

    // --- distributed, all workers healthy -----------------------------------
    let healthy_dir = scratch_dir("healthy");
    let healthy = swt::dist::run_nas_dist(&nas_config(2), &dist_config(healthy_dir.clone()))
        .expect("healthy distributed run failed");
    let healthy_ok = traces_identical(&local, &healthy, "healthy 2-worker A/B");
    println!(
        "distributed (2 workers, healthy): {:.2}s wall, identical = {healthy_ok}",
        healthy.wall_secs
    );

    // --- distributed, one worker SIGKILLed mid-run ---------------------------
    let lost_before = counter("dist.workers_lost");
    let reassigned_before = counter("dist.reassigned");
    let killed_dir = scratch_dir("killed");
    let mut killed_cfg = dist_config(killed_dir.clone());
    killed_cfg.kill_worker_after = Some(KillPlan { worker: 1, after_results: 3 });
    let killed = swt::dist::run_nas_dist(&nas_config(2), &killed_cfg)
        .expect("killed-worker distributed run failed");
    let killed_ok = traces_identical(&local, &killed, "killed-worker A/B");
    let workers_lost = counter("dist.workers_lost") - lost_before;
    let reassigned = counter("dist.reassigned") - reassigned_before;
    println!(
        "distributed (2 workers, worker 1 SIGKILLed after 3 results): {:.2}s wall, \
         identical = {killed_ok}, workers_lost = {workers_lost}, reassigned = {reassigned}",
        killed.wall_secs
    );

    // --- distributed, elastic: start short-handed, a worker joins mid-run ----
    // One process at launch against a 2-wide dispatch window; a second
    // process joins after 3 results and drains the queued backlog. The
    // trace must still be bit-identical to the fixed 2-worker runs, since
    // joining only changes which process evaluates a candidate.
    let elastic_dir = scratch_dir("elastic");
    let mut elastic_cfg = dist_config(elastic_dir.clone());
    elastic_cfg.initial_workers = Some(1);
    elastic_cfg.max_workers = 2;
    elastic_cfg.join_after = Some(JoinPlan { after_results: 3, count: 1 });
    let (elastic, elastic_stats) = swt::dist::run_nas_dist_with_stats(&nas_config(2), &elastic_cfg)
        .expect("elastic distributed run failed");
    let elastic_ok = traces_identical(&local, &elastic, "elastic-join A/B");
    println!(
        "distributed (1 worker + 1 late join): {:.2}s wall, identical = {elastic_ok}, \
         joined = {}, worker snapshots merged = {}",
        elastic.wall_secs,
        elastic_stats.joined,
        elastic_stats.per_worker.len()
    );

    // --- throughput vs worker count vs simulator -----------------------------
    // The dispatch window is part of the deterministic schedule, so the
    // 1-worker distributed run is compared against a 1-thread in-process
    // baseline (a 2-thread run legitimately explores differently).
    let local1_dir = scratch_dir("local1");
    let local1_store: Arc<dyn CheckpointStore> =
        Arc::new(DirStore::new(&local1_dir).expect("open 1-thread local store"));
    let local1 = run_nas(Arc::clone(&problem), Arc::clone(&space), local1_store, &nas_config(1));
    let one_dir = scratch_dir("one");
    let one = swt::dist::run_nas_dist(&nas_config(1), &dist_config(one_dir.clone()))
        .expect("single-worker distributed run failed");
    let one_ok = traces_identical(&local1, &one, "1-worker A/B");
    let measured_speedup = one.wall_secs / healthy.wall_secs;

    // Feed the simulator the measured per-task costs of the real run and a
    // local-disk "PFS". The prediction assumes one dedicated compute unit
    // per worker — the cluster it models — so on shared cores it is an
    // upper bound on the measured speedup.
    let tasks: Vec<TaskCost> = one
        .events
        .iter()
        .map(|e| TaskCost {
            train_secs: e.train_secs,
            read_bytes: e.transfer_bytes as u64,
            transfer_secs: e.transfer_secs,
            write_bytes: e.checkpoint_bytes,
        })
        .collect();
    let sim_cfg = |gpus: usize| ClusterConfig {
        name: format!("{gpus}-worker localhost"),
        gpus,
        pfs: swt::cluster::PfsModel { read_bw: 2e9, write_bw: 1e9, latency: 2e-4 },
        dispatch_secs: 2e-3,
    };
    let sim1 = simulate(&sim_cfg(1), &tasks);
    let sim2 = simulate(&sim_cfg(2), &tasks);
    let predicted_speedup = sim1.makespan / sim2.makespan;
    println!(
        "throughput 1 -> 2 workers: measured {:.2}s -> {:.2}s ({measured_speedup:.2}x); \
         simulator predicts {:.2}s -> {:.2}s ({predicted_speedup:.2}x, dedicated cores)",
        one.wall_secs, healthy.wall_secs, sim1.makespan, sim2.makespan
    );

    // Observability wiring: the dist counters and per-worker RTT histograms
    // must land in the standard run report.
    let report = RunReport::capture()
        .with_meta("bench", "dist")
        .with_meta("candidates", CANDIDATES)
        .with_meta("seed", SEED);
    let report_path =
        std::env::temp_dir().join(format!("bench_dist_report_{}.json", std::process::id()));
    report.write_json(&report_path).expect("write run report");
    let report_reassigned = report.counter("dist.reassigned");
    println!("run report (dist.* counters + RTT histograms): {}", report_path.display());

    for dir in [&local_dir, &healthy_dir, &killed_dir, &elastic_dir, &local1_dir, &one_dir] {
        let _ = std::fs::remove_dir_all(dir);
    }

    let transfer_tensors: usize = local.events.iter().map(|e| e.transfer_tensors).sum();
    let meta = [
        ("bench", "dist".to_string()),
        ("profile", if cfg!(debug_assertions) { "debug" } else { "release" }.to_string()),
        ("candidates", CANDIDATES.to_string()),
        ("seed", SEED.to_string()),
        ("ab_healthy_identical", healthy_ok.to_string()),
        ("ab_killed_identical", killed_ok.to_string()),
        ("ab_elastic_identical", elastic_ok.to_string()),
        ("ab_one_worker_identical", one_ok.to_string()),
        ("workers_joined", elastic_stats.joined.to_string()),
        ("transfer_tensors", transfer_tensors.to_string()),
        ("workers_lost", workers_lost.to_string()),
        ("reassigned", reassigned.to_string()),
        ("wall_secs_inprocess_2w", format!("{:.3}", local.wall_secs)),
        ("wall_secs_dist_1w", format!("{:.3}", one.wall_secs)),
        ("wall_secs_dist_2w", format!("{:.3}", healthy.wall_secs)),
        ("wall_secs_dist_2w_killed", format!("{:.3}", killed.wall_secs)),
        ("measured_speedup_1to2", format!("{measured_speedup:.3}")),
        ("sim_makespan_1w", format!("{:.3}", sim1.makespan)),
        ("sim_makespan_2w", format!("{:.3}", sim2.makespan)),
        ("predicted_speedup_1to2", format!("{predicted_speedup:.3}")),
    ];
    let h = swt_bench::Harness::new();
    std::fs::write(&out_path, h.to_json(&meta)).expect("write benchmark JSON");
    println!("wrote {out_path}");

    let mut failed = false;
    if !(healthy_ok && killed_ok && elastic_ok && one_ok) {
        eprintln!("FAIL: a distributed run diverged from the in-process baseline");
        failed = true;
    }
    if elastic_stats.joined != 1 {
        eprintln!("FAIL: expected exactly 1 elastic join, saw {}", elastic_stats.joined);
        failed = true;
    }
    if transfer_tensors == 0 {
        eprintln!("FAIL: the A/B never transferred weights (vacuous identity check)");
        failed = true;
    }
    if workers_lost != 1 {
        eprintln!("FAIL: expected exactly 1 lost worker, saw {workers_lost}");
        failed = true;
    }
    if reassigned < 1 || report_reassigned < 1 {
        eprintln!("FAIL: reassignment path not exercised (counter {reassigned})");
        failed = true;
    }
    if failed {
        std::process::exit(1);
    }
    println!(
        "PASS: distributed == in-process (healthy, degraded and 1-worker), \
         {reassigned} reassignment(s) after a mid-run SIGKILL"
    );
}
