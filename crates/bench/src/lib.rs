//! A small, offline benchmark harness.
//!
//! The container builds with no external registry, so criterion is not
//! available; this module provides the subset the repository needs: warmed-up
//! median timing, a named-result collector, and machine-readable JSON output
//! (`BENCH_*.json`) for tracking numbers across commits.

use std::hint::black_box;
use std::time::Instant;

/// One measured benchmark.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchResult {
    /// Dotted path, e.g. `"gemm.blocked.256x256x256"`.
    pub name: String,
    /// Median wall time of one iteration, in nanoseconds.
    pub median_ns: f64,
    /// Iterations actually timed (after warm-up).
    pub iters: usize,
}

/// Time `f` and return the median nanoseconds per iteration.
///
/// The sample count adapts to the cost of `f`: fast closures run often
/// enough for a stable median, second-scale ones only a handful of times.
/// The median (not the mean) is reported so one preempted iteration cannot
/// skew the result.
pub fn median_ns<F: FnMut()>(mut f: F) -> (f64, usize) {
    // One untimed call to warm caches and lazy state.
    f();
    // Calibrate: how long does one call take?
    let t0 = Instant::now();
    f();
    let once = t0.elapsed().as_nanos().max(1) as u64;
    // Target ~200ms of total measurement, clamped to [5, 301] samples.
    let iters = (200_000_000 / once).clamp(5, 301) as usize;
    let mut samples = Vec::with_capacity(iters);
    for _ in 0..iters {
        let t = Instant::now();
        f();
        samples.push(t.elapsed().as_nanos() as u64);
    }
    samples.sort_unstable();
    let mid = samples.len() / 2;
    let median = if samples.len() % 2 == 0 {
        (samples[mid - 1] + samples[mid]) as f64 / 2.0
    } else {
        samples[mid] as f64
    };
    (median, iters)
}

/// Collects named results and renders them as a report or JSON.
#[derive(Debug, Default)]
pub struct Harness {
    results: Vec<BenchResult>,
}

impl Harness {
    pub fn new() -> Self {
        Self::default()
    }

    /// Run one benchmark, print a human-readable line, record the result.
    pub fn bench<F: FnMut()>(&mut self, name: &str, f: F) {
        let (median, iters) = median_ns(f);
        self.record(name, median, iters);
    }

    /// Record an externally measured result. For benchmarks whose iteration
    /// structure the harness cannot drive — e.g. alternating A/B runs where
    /// the two arms must interleave to share drift — the caller times the
    /// runs itself and reports the median here.
    pub fn record(&mut self, name: &str, median_ns: f64, iters: usize) {
        println!("{name:<48} {:>14} ns/iter  ({iters} iters)", group_digits(median_ns));
        self.results.push(BenchResult { name: name.to_string(), median_ns, iters });
    }

    /// Like [`Harness::bench`] but with a per-iteration setup closure whose
    /// cost is excluded by construction: setup output feeds the timed
    /// closure through `black_box`.
    ///
    /// Note the reported time *includes* one `setup` call per iteration, so
    /// use this only when setup is cheap relative to the routine.
    pub fn bench_with_setup<S, T, F>(&mut self, name: &str, mut setup: S, mut f: F)
    where
        S: FnMut() -> T,
        F: FnMut(T),
    {
        self.bench(name, || {
            let input = black_box(setup());
            f(input)
        });
    }

    pub fn results(&self) -> &[BenchResult] {
        &self.results
    }

    /// Median of a previously recorded benchmark.
    pub fn get(&self, name: &str) -> Option<f64> {
        self.results.iter().find(|r| r.name == name).map(|r| r.median_ns)
    }

    /// Render all results as a JSON document (stable key order).
    pub fn to_json(&self, meta: &[(&str, String)]) -> String {
        let mut out = String::from("{\n");
        for (k, v) in meta {
            out.push_str(&format!("  {}: {},\n", json_str(k), json_str(v)));
        }
        out.push_str("  \"results\": [\n");
        for (i, r) in self.results.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"name\": {}, \"median_ns\": {:.1}, \"iters\": {}}}{}\n",
                json_str(&r.name),
                r.median_ns,
                r.iters,
                if i + 1 == self.results.len() { "" } else { "," }
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }
}

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// `1234567.8` -> `"1_234_567"` for readable console output.
fn group_digits(ns: f64) -> String {
    let n = ns.round() as u128;
    let digits = n.to_string();
    let mut out = String::new();
    for (i, c) in digits.chars().enumerate() {
        if i > 0 && (digits.len() - i).is_multiple_of(3) {
            out.push('_');
        }
        out.push(c);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn median_ns_measures_something() {
        let mut x = 0u64;
        let (ns, iters) = median_ns(|| {
            for i in 0..1000u64 {
                x = x.wrapping_add(std::hint::black_box(i));
            }
        });
        assert!(ns > 0.0);
        assert!((5..=301).contains(&iters));
    }

    #[test]
    fn harness_records_and_serialises() {
        let mut h = Harness::new();
        h.bench("noop.fast", || {
            std::hint::black_box(1 + 1);
        });
        assert_eq!(h.results().len(), 1);
        assert!(h.get("noop.fast").is_some());
        assert!(h.get("missing").is_none());
        let json = h.to_json(&[("host", "test".to_string())]);
        assert!(json.contains("\"host\": \"test\""));
        assert!(json.contains("\"name\": \"noop.fast\""));
        assert!(json.contains("\"median_ns\""));
    }

    #[test]
    fn json_escapes_special_characters() {
        assert_eq!(json_str("a\"b\\c"), "\"a\\\"b\\\\c\"");
        assert_eq!(json_str("x\ny"), "\"x\\u000ay\"");
    }

    #[test]
    fn digit_grouping() {
        assert_eq!(group_digits(1234567.8), "1_234_568");
        assert_eq!(group_digits(12.0), "12");
        assert_eq!(group_digits(123.0), "123");
    }
}
