//! Criterion benches for the training substrate: the per-candidate cost
//! model feeding Figs. 7/10 (one epoch of estimation per application) and
//! the checkpoint I/O on its critical path.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use swt::prelude::*;
use swt::nn::AdamConfig;

fn bench_one_epoch_estimate(c: &mut Criterion) {
    // One epoch of candidate estimation per application — the unit of
    // Fig. 7's x-axis and the dominant term of Fig. 10's task cost.
    let mut group = c.benchmark_group("one_epoch_estimate");
    group.sample_size(10);
    for app in AppKind::all() {
        let problem = app.problem(DataScale::Quick, 5);
        let space = SearchSpace::for_app(app);
        let mut rng = Rng::seed(11);
        let arch = space.sample(&mut rng);
        let spec = space.materialize(&arch).unwrap();
        let trainer = Trainer::new(problem.loss, problem.metric);
        let cfg = TrainConfig {
            epochs: 1,
            batch_size: problem.batch_size,
            adam: AdamConfig { lr: problem.lr, ..Default::default() },
            shuffle_seed: 3,
            early_stop: None,
        };
        group.bench_function(BenchmarkId::new("train", app.name()), |bench| {
            bench.iter_batched(
                || Model::build(&spec, 7).unwrap(),
                |mut model| {
                    black_box(trainer.fit(&mut model, &problem.train, &problem.val, &cfg))
                },
                criterion::BatchSize::SmallInput,
            );
        });
    }
    group.finish();
}

fn bench_checkpoint_roundtrip(c: &mut Criterion) {
    // Encode/decode + store round trip per application (Fig. 11's object).
    let mut group = c.benchmark_group("checkpoint");
    for app in AppKind::all() {
        let space = SearchSpace::for_app(app);
        let mut rng = Rng::seed(23);
        let spec = space.materialize(&space.sample(&mut rng)).unwrap();
        let model = Model::build(&spec, 1).unwrap();
        let state = model.state_dict();
        let store = MemStore::new();
        group.bench_function(BenchmarkId::new("save", app.name()), |bench| {
            bench.iter(|| black_box(store.save("bench", &state).unwrap()));
        });
        store.save("bench", &state).unwrap();
        group.bench_function(BenchmarkId::new("load", app.name()), |bench| {
            bench.iter(|| black_box(store.load("bench").unwrap()));
        });
    }
    group.finish();
}

fn bench_model_build(c: &mut Criterion) {
    // Candidate materialisation + init cost (scheduler-side overhead).
    let mut group = c.benchmark_group("model_build");
    for app in AppKind::all() {
        let space = SearchSpace::for_app(app);
        let mut rng = Rng::seed(31);
        let spec = space.materialize(&space.sample(&mut rng)).unwrap();
        group.bench_function(BenchmarkId::new("build", app.name()), |bench| {
            bench.iter(|| black_box(Model::build(&spec, 9).unwrap()));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_one_epoch_estimate, bench_checkpoint_roundtrip, bench_model_build);
criterion_main!(benches);
