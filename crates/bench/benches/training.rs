//! Benches for the training substrate: the per-candidate cost model feeding
//! Figs. 7/10 (one epoch of estimation per application) and the checkpoint
//! I/O on its critical path.
//!
//! Run with `cargo bench -p swt-bench --bench training`.

use std::hint::black_box;
use swt::nn::AdamConfig;
use swt::prelude::*;
use swt_bench::Harness;

fn bench_one_epoch_estimate(h: &mut Harness) {
    // One epoch of candidate estimation per application — the unit of
    // Fig. 7's x-axis and the dominant term of Fig. 10's task cost.
    for app in AppKind::all() {
        let problem = app.problem(DataScale::Quick, 5);
        let space = SearchSpace::for_app(app);
        let mut rng = Rng::seed(11);
        let arch = space.sample(&mut rng);
        let spec = space.materialize(&arch).unwrap();
        let trainer = Trainer::new(problem.loss, problem.metric);
        let cfg = TrainConfig {
            epochs: 1,
            batch_size: problem.batch_size,
            adam: AdamConfig { lr: problem.lr, ..Default::default() },
            shuffle_seed: 3,
            early_stop: None,
            convergence: None,
        };
        h.bench_with_setup(
            &format!("one_epoch_estimate.train.{}", app.name()),
            || Model::build(&spec, 7).unwrap(),
            |mut model| {
                black_box(trainer.fit(&mut model, &problem.train, &problem.val, &cfg));
            },
        );
    }
}

fn bench_checkpoint_roundtrip(h: &mut Harness) {
    // Encode/decode + store round trip per application (Fig. 11's object).
    for app in AppKind::all() {
        let space = SearchSpace::for_app(app);
        let mut rng = Rng::seed(23);
        let spec = space.materialize(&space.sample(&mut rng)).unwrap();
        let model = Model::build(&spec, 1).unwrap();
        let state = model.state_dict();
        let store = MemStore::new();
        h.bench(&format!("checkpoint.save.{}", app.name()), || {
            black_box(store.save("bench", &state).unwrap());
        });
        store.save("bench", &state).unwrap();
        h.bench(&format!("checkpoint.load.{}", app.name()), || {
            black_box(store.load("bench").unwrap());
        });
    }
}

fn bench_model_build(h: &mut Harness) {
    // Candidate materialisation + init cost (scheduler-side overhead).
    for app in AppKind::all() {
        let space = SearchSpace::for_app(app);
        let mut rng = Rng::seed(31);
        let spec = space.materialize(&space.sample(&mut rng)).unwrap();
        h.bench(&format!("model_build.build.{}", app.name()), || {
            black_box(Model::build(&spec, 9).unwrap());
        });
    }
}

fn main() {
    let mut h = Harness::new();
    bench_one_epoch_estimate(&mut h);
    bench_checkpoint_roundtrip(&mut h);
    bench_model_build(&mut h);
}
