//! Benches for the LP/LCS matchers and transfer-plan machinery — the
//! paper's "at most 150 ms" mechanism cost (Section VIII-E).
//!
//! Run with `cargo bench -p swt-bench --bench matchers`.

use std::hint::black_box;
use swt::prelude::*;
use swt_bench::Harness;

/// Synthetic shape sequences of a given length with realistic collision
/// rates (shapes drawn from a small alphabet).
fn shape_seq(len: usize, seed: u64) -> ShapeSeq {
    let mut rng = Rng::seed(seed);
    let params = (0..len)
        .map(|i| {
            let a = 1 + rng.below(6);
            let b = 1 + rng.below(6);
            (format!("l{i}/kernel"), Shape::new([a * 8, b * 8]))
        })
        .collect();
    ShapeSeq::from_params(params)
}

fn bench_matchers(h: &mut Harness) {
    for &len in &[8usize, 32, 128] {
        let a = shape_seq(len, 1);
        let b = shape_seq(len, 2);
        h.bench(&format!("matchers.lp.{len}"), || {
            black_box(lp_match(&a.shapes(), &b.shapes()));
        });
        h.bench(&format!("matchers.lcs.{len}"), || {
            black_box(lcs_match(&a.shapes(), &b.shapes()));
        });
        h.bench(&format!("matchers.plan_lcs.{len}"), || {
            black_box(TransferPlan::build(Matcher::Lcs, &a, &b));
        });
    }
}

fn bench_real_space_matching(h: &mut Harness) {
    // End-to-end matching cost on real search-space candidates (what the
    // evaluator pays per child, minus I/O).
    for app in AppKind::all() {
        let space = SearchSpace::for_app(app);
        let mut rng = Rng::seed(7);
        let parent = space.sample(&mut rng);
        let child = space.mutate(&parent, &mut rng);
        let pseq = ShapeSeq::of(&space.materialize(&parent).unwrap()).unwrap();
        let cseq = ShapeSeq::of(&space.materialize(&child).unwrap()).unwrap();
        h.bench(&format!("real_space.lcs_plan.{}", app.name()), || {
            black_box(TransferPlan::build(Matcher::Lcs, &pseq, &cseq));
        });
        let spec = space.materialize(&parent).unwrap();
        h.bench(&format!("real_space.shape_seq_extract.{}", app.name()), || {
            black_box(ShapeSeq::of(&spec).unwrap());
        });
    }
}

fn bench_apply_transfer(h: &mut Harness) {
    // Weight-copy throughput: provider checkpoint -> receiver model.
    let space = SearchSpace::for_app(AppKind::Cifar10);
    let mut rng = Rng::seed(3);
    let parent = space.sample(&mut rng);
    let child = space.mutate(&parent, &mut rng);
    let pspec = space.materialize(&parent).unwrap();
    let cspec = space.materialize(&child).unwrap();
    let provider = Model::build(&pspec, 1).unwrap();
    let ckpt = provider.state_dict();
    let plan = TransferPlan::build(
        Matcher::Lcs,
        &ShapeSeq::of(&pspec).unwrap(),
        &ShapeSeq::of(&cspec).unwrap(),
    );
    h.bench_with_setup(
        "transfer.apply_cifar_child",
        || Model::build(&cspec, 2).unwrap(),
        |mut receiver| {
            black_box(apply_transfer(&plan, &ckpt, &mut receiver));
        },
    );
}

fn main() {
    let mut h = Harness::new();
    bench_matchers(&mut h);
    bench_real_space_matching(&mut h);
    bench_apply_transfer(&mut h);
}
