//! Criterion benches for the LP/LCS matchers and transfer-plan machinery —
//! the paper's "at most 150 ms" mechanism cost (Section VIII-E).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use swt::prelude::*;
use std::hint::black_box;

/// Synthetic shape sequences of a given length with realistic collision
/// rates (shapes drawn from a small alphabet).
fn shape_seq(len: usize, seed: u64) -> ShapeSeq {
    let mut rng = Rng::seed(seed);
    let params = (0..len)
        .map(|i| {
            let a = 1 + rng.below(6);
            let b = 1 + rng.below(6);
            (format!("l{i}/kernel"), Shape::new([a * 8, b * 8]))
        })
        .collect();
    ShapeSeq::from_params(params)
}

fn bench_matchers(c: &mut Criterion) {
    let mut group = c.benchmark_group("matchers");
    for &len in &[8usize, 32, 128] {
        let a = shape_seq(len, 1);
        let b = shape_seq(len, 2);
        group.bench_with_input(BenchmarkId::new("lp", len), &len, |bench, _| {
            bench.iter(|| black_box(lp_match(&a.shapes(), &b.shapes())));
        });
        group.bench_with_input(BenchmarkId::new("lcs", len), &len, |bench, _| {
            bench.iter(|| black_box(lcs_match(&a.shapes(), &b.shapes())));
        });
        group.bench_with_input(BenchmarkId::new("plan_lcs", len), &len, |bench, _| {
            bench.iter(|| black_box(TransferPlan::build(Matcher::Lcs, &a, &b)));
        });
    }
    group.finish();
}

fn bench_real_space_matching(c: &mut Criterion) {
    // End-to-end matching cost on real search-space candidates (what the
    // evaluator pays per child, minus I/O).
    let mut group = c.benchmark_group("real_space");
    for app in AppKind::all() {
        let space = SearchSpace::for_app(app);
        let mut rng = Rng::seed(7);
        let parent = space.sample(&mut rng);
        let child = space.mutate(&parent, &mut rng);
        let pseq = ShapeSeq::of(&space.materialize(&parent).unwrap()).unwrap();
        let cseq = ShapeSeq::of(&space.materialize(&child).unwrap()).unwrap();
        group.bench_function(BenchmarkId::new("lcs_plan", app.name()), |bench| {
            bench.iter(|| black_box(TransferPlan::build(Matcher::Lcs, &pseq, &cseq)));
        });
        group.bench_function(BenchmarkId::new("shape_seq_extract", app.name()), |bench| {
            let spec = space.materialize(&parent).unwrap();
            bench.iter(|| black_box(ShapeSeq::of(&spec).unwrap()));
        });
    }
    group.finish();
}

fn bench_apply_transfer(c: &mut Criterion) {
    // Weight-copy throughput: provider checkpoint -> receiver model.
    let space = SearchSpace::for_app(AppKind::Cifar10);
    let mut rng = Rng::seed(3);
    let parent = space.sample(&mut rng);
    let child = space.mutate(&parent, &mut rng);
    let pspec = space.materialize(&parent).unwrap();
    let cspec = space.materialize(&child).unwrap();
    let provider = Model::build(&pspec, 1).unwrap();
    let ckpt = provider.state_dict();
    let plan = TransferPlan::build(
        Matcher::Lcs,
        &ShapeSeq::of(&pspec).unwrap(),
        &ShapeSeq::of(&cspec).unwrap(),
    );
    c.bench_function("apply_transfer_cifar_child", |bench| {
        bench.iter_batched(
            || Model::build(&cspec, 2).unwrap(),
            |mut receiver| black_box(apply_transfer(&plan, &ckpt, &mut receiver)),
            criterion::BatchSize::SmallInput,
        );
    });
}

criterion_group!(benches, bench_matchers, bench_real_space_matching, bench_apply_transfer);
criterion_main!(benches);
