//! Criterion benches over NAS-level machinery: strategy stepping, provider
//! selection, pair analysis, Kendall's tau and the cluster simulator — one
//! target per remaining table/figure (see DESIGN.md §4).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use std::sync::Arc;
use swt::nas::{RegularizedEvolution, ScoredCandidate, SearchStrategy};
use swt::prelude::*;

fn bench_evolution_step(c: &mut Criterion) {
    // Scheduler-side cost per candidate (Fig. 7's non-training overhead).
    let space = Arc::new(SearchSpace::for_app(AppKind::Cifar10));
    c.bench_function("evolution_next_report", |bench| {
        let mut evo = RegularizedEvolution::new(Arc::clone(&space), 64, 32);
        let mut rng = Rng::seed(1);
        // Pre-fill the population.
        for _ in 0..64 {
            let cand = evo.next(&mut rng);
            evo.report(ScoredCandidate { id: cand.id, score: 0.5, arch: cand.arch });
        }
        bench.iter(|| {
            let cand = evo.next(&mut rng);
            let id = cand.id;
            evo.report(ScoredCandidate { id, score: 0.5, arch: cand.arch });
            black_box(id)
        });
    });
}

fn bench_provider_scan(c: &mut Criterion) {
    // The nearest-provider scan the paper avoids by integrating with
    // evolution (Section V-B) — quantifying what the integration saves.
    let space = SearchSpace::for_app(AppKind::Cifar10);
    let mut rng = Rng::seed(2);
    let mut group = c.benchmark_group("provider_scan");
    for &pool_size in &[64usize, 512, 4096] {
        let pool: Vec<swt::core::PoolEntry<u64>> = (0..pool_size as u64)
            .map(|id| swt::core::PoolEntry { id, arch: space.sample(&mut rng), score: 0.1 })
            .collect();
        let receiver = space.sample(&mut rng);
        group.bench_with_input(BenchmarkId::from_parameter(pool_size), &pool_size, |bench, _| {
            bench.iter(|| black_box(select_nearest(&receiver, &pool)));
        });
    }
    group.finish();
}

fn bench_kendall(c: &mut Criterion) {
    // Fig. 9's statistic at the paper's n = 100.
    let mut rng = Rng::seed(3);
    let xs: Vec<f64> = (0..100).map(|_| rng.normal() as f64).collect();
    let ys: Vec<f64> = xs.iter().map(|x| x + 0.5 * rng.normal() as f64).collect();
    c.bench_function("kendall_tau_n100", |bench| {
        bench.iter(|| black_box(kendall_tau(&xs, &ys)));
    });
}

fn bench_cluster_sim(c: &mut Criterion) {
    // Fig. 10's simulator: 400 tasks on 32 GPUs.
    let tasks: Vec<TaskCost> = (0..400)
        .map(|i| TaskCost {
            train_secs: 6.0 + (i % 5) as f64,
            read_bytes: if i % 2 == 0 { 40_000_000 } else { 0 },
            transfer_secs: 0.1,
            write_bytes: 40_000_000,
        })
        .collect();
    let mut group = c.benchmark_group("cluster_sim");
    for nodes in [1usize, 2, 4] {
        let cfg = ClusterConfig::node_type_a(nodes);
        group.bench_with_input(
            BenchmarkId::from_parameter(nodes * 8),
            &nodes,
            |bench, _| {
                bench.iter(|| black_box(simulate(&cfg, &tasks)));
            },
        );
    }
    group.finish();
}

fn bench_space_ops(c: &mut Criterion) {
    // Table I machinery: sampling/mutation/materialisation per app.
    let mut group = c.benchmark_group("space_ops");
    for app in AppKind::all() {
        let space = SearchSpace::for_app(app);
        let mut rng = Rng::seed(4);
        group.bench_function(BenchmarkId::new("sample", app.name()), |bench| {
            bench.iter(|| black_box(space.sample(&mut rng)));
        });
        let parent = space.sample(&mut rng);
        group.bench_function(BenchmarkId::new("mutate", app.name()), |bench| {
            bench.iter(|| black_box(space.mutate(&parent, &mut rng)));
        });
        group.bench_function(BenchmarkId::new("materialize", app.name()), |bench| {
            bench.iter(|| black_box(space.materialize(&parent).unwrap()));
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_evolution_step,
    bench_provider_scan,
    bench_kendall,
    bench_cluster_sim,
    bench_space_ops
);
criterion_main!(benches);
