//! Benches over NAS-level machinery: strategy stepping, provider selection,
//! Kendall's tau and the cluster simulator — one target per remaining
//! table/figure (see DESIGN.md §4).
//!
//! Run with `cargo bench -p swt-bench --bench nas`.

use std::hint::black_box;
use std::sync::Arc;
use swt::nas::{RegularizedEvolution, ScoredCandidate, SearchStrategy};
use swt::prelude::*;
use swt_bench::Harness;

fn bench_evolution_step(h: &mut Harness) {
    // Scheduler-side cost per candidate (Fig. 7's non-training overhead).
    let space = Arc::new(SearchSpace::for_app(AppKind::Cifar10));
    let mut evo = RegularizedEvolution::new(Arc::clone(&space), 64, 32);
    let mut rng = Rng::seed(1);
    // Pre-fill the population.
    for _ in 0..64 {
        let cand = evo.next(&mut rng);
        evo.report(ScoredCandidate { id: cand.id, score: 0.5, arch: cand.arch });
    }
    h.bench("evolution.next_report", || {
        let cand = evo.next(&mut rng);
        let id = cand.id;
        evo.report(ScoredCandidate { id, score: 0.5, arch: cand.arch });
        black_box(id);
    });
}

fn bench_provider_scan(h: &mut Harness) {
    // The nearest-provider scan the paper avoids by integrating with
    // evolution (Section V-B) — quantifying what the integration saves.
    let space = SearchSpace::for_app(AppKind::Cifar10);
    let mut rng = Rng::seed(2);
    for &pool_size in &[64usize, 512, 4096] {
        let pool: Vec<swt::core::PoolEntry<u64>> = (0..pool_size as u64)
            .map(|id| swt::core::PoolEntry { id, arch: space.sample(&mut rng), score: 0.1 })
            .collect();
        let receiver = space.sample(&mut rng);
        h.bench(&format!("provider_scan.{pool_size}"), || {
            black_box(select_nearest(&receiver, &pool));
        });
    }
}

fn bench_kendall(h: &mut Harness) {
    // Fig. 9's statistic at the paper's n = 100.
    let mut rng = Rng::seed(3);
    let xs: Vec<f64> = (0..100).map(|_| rng.normal() as f64).collect();
    let ys: Vec<f64> = xs.iter().map(|x| x + 0.5 * rng.normal() as f64).collect();
    h.bench("kendall_tau.n100", || {
        black_box(kendall_tau(&xs, &ys));
    });
}

fn bench_cluster_sim(h: &mut Harness) {
    // Fig. 10's simulator: 400 tasks on up to 32 GPUs.
    let tasks: Vec<TaskCost> = (0..400)
        .map(|i| TaskCost {
            train_secs: 6.0 + (i % 5) as f64,
            read_bytes: if i % 2 == 0 { 40_000_000 } else { 0 },
            transfer_secs: 0.1,
            write_bytes: 40_000_000,
        })
        .collect();
    for nodes in [1usize, 2, 4] {
        let cfg = ClusterConfig::node_type_a(nodes);
        h.bench(&format!("cluster_sim.{}gpus", nodes * 8), || {
            black_box(simulate(&cfg, &tasks));
        });
    }
}

fn bench_space_ops(h: &mut Harness) {
    // Table I machinery: sampling/mutation/materialisation per app.
    for app in AppKind::all() {
        let space = SearchSpace::for_app(app);
        let mut rng = Rng::seed(4);
        h.bench(&format!("space_ops.sample.{}", app.name()), || {
            black_box(space.sample(&mut rng));
        });
        let parent = space.sample(&mut rng);
        h.bench(&format!("space_ops.mutate.{}", app.name()), || {
            black_box(space.mutate(&parent, &mut rng));
        });
        h.bench(&format!("space_ops.materialize.{}", app.name()), || {
            black_box(space.materialize(&parent).unwrap());
        });
    }
}

fn main() {
    let mut h = Harness::new();
    bench_evolution_step(&mut h);
    bench_provider_scan(&mut h);
    bench_kendall(&mut h);
    bench_cluster_sim(&mut h);
    bench_space_ops(&mut h);
}
