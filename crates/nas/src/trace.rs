//! NAS run traces: everything needed to reproduce the paper's plots.

use crate::candidate::CandidateId;
use crate::evaluator::StopReason;
use std::io::{self, BufRead, BufWriter, Write};
use std::path::Path;
use swt_core::TransferScheme;
use swt_space::ArchSeq;

/// One completed candidate evaluation.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    pub id: CandidateId,
    pub arch: ArchSeq,
    pub parent: Option<CandidateId>,
    pub score: f64,
    /// Seconds from run start when the evaluation began / returned — the
    /// paper plots scores at their return time `t` (Fig. 7).
    pub t_start: f64,
    pub t_end: f64,
    pub train_secs: f64,
    pub transfer_secs: f64,
    pub save_secs: f64,
    pub checkpoint_bytes: u64,
    pub transfer_tensors: usize,
    pub transfer_bytes: usize,
    /// Successive-halving rung this dispatch ran at (0 without fidelity).
    pub rung: u8,
    /// Why evaluation ended ([`StopReason::BudgetExhausted`] without
    /// fidelity).
    pub stop: StopReason,
}

impl TraceEvent {
    /// True iff the event carries no fidelity information — the shape every
    /// pre-fidelity trace row has. An all-default trace serialises in the
    /// legacy column layout, byte-identically to older releases.
    fn fidelity_default(&self) -> bool {
        self.rung == 0 && self.stop == StopReason::BudgetExhausted
    }
}

/// A complete NAS run: the scheme, every event, and the wall-clock duration.
#[derive(Debug, Clone, PartialEq)]
pub struct NasTrace {
    pub app: String,
    pub scheme: TransferScheme,
    pub seed: u64,
    pub workers: usize,
    pub events: Vec<TraceEvent>,
    pub wall_secs: f64,
}

impl NasTrace {
    /// Events sorted by completion time (the scheduler may record them in a
    /// different order under concurrency). NaN completion times sort last.
    pub fn by_completion(&self) -> Vec<&TraceEvent> {
        let mut v: Vec<&TraceEvent> = self.events.iter().collect();
        v.sort_by(|a, b| a.t_end.total_cmp(&b.t_end));
        v
    }

    /// The `k` best events by score (ties broken by earlier completion).
    /// NaN scores (a diverged loss can produce one) rank below every real
    /// score instead of panicking the sort.
    pub fn top_k(&self, k: usize) -> Vec<&TraceEvent> {
        let nan_last = |x: f64| {
            // Collapse every NaN bit pattern below -inf in the total order.
            if x.is_nan() {
                f64::NEG_INFINITY
            } else {
                x
            }
        };
        let mut v: Vec<&TraceEvent> = self.events.iter().collect();
        v.sort_by(|a, b| {
            nan_last(b.score).total_cmp(&nan_last(a.score)).then(a.t_end.total_cmp(&b.t_end))
        });
        v.truncate(k);
        v
    }

    /// Transfer-lineage depth of each candidate: the number of ancestors it
    /// inherited weights from through the parent chain (0 for from-scratch
    /// candidates). Under weight transfer, a candidate at depth `k` carries
    /// roughly `k + 1` epochs of accumulated training — the mechanism behind
    /// the paper's Fig. 8 full-training speedup.
    pub fn lineage_depths(&self) -> std::collections::HashMap<CandidateId, usize> {
        let parent_of: std::collections::HashMap<CandidateId, Option<CandidateId>> = self
            .events
            .iter()
            .map(|e| (e.id, if e.transfer_tensors > 0 { e.parent } else { None }))
            .collect();
        // Depths are memoized as chains are walked, so each candidate is
        // visited O(1) times amortized and deep lineages stay linear (the
        // naive per-event re-walk is O(n²) on a single long chain).
        let mut depths: std::collections::HashMap<CandidateId, usize> =
            std::collections::HashMap::with_capacity(self.events.len());
        let mut chain: Vec<CandidateId> = Vec::new();
        for e in &self.events {
            let mut cursor = e.id;
            // Walk up to the first candidate with a known depth (or a chain
            // root), stacking the unresolved ids. Parents always have
            // smaller ids than children, so chains are finite; the guard
            // caps pathological traces.
            let base = loop {
                if let Some(&d) = depths.get(&cursor) {
                    break d;
                }
                match parent_of.get(&cursor) {
                    Some(&Some(parent)) if chain.len() <= self.events.len() => {
                        chain.push(cursor);
                        cursor = parent;
                    }
                    _ => {
                        if parent_of.contains_key(&cursor) {
                            depths.insert(cursor, 0);
                        }
                        break 0;
                    }
                }
            };
            for (above_base, id) in chain.drain(..).rev().enumerate() {
                depths.insert(id, base + above_base + 1);
            }
        }
        depths
    }

    /// Mean lineage depth across all candidates.
    pub fn mean_lineage_depth(&self) -> f64 {
        if self.events.is_empty() {
            return 0.0;
        }
        let depths = self.lineage_depths();
        depths.values().map(|&d| d as f64).sum::<f64>() / depths.len() as f64
    }

    /// Mean checkpoint size in bytes (Fig. 11).
    pub fn mean_checkpoint_bytes(&self) -> f64 {
        if self.events.is_empty() {
            return 0.0;
        }
        self.events.iter().map(|e| e.checkpoint_bytes as f64).sum::<f64>()
            / self.events.len() as f64
    }

    /// True iff any event carries fidelity state (a non-zero rung or a
    /// non-budget stop reason). Fidelity-off traces serialise in the legacy
    /// column layout so their bytes match pre-fidelity releases exactly.
    fn has_fidelity_columns(&self) -> bool {
        self.events.iter().any(|e| !e.fidelity_default())
    }

    /// Write the trace as CSV (one header + one row per event).
    pub fn write_csv(&self, path: &Path) -> io::Result<()> {
        let file = std::fs::File::create(path)?;
        let mut w = BufWriter::new(file);
        let fidelity = self.has_fidelity_columns();
        writeln!(
            w,
            "# app={} scheme={} seed={} workers={} wall_secs={}",
            self.app,
            self.scheme.name(),
            self.seed,
            self.workers,
            self.wall_secs
        )?;
        writeln!(
            w,
            "id,arch,parent,score,t_start,t_end,train_secs,transfer_secs,save_secs,checkpoint_bytes,transfer_tensors,transfer_bytes{}",
            if fidelity { ",rung,stop" } else { "" }
        )?;
        for e in &self.events {
            write!(
                w,
                "{},{},{},{},{},{},{},{},{},{},{},{}",
                e.id,
                e.arch.encode(),
                e.parent.map(|p| p.to_string()).unwrap_or_default(),
                e.score,
                e.t_start,
                e.t_end,
                e.train_secs,
                e.transfer_secs,
                e.save_secs,
                e.checkpoint_bytes,
                e.transfer_tensors,
                e.transfer_bytes
            )?;
            if fidelity {
                write!(w, ",{},{}", e.rung, e.stop.label())?;
            }
            writeln!(w)?;
        }
        w.flush()
    }

    /// The trace's canonical form: only the deterministic columns — no
    /// wall-clock timings — so two runs of the same `NasConfig` produce
    /// byte-identical output whatever backend ran them, however many
    /// workers died or joined along the way. This is what identity gates
    /// (`--canonical-trace`, the elastic test matrix, the CI smoke) `cmp`.
    pub fn canonical_csv(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        // Fidelity columns appear only when some event carries them, so a
        // run with every fidelity feature off emits the legacy 7-column
        // layout byte-for-byte (the off-switch A/B gate in check.sh).
        let fidelity = self.has_fidelity_columns();
        let _ = writeln!(
            out,
            "# app={} scheme={} seed={} workers={}",
            self.app,
            self.scheme.name(),
            self.seed,
            self.workers
        );
        let _ = writeln!(
            out,
            "id,arch,parent,score,checkpoint_bytes,transfer_tensors,transfer_bytes{}",
            if fidelity { ",rung,stop" } else { "" }
        );
        for e in &self.events {
            let _ = write!(
                out,
                "{},{},{},{},{},{},{}",
                e.id,
                e.arch.encode(),
                e.parent.map(|p| p.to_string()).unwrap_or_default(),
                // Bit-faithful float formatting: Rust's shortest-round-trip
                // `Display` for f64 is injective, so equal strings ⇔ equal
                // bit patterns (modulo NaN payloads, which never reach a
                // canonical trace comparison meaningfully).
                e.score,
                e.checkpoint_bytes,
                e.transfer_tensors,
                e.transfer_bytes
            );
            if fidelity {
                let _ = write!(out, ",{},{}", e.rung, e.stop.label());
            }
            out.push('\n');
        }
        out
    }

    /// Write [`NasTrace::canonical_csv`] to `path`.
    pub fn write_canonical_csv(&self, path: &Path) -> io::Result<()> {
        std::fs::write(path, self.canonical_csv())
    }

    /// Read a trace written by [`NasTrace::write_csv`].
    pub fn read_csv(path: &Path) -> io::Result<NasTrace> {
        let file = std::fs::File::open(path)?;
        let mut lines = io::BufReader::new(file).lines();
        let header = lines
            .next()
            .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "empty trace"))??;
        let mut app = String::new();
        let mut scheme = TransferScheme::Baseline;
        let mut seed = 0u64;
        let mut workers = 0usize;
        let mut wall_secs = 0.0f64;
        for token in header.trim_start_matches('#').split_whitespace() {
            if let Some((k, v)) = token.split_once('=') {
                match k {
                    "app" => app = v.to_string(),
                    "scheme" => {
                        scheme = match v {
                            "LP" => TransferScheme::Lp,
                            "LCS" => TransferScheme::Lcs,
                            _ => TransferScheme::Baseline,
                        }
                    }
                    "seed" => seed = v.parse().unwrap_or(0),
                    "workers" => workers = v.parse().unwrap_or(0),
                    "wall_secs" => wall_secs = v.parse().unwrap_or(0.0),
                    _ => {}
                }
            }
        }
        let _column_header = lines.next();
        let bad = |msg: &str| io::Error::new(io::ErrorKind::InvalidData, msg.to_string());
        let mut events = Vec::new();
        for line in lines {
            let line = line?;
            if line.trim().is_empty() {
                continue;
            }
            let cols: Vec<&str> = line.split(',').collect();
            // 12 columns = the legacy layout; 14 = with fidelity (rung, stop).
            if cols.len() != 12 && cols.len() != 14 {
                return Err(bad(&format!("expected 12 or 14 columns, got {}", cols.len())));
            }
            events.push(TraceEvent {
                id: cols[0].parse().map_err(|_| bad("id"))?,
                arch: ArchSeq::decode(cols[1]).ok_or_else(|| bad("arch"))?,
                parent: if cols[2].is_empty() {
                    None
                } else {
                    Some(cols[2].parse().map_err(|_| bad("parent"))?)
                },
                score: cols[3].parse().map_err(|_| bad("score"))?,
                t_start: cols[4].parse().map_err(|_| bad("t_start"))?,
                t_end: cols[5].parse().map_err(|_| bad("t_end"))?,
                train_secs: cols[6].parse().map_err(|_| bad("train_secs"))?,
                transfer_secs: cols[7].parse().map_err(|_| bad("transfer_secs"))?,
                save_secs: cols[8].parse().map_err(|_| bad("save_secs"))?,
                checkpoint_bytes: cols[9].parse().map_err(|_| bad("checkpoint_bytes"))?,
                transfer_tensors: cols[10].parse().map_err(|_| bad("transfer_tensors"))?,
                transfer_bytes: cols[11].parse().map_err(|_| bad("transfer_bytes"))?,
                rung: if cols.len() > 12 { cols[12].parse().map_err(|_| bad("rung"))? } else { 0 },
                stop: if cols.len() > 13 {
                    StopReason::from_label(cols[13]).ok_or_else(|| bad("stop"))?
                } else {
                    StopReason::BudgetExhausted
                },
            });
        }
        Ok(NasTrace { app, scheme, seed, workers, events, wall_secs })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn event(id: CandidateId, score: f64, t_end: f64) -> TraceEvent {
        TraceEvent {
            id,
            arch: ArchSeq::new(vec![1, 2, 3]),
            parent: if id > 0 { Some(id - 1) } else { None },
            score,
            t_start: t_end - 1.0,
            t_end,
            train_secs: 0.9,
            transfer_secs: 0.05,
            save_secs: 0.02,
            checkpoint_bytes: 1000 + id,
            transfer_tensors: 3,
            transfer_bytes: 400,
            rung: 0,
            stop: StopReason::BudgetExhausted,
        }
    }

    fn trace() -> NasTrace {
        NasTrace {
            app: "Uno".into(),
            scheme: TransferScheme::Lcs,
            seed: 9,
            workers: 4,
            events: vec![event(0, 0.5, 3.0), event(1, 0.9, 2.0), event(2, 0.7, 1.0)],
            wall_secs: 3.5,
        }
    }

    #[test]
    fn completion_ordering() {
        let t = trace();
        let order: Vec<CandidateId> = t.by_completion().iter().map(|e| e.id).collect();
        assert_eq!(order, vec![2, 1, 0]);
    }

    #[test]
    fn top_k_by_score() {
        let t = trace();
        let top: Vec<CandidateId> = t.top_k(2).iter().map(|e| e.id).collect();
        assert_eq!(top, vec![1, 2]);
        assert_eq!(t.top_k(100).len(), 3);
    }

    #[test]
    fn mean_checkpoint_bytes() {
        let t = trace();
        assert!((t.mean_checkpoint_bytes() - 1001.0).abs() < 1e-9);
    }

    #[test]
    fn lineage_depths_follow_parent_chains() {
        // c0 scratch; c1 transfers from c0; c2 transfers from c1; c3 has a
        // parent but transferred nothing (failed load) -> depth 0.
        let mut t = trace();
        t.events = vec![event(0, 0.1, 1.0), event(1, 0.2, 2.0), event(2, 0.3, 3.0), {
            let mut e = event(3, 0.4, 4.0);
            e.transfer_tensors = 0;
            e
        }];
        t.events[0].parent = None;
        t.events[0].transfer_tensors = 0;
        let depths = t.lineage_depths();
        assert_eq!(depths[&0], 0);
        assert_eq!(depths[&1], 1);
        assert_eq!(depths[&2], 2);
        assert_eq!(depths[&3], 0, "failed transfer breaks the chain");
        assert!((t.mean_lineage_depth() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn nan_scores_sort_without_panicking() {
        // A diverged candidate reports NaN; ordering helpers must stay
        // total (this used to panic in partial_cmp().unwrap()).
        let mut t = trace();
        t.events.push(event(3, f64::NAN, 4.0));
        t.events.push(event(4, 0.8, f64::NAN));
        let top: Vec<CandidateId> = t.top_k(5).iter().map(|e| e.id).collect();
        assert_eq!(top.len(), 5);
        assert_eq!(*top.last().unwrap(), 3, "NaN score ranks below every real score");
        assert_eq!(top[..2], [1, 4], "finite scores keep their order");
        let order: Vec<CandidateId> = t.by_completion().iter().map(|e| e.id).collect();
        assert_eq!(*order.last().unwrap(), 4, "NaN completion time sorts last");
    }

    #[test]
    fn lineage_depths_linear_on_deep_chains() {
        // One unbroken 5000-candidate transfer chain: the memoized walk
        // resolves each id once (the naive O(n²) re-walk would do ~12.5M
        // hops here and shows up instantly under a debug build).
        let n: u64 = 5000;
        let mut t = trace();
        t.events = (0..n).map(|id| event(id, 0.5, id as f64 + 1.0)).collect();
        t.events[0].parent = None;
        t.events[0].transfer_tensors = 0;
        let depths = t.lineage_depths();
        assert_eq!(depths.len(), n as usize);
        for id in 0..n {
            assert_eq!(depths[&id], id as usize, "depth of c{id}");
        }
        assert!((t.mean_lineage_depth() - (n - 1) as f64 / 2.0).abs() < 1e-9);
        // Events arriving child-before-parent still resolve identically.
        t.events.reverse();
        assert_eq!(t.lineage_depths()[&(n - 1)], (n - 1) as usize);
    }

    #[test]
    fn csv_round_trip() {
        let t = trace();
        let path = std::env::temp_dir().join(format!("swt_trace_{}.csv", std::process::id()));
        t.write_csv(&path).unwrap();
        let back = NasTrace::read_csv(&path).unwrap();
        assert_eq!(back, t);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn canonical_csv_drops_every_wall_clock_column() {
        let mut a = trace();
        let mut b = trace();
        // Perturb everything timing-related; the canonical form must not see it.
        b.wall_secs = 99.0;
        for e in &mut b.events {
            e.t_start += 7.5;
            e.t_end += 7.5;
            e.train_secs *= 3.0;
            e.transfer_secs += 1.0;
            e.save_secs += 1.0;
        }
        assert_eq!(a.canonical_csv(), b.canonical_csv());
        // But it must see every deterministic column.
        b.events[1].score += 1e-15;
        assert_ne!(a.canonical_csv(), b.canonical_csv(), "score changes are visible");
        a.events[0].checkpoint_bytes += 1;
        assert_ne!(a.canonical_csv(), trace().canonical_csv());
    }

    #[test]
    fn canonical_csv_writes_to_disk() {
        let t = trace();
        let path = std::env::temp_dir().join(format!("swt_trace_canon_{}.csv", std::process::id()));
        t.write_canonical_csv(&path).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        std::fs::remove_file(&path).unwrap();
        assert_eq!(text, t.canonical_csv());
        assert!(text.starts_with("# app=Uno scheme=LCS seed=9 workers=4\n"));
        assert!(!text.contains("wall_secs"), "no wall-clock leaks into the header");
    }

    #[test]
    fn csv_header_unknown_scheme_falls_back_to_baseline() {
        let path =
            std::env::temp_dir().join(format!("swt_trace_scheme_{}.csv", std::process::id()));
        std::fs::write(&path, "# app=X scheme=FUTURE seed=7 workers=2 wall_secs=1.5\nheader\n")
            .unwrap();
        let t = NasTrace::read_csv(&path).unwrap();
        std::fs::remove_file(&path).unwrap();
        assert_eq!(t.scheme, TransferScheme::Baseline);
        assert_eq!((t.seed, t.workers), (7, 2));
        assert_eq!(t.wall_secs, 1.5);
        assert!(t.events.is_empty());
    }

    #[test]
    fn csv_header_missing_wall_secs_defaults_to_zero() {
        let path = std::env::temp_dir().join(format!("swt_trace_wall_{}.csv", std::process::id()));
        std::fs::write(&path, "# app=X scheme=LP seed=1 workers=1\nheader\n").unwrap();
        let t = NasTrace::read_csv(&path).unwrap();
        std::fs::remove_file(&path).unwrap();
        assert_eq!(t.scheme, TransferScheme::Lp);
        assert_eq!(t.wall_secs, 0.0);
    }

    #[test]
    fn csv_skips_trailing_blank_lines() {
        let t = trace();
        let path = std::env::temp_dir().join(format!("swt_trace_blank_{}.csv", std::process::id()));
        t.write_csv(&path).unwrap();
        let mut text = std::fs::read_to_string(&path).unwrap();
        text.push_str("\n  \n\n");
        std::fs::write(&path, text).unwrap();
        let back = NasTrace::read_csv(&path).unwrap();
        std::fs::remove_file(&path).unwrap();
        assert_eq!(back, t);
    }

    #[test]
    fn csv_rejects_malformed_rows() {
        let path = std::env::temp_dir().join(format!("swt_badtrace_{}.csv", std::process::id()));
        std::fs::write(&path, "# app=X scheme=LP seed=1 workers=1 wall_secs=1\nheader\n1,2,3\n")
            .unwrap();
        assert!(NasTrace::read_csv(&path).is_err());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn fidelity_columns_appear_only_when_carried() {
        let plain = trace();
        assert!(!plain.canonical_csv().contains("rung"), "all-default traces stay 7-column");
        let mut fid = trace();
        fid.events[1].rung = 1;
        fid.events[2].stop = StopReason::Pruned;
        let canon = fid.canonical_csv();
        assert!(canon.contains(",rung,stop"), "fidelity header columns present");
        assert!(canon.contains(",1,budget"), "rung column rendered");
        assert!(canon.contains(",0,pruned"), "stop label rendered");
    }

    #[test]
    fn fidelity_csv_round_trips_and_legacy_reads_default() {
        let mut t = trace();
        t.events[0].stop = StopReason::Prefiltered;
        t.events[0].score = f64::NEG_INFINITY;
        t.events[2].rung = 2;
        t.events[2].stop = StopReason::Converged;
        let path = std::env::temp_dir().join(format!("swt_trace_fid_{}.csv", std::process::id()));
        t.write_csv(&path).unwrap();
        let back = NasTrace::read_csv(&path).unwrap();
        std::fs::remove_file(&path).unwrap();
        assert_eq!(back, t, "14-column round trip preserves rung and stop");

        // A legacy 12-column file (what every older release wrote) reads
        // with default fidelity fields.
        let legacy = trace();
        let path = std::env::temp_dir().join(format!("swt_trace_leg_{}.csv", std::process::id()));
        legacy.write_csv(&path).unwrap();
        let back = NasTrace::read_csv(&path).unwrap();
        std::fs::remove_file(&path).unwrap();
        assert!(back.events.iter().all(|e| e.fidelity_default()));
        assert_eq!(back, legacy);
    }

    #[test]
    fn csv_rejects_unknown_stop_labels() {
        let path = std::env::temp_dir().join(format!("swt_trace_bad_{}.csv", std::process::id()));
        let mut t = trace();
        t.events[0].rung = 1;
        t.write_csv(&path).unwrap();
        let text = std::fs::read_to_string(&path).unwrap().replace(",budget", ",mystery");
        std::fs::write(&path, text).unwrap();
        assert!(NasTrace::read_csv(&path).is_err());
        std::fs::remove_file(&path).unwrap();
    }
}
