//! Candidate records flowing between the scheduler and the evaluators.

use swt_space::ArchSeq;

/// Candidate identifier, unique within one NAS run and doubling as the
/// checkpoint id (`c{id}`).
pub type CandidateId = u64;

/// A candidate dispatched for evaluation. When `parent` is set and the run
/// uses a transfer scheme, the evaluator reads the parent's checkpoint and
/// transfers matched weights before training (Fig. 6 steps ④/⑤).
#[derive(Debug, Clone, PartialEq)]
pub struct Candidate {
    pub id: CandidateId,
    pub arch: ArchSeq,
    /// The provider (mutation parent) — `None` for warm-up/random candidates.
    pub parent: Option<CandidateId>,
}

impl Candidate {
    /// The checkpoint id used for this candidate in the store.
    pub fn checkpoint_id(&self) -> String {
        format!("c{}", self.id)
    }
}

/// A candidate with its evaluation outcome, as fed back to the strategy.
#[derive(Debug, Clone, PartialEq)]
pub struct ScoredCandidate {
    pub id: CandidateId,
    pub arch: ArchSeq,
    pub score: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn checkpoint_id_is_stable() {
        let c = Candidate { id: 17, arch: ArchSeq::new(vec![1, 2]), parent: None };
        assert_eq!(c.checkpoint_id(), "c17");
    }
}
