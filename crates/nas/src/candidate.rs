//! Candidate records flowing between the scheduler and the evaluators.

use swt_space::ArchSeq;

/// Candidate identifier, unique within one NAS run and doubling as the
/// checkpoint id (`c{id}`).
pub type CandidateId = u64;

/// A candidate dispatched for evaluation. When `parent` is set and the run
/// uses a transfer scheme, the evaluator reads the parent's checkpoint and
/// transfers matched weights before training (Fig. 6 steps ④/⑤).
#[derive(Debug, Clone, PartialEq)]
pub struct Candidate {
    pub id: CandidateId,
    pub arch: ArchSeq,
    /// The provider (mutation parent) — `None` for warm-up/random candidates.
    /// For a successive-halving promotion this is the candidate's own prior
    /// rung id, so the transfer machinery resumes its checkpoint.
    pub parent: Option<CandidateId>,
    /// Successive-halving rung this dispatch belongs to (0 = base fidelity).
    pub rung: u8,
    /// Per-task epoch budget override; `None` uses the run-level budget.
    pub epochs: Option<usize>,
}

impl Candidate {
    /// A rung-0, run-budget candidate — the shape every pre-fidelity call
    /// site means.
    pub fn new(id: CandidateId, arch: ArchSeq, parent: Option<CandidateId>) -> Self {
        Candidate { id, arch, parent, rung: 0, epochs: None }
    }

    /// The checkpoint id used for this candidate in the store.
    pub fn checkpoint_id(&self) -> String {
        format!("c{}", self.id)
    }
}

/// A candidate with its evaluation outcome, as fed back to the strategy.
#[derive(Debug, Clone, PartialEq)]
pub struct ScoredCandidate {
    pub id: CandidateId,
    pub arch: ArchSeq,
    pub score: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn checkpoint_id_is_stable() {
        let c = Candidate::new(17, ArchSeq::new(vec![1, 2]), None);
        assert_eq!(c.checkpoint_id(), "c17");
    }

    #[test]
    fn new_is_rung_zero_with_the_run_budget() {
        let c = Candidate::new(3, ArchSeq::new(vec![0]), Some(1));
        assert_eq!(c.rung, 0);
        assert_eq!(c.epochs, None);
        assert_eq!(c.parent, Some(1));
    }
}
