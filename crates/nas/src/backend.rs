//! Evaluation backends: where candidates actually train.
//!
//! The strategy/top-K loop in [`crate::runner`] is backend-agnostic: it
//! hands [`Candidate`]s to an [`EvalBackend`] and consumes completions in
//! whatever order they arrive. Two implementations exist:
//!
//! * [`ThreadPoolBackend`] (here) — the historical in-process pool, one
//!   evaluator thread per simulated GPU.
//! * `swt_dist::DistBackend` — a multi-process coordinator/worker backend
//!   speaking a framed TCP protocol, with heartbeat-based fault tolerance
//!   and elastic scale-out (workers may join mid-run).
//!
//! Both must yield bit-identical runs for the same `NasConfig`; the
//! deterministic dispatch window lives in the runner, so a backend only has
//! to guarantee that evaluating candidate `c` produces the same
//! [`EvalOutcome`] wherever it runs (seeds derive from `(run_seed, id)` and
//! transfers read the deterministic parent checkpoint).

use crate::candidate::Candidate;
use crate::evaluator::{BatchedEval, EvalOutcome, Evaluator};
use crate::runner::{BatchEval, NasConfig};
use std::io;
use std::sync::mpsc;
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;
use swt_checkpoint::CheckpointStore;
use swt_data::AppProblem;
use swt_space::SearchSpace;

/// One completed evaluation as returned by a backend. `t_start`/`t_end` are
/// seconds since the backend was created (the trace's run-relative clock).
#[derive(Debug, Clone, PartialEq)]
pub struct BackendResult {
    pub cand: Candidate,
    pub t_start: f64,
    pub t_end: f64,
    pub outcome: EvalOutcome,
}

/// A pool of candidate evaluators (threads, processes, or machines).
///
/// The runner never holds more than [`EvalBackend::capacity`] candidates in
/// flight; `submit` must therefore not block on evaluation (queueing is
/// fine), and `next_result` blocks until any in-flight candidate completes.
/// Results may arrive in any order; the runner reorders them. A backend may
/// deliver duplicate results for one candidate id after an internal retry —
/// the runner deduplicates — but every submitted candidate must eventually
/// be delivered at least once, or `next_result` must return an error.
pub trait EvalBackend {
    /// Maximum number of candidates usefully in flight. Constant for the
    /// lifetime of the backend (it defines the deterministic dispatch
    /// window), even as the real pool behind it changes size: a backend
    /// whose capacity shrinks after failures keeps reporting the full
    /// window and queues the overflow, and an elastic backend that starts
    /// short-handed or admits workers mid-run likewise reports the
    /// configured window throughout. Candidate→schedule assignment is a
    /// pure function of the window, so pool churn changes *which process*
    /// evaluates a candidate, never *which candidate* is scheduled.
    fn capacity(&self) -> usize;

    /// Queue one candidate for evaluation.
    fn submit(&mut self, cand: Candidate) -> io::Result<()>;

    /// Wait for the next completion. Errors are fatal to the run (the
    /// backend reports and recovers from individual failures internally).
    fn next_result(&mut self) -> io::Result<BackendResult>;
}

/// Order-of-magnitude proxy for one training step's GEMM work: forward
/// multiply-adds of a small candidate scale with `batch × Σ input elements ×
/// a nominal hidden width`. Deliberately architecture-independent — the
/// backend sizes batching *before* any candidate is materialised, so the
/// proxy can only use the problem (which is fixed for the whole run).
fn flops_per_step_proxy(problem: &AppProblem) -> u64 {
    let per_sample: usize =
        problem.train.inputs().iter().map(|t| t.numel() / t.shape().dim(0).max(1)).sum();
    const REF_HIDDEN_WIDTH: u64 = 256;
    2 * problem.batch_size as u64 * per_sample.max(1) as u64 * REF_HIDDEN_WIDTH
}

/// The `BatchEval::Auto` policy: candidates whose per-step work cannot keep
/// even one core's microkernel busy gain nothing from intra-op threads, so
/// when the proxy falls below a per-core threshold the window is packed onto
/// ~one slot thread per core (`workers.div_ceil(hardware)` candidates per
/// slot). Large-model problems keep the historical one-thread-per-worker
/// shape.
fn auto_batch(workers: usize, hardware: usize, problem: &AppProblem) -> usize {
    const SMALL_STEP_FLOPS_PER_CORE: u64 = 512 << 20;
    let threshold = SMALL_STEP_FLOPS_PER_CORE.saturating_mul(hardware as u64);
    if flops_per_step_proxy(problem) < threshold {
        workers.div_ceil(hardware.max(1))
    } else {
        1
    }
}

fn batch_size_for(cfg: &NasConfig, hardware: usize, problem: &AppProblem) -> usize {
    match cfg.batch_eval {
        BatchEval::Off => 1,
        BatchEval::Fixed(n) => n.clamp(1, cfg.workers),
        BatchEval::Auto => auto_batch(cfg.workers, hardware, problem).clamp(1, cfg.workers),
    }
}

/// The in-process backend: evaluator slot threads pulling from one shared
/// queue, exactly DeepHyper's thread-pool evaluator shape. With
/// `cfg.batch_eval` engaged, the `workers`-wide dispatch window is serviced
/// by fewer slot threads, each draining several queued candidates per trip
/// (a [`BatchedEval`] unit) — same window, same results, fewer runnable
/// threads.
pub struct ThreadPoolBackend {
    task_tx: Option<mpsc::Sender<Candidate>>,
    result_rx: mpsc::Receiver<BackendResult>,
    handles: Vec<JoinHandle<()>>,
    workers: usize,
    batch: usize,
    slots: usize,
    /// Restores the previous intra-op thread budget when the backend drops,
    /// so a later run in the same process starts from a clean slate.
    _budget: swt_tensor::parallel::ThreadBudgetGuard,
}

impl ThreadPoolBackend {
    /// Spawn the evaluator slot threads sharing `store`.
    ///
    /// Thread-budget policy: every worker slot models one GPU, and each runs
    /// its candidate's training mostly single-threaded. The intra-op pool in
    /// swt-tensor must therefore share the machine with the slot pool —
    /// without this cap, `workers` evaluators each fanning out to
    /// `available_parallelism()` intra-op threads oversubscribes the host by
    /// a factor of `workers` and context-switch thrash erases the speedup.
    /// Budget = hardware threads / concurrently-training candidates
    /// (`slots × lanes`), floored at 1 — pure inter-candidate parallelism
    /// once the window covers the cores.
    pub fn new(
        problem: Arc<AppProblem>,
        space: Arc<SearchSpace>,
        store: Arc<dyn CheckpointStore>,
        cfg: &NasConfig,
    ) -> Self {
        assert!(cfg.workers > 0, "need at least one worker");
        let hardware = std::thread::available_parallelism().map_or(1, |n| n.get());
        let batch = batch_size_for(cfg, hardware, &problem);
        let slots = cfg.workers.div_ceil(batch);
        // Intra-slot candidate parallelism: when batching has freed cores
        // (slots < hardware), each slot fans its drained batch over `lanes`
        // lane threads; on a saturated host lanes == 1 and batches run
        // sequentially on the slot thread.
        let lanes = (hardware / slots).max(1).min(batch);
        let budget = swt_tensor::parallel::scoped_max_threads((hardware / (slots * lanes)).max(1));
        if batch > 1 {
            swt_obs::gauge!("eval.batch.size").set(batch as i64);
            swt_obs::gauge!("eval.batch.slots").set(slots as i64);
        }

        let start = Instant::now();
        let (task_tx, task_rx) = mpsc::channel::<Candidate>();
        // Slots pull tasks from one shared queue; std's Receiver is
        // single-consumer, so it is wrapped in a mutex (lock contention is
        // negligible: tasks take seconds, the lock nanoseconds).
        let task_rx = Arc::new(Mutex::new(task_rx));
        let (result_tx, result_rx) = mpsc::channel::<BackendResult>();

        let fidelity = cfg.fidelity.eval_fidelity();
        let mut handles = Vec::with_capacity(slots);
        for slot in 0..slots {
            let task_rx = Arc::clone(&task_rx);
            let result_tx = result_tx.clone();
            let mut unit = BatchedEval::new(slot, lanes, || {
                let mut ev = Evaluator::with_namespace(
                    Arc::clone(&problem),
                    Arc::clone(&space),
                    Arc::clone(&store),
                    cfg.scheme,
                    cfg.epochs,
                    cfg.seed,
                    cfg.namespace.clone(),
                );
                ev.set_fidelity(fidelity);
                ev
            });
            handles.push(std::thread::spawn(move || {
                // Attribute this thread's spans (queue wait, evaluation and
                // everything beneath) to its worker slot in run reports.
                swt_obs::span::set_worker(slot);
                loop {
                    // Hold the lock only for the recv handoff, never while
                    // evaluating. The span separates time spent starved for
                    // work from time spent evaluating (the per-worker
                    // breakdown behind the paper's Fig. 10-style attribution).
                    // Blocking recv for the first candidate only, then a
                    // greedy non-blocking drain: a slot must never idle
                    // waiting for a "full" batch — the runner releases new
                    // work one candidate per report, so waiting would
                    // deadlock the window.
                    let mut cands: Vec<Candidate> = Vec::with_capacity(batch);
                    {
                        let _wait_span = swt_obs::span!("nas.queue_wait");
                        let queue = task_rx.lock().expect("task queue poisoned");
                        let Ok(first) = queue.recv() else { break };
                        cands.push(first);
                        while cands.len() < batch {
                            match queue.try_recv() {
                                Ok(c) => cands.push(c),
                                Err(_) => break,
                            }
                        }
                    }
                    if batch > 1 {
                        swt_obs::gauge!("eval.batch.occupancy")
                            .set((cands.len() * 100 / batch) as i64);
                    }
                    let results = unit.eval_batch(&cands, &start);
                    for result in results {
                        // The send itself is cheap, but it wakes the
                        // scheduler and the OS often deschedules this thread
                        // right at the futex wake — milliseconds a per-worker
                        // report would otherwise fail to attribute.
                        let sent = {
                            let _send_span = swt_obs::span!("nas.result_send");
                            result_tx.send(result)
                        };
                        if sent.is_err() {
                            return;
                        }
                    }
                }
            }));
        }
        ThreadPoolBackend {
            task_tx: Some(task_tx),
            result_rx,
            handles,
            workers: cfg.workers,
            batch,
            slots,
            _budget: budget,
        }
    }

    /// Candidates drained per slot trip (1 when batching is off).
    pub fn batch(&self) -> usize {
        self.batch
    }

    /// Slot threads servicing the window (== `workers` when batching is off).
    pub fn slots(&self) -> usize {
        self.slots
    }
}

impl EvalBackend for ThreadPoolBackend {
    fn capacity(&self) -> usize {
        self.workers
    }

    fn submit(&mut self, cand: Candidate) -> io::Result<()> {
        let tx = self.task_tx.as_ref().expect("backend not shut down while running");
        tx.send(cand)
            .map_err(|_| io::Error::new(io::ErrorKind::BrokenPipe, "all evaluator threads exited"))
    }

    fn next_result(&mut self) -> io::Result<BackendResult> {
        self.result_rx.recv().map_err(|_| {
            io::Error::new(io::ErrorKind::BrokenPipe, "evaluator threads exited with work pending")
        })
    }
}

impl Drop for ThreadPoolBackend {
    fn drop(&mut self) {
        // Closing the task channel lets idle workers exit; join so worker
        // side-effects (checkpoint saves, span totals) are complete before
        // the run returns.
        drop(self.task_tx.take());
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use swt_checkpoint::MemStore;
    use swt_core::TransferScheme;
    use swt_data::{AppKind, DataScale};
    use swt_tensor::Rng;

    fn backend(workers: usize) -> (ThreadPoolBackend, Arc<SearchSpace>) {
        let problem = Arc::new(AppKind::Uno.problem(DataScale::Quick, 11));
        let space = Arc::new(SearchSpace::for_app(AppKind::Uno));
        let store: Arc<dyn CheckpointStore> = Arc::new(MemStore::new());
        let cfg = NasConfig::quick(TransferScheme::Baseline, 4, workers, 3);
        (ThreadPoolBackend::new(problem, Arc::clone(&space), store, &cfg), space)
    }

    #[test]
    fn evaluates_submitted_candidates_in_some_order() {
        let (mut be, space) = backend(2);
        assert_eq!(be.capacity(), 2);
        let mut rng = Rng::seed(5);
        for id in 0..4 {
            be.submit(Candidate::new(id, space.sample(&mut rng), None)).unwrap();
        }
        let mut ids: Vec<u64> = (0..4).map(|_| be.next_result().unwrap().cand.id).collect();
        ids.sort_unstable();
        assert_eq!(ids, vec![0, 1, 2, 3]);
    }

    #[test]
    fn fixed_batching_packs_the_window_onto_fewer_slots() {
        let problem = Arc::new(AppKind::Uno.problem(DataScale::Quick, 11));
        let space = Arc::new(SearchSpace::for_app(AppKind::Uno));
        let store: Arc<dyn CheckpointStore> = Arc::new(MemStore::new());
        let cfg = NasConfig {
            batch_eval: BatchEval::Fixed(2),
            ..NasConfig::quick(TransferScheme::Baseline, 8, 4, 3)
        };
        let mut be = ThreadPoolBackend::new(problem, Arc::clone(&space), store, &cfg);
        // The dispatch window (capacity) is untouched; only the thread
        // shape underneath changes.
        assert_eq!(be.capacity(), 4);
        assert_eq!(be.batch(), 2);
        assert_eq!(be.slots(), 2);
        let mut rng = Rng::seed(5);
        for id in 0..8 {
            be.submit(Candidate::new(id, space.sample(&mut rng), None)).unwrap();
        }
        let mut ids: Vec<u64> = (0..8).map(|_| be.next_result().unwrap().cand.id).collect();
        ids.sort_unstable();
        assert_eq!(ids, (0..8).collect::<Vec<_>>());
    }

    #[test]
    fn auto_batching_derives_from_core_count_and_problem_size() {
        let problem = AppKind::Nt3.problem(DataScale::Quick, 11);
        // The few-shot problems are far below the per-core threshold, so a
        // window wider than the host packs down to ~one slot per core.
        assert_eq!(auto_batch(64, 16, &problem), 4);
        assert_eq!(auto_batch(64, 1, &problem), 64);
        assert_eq!(auto_batch(2, 16, &problem), 1, "never packs below one per slot");
        // A problem with per-step work beyond the threshold keeps the
        // historical shape regardless of the window.
        let mut big = AppKind::Nt3.problem(DataScale::Quick, 11);
        big.batch_size = 1 << 20; // proxy ≫ the 512M/core threshold
        assert!(flops_per_step_proxy(&big) > flops_per_step_proxy(&problem));
        assert_eq!(auto_batch(64, 1, &big), 1);
    }

    #[test]
    fn drop_restores_thread_budget() {
        swt_tensor::parallel::set_max_threads(7);
        let (be, _space) = backend(1);
        drop(be);
        assert_eq!(swt_tensor::parallel::max_threads(), 7);
        swt_tensor::parallel::set_max_threads(0);
    }
}
