//! Search strategies: random search and regularized evolution (Algorithm 1),
//! the latter integrated with weight transfer by always designating the
//! mutation parent as the provider (`d = 1` by construction).

use crate::candidate::{Candidate, CandidateId, ScoredCandidate};
use std::collections::VecDeque;
use std::sync::Arc;
use swt_space::SearchSpace;
use swt_tensor::Rng;

/// A search strategy proposes candidates and learns from their scores.
/// Implementations must be deterministic given the RNG and the report order.
pub trait SearchStrategy: Send {
    /// Propose the next candidate to evaluate.
    fn next(&mut self, rng: &mut Rng) -> Candidate;

    /// Receive a scored candidate (asynchronously, in completion order).
    fn report(&mut self, scored: ScoredCandidate);
}

/// Uniform random search over valid candidates (the simplest strategy in
/// Section II; used here to generate the analysis traces of Figs. 2/4/5).
pub struct RandomSearch {
    space: Arc<SearchSpace>,
    next_id: CandidateId,
}

impl RandomSearch {
    pub fn new(space: Arc<SearchSpace>) -> Self {
        RandomSearch { space, next_id: 0 }
    }
}

impl SearchStrategy for RandomSearch {
    fn next(&mut self, rng: &mut Rng) -> Candidate {
        let id = self.next_id;
        self.next_id += 1;
        Candidate::new(id, self.space.sample(rng), None)
    }

    fn report(&mut self, _scored: ScoredCandidate) {}
}

/// Which population member becomes the weight-transfer provider of a new
/// child. The paper integrates with evolution so the mutation parent is
/// always the provider (`d = 1`, zero selection cost); the other policies
/// exist for the ablation study of that design choice.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ProviderPolicy {
    /// The mutation parent (Algorithm 1; the paper's choice).
    #[default]
    Parent,
    /// Scan the population for the member nearest in architecture distance
    /// (ties by score) — the general selector of Section V-B, costing a
    /// population scan per child.
    Nearest,
    /// A uniformly random population member — the strawman Figs. 4/5 show
    /// to be unreliable.
    Random,
    /// No provider: candidates train from scratch even though mutation
    /// still guides the search (isolates search-strategy effects from
    /// transfer effects).
    None,
}

/// Regularized (aging) evolution [Real et al. 2019], as integrated with
/// weight transfer in the paper's Algorithm 1:
///
/// * Until `population_size` candidates have been *scored*, propose random
///   candidates trained from scratch ("when the search strategy has trained
///   enough new candidates from scratch", Section VI).
/// * Afterwards, sample `sample_size` members, pick the best as the parent,
///   mutate one variable node to produce the child, and designate the
///   parent as the weight-transfer provider.
/// * The population ages: the oldest member is evicted when the population
///   exceeds `population_size`.
pub struct RegularizedEvolution {
    space: Arc<SearchSpace>,
    population_size: usize,
    sample_size: usize,
    provider: ProviderPolicy,
    population: VecDeque<ScoredCandidate>,
    scored: usize,
    next_id: CandidateId,
}

impl RegularizedEvolution {
    /// Paper configuration: population 64, sample 32 (Section VII-C).
    pub fn paper(space: Arc<SearchSpace>) -> Self {
        Self::new(space, 64, 32)
    }

    pub fn new(space: Arc<SearchSpace>, population_size: usize, sample_size: usize) -> Self {
        Self::with_provider(space, population_size, sample_size, ProviderPolicy::Parent)
    }

    /// Evolution with an explicit provider-selection policy (ablations).
    pub fn with_provider(
        space: Arc<SearchSpace>,
        population_size: usize,
        sample_size: usize,
        provider: ProviderPolicy,
    ) -> Self {
        assert!(population_size > 0 && sample_size > 0);
        assert!(sample_size <= population_size, "cannot sample more than the population");
        RegularizedEvolution {
            space,
            population_size,
            sample_size,
            provider,
            population: VecDeque::with_capacity(population_size + 1),
            scored: 0,
            next_id: 0,
        }
    }

    /// Current population (oldest first).
    pub fn population(&self) -> &VecDeque<ScoredCandidate> {
        &self.population
    }

    /// Total candidates scored so far.
    pub fn scored(&self) -> usize {
        self.scored
    }
}

impl SearchStrategy for RegularizedEvolution {
    fn next(&mut self, rng: &mut Rng) -> Candidate {
        let id = self.next_id;
        self.next_id += 1;
        // Warm-up phase: random candidates from scratch until the population
        // is filled (|P| >= N, Algorithm 1 line 5).
        if self.population.len() < self.population_size {
            return Candidate::new(id, self.space.sample(rng), None);
        }
        // Tournament: sample S of N, best wins (lines 6-7).
        let indices = rng.sample_indices(self.population.len(), self.sample_size);
        let parent = indices
            .into_iter()
            .map(|i| &self.population[i])
            .max_by(|a, b| a.score.partial_cmp(&b.score).unwrap_or(std::cmp::Ordering::Equal))
            .expect("sample is non-empty");
        let parent_id = parent.id;
        // Mutate one variable node (line 8); d(parent, child) = 1.
        let child_arch = self.space.mutate(&parent.arch, rng);
        let provider = match self.provider {
            ProviderPolicy::Parent => Some(parent_id),
            ProviderPolicy::None => None,
            ProviderPolicy::Random => Some(self.population[rng.below(self.population.len())].id),
            ProviderPolicy::Nearest => {
                let pool: Vec<swt_core::PoolEntry<CandidateId>> = self
                    .population
                    .iter()
                    .map(|p| swt_core::PoolEntry { id: p.id, arch: p.arch.clone(), score: p.score })
                    .collect();
                swt_core::select_nearest(&child_arch, &pool).map(|e| e.id)
            }
        };
        Candidate::new(id, child_arch, provider)
    }

    fn report(&mut self, scored: ScoredCandidate) {
        self.scored += 1;
        self.population.push_back(scored);
        // Aging eviction (regularization): drop the oldest.
        while self.population.len() > self.population_size {
            self.population.pop_front();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use swt_data::AppKind;
    use swt_space::distance;

    fn space() -> Arc<SearchSpace> {
        Arc::new(SearchSpace::for_app(AppKind::Uno))
    }

    fn score_of(arch: &swt_space::ArchSeq) -> f64 {
        // Deterministic fake score: fraction of zero choices.
        let zeros = arch.choices().iter().filter(|&&c| c == 0).count();
        zeros as f64 / arch.len() as f64
    }

    #[test]
    fn random_search_ids_are_sequential_and_parentless() {
        let mut s = RandomSearch::new(space());
        let mut rng = Rng::seed(1);
        for expect in 0..10 {
            let c = s.next(&mut rng);
            assert_eq!(c.id, expect);
            assert!(c.parent.is_none());
        }
    }

    #[test]
    fn evolution_warms_up_with_random_candidates() {
        let mut evo = RegularizedEvolution::new(space(), 8, 4);
        let mut rng = Rng::seed(2);
        for _ in 0..8 {
            let c = evo.next(&mut rng);
            assert!(c.parent.is_none(), "warm-up candidates are from scratch");
            evo.report(ScoredCandidate { id: c.id, score: score_of(&c.arch), arch: c.arch });
        }
        // Population is full: children now carry parents at distance 1.
        for _ in 0..20 {
            let c = evo.next(&mut rng);
            let parent_id = c.parent.expect("post-warm-up children have parents");
            let parent = evo.population().iter().find(|p| p.id == parent_id).unwrap();
            assert_eq!(distance(&parent.arch, &c.arch), 1, "Algorithm 1: d is always one");
            evo.report(ScoredCandidate { id: c.id, score: score_of(&c.arch), arch: c.arch });
        }
    }

    #[test]
    fn evolution_population_ages_out() {
        let mut evo = RegularizedEvolution::new(space(), 4, 2);
        let mut rng = Rng::seed(3);
        let mut first_id = None;
        for _ in 0..10 {
            let c = evo.next(&mut rng);
            first_id.get_or_insert(c.id);
            evo.report(ScoredCandidate { id: c.id, score: 0.5, arch: c.arch });
        }
        assert_eq!(evo.population().len(), 4);
        assert!(
            evo.population().iter().all(|p| p.id != first_id.unwrap()),
            "oldest member must have aged out"
        );
        assert_eq!(evo.scored(), 10);
    }

    #[test]
    fn tournament_prefers_high_scores() {
        // With sample_size == population_size the tournament is
        // deterministic: the parent is always the best member.
        let mut evo = RegularizedEvolution::new(space(), 6, 6);
        let mut rng = Rng::seed(4);
        let mut best: Option<(CandidateId, f64)> = None;
        for i in 0..6 {
            let c = evo.next(&mut rng);
            let score = i as f64 * 0.1;
            if best.is_none_or(|(_, s)| score > s) {
                best = Some((c.id, score));
            }
            evo.report(ScoredCandidate { id: c.id, score, arch: c.arch });
        }
        let c = evo.next(&mut rng);
        assert_eq!(c.parent, Some(best.unwrap().0));
    }

    #[test]
    #[should_panic(expected = "cannot sample more")]
    fn sample_larger_than_population_rejected() {
        RegularizedEvolution::new(space(), 4, 8);
    }

    fn run_policy(policy: ProviderPolicy, n: usize) -> Vec<Candidate> {
        let mut evo = RegularizedEvolution::with_provider(space(), 6, 3, policy);
        let mut rng = Rng::seed(8);
        let mut out = Vec::new();
        for _ in 0..n {
            let c = evo.next(&mut rng);
            out.push(c.clone());
            evo.report(ScoredCandidate { id: c.id, score: score_of(&c.arch), arch: c.arch });
        }
        out
    }

    #[test]
    fn provider_policy_none_never_sets_parent() {
        let cands = run_policy(ProviderPolicy::None, 20);
        assert!(cands.iter().all(|c| c.parent.is_none()));
    }

    #[test]
    fn provider_policy_nearest_picks_minimal_distance() {
        let mut evo = RegularizedEvolution::with_provider(space(), 6, 3, ProviderPolicy::Nearest);
        let mut rng = Rng::seed(9);
        for _ in 0..6 {
            let c = evo.next(&mut rng);
            evo.report(ScoredCandidate { id: c.id, score: score_of(&c.arch), arch: c.arch });
        }
        for _ in 0..10 {
            let c = evo.next(&mut rng);
            let provider_id = c.parent.expect("nearest policy sets a provider");
            let provider = evo.population().iter().find(|p| p.id == provider_id).unwrap();
            let dp = distance(&provider.arch, &c.arch);
            // No other member may be strictly closer.
            for member in evo.population() {
                assert!(distance(&member.arch, &c.arch) >= dp);
            }
            evo.report(ScoredCandidate { id: c.id, score: 0.1, arch: c.arch });
        }
    }

    #[test]
    fn provider_policy_random_stays_in_population() {
        let cands = run_policy(ProviderPolicy::Random, 30);
        let children: Vec<&Candidate> = cands.iter().filter(|c| c.parent.is_some()).collect();
        assert!(!children.is_empty());
        for c in children {
            assert!(c.parent.unwrap() < c.id, "provider must be a previously scored candidate");
        }
    }
}
