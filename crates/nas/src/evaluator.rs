//! The evaluator: trains one candidate and checkpoints it.
//!
//! Implements the paper's Section VI-C sequence: "1) checks the parent's
//! architecture sequence, 2) reads the checkpoint of the parent, 3)
//! calculates LP/LCS between the parent and the current model, and 4) if
//! they have shareable tensors, initializes the weights of the current model
//! with the weights of the parent's model."

use crate::candidate::{Candidate, CandidateId};
use std::sync::Arc;
use std::time::Instant;
use swt_checkpoint::CheckpointStore;
use swt_core::{apply_transfer, ShapeSeq, TransferPlan, TransferScheme, TransferStats};
use swt_data::AppProblem;
use swt_nn::{AdamConfig, Convergence, Model, TrainConfig, TrainStop, Trainer};
use swt_space::{ArchSeq, SearchSpace};
use swt_tensor::{Rng, Workspace};

/// Why a candidate's evaluation ended. Flows through [`EvalOutcome`], the
/// canonical trace and the wire-v4 `Result` frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum StopReason {
    /// Trained the full epoch budget for its rung (the only reason a
    /// fidelity-off run ever produces).
    #[default]
    BudgetExhausted,
    /// The loss-delta convergence tracker cut training early.
    Converged,
    /// Successive halving did not promote this candidate past its rung.
    /// Assigned coordinator-side by the strategy loop — workers never
    /// produce it.
    Pruned,
    /// The zero-cost pre-filter skipped training entirely.
    Prefiltered,
}

impl StopReason {
    /// Wire discriminant (stable; v4 `Result` frames carry it as one byte).
    pub fn code(self) -> u8 {
        match self {
            StopReason::BudgetExhausted => 0,
            StopReason::Converged => 1,
            StopReason::Pruned => 2,
            StopReason::Prefiltered => 3,
        }
    }

    /// Inverse of [`StopReason::code`]; `None` for unknown discriminants.
    pub fn from_code(code: u8) -> Option<StopReason> {
        match code {
            0 => Some(StopReason::BudgetExhausted),
            1 => Some(StopReason::Converged),
            2 => Some(StopReason::Pruned),
            3 => Some(StopReason::Prefiltered),
            _ => None,
        }
    }

    /// Short lowercase label used by traces, `/status` and `dist-top`.
    pub fn label(self) -> &'static str {
        match self {
            StopReason::BudgetExhausted => "budget",
            StopReason::Converged => "converged",
            StopReason::Pruned => "pruned",
            StopReason::Prefiltered => "prefiltered",
        }
    }

    /// Inverse of [`StopReason::label`].
    pub fn from_label(label: &str) -> Option<StopReason> {
        match label {
            "budget" => Some(StopReason::BudgetExhausted),
            "converged" => Some(StopReason::Converged),
            "pruned" => Some(StopReason::Pruned),
            "prefiltered" => Some(StopReason::Prefiltered),
            _ => None,
        }
    }
}

/// Per-evaluator fidelity knobs. The default is every feature off, which
/// reproduces pre-fidelity behaviour bit-for-bit.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct EvalFidelity {
    /// Quantile of rung-0 candidates the zero-cost pre-filter skips
    /// (`0.0` = off).
    pub prefilter_quantile: f64,
    /// Loss-delta convergence cut handed to the trainer (`None` = off).
    pub convergence: Option<Convergence>,
}

impl EvalFidelity {
    /// True iff any knob is active.
    pub fn enabled(&self) -> bool {
        self.prefilter_quantile > 0.0 || self.convergence.is_some()
    }
}

/// Everything measured while evaluating one candidate.
#[derive(Debug, Clone, PartialEq)]
pub struct EvalOutcome {
    pub id: CandidateId,
    pub score: f64,
    /// Seconds spent in training + validation.
    pub train_secs: f64,
    /// Seconds spent loading the provider checkpoint + matching +
    /// transferring (0 for baseline/warm-up) — the paper's main overhead
    /// source (Section VIII-E).
    pub transfer_secs: f64,
    /// Seconds spent writing this candidate's checkpoint.
    pub save_secs: f64,
    /// Serialized checkpoint size (Fig. 11).
    pub checkpoint_bytes: u64,
    /// What the transfer moved.
    pub transfer: TransferStats,
    /// Epochs actually trained.
    pub epochs: usize,
    /// Why evaluation ended.
    pub stop: StopReason,
}

/// The per-candidate model seed used across the whole repository: the full
/// training phase rebuilds candidates with exactly the weights their
/// estimation used, so it must derive seeds identically.
pub fn candidate_seed(run_seed: u64, id: CandidateId) -> u64 {
    run_seed ^ (id.wrapping_mul(0x9E3779B97F4A7C15)).rotate_left(17)
}

/// A reusable candidate evaluator (one per worker thread).
pub struct Evaluator {
    problem: Arc<AppProblem>,
    space: Arc<SearchSpace>,
    store: Arc<dyn CheckpointStore>,
    scheme: TransferScheme,
    /// Epochs per estimate (the paper uses 1).
    epochs: usize,
    /// Root seed of the run; candidate seeds derive from it.
    run_seed: u64,
    /// Checkpoint-id prefix. Distinct namespaces let several runs share one
    /// store (a run's candidate `i` is stored as `{ns}c{i}`); the default is
    /// the empty string, preserving the historical bare `c{i}` ids.
    ns: String,
    /// Scratch arena handed to each candidate's model and reclaimed after
    /// evaluation, so buffers warmed up by one candidate are reused by the
    /// next instead of being reallocated per evaluation.
    ws: Workspace,
    /// Multi-fidelity knobs (default: everything off).
    fidelity: EvalFidelity,
    /// Lazily calibrated zero-cost score cut-off (see
    /// [`Evaluator::prefilter_threshold`]).
    prefilter_threshold: Option<f64>,
}

impl Evaluator {
    pub fn new(
        problem: Arc<AppProblem>,
        space: Arc<SearchSpace>,
        store: Arc<dyn CheckpointStore>,
        scheme: TransferScheme,
        epochs: usize,
        run_seed: u64,
    ) -> Self {
        Self::with_namespace(problem, space, store, scheme, epochs, run_seed, "")
    }

    /// An evaluator whose checkpoint ids carry a run namespace prefix, so
    /// concurrent runs can share one store without colliding.
    #[allow(clippy::too_many_arguments)]
    pub fn with_namespace(
        problem: Arc<AppProblem>,
        space: Arc<SearchSpace>,
        store: Arc<dyn CheckpointStore>,
        scheme: TransferScheme,
        epochs: usize,
        run_seed: u64,
        ns: impl Into<String>,
    ) -> Self {
        Evaluator {
            problem,
            space,
            store,
            scheme,
            epochs,
            run_seed,
            ns: ns.into(),
            ws: Workspace::new(),
            fidelity: EvalFidelity::default(),
            prefilter_threshold: None,
        }
    }

    /// Set the multi-fidelity knobs (resets any calibrated pre-filter
    /// threshold).
    pub fn set_fidelity(&mut self, fidelity: EvalFidelity) {
        self.fidelity = fidelity;
        self.prefilter_threshold = None;
    }

    /// The namespaced checkpoint id of candidate `id`.
    fn ckpt_id(&self, id: CandidateId) -> String {
        format!("{}c{id}", self.ns)
    }

    /// Deterministic per-candidate seed.
    fn seed_for(&self, id: CandidateId) -> u64 {
        candidate_seed(self.run_seed, id)
    }

    /// NASI-style zero-cost-at-initialization score: the gradient L2 norm of
    /// one deterministic (unshuffled) training batch through a freshly built
    /// model. Higher means the architecture is more trainable at init. The
    /// scored model is separate from the one training later uses, so scoring
    /// never perturbs training determinism.
    pub fn zero_cost_score(&mut self, arch: &ArchSeq, seed: u64) -> f64 {
        let _span = swt_obs::span!("nas.zero_cost");
        let spec = self.space.materialize(arch).expect("strategy emitted invalid candidate");
        let mut model = Model::build(&spec, seed).expect("spec validated at materialise time");
        model.set_workspace(std::mem::take(&mut self.ws));
        let idx: Vec<usize> = self
            .problem
            .train
            .batch_indices(self.problem.batch_size, None)
            .into_iter()
            .next()
            .unwrap_or_default();
        let norm = if idx.is_empty() {
            0.0
        } else {
            let (inputs, targets) = self.problem.train.batch_ws(&idx, model.workspace_mut());
            let input_refs: Vec<&swt_tensor::Tensor> = inputs.iter().collect();
            let pred = model.forward(&input_refs, true);
            let (_loss, grad) = self.problem.loss.forward_backward(&pred, &targets);
            model.zero_grads();
            model.backward(&grad);
            let mut sum_sq = 0.0f64;
            model.visit_updates(&mut |_name, _param, g| {
                for &v in g.data() {
                    sum_sq += f64::from(v) * f64::from(v);
                }
            });
            for t in inputs {
                model.recycle(t);
            }
            model.recycle(targets);
            model.recycle(pred);
            model.recycle(grad);
            sum_sq.sqrt()
        };
        self.ws = model.take_workspace();
        norm
    }

    /// The calibrated zero-cost cut-off: the configured quantile of the
    /// scores of a fixed reference population sampled with seeds derived
    /// only from the run seed — identical on every worker of a run, on
    /// every backend, so the pre-filter decision is deterministic.
    fn prefilter_threshold(&mut self) -> f64 {
        if let Some(t) = self.prefilter_threshold {
            return t;
        }
        const CALIBRATION_ARCHS: u64 = 32;
        let cal_seed = self.run_seed ^ 0x00F1_17E8;
        let mut rng = Rng::seed(cal_seed);
        let mut scores: Vec<f64> = (0..CALIBRATION_ARCHS)
            .map(|i| {
                let arch = self.space.sample(&mut rng);
                self.zero_cost_score(&arch, candidate_seed(cal_seed, i))
            })
            .collect();
        scores.sort_by(f64::total_cmp);
        let q = self.fidelity.prefilter_quantile.clamp(0.0, 1.0);
        let k = ((scores.len() as f64) * q) as usize;
        let t = scores[k.min(scores.len() - 1)];
        self.prefilter_threshold = Some(t);
        t
    }

    /// Train, score and checkpoint one candidate.
    ///
    /// # Panics
    /// Panics if the candidate's architecture fails to materialise (the
    /// strategy only emits valid candidates).
    pub fn evaluate(&mut self, cand: &Candidate) -> EvalOutcome {
        let _eval_span = swt_obs::span!("nas.eval");

        // Zero-cost pre-filter: rung-0 candidates whose gradient-norm-at-init
        // falls below the calibrated quantile skip training (and the
        // checkpoint) entirely. Their score ranks last, so successive halving
        // never promotes them, and children degrade through the existing
        // missing-parent-checkpoint path.
        if cand.rung == 0 && self.fidelity.prefilter_quantile > 0.0 {
            let threshold = self.prefilter_threshold();
            let zc = self.zero_cost_score(&cand.arch, self.seed_for(cand.id));
            if zc < threshold {
                swt_obs::counter!("fidelity.stopped.prefiltered").inc();
                swt_obs::counter!("nas.candidates_evaluated").inc();
                return EvalOutcome {
                    id: cand.id,
                    score: f64::NEG_INFINITY,
                    train_secs: 0.0,
                    transfer_secs: 0.0,
                    save_secs: 0.0,
                    checkpoint_bytes: 0,
                    transfer: TransferStats::default(),
                    epochs: 0,
                    stop: StopReason::Prefiltered,
                };
            }
        }

        let spec = self.space.materialize(&cand.arch).expect("strategy emitted invalid candidate");
        let seed = self.seed_for(cand.id);
        let mut model = Model::build(&spec, seed).expect("spec validated at materialise time");
        model.set_workspace(std::mem::take(&mut self.ws));

        // Weight transfer from the parent checkpoint, when enabled.
        let mut transfer = TransferStats::default();
        let mut transfer_secs = 0.0;
        if let (Some(matcher), Some(parent)) = (self.scheme.matcher(), cand.parent) {
            let _transfer_span = swt_obs::span!("transfer");
            let t0 = Instant::now();
            let parent_ckpt_id = self.ckpt_id(parent);
            // Plan from the provider's *index* alone (names + shapes, no
            // payload bytes), then fetch only the payloads the plan moves —
            // the paper's Section VIII-E overhead shrinks from "read the
            // whole parent checkpoint" to "read the matched tensors".
            if let Ok(index) = self.store.load_index(&parent_ckpt_id) {
                let provider_seq = ShapeSeq::from_checkpoint_index(&index);
                let receiver_seq = ShapeSeq::of(&spec).unwrap();
                let plan = TransferPlan::build(matcher, &provider_seq, &receiver_seq);
                if !plan.is_empty() {
                    if let Ok(provider_ckpt) =
                        self.store.load_tensors(&parent_ckpt_id, &plan.provider_names())
                    {
                        transfer = apply_transfer(&plan, &provider_ckpt, &mut model);
                        // Hand the decoded payload buffers back to the
                        // thread arena for the next partial load.
                        swt_tensor::with_thread_workspace(|ws| {
                            for (_, t) in provider_ckpt {
                                ws.recycle(t);
                            }
                        });
                    }
                }
            }
            transfer_secs = t0.elapsed().as_secs_f64();
        }

        // Partial training (the candidate-estimation phase).
        let trainer = Trainer::new(self.problem.loss, self.problem.metric);
        let cfg = TrainConfig {
            epochs: cand.epochs.unwrap_or(self.epochs),
            batch_size: self.problem.batch_size,
            adam: AdamConfig { lr: self.problem.lr, ..Default::default() },
            shuffle_seed: seed ^ 0x5EED,
            early_stop: None,
            convergence: self.fidelity.convergence,
        };
        let t0 = Instant::now();
        let report = {
            let _train_span = swt_obs::span!("train");
            trainer.fit(&mut model, &self.problem.train, &self.problem.val, &cfg)
        };
        let train_secs = t0.elapsed().as_secs_f64();

        // Checkpoint the scored candidate (Fig. 6 step ③).
        let t0 = Instant::now();
        let checkpoint_bytes = {
            let _save_span = swt_obs::span!("save");
            self.store
                .save(&self.ckpt_id(cand.id), &model.state_dict())
                .expect("checkpoint save failed")
        };
        let save_secs = t0.elapsed().as_secs_f64();
        self.ws = model.take_workspace();

        swt_obs::counter!("nas.candidates_evaluated").inc();
        swt_obs::counter!("nas.transfer.tensors").add(transfer.tensors as u64);
        swt_obs::counter!("nas.transfer.bytes").add(transfer.bytes as u64);
        swt_obs::counter!("nas.checkpoint.bytes").add(checkpoint_bytes);
        swt_obs::histogram!("nas.checkpoint.size_bytes").observe(checkpoint_bytes);

        let stop = if report.stop == TrainStop::Converged {
            swt_obs::counter!("fidelity.stopped.converged").inc();
            StopReason::Converged
        } else {
            StopReason::BudgetExhausted
        };

        EvalOutcome {
            id: cand.id,
            score: report.final_metric,
            train_secs,
            transfer_secs,
            save_secs,
            checkpoint_bytes,
            transfer,
            epochs: report.epochs_run,
            stop,
        }
    }
}

/// One worker slot's batched-evaluation unit: a fixed set of *lanes*, each a
/// full [`Evaluator`] with its own `Workspace` arena, servicing a drained
/// batch of candidates.
///
/// Determinism contract: a candidate's outcome is a pure function of
/// `(run_seed, id, parent checkpoint)` — the evaluator it lands on carries no
/// candidate-visible state (arenas are value-neutral scratch). Batching
/// therefore only changes *where and when* a candidate trains, never its
/// score, transfer stats or checkpoint bytes; canonical traces are
/// bit-identical to unbatched runs.
///
/// On a saturated host the lanes run sequentially on the slot's thread; when
/// the intra-op thread budget leaves headroom (`lanes > 1`), candidates fan
/// out over lane threads through a shared cursor, so a slow candidate does
/// not serialise the rest of its batch.
pub struct BatchedEval {
    /// The worker-slot index, for span attribution of lane threads.
    slot: usize,
    lanes: Vec<Evaluator>,
}

impl BatchedEval {
    /// A batched unit of `lanes` evaluators (at least one) built by `make`.
    pub fn new(slot: usize, lanes: usize, mut make: impl FnMut() -> Evaluator) -> Self {
        BatchedEval { slot, lanes: (0..lanes.max(1)).map(|_| make()).collect() }
    }

    /// Number of lanes (diagnostics).
    pub fn lanes(&self) -> usize {
        self.lanes.len()
    }

    /// Evaluate a drained batch, returning one [`crate::backend::BackendResult`]
    /// per candidate in input order. `run_start` anchors the per-candidate
    /// `t_start`/`t_end` run-relative timestamps.
    pub fn eval_batch(
        &mut self,
        cands: &[Candidate],
        run_start: &Instant,
    ) -> Vec<crate::backend::BackendResult> {
        fn timed(
            ev: &mut Evaluator,
            cand: &Candidate,
            run_start: &Instant,
        ) -> crate::backend::BackendResult {
            let t_start = run_start.elapsed().as_secs_f64();
            let outcome = ev.evaluate(cand);
            let t_end = run_start.elapsed().as_secs_f64();
            crate::backend::BackendResult { cand: cand.clone(), t_start, t_end, outcome }
        }

        if self.lanes.len() <= 1 || cands.len() <= 1 {
            let ev = &mut self.lanes[0];
            return cands.iter().map(|c| timed(ev, c, run_start)).collect();
        }
        let mut out: Vec<Option<crate::backend::BackendResult>> =
            (0..cands.len()).map(|_| None).collect();
        {
            let queue = std::sync::Mutex::new(out.iter_mut().zip(cands).enumerate());
            let queue = &queue;
            let slot = self.slot;
            std::thread::scope(|s| {
                for ev in self.lanes.iter_mut().take(cands.len()) {
                    s.spawn(move || {
                        // Lane threads inherit the slot's worker attribution
                        // so per-worker span reports stay meaningful.
                        swt_obs::span::set_worker(slot);
                        loop {
                            let next = queue.lock().expect("lane queue poisoned").next();
                            match next {
                                Some((_, (result, cand))) => {
                                    *result = Some(timed(ev, cand, run_start));
                                }
                                None => break,
                            }
                        }
                    });
                }
            });
        }
        out.into_iter().map(|r| r.expect("every lane slot filled")).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use swt_checkpoint::MemStore;
    use swt_data::{AppKind, DataScale};
    use swt_tensor::Rng;

    fn setup(scheme: TransferScheme) -> (Evaluator, Arc<SearchSpace>, Arc<dyn CheckpointStore>) {
        let problem = Arc::new(AppKind::Uno.problem(DataScale::Quick, 7));
        let space = Arc::new(SearchSpace::for_app(AppKind::Uno));
        let store: Arc<dyn CheckpointStore> = Arc::new(MemStore::new());
        let eval = Evaluator::new(
            Arc::clone(&problem),
            Arc::clone(&space),
            Arc::clone(&store),
            scheme,
            1,
            42,
        );
        (eval, space, store)
    }

    #[test]
    fn evaluates_and_checkpoints() {
        let (mut eval, space, store) = setup(TransferScheme::Baseline);
        let mut rng = Rng::seed(1);
        let cand = Candidate::new(0, space.sample(&mut rng), None);
        let out = eval.evaluate(&cand);
        assert_eq!(out.id, 0);
        assert!(out.score.is_finite());
        assert_eq!(out.epochs, 1);
        assert!(store.exists("c0"));
        assert_eq!(store.size_bytes("c0"), Some(out.checkpoint_bytes));
        assert_eq!(out.transfer.tensors, 0, "baseline never transfers");
    }

    #[test]
    fn child_evaluation_transfers_from_parent() {
        let (mut eval, space, _store) = setup(TransferScheme::Lcs);
        let mut rng = Rng::seed(2);
        let parent_arch = space.sample(&mut rng);
        let parent = Candidate::new(0, parent_arch.clone(), None);
        let _ = eval.evaluate(&parent);
        let child_arch = space.mutate(&parent_arch, &mut rng);
        let child = Candidate::new(1, child_arch, Some(0));
        let out = eval.evaluate(&child);
        assert!(
            out.transfer.tensors > 0,
            "a d=1 Uno child must share tensors with its parent: {:?}",
            out.transfer
        );
        assert_eq!(out.transfer.skipped, 0);
        assert!(out.transfer_secs >= 0.0);
    }

    #[test]
    fn missing_parent_checkpoint_degrades_to_random_init() {
        let (mut eval, space, _store) = setup(TransferScheme::Lp);
        let mut rng = Rng::seed(3);
        let arch = space.sample(&mut rng);
        let cand = Candidate::new(9, arch, Some(777)); // no such checkpoint
        let out = eval.evaluate(&cand);
        assert_eq!(out.transfer.tensors, 0);
        assert!(out.score.is_finite());
    }

    #[test]
    fn batched_lanes_reproduce_serial_outcomes_in_order() {
        let problem = Arc::new(AppKind::Uno.problem(DataScale::Quick, 7));
        let space = Arc::new(SearchSpace::for_app(AppKind::Uno));
        let mut rng = Rng::seed(9);
        let cands: Vec<Candidate> =
            (0..5).map(|id| Candidate::new(id, space.sample(&mut rng), None)).collect();

        let serial_store: Arc<dyn CheckpointStore> = Arc::new(MemStore::new());
        let mut serial = Evaluator::new(
            Arc::clone(&problem),
            Arc::clone(&space),
            serial_store,
            TransferScheme::Baseline,
            1,
            42,
        );
        let expect: Vec<EvalOutcome> = cands.iter().map(|c| serial.evaluate(c)).collect();

        for lanes in [1usize, 3] {
            let store: Arc<dyn CheckpointStore> = Arc::new(MemStore::new());
            let mut batched = BatchedEval::new(0, lanes, || {
                Evaluator::new(
                    Arc::clone(&problem),
                    Arc::clone(&space),
                    Arc::clone(&store),
                    TransferScheme::Baseline,
                    1,
                    42,
                )
            });
            assert_eq!(batched.lanes(), lanes);
            let start = std::time::Instant::now();
            let got = batched.eval_batch(&cands, &start);
            assert_eq!(got.len(), cands.len());
            for (g, e) in got.iter().zip(&expect) {
                assert_eq!(g.cand.id, e.id, "results must keep input order");
                // Deterministic fields only: the *_secs fields are wall clock.
                assert_eq!(g.outcome.score, e.score, "lane count changed a score");
                assert_eq!(g.outcome.checkpoint_bytes, e.checkpoint_bytes);
                assert_eq!(g.outcome.transfer, e.transfer);
                assert_eq!(g.outcome.epochs, e.epochs);
                assert!(g.t_end >= g.t_start);
            }
        }
    }

    #[test]
    fn identical_candidate_same_seed_reproduces_score() {
        let (mut eval, space, _) = setup(TransferScheme::Baseline);
        let mut rng = Rng::seed(4);
        let arch = space.sample(&mut rng);
        let a = eval.evaluate(&Candidate::new(5, arch.clone(), None));
        let b = eval.evaluate(&Candidate::new(5, arch, None));
        assert_eq!(a.score, b.score, "single-threaded evaluation must be deterministic");
    }

    #[test]
    fn stop_reason_codes_and_labels_round_trip() {
        for reason in [
            StopReason::BudgetExhausted,
            StopReason::Converged,
            StopReason::Pruned,
            StopReason::Prefiltered,
        ] {
            assert_eq!(StopReason::from_code(reason.code()), Some(reason));
            assert_eq!(StopReason::from_label(reason.label()), Some(reason));
        }
        assert_eq!(StopReason::from_code(4), None);
        assert_eq!(StopReason::from_code(255), None);
        assert_eq!(StopReason::from_label("surprise"), None);
        assert_eq!(StopReason::default(), StopReason::BudgetExhausted);
    }

    #[test]
    fn default_fidelity_reports_budget_exhausted() {
        let (mut eval, space, _) = setup(TransferScheme::Baseline);
        let mut rng = Rng::seed(21);
        let out = eval.evaluate(&Candidate::new(0, space.sample(&mut rng), None));
        assert_eq!(out.stop, StopReason::BudgetExhausted);
    }

    #[test]
    fn zero_cost_score_is_deterministic_and_positive() {
        let (mut eval, space, _) = setup(TransferScheme::Baseline);
        let mut rng = Rng::seed(22);
        let arch = space.sample(&mut rng);
        let a = eval.zero_cost_score(&arch, 99);
        let b = eval.zero_cost_score(&arch, 99);
        assert_eq!(a, b, "same arch + seed must score identically");
        assert!(a.is_finite() && a > 0.0, "gradient norm at init must be positive: {a}");
        let other = space.sample(&mut rng);
        let c = eval.zero_cost_score(&other, 99);
        assert_ne!(a, c, "different architectures should rarely tie exactly");
    }

    #[test]
    fn prefilter_skips_the_bottom_quantile_and_only_rung_zero() {
        let (mut eval, space, store) = setup(TransferScheme::Baseline);
        eval.set_fidelity(EvalFidelity { prefilter_quantile: 0.9, convergence: None });
        let mut rng = Rng::seed(23);
        let cands: Vec<Candidate> =
            (0..8).map(|id| Candidate::new(id, space.sample(&mut rng), None)).collect();
        let outs: Vec<EvalOutcome> = cands.iter().map(|c| eval.evaluate(c)).collect();
        let filtered: Vec<&EvalOutcome> =
            outs.iter().filter(|o| o.stop == StopReason::Prefiltered).collect();
        assert!(!filtered.is_empty(), "a 0.9 quantile must filter some of 8 candidates");
        for o in &filtered {
            assert_eq!(o.score, f64::NEG_INFINITY, "prefiltered candidates rank last");
            assert_eq!(o.epochs, 0);
            assert_eq!(o.checkpoint_bytes, 0);
            assert!(!store.exists(&format!("c{}", o.id)), "no checkpoint is written");
        }
        // A promoted re-dispatch (rung > 0) must never be prefiltered.
        let mut promoted = cands[filtered[0].id as usize].clone();
        promoted.rung = 1;
        promoted.epochs = Some(1);
        let out = eval.evaluate(&promoted);
        assert_ne!(out.stop, StopReason::Prefiltered);
        assert!(out.score.is_finite());
    }

    #[test]
    fn prefilter_survivors_score_identically_to_a_plain_run() {
        let problem = Arc::new(AppKind::Uno.problem(DataScale::Quick, 7));
        let space = Arc::new(SearchSpace::for_app(AppKind::Uno));
        let mut rng = Rng::seed(24);
        let cands: Vec<Candidate> =
            (0..6).map(|id| Candidate::new(id, space.sample(&mut rng), None)).collect();
        let mk = |fidelity: EvalFidelity| {
            let store: Arc<dyn CheckpointStore> = Arc::new(MemStore::new());
            let mut ev = Evaluator::new(
                Arc::clone(&problem),
                Arc::clone(&space),
                store,
                TransferScheme::Baseline,
                1,
                42,
            );
            ev.set_fidelity(fidelity);
            ev
        };
        let mut plain = mk(EvalFidelity::default());
        let mut gated = mk(EvalFidelity { prefilter_quantile: 0.5, convergence: None });
        for c in &cands {
            let a = plain.evaluate(c);
            let b = gated.evaluate(c);
            if b.stop != StopReason::Prefiltered {
                assert_eq!(a.score, b.score, "survivors must train bit-identically");
                assert_eq!(a.checkpoint_bytes, b.checkpoint_bytes);
            }
        }
    }

    #[test]
    fn per_task_epoch_override_and_convergence_stop() {
        let (mut eval, space, _) = setup(TransferScheme::Baseline);
        let mut rng = Rng::seed(25);
        let arch = space.sample(&mut rng);
        let mut cand = Candidate::new(0, arch, None);
        cand.epochs = Some(3);
        let out = eval.evaluate(&cand);
        assert_eq!(out.epochs, 3, "the per-task budget overrides the run budget");
        assert_eq!(out.stop, StopReason::BudgetExhausted);
        eval.set_fidelity(EvalFidelity {
            prefilter_quantile: 0.0,
            convergence: Some(Convergence { window: 1, min_delta: f64::INFINITY }),
        });
        let out = eval.evaluate(&cand);
        assert_eq!(out.epochs, 1, "an always-flat window stops after the first epoch");
        assert_eq!(out.stop, StopReason::Converged);
    }
}
