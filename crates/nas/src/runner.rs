//! The NAS scheduler: strategy loop + pluggable evaluation backend (Fig. 6).
//!
//! The strategy/top-K loop is backend-agnostic: it speaks to an
//! [`EvalBackend`] (in-process thread pool, or the `swt-dist` multi-process
//! coordinator) and is **deterministic by construction** regardless of the
//! backend's completion timing. Results are reported to the strategy in
//! candidate-id order through a reorder buffer, and exactly one new
//! candidate is dispatched after each report (after an initial burst of
//! `capacity` candidates). The strategy therefore sees one canonical
//! next/report interleaving for a given `(config, seed)` — the same
//! sequence whether candidates run on threads, processes, or a degraded
//! worker pool after failures — which is what makes the distributed
//! backend's results bit-identical to the in-process runner's (DESIGN.md
//! §10).

use crate::backend::{BackendResult, EvalBackend, ThreadPoolBackend};
use crate::candidate::ScoredCandidate;
use crate::strategy::{ProviderPolicy, RandomSearch, RegularizedEvolution, SearchStrategy};
use crate::trace::{NasTrace, TraceEvent};
use std::collections::BTreeMap;
use std::io;
use std::sync::Arc;
use std::time::Instant;
use swt_checkpoint::CheckpointStore;
use swt_core::TransferScheme;
use swt_data::AppProblem;
use swt_space::SearchSpace;
use swt_tensor::Rng;

/// Which search strategy drives the run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StrategyKind {
    /// Uniform random search (used for the analysis traces of Figs. 2/4/5).
    Random,
    /// Regularized evolution (Algorithm 1), the paper's search strategy.
    Evolution,
}

/// How the in-process backend packs candidates onto worker-slot threads.
///
/// The paper's few-shot workloads train very many *tiny* models; one OS
/// thread per simulated GPU then means `workers` runnable threads thrashing
/// a handful of cores. Batched evaluation keeps the configured dispatch
/// window (`workers` — the determinism contract is untouched) but services
/// it with fewer slot threads, each evaluating several candidates. Every
/// candidate keeps its own `Workspace`, seed derivation and trace row, so
/// results are bit-identical to unbatched runs (the integration suite and
/// `bench_batch` gate on canonical-trace equality).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BatchEval {
    /// One thread per worker slot (the historical shape).
    #[default]
    Off,
    /// Pack candidates when the model is small: engages when the problem's
    /// flops-per-step proxy is below a threshold derived from the core
    /// count, with batch size chosen so slot threads ≈ cores.
    Auto,
    /// Always pack exactly `n` candidates per slot thread (clamped to
    /// `[1, workers]`).
    Fixed(usize),
}

impl BatchEval {
    /// Parse the config-file/CLI surface syntax: `auto`, `off`, or a
    /// positive integer `N`.
    pub fn parse(s: &str) -> Option<BatchEval> {
        match s {
            "auto" => Some(BatchEval::Auto),
            "off" => Some(BatchEval::Off),
            n => n.parse::<usize>().ok().filter(|&n| n > 0).map(BatchEval::Fixed),
        }
    }
}

impl std::fmt::Display for BatchEval {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BatchEval::Off => write!(f, "off"),
            BatchEval::Auto => write!(f, "auto"),
            BatchEval::Fixed(n) => write!(f, "{n}"),
        }
    }
}

/// Configuration of one NAS candidate-estimation run.
#[derive(Debug, Clone, PartialEq)]
pub struct NasConfig {
    pub scheme: TransferScheme,
    pub strategy: StrategyKind,
    /// Candidates to evaluate (the paper runs 400 per experiment).
    pub total_candidates: usize,
    /// Evaluator workers — one per simulated GPU (threads in-process,
    /// child processes under `swt-dist`). Also the deterministic dispatch
    /// window: runs with the same worker count are bit-identical across
    /// backends.
    pub workers: usize,
    /// Epochs per estimate (paper: 1).
    pub epochs: usize,
    /// Root seed: drives the strategy and all candidate training.
    pub seed: u64,
    /// Evolution population size (paper: 64).
    pub population_size: usize,
    /// Evolution tournament size (paper: 32).
    pub sample_size: usize,
    /// Provider-selection policy (the paper's Algorithm 1 uses the mutation
    /// parent; alternatives exist for ablations).
    pub provider: ProviderPolicy,
    /// Byte budget of the shared provider cache wrapped around the
    /// checkpoint store (0 disables caching). Evolution re-reads elite
    /// parents constantly, so even a small budget turns most provider reads
    /// into memory hits.
    pub cache_bytes: u64,
    /// Checkpoint-id namespace: candidate `i` is stored as `{namespace}c{i}`.
    /// Runs sharing one store (e.g. one `DirStore` on a parallel file
    /// system) must use distinct namespaces; the default empty string keeps
    /// the historical bare `c{i}` ids.
    pub namespace: String,
    /// Candidate packing for the in-process backend (`auto|off|N`); see
    /// [`BatchEval`]. Scheduling-only: results are bit-identical across
    /// settings. Defaults to [`BatchEval::Off`].
    pub batch_eval: BatchEval,
}

impl NasConfig {
    /// The paper's configuration, scaled only in candidate count.
    pub fn paper(
        scheme: TransferScheme,
        total_candidates: usize,
        workers: usize,
        seed: u64,
    ) -> Self {
        NasConfig {
            scheme,
            strategy: StrategyKind::Evolution,
            total_candidates,
            workers,
            epochs: 1,
            seed,
            population_size: 64,
            sample_size: 32,
            provider: ProviderPolicy::Parent,
            cache_bytes: 256 << 20,
            namespace: String::new(),
            batch_eval: BatchEval::Off,
        }
    }

    /// A small configuration for tests and quick runs.
    pub fn quick(
        scheme: TransferScheme,
        total_candidates: usize,
        workers: usize,
        seed: u64,
    ) -> Self {
        NasConfig {
            population_size: 16,
            sample_size: 8,
            cache_bytes: 32 << 20,
            ..Self::paper(scheme, total_candidates, workers, seed)
        }
    }
}

/// Run one NAS candidate-estimation phase on the in-process thread pool:
/// `workers` evaluator threads stay busy while the strategy loop streams
/// candidates through the deterministic dispatch window, exactly like
/// DeepHyper's Ray evaluators against a local pool.
pub fn run_nas(
    problem: Arc<AppProblem>,
    space: Arc<SearchSpace>,
    store: Arc<dyn CheckpointStore>,
    cfg: &NasConfig,
) -> NasTrace {
    // One provider cache shared by every evaluator worker: a parent pulled
    // in by one worker is a memory hit for all of them.
    let store: Arc<dyn CheckpointStore> = if cfg.cache_bytes > 0 {
        Arc::new(swt_checkpoint::CachedStore::new(store, cfg.cache_bytes))
    } else {
        store
    };
    let app = problem.kind.name().to_string();
    let mut backend = ThreadPoolBackend::new(problem, Arc::clone(&space), store, cfg);
    // The in-process backend's channels cannot fail while the runner holds
    // both endpoints' peers; an error here means an evaluator panicked.
    run_nas_with_backend(&app, space, cfg, &mut backend).expect("in-process evaluation failed")
}

/// The backend-agnostic strategy loop. Both `run_nas` (thread pool) and
/// `swt_dist::run_nas_dist` (multi-process) are thin wrappers over this.
///
/// Dispatch discipline (the determinism contract): ids are assigned
/// sequentially by the strategy; the first `capacity` candidates are
/// submitted up front, completions are reported to the strategy strictly in
/// id order (out-of-order arrivals wait in a reorder buffer), and each
/// report is followed by exactly one dispatch while candidates remain. The
/// strategy's call sequence — and therefore every candidate's architecture,
/// parent and seed — depends only on `(cfg, seed)`, never on completion
/// timing, worker count degradation, or result reassignment.
pub fn run_nas_with_backend<B: EvalBackend>(
    app: &str,
    space: Arc<SearchSpace>,
    cfg: &NasConfig,
    backend: &mut B,
) -> io::Result<NasTrace> {
    assert!(cfg.workers > 0, "need at least one worker");
    assert!(cfg.total_candidates > 0, "need at least one candidate");

    let mut strategy: Box<dyn SearchStrategy> = match cfg.strategy {
        StrategyKind::Random => Box::new(RandomSearch::new(Arc::clone(&space))),
        StrategyKind::Evolution => Box::new(RegularizedEvolution::with_provider(
            Arc::clone(&space),
            cfg.population_size.min(cfg.total_candidates),
            cfg.sample_size.min(cfg.population_size.min(cfg.total_candidates)),
            cfg.provider,
        )),
    };
    let mut rng = Rng::seed(cfg.seed ^ 0x57A7E6);

    let start = Instant::now();
    let total = cfg.total_candidates;
    let window = backend.capacity().max(1).min(total);
    let mut events: Vec<TraceEvent> = Vec::with_capacity(total);
    let mut dispatched = 0usize;
    // Results are reported to the strategy in id order; arrivals beyond the
    // next expected id wait here. The buffer never holds more than `window`
    // entries.
    let mut buffer: BTreeMap<u64, BackendResult> = BTreeMap::new();
    let mut next_report = 0u64;

    let dispatch_one = |strategy: &mut Box<dyn SearchStrategy>, rng: &mut Rng, backend: &mut B| {
        let cand = {
            let _span = swt_obs::span!("nas.strategy_next");
            strategy.next(rng)
        };
        backend.submit(cand)?;
        swt_obs::counter!("nas.candidates_dispatched").inc();
        swt_obs::event!("nas.dispatch", 1);
        Ok::<(), io::Error>(())
    };

    while dispatched < window {
        dispatch_one(&mut strategy, &mut rng, backend)?;
        dispatched += 1;
    }
    while (next_report as usize) < total {
        let res = backend.next_result()?;
        let id = res.cand.id;
        if id < next_report || buffer.contains_key(&id) {
            // Duplicate delivery (a reassigned candidate whose original
            // worker completed after all): same seed, same result — drop it.
            swt_obs::counter!("nas.duplicate_results").inc();
            continue;
        }
        buffer.insert(id, res);
        while let Some(res) = buffer.remove(&next_report) {
            strategy.report(ScoredCandidate {
                id: res.cand.id,
                arch: res.cand.arch.clone(),
                score: res.outcome.score,
            });
            events.push(TraceEvent {
                id: res.cand.id,
                arch: res.cand.arch,
                parent: res.cand.parent,
                score: res.outcome.score,
                t_start: res.t_start,
                t_end: res.t_end,
                train_secs: res.outcome.train_secs,
                transfer_secs: res.outcome.transfer_secs,
                save_secs: res.outcome.save_secs,
                checkpoint_bytes: res.outcome.checkpoint_bytes,
                transfer_tensors: res.outcome.transfer.tensors,
                transfer_bytes: res.outcome.transfer.bytes,
            });
            next_report += 1;
            swt_obs::event!("nas.report", 1);
            if dispatched < total {
                dispatch_one(&mut strategy, &mut rng, backend)?;
                dispatched += 1;
            }
        }
    }

    Ok(NasTrace {
        app: app.to_string(),
        scheme: cfg.scheme,
        seed: cfg.seed,
        workers: cfg.workers,
        events,
        wall_secs: start.elapsed().as_secs_f64(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use swt_checkpoint::MemStore;
    use swt_data::{AppKind, DataScale};

    fn run(
        scheme: TransferScheme,
        strategy: StrategyKind,
        total: usize,
        workers: usize,
    ) -> NasTrace {
        let problem = Arc::new(AppKind::Uno.problem(DataScale::Quick, 11));
        let space = Arc::new(SearchSpace::for_app(AppKind::Uno));
        let store: Arc<dyn CheckpointStore> = Arc::new(MemStore::new());
        let cfg = NasConfig { strategy, ..NasConfig::quick(scheme, total, workers, 3) };
        run_nas(problem, space, store, &cfg)
    }

    #[test]
    fn completes_requested_candidates() {
        let trace = run(TransferScheme::Baseline, StrategyKind::Random, 6, 2);
        assert_eq!(trace.events.len(), 6);
        let ids: Vec<_> = trace.events.iter().map(|e| e.id).collect();
        assert_eq!(ids, (0..6).collect::<Vec<_>>(), "events are recorded in id order");
        assert!(trace.wall_secs > 0.0);
        assert!(trace.events.iter().all(|e| e.score.is_finite()));
        assert!(trace.events.iter().all(|e| e.t_end >= e.t_start));
    }

    #[test]
    fn evolution_children_transfer_weights() {
        // 16-member population (quick config), 24 candidates: the last 8
        // must be children with parents and non-trivial transfers.
        let trace = run(TransferScheme::Lcs, StrategyKind::Evolution, 24, 2);
        let children: Vec<_> = trace.events.iter().filter(|e| e.parent.is_some()).collect();
        assert!(!children.is_empty(), "post-warm-up children expected");
        assert!(
            children.iter().any(|e| e.transfer_tensors > 0),
            "LCS children must transfer tensors from their parents"
        );
    }

    #[test]
    fn baseline_never_transfers() {
        let trace = run(TransferScheme::Baseline, StrategyKind::Evolution, 20, 2);
        assert!(trace.events.iter().all(|e| e.transfer_tensors == 0));
        assert!(trace.events.iter().all(|e| e.transfer_secs == 0.0));
    }

    #[test]
    fn checkpoints_written_for_all_candidates() {
        let problem = Arc::new(AppKind::Uno.problem(DataScale::Quick, 11));
        let space = Arc::new(SearchSpace::for_app(AppKind::Uno));
        let store = Arc::new(MemStore::new());
        let store_dyn: Arc<dyn CheckpointStore> = Arc::clone(&store) as _;
        let cfg = NasConfig::quick(TransferScheme::Lp, 8, 2, 5);
        let trace = run_nas(problem, space, store_dyn, &cfg);
        for e in &trace.events {
            assert!(store.exists(&format!("c{}", e.id)));
        }
    }

    #[test]
    fn namespaced_run_prefixes_checkpoint_ids() {
        let problem = Arc::new(AppKind::Uno.problem(DataScale::Quick, 11));
        let space = Arc::new(SearchSpace::for_app(AppKind::Uno));
        let store = Arc::new(MemStore::new());
        let store_dyn: Arc<dyn CheckpointStore> = Arc::clone(&store) as _;
        let cfg = NasConfig {
            namespace: "runA_".into(),
            ..NasConfig::quick(TransferScheme::Lcs, 4, 2, 5)
        };
        let trace = run_nas(problem, space, store_dyn, &cfg);
        for e in &trace.events {
            assert!(store.exists(&format!("runA_c{}", e.id)));
            assert!(!store.exists(&format!("c{}", e.id)));
        }
    }

    #[test]
    fn batch_eval_surface_syntax_roundtrips() {
        assert_eq!(BatchEval::parse("auto"), Some(BatchEval::Auto));
        assert_eq!(BatchEval::parse("off"), Some(BatchEval::Off));
        assert_eq!(BatchEval::parse("4"), Some(BatchEval::Fixed(4)));
        assert_eq!(BatchEval::parse("0"), None);
        assert_eq!(BatchEval::parse("many"), None);
        for b in [BatchEval::Off, BatchEval::Auto, BatchEval::Fixed(7)] {
            assert_eq!(BatchEval::parse(&b.to_string()), Some(b));
        }
    }

    #[test]
    fn single_worker_run_is_deterministic() {
        let a = run(TransferScheme::Lcs, StrategyKind::Evolution, 10, 1);
        let b = run(TransferScheme::Lcs, StrategyKind::Evolution, 10, 1);
        assert_eq!(a.events.len(), b.events.len());
        for (x, y) in a.events.iter().zip(&b.events) {
            assert_eq!(x.id, y.id);
            assert_eq!(x.arch, y.arch);
            assert_eq!(x.score, y.score, "candidate {} diverged", x.id);
        }
    }

    #[test]
    fn multi_worker_run_is_deterministic() {
        // The reorder window makes concurrent runs reproducible too: the
        // strategy sees one canonical next/report interleaving no matter
        // which worker finishes first.
        let a = run(TransferScheme::Lcs, StrategyKind::Evolution, 20, 3);
        let b = run(TransferScheme::Lcs, StrategyKind::Evolution, 20, 3);
        for (x, y) in a.events.iter().zip(&b.events) {
            assert_eq!((x.id, &x.arch, x.parent), (y.id, &y.arch, y.parent));
            assert_eq!(x.score, y.score, "candidate {} diverged", x.id);
            assert_eq!(x.transfer_tensors, y.transfer_tensors);
        }
    }
}
