//! The NAS scheduler: strategy + parallel evaluator pool (Fig. 6).

use crate::candidate::{Candidate, ScoredCandidate};
use crate::evaluator::{EvalOutcome, Evaluator};
use crate::strategy::{ProviderPolicy, RandomSearch, RegularizedEvolution, SearchStrategy};
use crate::trace::{NasTrace, TraceEvent};
use std::sync::mpsc;
use std::sync::{Arc, Mutex};
use std::time::Instant;
use swt_checkpoint::CheckpointStore;
use swt_core::TransferScheme;
use swt_data::AppProblem;
use swt_space::SearchSpace;
use swt_tensor::Rng;

/// Which search strategy drives the run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StrategyKind {
    /// Uniform random search (used for the analysis traces of Figs. 2/4/5).
    Random,
    /// Regularized evolution (Algorithm 1), the paper's search strategy.
    Evolution,
}

/// Configuration of one NAS candidate-estimation run.
#[derive(Debug, Clone, PartialEq)]
pub struct NasConfig {
    pub scheme: TransferScheme,
    pub strategy: StrategyKind,
    /// Candidates to evaluate (the paper runs 400 per experiment).
    pub total_candidates: usize,
    /// Evaluator threads — one per simulated GPU.
    pub workers: usize,
    /// Epochs per estimate (paper: 1).
    pub epochs: usize,
    /// Root seed: drives the strategy and all candidate training.
    pub seed: u64,
    /// Evolution population size (paper: 64).
    pub population_size: usize,
    /// Evolution tournament size (paper: 32).
    pub sample_size: usize,
    /// Provider-selection policy (the paper's Algorithm 1 uses the mutation
    /// parent; alternatives exist for ablations).
    pub provider: ProviderPolicy,
    /// Byte budget of the shared provider cache wrapped around the
    /// checkpoint store (0 disables caching). Evolution re-reads elite
    /// parents constantly, so even a small budget turns most provider reads
    /// into memory hits.
    pub cache_bytes: u64,
}

impl NasConfig {
    /// The paper's configuration, scaled only in candidate count.
    pub fn paper(
        scheme: TransferScheme,
        total_candidates: usize,
        workers: usize,
        seed: u64,
    ) -> Self {
        NasConfig {
            scheme,
            strategy: StrategyKind::Evolution,
            total_candidates,
            workers,
            epochs: 1,
            seed,
            population_size: 64,
            sample_size: 32,
            provider: ProviderPolicy::Parent,
            cache_bytes: 256 << 20,
        }
    }

    /// A small configuration for tests and quick runs.
    pub fn quick(
        scheme: TransferScheme,
        total_candidates: usize,
        workers: usize,
        seed: u64,
    ) -> Self {
        NasConfig {
            population_size: 16,
            sample_size: 8,
            cache_bytes: 32 << 20,
            ..Self::paper(scheme, total_candidates, workers, seed)
        }
    }
}

/// Run one NAS candidate-estimation phase: the scheduler thread executes the
/// strategy and keeps `workers` evaluator threads busy; results stream back
/// asynchronously, exactly like DeepHyper's Ray evaluators.
pub fn run_nas(
    problem: Arc<AppProblem>,
    space: Arc<SearchSpace>,
    store: Arc<dyn CheckpointStore>,
    cfg: &NasConfig,
) -> NasTrace {
    assert!(cfg.workers > 0, "need at least one worker");
    assert!(cfg.total_candidates > 0, "need at least one candidate");

    // One provider cache shared by every evaluator worker: a parent pulled
    // in by one worker is a memory hit for all of them.
    let store: Arc<dyn CheckpointStore> = if cfg.cache_bytes > 0 {
        Arc::new(swt_checkpoint::CachedStore::new(store, cfg.cache_bytes))
    } else {
        store
    };

    let mut strategy: Box<dyn SearchStrategy> = match cfg.strategy {
        StrategyKind::Random => Box::new(RandomSearch::new(Arc::clone(&space))),
        StrategyKind::Evolution => Box::new(RegularizedEvolution::with_provider(
            Arc::clone(&space),
            cfg.population_size.min(cfg.total_candidates),
            cfg.sample_size.min(cfg.population_size.min(cfg.total_candidates)),
            cfg.provider,
        )),
    };
    let mut rng = Rng::seed(cfg.seed ^ 0x57A7E6);

    // Thread-budget policy: every evaluator worker models one GPU, and each
    // runs its candidate's training mostly single-threaded. The intra-op
    // pool in swt-tensor must therefore share the machine with the worker
    // pool — without this cap, `workers` evaluators each fanning out to
    // `available_parallelism()` intra-op threads oversubscribes the host by
    // a factor of `workers` and context-switch thrash erases the speedup.
    // Budget = hardware threads / workers, floored at 1 (i.e. pure
    // inter-candidate parallelism once workers ≥ cores).
    let hardware = std::thread::available_parallelism().map_or(1, |n| n.get());
    swt_tensor::parallel::set_max_threads((hardware / cfg.workers).max(1));

    let start = Instant::now();
    let (task_tx, task_rx) = mpsc::channel::<Candidate>();
    // Workers pull tasks from one shared queue; std's Receiver is
    // single-consumer, so it is wrapped in a mutex (lock contention is
    // negligible: tasks take seconds, the lock nanoseconds).
    let task_rx = Arc::new(Mutex::new(task_rx));
    let (result_tx, result_rx) = mpsc::channel::<(Candidate, f64, f64, EvalOutcome)>();

    let mut events: Vec<TraceEvent> = Vec::with_capacity(cfg.total_candidates);
    std::thread::scope(|scope| {
        for worker in 0..cfg.workers {
            let task_rx = Arc::clone(&task_rx);
            let result_tx = result_tx.clone();
            let mut evaluator = Evaluator::new(
                Arc::clone(&problem),
                Arc::clone(&space),
                Arc::clone(&store),
                cfg.scheme,
                cfg.epochs,
                cfg.seed,
            );
            scope.spawn(move || {
                // Attribute this thread's spans (queue wait, evaluation and
                // everything beneath) to its worker slot in run reports.
                swt_obs::span::set_worker(worker);
                loop {
                    // Hold the lock only for the blocking recv handoff, never
                    // while evaluating. The span separates time spent starved
                    // for work from time spent evaluating (the per-worker
                    // breakdown behind the paper's Fig. 10-style attribution).
                    let next = {
                        let _wait_span = swt_obs::span!("nas.queue_wait");
                        task_rx.lock().expect("task queue poisoned").recv()
                    };
                    let Ok(cand) = next else { break };
                    let t_start = start.elapsed().as_secs_f64();
                    let outcome = evaluator.evaluate(&cand);
                    let t_end = start.elapsed().as_secs_f64();
                    // The send itself is cheap, but it wakes the scheduler
                    // and the OS often deschedules this thread right at the
                    // futex wake — milliseconds a per-worker report would
                    // otherwise fail to attribute.
                    let sent = {
                        let _send_span = swt_obs::span!("nas.result_send");
                        result_tx.send((cand, t_start, t_end, outcome))
                    };
                    if sent.is_err() {
                        break;
                    }
                }
            });
        }
        drop(result_tx); // the scheduler holds only the receivers

        let mut dispatched = 0usize;
        let mut completed = 0usize;
        let mut inflight = 0usize;
        while completed < cfg.total_candidates {
            while inflight < cfg.workers && dispatched < cfg.total_candidates {
                let cand = {
                    let _span = swt_obs::span!("nas.strategy_next");
                    strategy.next(&mut rng)
                };
                task_tx.send(cand).expect("workers alive");
                swt_obs::counter!("nas.candidates_dispatched").inc();
                inflight += 1;
                dispatched += 1;
            }
            let (cand, t_start, t_end, outcome) =
                result_rx.recv().expect("at least one worker alive");
            inflight -= 1;
            completed += 1;
            strategy.report(ScoredCandidate {
                id: cand.id,
                arch: cand.arch.clone(),
                score: outcome.score,
            });
            events.push(TraceEvent {
                id: cand.id,
                arch: cand.arch,
                parent: cand.parent,
                score: outcome.score,
                t_start,
                t_end,
                train_secs: outcome.train_secs,
                transfer_secs: outcome.transfer_secs,
                save_secs: outcome.save_secs,
                checkpoint_bytes: outcome.checkpoint_bytes,
                transfer_tensors: outcome.transfer.tensors,
                transfer_bytes: outcome.transfer.bytes,
            });
        }
        drop(task_tx); // lets workers exit
    });

    NasTrace {
        app: problem.kind.name().to_string(),
        scheme: cfg.scheme,
        seed: cfg.seed,
        workers: cfg.workers,
        events,
        wall_secs: start.elapsed().as_secs_f64(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use swt_checkpoint::MemStore;
    use swt_data::{AppKind, DataScale};

    fn run(
        scheme: TransferScheme,
        strategy: StrategyKind,
        total: usize,
        workers: usize,
    ) -> NasTrace {
        let problem = Arc::new(AppKind::Uno.problem(DataScale::Quick, 11));
        let space = Arc::new(SearchSpace::for_app(AppKind::Uno));
        let store: Arc<dyn CheckpointStore> = Arc::new(MemStore::new());
        let cfg = NasConfig { strategy, ..NasConfig::quick(scheme, total, workers, 3) };
        run_nas(problem, space, store, &cfg)
    }

    #[test]
    fn completes_requested_candidates() {
        let trace = run(TransferScheme::Baseline, StrategyKind::Random, 6, 2);
        assert_eq!(trace.events.len(), 6);
        let mut ids: Vec<_> = trace.events.iter().map(|e| e.id).collect();
        ids.sort_unstable();
        assert_eq!(ids, (0..6).collect::<Vec<_>>());
        assert!(trace.wall_secs > 0.0);
        assert!(trace.events.iter().all(|e| e.score.is_finite()));
        assert!(trace.events.iter().all(|e| e.t_end >= e.t_start));
    }

    #[test]
    fn evolution_children_transfer_weights() {
        // 16-member population (quick config), 24 candidates: the last 8
        // must be children with parents and non-trivial transfers.
        let trace = run(TransferScheme::Lcs, StrategyKind::Evolution, 24, 2);
        let children: Vec<_> = trace.events.iter().filter(|e| e.parent.is_some()).collect();
        assert!(!children.is_empty(), "post-warm-up children expected");
        assert!(
            children.iter().any(|e| e.transfer_tensors > 0),
            "LCS children must transfer tensors from their parents"
        );
    }

    #[test]
    fn baseline_never_transfers() {
        let trace = run(TransferScheme::Baseline, StrategyKind::Evolution, 20, 2);
        assert!(trace.events.iter().all(|e| e.transfer_tensors == 0));
        assert!(trace.events.iter().all(|e| e.transfer_secs == 0.0));
    }

    #[test]
    fn checkpoints_written_for_all_candidates() {
        let problem = Arc::new(AppKind::Uno.problem(DataScale::Quick, 11));
        let space = Arc::new(SearchSpace::for_app(AppKind::Uno));
        let store = Arc::new(MemStore::new());
        let store_dyn: Arc<dyn CheckpointStore> = Arc::clone(&store) as _;
        let cfg = NasConfig::quick(TransferScheme::Lp, 8, 2, 5);
        let trace = run_nas(problem, space, store_dyn, &cfg);
        for e in &trace.events {
            assert!(store.exists(&format!("c{}", e.id)));
        }
    }

    #[test]
    fn single_worker_run_is_deterministic() {
        let a = run(TransferScheme::Lcs, StrategyKind::Evolution, 10, 1);
        let b = run(TransferScheme::Lcs, StrategyKind::Evolution, 10, 1);
        assert_eq!(a.events.len(), b.events.len());
        for (x, y) in a.events.iter().zip(&b.events) {
            assert_eq!(x.id, y.id);
            assert_eq!(x.arch, y.arch);
            assert_eq!(x.score, y.score, "candidate {} diverged", x.id);
        }
    }
}
