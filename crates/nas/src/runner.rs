//! The NAS scheduler: strategy loop + pluggable evaluation backend (Fig. 6).
//!
//! The strategy/top-K loop is backend-agnostic: it speaks to an
//! [`EvalBackend`] (in-process thread pool, or the `swt-dist` multi-process
//! coordinator) and is **deterministic by construction** regardless of the
//! backend's completion timing. Results are reported to the strategy in
//! candidate-id order through a reorder buffer, and exactly one new
//! candidate is dispatched after each report (after an initial burst of
//! `capacity` candidates). The strategy therefore sees one canonical
//! next/report interleaving for a given `(config, seed)` — the same
//! sequence whether candidates run on threads, processes, or a degraded
//! worker pool after failures — which is what makes the distributed
//! backend's results bit-identical to the in-process runner's (DESIGN.md
//! §10).

use crate::backend::{BackendResult, EvalBackend, ThreadPoolBackend};
use crate::candidate::{Candidate, ScoredCandidate};
use crate::evaluator::{EvalFidelity, StopReason};
use crate::strategy::{ProviderPolicy, RandomSearch, RegularizedEvolution, SearchStrategy};
use crate::trace::{NasTrace, TraceEvent};
use std::collections::BTreeMap;
use std::io;
use std::sync::Arc;
use std::time::Instant;
use swt_checkpoint::CheckpointStore;
use swt_core::TransferScheme;
use swt_data::AppProblem;
use swt_nn::Convergence;
use swt_space::SearchSpace;
use swt_tensor::Rng;

/// Which search strategy drives the run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StrategyKind {
    /// Uniform random search (used for the analysis traces of Figs. 2/4/5).
    Random,
    /// Regularized evolution (Algorithm 1), the paper's search strategy.
    Evolution,
}

/// How the in-process backend packs candidates onto worker-slot threads.
///
/// The paper's few-shot workloads train very many *tiny* models; one OS
/// thread per simulated GPU then means `workers` runnable threads thrashing
/// a handful of cores. Batched evaluation keeps the configured dispatch
/// window (`workers` — the determinism contract is untouched) but services
/// it with fewer slot threads, each evaluating several candidates. Every
/// candidate keeps its own `Workspace`, seed derivation and trace row, so
/// results are bit-identical to unbatched runs (the integration suite and
/// `bench_batch` gate on canonical-trace equality).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BatchEval {
    /// One thread per worker slot (the historical shape).
    #[default]
    Off,
    /// Pack candidates when the model is small: engages when the problem's
    /// flops-per-step proxy is below a threshold derived from the core
    /// count, with batch size chosen so slot threads ≈ cores.
    Auto,
    /// Always pack exactly `n` candidates per slot thread (clamped to
    /// `[1, workers]`).
    Fixed(usize),
}

impl BatchEval {
    /// Parse the config-file/CLI surface syntax: `auto`, `off`, or a
    /// positive integer `N`.
    pub fn parse(s: &str) -> Option<BatchEval> {
        match s {
            "auto" => Some(BatchEval::Auto),
            "off" => Some(BatchEval::Off),
            n => n.parse::<usize>().ok().filter(|&n| n > 0).map(BatchEval::Fixed),
        }
    }
}

impl std::fmt::Display for BatchEval {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BatchEval::Off => write!(f, "off"),
            BatchEval::Auto => write!(f, "auto"),
            BatchEval::Fixed(n) => write!(f, "{n}"),
        }
    }
}

/// A rejected fidelity knob. `NasConfig` construction surfaces these as
/// typed errors instead of silently clamping, so a bad CLI flag or config
/// file fails loudly before any training starts.
#[derive(Debug, Clone, PartialEq)]
pub enum FidelityError {
    /// `eta` must be at least 2 (an eta of 1 promotes everyone — successive
    /// halving degenerates to plain extra epochs).
    EtaTooSmall { eta: usize },
    /// Rung epoch budgets must be positive and strictly increasing (they
    /// are *cumulative* budgets).
    RungsNotIncreasing { rungs: Vec<usize> },
    /// The pre-filter quantile must lie in `[0, 1)` (1 would skip every
    /// candidate).
    QuantileOutOfRange { quantile: f64 },
    /// The convergence window must contain at least one epoch and the delta
    /// must be non-negative and not NaN.
    BadConvergence { window: usize, min_delta: f64 },
}

impl std::fmt::Display for FidelityError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FidelityError::EtaTooSmall { eta } => {
                write!(f, "eta must be >= 2, got {eta}")
            }
            FidelityError::RungsNotIncreasing { rungs } => {
                write!(f, "rung epochs must be positive and strictly increasing, got {rungs:?}")
            }
            FidelityError::QuantileOutOfRange { quantile } => {
                write!(f, "prefilter quantile must be in [0, 1), got {quantile}")
            }
            FidelityError::BadConvergence { window, min_delta } => {
                write!(
                    f,
                    "convergence needs window >= 1 and min_delta >= 0, got window {window} \
                     min_delta {min_delta}"
                )
            }
        }
    }
}

impl std::error::Error for FidelityError {}

/// Maximum rung index carried on the wire (`u8` on `Task`/`Result` v4
/// frames; anything beyond this is a hostile or corrupt payload).
pub const MAX_RUNGS: usize = 16;

/// Multi-fidelity knobs of a NAS run. The default is every feature off,
/// which reproduces pre-fidelity runs bit-for-bit.
#[derive(Debug, Clone, PartialEq)]
pub struct FidelityConfig {
    /// Successive-halving promotion divisor: the top `1/eta` of a rung is
    /// re-dispatched to the next.
    pub eta: usize,
    /// Cumulative per-rung epoch budgets, strictly increasing (e.g. `[1, 4]`
    /// trains every candidate 1 epoch, then survivors 3 more). Empty
    /// disables successive halving and candidates train the run budget.
    pub rungs: Vec<usize>,
    /// Quantile of rung-0 candidates the zero-cost pre-filter skips
    /// (`0.0` = off).
    pub prefilter_quantile: f64,
    /// Per-candidate loss-delta convergence cut (`None` = off).
    pub convergence: Option<Convergence>,
}

impl Default for FidelityConfig {
    fn default() -> Self {
        FidelityConfig::off()
    }
}

impl FidelityConfig {
    /// Every fidelity feature disabled (the validated default).
    pub fn off() -> Self {
        FidelityConfig { eta: 2, rungs: Vec::new(), prefilter_quantile: 0.0, convergence: None }
    }

    /// A validating constructor: returns a typed [`FidelityError`] instead
    /// of clamping out-of-range knobs.
    pub fn new(
        eta: usize,
        rungs: Vec<usize>,
        prefilter_quantile: f64,
        convergence: Option<Convergence>,
    ) -> Result<Self, FidelityError> {
        let cfg = FidelityConfig { eta, rungs, prefilter_quantile, convergence };
        cfg.validate()?;
        Ok(cfg)
    }

    /// Check every knob; [`FidelityConfig::new`] and the runner both call
    /// this, so a hand-assembled config cannot sneak past validation.
    pub fn validate(&self) -> Result<(), FidelityError> {
        if self.eta < 2 {
            return Err(FidelityError::EtaTooSmall { eta: self.eta });
        }
        if self.rungs.first().is_some_and(|&r| r == 0)
            || self.rungs.windows(2).any(|w| w[1] <= w[0])
        {
            return Err(FidelityError::RungsNotIncreasing { rungs: self.rungs.clone() });
        }
        if self.rungs.len() > MAX_RUNGS {
            return Err(FidelityError::RungsNotIncreasing { rungs: self.rungs.clone() });
        }
        if !(0.0..1.0).contains(&self.prefilter_quantile) {
            return Err(FidelityError::QuantileOutOfRange { quantile: self.prefilter_quantile });
        }
        if let Some(c) = self.convergence {
            if c.window == 0 || c.min_delta.is_nan() || c.min_delta < 0.0 {
                return Err(FidelityError::BadConvergence {
                    window: c.window,
                    min_delta: c.min_delta,
                });
            }
        }
        Ok(())
    }

    /// True iff any feature is active.
    pub fn enabled(&self) -> bool {
        !self.rungs.is_empty() || self.prefilter_quantile > 0.0 || self.convergence.is_some()
    }

    /// The evaluator-side subset of these knobs (what travels to workers in
    /// the v4 `RunSpec`; rungs and eta stay coordinator-side).
    pub fn eval_fidelity(&self) -> EvalFidelity {
        EvalFidelity { prefilter_quantile: self.prefilter_quantile, convergence: self.convergence }
    }
}

/// Configuration of one NAS candidate-estimation run.
#[derive(Debug, Clone, PartialEq)]
pub struct NasConfig {
    pub scheme: TransferScheme,
    pub strategy: StrategyKind,
    /// Candidates to evaluate (the paper runs 400 per experiment).
    pub total_candidates: usize,
    /// Evaluator workers — one per simulated GPU (threads in-process,
    /// child processes under `swt-dist`). Also the deterministic dispatch
    /// window: runs with the same worker count are bit-identical across
    /// backends.
    pub workers: usize,
    /// Epochs per estimate (paper: 1).
    pub epochs: usize,
    /// Root seed: drives the strategy and all candidate training.
    pub seed: u64,
    /// Evolution population size (paper: 64).
    pub population_size: usize,
    /// Evolution tournament size (paper: 32).
    pub sample_size: usize,
    /// Provider-selection policy (the paper's Algorithm 1 uses the mutation
    /// parent; alternatives exist for ablations).
    pub provider: ProviderPolicy,
    /// Byte budget of the shared provider cache wrapped around the
    /// checkpoint store (0 disables caching). Evolution re-reads elite
    /// parents constantly, so even a small budget turns most provider reads
    /// into memory hits.
    pub cache_bytes: u64,
    /// Checkpoint-id namespace: candidate `i` is stored as `{namespace}c{i}`.
    /// Runs sharing one store (e.g. one `DirStore` on a parallel file
    /// system) must use distinct namespaces; the default empty string keeps
    /// the historical bare `c{i}` ids.
    pub namespace: String,
    /// Candidate packing for the in-process backend (`auto|off|N`); see
    /// [`BatchEval`]. Scheduling-only: results are bit-identical across
    /// settings. Defaults to [`BatchEval::Off`].
    pub batch_eval: BatchEval,
    /// Multi-fidelity pipeline knobs (early stopping, successive halving,
    /// zero-cost pre-filter). Defaults to everything off, which keeps runs
    /// bit-identical to pre-fidelity releases.
    pub fidelity: FidelityConfig,
}

impl NasConfig {
    /// The paper's configuration, scaled only in candidate count.
    pub fn paper(
        scheme: TransferScheme,
        total_candidates: usize,
        workers: usize,
        seed: u64,
    ) -> Self {
        NasConfig {
            scheme,
            strategy: StrategyKind::Evolution,
            total_candidates,
            workers,
            epochs: 1,
            seed,
            population_size: 64,
            sample_size: 32,
            provider: ProviderPolicy::Parent,
            cache_bytes: 256 << 20,
            namespace: String::new(),
            batch_eval: BatchEval::Off,
            fidelity: FidelityConfig::off(),
        }
    }

    /// A small configuration for tests and quick runs.
    pub fn quick(
        scheme: TransferScheme,
        total_candidates: usize,
        workers: usize,
        seed: u64,
    ) -> Self {
        NasConfig {
            population_size: 16,
            sample_size: 8,
            cache_bytes: 32 << 20,
            ..Self::paper(scheme, total_candidates, workers, seed)
        }
    }
}

/// Run one NAS candidate-estimation phase on the in-process thread pool:
/// `workers` evaluator threads stay busy while the strategy loop streams
/// candidates through the deterministic dispatch window, exactly like
/// DeepHyper's Ray evaluators against a local pool.
pub fn run_nas(
    problem: Arc<AppProblem>,
    space: Arc<SearchSpace>,
    store: Arc<dyn CheckpointStore>,
    cfg: &NasConfig,
) -> NasTrace {
    // One provider cache shared by every evaluator worker: a parent pulled
    // in by one worker is a memory hit for all of them.
    let store: Arc<dyn CheckpointStore> = if cfg.cache_bytes > 0 {
        Arc::new(swt_checkpoint::CachedStore::new(store, cfg.cache_bytes))
    } else {
        store
    };
    let app = problem.kind.name().to_string();
    let mut backend = ThreadPoolBackend::new(problem, Arc::clone(&space), store, cfg);
    // The in-process backend's channels cannot fail while the runner holds
    // both endpoints' peers; an error here means an evaluator panicked.
    run_nas_with_backend(&app, space, cfg, &mut backend).expect("in-process evaluation failed")
}

/// The backend-agnostic strategy loop. Both `run_nas` (thread pool) and
/// `swt_dist::run_nas_dist` (multi-process) are thin wrappers over this.
///
/// Dispatch discipline (the determinism contract): ids are assigned
/// sequentially by the strategy; the first `capacity` candidates are
/// submitted up front, completions are reported to the strategy strictly in
/// id order (out-of-order arrivals wait in a reorder buffer), and each
/// report is followed by exactly one dispatch while candidates remain. The
/// strategy's call sequence — and therefore every candidate's architecture,
/// parent and seed — depends only on `(cfg, seed)`, never on completion
/// timing, worker count degradation, or result reassignment.
pub fn run_nas_with_backend<B: EvalBackend>(
    app: &str,
    space: Arc<SearchSpace>,
    cfg: &NasConfig,
    backend: &mut B,
) -> io::Result<NasTrace> {
    assert!(cfg.workers > 0, "need at least one worker");
    assert!(cfg.total_candidates > 0, "need at least one candidate");
    // Defensive re-validation: a hand-assembled `NasConfig` may carry knobs
    // that never passed `FidelityConfig::new`.
    cfg.fidelity
        .validate()
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidInput, e.to_string()))?;

    let mut strategy: Box<dyn SearchStrategy> = match cfg.strategy {
        StrategyKind::Random => Box::new(RandomSearch::new(Arc::clone(&space))),
        StrategyKind::Evolution => Box::new(RegularizedEvolution::with_provider(
            Arc::clone(&space),
            cfg.population_size.min(cfg.total_candidates),
            cfg.sample_size.min(cfg.population_size.min(cfg.total_candidates)),
            cfg.provider,
        )),
    };
    let mut rng = Rng::seed(cfg.seed ^ 0x57A7E6);

    let start = Instant::now();
    let total = cfg.total_candidates;
    let window = backend.capacity().max(1).min(total);
    let mut events: Vec<TraceEvent> = Vec::with_capacity(total);
    let mut dispatched = 0usize;
    // Results are reported to the strategy in id order; arrivals beyond the
    // next expected id wait here. The buffer never holds more than `window`
    // entries.
    let mut buffer: BTreeMap<u64, BackendResult> = BTreeMap::new();
    let mut next_report = 0u64;

    // When successive halving is on, rung 0 trains to the first cumulative
    // budget instead of the run budget; `None` leaves today's behaviour.
    let rung0_epochs: Option<usize> = cfg.fidelity.rungs.first().copied();

    let dispatch_one = |strategy: &mut Box<dyn SearchStrategy>, rng: &mut Rng, backend: &mut B| {
        let mut cand = {
            let _span = swt_obs::span!("nas.strategy_next");
            strategy.next(rng)
        };
        cand.epochs = rung0_epochs;
        backend.submit(cand)?;
        swt_obs::counter!("nas.candidates_dispatched").inc();
        swt_obs::event!("nas.dispatch", 1);
        Ok::<(), io::Error>(())
    };

    while dispatched < window {
        dispatch_one(&mut strategy, &mut rng, backend)?;
        dispatched += 1;
    }
    while (next_report as usize) < total {
        let res = backend.next_result()?;
        let id = res.cand.id;
        if id < next_report || buffer.contains_key(&id) {
            // Duplicate delivery (a reassigned candidate whose original
            // worker completed after all): same seed, same result — drop it.
            swt_obs::counter!("nas.duplicate_results").inc();
            continue;
        }
        buffer.insert(id, res);
        while let Some(res) = buffer.remove(&next_report) {
            strategy.report(ScoredCandidate {
                id: res.cand.id,
                arch: res.cand.arch.clone(),
                score: res.outcome.score,
            });
            events.push(trace_event(res));
            next_report += 1;
            swt_obs::event!("nas.report", 1);
            if dispatched < total {
                dispatch_one(&mut strategy, &mut rng, backend)?;
                dispatched += 1;
            }
        }
    }
    drop(strategy);

    // Successive-halving promotion waves: rank the completed rung, mark the
    // losers pruned, and re-dispatch the top `1/eta` to the next cumulative
    // budget with their own checkpoints as providers. Rung state lives here
    // — in the backend-agnostic loop — so traces are deterministic for a
    // fixed config on every backend.
    let mut next_id = total as u64;
    let mut wave_base = 0usize;
    let mut wave_len = total;
    for rung in 1..cfg.fidelity.rungs.len() {
        swt_obs::gauge!("fidelity.rung").set(rung as i64);
        let n_promote = (wave_len / cfg.fidelity.eta).clamp(1, wave_len);
        // Rank the previous wave: score descending, ties by earlier id.
        // Non-finite scores (prefiltered candidates rank at -inf) are never
        // promoted.
        let mut order: Vec<usize> = (0..wave_len).collect();
        order.sort_by(|&a, &b| {
            let (ea, eb) = (&events[wave_base + a], &events[wave_base + b]);
            eb.score.total_cmp(&ea.score).then(ea.id.cmp(&eb.id))
        });
        let mut is_promoted = vec![false; wave_len];
        let mut promoted_count = 0usize;
        for &off in &order {
            if promoted_count == n_promote {
                break;
            }
            if events[wave_base + off].score.is_finite() {
                is_promoted[off] = true;
                promoted_count += 1;
            }
        }
        // Everyone else stops here: mark them pruned (the pre-filter's more
        // specific reason wins when both apply).
        for (off, promoted) in is_promoted.iter().enumerate() {
            let e = &mut events[wave_base + off];
            if !promoted && e.stop != StopReason::Prefiltered {
                e.stop = StopReason::Pruned;
                swt_obs::counter!("fidelity.stopped.pruned").inc();
            }
        }
        // The next budget: with a transfer scheme the promotion resumes its
        // own rung-k checkpoint, so only the *delta* epochs are paid — the
        // paper's selective-transfer machinery applied to budgets instead of
        // lineage. Baseline cannot resume and retrains the full cumulative
        // budget from scratch.
        let epochs = if cfg.scheme.matcher().is_some() {
            cfg.fidelity.rungs[rung] - cfg.fidelity.rungs[rung - 1]
        } else {
            cfg.fidelity.rungs[rung]
        };
        let mut queue: std::collections::VecDeque<Candidate> = (0..wave_len)
            .filter(|&off| is_promoted[off])
            .map(|off| {
                let e = &events[wave_base + off];
                let id = next_id;
                next_id += 1;
                Candidate {
                    id,
                    arch: e.arch.clone(),
                    parent: Some(e.id),
                    rung: rung as u8,
                    epochs: Some(epochs),
                }
            })
            .collect();
        let wave_count = queue.len();
        if wave_count == 0 {
            break;
        }
        // Same reorder-window discipline as rung 0: burst up to `window`,
        // then one dispatch per in-order report.
        let mut in_flight = 0usize;
        while in_flight < window.min(wave_count) {
            let cand = queue.pop_front().expect("burst is bounded by queue length");
            backend.submit(cand)?;
            swt_obs::counter!("nas.candidates_dispatched").inc();
            swt_obs::event!("nas.dispatch", 1);
            in_flight += 1;
        }
        while next_report < next_id {
            let res = backend.next_result()?;
            let id = res.cand.id;
            if id < next_report || buffer.contains_key(&id) {
                swt_obs::counter!("nas.duplicate_results").inc();
                continue;
            }
            buffer.insert(id, res);
            while let Some(res) = buffer.remove(&next_report) {
                events.push(trace_event(res));
                next_report += 1;
                swt_obs::event!("nas.report", 1);
                if let Some(cand) = queue.pop_front() {
                    backend.submit(cand)?;
                    swt_obs::counter!("nas.candidates_dispatched").inc();
                    swt_obs::event!("nas.dispatch", 1);
                }
            }
        }
        wave_base = events.len() - wave_count;
        wave_len = wave_count;
    }

    Ok(NasTrace {
        app: app.to_string(),
        scheme: cfg.scheme,
        seed: cfg.seed,
        workers: cfg.workers,
        events,
        wall_secs: start.elapsed().as_secs_f64(),
    })
}

/// Fold one backend completion into a trace row.
fn trace_event(res: BackendResult) -> TraceEvent {
    TraceEvent {
        id: res.cand.id,
        arch: res.cand.arch,
        parent: res.cand.parent,
        score: res.outcome.score,
        t_start: res.t_start,
        t_end: res.t_end,
        train_secs: res.outcome.train_secs,
        transfer_secs: res.outcome.transfer_secs,
        save_secs: res.outcome.save_secs,
        checkpoint_bytes: res.outcome.checkpoint_bytes,
        transfer_tensors: res.outcome.transfer.tensors,
        transfer_bytes: res.outcome.transfer.bytes,
        rung: res.cand.rung,
        stop: res.outcome.stop,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use swt_checkpoint::MemStore;
    use swt_data::{AppKind, DataScale};

    fn run(
        scheme: TransferScheme,
        strategy: StrategyKind,
        total: usize,
        workers: usize,
    ) -> NasTrace {
        let problem = Arc::new(AppKind::Uno.problem(DataScale::Quick, 11));
        let space = Arc::new(SearchSpace::for_app(AppKind::Uno));
        let store: Arc<dyn CheckpointStore> = Arc::new(MemStore::new());
        let cfg = NasConfig { strategy, ..NasConfig::quick(scheme, total, workers, 3) };
        run_nas(problem, space, store, &cfg)
    }

    #[test]
    fn completes_requested_candidates() {
        let trace = run(TransferScheme::Baseline, StrategyKind::Random, 6, 2);
        assert_eq!(trace.events.len(), 6);
        let ids: Vec<_> = trace.events.iter().map(|e| e.id).collect();
        assert_eq!(ids, (0..6).collect::<Vec<_>>(), "events are recorded in id order");
        assert!(trace.wall_secs > 0.0);
        assert!(trace.events.iter().all(|e| e.score.is_finite()));
        assert!(trace.events.iter().all(|e| e.t_end >= e.t_start));
    }

    #[test]
    fn evolution_children_transfer_weights() {
        // 16-member population (quick config), 24 candidates: the last 8
        // must be children with parents and non-trivial transfers.
        let trace = run(TransferScheme::Lcs, StrategyKind::Evolution, 24, 2);
        let children: Vec<_> = trace.events.iter().filter(|e| e.parent.is_some()).collect();
        assert!(!children.is_empty(), "post-warm-up children expected");
        assert!(
            children.iter().any(|e| e.transfer_tensors > 0),
            "LCS children must transfer tensors from their parents"
        );
    }

    #[test]
    fn baseline_never_transfers() {
        let trace = run(TransferScheme::Baseline, StrategyKind::Evolution, 20, 2);
        assert!(trace.events.iter().all(|e| e.transfer_tensors == 0));
        assert!(trace.events.iter().all(|e| e.transfer_secs == 0.0));
    }

    #[test]
    fn checkpoints_written_for_all_candidates() {
        let problem = Arc::new(AppKind::Uno.problem(DataScale::Quick, 11));
        let space = Arc::new(SearchSpace::for_app(AppKind::Uno));
        let store = Arc::new(MemStore::new());
        let store_dyn: Arc<dyn CheckpointStore> = Arc::clone(&store) as _;
        let cfg = NasConfig::quick(TransferScheme::Lp, 8, 2, 5);
        let trace = run_nas(problem, space, store_dyn, &cfg);
        for e in &trace.events {
            assert!(store.exists(&format!("c{}", e.id)));
        }
    }

    #[test]
    fn namespaced_run_prefixes_checkpoint_ids() {
        let problem = Arc::new(AppKind::Uno.problem(DataScale::Quick, 11));
        let space = Arc::new(SearchSpace::for_app(AppKind::Uno));
        let store = Arc::new(MemStore::new());
        let store_dyn: Arc<dyn CheckpointStore> = Arc::clone(&store) as _;
        let cfg = NasConfig {
            namespace: "runA_".into(),
            ..NasConfig::quick(TransferScheme::Lcs, 4, 2, 5)
        };
        let trace = run_nas(problem, space, store_dyn, &cfg);
        for e in &trace.events {
            assert!(store.exists(&format!("runA_c{}", e.id)));
            assert!(!store.exists(&format!("c{}", e.id)));
        }
    }

    #[test]
    fn batch_eval_surface_syntax_roundtrips() {
        assert_eq!(BatchEval::parse("auto"), Some(BatchEval::Auto));
        assert_eq!(BatchEval::parse("off"), Some(BatchEval::Off));
        assert_eq!(BatchEval::parse("4"), Some(BatchEval::Fixed(4)));
        assert_eq!(BatchEval::parse("0"), None);
        assert_eq!(BatchEval::parse("many"), None);
        for b in [BatchEval::Off, BatchEval::Auto, BatchEval::Fixed(7)] {
            assert_eq!(BatchEval::parse(&b.to_string()), Some(b));
        }
    }

    #[test]
    fn single_worker_run_is_deterministic() {
        let a = run(TransferScheme::Lcs, StrategyKind::Evolution, 10, 1);
        let b = run(TransferScheme::Lcs, StrategyKind::Evolution, 10, 1);
        assert_eq!(a.events.len(), b.events.len());
        for (x, y) in a.events.iter().zip(&b.events) {
            assert_eq!(x.id, y.id);
            assert_eq!(x.arch, y.arch);
            assert_eq!(x.score, y.score, "candidate {} diverged", x.id);
        }
    }

    #[test]
    fn fidelity_validation_rejects_bad_knobs() {
        use swt_nn::Convergence as Conv;
        assert!(matches!(
            FidelityConfig::new(1, vec![], 0.0, None),
            Err(FidelityError::EtaTooSmall { eta: 1 })
        ));
        assert!(matches!(
            FidelityConfig::new(2, vec![2, 2], 0.0, None),
            Err(FidelityError::RungsNotIncreasing { .. })
        ));
        assert!(matches!(
            FidelityConfig::new(2, vec![3, 1], 0.0, None),
            Err(FidelityError::RungsNotIncreasing { .. })
        ));
        assert!(matches!(
            FidelityConfig::new(2, vec![0, 1], 0.0, None),
            Err(FidelityError::RungsNotIncreasing { .. })
        ));
        assert!(matches!(
            FidelityConfig::new(2, (1..=MAX_RUNGS + 1).collect(), 0.0, None),
            Err(FidelityError::RungsNotIncreasing { .. })
        ));
        assert!(matches!(
            FidelityConfig::new(2, vec![], 1.0, None),
            Err(FidelityError::QuantileOutOfRange { .. })
        ));
        assert!(matches!(
            FidelityConfig::new(2, vec![], -0.1, None),
            Err(FidelityError::QuantileOutOfRange { .. })
        ));
        assert!(matches!(
            FidelityConfig::new(2, vec![], 0.0, Some(Conv { window: 0, min_delta: 0.1 })),
            Err(FidelityError::BadConvergence { .. })
        ));
        assert!(matches!(
            FidelityConfig::new(2, vec![], 0.0, Some(Conv { window: 2, min_delta: -1.0 })),
            Err(FidelityError::BadConvergence { .. })
        ));
        let ok = FidelityConfig::new(4, vec![1, 2, 4], 0.25, None).unwrap();
        assert!(ok.enabled());
        assert!(!FidelityConfig::off().enabled());
        assert_eq!(FidelityConfig::default(), FidelityConfig::off());
        // Errors render human-readable messages (CLI surface).
        let msg = FidelityConfig::new(1, vec![], 0.0, None).unwrap_err().to_string();
        assert!(msg.contains("eta"), "{msg}");
    }

    #[test]
    fn runner_rejects_invalid_fidelity_as_io_error() {
        let problem = Arc::new(AppKind::Uno.problem(DataScale::Quick, 11));
        let space = Arc::new(SearchSpace::for_app(AppKind::Uno));
        let store: Arc<dyn CheckpointStore> = Arc::new(MemStore::new());
        let mut cfg = NasConfig::quick(TransferScheme::Baseline, 2, 1, 3);
        cfg.fidelity.eta = 0; // hand-assembled, never validated
        let mut backend = ThreadPoolBackend::new(problem, Arc::clone(&space), store, &cfg);
        let err = run_nas_with_backend("Uno", space, &cfg, &mut backend).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidInput);
    }

    fn run_fidelity(scheme: TransferScheme, workers: usize, total: usize) -> NasTrace {
        let problem = Arc::new(AppKind::Uno.problem(DataScale::Quick, 11));
        let space = Arc::new(SearchSpace::for_app(AppKind::Uno));
        let store: Arc<dyn CheckpointStore> = Arc::new(MemStore::new());
        let cfg = NasConfig {
            strategy: StrategyKind::Random,
            fidelity: FidelityConfig::new(4, vec![1, 2], 0.0, None).unwrap(),
            ..NasConfig::quick(scheme, total, workers, 3)
        };
        run_nas(problem, space, store, &cfg)
    }

    #[test]
    fn successive_halving_promotes_the_top_of_each_rung() {
        let trace = run_fidelity(TransferScheme::Lcs, 2, 8);
        // 8 rung-0 candidates + max(1, 8/4) = 2 promotions.
        assert_eq!(trace.events.len(), 10);
        let rung0 = &trace.events[..8];
        let promos = &trace.events[8..];
        // The promoted ids are the two best rung-0 scores.
        let mut by_score: Vec<&TraceEvent> = rung0.iter().collect();
        by_score.sort_by(|a, b| b.score.total_cmp(&a.score).then(a.id.cmp(&b.id)));
        let top2: Vec<u64> = by_score[..2].iter().map(|e| e.id).collect();
        for p in promos {
            assert_eq!(p.rung, 1);
            let parent = p.parent.expect("promotions resume their own checkpoint");
            assert!(top2.contains(&parent), "promoted parent {parent} not in top-2 {top2:?}");
            let src = rung0.iter().find(|e| e.id == parent).unwrap();
            assert_eq!(p.arch, src.arch, "a promotion re-trains the same architecture");
            assert!(
                p.transfer_tensors > 0,
                "an identical-arch LCS resume must transfer every tensor"
            );
            assert_eq!(p.stop, StopReason::BudgetExhausted);
        }
        // Everyone not promoted is marked pruned; promoted keep their reason.
        for e in rung0 {
            if top2.contains(&e.id) {
                assert_eq!(e.stop, StopReason::BudgetExhausted);
            } else {
                assert_eq!(e.stop, StopReason::Pruned);
            }
        }
        // Ids are sequential across waves and events stay in id order.
        let ids: Vec<u64> = trace.events.iter().map(|e| e.id).collect();
        assert_eq!(ids, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn successive_halving_is_deterministic_across_worker_counts() {
        let a = run_fidelity(TransferScheme::Lcs, 1, 8);
        let b = run_fidelity(TransferScheme::Lcs, 3, 8);
        // The canonical header records the worker count; everything below it
        // (ranking, promotion, scores) must be timing-free.
        let body = |t: &NasTrace| t.canonical_csv().lines().skip(1).collect::<Vec<_>>().join("\n");
        assert_eq!(body(&a), body(&b), "rung state is backend-timing-free");
    }

    #[test]
    fn baseline_promotions_retrain_the_full_cumulative_budget() {
        let trace = run_fidelity(TransferScheme::Baseline, 2, 8);
        let promos: Vec<&TraceEvent> = trace.events.iter().filter(|e| e.rung > 0).collect();
        assert!(!promos.is_empty());
        for p in promos {
            assert_eq!(p.transfer_tensors, 0, "baseline cannot resume");
        }
    }

    #[test]
    fn fidelity_off_produces_default_trace_rows() {
        let trace = run(TransferScheme::Lcs, StrategyKind::Evolution, 8, 2);
        assert!(trace.events.iter().all(|e| e.rung == 0));
        assert!(trace.events.iter().all(|e| e.stop == StopReason::BudgetExhausted));
        assert!(!trace.canonical_csv().contains("rung"), "legacy canonical layout preserved");
    }

    #[test]
    fn multi_worker_run_is_deterministic() {
        // The reorder window makes concurrent runs reproducible too: the
        // strategy sees one canonical next/report interleaving no matter
        // which worker finishes first.
        let a = run(TransferScheme::Lcs, StrategyKind::Evolution, 20, 3);
        let b = run(TransferScheme::Lcs, StrategyKind::Evolution, 20, 3);
        for (x, y) in a.events.iter().zip(&b.events) {
            assert_eq!((x.id, &x.arch, x.parent), (y.id, &y.arch, y.parent));
            assert_eq!(x.score, y.score, "candidate {} diverged", x.id);
            assert_eq!(x.transfer_tensors, y.transfer_tensors);
        }
    }
}
