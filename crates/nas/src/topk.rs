//! Phase two of NAS: full training of the top-K candidates (Section VIII-B).
//!
//! Every scheme (baseline included) resumes each top candidate from its
//! estimation-phase checkpoint and trains until the paper's early-stopping
//! rule fires (threshold per app, patience 2) or a 20-epoch cap. Models
//! discovered with weight transfer have inherited training through chains of
//! parent transfers, so they converge in fewer epochs — the paper's
//! 1.4–1.5× speedup mechanism.

use crate::evaluator::candidate_seed;
use crate::trace::NasTrace;
use std::sync::Arc;
use swt_checkpoint::CheckpointStore;
use swt_data::AppProblem;
use swt_nn::{AdamConfig, Model, TrainConfig, Trainer};
use swt_space::SearchSpace;

/// Result of fully training one top candidate.
#[derive(Debug, Clone, PartialEq)]
pub struct FullTrainOutcome {
    pub id: u64,
    /// Score from the estimation phase.
    pub estimate: f64,
    /// Epochs until early stopping fired (the bar heights of Fig. 8).
    pub epochs_early_stop: usize,
    /// Objective metric at early stop (blue lines of Fig. 8, Table III).
    pub metric_early_stop: f64,
    /// Objective metric after the full 20 epochs (orange lines of Fig. 8).
    pub metric_full: f64,
    /// Trainable parameter count (Table IV).
    pub params: usize,
}

/// Aggregated top-K report for one NAS run.
#[derive(Debug, Clone, PartialEq)]
pub struct TopKReport {
    pub outcomes: Vec<FullTrainOutcome>,
}

impl TopKReport {
    /// Mean epochs to convergence under early stopping.
    pub fn mean_epochs(&self) -> f64 {
        if self.outcomes.is_empty() {
            return 0.0;
        }
        self.outcomes.iter().map(|o| o.epochs_early_stop as f64).sum::<f64>()
            / self.outcomes.len() as f64
    }

    /// Early-stopped metrics of all outcomes.
    pub fn metrics_early(&self) -> Vec<f64> {
        self.outcomes.iter().map(|o| o.metric_early_stop).collect()
    }

    /// Fully-trained metrics of all outcomes.
    pub fn metrics_full(&self) -> Vec<f64> {
        self.outcomes.iter().map(|o| o.metric_full).collect()
    }

    /// Parameter counts of all outcomes.
    pub fn params(&self) -> Vec<f64> {
        self.outcomes.iter().map(|o| o.params as f64).collect()
    }
}

/// Rebuild a candidate exactly as the estimation phase left it: same spec,
/// same init seed, then the checkpoint restored on top.
fn restore_candidate(
    space: &SearchSpace,
    store: &dyn CheckpointStore,
    run_seed: u64,
    id: u64,
    arch: &swt_space::ArchSeq,
) -> Model {
    let spec = space.materialize(arch).expect("trace contains only valid candidates");
    let mut model = Model::build(&spec, candidate_seed(run_seed, id)).unwrap();
    if let Ok(ckpt) = store.load(&format!("c{id}")) {
        let (_, skipped) = model.load_state_dict(&ckpt);
        debug_assert_eq!(skipped, 0, "own checkpoint must restore cleanly");
    }
    model
}

/// Fully train the top-`k` candidates of a trace, with and without early
/// stopping, resuming from their estimation checkpoints.
///
/// `max_epochs` is the paper's 20-epoch cap; `cutoff_secs` restricts the
/// eligible candidates to those discovered before a time budget (the paper
/// compares schemes at the duration of the *shortest* experiment,
/// Section VIII-C) — pass `f64::INFINITY` for no cutoff.
pub fn full_train_top_k(
    problem: &AppProblem,
    space: Arc<SearchSpace>,
    store: Arc<dyn CheckpointStore>,
    trace: &NasTrace,
    k: usize,
    max_epochs: usize,
    cutoff_secs: f64,
) -> TopKReport {
    let mut eligible: Vec<_> = trace.events.iter().filter(|e| e.t_end <= cutoff_secs).collect();
    eligible.sort_by(|a, b| {
        b.score.partial_cmp(&a.score).unwrap().then(a.t_end.partial_cmp(&b.t_end).unwrap())
    });
    eligible.truncate(k);

    let trainer = Trainer::new(problem.loss, problem.metric);
    let outcomes = eligible
        .into_iter()
        .map(|event| {
            let base_cfg = TrainConfig {
                epochs: max_epochs,
                batch_size: problem.batch_size,
                adam: AdamConfig { lr: problem.lr, ..Default::default() },
                shuffle_seed: trace.seed ^ event.id ^ 0xF011,
                early_stop: None,
                convergence: None,
            };
            // Early-stopping run.
            let mut model = restore_candidate(&space, &*store, trace.seed, event.id, &event.arch);
            let es_cfg = TrainConfig { early_stop: Some(problem.early_stop), ..base_cfg.clone() };
            let es_report = trainer.fit(&mut model, &problem.train, &problem.val, &es_cfg);
            // Full run without early stopping (fresh restore).
            let mut model = restore_candidate(&space, &*store, trace.seed, event.id, &event.arch);
            let full_report = trainer.fit(&mut model, &problem.train, &problem.val, &base_cfg);
            FullTrainOutcome {
                id: event.id,
                estimate: event.score,
                epochs_early_stop: es_report.epochs_run,
                metric_early_stop: es_report.final_metric,
                metric_full: full_report.final_metric,
                params: model.param_count(),
            }
        })
        .collect();
    TopKReport { outcomes }
}

/// Fig. 9's harness: fully train a random sample of `n` candidates from the
/// estimation phase (resuming from their checkpoints, early stopping
/// enabled) and return `(estimate, ground_truth)` pairs for rank-correlation
/// analysis. Runs candidates in parallel within the process thread budget.
pub fn full_train_sample(
    problem: &AppProblem,
    space: Arc<SearchSpace>,
    store: Arc<dyn CheckpointStore>,
    trace: &NasTrace,
    n: usize,
    max_epochs: usize,
    sample_seed: u64,
) -> Vec<(f64, f64)> {
    let mut rng = swt_tensor::Rng::seed(sample_seed);
    let mut idx: Vec<usize> = (0..trace.events.len()).collect();
    rng.shuffle(&mut idx);
    idx.truncate(n);
    let trainer = Trainer::new(problem.loss, problem.metric);
    swt_tensor::parallel::par_map(&idx, |_, &i| {
        let event = &trace.events[i];
        let mut model = restore_candidate(&space, &*store, trace.seed, event.id, &event.arch);
        let cfg = TrainConfig {
            epochs: max_epochs,
            batch_size: problem.batch_size,
            adam: AdamConfig { lr: problem.lr, ..Default::default() },
            shuffle_seed: trace.seed ^ event.id ^ 0x516,
            early_stop: Some(problem.early_stop),
            convergence: None,
        };
        let report = trainer.fit(&mut model, &problem.train, &problem.val, &cfg);
        (event.score, report.final_metric)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::{run_nas, NasConfig, StrategyKind};
    use swt_checkpoint::MemStore;
    use swt_core::TransferScheme;
    use swt_data::{AppKind, DataScale};

    fn setup() -> (Arc<AppProblem>, Arc<SearchSpace>, Arc<dyn CheckpointStore>, NasTrace) {
        let problem = Arc::new(AppKind::Uno.problem(DataScale::Quick, 21));
        let space = Arc::new(SearchSpace::for_app(AppKind::Uno));
        let store: Arc<dyn CheckpointStore> = Arc::new(MemStore::new());
        let cfg = NasConfig {
            strategy: StrategyKind::Evolution,
            ..NasConfig::quick(TransferScheme::Lcs, 12, 2, 9)
        };
        let trace = run_nas(Arc::clone(&problem), Arc::clone(&space), Arc::clone(&store), &cfg);
        (problem, space, store, trace)
    }

    #[test]
    fn full_training_improves_or_matches_estimates() {
        let (problem, space, store, trace) = setup();
        let report = full_train_top_k(&problem, space, store, &trace, 3, 8, f64::INFINITY);
        assert_eq!(report.outcomes.len(), 3);
        for o in &report.outcomes {
            assert!(o.epochs_early_stop >= 1 && o.epochs_early_stop <= 8);
            assert!(o.params > 0);
            assert!(o.metric_full.is_finite());
            // Top candidates are sorted by estimate.
        }
        let estimates: Vec<f64> = report.outcomes.iter().map(|o| o.estimate).collect();
        assert!(estimates.windows(2).all(|w| w[0] >= w[1]), "sorted by estimate: {estimates:?}");
        assert!(report.mean_epochs() >= 1.0);
    }

    #[test]
    fn cutoff_excludes_late_candidates() {
        let (problem, space, store, trace) = setup();
        let mid = trace.by_completion()[trace.events.len() / 2].t_end;
        let report = full_train_top_k(&problem, space, store, &trace, 100, 2, mid);
        assert!(report.outcomes.len() <= trace.events.len() / 2 + 1);
        assert!(!report.outcomes.is_empty());
    }

    #[test]
    fn k_larger_than_trace_is_clamped() {
        let (problem, space, store, trace) = setup();
        let report = full_train_top_k(&problem, space, store, &trace, 500, 2, f64::INFINITY);
        assert_eq!(report.outcomes.len(), trace.events.len());
    }
}
