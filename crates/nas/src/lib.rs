//! NAS runtime: search strategies, parallel evaluators, traces and the
//! two-phase workflow of the paper.
//!
//! The architecture mirrors DeepHyper's scheduler/evaluator split (Fig. 6):
//! a scheduler thread runs the search strategy and dispatches candidates
//! over channels to a pool of evaluator threads (one thread = one simulated
//! GPU). Evaluators train candidates for a small number of epochs, write
//! checkpoints to a [`swt_checkpoint::CheckpointStore`], and — when a
//! transfer scheme is active — initialise each child from its parent's
//! checkpoint via LP/LCS matching before training.
//!
//! The crate also contains the paper's analysis harnesses:
//! [`pairs`] reproduces the provider/receiver pair studies (Figs. 2, 4, 5)
//! and [`topk`] the full-training phase (Fig. 8, Tables III/IV).

pub mod backend;
pub mod candidate;
pub mod evaluator;
pub mod pairs;
pub mod runner;
pub mod strategy;
pub mod topk;
pub mod trace;

pub use backend::{BackendResult, EvalBackend, ThreadPoolBackend};
pub use candidate::{Candidate, CandidateId, ScoredCandidate};
pub use evaluator::{
    candidate_seed, BatchedEval, EvalFidelity, EvalOutcome, Evaluator, StopReason,
};
pub use pairs::{
    run_distance_experiment, run_pair_experiment, MatchOutcome, PairOutcome, PairSummary,
};
pub use runner::{
    run_nas, run_nas_with_backend, BatchEval, FidelityConfig, FidelityError, NasConfig,
    StrategyKind, MAX_RUNGS,
};
pub use strategy::{ProviderPolicy, RandomSearch, RegularizedEvolution, SearchStrategy};
pub use swt_nn::Convergence;
pub use topk::{full_train_sample, full_train_top_k, FullTrainOutcome, TopKReport};
pub use trace::{NasTrace, TraceEvent};
