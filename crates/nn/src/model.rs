//! Trainable model: a [`ModelSpec`] materialised into layer instances.

use crate::layers::{
    ActivationLayer, BatchNormLayer, ConcatLayer, Conv1DLayer, Conv2DLayer, DenseLayer,
    DropoutLayer, FlattenLayer, IdentityLayer, Layer, MaxPool1DLayer, MaxPool2DLayer,
};
use crate::spec::{LayerSpec, ModelSpec, NodeSpec, SpecError};
use swt_tensor::{Rng, Shape, Tensor, Workspace};

/// A built model: DAG of layer instances plus the spec it came from.
///
/// Construction is deterministic: all weight initialisation and dropout
/// randomness derives from the `seed` passed to [`Model::build`], with one
/// forked stream per node, so two builds from the same `(spec, seed)` are
/// identical — the property the baseline-vs-transfer experiments rely on.
///
/// The model owns a [`Workspace`] scratch arena that every forward/backward
/// pass draws from: node outputs, layer caches and GEMM pack buffers are
/// recycled batch over batch, so steady-state training allocates no tensor
/// storage. The NAS evaluator moves one arena from candidate to candidate
/// via [`Model::take_workspace`]/[`Model::set_workspace`].
pub struct Model {
    spec: ModelSpec,
    layers: Vec<Option<Box<dyn Layer>>>,
    input_nodes: Vec<usize>,
    /// Per-node forward outputs, kept for the backward pass.
    outputs: Vec<Option<Tensor>>,
    ws: Workspace,
}

impl Model {
    /// Build the model described by `spec`, initialising parameters from
    /// `seed`.
    pub fn build(spec: &ModelSpec, seed: u64) -> Result<Model, SpecError> {
        let shapes = spec.infer_shapes()?;
        let mut root = Rng::seed(seed);
        let mut layers: Vec<Option<Box<dyn Layer>>> = Vec::with_capacity(spec.nodes().len());
        for (i, node) in spec.nodes().iter().enumerate() {
            let layer: Option<Box<dyn Layer>> = match node {
                NodeSpec::Input { .. } => None,
                NodeSpec::Layer { op, inputs } => {
                    let mut rng = root.fork(i as u64);
                    let in_shape = &shapes[inputs[0]];
                    Some(build_layer(op, in_shape, &mut rng))
                }
            };
            layers.push(layer);
        }
        Ok(Model {
            spec: spec.clone(),
            input_nodes: spec.input_nodes(),
            outputs: vec![None; spec.nodes().len()],
            layers,
            ws: Workspace::new(),
        })
    }

    /// The spec this model was built from.
    pub fn spec(&self) -> &ModelSpec {
        &self.spec
    }

    /// Move the scratch arena out of the model (leaving an empty one). The
    /// evaluator uses this to carry one warmed-up pool across candidates.
    pub fn take_workspace(&mut self) -> Workspace {
        std::mem::take(&mut self.ws)
    }

    /// Install a scratch arena (typically one taken from a previous model).
    pub fn set_workspace(&mut self, ws: Workspace) {
        self.ws = ws;
    }

    /// Borrow the model's scratch arena (e.g. for building batches out of
    /// pooled buffers).
    pub fn workspace_mut(&mut self) -> &mut Workspace {
        &mut self.ws
    }

    /// Return a tensor's storage to the model's scratch arena.
    pub fn recycle(&mut self, t: Tensor) {
        self.ws.recycle(t);
    }

    /// Forward pass. `inputs` must match [`ModelSpec::input_nodes`] in count
    /// and order, each with a leading batch dimension.
    pub fn forward(&mut self, inputs: &[&Tensor], training: bool) -> Tensor {
        assert_eq!(inputs.len(), self.input_nodes.len(), "wrong number of model inputs");
        let batch = inputs[0].shape().dim(0);
        for t in inputs {
            assert_eq!(t.shape().dim(0), batch, "inconsistent batch sizes");
        }
        // Recycle last batch's node outputs before producing this batch's.
        for slot in self.outputs.iter_mut() {
            if let Some(old) = slot.take() {
                self.ws.recycle(old);
            }
        }
        let mut next_input = 0;
        for i in 0..self.spec.nodes().len() {
            let out = match &self.spec.nodes()[i] {
                NodeSpec::Input { shape } => {
                    let t = inputs[next_input];
                    assert_eq!(
                        &t.shape().dims()[1..],
                        shape.as_slice(),
                        "input {next_input} per-sample shape mismatch"
                    );
                    next_input += 1;
                    let mut copy = self.ws.take_tensor(t.shape().dims().to_vec());
                    copy.data_mut().copy_from_slice(t.data());
                    copy
                }
                NodeSpec::Layer { inputs: in_ids, .. } => {
                    let gathered: Vec<&Tensor> = in_ids
                        .iter()
                        .map(|&j| self.outputs[j].as_ref().expect("topo order"))
                        .collect();
                    self.layers[i].as_mut().unwrap().forward(&gathered, training, &mut self.ws)
                }
            };
            self.outputs[i] = Some(out);
        }
        let out = self.outputs[self.spec.output()].as_ref().unwrap();
        let mut ret = self.ws.take_tensor(out.shape().dims().to_vec());
        ret.data_mut().copy_from_slice(out.data());
        ret
    }

    /// Backward pass from the loss gradient of the output. Parameter
    /// gradients accumulate inside the layers; call [`Model::zero_grads`]
    /// between steps.
    pub fn backward(&mut self, dout: &Tensor) {
        let n = self.spec.nodes().len();
        let mut grads: Vec<Option<Tensor>> = vec![None; n];
        let mut dcopy = self.ws.take_tensor(dout.shape().dims().to_vec());
        dcopy.data_mut().copy_from_slice(dout.data());
        grads[self.spec.output()] = Some(dcopy);
        for i in (0..n).rev() {
            let Some(grad) = grads[i].take() else { continue };
            let NodeSpec::Layer { inputs: in_ids, .. } = &self.spec.nodes()[i] else {
                self.ws.recycle(grad);
                continue; // input node: gradient terminates
            };
            let input_grads = self.layers[i].as_mut().unwrap().backward(&grad, &mut self.ws);
            self.ws.recycle(grad);
            debug_assert_eq!(input_grads.len(), in_ids.len());
            for (j, g) in in_ids.iter().zip(input_grads) {
                match &mut grads[*j] {
                    Some(acc) => {
                        acc.axpy(1.0, &g);
                        self.ws.recycle(g);
                    }
                    slot => *slot = Some(g),
                }
            }
        }
    }

    /// Zero all accumulated parameter gradients.
    pub fn zero_grads(&mut self) {
        for layer in self.layers.iter_mut().flatten() {
            layer.zero_grads();
        }
    }

    /// Visit `(full_name, param, grad)` for the optimizer. Names are
    /// `n{idx}_{kind}/{local}` and enumeration order is deterministic.
    pub fn visit_updates(&mut self, f: &mut dyn FnMut(&str, &mut Tensor, &Tensor)) {
        for (i, layer) in self.layers.iter_mut().enumerate() {
            let Some(layer) = layer else { continue };
            let prefix = self.spec.node_name(i);
            layer.visit_updates(&mut |local, p, g| f(&format!("{prefix}/{local}"), p, g));
        }
    }

    /// Name-free variant of [`Model::visit_updates`] for the per-step
    /// optimizer hot path: same deterministic enumeration order, but without
    /// formatting a `String` per parameter per step.
    pub fn visit_updates_fast(&mut self, f: &mut dyn FnMut(&mut Tensor, &Tensor)) {
        for layer in self.layers.iter_mut().flatten() {
            layer.visit_updates(&mut |_local, p, g| f(p, g));
        }
    }

    /// Trainable parameters as `(full_name, value)` in topological order —
    /// guaranteed to align with [`ModelSpec::param_shapes`].
    pub fn named_params(&self) -> Vec<(String, Tensor)> {
        let mut out = Vec::new();
        for (i, layer) in self.layers.iter().enumerate() {
            let Some(layer) = layer else { continue };
            let prefix = self.spec.node_name(i);
            layer.visit_params(&mut |local, t| out.push((format!("{prefix}/{local}"), t.clone())));
        }
        out
    }

    /// Overwrite one trainable parameter by full name. The shape must match.
    /// Returns false if the name is unknown or the shape differs.
    pub fn set_param(&mut self, full_name: &str, value: &Tensor) -> bool {
        let Some((node_name, local)) = full_name.split_once('/') else { return false };
        for (i, layer) in self.layers.iter_mut().enumerate() {
            let Some(layer) = layer else { continue };
            if self.spec.node_name(i) != node_name {
                continue;
            }
            let mut done = false;
            layer.visit_params_mut(&mut |name, p| {
                if name == local && p.shape() == value.shape() {
                    *p = value.clone();
                    done = true;
                }
            });
            return done;
        }
        false
    }

    /// Full persistent state: trainable parameters followed by non-trainable
    /// layer state (batch-norm running statistics). This is what checkpoints
    /// store.
    pub fn state_dict(&self) -> Vec<(String, Tensor)> {
        let mut out = self.named_params();
        for (i, layer) in self.layers.iter().enumerate() {
            let Some(layer) = layer else { continue };
            let prefix = self.spec.node_name(i);
            layer.visit_state(&mut |local, t| out.push((format!("{prefix}/{local}"), t.clone())));
        }
        out
    }

    /// Restore parameters and state from a checkpoint's entries. Entries with
    /// unknown names or mismatched shapes are counted as skipped; the return
    /// value is `(loaded, skipped)`.
    pub fn load_state_dict(&mut self, entries: &[(String, Tensor)]) -> (usize, usize) {
        let mut loaded = 0;
        let mut skipped = 0;
        for (name, value) in entries {
            if self.set_param(name, value) {
                loaded += 1;
                continue;
            }
            // Try non-trainable state.
            let mut ok = false;
            if let Some((node_name, local)) = name.split_once('/') {
                for (i, layer) in self.layers.iter_mut().enumerate() {
                    let Some(layer) = layer else { continue };
                    if self.spec.node_name(i) == node_name {
                        ok = layer.load_state(local, value);
                        break;
                    }
                }
            }
            if ok {
                loaded += 1;
            } else {
                skipped += 1;
            }
        }
        (loaded, skipped)
    }

    /// Total trainable parameter count.
    pub fn param_count(&self) -> usize {
        self.named_params().iter().map(|(_, t)| t.numel()).sum()
    }
}

fn build_layer(op: &LayerSpec, input_shape: &Shape, rng: &mut Rng) -> Box<dyn Layer> {
    match op {
        LayerSpec::Identity => Box::new(IdentityLayer),
        LayerSpec::Dense { units, activation } => {
            Box::new(DenseLayer::new(input_shape.dim(0), *units, *activation, rng))
        }
        LayerSpec::Activation(a) => Box::new(ActivationLayer::new(*a)),
        LayerSpec::Conv2D { filters, kernel, padding, l2 } => {
            Box::new(Conv2DLayer::new(input_shape.dim(2), *filters, *kernel, *padding, *l2, rng))
        }
        LayerSpec::Conv1D { filters, kernel, padding, l2 } => {
            Box::new(Conv1DLayer::new(input_shape.dim(1), *filters, *kernel, *padding, *l2, rng))
        }
        LayerSpec::MaxPool2D { size, stride } => Box::new(MaxPool2DLayer::new(*size, *stride)),
        LayerSpec::MaxPool1D { size, stride } => Box::new(MaxPool1DLayer::new(*size, *stride)),
        LayerSpec::BatchNorm => {
            Box::new(BatchNormLayer::new(input_shape.dim(input_shape.rank() - 1)))
        }
        LayerSpec::Dropout { rate } => Box::new(DropoutLayer::new(*rate, rng.fork(0xD80))),
        LayerSpec::Flatten => Box::new(FlattenLayer::new()),
        LayerSpec::Concat => Box::new(ConcatLayer::new()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::Activation;
    use swt_tensor::Padding;

    fn small_cnn() -> ModelSpec {
        ModelSpec::chain(
            vec![6, 6, 1],
            vec![
                LayerSpec::Conv2D { filters: 3, kernel: 3, padding: Padding::Same, l2: 0.0 },
                LayerSpec::Activation(Activation::Relu),
                LayerSpec::MaxPool2D { size: 2, stride: 2 },
                LayerSpec::Flatten,
                LayerSpec::Dense { units: 4, activation: None },
            ],
        )
        .unwrap()
    }

    #[test]
    fn build_is_seed_deterministic() {
        let spec = small_cnn();
        let a = Model::build(&spec, 99).unwrap();
        let b = Model::build(&spec, 99).unwrap();
        for ((na, ta), (nb, tb)) in a.named_params().iter().zip(b.named_params().iter()) {
            assert_eq!(na, nb);
            assert!(ta.approx_eq(tb, 0.0), "param {na} differs across same-seed builds");
        }
        let c = Model::build(&spec, 100).unwrap();
        let any_diff = a
            .named_params()
            .iter()
            .zip(c.named_params().iter())
            .any(|((_, ta), (_, tc))| !ta.approx_eq(tc, 0.0));
        assert!(any_diff, "different seeds must differ");
    }

    #[test]
    fn named_params_align_with_spec_param_shapes() {
        let spec = small_cnn();
        let model = Model::build(&spec, 1).unwrap();
        let built: Vec<(String, Shape)> =
            model.named_params().into_iter().map(|(n, t)| (n, t.shape().clone())).collect();
        let declared = spec.param_shapes().unwrap();
        assert_eq!(built, declared);
        assert_eq!(model.param_count(), spec.param_count().unwrap());
    }

    #[test]
    fn forward_shape_and_determinism() {
        let spec = small_cnn();
        let mut model = Model::build(&spec, 5).unwrap();
        let mut rng = Rng::seed(7);
        let x = Tensor::rand_normal([2, 6, 6, 1], 0.0, 1.0, &mut rng);
        let y1 = model.forward(&[&x], false);
        assert_eq!(y1.shape().dims(), &[2, 4]);
        let y2 = model.forward(&[&x], false);
        assert!(y1.approx_eq(&y2, 0.0), "inference must be deterministic");
    }

    #[test]
    fn end_to_end_gradient_check() {
        // A smooth variant (tanh, no max-pool) so the central-difference
        // probe is valid everywhere.
        let spec = ModelSpec::chain(
            vec![6, 6, 1],
            vec![
                LayerSpec::Conv2D { filters: 3, kernel: 3, padding: Padding::Same, l2: 0.0 },
                LayerSpec::Activation(Activation::Tanh),
                LayerSpec::Flatten,
                LayerSpec::Dense { units: 4, activation: Some(Activation::Tanh) },
            ],
        )
        .unwrap();
        let mut model = Model::build(&spec, 3).unwrap();
        let mut rng = Rng::seed(11);
        let x = Tensor::rand_normal([2, 6, 6, 1], 0.0, 1.0, &mut rng);
        let w = Tensor::rand_normal([2, 4], 0.0, 1.0, &mut rng);
        // Loss = <w, model(x)>.
        let y = model.forward(&[&x], true);
        model.zero_grads();
        model.backward(&w);
        let mut grads: Vec<(String, Tensor)> = Vec::new();
        model.visit_updates(&mut |n, _p, g| grads.push((n.to_string(), g.clone())));
        let _ = y;
        let eps = 1e-2f32;
        for (name, grad) in &grads {
            for probe in 0..grad.numel().min(5) {
                let i = probe * grad.numel().div_ceil(5).max(1) % grad.numel();
                let peek = |model: &mut Model, delta: f32| -> f32 {
                    model.visit_updates(&mut |n, p, _g| {
                        if n == name {
                            p.data_mut()[i] += delta;
                        }
                    });
                    let v = model.forward(&[&x], true).zip_map(&w, |a, b| a * b).sum();
                    model.visit_updates(&mut |n, p, _g| {
                        if n == name {
                            p.data_mut()[i] -= delta;
                        }
                    });
                    v
                };
                let num = (peek(&mut model, eps) - peek(&mut model, -eps)) / (2.0 * eps);
                assert!(
                    (num - grad.data()[i]).abs() < 3e-2,
                    "{name}[{i}]: analytic {} numeric {num}",
                    grad.data()[i]
                );
            }
        }
    }

    #[test]
    fn set_param_validates_name_and_shape() {
        let spec = small_cnn();
        let mut model = Model::build(&spec, 1).unwrap();
        let good = Tensor::ones([3, 3, 1, 3]);
        assert!(model.set_param("n1_conv2d/kernel", &good));
        assert!(model.named_params()[0].1.approx_eq(&good, 0.0));
        assert!(!model.set_param("n1_conv2d/kernel", &Tensor::ones([2, 2, 1, 3])));
        assert!(!model.set_param("nope/kernel", &good));
        assert!(!model.set_param("malformed", &good));
    }

    #[test]
    fn state_dict_round_trip() {
        let spec = ModelSpec::chain(
            vec![4, 4, 2],
            vec![
                LayerSpec::BatchNorm,
                LayerSpec::Flatten,
                LayerSpec::Dense { units: 2, activation: None },
            ],
        )
        .unwrap();
        let mut a = Model::build(&spec, 1).unwrap();
        // Train-mode forward to move the running stats.
        let mut rng = Rng::seed(2);
        let x = Tensor::rand_normal([8, 4, 4, 2], 3.0, 2.0, &mut rng);
        let _ = a.forward(&[&x], true);
        let state = a.state_dict();
        assert!(state.iter().any(|(n, _)| n.ends_with("running_mean")));

        let mut b = Model::build(&spec, 999).unwrap();
        let (loaded, skipped) = b.load_state_dict(&state);
        assert_eq!(skipped, 0);
        assert_eq!(loaded, state.len());
        for ((_, ta), (_, tb)) in a.state_dict().iter().zip(b.state_dict().iter()) {
            assert!(ta.approx_eq(tb, 0.0));
        }
        // Identical state => identical inference.
        let ya = a.forward(&[&x], false);
        let yb = b.forward(&[&x], false);
        assert!(ya.approx_eq(&yb, 1e-6));
    }

    #[test]
    fn multi_input_concat_model() {
        let nodes = vec![
            NodeSpec::Input { shape: vec![3] },
            NodeSpec::Input { shape: vec![2] },
            NodeSpec::Layer {
                op: LayerSpec::Dense { units: 4, activation: Some(Activation::Relu) },
                inputs: vec![0],
            },
            NodeSpec::Layer { op: LayerSpec::Concat, inputs: vec![2, 1] },
            NodeSpec::Layer {
                op: LayerSpec::Dense { units: 1, activation: None },
                inputs: vec![3],
            },
        ];
        let spec = ModelSpec::new(nodes, 4).unwrap();
        let mut model = Model::build(&spec, 4).unwrap();
        let a = Tensor::ones([5, 3]);
        let b = Tensor::ones([5, 2]);
        let y = model.forward(&[&a, &b], true);
        assert_eq!(y.shape().dims(), &[5, 1]);
        model.zero_grads();
        model.backward(&Tensor::ones([5, 1]));
        // Both dense layers must have received gradients.
        let mut nonzero = 0;
        model.visit_updates(&mut |_n, _p, g| {
            if g.max_abs() > 0.0 {
                nonzero += 1;
            }
        });
        assert!(nonzero >= 2, "expected gradients in both dense layers");
    }

    #[test]
    fn diamond_dag_accumulates_gradients() {
        // input -> id -> (two consumers) -> concat: gradient into the shared
        // node must be the sum of both branch gradients.
        let nodes = vec![
            NodeSpec::Input { shape: vec![2] },
            NodeSpec::Layer { op: LayerSpec::Identity, inputs: vec![0] },
            NodeSpec::Layer { op: LayerSpec::Identity, inputs: vec![1] },
            NodeSpec::Layer { op: LayerSpec::Identity, inputs: vec![1] },
            NodeSpec::Layer { op: LayerSpec::Concat, inputs: vec![2, 3] },
        ];
        let spec = ModelSpec::new(nodes, 4).unwrap();
        let mut model = Model::build(&spec, 0).unwrap();
        let x = Tensor::from_vec([1, 2], vec![1.0, 2.0]);
        let y = model.forward(&[&x], true);
        assert_eq!(y.data(), &[1.0, 2.0, 1.0, 2.0]);
        // No trainable params, but backward must not panic and must fan-in.
        model.backward(&Tensor::ones([1, 4]));
    }
}
