//! Neural-network stack for the selective-weight-transfer reproduction.
//!
//! This crate is the Keras/TensorFlow substitute: declarative model
//! specifications ([`ModelSpec`]) describing a DAG of layers, a builder that
//! materialises them into trainable [`Model`]s, losses/metrics, the Adam
//! optimizer the paper configures (lr 1e-3, β₁ 0.9, β₂ 0.999, ε 1e-7), and a
//! [`Trainer`] with the paper's early-stopping rule (stop when the objective
//! metric moves less than a threshold for two consecutive epochs).
//!
//! Two properties matter for the reproduction:
//!
//! * **Parameter naming and ordering are deterministic** — the shape
//!   sequences that drive LP/LCS weight transfer (`swt-core`) are derived
//!   from [`ModelSpec::param_shapes`] *without building the model*, and are
//!   guaranteed to align 1:1 with [`Model::named_params`].
//! * **Everything is seeded** — weight init and dropout masks derive from a
//!   single build seed, so candidate evaluation is reproducible.

pub mod dataset;
pub mod layers;
pub mod loss;
pub mod model;
pub mod optimizer;
pub mod spec;
pub mod trainer;

pub use dataset::Dataset;
pub use loss::{Loss, Metric};
pub use model::Model;
pub use optimizer::{Adam, AdamConfig, Sgd};
pub use spec::{Activation, LayerSpec, ModelSpec, NodeSpec, SpecError};
pub use trainer::{
    Convergence, ConvergenceTracker, EarlyStop, EpochRecord, TrainConfig, TrainReport, TrainStop,
    Trainer,
};
