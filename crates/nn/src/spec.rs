//! Declarative model specifications.
//!
//! A [`ModelSpec`] is the object NAS manipulates: the search space
//! materialises an architecture sequence into a spec, the weight-transfer
//! matchers compare the *parameter shape sequences* of two specs
//! ([`ModelSpec::param_shapes`]), and the evaluator builds a trainable
//! [`crate::Model`] from the spec. Shapes here are **per-sample** (no batch
//! dimension), matching how the paper writes them (Fig. 3).

use std::fmt;
use swt_tensor::{Padding, Shape};

/// Activation functions offered by the search spaces (Section VII-A).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Activation {
    Relu,
    Tanh,
    Sigmoid,
}

impl fmt::Display for Activation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Activation::Relu => write!(f, "relu"),
            Activation::Tanh => write!(f, "tanh"),
            Activation::Sigmoid => write!(f, "sig"),
        }
    }
}

/// One layer choice. The variants cover every operation appearing in the
/// paper's four search spaces.
#[derive(Debug, Clone, PartialEq)]
pub enum LayerSpec {
    /// Skip connection (`Identity` in the paper's notation).
    Identity,
    /// Fully connected layer, optionally with a fused activation —
    /// `Dense(50, relu)` in the paper's notation. Input must be rank 1
    /// per-sample (insert [`LayerSpec::Flatten`] first when needed).
    Dense { units: usize, activation: Option<Activation> },
    /// Standalone activation.
    Activation(Activation),
    /// 2-D convolution, stride 1. `l2` is the optional kernel regularizer
    /// weight (the CIFAR space uses 5e-4); 0.0 disables it.
    Conv2D { filters: usize, kernel: usize, padding: Padding, l2: f32 },
    /// 1-D convolution, stride 1 (NT3's gene-sequence data).
    Conv1D { filters: usize, kernel: usize, padding: Padding, l2: f32 },
    /// 2-D max pooling.
    MaxPool2D { size: usize, stride: usize },
    /// 1-D max pooling.
    MaxPool1D { size: usize, stride: usize },
    /// Batch normalisation (per-channel over the batch and spatial dims).
    BatchNorm,
    /// Inverted dropout with the given drop rate.
    Dropout { rate: f32 },
    /// Flatten the per-sample dims to rank 1.
    Flatten,
    /// Concatenate rank-1 inputs (Uno's multi-source head).
    Concat,
}

impl LayerSpec {
    /// Short kind tag used in deterministic parameter names.
    pub fn kind(&self) -> &'static str {
        match self {
            LayerSpec::Identity => "id",
            LayerSpec::Dense { .. } => "dense",
            LayerSpec::Activation(_) => "act",
            LayerSpec::Conv2D { .. } => "conv2d",
            LayerSpec::Conv1D { .. } => "conv1d",
            LayerSpec::MaxPool2D { .. } => "pool2d",
            LayerSpec::MaxPool1D { .. } => "pool1d",
            LayerSpec::BatchNorm => "bn",
            LayerSpec::Dropout { .. } => "drop",
            LayerSpec::Flatten => "flatten",
            LayerSpec::Concat => "concat",
        }
    }
}

impl fmt::Display for LayerSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LayerSpec::Identity => write!(f, "Identity"),
            LayerSpec::Dense { units, activation: Some(a) } => write!(f, "Dense({units}, {a})"),
            LayerSpec::Dense { units, activation: None } => write!(f, "Dense({units})"),
            LayerSpec::Activation(a) => write!(f, "Activation({a})"),
            LayerSpec::Conv2D { filters, kernel, padding, l2 } => {
                write!(f, "Conv2D({filters}, {kernel}x{kernel}, {padding:?}, l2={l2})")
            }
            LayerSpec::Conv1D { filters, kernel, padding, l2 } => {
                write!(f, "Conv1D({filters}, {kernel}, {padding:?}, l2={l2})")
            }
            LayerSpec::MaxPool2D { size, stride } => write!(f, "MaxPool2D({size}, s{stride})"),
            LayerSpec::MaxPool1D { size, stride } => write!(f, "MaxPool1D({size}, s{stride})"),
            LayerSpec::BatchNorm => write!(f, "BatchNorm"),
            LayerSpec::Dropout { rate } => write!(f, "Dropout({rate})"),
            LayerSpec::Flatten => write!(f, "Flatten"),
            LayerSpec::Concat => write!(f, "Concat"),
        }
    }
}

/// A node of the model DAG.
#[derive(Debug, Clone, PartialEq)]
pub enum NodeSpec {
    /// A model input with its per-sample shape.
    Input { shape: Vec<usize> },
    /// A layer applied to the outputs of earlier nodes.
    Layer { op: LayerSpec, inputs: Vec<usize> },
}

/// Errors raised by spec validation / shape inference.
#[derive(Debug, Clone, PartialEq)]
pub enum SpecError {
    /// A node references a node at or after its own index.
    ForwardReference { node: usize, input: usize },
    /// A layer got the wrong number of inputs.
    Arity { node: usize, expected: &'static str, got: usize },
    /// A shape constraint failed (e.g. pooling window larger than input).
    Shape { node: usize, message: String },
    /// The output index is out of range.
    BadOutput,
    /// The spec has no nodes.
    Empty,
}

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpecError::ForwardReference { node, input } => {
                write!(f, "node {node} references non-earlier node {input}")
            }
            SpecError::Arity { node, expected, got } => {
                write!(f, "node {node} expected {expected} inputs, got {got}")
            }
            SpecError::Shape { node, message } => write!(f, "node {node}: {message}"),
            SpecError::BadOutput => write!(f, "output index out of range"),
            SpecError::Empty => write!(f, "empty model spec"),
        }
    }
}

impl std::error::Error for SpecError {}

/// A full model description: a DAG of [`NodeSpec`]s whose final node
/// (`output`) produces the prediction.
#[derive(Debug, Clone, PartialEq)]
pub struct ModelSpec {
    nodes: Vec<NodeSpec>,
    output: usize,
}

impl ModelSpec {
    /// Validate and wrap a node list. Nodes may only reference earlier
    /// nodes, so index order is a topological order.
    pub fn new(nodes: Vec<NodeSpec>, output: usize) -> Result<Self, SpecError> {
        if nodes.is_empty() {
            return Err(SpecError::Empty);
        }
        if output >= nodes.len() {
            return Err(SpecError::BadOutput);
        }
        for (i, node) in nodes.iter().enumerate() {
            if let NodeSpec::Layer { op, inputs } = node {
                for &inp in inputs {
                    if inp >= i {
                        return Err(SpecError::ForwardReference { node: i, input: inp });
                    }
                }
                let want_multi = matches!(op, LayerSpec::Concat);
                if want_multi {
                    if inputs.len() < 2 {
                        return Err(SpecError::Arity {
                            node: i,
                            expected: ">= 2",
                            got: inputs.len(),
                        });
                    }
                } else if inputs.len() != 1 {
                    return Err(SpecError::Arity {
                        node: i,
                        expected: "exactly 1",
                        got: inputs.len(),
                    });
                }
            }
        }
        let spec = ModelSpec { nodes, output };
        // Shape inference doubles as full validation.
        spec.infer_shapes()?;
        Ok(spec)
    }

    /// Convenience constructor for a linear chain: `Input -> ops...`.
    pub fn chain(input_shape: Vec<usize>, ops: Vec<LayerSpec>) -> Result<Self, SpecError> {
        let mut nodes = vec![NodeSpec::Input { shape: input_shape }];
        for (i, op) in ops.into_iter().enumerate() {
            nodes.push(NodeSpec::Layer { op, inputs: vec![i] });
        }
        let output = nodes.len() - 1;
        ModelSpec::new(nodes, output)
    }

    /// The DAG nodes in topological order.
    pub fn nodes(&self) -> &[NodeSpec] {
        &self.nodes
    }

    /// Index of the output node.
    pub fn output(&self) -> usize {
        self.output
    }

    /// Indices of the input nodes, in order. Batch inputs passed to
    /// [`crate::Model::forward`] must follow this order.
    pub fn input_nodes(&self) -> Vec<usize> {
        self.nodes
            .iter()
            .enumerate()
            .filter_map(|(i, n)| matches!(n, NodeSpec::Input { .. }).then_some(i))
            .collect()
    }

    /// Per-sample output shape of every node.
    pub fn infer_shapes(&self) -> Result<Vec<Shape>, SpecError> {
        let mut shapes: Vec<Shape> = Vec::with_capacity(self.nodes.len());
        for (i, node) in self.nodes.iter().enumerate() {
            let shape = match node {
                NodeSpec::Input { shape } => Shape::new(shape.clone()),
                NodeSpec::Layer { op, inputs } => {
                    let ins: Vec<&Shape> = inputs.iter().map(|&j| &shapes[j]).collect();
                    infer_layer_shape(op, &ins)
                        .map_err(|message| SpecError::Shape { node: i, message })?
                }
            };
            shapes.push(shape);
        }
        Ok(shapes)
    }

    /// The per-sample shape of the model output.
    pub fn output_shape(&self) -> Result<Shape, SpecError> {
        Ok(self.infer_shapes()?[self.output].clone())
    }

    /// Deterministic node names: `n{index}_{kind}`.
    pub fn node_name(&self, index: usize) -> String {
        match &self.nodes[index] {
            NodeSpec::Input { .. } => format!("n{index}_input"),
            NodeSpec::Layer { op, .. } => format!("n{index}_{}", op.kind()),
        }
    }

    /// The trainable parameter tensors of the model, as `(full_name, shape)`
    /// in topological order — the paper's *shape sequence* source (Fig. 3).
    /// Guaranteed to align 1:1 with [`crate::Model::named_params`].
    pub fn param_shapes(&self) -> Result<Vec<(String, Shape)>, SpecError> {
        let shapes = self.infer_shapes()?;
        let mut out = Vec::new();
        for (i, node) in self.nodes.iter().enumerate() {
            let NodeSpec::Layer { op, inputs } = node else { continue };
            let name = self.node_name(i);
            let input_shape = &shapes[inputs[0]];
            match op {
                LayerSpec::Dense { units, .. } => {
                    out.push((format!("{name}/kernel"), Shape::new([input_shape.dim(0), *units])));
                    out.push((format!("{name}/bias"), Shape::new([*units])));
                }
                LayerSpec::Conv2D { filters, kernel, .. } => {
                    let c = input_shape.dim(2);
                    out.push((
                        format!("{name}/kernel"),
                        Shape::new([*kernel, *kernel, c, *filters]),
                    ));
                    out.push((format!("{name}/bias"), Shape::new([*filters])));
                }
                LayerSpec::Conv1D { filters, kernel, .. } => {
                    let c = input_shape.dim(1);
                    out.push((format!("{name}/kernel"), Shape::new([*kernel, c, *filters])));
                    out.push((format!("{name}/bias"), Shape::new([*filters])));
                }
                LayerSpec::BatchNorm => {
                    let c = input_shape.dim(input_shape.rank() - 1);
                    out.push((format!("{name}/gamma"), Shape::new([c])));
                    out.push((format!("{name}/beta"), Shape::new([c])));
                }
                _ => {}
            }
        }
        Ok(out)
    }

    /// Total trainable parameter count — Table IV's model-complexity proxy.
    pub fn param_count(&self) -> Result<usize, SpecError> {
        Ok(self.param_shapes()?.iter().map(|(_, s)| s.numel()).sum())
    }

    /// Keras-style human-readable summary: one row per node with its
    /// operation, output shape and parameter count.
    pub fn summary(&self) -> Result<String, SpecError> {
        let shapes = self.infer_shapes()?;
        let params = self.param_shapes()?;
        let mut out = String::new();
        out.push_str(&format!("{:<16} {:<28} {:<16} {:>10}\n", "node", "op", "output", "params"));
        out.push_str(&"-".repeat(72));
        out.push('\n');
        for (i, node) in self.nodes.iter().enumerate() {
            let name = self.node_name(i);
            let op = match node {
                NodeSpec::Input { .. } => "Input".to_string(),
                NodeSpec::Layer { op, .. } => op.to_string(),
            };
            let node_params: usize = params
                .iter()
                .filter(|(n, _)| n.starts_with(&format!("{name}/")))
                .map(|(_, s)| s.numel())
                .sum();
            out.push_str(&format!(
                "{:<16} {:<28} {:<16} {:>10}\n",
                name,
                op,
                shapes[i].to_string(),
                node_params
            ));
        }
        out.push_str(&"-".repeat(72));
        out.push_str(&format!("\ntotal params: {}\n", self.param_count()?));
        Ok(out)
    }
}

/// Per-sample output shape of one layer given its input shapes.
fn infer_layer_shape(op: &LayerSpec, inputs: &[&Shape]) -> Result<Shape, String> {
    let one = |rank: Option<usize>| -> Result<&Shape, String> {
        let s = inputs[0];
        if let Some(r) = rank {
            if s.rank() != r {
                return Err(format!("{op} expects rank-{r} input, got {s}"));
            }
        }
        Ok(s)
    };
    match op {
        LayerSpec::Identity
        | LayerSpec::Activation(_)
        | LayerSpec::Dropout { .. }
        | LayerSpec::BatchNorm => Ok(one(None)?.clone()),
        LayerSpec::Dense { units, .. } => {
            let s = one(Some(1))?;
            let _ = s;
            Ok(Shape::new([*units]))
        }
        LayerSpec::Conv2D { filters, kernel, padding, .. } => {
            let s = one(Some(3))?;
            let (h, w) = (s.dim(0), s.dim(1));
            if matches!(padding, Padding::Valid) && (h < *kernel || w < *kernel) {
                return Err(format!("valid conv kernel {kernel} exceeds input {s}"));
            }
            Ok(Shape::new([padding.out_size(h, *kernel), padding.out_size(w, *kernel), *filters]))
        }
        LayerSpec::Conv1D { filters, kernel, padding, .. } => {
            let s = one(Some(2))?;
            let w = s.dim(0);
            if matches!(padding, Padding::Valid) && w < *kernel {
                return Err(format!("valid conv kernel {kernel} exceeds input {s}"));
            }
            Ok(Shape::new([padding.out_size(w, *kernel), *filters]))
        }
        LayerSpec::MaxPool2D { size, stride } => {
            let s = one(Some(3))?;
            let (h, w) = (s.dim(0), s.dim(1));
            if h < *size || w < *size {
                return Err(format!("pool window {size} exceeds input {s}"));
            }
            Ok(Shape::new([(h - size) / stride + 1, (w - size) / stride + 1, s.dim(2)]))
        }
        LayerSpec::MaxPool1D { size, stride } => {
            let s = one(Some(2))?;
            let w = s.dim(0);
            if w < *size {
                return Err(format!("pool window {size} exceeds input {s}"));
            }
            Ok(Shape::new([(w - size) / stride + 1, s.dim(1)]))
        }
        LayerSpec::Flatten => Ok(Shape::new([one(None)?.numel()])),
        LayerSpec::Concat => {
            let mut total = 0;
            for s in inputs {
                if s.rank() != 1 {
                    return Err(format!("concat expects rank-1 inputs, got {s}"));
                }
                total += s.dim(0);
            }
            Ok(Shape::new([total]))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lenetish() -> ModelSpec {
        ModelSpec::chain(
            vec![10, 10, 1],
            vec![
                LayerSpec::Conv2D { filters: 4, kernel: 3, padding: Padding::Same, l2: 0.0 },
                LayerSpec::Activation(Activation::Relu),
                LayerSpec::MaxPool2D { size: 2, stride: 2 },
                LayerSpec::Flatten,
                LayerSpec::Dense { units: 16, activation: Some(Activation::Relu) },
                LayerSpec::Dense { units: 10, activation: None },
            ],
        )
        .unwrap()
    }

    #[test]
    fn chain_shapes() {
        let spec = lenetish();
        let shapes = spec.infer_shapes().unwrap();
        assert_eq!(shapes[1].dims(), &[10, 10, 4]); // same conv
        assert_eq!(shapes[3].dims(), &[5, 5, 4]); // pool /2
        assert_eq!(shapes[4].dims(), &[100]); // flatten
        assert_eq!(spec.output_shape().unwrap().dims(), &[10]);
    }

    #[test]
    fn param_shapes_in_topological_order() {
        let spec = lenetish();
        let params = spec.param_shapes().unwrap();
        let names: Vec<&str> = params.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(
            names,
            vec![
                "n1_conv2d/kernel",
                "n1_conv2d/bias",
                "n5_dense/kernel",
                "n5_dense/bias",
                "n6_dense/kernel",
                "n6_dense/bias"
            ]
        );
        assert_eq!(params[0].1.dims(), &[3, 3, 1, 4]);
        assert_eq!(params[2].1.dims(), &[100, 16]);
    }

    #[test]
    fn param_count_matches_manual() {
        let spec = lenetish();
        // conv: 3*3*1*4 + 4 = 40; dense1: 100*16 + 16 = 1616; dense2: 16*10 + 10 = 170
        assert_eq!(spec.param_count().unwrap(), 40 + 1616 + 170);
    }

    #[test]
    fn pool_too_large_is_shape_error() {
        let err = ModelSpec::chain(
            vec![4, 4, 1],
            vec![
                LayerSpec::MaxPool2D { size: 3, stride: 3 },
                LayerSpec::MaxPool2D { size: 3, stride: 3 },
            ],
        )
        .unwrap_err();
        assert!(matches!(err, SpecError::Shape { node: 2, .. }), "{err}");
    }

    #[test]
    fn forward_reference_rejected() {
        let nodes = vec![
            NodeSpec::Input { shape: vec![4] },
            NodeSpec::Layer { op: LayerSpec::Identity, inputs: vec![2] },
            NodeSpec::Layer { op: LayerSpec::Identity, inputs: vec![0] },
        ];
        assert!(matches!(
            ModelSpec::new(nodes, 2).unwrap_err(),
            SpecError::ForwardReference { node: 1, input: 2 }
        ));
    }

    #[test]
    fn concat_requires_multiple_rank1_inputs() {
        let nodes = vec![
            NodeSpec::Input { shape: vec![3] },
            NodeSpec::Input { shape: vec![5] },
            NodeSpec::Layer { op: LayerSpec::Concat, inputs: vec![0, 1] },
        ];
        let spec = ModelSpec::new(nodes, 2).unwrap();
        assert_eq!(spec.output_shape().unwrap().dims(), &[8]);
        assert_eq!(spec.input_nodes(), vec![0, 1]);

        let bad = vec![
            NodeSpec::Input { shape: vec![3] },
            NodeSpec::Layer { op: LayerSpec::Concat, inputs: vec![0] },
        ];
        assert!(matches!(ModelSpec::new(bad, 1).unwrap_err(), SpecError::Arity { .. }));
    }

    #[test]
    fn dense_on_unflattened_input_is_error() {
        let err =
            ModelSpec::chain(vec![4, 4, 2], vec![LayerSpec::Dense { units: 3, activation: None }])
                .unwrap_err();
        assert!(matches!(err, SpecError::Shape { .. }));
    }

    #[test]
    fn batchnorm_params_follow_channels() {
        let spec = ModelSpec::chain(vec![6, 6, 5], vec![LayerSpec::BatchNorm]).unwrap();
        let params = spec.param_shapes().unwrap();
        assert_eq!(params.len(), 2);
        assert_eq!(params[0].1.dims(), &[5]);
        assert_eq!(params[0].0, "n1_bn/gamma");
    }

    #[test]
    fn display_matches_paper_notation() {
        let d = LayerSpec::Dense { units: 50, activation: Some(Activation::Relu) };
        assert_eq!(d.to_string(), "Dense(50, relu)");
        assert_eq!(LayerSpec::Dropout { rate: 0.5 }.to_string(), "Dropout(0.5)");
    }

    #[test]
    fn summary_lists_every_node_and_total() {
        let spec = lenetish();
        let s = spec.summary().unwrap();
        assert!(s.contains("n1_conv2d"));
        assert!(s.contains("Conv2D(4, 3x3"));
        assert!(s.contains("(5, 5, 4)")); // pooled shape
        assert!(s.contains(&format!("total params: {}", spec.param_count().unwrap())));
        // One row per node plus header/footer lines.
        assert_eq!(s.lines().count(), spec.nodes().len() + 4);
    }

    #[test]
    fn empty_and_bad_output_rejected() {
        assert!(matches!(ModelSpec::new(vec![], 0).unwrap_err(), SpecError::Empty));
        let nodes = vec![NodeSpec::Input { shape: vec![2] }];
        assert!(matches!(ModelSpec::new(nodes, 5).unwrap_err(), SpecError::BadOutput));
    }
}
