//! Training loop with the paper's early-stopping rule.
//!
//! Section VIII-B: "We apply early stopping, which means if the objective
//! metrics do not change by more than a given threshold for a fixed number of
//! epochs (two in our case), the training stops." Per-application thresholds
//! are NT3 0.005, MNIST 0.001, CIFAR-10 0.01, Uno 0.02.

use crate::dataset::Dataset;
use crate::loss::{Loss, Metric};
use crate::model::Model;
use crate::optimizer::{Adam, AdamConfig};
use swt_tensor::{Rng, Tensor};

/// The paper's early-stopping rule: stop once the validation objective has
/// changed by at most `threshold` for `patience` consecutive epochs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EarlyStop {
    pub threshold: f64,
    pub patience: usize,
}

impl EarlyStop {
    /// The paper's patience of two epochs with an app-specific threshold.
    pub fn paper(threshold: f64) -> Self {
        EarlyStop { threshold, patience: 2 }
    }
}

/// Loss-delta convergence rule for multi-fidelity evaluation: training stops
/// at a clean epoch boundary once the last `window` train losses span at most
/// `min_delta`. Unlike [`EarlyStop`] (which watches the *validation* metric
/// with a patience counter), this watches the *training* loss over a sliding
/// window — cheap, monotone-friendly, and what a rung budget wants to cut on.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Convergence {
    /// Number of trailing epoch losses that must agree.
    pub window: usize,
    /// Maximum spread (max − min) across the window that counts as flat.
    pub min_delta: f64,
}

/// Sliding-window observer for [`Convergence`]: feed one train loss per
/// epoch; `observe` reports `true` once the window is full and flat.
#[derive(Debug, Clone)]
pub struct ConvergenceTracker {
    rule: Convergence,
    window: Vec<f64>,
}

impl ConvergenceTracker {
    pub fn new(rule: Convergence) -> Self {
        ConvergenceTracker { rule, window: Vec::with_capacity(rule.window.max(1)) }
    }

    /// Record the epoch's train loss; `true` means the loss has converged
    /// (the last `window` observations span at most `min_delta`).
    pub fn observe(&mut self, loss: f64) -> bool {
        let cap = self.rule.window.max(1);
        if self.window.len() == cap {
            self.window.remove(0);
        }
        self.window.push(loss);
        if self.window.len() < cap || self.window.iter().any(|l| !l.is_finite()) {
            return false;
        }
        let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
        for &l in &self.window {
            lo = lo.min(l);
            hi = hi.max(l);
        }
        (hi - lo) <= self.rule.min_delta
    }
}

/// Why training ended, for propagation into `EvalOutcome` stop reasons.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TrainStop {
    /// Ran the full epoch budget.
    Budget,
    /// The paper's validation-metric plateau rule ([`EarlyStop`]) fired.
    Plateau,
    /// The loss-delta [`Convergence`] rule fired.
    Converged,
}

/// Training configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct TrainConfig {
    pub epochs: usize,
    pub batch_size: usize,
    pub adam: AdamConfig,
    /// Seed for epoch shuffling (weight init is seeded at model build).
    pub shuffle_seed: u64,
    pub early_stop: Option<EarlyStop>,
    /// Loss-delta convergence cut, checked at epoch boundaries only.
    pub convergence: Option<Convergence>,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig {
            epochs: 1,
            batch_size: 64,
            adam: AdamConfig::default(),
            shuffle_seed: 0,
            early_stop: None,
            convergence: None,
        }
    }
}

/// Per-epoch training record.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EpochRecord {
    pub epoch: usize,
    pub train_loss: f64,
    pub val_metric: f64,
}

/// Result of a training run.
#[derive(Debug, Clone, PartialEq)]
pub struct TrainReport {
    pub records: Vec<EpochRecord>,
    pub epochs_run: usize,
    pub early_stopped: bool,
    /// Why the loop ended; `early_stopped` stays `true` for any non-budget
    /// stop so existing callers keep working.
    pub stop: TrainStop,
    /// Validation objective after the final epoch.
    pub final_metric: f64,
}

/// Couples a loss with the objective metric used to score candidates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Trainer {
    pub loss: Loss,
    pub metric: Metric,
}

impl Trainer {
    pub fn new(loss: Loss, metric: Metric) -> Self {
        Trainer { loss, metric }
    }

    /// Train `model` on `train`, evaluating on `val` after every epoch.
    pub fn fit(
        &self,
        model: &mut Model,
        train: &Dataset,
        val: &Dataset,
        cfg: &TrainConfig,
    ) -> TrainReport {
        assert!(cfg.epochs > 0, "epochs must be positive");
        let mut adam = Adam::new(cfg.adam);
        let mut rng = Rng::seed(cfg.shuffle_seed);
        let mut records = Vec::with_capacity(cfg.epochs);
        let mut flat_epochs = 0usize;
        let mut prev_metric: Option<f64> = None;
        let mut early_stopped = false;
        let mut stop = TrainStop::Budget;
        let mut tracker = cfg.convergence.map(ConvergenceTracker::new);

        for epoch in 0..cfg.epochs {
            let _epoch_span = swt_obs::span!("epoch");
            let mut loss_sum = 0.0f64;
            let mut batches = 0usize;
            for idx in train.batch_indices(cfg.batch_size, Some(&mut rng)) {
                let _batch_span = swt_obs::span!("batch");
                // Batch tensors, prediction and loss gradient all come from
                // the model's workspace and go back to it after the step, so
                // steady-state epochs reuse the same storage every batch.
                let (inputs, targets) = train.batch_ws(&idx, model.workspace_mut());
                let input_refs: Vec<&Tensor> = inputs.iter().collect();
                let pred = model.forward(&input_refs, true);
                let (loss, grad) =
                    self.loss.forward_backward_ws(&pred, &targets, model.workspace_mut());
                model.zero_grads();
                model.backward(&grad);
                adam.step(model);
                for t in inputs {
                    model.recycle(t);
                }
                model.recycle(targets);
                model.recycle(pred);
                model.recycle(grad);
                loss_sum += loss;
                batches += 1;
            }
            swt_obs::counter!("nn.batches_trained").add(batches as u64);
            swt_obs::counter!("nn.epochs_trained").inc();
            let val_metric = self.evaluate(model, val, cfg.batch_size);
            let train_loss = loss_sum / batches.max(1) as f64;
            records.push(EpochRecord { epoch, train_loss, val_metric });
            if let Some(es) = cfg.early_stop {
                if let Some(prev) = prev_metric {
                    if (val_metric - prev).abs() <= es.threshold {
                        flat_epochs += 1;
                    } else {
                        flat_epochs = 0;
                    }
                    if flat_epochs >= es.patience {
                        early_stopped = true;
                        stop = TrainStop::Plateau;
                        break;
                    }
                }
                prev_metric = Some(val_metric);
            }
            if let Some(t) = tracker.as_mut() {
                if t.observe(train_loss) && epoch + 1 < cfg.epochs {
                    early_stopped = true;
                    stop = TrainStop::Converged;
                    break;
                }
            }
        }
        let final_metric = records.last().map(|r| r.val_metric).unwrap_or(0.0);
        TrainReport { epochs_run: records.len(), records, early_stopped, stop, final_metric }
    }

    /// Batched evaluation of the objective metric on a dataset.
    pub fn evaluate(&self, model: &mut Model, data: &Dataset, batch_size: usize) -> f64 {
        if data.is_empty() {
            return 0.0;
        }
        let _span = swt_obs::span!("val_eval");
        // Run prediction in batches, then evaluate the metric globally (R²
        // is not batch-decomposable).
        let mut preds: Option<Vec<f32>> = None;
        let mut pred_cols = 0usize;
        for idx in data.batch_indices(batch_size, None) {
            let (inputs, targets) = data.batch_ws(&idx, model.workspace_mut());
            let input_refs: Vec<&Tensor> = inputs.iter().collect();
            let out = model.forward(&input_refs, false);
            pred_cols = out.numel() / idx.len();
            preds.get_or_insert_with(Vec::new).extend_from_slice(out.data());
            for t in inputs {
                model.recycle(t);
            }
            model.recycle(targets);
            model.recycle(out);
        }
        let preds = Tensor::from_vec([data.len(), pred_cols], preds.unwrap());
        self.metric.evaluate(&preds, data.targets())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{Activation, LayerSpec, ModelSpec};

    /// Tiny linearly-separable classification problem.
    fn blob_dataset(n: usize, seed: u64) -> Dataset {
        let mut rng = Rng::seed(seed);
        let mut xs = Vec::with_capacity(n * 2);
        let mut ys = Vec::with_capacity(n * 2);
        for _ in 0..n {
            let class = rng.below(2);
            let cx = if class == 0 { -1.0 } else { 1.0 };
            xs.push(cx + 0.3 * rng.normal());
            xs.push(-cx + 0.3 * rng.normal());
            ys.extend_from_slice(if class == 0 { &[1.0, 0.0] } else { &[0.0, 1.0] });
        }
        Dataset::new(vec![Tensor::from_vec([n, 2], xs)], Tensor::from_vec([n, 2], ys))
    }

    fn mlp() -> Model {
        let spec = ModelSpec::chain(
            vec![2],
            vec![
                LayerSpec::Dense { units: 8, activation: Some(Activation::Relu) },
                LayerSpec::Dense { units: 2, activation: None },
            ],
        )
        .unwrap();
        Model::build(&spec, 42).unwrap()
    }

    #[test]
    fn training_reaches_high_accuracy() {
        let train = blob_dataset(256, 1);
        let val = blob_dataset(64, 2);
        let mut model = mlp();
        let trainer = Trainer::new(Loss::CategoricalCrossEntropy, Metric::Accuracy);
        let cfg = TrainConfig {
            epochs: 10,
            batch_size: 32,
            adam: AdamConfig { lr: 0.05, ..Default::default() },
            ..Default::default()
        };
        let report = trainer.fit(&mut model, &train, &val, &cfg);
        assert_eq!(report.epochs_run, 10);
        assert!(!report.early_stopped);
        assert!(report.final_metric > 0.95, "final accuracy {}", report.final_metric);
        // Loss must trend downward.
        assert!(report.records.last().unwrap().train_loss < report.records[0].train_loss);
    }

    #[test]
    fn early_stopping_halts_on_plateau() {
        let train = blob_dataset(256, 3);
        let val = blob_dataset(64, 4);
        let mut model = mlp();
        let trainer = Trainer::new(Loss::CategoricalCrossEntropy, Metric::Accuracy);
        let cfg = TrainConfig {
            epochs: 40,
            batch_size: 32,
            adam: AdamConfig { lr: 0.05, ..Default::default() },
            early_stop: Some(EarlyStop::paper(0.01)),
            ..Default::default()
        };
        let report = trainer.fit(&mut model, &train, &val, &cfg);
        assert!(report.early_stopped, "separable blobs must plateau within 40 epochs");
        assert!(report.epochs_run < 40);
        assert!(report.final_metric > 0.9);
    }

    #[test]
    fn early_stopping_needs_consecutive_flat_epochs() {
        // Patience 2 means one flat epoch alone must not stop training; we
        // verify the machinery by checking at least 3 epochs always run.
        let train = blob_dataset(64, 5);
        let val = blob_dataset(32, 6);
        let mut model = mlp();
        let trainer = Trainer::new(Loss::CategoricalCrossEntropy, Metric::Accuracy);
        let cfg = TrainConfig {
            epochs: 30,
            batch_size: 16,
            early_stop: Some(EarlyStop { threshold: 1.0, patience: 2 }),
            ..Default::default()
        };
        // threshold = 1.0 makes every epoch "flat": stop after epoch 3
        // (first epoch has no predecessor, then two flat comparisons).
        let report = trainer.fit(&mut model, &train, &val, &cfg);
        assert_eq!(report.epochs_run, 3);
        assert!(report.early_stopped);
    }

    #[test]
    fn convergence_tracker_needs_a_full_flat_window() {
        let mut t = ConvergenceTracker::new(Convergence { window: 3, min_delta: 0.1 });
        assert!(!t.observe(1.00), "window not yet full");
        assert!(!t.observe(1.05), "window not yet full");
        assert!(t.observe(1.04), "three losses within 0.1 converge");
        let mut t = ConvergenceTracker::new(Convergence { window: 3, min_delta: 0.1 });
        for loss in [2.0, 1.5, 1.0, 0.6, 0.55] {
            assert!(!t.observe(loss), "spread above min_delta must not converge at {loss}");
        }
        assert!(t.observe(0.52), "window [0.6, 0.55, 0.52] spans 0.08 <= 0.1");
    }

    #[test]
    fn convergence_tracker_ignores_non_finite_losses() {
        let mut t = ConvergenceTracker::new(Convergence { window: 2, min_delta: 10.0 });
        assert!(!t.observe(f64::NAN));
        assert!(!t.observe(1.0), "a NaN in the window must never count as flat");
        assert!(t.observe(1.0));
    }

    #[test]
    fn convergence_stop_reports_its_reason() {
        let train = blob_dataset(64, 11);
        let val = blob_dataset(32, 12);
        let mut model = mlp();
        let trainer = Trainer::new(Loss::CategoricalCrossEntropy, Metric::Accuracy);
        let cfg = TrainConfig {
            epochs: 30,
            batch_size: 16,
            // An infinitely tolerant spread: converges as soon as the
            // two-epoch window fills, i.e. after epoch 2.
            convergence: Some(Convergence { window: 2, min_delta: f64::INFINITY }),
            ..Default::default()
        };
        let report = trainer.fit(&mut model, &train, &val, &cfg);
        assert_eq!(report.epochs_run, 2);
        assert!(report.early_stopped);
        assert_eq!(report.stop, TrainStop::Converged);
    }

    #[test]
    fn budget_and_plateau_stops_are_distinguished() {
        let train = blob_dataset(64, 13);
        let val = blob_dataset(32, 14);
        let trainer = Trainer::new(Loss::CategoricalCrossEntropy, Metric::Accuracy);
        let budget = trainer.fit(
            &mut mlp(),
            &train,
            &val,
            &TrainConfig { epochs: 2, batch_size: 16, ..Default::default() },
        );
        assert_eq!(budget.stop, TrainStop::Budget);
        assert!(!budget.early_stopped);
        let plateau = trainer.fit(
            &mut mlp(),
            &train,
            &val,
            &TrainConfig {
                epochs: 30,
                batch_size: 16,
                early_stop: Some(EarlyStop { threshold: 1.0, patience: 2 }),
                ..Default::default()
            },
        );
        assert_eq!(plateau.stop, TrainStop::Plateau);
        assert!(plateau.early_stopped);
    }

    #[test]
    fn convergence_on_the_final_epoch_counts_as_budget() {
        let train = blob_dataset(64, 15);
        let val = blob_dataset(32, 16);
        let trainer = Trainer::new(Loss::CategoricalCrossEntropy, Metric::Accuracy);
        let cfg = TrainConfig {
            epochs: 1,
            batch_size: 16,
            convergence: Some(Convergence { window: 1, min_delta: f64::INFINITY }),
            ..Default::default()
        };
        let report = trainer.fit(&mut mlp(), &train, &val, &cfg);
        assert_eq!(report.stop, TrainStop::Budget, "no epochs were saved, nothing converged away");
        assert!(!report.early_stopped);
    }

    #[test]
    fn evaluate_is_deterministic_and_batch_insensitive() {
        let val = blob_dataset(50, 7);
        let mut model = mlp();
        let trainer = Trainer::new(Loss::CategoricalCrossEntropy, Metric::Accuracy);
        let a = trainer.evaluate(&mut model, &val, 7);
        let b = trainer.evaluate(&mut model, &val, 50);
        assert!((a - b).abs() < 1e-12, "batch size must not affect accuracy: {a} vs {b}");
    }

    #[test]
    fn regression_path_improves_r2() {
        // y = 3x - 1 with noise; a linear model should fit it well under MAE.
        let mut rng = Rng::seed(8);
        let make = |n: usize, rng: &mut Rng| {
            let xs: Vec<f32> = (0..n).map(|_| rng.normal()).collect();
            let ys: Vec<f32> = xs.iter().map(|&x| 3.0 * x - 1.0 + 0.05 * rng.normal()).collect();
            Dataset::new(vec![Tensor::from_vec([n, 1], xs)], Tensor::from_vec([n, 1], ys))
        };
        let train = make(256, &mut rng);
        let val = make(64, &mut rng);
        let spec = ModelSpec::chain(vec![1], vec![LayerSpec::Dense { units: 1, activation: None }])
            .unwrap();
        let mut model = Model::build(&spec, 9).unwrap();
        let trainer = Trainer::new(Loss::MeanAbsoluteError, Metric::RSquared);
        let before = trainer.evaluate(&mut model, &val, 32);
        let cfg = TrainConfig {
            epochs: 60,
            batch_size: 32,
            adam: AdamConfig { lr: 0.02, ..Default::default() },
            ..Default::default()
        };
        let report = trainer.fit(&mut model, &train, &val, &cfg);
        assert!(report.final_metric > 0.95, "R² {} (was {before})", report.final_metric);
        assert!(report.final_metric > before);
    }
}
