//! Batch normalisation over the channel (last) dimension.
//!
//! The CIFAR-like space's "BatchNorm" variable nodes choose whether to apply
//! this operator (Section VII-A). Normalisation is per channel across batch
//! and spatial positions (as in Keras' default for NHWC); running statistics
//! are tracked with momentum and used at inference time, and are persisted as
//! non-trainable checkpoint state.

use super::Layer;
use swt_tensor::{Tensor, Workspace};

const EPS: f32 = 1e-5;
const MOMENTUM: f32 = 0.9;

/// Batch-norm layer with learnable per-channel `gamma`/`beta`.
pub struct BatchNormLayer {
    gamma: Tensor,
    beta: Tensor,
    d_gamma: Tensor,
    d_beta: Tensor,
    running_mean: Tensor,
    running_var: Tensor,
    // Backward caches. The per-channel vectors are members so steady-state
    // batches reuse their storage.
    cached_xhat: Option<Tensor>,
    cached_inv_std: Vec<f32>,
    cached_rows: usize,
    scratch_mean: Vec<f32>,
    scratch_var: Vec<f32>,
}

impl BatchNormLayer {
    pub fn new(channels: usize) -> Self {
        BatchNormLayer {
            gamma: Tensor::ones([channels]),
            beta: Tensor::zeros([channels]),
            d_gamma: Tensor::zeros([channels]),
            d_beta: Tensor::zeros([channels]),
            running_mean: Tensor::zeros([channels]),
            running_var: Tensor::ones([channels]),
            cached_xhat: None,
            cached_inv_std: Vec::new(),
            cached_rows: 0,
            scratch_mean: Vec::new(),
            scratch_var: Vec::new(),
        }
    }

    fn channels(&self) -> usize {
        self.gamma.numel()
    }
}

impl Layer for BatchNormLayer {
    fn forward(&mut self, inputs: &[&Tensor], training: bool, ws: &mut Workspace) -> Tensor {
        let x = inputs[0];
        let c = self.channels();
        assert_eq!(x.shape().dim(x.shape().rank() - 1), c, "batchnorm channel mismatch");
        let rows = x.numel() / c;
        let mean = &mut self.scratch_mean;
        let var = &mut self.scratch_var;
        if training {
            mean.clear();
            mean.resize(c, 0.0);
            for chunk in x.data().chunks(c) {
                for (m, &v) in mean.iter_mut().zip(chunk) {
                    *m += v;
                }
            }
            for m in mean.iter_mut() {
                *m /= rows as f32;
            }
            var.clear();
            var.resize(c, 0.0);
            for chunk in x.data().chunks(c) {
                for ((vv, &v), &m) in var.iter_mut().zip(chunk).zip(mean.iter()) {
                    let d = v - m;
                    *vv += d * d;
                }
            }
            for v in var.iter_mut() {
                *v /= rows as f32;
            }
            // Update running statistics.
            for (r, &m) in self.running_mean.data_mut().iter_mut().zip(mean.iter()) {
                *r = MOMENTUM * *r + (1.0 - MOMENTUM) * m;
            }
            for (r, &v) in self.running_var.data_mut().iter_mut().zip(var.iter()) {
                *r = MOMENTUM * *r + (1.0 - MOMENTUM) * v;
            }
        } else {
            mean.clear();
            mean.extend_from_slice(self.running_mean.data());
            var.clear();
            var.extend_from_slice(self.running_var.data());
        }

        self.cached_inv_std.clear();
        self.cached_inv_std.extend(var.iter().map(|&v| 1.0 / (v + EPS).sqrt()));
        let inv_std = &self.cached_inv_std;

        let mut xhat = ws.take_tensor(x.shape().dims().to_vec());
        for (dst, src) in xhat.data_mut().chunks_mut(c).zip(x.data().chunks(c)) {
            for (((o, &v), &m), &is) in dst.iter_mut().zip(src).zip(mean.iter()).zip(inv_std) {
                *o = (v - m) * is;
            }
        }
        let mut y = ws.take_tensor(x.shape().dims().to_vec());
        for (dst, src) in y.data_mut().chunks_mut(c).zip(xhat.data().chunks(c)) {
            for (((o, &v), &g), &b) in
                dst.iter_mut().zip(src).zip(self.gamma.data()).zip(self.beta.data())
            {
                *o = v * g + b;
            }
        }
        if let Some(old) = self.cached_xhat.take() {
            ws.recycle(old);
        }
        if training {
            self.cached_xhat = Some(xhat);
            self.cached_rows = rows;
        } else {
            ws.recycle(xhat);
        }
        y
    }

    fn backward(&mut self, dout: &Tensor, ws: &mut Workspace) -> Vec<Tensor> {
        let xhat = self.cached_xhat.as_ref().expect("backward before training forward");
        let c = self.channels();
        let n = self.cached_rows as f32;

        // Per-channel reductions: dbeta = Σ dout, dgamma = Σ dout·xhat,
        // built in the reusable scratch vectors (the dx formula needs this
        // batch's sums alone, separate from the accumulated gradients).
        let dbeta = &mut self.scratch_mean;
        dbeta.clear();
        dbeta.resize(c, 0.0);
        let dgamma = &mut self.scratch_var;
        dgamma.clear();
        dgamma.resize(c, 0.0);
        for (dchunk, xchunk) in dout.data().chunks(c).zip(xhat.data().chunks(c)) {
            for i in 0..c {
                dbeta[i] += dchunk[i];
                dgamma[i] += dchunk[i] * xchunk[i];
            }
        }

        // dx = (gamma · inv_std / n) · (n·dout − Σdout − xhat·Σ(dout·xhat))
        let mut dx = ws.take_tensor(dout.shape().dims().to_vec());
        for ((dst, dchunk), xchunk) in
            dx.data_mut().chunks_mut(c).zip(dout.data().chunks(c)).zip(xhat.data().chunks(c))
        {
            for i in 0..c {
                let g = self.gamma.data()[i];
                let is = self.cached_inv_std[i];
                dst[i] = g * is / n * (n * dchunk[i] - dbeta[i] - xchunk[i] * dgamma[i]);
            }
        }

        for (o, &v) in self.d_beta.data_mut().iter_mut().zip(dbeta.iter()) {
            *o += v;
        }
        for (o, &v) in self.d_gamma.data_mut().iter_mut().zip(dgamma.iter()) {
            *o += v;
        }
        vec![dx]
    }

    fn visit_params(&self, f: &mut dyn FnMut(&str, &Tensor)) {
        f("gamma", &self.gamma);
        f("beta", &self.beta);
    }

    fn visit_params_mut(&mut self, f: &mut dyn FnMut(&str, &mut Tensor)) {
        f("gamma", &mut self.gamma);
        f("beta", &mut self.beta);
    }

    fn visit_updates(&mut self, f: &mut dyn FnMut(&str, &mut Tensor, &Tensor)) {
        f("gamma", &mut self.gamma, &self.d_gamma);
        f("beta", &mut self.beta, &self.d_beta);
    }

    fn zero_grads(&mut self) {
        self.d_gamma.scale(0.0);
        self.d_beta.scale(0.0);
    }

    fn visit_state(&self, f: &mut dyn FnMut(&str, &Tensor)) {
        f("running_mean", &self.running_mean);
        f("running_var", &self.running_var);
    }

    fn load_state(&mut self, name: &str, value: &Tensor) -> bool {
        match name {
            "running_mean" if value.shape() == self.running_mean.shape() => {
                self.running_mean = value.clone();
                true
            }
            "running_var" if value.shape() == self.running_var.shape() => {
                self.running_var = value.clone();
                true
            }
            _ => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use swt_tensor::Rng;

    #[test]
    fn training_output_is_normalised() {
        let mut rng = Rng::seed(1);
        let mut ws = Workspace::new();
        let mut bn = BatchNormLayer::new(3);
        let x = Tensor::rand_normal([64, 3], 5.0, 2.0, &mut rng);
        let y = bn.forward(&[&x], true, &mut ws);
        // Per-channel mean ~0, var ~1.
        for ch in 0..3 {
            let vals: Vec<f32> = y.data().iter().skip(ch).step_by(3).copied().collect();
            let mean: f32 = vals.iter().sum::<f32>() / vals.len() as f32;
            let var: f32 = vals.iter().map(|v| (v - mean).powi(2)).sum::<f32>() / vals.len() as f32;
            assert!(mean.abs() < 1e-4, "channel {ch} mean {mean}");
            assert!((var - 1.0).abs() < 1e-2, "channel {ch} var {var}");
        }
    }

    #[test]
    fn inference_uses_running_stats() {
        let mut rng = Rng::seed(2);
        let mut ws = Workspace::new();
        let mut bn = BatchNormLayer::new(2);
        // Warm the running stats with many training batches.
        for _ in 0..200 {
            let x = Tensor::rand_normal([32, 2], 3.0, 1.5, &mut rng);
            let y = bn.forward(&[&x], true, &mut ws);
            ws.recycle(y);
        }
        // At inference, an input equal to the running mean maps to ~beta.
        let x = bn.running_mean.clone().reshape([1, 2]);
        let y = bn.forward(&[&x], false, &mut ws);
        assert!(y.max_abs() < 0.05, "expected ~0 output, got {:?}", y.data());
    }

    #[test]
    fn gradient_check_gamma_beta_and_input() {
        let mut rng = Rng::seed(3);
        let mut ws = Workspace::new();
        let x = Tensor::rand_normal([8, 2], 1.0, 2.0, &mut rng);
        // Use a weighted loss so gradients are non-trivial (sum of BN output
        // is ~constant by construction).
        let w = Tensor::rand_normal([8, 2], 0.0, 1.0, &mut rng);
        let loss_of = |bn: &mut BatchNormLayer, x: &Tensor| -> f32 {
            let mut ws = Workspace::new();
            bn.forward(&[x], true, &mut ws).zip_map(&w, |a, b| a * b).sum()
        };
        let mut bn = BatchNormLayer::new(2);
        let y = bn.forward(&[&x], true, &mut ws);
        let _ = y;
        let dout = w.clone();
        let dx = bn.backward(&dout, &mut ws).remove(0);
        let eps = 1e-2f32;
        for i in 0..x.numel() {
            let mut plus = x.clone();
            plus.data_mut()[i] += eps;
            let mut minus = x.clone();
            minus.data_mut()[i] -= eps;
            let mut bn2 = BatchNormLayer::new(2);
            let p = loss_of(&mut bn2, &plus);
            let mut bn3 = BatchNormLayer::new(2);
            let m = loss_of(&mut bn3, &minus);
            let num = (p - m) / (2.0 * eps);
            assert!((num - dx.data()[i]).abs() < 3e-2, "dx[{i}] num {num} vs {}", dx.data()[i]);
        }
        // gamma/beta gradients.
        let mut grads = Vec::new();
        bn.visit_updates(&mut |n, _p, g| grads.push((n.to_string(), g.clone())));
        for (name, grad) in grads {
            for i in 0..2 {
                let mut bnp = BatchNormLayer::new(2);
                let mut bnm = BatchNormLayer::new(2);
                let bump = |bn: &mut BatchNormLayer, delta: f32| {
                    bn.visit_params_mut(&mut |n, p| {
                        if n == name {
                            p.data_mut()[i] += delta;
                        }
                    });
                };
                bump(&mut bnp, eps);
                bump(&mut bnm, -eps);
                let num = (loss_of(&mut bnp, &x) - loss_of(&mut bnm, &x)) / (2.0 * eps);
                assert!(
                    (num - grad.data()[i]).abs() < 3e-2,
                    "d{name}[{i}] num {num} vs {}",
                    grad.data()[i]
                );
            }
        }
    }

    #[test]
    fn state_round_trip() {
        let mut bn = BatchNormLayer::new(2);
        let mean = Tensor::from_vec([2], vec![1.0, 2.0]);
        assert!(bn.load_state("running_mean", &mean));
        assert!(!bn.load_state("bogus", &mean));
        assert!(!bn.load_state("running_mean", &Tensor::zeros([3])), "shape mismatch refused");
        let mut captured = Vec::new();
        bn.visit_state(&mut |n, t| captured.push((n.to_string(), t.clone())));
        assert_eq!(captured[0].0, "running_mean");
        assert!(captured[0].1.approx_eq(&mean, 0.0));
    }
}
