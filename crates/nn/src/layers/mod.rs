//! Trainable layer implementations.
//!
//! Every layer caches whatever its backward pass needs during `forward`, and
//! accumulates parameter gradients internally; the [`crate::Model`] walks its
//! DAG calling `forward`/`backward` and exposes parameters to the optimizer
//! through [`Layer::visit_updates`].
//!
//! Both passes receive the model's [`Workspace`]: layers draw every
//! per-batch buffer (outputs, caches, GEMM scratch) from it and recycle dead
//! tensors back, so at steady state a training step touches the allocator
//! only for O(1)-sized control structures, never for tensor storage.

mod conv;
mod dense;
mod misc;
mod norm;
mod pool;

pub use conv::{Conv1DLayer, Conv2DLayer};
pub use dense::DenseLayer;
pub use misc::{ActivationLayer, ConcatLayer, DropoutLayer, FlattenLayer, IdentityLayer};
pub use norm::BatchNormLayer;
pub use pool::{MaxPool1DLayer, MaxPool2DLayer};

use swt_tensor::{Tensor, Workspace};

/// A trainable (or stateless) layer.
///
/// `forward` receives one batched tensor per DAG input (leading dimension =
/// batch). `backward` receives the upstream gradient of the layer output and
/// returns one gradient per input, in the same order.
pub trait Layer: Send {
    /// Run the layer. `training` toggles batch-statistics / dropout
    /// behaviour exactly like Keras' `training=True`. Scratch and output
    /// buffers come from `ws`.
    fn forward(&mut self, inputs: &[&Tensor], training: bool, ws: &mut Workspace) -> Tensor;

    /// Backpropagate; must be preceded by a `forward` call whose
    /// intermediate state is still cached. Parameter gradients accumulate
    /// into the layer.
    fn backward(&mut self, dout: &Tensor, ws: &mut Workspace) -> Vec<Tensor>;

    /// Visit trainable parameters as `(local_name, value)`.
    fn visit_params(&self, _f: &mut dyn FnMut(&str, &Tensor)) {}

    /// Visit trainable parameters mutably (used by weight transfer /
    /// checkpoint restore).
    fn visit_params_mut(&mut self, _f: &mut dyn FnMut(&str, &mut Tensor)) {}

    /// Visit `(local_name, parameter, gradient)` triples for the optimizer.
    fn visit_updates(&mut self, _f: &mut dyn FnMut(&str, &mut Tensor, &Tensor)) {}

    /// Reset accumulated gradients to zero.
    fn zero_grads(&mut self) {}

    /// Non-trainable state persisted in checkpoints (e.g. batch-norm running
    /// statistics), as `(local_name, value)`.
    fn visit_state(&self, _f: &mut dyn FnMut(&str, &Tensor)) {}

    /// Restore one piece of non-trainable state; returns false when the name
    /// is not recognised.
    fn load_state(&mut self, _name: &str, _value: &Tensor) -> bool {
        false
    }
}

/// Glorot-uniform initialisation limit for the given fan-in/fan-out.
pub(crate) fn glorot_limit(fan_in: usize, fan_out: usize) -> f32 {
    (6.0 / (fan_in + fan_out) as f32).sqrt()
}

/// Store a copy of `src` in a layer's cache slot, reusing the slot's previous
/// storage when the element count matches and drawing from / recycling into
/// `ws` otherwise. This is how layer caches stay allocation-free at steady
/// state: batch after batch the same buffer is overwritten in place.
pub(crate) fn cache_from(slot: &mut Option<Tensor>, src: &Tensor, ws: &mut Workspace) {
    let mut t = match slot.take() {
        Some(old) if old.numel() == src.numel() => old.reshape(src.shape().dims().to_vec()),
        other => {
            if let Some(old) = other {
                ws.recycle(old);
            }
            ws.take_tensor(src.shape().dims().to_vec())
        }
    };
    t.data_mut().copy_from_slice(src.data());
    *slot = Some(t);
}

/// Copy `src` into a fresh workspace tensor (the allocation-free analogue of
/// `src.clone()`).
pub(crate) fn ws_copy(src: &Tensor, ws: &mut Workspace) -> Tensor {
    let mut t = ws.take_tensor(src.shape().dims().to_vec());
    t.data_mut().copy_from_slice(src.data());
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn glorot_limit_shrinks_with_fan() {
        assert!(glorot_limit(10, 10) > glorot_limit(100, 100));
        assert!((glorot_limit(3, 3) - 1.0).abs() < 1e-6);
    }
}
