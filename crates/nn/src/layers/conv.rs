//! Convolutional layers (2-D NHWC and 1-D NWC), stride 1, with optional L2
//! kernel regularisation (the CIFAR-like space's `l2 = 5e-4` choice).

use super::{cache_from, glorot_limit, Layer};
use swt_tensor::{
    conv1d_backward_ws, conv1d_forward_ws, conv2d_backward_ws, conv2d_forward_ws, Padding, Rng,
    Tensor, Workspace,
};

/// 2-D convolution layer: kernel `(k, k, c_in, filters)` + bias `(filters,)`.
pub struct Conv2DLayer {
    kernel: Tensor,
    bias: Tensor,
    d_kernel: Tensor,
    d_bias: Tensor,
    padding: Padding,
    l2: f32,
    cached_input: Option<Tensor>,
}

impl Conv2DLayer {
    pub fn new(
        in_channels: usize,
        filters: usize,
        kernel: usize,
        padding: Padding,
        l2: f32,
        rng: &mut Rng,
    ) -> Self {
        let fan_in = kernel * kernel * in_channels;
        let fan_out = kernel * kernel * filters;
        let limit = glorot_limit(fan_in, fan_out);
        Conv2DLayer {
            kernel: Tensor::rand_uniform(
                [kernel, kernel, in_channels, filters],
                -limit,
                limit,
                rng,
            ),
            bias: Tensor::zeros([filters]),
            d_kernel: Tensor::zeros([kernel, kernel, in_channels, filters]),
            d_bias: Tensor::zeros([filters]),
            padding,
            l2,
            cached_input: None,
        }
    }
}

/// Add a `(filters,)` bias over the last dimension of `t` in place.
fn add_channel_bias(t: &mut Tensor, bias: &Tensor) {
    let f = bias.numel();
    for chunk in t.data_mut().chunks_mut(f) {
        for (v, &b) in chunk.iter_mut().zip(bias.data()) {
            *v += b;
        }
    }
}

/// Accumulate per-channel (last-dim) sums of `t` into `acc`, the bias
/// gradient reduction.
fn accumulate_channel_sums(t: &Tensor, acc: &mut Tensor) {
    let f = acc.numel();
    let out = acc.data_mut();
    for chunk in t.data().chunks(f) {
        for (o, &v) in out.iter_mut().zip(chunk) {
            *o += v;
        }
    }
}

impl Layer for Conv2DLayer {
    fn forward(&mut self, inputs: &[&Tensor], _training: bool, ws: &mut Workspace) -> Tensor {
        let x = inputs[0];
        let mut y = conv2d_forward_ws(x, &self.kernel, self.padding, ws);
        add_channel_bias(&mut y, &self.bias);
        cache_from(&mut self.cached_input, x, ws);
        y
    }

    fn backward(&mut self, dout: &Tensor, ws: &mut Workspace) -> Vec<Tensor> {
        let x = self.cached_input.as_ref().expect("backward before forward");
        let (dx, mut dk) = conv2d_backward_ws(x, &self.kernel, dout, self.padding, ws);
        if self.l2 > 0.0 {
            // d/dw of (l2/2)·||w||² accumulated into the kernel gradient; the
            // factor matches Keras' `l2(l2)` regulariser up to its 1/2
            // convention, which only rescales the effective weight decay.
            dk.axpy(self.l2, &self.kernel);
        }
        self.d_kernel.axpy(1.0, &dk);
        ws.recycle(dk);
        accumulate_channel_sums(dout, &mut self.d_bias);
        vec![dx]
    }

    fn visit_params(&self, f: &mut dyn FnMut(&str, &Tensor)) {
        f("kernel", &self.kernel);
        f("bias", &self.bias);
    }

    fn visit_params_mut(&mut self, f: &mut dyn FnMut(&str, &mut Tensor)) {
        f("kernel", &mut self.kernel);
        f("bias", &mut self.bias);
    }

    fn visit_updates(&mut self, f: &mut dyn FnMut(&str, &mut Tensor, &Tensor)) {
        f("kernel", &mut self.kernel, &self.d_kernel);
        f("bias", &mut self.bias, &self.d_bias);
    }

    fn zero_grads(&mut self) {
        self.d_kernel.scale(0.0);
        self.d_bias.scale(0.0);
    }
}

/// 1-D convolution layer: kernel `(k, c_in, filters)` + bias `(filters,)`.
pub struct Conv1DLayer {
    kernel: Tensor,
    bias: Tensor,
    d_kernel: Tensor,
    d_bias: Tensor,
    padding: Padding,
    l2: f32,
    cached_input: Option<Tensor>,
}

impl Conv1DLayer {
    pub fn new(
        in_channels: usize,
        filters: usize,
        kernel: usize,
        padding: Padding,
        l2: f32,
        rng: &mut Rng,
    ) -> Self {
        let limit = glorot_limit(kernel * in_channels, kernel * filters);
        Conv1DLayer {
            kernel: Tensor::rand_uniform([kernel, in_channels, filters], -limit, limit, rng),
            bias: Tensor::zeros([filters]),
            d_kernel: Tensor::zeros([kernel, in_channels, filters]),
            d_bias: Tensor::zeros([filters]),
            padding,
            l2,
            cached_input: None,
        }
    }
}

impl Layer for Conv1DLayer {
    fn forward(&mut self, inputs: &[&Tensor], _training: bool, ws: &mut Workspace) -> Tensor {
        let x = inputs[0];
        let mut y = conv1d_forward_ws(x, &self.kernel, self.padding, ws);
        add_channel_bias(&mut y, &self.bias);
        cache_from(&mut self.cached_input, x, ws);
        y
    }

    fn backward(&mut self, dout: &Tensor, ws: &mut Workspace) -> Vec<Tensor> {
        let x = self.cached_input.as_ref().expect("backward before forward");
        let (dx, mut dk) = conv1d_backward_ws(x, &self.kernel, dout, self.padding, ws);
        if self.l2 > 0.0 {
            dk.axpy(self.l2, &self.kernel);
        }
        self.d_kernel.axpy(1.0, &dk);
        ws.recycle(dk);
        accumulate_channel_sums(dout, &mut self.d_bias);
        vec![dx]
    }

    fn visit_params(&self, f: &mut dyn FnMut(&str, &Tensor)) {
        f("kernel", &self.kernel);
        f("bias", &self.bias);
    }

    fn visit_params_mut(&mut self, f: &mut dyn FnMut(&str, &mut Tensor)) {
        f("kernel", &mut self.kernel);
        f("bias", &mut self.bias);
    }

    fn visit_updates(&mut self, f: &mut dyn FnMut(&str, &mut Tensor, &Tensor)) {
        f("kernel", &mut self.kernel, &self.d_kernel);
        f("bias", &mut self.bias, &self.d_bias);
    }

    fn zero_grads(&mut self) {
        self.d_kernel.scale(0.0);
        self.d_bias.scale(0.0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conv2d_bias_broadcasts_per_filter() {
        let mut rng = Rng::seed(1);
        let mut ws = Workspace::new();
        let mut layer = Conv2DLayer::new(1, 2, 1, Padding::Valid, 0.0, &mut rng);
        layer.kernel = Tensor::zeros([1, 1, 1, 2]);
        layer.bias = Tensor::from_vec([2], vec![5.0, -5.0]);
        let x = Tensor::zeros([1, 2, 2, 1]);
        let y = layer.forward(&[&x], true, &mut ws);
        for p in 0..4 {
            assert_eq!(y.data()[p * 2], 5.0);
            assert_eq!(y.data()[p * 2 + 1], -5.0);
        }
    }

    #[test]
    fn conv2d_gradient_check() {
        let mut rng = Rng::seed(2);
        let mut ws = Workspace::new();
        let mut layer = Conv2DLayer::new(2, 2, 3, Padding::Same, 0.0, &mut rng);
        let x = Tensor::rand_normal([1, 4, 4, 2], 0.0, 1.0, &mut rng);
        let y = layer.forward(&[&x], true, &mut ws);
        let dout = Tensor::ones(y.shape().dims().to_vec());
        let dx = layer.backward(&dout, &mut ws).remove(0);
        let eps = 1e-2f32;
        for i in (0..x.numel()).step_by(5) {
            let mut plus = x.clone();
            plus.data_mut()[i] += eps;
            let mut minus = x.clone();
            minus.data_mut()[i] -= eps;
            let num = (layer.forward(&[&plus], true, &mut ws).sum()
                - layer.forward(&[&minus], true, &mut ws).sum())
                / (2.0 * eps);
            assert!((num - dx.data()[i]).abs() < 2e-2, "dx[{i}]");
        }
    }

    #[test]
    fn l2_adds_weight_decay_to_kernel_grad() {
        let mut rng = Rng::seed(3);
        let x = Tensor::rand_normal([1, 3, 3, 1], 0.0, 1.0, &mut rng);
        let mk = |l2: f32| {
            let mut r = Rng::seed(4);
            let mut ws = Workspace::new();
            let mut layer = Conv2DLayer::new(1, 1, 3, Padding::Valid, l2, &mut r);
            let y = layer.forward(&[&x], true, &mut ws);
            let _ = layer.backward(&Tensor::ones(y.shape().dims().to_vec()), &mut ws);
            let mut grad = None;
            let mut kern = None;
            layer.visit_updates(&mut |n, p, g| {
                if n == "kernel" {
                    grad = Some(g.clone());
                    kern = Some(p.clone());
                }
            });
            (kern.unwrap(), grad.unwrap())
        };
        let (k0, g0) = mk(0.0);
        let (k1, g1) = mk(0.1);
        assert!(k0.approx_eq(&k1, 0.0), "same seed, same init");
        let mut expected = g0.clone();
        expected.axpy(0.1, &k0);
        assert!(g1.approx_eq(&expected, 1e-5));
    }

    #[test]
    fn conv1d_gradient_check() {
        let mut rng = Rng::seed(5);
        let mut ws = Workspace::new();
        let mut layer = Conv1DLayer::new(2, 3, 3, Padding::Valid, 0.0, &mut rng);
        let x = Tensor::rand_normal([2, 7, 2], 0.0, 1.0, &mut rng);
        let y = layer.forward(&[&x], true, &mut ws);
        let dout = Tensor::ones(y.shape().dims().to_vec());
        let dx = layer.backward(&dout, &mut ws).remove(0);
        let eps = 1e-2f32;
        for i in (0..x.numel()).step_by(4) {
            let mut plus = x.clone();
            plus.data_mut()[i] += eps;
            let mut minus = x.clone();
            minus.data_mut()[i] -= eps;
            let num = (layer.forward(&[&plus], true, &mut ws).sum()
                - layer.forward(&[&minus], true, &mut ws).sum())
                / (2.0 * eps);
            assert!((num - dx.data()[i]).abs() < 2e-2, "dx[{i}]");
        }
    }
}
