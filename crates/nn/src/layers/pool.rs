//! Max-pooling layers.

use super::Layer;
use swt_tensor::{
    maxpool1d_backward, maxpool1d_forward, maxpool2d_backward, maxpool2d_forward, Tensor, Workspace,
};

/// 2-D max pooling over `(batch, h, w, c)`.
pub struct MaxPool2DLayer {
    size: usize,
    stride: usize,
    cached_argmax: Vec<u32>,
    cached_input_shape: Vec<usize>,
}

impl MaxPool2DLayer {
    pub fn new(size: usize, stride: usize) -> Self {
        MaxPool2DLayer { size, stride, cached_argmax: Vec::new(), cached_input_shape: Vec::new() }
    }
}

impl Layer for MaxPool2DLayer {
    fn forward(&mut self, inputs: &[&Tensor], _training: bool, _ws: &mut Workspace) -> Tensor {
        let x = inputs[0];
        let (y, arg) = maxpool2d_forward(x, self.size, self.stride);
        self.cached_argmax = arg;
        self.cached_input_shape.clear();
        self.cached_input_shape.extend_from_slice(x.shape().dims());
        y
    }

    fn backward(&mut self, dout: &Tensor, _ws: &mut Workspace) -> Vec<Tensor> {
        vec![maxpool2d_backward(&self.cached_input_shape, dout, &self.cached_argmax)]
    }
}

/// 1-D max pooling over `(batch, w, c)`.
pub struct MaxPool1DLayer {
    size: usize,
    stride: usize,
    cached_argmax: Vec<u32>,
    cached_input_shape: Vec<usize>,
}

impl MaxPool1DLayer {
    pub fn new(size: usize, stride: usize) -> Self {
        MaxPool1DLayer { size, stride, cached_argmax: Vec::new(), cached_input_shape: Vec::new() }
    }
}

impl Layer for MaxPool1DLayer {
    fn forward(&mut self, inputs: &[&Tensor], _training: bool, _ws: &mut Workspace) -> Tensor {
        let x = inputs[0];
        let (y, arg) = maxpool1d_forward(x, self.size, self.stride);
        self.cached_argmax = arg;
        self.cached_input_shape.clear();
        self.cached_input_shape.extend_from_slice(x.shape().dims());
        y
    }

    fn backward(&mut self, dout: &Tensor, _ws: &mut Workspace) -> Vec<Tensor> {
        vec![maxpool1d_backward(&self.cached_input_shape, dout, &self.cached_argmax)]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pool_layer_round_trip() {
        let mut layer = MaxPool2DLayer::new(2, 2);
        let mut ws = Workspace::new();
        #[rustfmt::skip]
        let x = Tensor::from_vec([1, 2, 4, 1], vec![
            1., 2., 3., 4.,
            8., 7., 6., 5.,
        ]);
        let y = layer.forward(&[&x], true, &mut ws);
        assert_eq!(y.data(), &[8., 6.]);
        let dx = layer.backward(&Tensor::from_vec([1, 1, 2, 1], vec![1.0, 2.0]), &mut ws).remove(0);
        assert_eq!(dx.data(), &[0., 0., 0., 0., 1., 0., 2., 0.]);
    }

    #[test]
    fn pool1d_layer_has_no_params() {
        let mut layer = MaxPool1DLayer::new(2, 2);
        let mut ws = Workspace::new();
        let mut count = 0;
        layer.visit_params(&mut |_, _| count += 1);
        layer.visit_updates(&mut |_, _, _| count += 1);
        assert_eq!(count, 0);
        let x = Tensor::from_vec([1, 4, 1], vec![1., 3., 2., 4.]);
        assert_eq!(layer.forward(&[&x], false, &mut ws).data(), &[3., 4.]);
    }
}
