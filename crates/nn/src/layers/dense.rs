//! Fully-connected layer with optional fused activation.

use super::{cache_from, glorot_limit, Layer};
use crate::spec::Activation;
use swt_tensor::{matmul_at_ws, matmul_bt_ws, matmul_ws, Rng, Tensor, Workspace};

/// `y = act(x · W + b)` for rank-2 input `(batch, in_features)`.
pub struct DenseLayer {
    kernel: Tensor,
    bias: Tensor,
    d_kernel: Tensor,
    d_bias: Tensor,
    activation: Option<Activation>,
    cached_input: Option<Tensor>,
    cached_output: Option<Tensor>,
}

impl DenseLayer {
    /// Glorot-uniform initialised dense layer.
    pub fn new(
        in_features: usize,
        units: usize,
        activation: Option<Activation>,
        rng: &mut Rng,
    ) -> Self {
        let limit = glorot_limit(in_features, units);
        DenseLayer {
            kernel: Tensor::rand_uniform([in_features, units], -limit, limit, rng),
            bias: Tensor::zeros([units]),
            d_kernel: Tensor::zeros([in_features, units]),
            d_bias: Tensor::zeros([units]),
            activation,
            cached_input: None,
            cached_output: None,
        }
    }
}

pub(crate) fn apply_activation_inplace(t: &mut Tensor, a: Activation) {
    match a {
        Activation::Relu => t.data_mut().iter_mut().for_each(|v| *v = v.max(0.0)),
        Activation::Tanh => t.data_mut().iter_mut().for_each(|v| *v = v.tanh()),
        Activation::Sigmoid => t.data_mut().iter_mut().for_each(|v| *v = 1.0 / (1.0 + (-*v).exp())),
    }
}

/// Scalar activation derivative expressed via the forward output.
pub(crate) fn activation_grad_scalar(y: f32, a: Activation) -> f32 {
    match a {
        Activation::Relu => {
            if y > 0.0 {
                1.0
            } else {
                0.0
            }
        }
        Activation::Tanh => 1.0 - y * y,
        Activation::Sigmoid => y * (1.0 - y),
    }
}

impl Layer for DenseLayer {
    fn forward(&mut self, inputs: &[&Tensor], _training: bool, ws: &mut Workspace) -> Tensor {
        let x = inputs[0];
        assert_eq!(x.shape().rank(), 2, "dense input must be (batch, features)");
        let mut y = matmul_ws(x, &self.kernel, ws);
        // Broadcast bias over rows.
        let units = self.bias.numel();
        for row in y.data_mut().chunks_mut(units) {
            for (v, &b) in row.iter_mut().zip(self.bias.data()) {
                *v += b;
            }
        }
        cache_from(&mut self.cached_input, x, ws);
        match self.activation {
            Some(a) => {
                apply_activation_inplace(&mut y, a);
                cache_from(&mut self.cached_output, &y, ws);
            }
            None => {
                // Backward only needs the output for the activation gradient.
                if let Some(old) = self.cached_output.take() {
                    ws.recycle(old);
                }
            }
        }
        y
    }

    fn backward(&mut self, dout: &Tensor, ws: &mut Workspace) -> Vec<Tensor> {
        let x = self.cached_input.as_ref().expect("backward before forward");
        let mut dpre = ws.take_tensor(dout.shape().dims().to_vec());
        match self.activation {
            Some(a) => {
                let y = self.cached_output.as_ref().unwrap();
                for ((dp, &g), &yv) in dpre.data_mut().iter_mut().zip(dout.data()).zip(y.data()) {
                    *dp = g * activation_grad_scalar(yv, a);
                }
            }
            None => dpre.data_mut().copy_from_slice(dout.data()),
        }
        let dk = matmul_at_ws(x, &dpre, ws);
        self.d_kernel.axpy(1.0, &dk);
        ws.recycle(dk);
        let units = self.bias.numel();
        let db = self.d_bias.data_mut();
        for row in dpre.data().chunks(units) {
            for (o, &v) in db.iter_mut().zip(row) {
                *o += v;
            }
        }
        let dx = matmul_bt_ws(&dpre, &self.kernel, ws);
        ws.recycle(dpre);
        vec![dx]
    }

    fn visit_params(&self, f: &mut dyn FnMut(&str, &Tensor)) {
        f("kernel", &self.kernel);
        f("bias", &self.bias);
    }

    fn visit_params_mut(&mut self, f: &mut dyn FnMut(&str, &mut Tensor)) {
        f("kernel", &mut self.kernel);
        f("bias", &mut self.bias);
    }

    fn visit_updates(&mut self, f: &mut dyn FnMut(&str, &mut Tensor, &Tensor)) {
        f("kernel", &mut self.kernel, &self.d_kernel);
        f("bias", &mut self.bias, &self.d_bias);
    }

    fn zero_grads(&mut self) {
        self.d_kernel.scale(0.0);
        self.d_bias.scale(0.0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_is_affine_map() {
        let mut rng = Rng::seed(1);
        let mut ws = Workspace::new();
        let mut layer = DenseLayer::new(3, 2, None, &mut rng);
        // Overwrite with known weights.
        layer.kernel = Tensor::from_vec([3, 2], vec![1., 0., 0., 1., 1., 1.]);
        layer.bias = Tensor::from_vec([2], vec![10., 20.]);
        let x = Tensor::from_vec([1, 3], vec![1., 2., 3.]);
        let y = layer.forward(&[&x], true, &mut ws);
        assert_eq!(y.data(), &[14., 25.]);
    }

    #[test]
    fn gradient_check_with_activation() {
        for act in [None, Some(Activation::Relu), Some(Activation::Tanh), Some(Activation::Sigmoid)]
        {
            let mut rng = Rng::seed(7);
            let mut ws = Workspace::new();
            let mut layer = DenseLayer::new(4, 3, act, &mut rng);
            let x = Tensor::rand_normal([2, 4], 0.3, 1.0, &mut rng);
            let y = layer.forward(&[&x], true, &mut ws);
            let dout = Tensor::ones(y.shape().dims().to_vec());
            let dx = layer.backward(&dout, &mut ws).remove(0);
            let eps = 1e-2f32;
            // Input gradient.
            for i in 0..x.numel() {
                let mut plus = x.clone();
                plus.data_mut()[i] += eps;
                let mut minus = x.clone();
                minus.data_mut()[i] -= eps;
                let num = (layer.forward(&[&plus], true, &mut ws).sum()
                    - layer.forward(&[&minus], true, &mut ws).sum())
                    / (2.0 * eps);
                assert!((num - dx.data()[i]).abs() < 2e-2, "{act:?} dx[{i}]");
            }
            // Kernel gradient (re-run forward to restore cache, then read grads).
            layer.zero_grads();
            let _ = layer.forward(&[&x], true, &mut ws);
            let _ = layer.backward(&dout, &mut ws);
            let mut grads: Vec<(String, Tensor)> = Vec::new();
            layer.visit_updates(&mut |n, _p, g| grads.push((n.to_string(), g.clone())));
            let dk = &grads.iter().find(|(n, _)| n == "kernel").unwrap().1;
            for i in 0..layer.kernel.numel() {
                let orig = layer.kernel.data()[i];
                layer.kernel.data_mut()[i] = orig + eps;
                let plus = layer.forward(&[&x], true, &mut ws).sum();
                layer.kernel.data_mut()[i] = orig - eps;
                let minus = layer.forward(&[&x], true, &mut ws).sum();
                layer.kernel.data_mut()[i] = orig;
                let num = (plus - minus) / (2.0 * eps);
                // Tolerance allows for a ReLU pre-activation sitting within
                // eps of the kink, which biases the central difference.
                assert!((num - dk.data()[i]).abs() < 4e-2, "{act:?} dk[{i}]");
            }
        }
    }

    #[test]
    fn gradients_accumulate_until_zeroed() {
        let mut rng = Rng::seed(3);
        let mut ws = Workspace::new();
        let mut layer = DenseLayer::new(2, 2, None, &mut rng);
        let x = Tensor::ones([1, 2]);
        let dout = Tensor::ones([1, 2]);
        let _ = layer.forward(&[&x], true, &mut ws);
        let _ = layer.backward(&dout, &mut ws);
        let mut once = Tensor::zeros([2, 2]);
        layer.visit_updates(&mut |n, _p, g| {
            if n == "kernel" {
                once = g.clone();
            }
        });
        let _ = layer.forward(&[&x], true, &mut ws);
        let _ = layer.backward(&dout, &mut ws);
        layer.visit_updates(&mut |n, _p, g| {
            if n == "kernel" {
                assert!(g.approx_eq(
                    &{
                        let mut t = once.clone();
                        t.scale(2.0);
                        t
                    },
                    1e-6
                ));
            }
        });
        layer.zero_grads();
        layer.visit_updates(&mut |_n, _p, g| assert_eq!(g.sum(), 0.0));
    }

    #[test]
    fn repeated_steps_reuse_workspace_buffers() {
        let mut rng = Rng::seed(9);
        let mut ws = Workspace::new();
        let mut layer = DenseLayer::new(8, 4, Some(Activation::Tanh), &mut rng);
        let x = Tensor::rand_normal([16, 8], 0.0, 1.0, &mut rng);
        let dout = Tensor::ones([16, 4]);
        // Warm-up batch populates the pool; afterwards the pool size is
        // stable batch over batch (output tensors are recycled by the caller,
        // here manually).
        let y = layer.forward(&[&x], true, &mut ws);
        let dx = layer.backward(&dout, &mut ws).remove(0);
        ws.recycle(dx);
        ws.recycle(y);
        let pooled = ws.pooled();
        for _ in 0..3 {
            let y = layer.forward(&[&x], true, &mut ws);
            let dx = layer.backward(&dout, &mut ws).remove(0);
            ws.recycle(dx);
            ws.recycle(y);
            assert_eq!(ws.pooled(), pooled, "steady state must not grow the pool");
        }
    }
}
