//! Fully-connected layer with optional fused activation.

use super::{glorot_limit, Layer};
use crate::spec::Activation;
use swt_tensor::{
    matmul, matmul_at, matmul_bt, relu, relu_grad_from_output, sigmoid, sigmoid_grad_from_output,
    tanh_act, tanh_grad_from_output, Rng, Tensor,
};

/// `y = act(x · W + b)` for rank-2 input `(batch, in_features)`.
pub struct DenseLayer {
    kernel: Tensor,
    bias: Tensor,
    d_kernel: Tensor,
    d_bias: Tensor,
    activation: Option<Activation>,
    cached_input: Option<Tensor>,
    cached_output: Option<Tensor>,
}

impl DenseLayer {
    /// Glorot-uniform initialised dense layer.
    pub fn new(in_features: usize, units: usize, activation: Option<Activation>, rng: &mut Rng) -> Self {
        let limit = glorot_limit(in_features, units);
        DenseLayer {
            kernel: Tensor::rand_uniform([in_features, units], -limit, limit, rng),
            bias: Tensor::zeros([units]),
            d_kernel: Tensor::zeros([in_features, units]),
            d_bias: Tensor::zeros([units]),
            activation,
            cached_input: None,
            cached_output: None,
        }
    }
}

pub(crate) fn apply_activation(x: &Tensor, a: Activation) -> Tensor {
    match a {
        Activation::Relu => relu(x),
        Activation::Tanh => tanh_act(x),
        Activation::Sigmoid => sigmoid(x),
    }
}

pub(crate) fn activation_grad_from_output(y: &Tensor, a: Activation) -> Tensor {
    match a {
        Activation::Relu => relu_grad_from_output(y),
        Activation::Tanh => tanh_grad_from_output(y),
        Activation::Sigmoid => sigmoid_grad_from_output(y),
    }
}

impl Layer for DenseLayer {
    fn forward(&mut self, inputs: &[&Tensor], _training: bool) -> Tensor {
        let x = inputs[0];
        assert_eq!(x.shape().rank(), 2, "dense input must be (batch, features)");
        let mut y = matmul(x, &self.kernel);
        // Broadcast bias over rows.
        let units = self.bias.numel();
        for row in y.data_mut().chunks_mut(units) {
            for (v, &b) in row.iter_mut().zip(self.bias.data()) {
                *v += b;
            }
        }
        let y = match self.activation {
            Some(a) => apply_activation(&y, a),
            None => y,
        };
        self.cached_input = Some(x.clone());
        self.cached_output = Some(y.clone());
        y
    }

    fn backward(&mut self, dout: &Tensor) -> Vec<Tensor> {
        let x = self.cached_input.as_ref().expect("backward before forward");
        let dpre = match self.activation {
            Some(a) => {
                let y = self.cached_output.as_ref().unwrap();
                dout.zip_map(&activation_grad_from_output(y, a), |g, d| g * d)
            }
            None => dout.clone(),
        };
        self.d_kernel.axpy(1.0, &matmul_at(x, &dpre));
        self.d_bias.axpy(1.0, &dpre.col_sums());
        vec![matmul_bt(&dpre, &self.kernel)]
    }

    fn visit_params(&self, f: &mut dyn FnMut(&str, &Tensor)) {
        f("kernel", &self.kernel);
        f("bias", &self.bias);
    }

    fn visit_params_mut(&mut self, f: &mut dyn FnMut(&str, &mut Tensor)) {
        f("kernel", &mut self.kernel);
        f("bias", &mut self.bias);
    }

    fn visit_updates(&mut self, f: &mut dyn FnMut(&str, &mut Tensor, &Tensor)) {
        f("kernel", &mut self.kernel, &self.d_kernel);
        f("bias", &mut self.bias, &self.d_bias);
    }

    fn zero_grads(&mut self) {
        self.d_kernel.scale(0.0);
        self.d_bias.scale(0.0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_is_affine_map() {
        let mut rng = Rng::seed(1);
        let mut layer = DenseLayer::new(3, 2, None, &mut rng);
        // Overwrite with known weights.
        layer.kernel = Tensor::from_vec([3, 2], vec![1., 0., 0., 1., 1., 1.]);
        layer.bias = Tensor::from_vec([2], vec![10., 20.]);
        let x = Tensor::from_vec([1, 3], vec![1., 2., 3.]);
        let y = layer.forward(&[&x], true);
        assert_eq!(y.data(), &[14., 25.]);
    }

    #[test]
    fn gradient_check_with_activation() {
        for act in [None, Some(Activation::Relu), Some(Activation::Tanh), Some(Activation::Sigmoid)] {
            let mut rng = Rng::seed(7);
            let mut layer = DenseLayer::new(4, 3, act, &mut rng);
            let x = Tensor::rand_normal([2, 4], 0.3, 1.0, &mut rng);
            let y = layer.forward(&[&x], true);
            let dout = Tensor::ones(y.shape().dims().to_vec());
            let dx = layer.backward(&dout).remove(0);
            let eps = 1e-2f32;
            // Input gradient.
            for i in 0..x.numel() {
                let mut plus = x.clone();
                plus.data_mut()[i] += eps;
                let mut minus = x.clone();
                minus.data_mut()[i] -= eps;
                let num =
                    (layer.forward(&[&plus], true).sum() - layer.forward(&[&minus], true).sum())
                        / (2.0 * eps);
                assert!((num - dx.data()[i]).abs() < 2e-2, "{act:?} dx[{i}]");
            }
            // Kernel gradient (re-run forward to restore cache, then read grads).
            layer.zero_grads();
            let _ = layer.forward(&[&x], true);
            let _ = layer.backward(&dout);
            let mut grads: Vec<(String, Tensor)> = Vec::new();
            layer.visit_updates(&mut |n, _p, g| grads.push((n.to_string(), g.clone())));
            let dk = &grads.iter().find(|(n, _)| n == "kernel").unwrap().1;
            for i in 0..layer.kernel.numel() {
                let orig = layer.kernel.data()[i];
                layer.kernel.data_mut()[i] = orig + eps;
                let plus = layer.forward(&[&x], true).sum();
                layer.kernel.data_mut()[i] = orig - eps;
                let minus = layer.forward(&[&x], true).sum();
                layer.kernel.data_mut()[i] = orig;
                let num = (plus - minus) / (2.0 * eps);
                assert!((num - dk.data()[i]).abs() < 2e-2, "{act:?} dk[{i}]");
            }
        }
    }

    #[test]
    fn gradients_accumulate_until_zeroed() {
        let mut rng = Rng::seed(3);
        let mut layer = DenseLayer::new(2, 2, None, &mut rng);
        let x = Tensor::ones([1, 2]);
        let dout = Tensor::ones([1, 2]);
        let _ = layer.forward(&[&x], true);
        let _ = layer.backward(&dout);
        let mut once = Tensor::zeros([2, 2]);
        layer.visit_updates(&mut |n, _p, g| {
            if n == "kernel" {
                once = g.clone();
            }
        });
        let _ = layer.forward(&[&x], true);
        let _ = layer.backward(&dout);
        layer.visit_updates(&mut |n, _p, g| {
            if n == "kernel" {
                assert!(g.approx_eq(&{
                    let mut t = once.clone();
                    t.scale(2.0);
                    t
                }, 1e-6));
            }
        });
        layer.zero_grads();
        layer.visit_updates(&mut |_n, _p, g| assert_eq!(g.sum(), 0.0));
    }
}
