//! Parameter-free layers: identity, activation, dropout, flatten, concat.

use super::dense::{activation_grad_from_output, apply_activation};
use super::Layer;
use crate::spec::Activation;
use swt_tensor::{Rng, Tensor};

/// Skip connection (`Identity` choice of the variable nodes).
pub struct IdentityLayer;

impl Layer for IdentityLayer {
    fn forward(&mut self, inputs: &[&Tensor], _training: bool) -> Tensor {
        inputs[0].clone()
    }

    fn backward(&mut self, dout: &Tensor) -> Vec<Tensor> {
        vec![dout.clone()]
    }
}

/// Standalone activation layer.
pub struct ActivationLayer {
    activation: Activation,
    cached_output: Option<Tensor>,
}

impl ActivationLayer {
    pub fn new(activation: Activation) -> Self {
        ActivationLayer { activation, cached_output: None }
    }
}

impl Layer for ActivationLayer {
    fn forward(&mut self, inputs: &[&Tensor], _training: bool) -> Tensor {
        let y = apply_activation(inputs[0], self.activation);
        self.cached_output = Some(y.clone());
        y
    }

    fn backward(&mut self, dout: &Tensor) -> Vec<Tensor> {
        let y = self.cached_output.as_ref().expect("backward before forward");
        vec![dout.zip_map(&activation_grad_from_output(y, self.activation), |g, d| g * d)]
    }
}

/// Inverted dropout: at training time each element is kept with probability
/// `1 - rate` and scaled by `1 / (1 - rate)`; inference is the identity.
pub struct DropoutLayer {
    rate: f32,
    rng: Rng,
    cached_mask: Option<Tensor>,
}

impl DropoutLayer {
    /// `rate` is the *drop* probability, in `[0, 1)`.
    pub fn new(rate: f32, rng: Rng) -> Self {
        assert!((0.0..1.0).contains(&rate), "dropout rate must be in [0, 1)");
        DropoutLayer { rate, rng, cached_mask: None }
    }
}

impl Layer for DropoutLayer {
    fn forward(&mut self, inputs: &[&Tensor], training: bool) -> Tensor {
        let x = inputs[0];
        if !training || self.rate == 0.0 {
            self.cached_mask = None;
            return x.clone();
        }
        let keep = 1.0 - self.rate;
        let scale = 1.0 / keep;
        let mask_data: Vec<f32> = (0..x.numel())
            .map(|_| if self.rng.chance(keep as f64) { scale } else { 0.0 })
            .collect();
        let mask = Tensor::from_vec(x.shape().dims().to_vec(), mask_data);
        let y = x.zip_map(&mask, |a, m| a * m);
        self.cached_mask = Some(mask);
        y
    }

    fn backward(&mut self, dout: &Tensor) -> Vec<Tensor> {
        match &self.cached_mask {
            Some(mask) => vec![dout.zip_map(mask, |g, m| g * m)],
            None => vec![dout.clone()],
        }
    }
}

/// Flatten per-sample dims to rank 1: `(b, d1, ..., dk) -> (b, d1·...·dk)`.
pub struct FlattenLayer {
    cached_input_shape: Vec<usize>,
}

impl FlattenLayer {
    pub fn new() -> Self {
        FlattenLayer { cached_input_shape: Vec::new() }
    }
}

impl Default for FlattenLayer {
    fn default() -> Self {
        Self::new()
    }
}

impl Layer for FlattenLayer {
    fn forward(&mut self, inputs: &[&Tensor], _training: bool) -> Tensor {
        let x = inputs[0];
        self.cached_input_shape = x.shape().dims().to_vec();
        let b = x.shape().dim(0);
        let rest = x.numel() / b;
        x.clone().reshape([b, rest])
    }

    fn backward(&mut self, dout: &Tensor) -> Vec<Tensor> {
        vec![dout.clone().reshape(self.cached_input_shape.clone())]
    }
}

/// Concatenate rank-2 inputs along the feature dimension (Uno's four-source
/// fusion point).
pub struct ConcatLayer {
    cached_widths: Vec<usize>,
}

impl ConcatLayer {
    pub fn new() -> Self {
        ConcatLayer { cached_widths: Vec::new() }
    }
}

impl Default for ConcatLayer {
    fn default() -> Self {
        Self::new()
    }
}

impl Layer for ConcatLayer {
    fn forward(&mut self, inputs: &[&Tensor], _training: bool) -> Tensor {
        assert!(inputs.len() >= 2, "concat needs >= 2 inputs");
        let b = inputs[0].shape().dim(0);
        self.cached_widths = inputs
            .iter()
            .map(|t| {
                assert_eq!(t.shape().rank(), 2, "concat expects rank-2 inputs");
                assert_eq!(t.shape().dim(0), b, "concat batch mismatch");
                t.shape().dim(1)
            })
            .collect();
        let total: usize = self.cached_widths.iter().sum();
        let mut data = Vec::with_capacity(b * total);
        for row in 0..b {
            for (t, &w) in inputs.iter().zip(&self.cached_widths) {
                data.extend_from_slice(&t.data()[row * w..(row + 1) * w]);
            }
        }
        Tensor::from_vec([b, total], data)
    }

    fn backward(&mut self, dout: &Tensor) -> Vec<Tensor> {
        let b = dout.shape().dim(0);
        let total: usize = self.cached_widths.iter().sum();
        let mut grads: Vec<Vec<f32>> =
            self.cached_widths.iter().map(|&w| Vec::with_capacity(b * w)).collect();
        for row in 0..b {
            let mut off = row * total;
            for (g, &w) in grads.iter_mut().zip(&self.cached_widths) {
                g.extend_from_slice(&dout.data()[off..off + w]);
                off += w;
            }
        }
        grads
            .into_iter()
            .zip(&self.cached_widths)
            .map(|(g, &w)| Tensor::from_vec([b, w], g))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_round_trip() {
        let mut layer = IdentityLayer;
        let x = Tensor::from_vec([2, 2], vec![1., 2., 3., 4.]);
        assert!(layer.forward(&[&x], true).approx_eq(&x, 0.0));
        assert!(layer.backward(&x)[0].approx_eq(&x, 0.0));
    }

    #[test]
    fn activation_layer_backward() {
        let mut layer = ActivationLayer::new(Activation::Relu);
        let x = Tensor::from_vec([1, 4], vec![-1.0, 2.0, -3.0, 4.0]);
        let y = layer.forward(&[&x], true);
        assert_eq!(y.data(), &[0.0, 2.0, 0.0, 4.0]);
        let dx = layer.backward(&Tensor::ones([1, 4])).remove(0);
        assert_eq!(dx.data(), &[0.0, 1.0, 0.0, 1.0]);
    }

    #[test]
    fn dropout_inference_is_identity() {
        let mut layer = DropoutLayer::new(0.5, Rng::seed(1));
        let x = Tensor::ones([4, 4]);
        assert!(layer.forward(&[&x], false).approx_eq(&x, 0.0));
    }

    #[test]
    fn dropout_training_preserves_expectation() {
        let mut layer = DropoutLayer::new(0.3, Rng::seed(2));
        let x = Tensor::ones([100, 100]);
        let y = layer.forward(&[&x], true);
        // E[y] = 1; mean over 10k elements should be close.
        assert!((y.mean() - 1.0).abs() < 0.05, "mean {}", y.mean());
        // Backward routes gradient only through kept elements.
        let dx = layer.backward(&Tensor::ones([100, 100])).remove(0);
        assert!(dx.approx_eq(&y, 1e-6));
    }

    #[test]
    fn dropout_rejects_rate_one() {
        let result = std::panic::catch_unwind(|| DropoutLayer::new(1.0, Rng::seed(3)));
        assert!(result.is_err());
    }

    #[test]
    fn flatten_round_trip() {
        let mut layer = FlattenLayer::new();
        let x = Tensor::from_vec([2, 2, 3], (0..12).map(|i| i as f32).collect());
        let y = layer.forward(&[&x], true);
        assert_eq!(y.shape().dims(), &[2, 6]);
        let dx = layer.backward(&y).remove(0);
        assert_eq!(dx.shape().dims(), &[2, 2, 3]);
        assert!(dx.approx_eq(&x, 0.0));
    }

    #[test]
    fn concat_forward_backward_partition() {
        let mut layer = ConcatLayer::new();
        let a = Tensor::from_vec([2, 2], vec![1., 2., 3., 4.]);
        let b = Tensor::from_vec([2, 1], vec![9., 8.]);
        let y = layer.forward(&[&a, &b], true);
        assert_eq!(y.shape().dims(), &[2, 3]);
        assert_eq!(y.data(), &[1., 2., 9., 3., 4., 8.]);
        let grads = layer.backward(&y);
        assert!(grads[0].approx_eq(&a, 0.0));
        assert!(grads[1].approx_eq(&b, 0.0));
    }

    #[test]
    #[should_panic(expected = "batch mismatch")]
    fn concat_batch_mismatch_panics() {
        let mut layer = ConcatLayer::new();
        let a = Tensor::zeros([2, 2]);
        let b = Tensor::zeros([3, 2]);
        layer.forward(&[&a, &b], true);
    }
}
