//! Parameter-free layers: identity, activation, dropout, flatten, concat.

use super::dense::{activation_grad_scalar, apply_activation_inplace};
use super::{cache_from, ws_copy, Layer};
use crate::spec::Activation;
use swt_tensor::{Rng, Tensor, Workspace};

/// Skip connection (`Identity` choice of the variable nodes).
pub struct IdentityLayer;

impl Layer for IdentityLayer {
    fn forward(&mut self, inputs: &[&Tensor], _training: bool, ws: &mut Workspace) -> Tensor {
        ws_copy(inputs[0], ws)
    }

    fn backward(&mut self, dout: &Tensor, ws: &mut Workspace) -> Vec<Tensor> {
        vec![ws_copy(dout, ws)]
    }
}

/// Standalone activation layer.
pub struct ActivationLayer {
    activation: Activation,
    cached_output: Option<Tensor>,
}

impl ActivationLayer {
    pub fn new(activation: Activation) -> Self {
        ActivationLayer { activation, cached_output: None }
    }
}

impl Layer for ActivationLayer {
    fn forward(&mut self, inputs: &[&Tensor], _training: bool, ws: &mut Workspace) -> Tensor {
        let mut y = ws_copy(inputs[0], ws);
        apply_activation_inplace(&mut y, self.activation);
        cache_from(&mut self.cached_output, &y, ws);
        y
    }

    fn backward(&mut self, dout: &Tensor, ws: &mut Workspace) -> Vec<Tensor> {
        let y = self.cached_output.as_ref().expect("backward before forward");
        let mut dx = ws.take_tensor(dout.shape().dims().to_vec());
        for ((o, &g), &yv) in dx.data_mut().iter_mut().zip(dout.data()).zip(y.data()) {
            *o = g * activation_grad_scalar(yv, self.activation);
        }
        vec![dx]
    }
}

/// Inverted dropout: at training time each element is kept with probability
/// `1 - rate` and scaled by `1 / (1 - rate)`; inference is the identity.
pub struct DropoutLayer {
    rate: f32,
    rng: Rng,
    cached_mask: Option<Tensor>,
}

impl DropoutLayer {
    /// `rate` is the *drop* probability, in `[0, 1)`.
    pub fn new(rate: f32, rng: Rng) -> Self {
        assert!((0.0..1.0).contains(&rate), "dropout rate must be in [0, 1)");
        DropoutLayer { rate, rng, cached_mask: None }
    }
}

impl Layer for DropoutLayer {
    fn forward(&mut self, inputs: &[&Tensor], training: bool, ws: &mut Workspace) -> Tensor {
        let x = inputs[0];
        if !training || self.rate == 0.0 {
            if let Some(old) = self.cached_mask.take() {
                ws.recycle(old);
            }
            return ws_copy(x, ws);
        }
        let keep = 1.0 - self.rate;
        let scale = 1.0 / keep;
        let mut mask = match self.cached_mask.take() {
            Some(old) if old.numel() == x.numel() => old.reshape(x.shape().dims().to_vec()),
            other => {
                if let Some(old) = other {
                    ws.recycle(old);
                }
                ws.take_tensor(x.shape().dims().to_vec())
            }
        };
        for m in mask.data_mut() {
            *m = if self.rng.chance(keep as f64) { scale } else { 0.0 };
        }
        let mut y = ws.take_tensor(x.shape().dims().to_vec());
        for ((o, &a), &m) in y.data_mut().iter_mut().zip(x.data()).zip(mask.data()) {
            *o = a * m;
        }
        self.cached_mask = Some(mask);
        y
    }

    fn backward(&mut self, dout: &Tensor, ws: &mut Workspace) -> Vec<Tensor> {
        match &self.cached_mask {
            Some(mask) => {
                let mut dx = ws.take_tensor(dout.shape().dims().to_vec());
                for ((o, &g), &m) in dx.data_mut().iter_mut().zip(dout.data()).zip(mask.data()) {
                    *o = g * m;
                }
                vec![dx]
            }
            None => vec![ws_copy(dout, ws)],
        }
    }
}

/// Flatten per-sample dims to rank 1: `(b, d1, ..., dk) -> (b, d1·...·dk)`.
pub struct FlattenLayer {
    cached_input_shape: Vec<usize>,
}

impl FlattenLayer {
    pub fn new() -> Self {
        FlattenLayer { cached_input_shape: Vec::new() }
    }
}

impl Default for FlattenLayer {
    fn default() -> Self {
        Self::new()
    }
}

impl Layer for FlattenLayer {
    fn forward(&mut self, inputs: &[&Tensor], _training: bool, ws: &mut Workspace) -> Tensor {
        let x = inputs[0];
        self.cached_input_shape.clear();
        self.cached_input_shape.extend_from_slice(x.shape().dims());
        let b = x.shape().dim(0);
        let rest = x.numel() / b;
        ws_copy(x, ws).reshape([b, rest])
    }

    fn backward(&mut self, dout: &Tensor, ws: &mut Workspace) -> Vec<Tensor> {
        vec![ws_copy(dout, ws).reshape(self.cached_input_shape.clone())]
    }
}

/// Concatenate rank-2 inputs along the feature dimension (Uno's four-source
/// fusion point).
pub struct ConcatLayer {
    cached_widths: Vec<usize>,
}

impl ConcatLayer {
    pub fn new() -> Self {
        ConcatLayer { cached_widths: Vec::new() }
    }
}

impl Default for ConcatLayer {
    fn default() -> Self {
        Self::new()
    }
}

impl Layer for ConcatLayer {
    fn forward(&mut self, inputs: &[&Tensor], _training: bool, ws: &mut Workspace) -> Tensor {
        assert!(inputs.len() >= 2, "concat needs >= 2 inputs");
        let b = inputs[0].shape().dim(0);
        self.cached_widths.clear();
        for t in inputs {
            assert_eq!(t.shape().rank(), 2, "concat expects rank-2 inputs");
            assert_eq!(t.shape().dim(0), b, "concat batch mismatch");
            self.cached_widths.push(t.shape().dim(1));
        }
        let total: usize = self.cached_widths.iter().sum();
        let mut out = ws.take_tensor([b, total]);
        let data = out.data_mut();
        for row in 0..b {
            let mut off = row * total;
            for (t, &w) in inputs.iter().zip(&self.cached_widths) {
                data[off..off + w].copy_from_slice(&t.data()[row * w..(row + 1) * w]);
                off += w;
            }
        }
        out
    }

    fn backward(&mut self, dout: &Tensor, ws: &mut Workspace) -> Vec<Tensor> {
        let b = dout.shape().dim(0);
        let total: usize = self.cached_widths.iter().sum();
        let mut grads: Vec<Tensor> =
            self.cached_widths.iter().map(|&w| ws.take_tensor([b, w])).collect();
        for row in 0..b {
            let mut off = row * total;
            for (g, &w) in grads.iter_mut().zip(&self.cached_widths) {
                g.data_mut()[row * w..(row + 1) * w].copy_from_slice(&dout.data()[off..off + w]);
                off += w;
            }
        }
        grads
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_round_trip() {
        let mut layer = IdentityLayer;
        let mut ws = Workspace::new();
        let x = Tensor::from_vec([2, 2], vec![1., 2., 3., 4.]);
        assert!(layer.forward(&[&x], true, &mut ws).approx_eq(&x, 0.0));
        assert!(layer.backward(&x, &mut ws)[0].approx_eq(&x, 0.0));
    }

    #[test]
    fn activation_layer_backward() {
        let mut layer = ActivationLayer::new(Activation::Relu);
        let mut ws = Workspace::new();
        let x = Tensor::from_vec([1, 4], vec![-1.0, 2.0, -3.0, 4.0]);
        let y = layer.forward(&[&x], true, &mut ws);
        assert_eq!(y.data(), &[0.0, 2.0, 0.0, 4.0]);
        let dx = layer.backward(&Tensor::ones([1, 4]), &mut ws).remove(0);
        assert_eq!(dx.data(), &[0.0, 1.0, 0.0, 1.0]);
    }

    #[test]
    fn dropout_inference_is_identity() {
        let mut layer = DropoutLayer::new(0.5, Rng::seed(1));
        let mut ws = Workspace::new();
        let x = Tensor::ones([4, 4]);
        assert!(layer.forward(&[&x], false, &mut ws).approx_eq(&x, 0.0));
    }

    #[test]
    fn dropout_training_preserves_expectation() {
        let mut layer = DropoutLayer::new(0.3, Rng::seed(2));
        let mut ws = Workspace::new();
        let x = Tensor::ones([100, 100]);
        let y = layer.forward(&[&x], true, &mut ws);
        // E[y] = 1; mean over 10k elements should be close.
        assert!((y.mean() - 1.0).abs() < 0.05, "mean {}", y.mean());
        // Backward routes gradient only through kept elements.
        let dx = layer.backward(&Tensor::ones([100, 100]), &mut ws).remove(0);
        assert!(dx.approx_eq(&y, 1e-6));
    }

    #[test]
    fn dropout_rejects_rate_one() {
        let result = std::panic::catch_unwind(|| DropoutLayer::new(1.0, Rng::seed(3)));
        assert!(result.is_err());
    }

    #[test]
    fn flatten_round_trip() {
        let mut layer = FlattenLayer::new();
        let mut ws = Workspace::new();
        let x = Tensor::from_vec([2, 2, 3], (0..12).map(|i| i as f32).collect());
        let y = layer.forward(&[&x], true, &mut ws);
        assert_eq!(y.shape().dims(), &[2, 6]);
        let dx = layer.backward(&y, &mut ws).remove(0);
        assert_eq!(dx.shape().dims(), &[2, 2, 3]);
        assert!(dx.approx_eq(&x, 0.0));
    }

    #[test]
    fn concat_forward_backward_partition() {
        let mut layer = ConcatLayer::new();
        let mut ws = Workspace::new();
        let a = Tensor::from_vec([2, 2], vec![1., 2., 3., 4.]);
        let b = Tensor::from_vec([2, 1], vec![9., 8.]);
        let y = layer.forward(&[&a, &b], true, &mut ws);
        assert_eq!(y.shape().dims(), &[2, 3]);
        assert_eq!(y.data(), &[1., 2., 9., 3., 4., 8.]);
        let grads = layer.backward(&y, &mut ws);
        assert!(grads[0].approx_eq(&a, 0.0));
        assert!(grads[1].approx_eq(&b, 0.0));
    }

    #[test]
    #[should_panic(expected = "batch mismatch")]
    fn concat_batch_mismatch_panics() {
        let mut layer = ConcatLayer::new();
        let mut ws = Workspace::new();
        let a = Tensor::zeros([2, 2]);
        let b = Tensor::zeros([3, 2]);
        layer.forward(&[&a, &b], true, &mut ws);
    }
}
