//! Optimizers: Adam (the paper's configuration) and plain SGD.

use crate::model::Model;
use swt_tensor::Tensor;

/// Adam hyperparameters. [`AdamConfig::default`] matches the paper exactly:
/// lr 1e-3, β₁ 0.9, β₂ 0.999, ε 1e-7 (Section VII-A).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdamConfig {
    pub lr: f32,
    pub beta1: f32,
    pub beta2: f32,
    pub eps: f32,
}

impl Default for AdamConfig {
    fn default() -> Self {
        AdamConfig { lr: 1e-3, beta1: 0.9, beta2: 0.999, eps: 1e-7 }
    }
}

/// Adam optimizer with per-parameter first/second-moment state.
///
/// Moments are keyed by the parameter's position in the model's
/// deterministic [`Model::visit_updates_fast`] enumeration, so the per-step
/// hot path never formats or hashes parameter names. One `Adam` instance
/// must therefore only ever be stepped against one model.
pub struct Adam {
    cfg: AdamConfig,
    t: u64,
    moments: Vec<(Tensor, Tensor)>,
}

impl Adam {
    pub fn new(cfg: AdamConfig) -> Self {
        Adam { cfg, t: 0, moments: Vec::new() }
    }

    /// Apply one update step from the gradients currently accumulated in the
    /// model's layers.
    pub fn step(&mut self, model: &mut Model) {
        self.t += 1;
        let t = self.t as i32;
        let cfg = self.cfg;
        let bc1 = 1.0 - cfg.beta1.powi(t);
        let bc2 = 1.0 - cfg.beta2.powi(t);
        let moments = &mut self.moments;
        let mut idx = 0usize;
        model.visit_updates_fast(&mut |param, grad| {
            if idx == moments.len() {
                moments.push((
                    Tensor::zeros(param.shape().dims().to_vec()),
                    Tensor::zeros(param.shape().dims().to_vec()),
                ));
            }
            let (m, v) = &mut moments[idx];
            idx += 1;
            debug_assert_eq!(m.numel(), param.numel(), "Adam stepped against a different model");
            let (md, vd, pd, gd) = (m.data_mut(), v.data_mut(), param.data_mut(), grad.data());
            for i in 0..pd.len() {
                md[i] = cfg.beta1 * md[i] + (1.0 - cfg.beta1) * gd[i];
                vd[i] = cfg.beta2 * vd[i] + (1.0 - cfg.beta2) * gd[i] * gd[i];
                let mhat = md[i] / bc1;
                let vhat = vd[i] / bc2;
                pd[i] -= cfg.lr * mhat / (vhat.sqrt() + cfg.eps);
            }
        });
    }

    /// Number of steps taken so far.
    pub fn steps(&self) -> u64 {
        self.t
    }
}

/// Plain SGD, used as a reference in tests and ablations.
pub struct Sgd {
    pub lr: f32,
}

impl Sgd {
    pub fn new(lr: f32) -> Self {
        Sgd { lr }
    }

    /// `param -= lr * grad` for every parameter.
    pub fn step(&mut self, model: &mut Model) {
        let lr = self.lr;
        model.visit_updates_fast(&mut |param, grad| {
            param.axpy(-lr, grad);
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{LayerSpec, ModelSpec};
    use swt_tensor::Rng;

    fn linear_model() -> Model {
        let spec = ModelSpec::chain(vec![2], vec![LayerSpec::Dense { units: 1, activation: None }])
            .unwrap();
        Model::build(&spec, 1).unwrap()
    }

    /// One hand-computed Adam step on a single known gradient.
    #[test]
    fn adam_first_step_matches_closed_form() {
        let mut model = linear_model();
        // Force a known gradient by a forward/backward on fixed data.
        let x = Tensor::from_vec([1, 2], vec![1.0, 2.0]);
        model.zero_grads();
        let _ = model.forward(&[&x], true);
        model.backward(&Tensor::from_vec([1, 1], vec![1.0]));
        // Capture params and grads before the step.
        let mut before = Vec::new();
        model.visit_updates(&mut |n, p, g| before.push((n.to_string(), p.clone(), g.clone())));

        let cfg = AdamConfig::default();
        let mut adam = Adam::new(cfg);
        adam.step(&mut model);
        assert_eq!(adam.steps(), 1);

        let mut after = Vec::new();
        model.visit_updates(&mut |n, p, _g| after.push((n.to_string(), p.clone())));
        for ((_, p0, g), (_, p1)) in before.iter().zip(after.iter()) {
            for i in 0..p0.numel() {
                // After one step: mhat = g, vhat = g², so delta = lr·g/(|g|+ε).
                let g = g.data()[i];
                let expected = p0.data()[i] - cfg.lr * g / (g.abs() + cfg.eps);
                assert!(
                    (p1.data()[i] - expected).abs() < 1e-6,
                    "param[{i}]: got {}, expected {expected}",
                    p1.data()[i]
                );
            }
        }
    }

    #[test]
    fn adam_converges_on_quadratic() {
        // Fit y = x·w with w* = [2, -3] via MAE-free squared loss gradient.
        let mut model = linear_model();
        let mut adam = Adam::new(AdamConfig { lr: 0.05, ..Default::default() });
        let mut rng = Rng::seed(5);
        for _ in 0..500 {
            let x = Tensor::rand_normal([16, 2], 0.0, 1.0, &mut rng);
            let target: Vec<f32> =
                (0..16).map(|r| 2.0 * x.at(&[r, 0]) - 3.0 * x.at(&[r, 1]) + 0.5).collect();
            let y = model.forward(&[&x], true);
            let grad = Tensor::from_vec(
                [16, 1],
                y.data().iter().zip(&target).map(|(&p, &t)| 2.0 * (p - t) / 16.0).collect(),
            );
            model.zero_grads();
            model.backward(&grad);
            adam.step(&mut model);
        }
        let params = model.named_params();
        let kernel = &params[0].1;
        let bias = &params[1].1;
        assert!((kernel.data()[0] - 2.0).abs() < 0.1, "w0 {}", kernel.data()[0]);
        assert!((kernel.data()[1] + 3.0).abs() < 0.1, "w1 {}", kernel.data()[1]);
        assert!((bias.data()[0] - 0.5).abs() < 0.1, "b {}", bias.data()[0]);
    }

    #[test]
    fn sgd_step_is_axpy() {
        let mut model = linear_model();
        let x = Tensor::from_vec([1, 2], vec![1.0, -1.0]);
        model.zero_grads();
        let _ = model.forward(&[&x], true);
        model.backward(&Tensor::from_vec([1, 1], vec![2.0]));
        let mut before = Vec::new();
        model.visit_updates(&mut |_n, p, g| before.push((p.clone(), g.clone())));
        Sgd::new(0.1).step(&mut model);
        let mut idx = 0;
        model.visit_updates(&mut |_n, p, _g| {
            let (p0, g) = &before[idx];
            for i in 0..p.numel() {
                assert!((p.data()[i] - (p0.data()[i] - 0.1 * g.data()[i])).abs() < 1e-7);
            }
            idx += 1;
        });
    }
}
