//! Losses and objective metrics.
//!
//! Table I: CIFAR-10, MNIST and NT3 train with categorical cross-entropy and
//! report accuracy; Uno trains with mean absolute error and reports `R²`.

use swt_tensor::{softmax_rows, Tensor, Workspace};

/// Training loss functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Loss {
    /// Softmax + categorical cross-entropy over one-hot targets.
    CategoricalCrossEntropy,
    /// Mean absolute error for regression.
    MeanAbsoluteError,
}

impl Loss {
    /// Compute the scalar loss and the gradient w.r.t. the prediction.
    ///
    /// * CE: `pred` is logits `(batch, classes)`, `target` one-hot of the
    ///   same shape.
    /// * MAE: `pred` and `target` are `(batch, outputs)`.
    pub fn forward_backward(&self, pred: &Tensor, target: &Tensor) -> (f64, Tensor) {
        let mut ws = Workspace::new();
        self.forward_backward_ws(pred, target, &mut ws)
    }

    /// Workspace-drawing variant of [`Loss::forward_backward`]: the gradient
    /// tensor comes from `ws`, so the training loop can recycle it after
    /// the backward pass.
    pub fn forward_backward_ws(
        &self,
        pred: &Tensor,
        target: &Tensor,
        ws: &mut Workspace,
    ) -> (f64, Tensor) {
        assert_eq!(pred.shape(), target.shape(), "loss shape mismatch");
        match self {
            Loss::CategoricalCrossEntropy => {
                let batch = pred.shape().dim(0) as f64;
                let probs = softmax_rows(pred);
                let mut loss = 0.0f64;
                for (&p, &t) in probs.data().iter().zip(target.data()) {
                    if t > 0.0 {
                        loss -= f64::from(t) * f64::from(p.max(1e-12)).ln();
                    }
                }
                loss /= batch;
                // dL/dlogits = (softmax - onehot) / batch
                let mut grad = ws.take_tensor(pred.shape().dims().to_vec());
                for ((o, &p), &t) in grad.data_mut().iter_mut().zip(probs.data()).zip(target.data())
                {
                    *o = (p - t) / batch as f32;
                }
                (loss, grad)
            }
            Loss::MeanAbsoluteError => {
                let n = pred.numel() as f64;
                let mut loss = 0.0f64;
                for (&p, &t) in pred.data().iter().zip(target.data()) {
                    loss += f64::from((p - t).abs());
                }
                loss /= n;
                let mut grad = ws.take_tensor(pred.shape().dims().to_vec());
                for ((o, &p), &t) in grad.data_mut().iter_mut().zip(pred.data()).zip(target.data())
                {
                    let d = p - t;
                    *o = if d > 0.0 {
                        1.0 / n as f32
                    } else if d < 0.0 {
                        -1.0 / n as f32
                    } else {
                        0.0
                    };
                }
                (loss, grad)
            }
        }
    }
}

/// Objective metrics (higher is better for both, matching the paper's
/// "score" convention).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Metric {
    /// Classification accuracy against one-hot targets.
    Accuracy,
    /// Coefficient of determination `R² = 1 - SS_res / SS_tot`.
    RSquared,
}

impl Metric {
    /// Evaluate the metric over a full prediction/target pair.
    pub fn evaluate(&self, pred: &Tensor, target: &Tensor) -> f64 {
        assert_eq!(pred.shape(), target.shape(), "metric shape mismatch");
        match self {
            Metric::Accuracy => {
                let yhat = pred.row_argmax();
                let y = target.row_argmax();
                if yhat.is_empty() {
                    return 0.0;
                }
                let hits = yhat.iter().zip(&y).filter(|(a, b)| a == b).count();
                hits as f64 / yhat.len() as f64
            }
            Metric::RSquared => {
                let n = target.numel() as f64;
                if n == 0.0 {
                    return 0.0;
                }
                let mean: f64 = target.data().iter().map(|&t| f64::from(t)).sum::<f64>() / n;
                let mut ss_res = 0.0f64;
                let mut ss_tot = 0.0f64;
                for (&p, &t) in pred.data().iter().zip(target.data()) {
                    ss_res += (f64::from(t) - f64::from(p)).powi(2);
                    ss_tot += (f64::from(t) - mean).powi(2);
                }
                if ss_tot == 0.0 {
                    return 0.0;
                }
                1.0 - ss_res / ss_tot
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use swt_tensor::Rng;

    #[test]
    fn ce_loss_of_perfect_prediction_is_small() {
        let pred = Tensor::from_vec([2, 3], vec![10.0, -10.0, -10.0, -10.0, 10.0, -10.0]);
        let target = Tensor::from_vec([2, 3], vec![1.0, 0.0, 0.0, 0.0, 1.0, 0.0]);
        let (loss, _) = Loss::CategoricalCrossEntropy.forward_backward(&pred, &target);
        assert!(loss < 1e-6, "loss {loss}");
    }

    #[test]
    fn ce_loss_of_uniform_prediction_is_log_classes() {
        let pred = Tensor::zeros([4, 8]);
        let mut target = Tensor::zeros([4, 8]);
        for r in 0..4 {
            target.set(&[r, r], 1.0);
        }
        let (loss, _) = Loss::CategoricalCrossEntropy.forward_backward(&pred, &target);
        assert!((loss - (8.0f64).ln()).abs() < 1e-6);
    }

    #[test]
    fn ce_gradient_matches_numeric() {
        let mut rng = Rng::seed(1);
        let pred = Tensor::rand_normal([3, 4], 0.0, 1.0, &mut rng);
        let mut target = Tensor::zeros([3, 4]);
        for r in 0..3 {
            target.set(&[r, (r * 2 + 1) % 4], 1.0);
        }
        let (_, grad) = Loss::CategoricalCrossEntropy.forward_backward(&pred, &target);
        let eps = 1e-3f32;
        for i in 0..pred.numel() {
            let mut plus = pred.clone();
            plus.data_mut()[i] += eps;
            let mut minus = pred.clone();
            minus.data_mut()[i] -= eps;
            let lp = Loss::CategoricalCrossEntropy.forward_backward(&plus, &target).0;
            let lm = Loss::CategoricalCrossEntropy.forward_backward(&minus, &target).0;
            let num = ((lp - lm) / (2.0 * eps as f64)) as f32;
            assert!((num - grad.data()[i]).abs() < 1e-3, "grad[{i}]");
        }
    }

    #[test]
    fn mae_loss_and_gradient() {
        let pred = Tensor::from_vec([2, 1], vec![1.0, 3.0]);
        let target = Tensor::from_vec([2, 1], vec![2.0, 1.0]);
        let (loss, grad) = Loss::MeanAbsoluteError.forward_backward(&pred, &target);
        assert!((loss - 1.5).abs() < 1e-9);
        assert_eq!(grad.data(), &[-0.5, 0.5]);
    }

    #[test]
    fn accuracy_counts_argmax_hits() {
        let pred = Tensor::from_vec([3, 2], vec![0.9, 0.1, 0.2, 0.8, 0.6, 0.4]);
        let target = Tensor::from_vec([3, 2], vec![1.0, 0.0, 0.0, 1.0, 0.0, 1.0]);
        assert!((Metric::Accuracy.evaluate(&pred, &target) - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn r_squared_reference_values() {
        let target = Tensor::from_vec([4, 1], vec![1.0, 2.0, 3.0, 4.0]);
        // Perfect prediction -> 1.
        assert!((Metric::RSquared.evaluate(&target, &target) - 1.0).abs() < 1e-9);
        // Predicting the mean -> 0.
        let mean_pred = Tensor::full([4, 1], 2.5);
        assert!(Metric::RSquared.evaluate(&mean_pred, &target).abs() < 1e-9);
        // Worse than the mean -> negative.
        let bad = Tensor::from_vec([4, 1], vec![4.0, 3.0, 2.0, 1.0]);
        assert!(Metric::RSquared.evaluate(&bad, &target) < 0.0);
    }

    #[test]
    fn r_squared_constant_target_is_zero() {
        let target = Tensor::full([3, 1], 2.0);
        let pred = Tensor::from_vec([3, 1], vec![1.0, 2.0, 3.0]);
        assert_eq!(Metric::RSquared.evaluate(&pred, &target), 0.0);
    }
}
