//! In-memory, multi-input datasets and batching.

use swt_tensor::{Rng, Tensor, Workspace};

/// A supervised dataset: one or more input tensors (all with the same
/// leading sample dimension, matching the model's input nodes in order) plus
/// a target tensor.
///
/// Uno-like models take four input sources; the other applications take one.
#[derive(Debug, Clone)]
pub struct Dataset {
    inputs: Vec<Tensor>,
    targets: Tensor,
}

impl Dataset {
    /// Construct, validating that every tensor agrees on the sample count.
    ///
    /// # Panics
    /// Panics if `inputs` is empty or sample counts differ.
    pub fn new(inputs: Vec<Tensor>, targets: Tensor) -> Self {
        assert!(!inputs.is_empty(), "dataset needs at least one input tensor");
        let n = targets.shape().dim(0);
        for (i, t) in inputs.iter().enumerate() {
            assert_eq!(t.shape().dim(0), n, "input {i} sample count mismatch");
        }
        Dataset { inputs, targets }
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.targets.shape().dim(0)
    }

    /// True iff the dataset has no samples.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The input tensors.
    pub fn inputs(&self) -> &[Tensor] {
        &self.inputs
    }

    /// The target tensor.
    pub fn targets(&self) -> &Tensor {
        &self.targets
    }

    /// Gather a sub-dataset by sample indices.
    pub fn subset(&self, indices: &[usize]) -> Dataset {
        Dataset {
            inputs: self.inputs.iter().map(|t| t.gather0(indices)).collect(),
            targets: self.targets.gather0(indices),
        }
    }

    /// Split into mini-batch index ranges after an optional shuffle, and
    /// return the shuffled index order. The final short batch is kept
    /// (Keras-style) rather than dropped.
    pub fn batch_indices(&self, batch_size: usize, shuffle: Option<&mut Rng>) -> Vec<Vec<usize>> {
        assert!(batch_size > 0, "batch size must be positive");
        let mut order: Vec<usize> = (0..self.len()).collect();
        if let Some(rng) = shuffle {
            rng.shuffle(&mut order);
        }
        order.chunks(batch_size).map(|c| c.to_vec()).collect()
    }

    /// Materialise one batch as `(inputs, targets)`.
    pub fn batch(&self, indices: &[usize]) -> (Vec<Tensor>, Tensor) {
        (self.inputs.iter().map(|t| t.gather0(indices)).collect(), self.targets.gather0(indices))
    }

    /// Like [`Dataset::batch`], but the batch tensors come from `ws` —
    /// recycle them back after the step and steady-state training never
    /// allocates batch storage.
    pub fn batch_ws(&self, indices: &[usize], ws: &mut Workspace) -> (Vec<Tensor>, Tensor) {
        fn gather(t: &Tensor, indices: &[usize], ws: &mut Workspace) -> Tensor {
            let row = t.numel() / t.shape().dim(0);
            let mut dims = t.shape().dims().to_vec();
            dims[0] = indices.len();
            let mut out = ws.take_tensor(dims);
            for (r, &i) in indices.iter().enumerate() {
                out.data_mut()[r * row..(r + 1) * row]
                    .copy_from_slice(&t.data()[i * row..(i + 1) * row]);
            }
            out
        }
        (
            self.inputs.iter().map(|t| gather(t, indices, ws)).collect(),
            gather(&self.targets, indices, ws),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> Dataset {
        let x = Tensor::from_vec([4, 2], vec![0., 0., 1., 1., 2., 2., 3., 3.]);
        let y = Tensor::from_vec([4, 1], vec![0., 1., 2., 3.]);
        Dataset::new(vec![x], y)
    }

    #[test]
    fn len_and_access() {
        let d = toy();
        assert_eq!(d.len(), 4);
        assert!(!d.is_empty());
        assert_eq!(d.inputs().len(), 1);
    }

    #[test]
    #[should_panic(expected = "sample count mismatch")]
    fn mismatched_counts_panic() {
        let x = Tensor::zeros([3, 2]);
        let y = Tensor::zeros([4, 1]);
        Dataset::new(vec![x], y);
    }

    #[test]
    fn batches_cover_every_sample_once() {
        let d = toy();
        let mut rng = Rng::seed(1);
        let batches = d.batch_indices(3, Some(&mut rng));
        assert_eq!(batches.len(), 2);
        assert_eq!(batches[0].len(), 3);
        assert_eq!(batches[1].len(), 1);
        let mut all: Vec<usize> = batches.concat();
        all.sort_unstable();
        assert_eq!(all, vec![0, 1, 2, 3]);
    }

    #[test]
    fn unshuffled_batches_are_ordered() {
        let d = toy();
        let batches = d.batch_indices(2, None);
        assert_eq!(batches, vec![vec![0, 1], vec![2, 3]]);
    }

    #[test]
    fn batch_materialisation_aligns_inputs_and_targets() {
        let d = toy();
        let (xs, y) = d.batch(&[2, 0]);
        assert_eq!(xs[0].data(), &[2., 2., 0., 0.]);
        assert_eq!(y.data(), &[2., 0.]);
    }

    #[test]
    fn subset_selects_rows() {
        let d = toy().subset(&[3, 1]);
        assert_eq!(d.len(), 2);
        assert_eq!(d.targets().data(), &[3., 1.]);
    }

    #[test]
    fn multi_input_batches_stay_aligned() {
        let a = Tensor::from_vec([3, 1], vec![1., 2., 3.]);
        let b = Tensor::from_vec([3, 2], vec![10., 10., 20., 20., 30., 30.]);
        let y = Tensor::from_vec([3, 1], vec![1., 2., 3.]);
        let d = Dataset::new(vec![a, b], y);
        let (xs, t) = d.batch(&[1]);
        assert_eq!(xs[0].data(), &[2.]);
        assert_eq!(xs[1].data(), &[20., 20.]);
        assert_eq!(t.data(), &[2.]);
    }
}
