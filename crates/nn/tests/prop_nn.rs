//! Property-style tests over the NN stack: random small specs must build,
//! run forward/backward without panicking, and respect core invariants.
//!
//! Seeded randomized sweeps driven by the crate's own [`Rng`] (the container
//! builds fully offline, so no proptest); failures replay deterministically.

use swt_nn::{Activation, LayerSpec, Loss, Metric, Model, ModelSpec};
use swt_tensor::{Padding, Rng, Tensor};

/// A random valid chain spec over a 6x6x2 input.
fn chain_spec(rng: &mut Rng) -> ModelSpec {
    loop {
        let mut ops = Vec::new();
        for _ in 0..rng.below(4) {
            ops.push(match rng.below(8) {
                0 => LayerSpec::Identity,
                1 => LayerSpec::Activation(Activation::Relu),
                2 => LayerSpec::Activation(Activation::Tanh),
                3 => LayerSpec::Activation(Activation::Sigmoid),
                4 => LayerSpec::BatchNorm,
                5 => LayerSpec::Dropout { rate: 0.2 },
                6 => LayerSpec::Conv2D {
                    filters: 2 * (1 + rng.below(2)),
                    kernel: 3,
                    padding: Padding::Same,
                    l2: 0.0,
                },
                _ => LayerSpec::MaxPool2D { size: 2, stride: 2 },
            });
        }
        ops.push(LayerSpec::Flatten);
        ops.push(LayerSpec::Dense { units: 1 + rng.below(4), activation: Some(Activation::Tanh) });
        if let Ok(spec) = ModelSpec::chain(vec![6, 6, 2], ops) {
            return spec;
        }
    }
}

#[test]
fn random_specs_train_one_step() {
    let mut rng = Rng::seed(0x5EED);
    for case in 0..48 {
        let spec = chain_spec(&mut rng);
        let seed = rng.next_u64();
        let mut model = Model::build(&spec, seed).unwrap();
        let mut data_rng = Rng::seed(seed ^ 1);
        let x = Tensor::rand_normal([4, 6, 6, 2], 0.0, 1.0, &mut data_rng);
        let y = model.forward(&[&x], true);
        assert_eq!(y.shape().dim(0), 4, "case {case}");
        assert!(y.data().iter().all(|v| v.is_finite()), "case {case}: non-finite forward output");
        // One backward + Adam step must keep everything finite.
        let grad = Tensor::ones(y.shape().dims().to_vec());
        model.zero_grads();
        model.backward(&grad);
        let mut adam = swt_nn::Adam::new(swt_nn::AdamConfig::default());
        adam.step(&mut model);
        let y2 = model.forward(&[&x], false);
        assert!(y2.data().iter().all(|v| v.is_finite()), "case {case}: non-finite after step");
    }
}

#[test]
fn state_dict_round_trip_reproduces_inference() {
    let mut rng = Rng::seed(0xD1C7);
    for case in 0..32 {
        let spec = chain_spec(&mut rng);
        let seed = rng.next_u64();
        let mut a = Model::build(&spec, seed).unwrap();
        let mut data_rng = Rng::seed(seed ^ 2);
        let x = Tensor::rand_normal([3, 6, 6, 2], 0.0, 1.0, &mut data_rng);
        let _ = a.forward(&[&x], true); // move BN running stats
        let mut b = Model::build(&spec, seed ^ 0xFFFF).unwrap();
        let (loaded, skipped) = b.load_state_dict(&a.state_dict());
        assert_eq!(skipped, 0, "case {case}");
        assert!(loaded > 0, "case {case}");
        let ya = a.forward(&[&x], false);
        let yb = b.forward(&[&x], false);
        assert!(ya.approx_eq(&yb, 1e-6), "case {case}");
    }
}

#[test]
fn ce_loss_is_nonnegative_and_grad_sums_to_zero() {
    let mut rng = Rng::seed(0xCE10);
    for case in 0..40 {
        let rows = 1 + rng.below(5);
        let cols = 2 + rng.below(4);
        let logits = Tensor::rand_normal([rows, cols], 0.0, 2.0, &mut rng);
        let mut target = Tensor::zeros([rows, cols]);
        for r in 0..rows {
            let c = rng.below(cols);
            target.set(&[r, c], 1.0);
        }
        let (loss, grad) = Loss::CategoricalCrossEntropy.forward_backward(&logits, &target);
        assert!(loss >= 0.0, "case {case}");
        // Softmax-CE gradient rows sum to zero (probabilities - one-hot).
        for r in 0..rows {
            let row_sum: f32 = grad.data()[r * cols..(r + 1) * cols].iter().sum();
            assert!(row_sum.abs() < 1e-5, "case {case} row {r} grad sum {row_sum}");
        }
    }
}

#[test]
fn accuracy_is_a_fraction() {
    let mut rng = Rng::seed(0xACC0);
    for case in 0..40 {
        let rows = 1 + rng.below(19);
        let pred = Tensor::rand_normal([rows, 4], 0.0, 1.0, &mut rng);
        let mut target = Tensor::zeros([rows, 4]);
        for r in 0..rows {
            let c = rng.below(4);
            target.set(&[r, c], 1.0);
        }
        let acc = Metric::Accuracy.evaluate(&pred, &target);
        assert!((0.0..=1.0).contains(&acc), "case {case}");
        // Scaled by rows, it must be an integer count.
        let count = acc * rows as f64;
        assert!((count - count.round()).abs() < 1e-9, "case {case}");
    }
}

#[test]
fn r2_of_perfect_prediction_is_one() {
    let mut rng = Rng::seed(0xA2A2);
    let mut tested = 0;
    while tested < 30 {
        let rows = 2 + rng.below(18);
        let target = Tensor::rand_normal([rows, 1], 0.0, 1.0, &mut rng);
        if !target.data().iter().any(|&v| (v - target.data()[0]).abs() > 1e-6) {
            continue; // constant target: R² defined as 0, skip
        }
        let r2 = Metric::RSquared.evaluate(&target, &target);
        assert!((r2 - 1.0).abs() < 1e-9);
        tested += 1;
    }
}
