//! Property-based tests over the NN stack: random small specs must build,
//! run forward/backward without panicking, and respect core invariants.

use proptest::prelude::*;
use swt_nn::{Activation, LayerSpec, Loss, Metric, Model, ModelSpec};
use swt_tensor::{Padding, Rng, Tensor};

/// A random valid chain spec over a 6x6x2 input.
fn chain_spec() -> impl Strategy<Value = ModelSpec> {
    let op = prop_oneof![
        Just(LayerSpec::Identity),
        Just(LayerSpec::Activation(Activation::Relu)),
        Just(LayerSpec::Activation(Activation::Tanh)),
        Just(LayerSpec::Activation(Activation::Sigmoid)),
        Just(LayerSpec::BatchNorm),
        Just(LayerSpec::Dropout { rate: 0.2 }),
        (1usize..3).prop_map(|f| LayerSpec::Conv2D {
            filters: f * 2,
            kernel: 3,
            padding: Padding::Same,
            l2: 0.0
        }),
        Just(LayerSpec::MaxPool2D { size: 2, stride: 2 }),
    ];
    (prop::collection::vec(op, 0..4), 1usize..5).prop_filter_map(
        "valid chain",
        |(mut ops, units)| {
            ops.push(LayerSpec::Flatten);
            ops.push(LayerSpec::Dense { units, activation: Some(Activation::Tanh) });
            ModelSpec::chain(vec![6, 6, 2], ops).ok()
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn random_specs_train_one_step(spec in chain_spec(), seed in any::<u64>()) {
        let mut model = Model::build(&spec, seed).unwrap();
        let mut rng = Rng::seed(seed ^ 1);
        let x = Tensor::rand_normal([4, 6, 6, 2], 0.0, 1.0, &mut rng);
        let y = model.forward(&[&x], true);
        prop_assert_eq!(y.shape().dim(0), 4);
        prop_assert!(y.data().iter().all(|v| v.is_finite()), "non-finite forward output");
        // One backward + Adam step must keep everything finite.
        let grad = Tensor::ones(y.shape().dims().to_vec());
        model.zero_grads();
        model.backward(&grad);
        let mut adam = swt_nn::Adam::new(swt_nn::AdamConfig::default());
        adam.step(&mut model);
        let y2 = model.forward(&[&x], false);
        prop_assert!(y2.data().iter().all(|v| v.is_finite()), "non-finite after step");
    }

    #[test]
    fn state_dict_round_trip_reproduces_inference(spec in chain_spec(), seed in any::<u64>()) {
        let mut a = Model::build(&spec, seed).unwrap();
        let mut rng = Rng::seed(seed ^ 2);
        let x = Tensor::rand_normal([3, 6, 6, 2], 0.0, 1.0, &mut rng);
        let _ = a.forward(&[&x], true); // move BN running stats
        let mut b = Model::build(&spec, seed ^ 0xFFFF).unwrap();
        let (loaded, skipped) = b.load_state_dict(&a.state_dict());
        prop_assert_eq!(skipped, 0);
        prop_assert!(loaded > 0);
        let ya = a.forward(&[&x], false);
        let yb = b.forward(&[&x], false);
        prop_assert!(ya.approx_eq(&yb, 1e-6));
    }

    #[test]
    fn ce_loss_is_nonnegative_and_grad_sums_to_zero(rows in 1usize..6, cols in 2usize..6, seed in any::<u64>()) {
        let mut rng = Rng::seed(seed);
        let logits = Tensor::rand_normal([rows, cols], 0.0, 2.0, &mut rng);
        let mut target = Tensor::zeros([rows, cols]);
        for r in 0..rows {
            let c = rng.below(cols);
            target.set(&[r, c], 1.0);
        }
        let (loss, grad) = Loss::CategoricalCrossEntropy.forward_backward(&logits, &target);
        prop_assert!(loss >= 0.0);
        // Softmax-CE gradient rows sum to zero (probabilities - one-hot).
        for r in 0..rows {
            let row_sum: f32 = grad.data()[r * cols..(r + 1) * cols].iter().sum();
            prop_assert!(row_sum.abs() < 1e-5, "row {r} grad sum {row_sum}");
        }
    }

    #[test]
    fn accuracy_is_a_fraction(rows in 1usize..20, seed in any::<u64>()) {
        let mut rng = Rng::seed(seed);
        let pred = Tensor::rand_normal([rows, 4], 0.0, 1.0, &mut rng);
        let mut target = Tensor::zeros([rows, 4]);
        for r in 0..rows {
            let c = rng.below(4);
            target.set(&[r, c], 1.0);
        }
        let acc = Metric::Accuracy.evaluate(&pred, &target);
        prop_assert!((0.0..=1.0).contains(&acc));
        // Scaled by rows, it must be an integer count.
        let count = acc * rows as f64;
        prop_assert!((count - count.round()).abs() < 1e-9);
    }

    #[test]
    fn r2_of_perfect_prediction_is_one(rows in 2usize..20, seed in any::<u64>()) {
        let mut rng = Rng::seed(seed);
        let target = Tensor::rand_normal([rows, 1], 0.0, 1.0, &mut rng);
        prop_assume!(target.data().iter().any(|&v| (v - target.data()[0]).abs() > 1e-6));
        let r2 = Metric::RSquared.evaluate(&target, &target);
        prop_assert!((r2 - 1.0).abs() < 1e-9);
    }
}
