//! `swt-wire`: the frame layer shared by every TCP protocol in the
//! workspace — `[u32 len LE][u8 type][payload]`.
//!
//! Extracted from `swt-dist` so the checkpoint server (`swt-ckpt-server`)
//! can speak the same framing without a dependency cycle: the store crate
//! needs frames, and `swt-dist`'s worker needs the store's client. This
//! crate is dependency-free and holds only mechanism — no counters, no
//! protocol versions, no message types. Each protocol layers its own
//! message enum, version constant, and observability on top (`swt-dist`
//! wraps [`read_frame`]/[`write_frame`] to count `dist.frames_*`; the
//! store server counts `ckptsrv.*`).
//!
//! `len` counts the payload bytes only (the type byte is part of the fixed
//! 5-byte header). Frames are capped at [`MAX_FRAME_LEN`]; anything larger
//! is a protocol violation, reported as a [`WireError`] — this crate never
//! panics on malformed input, whatever the peer sends.

use std::fmt;
use std::io::{self, Read, Write};

/// Upper bound on a frame's payload. Large transfers (checkpoints run to
/// megabytes) are chunked into multiple frames by their protocol rather
/// than raising this cap: 1 MiB bounds what a confused or hostile peer can
/// make a receiver allocate per frame.
pub const MAX_FRAME_LEN: usize = 1 << 20;

/// Everything that can go wrong on the wire. Self-describing (via
/// `Display`) so failures surface as readable run errors, never panics.
#[derive(Debug)]
pub enum WireError {
    /// Socket-level failure (includes EOF mid-frame).
    Io(io::Error),
    /// Peer announced a frame larger than [`MAX_FRAME_LEN`].
    FrameTooLarge(u32),
    /// Unknown frame-type byte.
    UnknownType(u8),
    /// Payload too short / trailing garbage / invalid field encoding.
    Malformed(&'static str),
    /// Handshake version disagreement.
    VersionMismatch { ours: u32, theirs: u32 },
    /// The peer reported an error, or sent a frame that is valid but
    /// impossible in the current protocol state.
    Protocol(String),
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Io(e) => write!(f, "wire i/o error: {e}"),
            WireError::FrameTooLarge(n) => {
                write!(f, "frame of {n} bytes exceeds the {MAX_FRAME_LEN}-byte cap")
            }
            WireError::UnknownType(t) => write!(f, "unknown frame type {t:#04x}"),
            WireError::Malformed(what) => write!(f, "malformed frame: {what}"),
            WireError::VersionMismatch { ours, theirs } => {
                write!(f, "protocol version mismatch: ours {ours}, peer {theirs}")
            }
            WireError::Protocol(msg) => write!(f, "protocol error: {msg}"),
        }
    }
}

impl std::error::Error for WireError {}

impl From<io::Error> for WireError {
    fn from(e: io::Error) -> Self {
        WireError::Io(e)
    }
}

impl From<WireError> for io::Error {
    fn from(e: WireError) -> Self {
        match e {
            WireError::Io(e) => e,
            other => io::Error::new(io::ErrorKind::InvalidData, other.to_string()),
        }
    }
}

/// Write one frame and flush. Protocols that meter traffic wrap this.
pub fn write_frame(w: &mut impl Write, ty: u8, payload: &[u8]) -> Result<(), WireError> {
    if payload.len() > MAX_FRAME_LEN {
        return Err(WireError::FrameTooLarge(payload.len() as u32));
    }
    let mut header = [0u8; 5];
    header[..4].copy_from_slice(&(payload.len() as u32).to_le_bytes());
    header[4] = ty;
    w.write_all(&header)?;
    w.write_all(payload)?;
    w.flush()?;
    Ok(())
}

/// Read one frame into `buf` (reused across calls), returning the type
/// byte. EOF before a complete header surfaces as
/// `WireError::Io(UnexpectedEof)`. The length prefix is validated against
/// [`MAX_FRAME_LEN`] *before* any allocation.
pub fn read_frame(r: &mut impl Read, buf: &mut Vec<u8>) -> Result<u8, WireError> {
    let mut header = [0u8; 5];
    r.read_exact(&mut header)?;
    let len = u32::from_le_bytes([header[0], header[1], header[2], header[3]]);
    if len as usize > MAX_FRAME_LEN {
        return Err(WireError::FrameTooLarge(len));
    }
    buf.clear();
    buf.resize(len as usize, 0);
    r.read_exact(buf)?;
    Ok(header[4])
}

/// Bounds-checked little-endian payload reader used by frame decoders.
pub struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    pub fn new(buf: &'a [u8]) -> Self {
        Cursor { buf, pos: 0 }
    }

    /// Take `n` raw bytes off the front.
    pub fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        let end = self.pos.checked_add(n).ok_or(WireError::Malformed("length overflow"))?;
        if end > self.buf.len() {
            return Err(WireError::Malformed("truncated payload"));
        }
        let slice = &self.buf[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    /// Every byte not yet consumed (consumes them). For frames whose tail
    /// is raw data — a chunk of checkpoint bytes — rather than fields.
    pub fn rest(&mut self) -> &'a [u8] {
        let slice = &self.buf[self.pos..];
        self.pos = self.buf.len();
        slice
    }

    pub fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    pub fn u16(&mut self) -> Result<u16, WireError> {
        let b = self.take(2)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }

    pub fn u32(&mut self) -> Result<u32, WireError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    pub fn u64(&mut self) -> Result<u64, WireError> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes([b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7]]))
    }

    pub fn f64(&mut self) -> Result<f64, WireError> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// A `[u16 len][bytes]` string.
    pub fn string(&mut self) -> Result<String, WireError> {
        let len = self.u16()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| WireError::Malformed("invalid utf-8"))
    }

    /// Whether the payload is fully consumed — the probe that makes
    /// optional tails possible: a decoder reads its mandatory fields, then
    /// takes the tail only when bytes remain.
    pub fn at_end(&self) -> bool {
        self.pos == self.buf.len()
    }

    /// Decoding must consume the whole payload: trailing bytes mean the
    /// peer speaks a different dialect.
    pub fn finish(&self) -> Result<(), WireError> {
        if self.pos == self.buf.len() {
            Ok(())
        } else {
            Err(WireError::Malformed("trailing bytes"))
        }
    }
}

/// Append a `[u16 len][bytes]` string to an encode buffer.
pub fn put_string(out: &mut Vec<u8>, s: &str) -> Result<(), WireError> {
    let len = u16::try_from(s.len()).map_err(|_| WireError::Malformed("string too long"))?;
    out.extend_from_slice(&len.to_le_bytes());
    out.extend_from_slice(s.as_bytes());
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_round_trip() -> Result<(), WireError> {
        let mut wire = Vec::new();
        write_frame(&mut wire, 0x03, b"hello")?;
        write_frame(&mut wire, 0x07, b"")?;
        let mut r = &wire[..];
        let mut buf = Vec::new();
        let ty = read_frame(&mut r, &mut buf)?;
        assert_eq!((ty, buf.as_slice()), (0x03, &b"hello"[..]));
        let ty = read_frame(&mut r, &mut buf)?;
        assert_eq!((ty, buf.len()), (0x07, 0));
        Ok(())
    }

    #[test]
    fn oversized_frame_is_rejected_not_allocated() {
        // A hostile header announcing 4 GiB must fail fast.
        let mut wire = Vec::new();
        wire.extend_from_slice(&u32::MAX.to_le_bytes());
        wire.push(0x01);
        let mut buf = Vec::new();
        let got = read_frame(&mut &wire[..], &mut buf);
        assert!(matches!(got, Err(WireError::FrameTooLarge(u32::MAX))), "got {got:?}");
        let big = vec![0u8; MAX_FRAME_LEN + 1];
        assert!(matches!(
            write_frame(&mut Vec::new(), 0x01, &big),
            Err(WireError::FrameTooLarge(_))
        ));
    }

    #[test]
    fn truncated_stream_is_an_io_error() {
        let mut wire = Vec::new();
        let _ = write_frame(&mut wire, 0x03, b"hello");
        wire.truncate(wire.len() - 2);
        let mut buf = Vec::new();
        assert!(matches!(read_frame(&mut &wire[..], &mut buf), Err(WireError::Io(_))));
    }

    #[test]
    fn cursor_rejects_truncation_and_trailing_bytes() {
        let mut c = Cursor::new(&[1, 0]);
        assert!(matches!(c.u32(), Err(WireError::Malformed(_))));
        let mut c = Cursor::new(&[1, 0, 0, 0, 9]);
        let _ = c.u32();
        assert!(matches!(c.finish(), Err(WireError::Malformed(_))));
    }

    #[test]
    fn cursor_rest_drains_everything() -> Result<(), WireError> {
        let mut c = Cursor::new(&[7, 1, 2, 3]);
        assert_eq!(c.u8()?, 7);
        assert_eq!(c.rest(), &[1, 2, 3]);
        assert!(c.at_end());
        assert_eq!(c.rest(), &[] as &[u8]);
        c.finish()
    }

    #[test]
    fn string_round_trip_and_invalid_utf8() -> Result<(), WireError> {
        let mut out = Vec::new();
        put_string(&mut out, "namespace_α")?;
        let mut c = Cursor::new(&out);
        assert_eq!(c.string()?, "namespace_α");
        c.finish()?;
        let bad = [2u8, 0, 0xff, 0xfe];
        let mut c = Cursor::new(&bad);
        assert!(matches!(c.string(), Err(WireError::Malformed(_))));
        Ok(())
    }
}
