//! Property-based tests for the statistics crate.

use proptest::prelude::*;
use swt_stats::{geometric_mean, kendall_tau, kendall_tau_b, mean, std_dev, Summary, Welford};

fn finite_vec(max_len: usize) -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(-1e6f64..1e6, 0..max_len)
}

proptest! {
    #[test]
    fn tau_is_bounded(xs in finite_vec(40)) {
        let ys: Vec<f64> = xs.iter().map(|x| (x * 17.0).sin()).collect();
        let t = kendall_tau(&xs, &ys);
        prop_assert!((-1.0..=1.0).contains(&t), "tau out of range: {t}");
        let tb = kendall_tau_b(&xs, &ys);
        prop_assert!((-1.0 - 1e-12..=1.0 + 1e-12).contains(&tb));
    }

    #[test]
    fn tau_of_monotone_map_is_one(xs in prop::collection::hash_set(-1000i32..1000, 2..40)) {
        // Distinct values under a strictly increasing map rank identically.
        let xs: Vec<f64> = xs.into_iter().map(f64::from).collect();
        let ys: Vec<f64> = xs.iter().map(|x| x * 3.0 + 7.0).collect();
        prop_assert!((kendall_tau(&xs, &ys) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn tau_antisymmetric_under_negation(xs in prop::collection::hash_set(-1000i32..1000, 2..30)) {
        let xs: Vec<f64> = xs.into_iter().map(f64::from).collect();
        let ys: Vec<f64> = xs.iter().map(|x| (x * 13.7).sin()).collect();
        let neg: Vec<f64> = ys.iter().map(|y| -y).collect();
        // With no ties, negating one coordinate flips every pair.
        prop_assert!((kendall_tau(&xs, &ys) + kendall_tau(&xs, &neg)).abs() < 1e-9);
    }

    #[test]
    fn mean_within_bounds(xs in finite_vec(64)) {
        prop_assume!(!xs.is_empty());
        let m = mean(&xs);
        let lo = xs.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(m >= lo - 1e-9 && m <= hi + 1e-9);
    }

    #[test]
    fn std_dev_shift_invariant(xs in finite_vec(64), shift in -1e3f64..1e3) {
        let shifted: Vec<f64> = xs.iter().map(|x| x + shift).collect();
        prop_assert!((std_dev(&xs) - std_dev(&shifted)).abs() < 1e-5);
    }

    #[test]
    fn geometric_le_arithmetic(xs in prop::collection::vec(1e-3f64..1e3, 1..32)) {
        // AM-GM inequality.
        prop_assert!(geometric_mean(&xs) <= mean(&xs) + 1e-9);
    }

    #[test]
    fn welford_matches_batch(xs in finite_vec(128)) {
        let mut w = Welford::new();
        for &x in &xs { w.push(x); }
        prop_assert!((w.mean() - mean(&xs)).abs() < 1e-6);
        prop_assert!((w.std_dev() - std_dev(&xs)).abs() < 1e-6);
    }

    #[test]
    fn welford_merge_associative(xs in finite_vec(64), ys in finite_vec(64), zs in finite_vec(64)) {
        let fold = |vals: &[f64]| {
            let mut w = Welford::new();
            for &v in vals { w.push(v); }
            w
        };
        let (a, b, c) = (fold(&xs), fold(&ys), fold(&zs));
        let mut left = a; left.merge(&b); left.merge(&c);
        let mut bc = b; bc.merge(&c);
        let mut right = a; right.merge(&bc);
        prop_assert_eq!(left.count(), right.count());
        prop_assert!((left.mean() - right.mean()).abs() < 1e-6);
        let scale = left.variance().abs().max(1.0);
        prop_assert!((left.variance() - right.variance()).abs() / scale < 1e-9);
    }

    #[test]
    fn summary_ci_shrinks_with_n(base in 0.1f64..10.0) {
        // Same spread, more samples -> tighter CI.
        let small: Vec<f64> = (0..5).map(|i| base + (i % 2) as f64).collect();
        let large: Vec<f64> = (0..50).map(|i| base + (i % 2) as f64).collect();
        prop_assert!(Summary::of(&large).ci95 <= Summary::of(&small).ci95 + 1e-12);
    }
}

proptest! {
    #[test]
    fn fast_tau_matches_naive(perm in prop::collection::vec(0u32..10_000, 2..64)) {
        // Deduplicate to guarantee tie-free inputs, then jitter-free compare.
        let mut xs: Vec<f64> = perm.iter().map(|&v| f64::from(v)).collect();
        xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        xs.dedup();
        prop_assume!(xs.len() >= 2);
        let ys: Vec<f64> = xs.iter().enumerate().map(|(i, x)| (x * 31.7 + i as f64 * 0.013).sin() + i as f64 * 1e-9).collect();
        // ys constructed tie-free with overwhelming probability; skip otherwise.
        let mut sorted = ys.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        prop_assume!(sorted.windows(2).all(|w| w[0] != w[1]));
        let naive = swt_stats::kendall_tau(&xs, &ys);
        let fast = swt_stats::kendall_tau_fast(&xs, &ys);
        prop_assert!((naive - fast).abs() < 1e-9, "{} vs {}", naive, fast);
    }
}
