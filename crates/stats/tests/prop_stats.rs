//! Property-style tests for the statistics crate, as seeded randomized
//! sweeps (the container builds fully offline, so no proptest).

use swt_stats::{geometric_mean, kendall_tau, kendall_tau_b, mean, std_dev, Summary, Welford};
use swt_tensor::Rng;

fn finite_vec(rng: &mut Rng, max_len: usize) -> Vec<f64> {
    let len = rng.below(max_len);
    (0..len).map(|_| f64::from(rng.uniform(-1e6, 1e6))).collect()
}

/// Random strictly-distinct integer-valued samples (tie-free ranks).
fn distinct_vec(rng: &mut Rng, min_len: usize, max_len: usize) -> Vec<f64> {
    let len = min_len + rng.below(max_len - min_len);
    let mut seen = std::collections::HashSet::new();
    while seen.len() < len {
        seen.insert(rng.below(2000) as i64 - 1000);
    }
    seen.into_iter().map(|v| v as f64).collect()
}

#[test]
fn tau_is_bounded() {
    let mut rng = Rng::seed(0x7A0);
    for case in 0..100 {
        let xs = finite_vec(&mut rng, 40);
        let ys: Vec<f64> = xs.iter().map(|x| (x * 17.0).sin()).collect();
        let t = kendall_tau(&xs, &ys);
        assert!((-1.0..=1.0).contains(&t), "case {case}: tau out of range: {t}");
        let tb = kendall_tau_b(&xs, &ys);
        assert!((-1.0 - 1e-12..=1.0 + 1e-12).contains(&tb), "case {case}");
    }
}

#[test]
fn tau_of_monotone_map_is_one() {
    let mut rng = Rng::seed(0x7A1);
    for case in 0..100 {
        // Distinct values under a strictly increasing map rank identically.
        let xs = distinct_vec(&mut rng, 2, 40);
        let ys: Vec<f64> = xs.iter().map(|x| x * 3.0 + 7.0).collect();
        assert!((kendall_tau(&xs, &ys) - 1.0).abs() < 1e-12, "case {case}");
    }
}

#[test]
fn tau_antisymmetric_under_negation() {
    let mut rng = Rng::seed(0x7A2);
    for case in 0..100 {
        let xs = distinct_vec(&mut rng, 2, 30);
        let ys: Vec<f64> = xs.iter().map(|x| (x * 13.7).sin()).collect();
        let neg: Vec<f64> = ys.iter().map(|y| -y).collect();
        // With no ties, negating one coordinate flips every pair.
        assert!((kendall_tau(&xs, &ys) + kendall_tau(&xs, &neg)).abs() < 1e-9, "case {case}");
    }
}

#[test]
fn mean_within_bounds() {
    let mut rng = Rng::seed(0x3A0);
    let mut tested = 0;
    while tested < 100 {
        let xs = finite_vec(&mut rng, 64);
        if xs.is_empty() {
            continue;
        }
        let m = mean(&xs);
        let lo = xs.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        assert!(m >= lo - 1e-9 && m <= hi + 1e-9);
        tested += 1;
    }
}

#[test]
fn std_dev_shift_invariant() {
    let mut rng = Rng::seed(0x3A1);
    for case in 0..100 {
        let xs = finite_vec(&mut rng, 64);
        let shift = f64::from(rng.uniform(-1e3, 1e3));
        let shifted: Vec<f64> = xs.iter().map(|x| x + shift).collect();
        assert!((std_dev(&xs) - std_dev(&shifted)).abs() < 1e-5, "case {case}");
    }
}

#[test]
fn geometric_le_arithmetic() {
    let mut rng = Rng::seed(0x3A2);
    for case in 0..100 {
        // AM-GM inequality over positive samples.
        let len = 1 + rng.below(31);
        let xs: Vec<f64> = (0..len).map(|_| f64::from(rng.uniform(1e-3, 1e3))).collect();
        assert!(geometric_mean(&xs) <= mean(&xs) + 1e-9, "case {case}");
    }
}

#[test]
fn welford_matches_batch() {
    let mut rng = Rng::seed(0x3A3);
    for case in 0..100 {
        let xs = finite_vec(&mut rng, 128);
        let mut w = Welford::new();
        for &x in &xs {
            w.push(x);
        }
        assert!((w.mean() - mean(&xs)).abs() < 1e-6, "case {case}");
        assert!((w.std_dev() - std_dev(&xs)).abs() < 1e-6, "case {case}");
    }
}

#[test]
fn welford_merge_associative() {
    let mut rng = Rng::seed(0x3A4);
    for case in 0..100 {
        let xs = finite_vec(&mut rng, 64);
        let ys = finite_vec(&mut rng, 64);
        let zs = finite_vec(&mut rng, 64);
        let fold = |vals: &[f64]| {
            let mut w = Welford::new();
            for &v in vals {
                w.push(v);
            }
            w
        };
        let (a, b, c) = (fold(&xs), fold(&ys), fold(&zs));
        let mut left = a;
        left.merge(&b);
        left.merge(&c);
        let mut bc = b;
        bc.merge(&c);
        let mut right = a;
        right.merge(&bc);
        assert_eq!(left.count(), right.count(), "case {case}");
        assert!((left.mean() - right.mean()).abs() < 1e-6, "case {case}");
        let scale = left.variance().abs().max(1.0);
        assert!((left.variance() - right.variance()).abs() / scale < 1e-9, "case {case}");
    }
}

#[test]
fn summary_ci_shrinks_with_n() {
    let mut rng = Rng::seed(0x3A5);
    for case in 0..100 {
        // Same spread, more samples -> tighter CI.
        let base = f64::from(rng.uniform(0.1, 10.0));
        let small: Vec<f64> = (0..5).map(|i| base + (i % 2) as f64).collect();
        let large: Vec<f64> = (0..50).map(|i| base + (i % 2) as f64).collect();
        assert!(Summary::of(&large).ci95 <= Summary::of(&small).ci95 + 1e-12, "case {case}");
    }
}

#[test]
fn fast_tau_matches_naive() {
    let mut rng = Rng::seed(0x7A3);
    for case in 0..100 {
        // Tie-free xs; ys tie-free by an index-proportional jitter.
        let mut xs = distinct_vec(&mut rng, 2, 64);
        xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let ys: Vec<f64> = xs
            .iter()
            .enumerate()
            .map(|(i, x)| (x * 31.7 + i as f64 * 0.013).sin() + i as f64 * 1e-9)
            .collect();
        let mut sorted = ys.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        if sorted.windows(2).any(|w| w[0] == w[1]) {
            continue; // astronomically unlikely; skip rather than mis-test
        }
        let naive = swt_stats::kendall_tau(&xs, &ys);
        let fast = swt_stats::kendall_tau_fast(&xs, &ys);
        assert!((naive - fast).abs() < 1e-9, "case {case}: {naive} vs {fast}");
    }
}

/// Random samples drawn from a small bucket set so ties are plentiful.
fn tied_vec(rng: &mut Rng, min_len: usize, max_len: usize) -> Vec<f64> {
    let len = min_len + rng.below(max_len - min_len);
    (0..len).map(|_| rng.below(6) as f64).collect()
}

#[test]
fn tau_b_matches_tau_on_tie_free_data() {
    let mut rng = Rng::seed(0x7B0);
    for case in 0..100 {
        // With no ties the correction term vanishes and both definitions
        // reduce to (Nc - Nd) / N0.
        let xs = distinct_vec(&mut rng, 2, 48);
        let ys: Vec<f64> = xs.iter().map(|x| (x * 7.31).sin() + x * 1e-9).collect();
        let t = kendall_tau(&xs, &ys);
        let tb = kendall_tau_b(&xs, &ys);
        assert!((t - tb).abs() < 1e-12, "case {case}: {t} vs {tb}");
    }
}

#[test]
fn tau_b_is_one_under_monotone_maps_despite_ties() {
    let mut rng = Rng::seed(0x7B1);
    for case in 0..100 {
        // A strictly increasing map preserves the tie pattern exactly, so
        // every non-tied pair is concordant and tau-b is exactly 1 — this is
        // the tie-awareness the paper's variant deliberately gives up.
        let xs = tied_vec(&mut rng, 2, 40);
        let ys: Vec<f64> = xs.iter().map(|x| x.exp() + 2.0 * x).collect();
        assert!((kendall_tau_b(&xs, &ys) - 1.0).abs() < 1e-12, "case {case}");
    }
}

#[test]
fn tau_b_is_symmetric_in_its_arguments() {
    let mut rng = Rng::seed(0x7B2);
    for case in 0..100 {
        let xs = tied_vec(&mut rng, 2, 40);
        let ys = tied_vec(&mut rng, xs.len().max(2), xs.len().max(2) + 1);
        let ys = &ys[..xs.len()];
        let ab = kendall_tau_b(&xs, ys);
        let ba = kendall_tau_b(ys, &xs);
        assert!((ab - ba).abs() < 1e-12, "case {case}: {ab} vs {ba}");
    }
}

#[test]
fn tau_b_invariant_under_monotone_transforms() {
    let mut rng = Rng::seed(0x7B3);
    for case in 0..100 {
        // Rank statistics only see order: strictly increasing maps applied
        // to either coordinate leave tau-b unchanged, ties and all.
        let xs = tied_vec(&mut rng, 2, 40);
        let ys: Vec<f64> = xs.iter().map(|x| ((x * 3.7).sin() * 2.0).round()).collect();
        let fx: Vec<f64> = xs.iter().map(|x| x * 0.5 - 10.0).collect();
        let gy: Vec<f64> = ys.iter().map(|y| y.powi(3) + y).collect();
        let base = kendall_tau_b(&xs, &ys);
        let mapped = kendall_tau_b(&fx, &gy);
        assert!((base - mapped).abs() < 1e-12, "case {case}: {base} vs {mapped}");
    }
}

#[test]
fn tau_b_antisymmetric_under_negation_even_with_ties() {
    let mut rng = Rng::seed(0x7B4);
    for case in 0..100 {
        // Negating one coordinate swaps concordant and discordant pairs and
        // preserves every tie, so tau-b flips sign exactly.
        let xs = tied_vec(&mut rng, 2, 40);
        let ys: Vec<f64> = xs.iter().map(|x| ((x * 5.3).cos() * 3.0).round()).collect();
        let neg: Vec<f64> = ys.iter().map(|y| -y).collect();
        let t = kendall_tau_b(&xs, &ys);
        let tn = kendall_tau_b(&xs, &neg);
        assert!((t + tn).abs() < 1e-12, "case {case}: {t} vs {tn}");
    }
}

#[test]
fn tau_b_never_below_paper_tau_on_positively_ranked_data() {
    let mut rng = Rng::seed(0x7B5);
    for case in 0..100 {
        // The paper's variant folds ties into the discordant count, so when
        // the ranking agrees (Nc >= Nd) it can only under-report agreement
        // relative to the tie-corrected tau-b.
        let xs = tied_vec(&mut rng, 2, 40);
        let ys: Vec<f64> = xs.iter().map(|x| x + ((x * 9.1).sin()).round()).collect();
        let t = kendall_tau(&xs, &ys);
        let tb = kendall_tau_b(&xs, &ys);
        if t >= 0.0 {
            assert!(tb >= t - 1e-12, "case {case}: tau {t} > tau-b {tb}");
        }
    }
}
