//! Welford's online algorithm for streaming mean/variance.
//!
//! NAS runs stream candidate scores back to the scheduler; the Fig. 7 slot
//! statistics are accumulated online without storing every sample twice.

/// Numerically stable streaming mean/variance accumulator.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Welford {
    n: u64,
    mean: f64,
    m2: f64,
}

impl Welford {
    /// A fresh, empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Fold one observation into the accumulator.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        let delta2 = x - self.mean;
        self.m2 += delta * delta2;
    }

    /// Number of observations so far.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Running mean (0.0 before any observation).
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Sample variance with `n - 1` denominator (0.0 below two observations).
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    /// Sample standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Standard error of the mean.
    pub fn sem(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.std_dev() / (self.n as f64).sqrt()
        }
    }

    /// Merge another accumulator into this one (parallel reduction), using
    /// Chan's pairwise update.
    pub fn merge(&mut self, other: &Welford) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = *other;
            return;
        }
        let n = self.n + other.n;
        let delta = other.mean - self.mean;
        let mean = self.mean + delta * other.n as f64 / n as f64;
        let m2 = self.m2 + other.m2 + delta * delta * (self.n as f64 * other.n as f64) / n as f64;
        *self = Welford { n, mean, m2 };
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::summary::{mean, std_dev};

    #[test]
    fn matches_batch_statistics() {
        let xs = [1.5, -2.0, 3.25, 0.0, 7.5, -1.25, 4.0];
        let mut w = Welford::new();
        for &x in &xs {
            w.push(x);
        }
        assert_eq!(w.count(), xs.len() as u64);
        assert!((w.mean() - mean(&xs)).abs() < 1e-12);
        assert!((w.std_dev() - std_dev(&xs)).abs() < 1e-12);
    }

    #[test]
    fn merge_equals_sequential() {
        let xs: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0).collect();
        let (a, b) = xs.split_at(37);
        let mut wa = Welford::new();
        let mut wb = Welford::new();
        for &x in a {
            wa.push(x);
        }
        for &x in b {
            wb.push(x);
        }
        wa.merge(&wb);
        let mut whole = Welford::new();
        for &x in &xs {
            whole.push(x);
        }
        assert_eq!(wa.count(), whole.count());
        assert!((wa.mean() - whole.mean()).abs() < 1e-10);
        assert!((wa.variance() - whole.variance()).abs() < 1e-10);
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut w = Welford::new();
        w.push(2.0);
        w.push(4.0);
        let before = w;
        w.merge(&Welford::new());
        assert_eq!(w, before);
        let mut empty = Welford::new();
        empty.merge(&before);
        assert_eq!(empty, before);
    }

    #[test]
    fn degenerate_counts() {
        let mut w = Welford::new();
        assert_eq!(w.variance(), 0.0);
        w.push(5.0);
        assert_eq!(w.variance(), 0.0);
        assert_eq!(w.mean(), 5.0);
    }

    #[test]
    fn stable_under_large_offset() {
        // A classic catastrophic-cancellation case for naive sum-of-squares.
        let offset = 1e9;
        let mut w = Welford::new();
        for x in [offset + 4.0, offset + 7.0, offset + 13.0, offset + 16.0] {
            w.push(x);
        }
        assert!((w.variance() - 30.0).abs() < 1e-6);
    }
}
