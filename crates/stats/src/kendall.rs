//! Kendall's rank correlation coefficient.
//!
//! The paper (Section VIII-D) measures how well one-epoch estimated scores
//! rank candidates relative to their fully-trained objective metrics using
//! Kendall's tau: `tau = 2 (Nc - Nd) / (n (n - 1))`, where a pair `(i, j)` is
//! *concordant* when both coordinates order the same way and *discordant*
//! otherwise (the paper folds ties into the discordant count). [`kendall_tau`]
//! implements exactly that definition; [`kendall_tau_b`] is the conventional
//! tie-corrected variant, provided for sensitivity checks.

/// Pairwise concordance counts underlying Kendall's tau.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ConcordanceCounts {
    /// Strictly concordant pairs (`x` and `y` order the same way).
    pub concordant: u64,
    /// Strictly discordant pairs (`x` and `y` order opposite ways).
    pub discordant: u64,
    /// Pairs tied in `x` only.
    pub ties_x: u64,
    /// Pairs tied in `y` only.
    pub ties_y: u64,
    /// Pairs tied in both coordinates.
    pub ties_xy: u64,
}

impl ConcordanceCounts {
    /// Count concordant/discordant/tied pairs over all `n (n - 1) / 2`
    /// unordered pairs. `O(n^2)`; the paper's experiment uses `n = 100`, for
    /// which this is instantaneous and trivially correct.
    pub fn count(xs: &[f64], ys: &[f64]) -> Self {
        assert_eq!(xs.len(), ys.len(), "paired samples must have equal length");
        let mut c = Self::default();
        for i in 0..xs.len() {
            for j in (i + 1)..xs.len() {
                let dx = xs[i].partial_cmp(&xs[j]).expect("NaN in Kendall input");
                let dy = ys[i].partial_cmp(&ys[j]).expect("NaN in Kendall input");
                use std::cmp::Ordering::Equal;
                match (dx, dy) {
                    (Equal, Equal) => c.ties_xy += 1,
                    (Equal, _) => c.ties_x += 1,
                    (_, Equal) => c.ties_y += 1,
                    (a, b) if a == b => c.concordant += 1,
                    _ => c.discordant += 1,
                }
            }
        }
        c
    }

    /// Total number of unordered pairs.
    pub fn total(&self) -> u64 {
        self.concordant + self.discordant + self.ties_x + self.ties_y + self.ties_xy
    }
}

/// Kendall's tau as defined in the paper: `2 (Nc - Nd') / (n (n - 1))` where
/// `Nd'` counts every non-concordant pair (strict discordance *and* ties).
///
/// Returns 0.0 for inputs with fewer than two samples.
///
/// ```
/// let x = [1.0, 2.0, 3.0, 4.0];
/// let y = [0.1, 0.2, 0.3, 0.4];
/// assert!((swt_stats::kendall_tau(&x, &y) - 1.0).abs() < 1e-12);
/// let rev: Vec<f64> = y.iter().rev().copied().collect();
/// assert!((swt_stats::kendall_tau(&x, &rev) + 1.0).abs() < 1e-12);
/// ```
pub fn kendall_tau(xs: &[f64], ys: &[f64]) -> f64 {
    let n = xs.len() as f64;
    if xs.len() < 2 {
        return 0.0;
    }
    let c = ConcordanceCounts::count(xs, ys);
    let nc = c.concordant as f64;
    let nd = (c.total() - c.concordant) as f64;
    2.0 * (nc - nd) / (n * (n - 1.0))
}

/// Conventional Kendall's tau-b with tie correction:
/// `(Nc - Nd) / sqrt((N0 - Tx)(N0 - Ty))` with `N0 = n (n-1) / 2`,
/// `Tx`/`Ty` the pairs tied in each coordinate.
///
/// Returns 0.0 when either coordinate is constant (undefined correlation).
pub fn kendall_tau_b(xs: &[f64], ys: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let c = ConcordanceCounts::count(xs, ys);
    let n0 = c.total() as f64;
    let tx = (c.ties_x + c.ties_xy) as f64;
    let ty = (c.ties_y + c.ties_xy) as f64;
    let denom = ((n0 - tx) * (n0 - ty)).sqrt();
    if denom == 0.0 {
        return 0.0;
    }
    (c.concordant as f64 - c.discordant as f64) / denom
}

/// `O(n log n)` Kendall's tau (Knight's algorithm) for tie-free data:
/// sort by `x`, then count the inversions of the corresponding `y` order
/// via merge sort. Agrees with [`kendall_tau`] whenever neither coordinate
/// has ties; used by benches and large-sample analyses.
///
/// # Panics
/// Panics if lengths differ or either coordinate contains ties or NaN.
pub fn kendall_tau_fast(xs: &[f64], ys: &[f64]) -> f64 {
    assert_eq!(xs.len(), ys.len(), "paired samples must have equal length");
    let n = xs.len();
    if n < 2 {
        return 0.0;
    }
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&a, &b| xs[a].partial_cmp(&xs[b]).expect("NaN in Kendall input"));
    for w in order.windows(2) {
        assert!(xs[w[0]] != xs[w[1]], "kendall_tau_fast requires tie-free x");
    }
    let mut seq: Vec<f64> = order.iter().map(|&i| ys[i]).collect();
    {
        let mut sorted = seq.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        for w in sorted.windows(2) {
            assert!(w[0] != w[1], "kendall_tau_fast requires tie-free y");
        }
    }
    let mut buf = vec![0.0; n];
    let discordant = merge_count(&mut seq, &mut buf);
    let total = (n * (n - 1) / 2) as f64;
    let concordant = total - discordant as f64;
    (concordant - discordant as f64) / total
}

/// Count inversions while merge-sorting `seq` in place.
fn merge_count(seq: &mut [f64], buf: &mut [f64]) -> u64 {
    let n = seq.len();
    if n < 2 {
        return 0;
    }
    let mid = n / 2;
    let (left, right) = seq.split_at_mut(mid);
    let mut inv = merge_count(left, &mut buf[..mid]) + merge_count(right, &mut buf[mid..]);
    let (mut i, mut j, mut k) = (0usize, mid, 0usize);
    while i < mid && j < n {
        if seq[i] <= seq[j] {
            buf[k] = seq[i];
            i += 1;
        } else {
            // seq[j] jumps ahead of every remaining left element.
            inv += (mid - i) as u64;
            buf[k] = seq[j];
            j += 1;
        }
        k += 1;
    }
    buf[k..k + (mid - i)].copy_from_slice(&seq[i..mid]);
    let k2 = k + (mid - i);
    buf[k2..].copy_from_slice(&seq[j..]);
    seq.copy_from_slice(buf);
    inv
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fast_matches_naive_on_tie_free_data() {
        // Deterministic pseudo-random, tie-free by construction.
        let xs: Vec<f64> = (0..200).map(|i| (i as f64 * 0.7391).sin() + i as f64 * 1e-6).collect();
        let ys: Vec<f64> = (0..200).map(|i| (i as f64 * 1.217).cos() + i as f64 * 1e-6).collect();
        let naive = kendall_tau(&xs, &ys);
        let fast = kendall_tau_fast(&xs, &ys);
        assert!((naive - fast).abs() < 1e-12, "{naive} vs {fast}");
    }

    #[test]
    fn fast_extremes() {
        let xs: Vec<f64> = (0..50).map(|i| i as f64).collect();
        let rev: Vec<f64> = xs.iter().rev().copied().collect();
        assert!((kendall_tau_fast(&xs, &xs) - 1.0).abs() < 1e-12);
        assert!((kendall_tau_fast(&xs, &rev) + 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "tie-free")]
    fn fast_rejects_ties() {
        kendall_tau_fast(&[1.0, 2.0, 3.0], &[5.0, 5.0, 6.0]);
    }

    #[test]
    fn perfect_agreement_is_one() {
        let x = [3.0, 1.0, 4.0, 1.5, 9.0, 2.6];
        let y: Vec<f64> = x.iter().map(|v| v * 2.0 + 1.0).collect();
        assert!((kendall_tau(&x, &y) - 1.0).abs() < 1e-12);
        assert!((kendall_tau_b(&x, &y) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn perfect_disagreement_is_minus_one() {
        let x = [1.0, 2.0, 3.0, 4.0, 5.0];
        let y = [5.0, 4.0, 3.0, 2.0, 1.0];
        assert!((kendall_tau(&x, &y) + 1.0).abs() < 1e-12);
        assert!((kendall_tau_b(&x, &y) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn single_swap_matches_hand_count() {
        // x ranks 1,2,3,4; y swaps the last two: one discordant pair of six.
        let x = [1.0, 2.0, 3.0, 4.0];
        let y = [1.0, 2.0, 4.0, 3.0];
        // tau = 2 * (5 - 1) / (4 * 3) = 8 / 12
        assert!((kendall_tau(&x, &y) - 8.0 / 12.0).abs() < 1e-12);
    }

    #[test]
    fn ties_count_as_discordant_in_paper_variant() {
        let x = [1.0, 2.0, 3.0];
        let y = [1.0, 1.0, 2.0]; // pair (0,1) tied in y
                                 // concordant: (0,2), (1,2); tied-in-y: (0,1) -> Nd' = 1
                                 // tau = 2 * (2 - 1) / (3 * 2) = 1/3
        assert!((kendall_tau(&x, &y) - 1.0 / 3.0).abs() < 1e-12);
        // tau-b excludes the tied pair from the denominator instead.
        let n0: f64 = 3.0;
        let expected_b = 2.0 / (n0 * (n0 - 1.0)).sqrt();
        assert!((kendall_tau_b(&x, &y) - expected_b).abs() < 1e-12);
    }

    #[test]
    fn constant_input_tau_b_is_zero() {
        let x = [1.0, 1.0, 1.0];
        let y = [1.0, 2.0, 3.0];
        assert_eq!(kendall_tau_b(&x, &y), 0.0);
    }

    #[test]
    fn short_inputs_are_zero() {
        assert_eq!(kendall_tau(&[], &[]), 0.0);
        assert_eq!(kendall_tau(&[1.0], &[2.0]), 0.0);
    }

    #[test]
    fn counts_are_exhaustive() {
        let x = [1.0, 2.0, 2.0, 3.0, 0.5];
        let y = [2.0, 2.0, 1.0, 0.0, 0.0];
        let c = ConcordanceCounts::count(&x, &y);
        assert_eq!(c.total(), 10); // 5 choose 2
    }

    #[test]
    #[should_panic(expected = "equal length")]
    fn length_mismatch_panics() {
        kendall_tau(&[1.0, 2.0], &[1.0]);
    }
}
