//! Statistics utilities for the selective-weight-transfer NAS reproduction.
//!
//! This crate is dependency-light and purely numerical. It provides exactly
//! the statistics the paper's evaluation relies on:
//!
//! * [`kendall_tau`] — Kendall's rank correlation, used by Fig. 9 to compare
//!   estimated candidate scores against fully-trained objective metrics.
//! * [`Summary`] — mean / standard deviation / 95% confidence intervals, used
//!   throughout (Fig. 7 bands, Table III `mean ± std` rows).
//! * [`geometric_mean`] — the cross-application speedup aggregation of Fig. 8.
//! * [`SlotBinner`] — the fixed-width time-slot binning of Fig. 7.
//! * [`Welford`] — numerically stable online mean/variance accumulation.

pub mod binning;
pub mod kendall;
pub mod summary;
pub mod welford;

pub use binning::{SlotBinner, SlotStat};
pub use kendall::{kendall_tau, kendall_tau_b, kendall_tau_fast, ConcordanceCounts};
pub use summary::{geometric_mean, mean, median, percentile, std_dev, Summary};
pub use welford::Welford;
