//! Fixed-width time-slot binning for Fig. 7-style score-over-time curves.
//!
//! The paper groups candidate completions into 50-second slots ("after a
//! candidate model is evaluated and returns at time `t` with score `r`, we
//! plot the point `(50 * ceil(t / 50), r)`") and reports per-slot means with
//! 95% confidence intervals. [`SlotBinner`] reproduces that transform for an
//! arbitrary slot width.

use crate::welford::Welford;

/// Aggregated statistics for one time slot.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SlotStat {
    /// Right edge of the slot (`width * ceil(t / width)`), in the same unit
    /// as the pushed timestamps.
    pub slot_end: f64,
    /// Number of observations that landed in the slot.
    pub n: u64,
    /// Mean score of the slot.
    pub mean: f64,
    /// Half-width of the normal-approximation 95% CI (`1.96 * sem`), the
    /// shaded band of Fig. 7.
    pub ci95: f64,
}

/// Bins `(time, score)` observations into fixed-width slots.
#[derive(Debug, Clone)]
pub struct SlotBinner {
    width: f64,
    slots: Vec<Welford>,
}

impl SlotBinner {
    /// Create a binner with the given slot width (seconds in the paper;
    /// any positive unit works).
    ///
    /// # Panics
    /// Panics if `width` is not strictly positive.
    pub fn new(width: f64) -> Self {
        assert!(width > 0.0, "slot width must be positive");
        SlotBinner { width, slots: Vec::new() }
    }

    /// Slot index for a timestamp: `ceil(t / width)`, clamped so `t = 0`
    /// lands in the first slot.
    fn slot_index(&self, t: f64) -> usize {
        assert!(t >= 0.0, "timestamps must be non-negative");
        let idx = (t / self.width).ceil() as usize;
        idx.max(1) - 1
    }

    /// Record a score observed at time `t`.
    pub fn push(&mut self, t: f64, score: f64) {
        let idx = self.slot_index(t);
        if idx >= self.slots.len() {
            self.slots.resize(idx + 1, Welford::new());
        }
        self.slots[idx].push(score);
    }

    /// Per-slot statistics in time order. Empty slots are skipped (the paper
    /// only plots slots that received at least one completion).
    pub fn stats(&self) -> Vec<SlotStat> {
        self.slots
            .iter()
            .enumerate()
            .filter(|(_, w)| w.count() > 0)
            .map(|(i, w)| SlotStat {
                slot_end: (i as f64 + 1.0) * self.width,
                n: w.count(),
                mean: w.mean(),
                ci95: 1.96 * w.sem(),
            })
            .collect()
    }

    /// Running best-so-far transform of the slot means: the monotone curve
    /// variant used when comparing discovery progress between schemes.
    pub fn best_so_far(&self) -> Vec<SlotStat> {
        let mut best = f64::NEG_INFINITY;
        self.stats()
            .into_iter()
            .map(|mut s| {
                best = best.max(s.mean);
                s.mean = best;
                s
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_slot_rule() {
        // t = 50 must land in the first slot (ceil(50/50) = 1), t = 50.1 in
        // the second, exactly as (50 * ceil(t/50)).
        let mut b = SlotBinner::new(50.0);
        b.push(50.0, 1.0);
        b.push(50.1, 2.0);
        b.push(0.0, 3.0);
        let stats = b.stats();
        assert_eq!(stats.len(), 2);
        assert_eq!(stats[0].slot_end, 50.0);
        assert_eq!(stats[0].n, 2); // t = 0 and t = 50
        assert_eq!(stats[1].slot_end, 100.0);
        assert_eq!(stats[1].n, 1);
    }

    #[test]
    fn slot_means_and_ci() {
        let mut b = SlotBinner::new(10.0);
        for (t, s) in [(1.0, 0.5), (2.0, 0.7), (9.0, 0.6)] {
            b.push(t, s);
        }
        let stats = b.stats();
        assert_eq!(stats.len(), 1);
        assert!((stats[0].mean - 0.6).abs() < 1e-12);
        assert!(stats[0].ci95 > 0.0);
    }

    #[test]
    fn empty_slots_are_skipped() {
        let mut b = SlotBinner::new(1.0);
        b.push(0.5, 1.0);
        b.push(5.0, 2.0);
        let stats = b.stats();
        assert_eq!(stats.len(), 2);
        assert_eq!(stats[0].slot_end, 1.0);
        assert_eq!(stats[1].slot_end, 5.0);
    }

    #[test]
    fn best_so_far_is_monotone() {
        let mut b = SlotBinner::new(1.0);
        for (t, s) in [(0.5, 0.3), (1.5, 0.8), (2.5, 0.5), (3.5, 0.9)] {
            b.push(t, s);
        }
        let curve = b.best_so_far();
        let means: Vec<f64> = curve.iter().map(|s| s.mean).collect();
        assert_eq!(means, vec![0.3, 0.8, 0.8, 0.9]);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_width_rejected() {
        SlotBinner::new(0.0);
    }
}
