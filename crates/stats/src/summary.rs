//! Descriptive statistics: mean/std/CI summaries, geometric mean, percentiles.

/// Arithmetic mean; 0.0 for an empty slice.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Sample standard deviation (n - 1 denominator); 0.0 for fewer than two samples.
pub fn std_dev(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    let ss: f64 = xs.iter().map(|x| (x - m) * (x - m)).sum();
    (ss / (xs.len() - 1) as f64).sqrt()
}

/// Geometric mean of strictly positive values, computed in log space for
/// numerical robustness. Used for the cross-application speedup of Fig. 8.
///
/// # Panics
/// Panics if any value is not strictly positive.
pub fn geometric_mean(xs: &[f64]) -> f64 {
    assert!(!xs.is_empty(), "geometric mean of empty slice");
    let log_sum: f64 = xs
        .iter()
        .map(|&x| {
            assert!(x > 0.0, "geometric mean requires positive values, got {x}");
            x.ln()
        })
        .sum();
    (log_sum / xs.len() as f64).exp()
}

/// Median (average of the two middle elements for even lengths).
pub fn median(xs: &[f64]) -> f64 {
    percentile(xs, 50.0)
}

/// Linear-interpolated percentile in `[0, 100]`; 0.0 for an empty slice.
pub fn percentile(xs: &[f64], p: f64) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    let mut sorted = xs.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in percentile input"));
    let rank = (p / 100.0) * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let frac = rank - lo as f64;
        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
    }
}

/// Two-sided 95% critical value of Student's t distribution for `df` degrees
/// of freedom. Exact table for small `df` (the paper averages 5 NAS runs, so
/// small-sample correctness matters), normal approximation past 30.
fn t_critical_95(df: usize) -> f64 {
    const TABLE: [f64; 30] = [
        12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228, 2.201, 2.179, 2.160,
        2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086, 2.080, 2.074, 2.069, 2.064, 2.060, 2.056,
        2.052, 2.048, 2.045, 2.042,
    ];
    match df {
        0 => f64::INFINITY,
        d if d <= 30 => TABLE[d - 1],
        d if d <= 60 => 2.021,
        d if d <= 120 => 2.000,
        _ => 1.96,
    }
}

/// Mean / std / 95% confidence-interval summary of a sample.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    pub n: usize,
    pub mean: f64,
    pub std_dev: f64,
    pub min: f64,
    pub max: f64,
    /// Half-width of the two-sided 95% CI on the mean (Student's t).
    pub ci95: f64,
}

impl Summary {
    /// Summarise a sample. Empty input yields an all-zero summary with `n = 0`.
    pub fn of(xs: &[f64]) -> Self {
        if xs.is_empty() {
            return Summary { n: 0, mean: 0.0, std_dev: 0.0, min: 0.0, max: 0.0, ci95: 0.0 };
        }
        let m = mean(xs);
        let sd = std_dev(xs);
        let sem = if xs.len() > 1 { sd / (xs.len() as f64).sqrt() } else { 0.0 };
        let ci = if xs.len() > 1 { t_critical_95(xs.len() - 1) * sem } else { 0.0 };
        let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
        for &x in xs {
            lo = lo.min(x);
            hi = hi.max(x);
        }
        Summary { n: xs.len(), mean: m, std_dev: sd, min: lo, max: hi, ci95: ci }
    }

    /// Render as the paper's `mean ± std` notation with the given precision.
    pub fn pm(&self, digits: usize) -> String {
        format!("{:.d$} ± {:.d$}", self.mean, self.std_dev, d = digits)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_std_of_known_sample() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert!((mean(&xs) - 5.0).abs() < 1e-12);
        // Sample variance = 32/7.
        assert!((std_dev(&xs) - (32.0f64 / 7.0).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn geometric_mean_of_speedups() {
        // Paper-style aggregation: per-app speedups -> overall.
        let speedups = [1.5, 1.5, 1.5, 1.5];
        assert!((geometric_mean(&speedups) - 1.5).abs() < 1e-12);
        let mixed = [2.0, 8.0];
        assert!((geometric_mean(&mixed) - 4.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn geometric_mean_rejects_nonpositive() {
        geometric_mean(&[1.0, 0.0]);
    }

    #[test]
    fn median_even_and_odd() {
        assert_eq!(median(&[3.0, 1.0, 2.0]), 2.0);
        assert_eq!(median(&[4.0, 1.0, 2.0, 3.0]), 2.5);
    }

    #[test]
    fn percentile_interpolates() {
        let xs = [10.0, 20.0, 30.0, 40.0];
        assert!((percentile(&xs, 0.0) - 10.0).abs() < 1e-12);
        assert!((percentile(&xs, 100.0) - 40.0).abs() < 1e-12);
        assert!((percentile(&xs, 50.0) - 25.0).abs() < 1e-12);
    }

    #[test]
    fn summary_of_five_runs_uses_t_distribution() {
        // Five repeats, like the paper's NAS experiments: df = 4 -> t = 2.776.
        let xs = [0.80, 0.82, 0.78, 0.81, 0.79];
        let s = Summary::of(&xs);
        assert_eq!(s.n, 5);
        let sem = s.std_dev / 5.0f64.sqrt();
        assert!((s.ci95 - 2.776 * sem).abs() < 1e-9);
        assert_eq!(s.min, 0.78);
        assert_eq!(s.max, 0.82);
    }

    #[test]
    fn summary_handles_degenerate_inputs() {
        assert_eq!(Summary::of(&[]).n, 0);
        let one = Summary::of(&[3.5]);
        assert_eq!(one.mean, 3.5);
        assert_eq!(one.ci95, 0.0);
    }

    #[test]
    fn pm_formats_like_the_paper() {
        let s = Summary::of(&[0.799, 0.799, 0.799]);
        assert_eq!(s.pm(3), "0.799 ± 0.000");
    }

    #[test]
    fn t_critical_monotone_nonincreasing() {
        let mut prev = f64::INFINITY;
        for df in 1..200 {
            let t = t_critical_95(df);
            assert!(t <= prev + 1e-12, "t table must not increase with df");
            prev = t;
        }
        assert!((t_critical_95(1000) - 1.96).abs() < 1e-12);
    }
}
