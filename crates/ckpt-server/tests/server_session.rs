//! End-to-end sessions against a live [`CkptServer`]: selective reads,
//! authentication (including the constant-time-rejection regression test),
//! malformed-Hello hardening, and restart-with-durable-spill.

use std::io::Write as _;
use std::net::TcpStream;
use std::path::PathBuf;
use std::time::Instant;
use swt_checkpoint::{encode, CheckpointStore};
use swt_ckpt_server::auth::ct_eq;
use swt_ckpt_server::{CkptServer, RemoteStore, ServerConfig};
use swt_tensor::{Rng, Tensor};

fn temp_spill(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("swt_ckptsrv_{tag}_{}", std::process::id()))
}

fn entries(seed: u64) -> Vec<(String, Tensor)> {
    let mut rng = Rng::seed(seed);
    vec![
        ("a/kernel".into(), Tensor::rand_normal([16, 8], 0.0, 1.0, &mut rng)),
        ("a/bias".into(), Tensor::rand_normal([8], 0.0, 1.0, &mut rng)),
        ("b/kernel".into(), Tensor::rand_normal([8, 4], 0.0, 1.0, &mut rng)),
    ]
}

fn start(tag: &str, secret: &str) -> (CkptServer, PathBuf) {
    let spill = temp_spill(tag);
    let mut cfg = ServerConfig::new("127.0.0.1:0", &spill);
    cfg.secret = secret.to_string();
    let server = CkptServer::start(cfg).expect("server must start");
    (server, spill)
}

#[test]
fn put_and_selective_reads_round_trip() {
    swt_obs::enable();
    let (server, spill) = start("roundtrip", "");
    let client = RemoteStore::connect(&server.addr().to_string(), "tenant_a", "");

    let saved = entries(7);
    let raw = encode(&saved);
    let n = client.save("cand_1", &saved).expect("save");
    assert_eq!(n, raw.len() as u64);

    // Full read returns the exact container bytes the client encoded.
    assert_eq!(client.load_raw("cand_1").expect("load_raw"), raw);

    // Header-only index read sees every tensor without the payload bytes.
    let index = client.load_index("cand_1").expect("load_index");
    assert_eq!(index.len(), saved.len());
    assert_eq!(index.version(), 2);

    // Selective read: exactly the requested subset, bit-identical values.
    let names = vec!["a/kernel".to_string(), "b/kernel".to_string()];
    let got = client.load_tensors("cand_1", &names).expect("load_tensors");
    assert_eq!(got.len(), 2);
    for (name, tensor) in &got {
        let original = &saved.iter().find(|(n, _)| n == name).expect("requested name").1;
        assert!(tensor.approx_eq(original, 0.0), "{name} must round-trip bit-exactly");
    }

    // Metadata surface.
    assert!(client.exists("cand_1"));
    assert_eq!(client.size_bytes("cand_1"), Some(raw.len() as u64));
    assert_eq!(client.list(), vec!["cand_1".to_string()]);
    assert!(!client.exists("cand_2"));
    assert!(client.load_raw("cand_2").is_err());
    assert!(client.delete("cand_1"));
    assert!(!client.exists("cand_1"));

    drop(server);
    let _ = std::fs::remove_dir_all(spill);
}

#[test]
fn buckets_isolate_tenants() {
    swt_obs::enable();
    let (server, spill) = start("tenants", "");
    let addr = server.addr().to_string();
    let a = RemoteStore::connect(&addr, "tenant_a", "");
    let b = RemoteStore::connect(&addr, "tenant_b", "");

    a.save("cand_1", &entries(1)).expect("save into a");
    assert!(a.exists("cand_1"));
    assert!(!b.exists("cand_1"), "tenant_b must not observe tenant_a's ids");
    assert!(b.list().is_empty());

    drop(server);
    let _ = std::fs::remove_dir_all(spill);
}

#[test]
fn wrong_secret_is_rejected_as_a_final_error() {
    swt_obs::enable();
    let (server, spill) = start("auth", "orchid-lattice");
    let addr = server.addr().to_string();

    let failures_before = swt_obs::counter!("ckptsrv.auth_failures").get();
    let wrong = RemoteStore::connect(&addr, "tenant_a", "wrong-secret");
    let err = wrong.save("cand_1", &entries(3)).expect_err("wrong secret must fail");
    assert_eq!(err.kind(), std::io::ErrorKind::PermissionDenied, "{err}");
    let open = RemoteStore::connect(&addr, "tenant_a", "");
    let err = open.save("cand_1", &entries(3)).expect_err("missing secret must fail");
    assert_eq!(err.kind(), std::io::ErrorKind::PermissionDenied, "{err}");
    assert!(swt_obs::counter!("ckptsrv.auth_failures").get() >= failures_before + 2);

    // The right secret works — and the failed attempts left nothing behind.
    let right = RemoteStore::connect(&addr, "tenant_a", "orchid-lattice");
    right.save("cand_1", &entries(3)).expect("correct secret must be accepted");
    assert!(right.exists("cand_1"));

    drop(server);
    let _ = std::fs::remove_dir_all(spill);
}

#[test]
fn hostile_bucket_and_ids_are_final_errors() {
    swt_obs::enable();
    let (server, spill) = start("tokens", "");
    let addr = server.addr().to_string();

    // Path-traversal bucket: refused at Hello, surfaced as a final error
    // (no retry loop — retrying cannot make "../evil" valid).
    let evil_bucket = RemoteStore::connect(&addr, "../evil", "");
    let t0 = Instant::now();
    let err = evil_bucket.save("cand_1", &entries(4)).expect_err("bucket must be refused");
    assert_eq!(err.kind(), std::io::ErrorKind::InvalidInput, "{err}");
    assert!(t0.elapsed().as_secs() < 2, "final errors must not spin the backoff loop");

    // Hostile checkpoint ids: refused per-request, session stays usable.
    let client = RemoteStore::connect(&addr, "tenant_a", "");
    for id in ["../escape", "", ".hidden", "a/b"] {
        let err = client.put_raw(id, &encode(&entries(5))).expect_err("id must be refused");
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidInput, "id {id:?}: {err}");
    }
    // Garbage bytes that are not a WTC container are refused server-side.
    let err = client.put_raw("cand_1", b"definitely not a checkpoint").expect_err("bad container");
    assert_eq!(err.kind(), std::io::ErrorKind::InvalidInput, "{err}");
    client.save("cand_1", &entries(5)).expect("session must survive refused requests");

    drop(server);
    let _ = std::fs::remove_dir_all(spill);
}

#[test]
fn malformed_hello_is_dropped_and_server_keeps_serving() {
    swt_obs::enable();
    let (server, spill) = start("badhello", "");
    let addr = server.addr().to_string();
    let bad_before = swt_obs::counter!("ckptsrv.bad_hello").get();

    // Raw garbage: an HTTP-looking blast whose "length prefix" is absurd.
    let mut garbage = TcpStream::connect(&addr).expect("connect");
    garbage.write_all(b"GET / HTTP/1.1\r\nHost: x\r\n\r\n").expect("write");
    let _ = garbage.shutdown(std::net::Shutdown::Write);

    // A well-framed frame that is not a Hello as the first frame.
    let mut wrong_first = TcpStream::connect(&addr).expect("connect");
    let (ty, payload) = swt_ckpt_server::StoreMsg::List.encode().expect("encode");
    swt_wire::write_frame(&mut wrong_first, ty, &payload).expect("frame");
    let _ = wrong_first.shutdown(std::net::Shutdown::Write);

    // Both are dropped with a counter bump, and a real client still works —
    // the joiner-hardening posture: garbage never wedges the accept loop.
    let client = RemoteStore::connect(&addr, "tenant_a", "");
    client.save("cand_1", &entries(6)).expect("server must still serve");
    let deadline = Instant::now() + std::time::Duration::from_secs(5);
    while swt_obs::counter!("ckptsrv.bad_hello").get() < bad_before + 2 {
        assert!(Instant::now() < deadline, "bad_hello counter must record both drops");
        std::thread::sleep(std::time::Duration::from_millis(10));
    }

    drop(server);
    let _ = std::fs::remove_dir_all(spill);
}

#[test]
fn restart_on_same_port_serves_spilled_state_to_a_live_client() {
    swt_obs::enable();
    let (mut server, spill) = start("restart", "");
    let addr = server.addr().to_string();
    let client = RemoteStore::connect(&addr, "tenant_a", "");

    let saved = entries(9);
    client.save("cand_1", &saved).expect("save before restart");
    server.stop();

    // Same port, same spill root: the restarted server rebuilds lazily
    // from disk, and the same client rides the retry/backoff loop through
    // the outage without any caller-visible error.
    let mut cfg = ServerConfig::new(&addr, &spill);
    cfg.secret = String::new();
    let server2 = CkptServer::start(cfg).expect("rebind on the same port");
    let names = vec!["a/kernel".to_string()];
    let got = client.load_tensors("cand_1", &names).expect("read across restart");
    assert_eq!(got.len(), 1);
    assert!(got[0].1.approx_eq(&saved[0].1, 0.0), "spilled tensor must be bit-identical");

    drop(server2);
    let _ = std::fs::remove_dir_all(spill);
}

/// Median nanoseconds to run `iters` constant-time comparisons of
/// `expected` against `candidate`.
fn median_cmp_ns(expected: &[u8; 32], candidate: &[u8; 32]) -> u64 {
    const ROUNDS: usize = 31;
    const ITERS: usize = 20_000;
    let mut samples = Vec::with_capacity(ROUNDS);
    for _ in 0..ROUNDS {
        let t0 = Instant::now();
        let mut acc = false;
        for _ in 0..ITERS {
            acc ^= ct_eq(std::hint::black_box(expected), std::hint::black_box(candidate));
        }
        std::hint::black_box(acc);
        samples.push(t0.elapsed().as_nanos() as u64);
    }
    samples.sort_unstable();
    samples[ROUNDS / 2]
}

#[test]
fn rejection_time_does_not_reveal_where_the_mac_diverges() {
    // A short-circuiting comparison rejects a first-byte mismatch ~32×
    // faster than a last-byte mismatch — that gradient is exactly what an
    // adversary uses to forge a MAC byte by byte. ct_eq folds every byte,
    // so the two medians must be close. The 5× bound is deliberately
    // generous: shared CI machines are noisy, and the regression this
    // guards against (early exit) shows up as a far larger ratio.
    let expected = swt_ckpt_server::auth::sha256(b"expected mac");
    let mut first = expected;
    first[0] ^= 0x01;
    let mut last = expected;
    last[31] ^= 0x01;

    // Warm up, then measure.
    let _ = median_cmp_ns(&expected, &first);
    let early = median_cmp_ns(&expected, &first) as f64;
    let late = median_cmp_ns(&expected, &last) as f64;
    let ratio = if early > late { early / late } else { late / early };
    assert!(
        ratio < 5.0,
        "divergence position must not change rejection time: byte-0 {early}ns vs byte-31 {late}ns"
    );
    // And it must still be a correct equality check.
    assert!(ct_eq(&expected, &expected));
    assert!(!ct_eq(&expected, &first) && !ct_eq(&expected, &last));
}
