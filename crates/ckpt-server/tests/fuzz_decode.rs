//! Seeded fuzz coverage of the store protocol's decode surface, mirroring
//! the dist wire's `fuzz_decode` suite: every store frame under
//! truncation, bit flips, random payloads, unknown tags, hostile
//! name-table indices and oversized length declarations must come back as
//! a typed [`WireError`] or a valid [`StoreMsg`] — never a panic, never an
//! unbounded allocation. Deterministic (fixed seeds) so a failure always
//! reproduces.

use swt_ckpt_server::proto::{
    recv_chunks, ErrCode, RangeRow, StoreMsg, MAX_GET_NAMES, MAX_LIST_IDS, MAX_TRANSFER_LEN,
};
use swt_ckpt_server::STORE_PROTOCOL_VERSION;
use swt_tensor::Rng;
use swt_wire::WireError;

/// Every known store frame-type byte (0x41 Hello … 0x52 Err).
const STORE_TAGS: std::ops::RangeInclusive<u8> = 0x41..=0x52;

/// One valid message of every store frame type — the fuzz corpus seeds.
fn corpus() -> Vec<StoreMsg> {
    vec![
        StoreMsg::Hello {
            version: STORE_PROTOCOL_VERSION,
            bucket: "run_a".into(),
            nonce: [7; 16],
            mac: [9; 32],
        },
        StoreMsg::HelloAck { version: STORE_PROTOCOL_VERSION },
        StoreMsg::Put { id: "cand_17".into(), total_len: 13_000_000 },
        StoreMsg::Chunk(vec![1, 2, 3, 4, 5]),
        StoreMsg::PutAck { bytes: 13_000_000 },
        StoreMsg::GetIndex { id: "cand_17".into() },
        StoreMsg::IndexResp { total_len: 300 },
        StoreMsg::GetTensors {
            id: "cand_17".into(),
            names: vec!["a/kernel".into(), "a/bias".into(), "head/kernel".into()],
        },
        StoreMsg::Ranges {
            version: 2,
            names: vec!["a/kernel".into(), "a/bias".into()],
            rows: vec![
                RangeRow { name_idx: 0, dims: vec![16, 8], checksum: 77, payload_len: 512 },
                RangeRow { name_idx: 1, dims: vec![8], checksum: 78, payload_len: 32 },
            ],
        },
        StoreMsg::GetRaw { id: "cand_17".into() },
        StoreMsg::Blob { total_len: 1 << 24 },
        StoreMsg::Exists { id: "cand_17".into() },
        StoreMsg::ExistsResp { exists: true, size: 13_000_000 },
        StoreMsg::List,
        StoreMsg::ListResp { ids: vec!["cand_1".into(), "cand_2".into()] },
        StoreMsg::Delete { id: "cand_1".into() },
        StoreMsg::DeleteResp { existed: true },
        StoreMsg::Err { code: ErrCode::NotFound, message: "no such checkpoint".into() },
    ]
}

#[test]
fn corpus_covers_every_tag() {
    let mut tags: Vec<u8> = corpus().iter().map(|m| m.encode().unwrap().0).collect();
    tags.sort_unstable();
    tags.dedup();
    assert_eq!(tags, STORE_TAGS.collect::<Vec<_>>(), "corpus must seed every store tag");
}

#[test]
fn every_truncation_of_every_frame_is_a_typed_error() {
    for msg in corpus() {
        let (ty, payload) = msg.encode().expect("corpus must encode");
        assert_eq!(StoreMsg::decode(ty, &payload).expect("corpus round-trip"), msg);
        // Chunk carries raw bytes with no structure: every prefix is itself
        // a valid (shorter) chunk. Everything else must reject every strict
        // prefix — a starved fixed-width read or a count without elements.
        let is_chunk = matches!(msg, StoreMsg::Chunk(_));
        for cut in 0..payload.len() {
            let got = StoreMsg::decode(ty, &payload[..cut]);
            if is_chunk {
                assert!(got.is_ok(), "chunk prefix of {cut} bytes must decode");
            } else {
                assert!(
                    got.is_err(),
                    "tag {ty:#04x} truncated to {cut}/{} bytes decoded successfully",
                    payload.len()
                );
            }
        }
    }
}

#[test]
fn bit_flips_never_panic() {
    let mut rng = Rng::seed(0x5708E);
    for msg in corpus() {
        let (ty, payload) = msg.encode().expect("corpus must encode");
        if payload.is_empty() {
            continue; // List: nothing to corrupt
        }
        for _ in 0..256 {
            let mut mutated = payload.clone();
            let flips = 1 + rng.below(4);
            for _ in 0..flips {
                let byte = rng.below(mutated.len());
                let bit = rng.below(8);
                mutated[byte] ^= 1 << bit;
            }
            // A flip in a value field may still decode (to another message);
            // a flip in structure must fail. Both are fine — never a panic.
            match StoreMsg::decode(ty, &mutated) {
                Ok(_) | Err(_) => {}
            }
        }
    }
}

#[test]
fn random_payloads_against_every_tag_never_panic() {
    let mut rng = Rng::seed(0xCAB1E);
    for ty in 0x38..=0x5Au8 {
        for round in 0..128usize {
            let len = rng.below(96) * (1 + round % 3);
            let payload: Vec<u8> = (0..len).map(|_| rng.next_u64() as u8).collect();
            match StoreMsg::decode(ty, &payload) {
                Ok(_) | Err(_) => {}
            }
        }
    }
    // Tags outside the store range are always UnknownType — including every
    // dist-protocol tag, so a cross-wired connection fails loudly.
    for ty in 0x00..=0xFFu8 {
        if !STORE_TAGS.contains(&ty) {
            assert!(
                matches!(StoreMsg::decode(ty, &[]), Err(WireError::UnknownType(t)) if t == ty),
                "tag {ty:#04x} must be rejected as unknown"
            );
        }
    }
}

#[test]
fn hostile_name_table_indices_are_rejected() {
    let (ty, payload) = StoreMsg::Ranges {
        version: 2,
        names: vec!["a".into(), "b".into()],
        rows: vec![RangeRow { name_idx: 1, dims: vec![4], checksum: 0, payload_len: 16 }],
    }
    .encode()
    .unwrap();
    // The row's name_idx is the u16 right after the row count; the row body
    // is idx(2) + rank(1) + one dim(4) + checksum(8) + payload_len(8).
    let row_start = payload.len() - (2 + 1 + 4 + 8 + 8);
    for idx in [2u16, 100, u16::MAX] {
        let mut evil = payload.clone();
        evil[row_start..row_start + 2].copy_from_slice(&idx.to_le_bytes());
        assert!(
            matches!(StoreMsg::decode(ty, &evil), Err(WireError::Malformed(_))),
            "name_idx {idx} must be rejected"
        );
    }
}

#[test]
fn oversized_declarations_are_typed_errors() {
    // Transfer headers declaring more than the cap: rejected at decode,
    // before any receive loop could try to buffer them.
    let over = MAX_TRANSFER_LEN + 1;
    for msg in [
        StoreMsg::Put { id: "x".into(), total_len: 1 },
        StoreMsg::IndexResp { total_len: 1 },
        StoreMsg::Blob { total_len: 1 },
    ] {
        let (ty, payload) = msg.encode().unwrap();
        let mut evil = payload.clone();
        let n = evil.len();
        evil[n - 8..].copy_from_slice(&over.to_le_bytes());
        assert!(
            matches!(StoreMsg::decode(ty, &evil), Err(WireError::Malformed(_))),
            "tag {ty:#04x} must reject an over-cap transfer length"
        );
    }

    // A GetTensors claiming the maximum name count with no bytes behind it.
    let (ty, payload) = StoreMsg::GetTensors { id: "x".into(), names: vec![] }.encode().unwrap();
    let mut evil = payload.clone();
    let n = evil.len();
    evil[n - 2..].copy_from_slice(&u16::MAX.to_le_bytes());
    assert!(StoreMsg::decode(ty, &evil).is_err());
    assert!(u16::MAX as usize > MAX_GET_NAMES);

    // A ListResp claiming u32::MAX ids: the clamped capacity plus starved
    // reads must reject it without ballooning.
    let (ty, payload) = StoreMsg::ListResp { ids: vec![] }.encode().unwrap();
    let mut evil = payload;
    evil[..4].copy_from_slice(&u32::MAX.to_le_bytes());
    assert!(StoreMsg::decode(ty, &evil).is_err());
    assert!(u32::MAX as usize > MAX_LIST_IDS);

    // A Ranges row declaring an over-cap payload_len.
    let (ty, payload) = StoreMsg::Ranges {
        version: 2,
        names: vec!["a".into()],
        rows: vec![RangeRow { name_idx: 0, dims: vec![], checksum: 0, payload_len: 1 }],
    }
    .encode()
    .unwrap();
    let mut evil = payload;
    let n = evil.len();
    evil[n - 8..].copy_from_slice(&over.to_le_bytes());
    assert!(matches!(StoreMsg::decode(ty, &evil), Err(WireError::Malformed(_))));

    // A hostile rank byte promising more dims than any tensor has.
    let (ty, payload) = StoreMsg::Ranges {
        version: 2,
        names: vec!["a".into()],
        rows: vec![RangeRow { name_idx: 0, dims: vec![1], checksum: 0, payload_len: 1 }],
    }
    .encode()
    .unwrap();
    let rank_at = payload.len() - (1 + 4 + 8 + 8);
    let mut evil = payload;
    evil[rank_at] = 0xFF;
    assert!(matches!(StoreMsg::decode(ty, &evil), Err(WireError::Malformed(_))));
}

#[test]
fn chunk_reassembly_rejects_desyncs_without_panicking() {
    // A non-Chunk frame arriving mid-transfer is a protocol desync.
    let frames: Vec<(u8, Vec<u8>)> =
        vec![(0x44, vec![0u8; 4]), (0x45, 42u64.to_le_bytes().to_vec())];
    let mut iter = frames.iter();
    let got = recv_chunks(8, |buf| {
        let (ty, payload) = iter.next().ok_or(WireError::Malformed("out of frames"))?;
        buf.clear();
        buf.extend_from_slice(payload);
        Ok(*ty)
    });
    assert!(matches!(got, Err(WireError::Protocol(_))));

    // A declared total over the transfer cap is rejected before any frame
    // is pulled at all.
    let got = recv_chunks(MAX_TRANSFER_LEN + 1, |_| {
        Err(WireError::Malformed("receiver must not be called"))
    });
    assert!(matches!(got, Err(WireError::Malformed(_))));

    // Random frame sequences: reassembly terminates with a value or a
    // typed error, never a panic or a hang.
    let mut rng = Rng::seed(0xC4A2);
    for _ in 0..256 {
        let total = rng.below(64) as u64;
        let mut remaining = 8 + rng.below(8);
        let got = recv_chunks(total, |buf| {
            if remaining == 0 {
                return Err(WireError::Malformed("stream ended"));
            }
            remaining -= 1;
            let ty = if rng.below(4) == 0 { 0x45 } else { 0x44 };
            buf.clear();
            let n = rng.below(32);
            buf.extend((0..n).map(|_| rng.next_u64() as u8));
            Ok(ty)
        });
        if let Ok(bytes) = got {
            assert_eq!(bytes.len() as u64, total);
        }
    }
}
