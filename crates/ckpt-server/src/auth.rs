//! Shared-secret authentication for the store's Hello frame.
//!
//! The workspace is dependency-free, so this module carries its own
//! SHA-256 and HMAC-SHA256 (FIPS 180-4 / RFC 2104), checked against the
//! standard test vectors below. The client proves knowledge of the shared
//! secret by MACing the hello transcript (version, bucket, nonce) — the
//! secret itself never crosses the wire. The server compares MACs with
//! [`ct_eq`], an XOR-fold over every byte: a rejection takes the same time
//! whether the forgery diverges at the first byte or the last, so timing
//! leaks nothing about the expected MAC.
//!
//! Scope: this authenticates session establishment against accidental or
//! casual misuse on a trusted network (the wire is not encrypted, and a
//! recorded Hello could be replayed). An empty secret disables the check —
//! "open mode", the default for single-host runs.

/// SHA-256 round constants (FIPS 180-4 §4.2.2).
const K: [u32; 64] = [
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1, 0x923f82a4, 0xab1c5ed5,
    0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3, 0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174,
    0xe49b69c1, 0xefbe4786, 0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147, 0x06ca6351, 0x14292967,
    0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13, 0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85,
    0xa2bfe8a1, 0xa81a664b, 0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a, 0x5b9cca4f, 0x682e6ff3,
    0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208, 0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2,
];

/// Incremental SHA-256.
pub struct Sha256 {
    state: [u32; 8],
    block: [u8; 64],
    block_len: usize,
    total_len: u64,
}

impl Default for Sha256 {
    fn default() -> Self {
        Self::new()
    }
}

impl Sha256 {
    pub fn new() -> Self {
        Sha256 {
            state: [
                0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a, 0x510e527f, 0x9b05688c, 0x1f83d9ab,
                0x5be0cd19,
            ],
            block: [0; 64],
            block_len: 0,
            total_len: 0,
        }
    }

    pub fn update(&mut self, mut data: &[u8]) {
        self.total_len = self.total_len.wrapping_add(data.len() as u64);
        while !data.is_empty() {
            let space = 64 - self.block_len;
            let take = space.min(data.len());
            self.block[self.block_len..self.block_len + take].copy_from_slice(&data[..take]);
            self.block_len += take;
            data = &data[take..];
            if self.block_len == 64 {
                let block = self.block;
                self.compress(&block);
                self.block_len = 0;
            }
        }
    }

    pub fn finalize(mut self) -> [u8; 32] {
        let bit_len = self.total_len.wrapping_mul(8);
        self.update(&[0x80]);
        while self.block_len != 56 {
            self.update(&[0]);
        }
        self.update(&bit_len.to_be_bytes());
        let mut out = [0u8; 32];
        for (i, word) in self.state.iter().enumerate() {
            out[4 * i..4 * i + 4].copy_from_slice(&word.to_be_bytes());
        }
        out
    }

    fn compress(&mut self, block: &[u8; 64]) {
        let mut w = [0u32; 64];
        for (i, chunk) in block.chunks_exact(4).enumerate() {
            w[i] = u32::from_be_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]);
        }
        for i in 16..64 {
            let s0 = w[i - 15].rotate_right(7) ^ w[i - 15].rotate_right(18) ^ (w[i - 15] >> 3);
            let s1 = w[i - 2].rotate_right(17) ^ w[i - 2].rotate_right(19) ^ (w[i - 2] >> 10);
            w[i] = w[i - 16].wrapping_add(s0).wrapping_add(w[i - 7]).wrapping_add(s1);
        }
        let [mut a, mut b, mut c, mut d, mut e, mut f, mut g, mut h] = self.state;
        for i in 0..64 {
            let s1 = e.rotate_right(6) ^ e.rotate_right(11) ^ e.rotate_right(25);
            let ch = (e & f) ^ (!e & g);
            let t1 = h.wrapping_add(s1).wrapping_add(ch).wrapping_add(K[i]).wrapping_add(w[i]);
            let s0 = a.rotate_right(2) ^ a.rotate_right(13) ^ a.rotate_right(22);
            let maj = (a & b) ^ (a & c) ^ (b & c);
            let t2 = s0.wrapping_add(maj);
            h = g;
            g = f;
            f = e;
            e = d.wrapping_add(t1);
            d = c;
            c = b;
            b = a;
            a = t1.wrapping_add(t2);
        }
        for (s, v) in self.state.iter_mut().zip([a, b, c, d, e, f, g, h]) {
            *s = s.wrapping_add(v);
        }
    }
}

/// One-shot SHA-256.
pub fn sha256(data: &[u8]) -> [u8; 32] {
    let mut h = Sha256::new();
    h.update(data);
    h.finalize()
}

/// HMAC-SHA256 over the concatenation of `parts` (RFC 2104).
pub fn hmac_sha256(key: &[u8], parts: &[&[u8]]) -> [u8; 32] {
    let mut key_block = [0u8; 64];
    if key.len() > 64 {
        key_block[..32].copy_from_slice(&sha256(key));
    } else {
        key_block[..key.len()].copy_from_slice(key);
    }
    let mut inner = Sha256::new();
    let ipad: Vec<u8> = key_block.iter().map(|b| b ^ 0x36).collect();
    inner.update(&ipad);
    for part in parts {
        inner.update(part);
    }
    let inner_digest = inner.finalize();
    let mut outer = Sha256::new();
    let opad: Vec<u8> = key_block.iter().map(|b| b ^ 0x5c).collect();
    outer.update(&opad);
    outer.update(&inner_digest);
    outer.finalize()
}

/// Constant-time equality: XOR-fold over every byte with no early exit, so
/// the comparison's duration is independent of where (or whether) the
/// inputs diverge. `black_box` keeps the optimizer from reintroducing a
/// data-dependent shortcut.
pub fn ct_eq(a: &[u8; 32], b: &[u8; 32]) -> bool {
    let mut diff = 0u8;
    for (x, y) in a.iter().zip(b.iter()) {
        diff |= std::hint::black_box(x ^ y);
    }
    diff == 0
}

/// Domain separator for the hello MAC; versioned so a future transcript
/// change cannot collide with this one.
const HELLO_DOMAIN: &[u8] = b"swt-ckpt-hello-v1";

/// The MAC a client sends in its Hello: HMAC over the domain separator and
/// the transcript fields (version, bucket, nonce). Binding the bucket in
/// stops a MAC minted for one tenant from opening another tenant's bucket.
pub fn hello_mac(secret: &str, version: u32, bucket: &str, nonce: &[u8; 16]) -> [u8; 32] {
    hmac_sha256(
        secret.as_bytes(),
        &[
            HELLO_DOMAIN,
            &version.to_le_bytes(),
            &(bucket.len() as u32).to_le_bytes(),
            bucket.as_bytes(),
            nonce,
        ],
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(bytes: &[u8; 32]) -> String {
        bytes.iter().map(|b| format!("{b:02x}")).collect()
    }

    #[test]
    fn sha256_fips_vectors() {
        // FIPS 180-4 examples plus the empty string.
        assert_eq!(
            hex(&sha256(b"")),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
        );
        assert_eq!(
            hex(&sha256(b"abc")),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
        );
        assert_eq!(
            hex(&sha256(b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq")),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"
        );
        // Multi-block via incremental updates must match one-shot.
        let long = vec![b'a'; 100_000];
        let mut h = Sha256::new();
        for chunk in long.chunks(97) {
            h.update(chunk);
        }
        assert_eq!(hex(&h.finalize()), hex(&sha256(&long)));
    }

    #[test]
    fn hmac_rfc4231_vectors() {
        // RFC 4231 test case 1.
        assert_eq!(
            hex(&hmac_sha256(&[0x0b; 20], &[b"Hi There"])),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7"
        );
        // Test case 2 (short, non-padded key), fed in two parts to cover
        // the multi-part concatenation path.
        assert_eq!(
            hex(&hmac_sha256(b"Jefe", &[b"what do ya want ", b"for nothing?"])),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"
        );
        // Test case 6: key longer than one block (hashed down first).
        assert_eq!(
            hex(&hmac_sha256(
                &[0xaa; 131],
                &[b"Test Using Larger Than Block-Size Key - Hash Key First"]
            )),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54"
        );
    }

    #[test]
    fn hello_mac_binds_every_transcript_field() {
        let nonce = [3u8; 16];
        let mac = hello_mac("secret", 1, "bucket_a", &nonce);
        assert_eq!(mac, hello_mac("secret", 1, "bucket_a", &nonce), "deterministic");
        assert_ne!(mac, hello_mac("other", 1, "bucket_a", &nonce), "secret bound");
        assert_ne!(mac, hello_mac("secret", 2, "bucket_a", &nonce), "version bound");
        assert_ne!(mac, hello_mac("secret", 1, "bucket_b", &nonce), "bucket bound");
        assert_ne!(mac, hello_mac("secret", 1, "bucket_a", &[4u8; 16]), "nonce bound");
    }

    #[test]
    fn ct_eq_agrees_with_plain_equality() {
        let a = sha256(b"x");
        let mut b = a;
        assert!(ct_eq(&a, &b));
        b[31] ^= 1;
        assert!(!ct_eq(&a, &b));
        b[31] ^= 1;
        b[0] ^= 1;
        assert!(!ct_eq(&a, &b));
    }
}
