//! `RemoteStore`: the networked [`CheckpointStore`] backed by a checkpoint
//! server.
//!
//! Every trait method maps onto one request/response exchange; the
//! selective methods map onto the selective frames (`load_index` →
//! `GetIndex`, `load_tensors` → `GetTensors`), so only the transfer subset
//! crosses the wire — the remote analogue of `DirStore`'s seek-and-read
//! path. Workers wrap a `RemoteStore` in their existing `CachedStore`
//! slice, so repeat providers are served from local RAM without a round
//! trip at all.
//!
//! Transport faults (connection refused, reset, EOF mid-response) are
//! retried with exponential backoff and a fresh connection — long enough
//! to ride out a server restart mid-run. Application-level answers
//! (`NotFound`, `BadRequest`, `Unauthorized`) are returned immediately:
//! retrying cannot change them.

use crate::auth::hello_mac;
use crate::proto::{
    recv_chunks, send_chunks, ErrCode, StoreMsg, MAX_GET_NAMES, STORE_PROTOCOL_VERSION,
};
use std::collections::HashSet;
use std::io;
use std::net::TcpStream;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard};
use std::time::{Duration, SystemTime, UNIX_EPOCH};
use swt_checkpoint::{
    decode, encode, parse_index, tensor_from_payload, CheckpointIndex, CheckpointStore,
    RawCheckpointStore, TensorMeta,
};
use swt_tensor::{with_thread_workspace, Tensor};
use swt_wire::{read_frame, write_frame, WireError};

/// Connection attempts per operation before giving up.
const ATTEMPTS: u32 = 8;

/// First backoff step; doubles per attempt (25, 50, … 3200 ms ≈ 6.4 s
/// total — comfortably longer than a server restart).
const BACKOFF_BASE: Duration = Duration::from_millis(25);

struct Conn {
    stream: TcpStream,
    buf: Vec<u8>,
}

impl Conn {
    fn send(&mut self, msg: &StoreMsg) -> Result<(), WireError> {
        let (ty, payload) = msg.encode()?;
        write_frame(&mut self.stream, ty, &payload)
    }

    fn recv(&mut self) -> Result<StoreMsg, WireError> {
        let ty = read_frame(&mut self.stream, &mut self.buf)?;
        StoreMsg::decode(ty, &self.buf)
    }

    fn recv_bytes(&mut self, total_len: u64) -> Result<Vec<u8>, WireError> {
        let stream = &mut self.stream;
        recv_chunks(total_len, |buf| read_frame(stream, buf))
    }
}

/// Map a server `Err` frame onto an `io::Error` whose kind tells the retry
/// loop whether the answer is final.
fn app_err(code: ErrCode, message: String) -> io::Error {
    let kind = match code {
        ErrCode::NotFound => io::ErrorKind::NotFound,
        ErrCode::BadRequest => io::ErrorKind::InvalidInput,
        ErrCode::Unauthorized => io::ErrorKind::PermissionDenied,
        ErrCode::Internal => io::ErrorKind::Other,
    };
    io::Error::new(kind, format!("store: {message}"))
}

fn desync(got: &StoreMsg) -> io::Error {
    io::Error::new(
        io::ErrorKind::BrokenPipe,
        format!("store protocol desync: unexpected response {got:?}"),
    )
}

/// Final answers that a reconnect cannot improve.
fn is_final(e: &io::Error) -> bool {
    matches!(
        e.kind(),
        io::ErrorKind::NotFound
            | io::ErrorKind::InvalidInput
            | io::ErrorKind::InvalidData
            | io::ErrorKind::PermissionDenied
    )
}

/// A fresh per-session nonce: wall clock mixed with pid and a counter. Not
/// cryptographic randomness — it only needs to vary the hello transcript
/// between sessions.
fn session_nonce() -> [u8; 16] {
    static CTR: AtomicU64 = AtomicU64::new(0);
    let nanos =
        SystemTime::now().duration_since(UNIX_EPOCH).map(|d| d.as_nanos() as u64).unwrap_or(0);
    let a = nanos
        ^ (u64::from(std::process::id())).rotate_left(32)
        ^ CTR.fetch_add(1, Ordering::Relaxed).wrapping_mul(0x9e37_79b9_7f4a_7c15);
    let b = nanos.wrapping_mul(0x2545_f491_4f6c_dd1d) ^ a.rotate_left(17);
    let mut nonce = [0u8; 16];
    nonce[..8].copy_from_slice(&a.to_le_bytes());
    nonce[8..].copy_from_slice(&b.to_le_bytes());
    nonce
}

/// A [`CheckpointStore`] served over the store wire protocol.
pub struct RemoteStore {
    addr: String,
    bucket: String,
    secret: String,
    conn: Mutex<Option<Conn>>,
}

impl RemoteStore {
    /// Address forms accepted: `host:port` or `tcp://host:port`. The
    /// connection is opened lazily, on the first operation.
    pub fn connect(addr: &str, bucket: &str, secret: &str) -> RemoteStore {
        let addr = addr.strip_prefix("tcp://").unwrap_or(addr).to_string();
        RemoteStore {
            addr,
            bucket: bucket.to_string(),
            secret: secret.to_string(),
            conn: Mutex::new(None),
        }
    }

    /// The bucket this client operates in.
    pub fn bucket(&self) -> &str {
        &self.bucket
    }

    fn dial(&self) -> io::Result<Conn> {
        let stream = TcpStream::connect(&self.addr)?;
        stream.set_nodelay(true).ok();
        let mut conn = Conn { stream, buf: Vec::new() };
        let nonce = session_nonce();
        let mac = hello_mac(&self.secret, STORE_PROTOCOL_VERSION, &self.bucket, &nonce);
        conn.send(&StoreMsg::Hello {
            version: STORE_PROTOCOL_VERSION,
            bucket: self.bucket.clone(),
            nonce,
            mac,
        })?;
        match conn.recv()? {
            StoreMsg::HelloAck { .. } => Ok(conn),
            StoreMsg::Err { code, message } => Err(app_err(code, message)),
            other => Err(desync(&other)),
        }
    }

    /// Run one exchange, reconnecting with backoff on transport faults.
    /// The connection is dropped on *any* failure — after a mid-response
    /// error the stream position is unknowable, and reconnecting is cheap
    /// next to a checkpoint transfer.
    fn run_op<R>(&self, mut op: impl FnMut(&mut Conn) -> io::Result<R>) -> io::Result<R> {
        let mut guard: MutexGuard<'_, Option<Conn>> =
            self.conn.lock().unwrap_or_else(|e| e.into_inner());
        let mut last: Option<io::Error> = None;
        for attempt in 0..ATTEMPTS {
            if attempt > 0 {
                swt_obs::counter!("ckptsrv.client.retries").inc();
                std::thread::sleep(BACKOFF_BASE * 2u32.pow(attempt - 1));
            }
            if guard.is_none() {
                if last.is_some() {
                    swt_obs::counter!("ckptsrv.client.reconnects").inc();
                }
                match self.dial() {
                    Ok(conn) => *guard = Some(conn),
                    Err(e) if is_final(&e) => return Err(e),
                    Err(e) => {
                        last = Some(e);
                        continue;
                    }
                }
            }
            let Some(conn) = guard.as_mut() else { continue };
            match op(conn) {
                Ok(r) => return Ok(r),
                Err(e) => {
                    *guard = None;
                    if is_final(&e) {
                        return Err(e);
                    }
                    last = Some(e);
                }
            }
        }
        Err(last.unwrap_or_else(|| io::Error::other("store operation failed with no attempts")))
    }

    /// Store pre-encoded container bytes under `id`.
    pub fn put_raw(&self, id: &str, bytes: &[u8]) -> io::Result<u64> {
        let n = self.run_op(|conn| {
            conn.send(&StoreMsg::Put { id: id.to_string(), total_len: bytes.len() as u64 })?;
            {
                let stream = &mut conn.stream;
                send_chunks(bytes, |ty, chunk| write_frame(stream, ty, chunk))?;
            }
            match conn.recv()? {
                StoreMsg::PutAck { bytes } => Ok(bytes),
                StoreMsg::Err { code, message } => Err(app_err(code, message)),
                other => Err(desync(&other)),
            }
        })?;
        swt_obs::counter!("ckptsrv.client.puts").inc();
        swt_obs::counter!("ckptsrv.client.put_bytes").add(n);
        Ok(n)
    }
}

impl CheckpointStore for RemoteStore {
    fn save(&self, id: &str, entries: &[(String, Tensor)]) -> io::Result<u64> {
        self.put_raw(id, &encode(entries))
    }

    fn load(&self, id: &str) -> io::Result<Vec<(String, Tensor)>> {
        let raw = self.load_raw(id)?;
        decode(&raw).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
    }

    fn load_raw(&self, id: &str) -> io::Result<Vec<u8>> {
        let raw = self.run_op(|conn| {
            conn.send(&StoreMsg::GetRaw { id: id.to_string() })?;
            match conn.recv()? {
                StoreMsg::Blob { total_len } => Ok(conn.recv_bytes(total_len)?),
                StoreMsg::Err { code, message } => Err(app_err(code, message)),
                other => Err(desync(&other)),
            }
        })?;
        swt_obs::counter!("ckptsrv.client.gets_raw").inc();
        swt_obs::counter!("ckptsrv.client.full_bytes_rx").add(raw.len() as u64);
        Ok(raw)
    }

    fn load_index(&self, id: &str) -> io::Result<CheckpointIndex> {
        let header = self.run_op(|conn| {
            conn.send(&StoreMsg::GetIndex { id: id.to_string() })?;
            match conn.recv()? {
                StoreMsg::IndexResp { total_len } => Ok(conn.recv_bytes(total_len)?),
                StoreMsg::Err { code, message } => Err(app_err(code, message)),
                other => Err(desync(&other)),
            }
        })?;
        swt_obs::counter!("ckptsrv.client.gets_index").inc();
        swt_obs::counter!("ckptsrv.client.index_bytes_rx").add(header.len() as u64);
        parse_index(&header).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
    }

    fn load_tensors(&self, id: &str, names: &[String]) -> io::Result<Vec<(String, Tensor)>> {
        if names.len() > MAX_GET_NAMES {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                format!("GetTensors limited to {MAX_GET_NAMES} names, got {}", names.len()),
            ));
        }
        let (version, resp_names, rows, payload) = self.run_op(|conn| {
            conn.send(&StoreMsg::GetTensors { id: id.to_string(), names: names.to_vec() })?;
            match conn.recv()? {
                StoreMsg::Ranges { version, names, rows } => {
                    let total: u64 = rows.iter().map(|r| r.payload_len).sum();
                    let payload = conn.recv_bytes(total)?;
                    Ok((version, names, rows, payload))
                }
                StoreMsg::Err { code, message } => Err(app_err(code, message)),
                other => Err(desync(&other)),
            }
        })?;
        swt_obs::counter!("ckptsrv.client.gets_tensors").inc();
        swt_obs::counter!("ckptsrv.client.tensor_bytes_rx").add(payload.len() as u64);
        // Reassemble tensors from the concatenated range payloads, running
        // the same checksum-verifying payload decoder as the disk path.
        let requested: HashSet<&str> = names.iter().map(String::as_str).collect();
        let mut out = Vec::with_capacity(rows.len());
        let mut cursor = 0usize;
        for row in &rows {
            let name = resp_names
                .get(row.name_idx as usize)
                .ok_or_else(|| {
                    io::Error::new(io::ErrorKind::InvalidData, "range row names out of table")
                })?
                .clone();
            let len = row.payload_len as usize;
            let slice = payload.get(cursor..cursor + len).ok_or_else(|| {
                io::Error::new(io::ErrorKind::InvalidData, "range payloads shorter than rows")
            })?;
            cursor += len;
            if !requested.contains(name.as_str()) {
                // The server must only answer what was asked; skip anything
                // else rather than surfacing surprise tensors.
                continue;
            }
            let meta = TensorMeta {
                name: name.clone(),
                dims: row.dims.clone(),
                offset: 0,
                checksum: row.checksum,
            };
            let tensor = with_thread_workspace(|ws| tensor_from_payload(&meta, slice, version, ws))
                .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
            out.push((name, tensor));
        }
        Ok(out)
    }

    fn exists(&self, id: &str) -> bool {
        self.run_op(|conn| {
            conn.send(&StoreMsg::Exists { id: id.to_string() })?;
            match conn.recv()? {
                StoreMsg::ExistsResp { exists, .. } => Ok(exists),
                StoreMsg::Err { code, message } => Err(app_err(code, message)),
                other => Err(desync(&other)),
            }
        })
        .unwrap_or(false)
    }

    fn size_bytes(&self, id: &str) -> Option<u64> {
        self.run_op(|conn| {
            conn.send(&StoreMsg::Exists { id: id.to_string() })?;
            match conn.recv()? {
                StoreMsg::ExistsResp { exists, size } => Ok(exists.then_some(size)),
                StoreMsg::Err { code, message } => Err(app_err(code, message)),
                other => Err(desync(&other)),
            }
        })
        .ok()
        .flatten()
    }

    fn list(&self) -> Vec<String> {
        self.run_op(|conn| {
            conn.send(&StoreMsg::List)?;
            match conn.recv()? {
                StoreMsg::ListResp { ids } => Ok(ids),
                StoreMsg::Err { code, message } => Err(app_err(code, message)),
                other => Err(desync(&other)),
            }
        })
        .unwrap_or_default()
    }

    fn delete(&self, id: &str) -> bool {
        self.run_op(|conn| {
            conn.send(&StoreMsg::Delete { id: id.to_string() })?;
            match conn.recv()? {
                StoreMsg::DeleteResp { existed } => Ok(existed),
                StoreMsg::Err { code, message } => Err(app_err(code, message)),
                other => Err(desync(&other)),
            }
        })
        .unwrap_or(false)
    }
}

impl RawCheckpointStore for RemoteStore {
    fn save_raw(&self, id: &str, bytes: &[u8]) -> io::Result<u64> {
        self.put_raw(id, bytes)
    }
}
