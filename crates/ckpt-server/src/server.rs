//! The checkpoint server: a multi-tenant, byte-budgeted tensor store
//! behind framed TCP.
//!
//! Every bucket (tenant namespace) is its own `CachedStore<DirStore>`
//! rooted at `spill_dir/<bucket>`: hot checkpoints answer `GetIndex` /
//! `GetTensors` straight from the sharded in-memory LRU, cold ones refill
//! from the WTC2 spill files, and `Put` writes *through* to disk before it
//! is acknowledged — so a server restart mid-run loses nothing that was
//! ever acked, and a restarted server rebuilds its RAM state lazily from
//! the spill directory.
//!
//! Connections are thread-per-client (worker counts are small). Hostile
//! input never panics: the CI no-panic gate covers this crate, tokens are
//! validated before any store touch, and a malformed Hello is dropped with
//! a counter bump — the same hardening posture as the dist joiner path.
//! Application-level failures (missing id, bad request) travel as `Err`
//! frames and leave the session usable; wire-level desyncs drop it.

use crate::auth::{ct_eq, hello_mac};
use crate::proto::{
    recv_chunks, send_chunks, valid_token, ErrCode, RangeRow, StoreMsg, MAX_LIST_IDS,
    MAX_TRANSFER_LEN, STORE_PROTOCOL_VERSION,
};
use std::collections::HashMap;
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};
use std::thread;
use std::time::Duration;
use swt_checkpoint::{parse_index, CachedStore, CheckpointStore, DirStore, RawCheckpointStore};
use swt_obs::serve::{ObsServer, RegistrySource, ServeSource};
use swt_wire::{read_frame, write_frame, WireError};

/// How the server is run. `bind` takes `"host:port"` (port 0 for
/// ephemeral); `secret` empty disables authentication (open mode).
#[derive(Debug, Clone)]
pub struct ServerConfig {
    pub bind: String,
    /// Durable WTC2 spill root; each bucket gets a subdirectory.
    pub spill_dir: PathBuf,
    /// In-memory LRU budget per bucket, in bytes.
    pub cache_bytes: u64,
    /// Shared HMAC secret; empty = open mode.
    pub secret: String,
    /// Optional `host:port` for the server's own live `/status` endpoint.
    pub serve: Option<String>,
}

impl ServerConfig {
    pub fn new(bind: impl Into<String>, spill_dir: impl Into<PathBuf>) -> Self {
        ServerConfig {
            bind: bind.into(),
            spill_dir: spill_dir.into(),
            cache_bytes: 256 << 20,
            secret: String::new(),
            serve: None,
        }
    }
}

type BucketStore = Arc<CachedStore<DirStore>>;

struct Shared {
    cfg: ServerConfig,
    buckets: Mutex<HashMap<String, BucketStore>>,
    conns: Mutex<Vec<TcpStream>>,
    stop: AtomicBool,
}

fn lock<'a, T>(m: &'a Mutex<T>) -> MutexGuard<'a, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

impl Shared {
    fn bucket(&self, name: &str) -> io::Result<BucketStore> {
        let mut buckets = lock(&self.buckets);
        if let Some(store) = buckets.get(name) {
            return Ok(Arc::clone(store));
        }
        let dir = DirStore::new(self.cfg.spill_dir.join(name))?;
        let store = Arc::new(CachedStore::new(dir, self.cfg.cache_bytes));
        buckets.insert(name.to_string(), Arc::clone(&store));
        Ok(store)
    }
}

/// Live-endpoint source: bucket inventory on `/status`, the process
/// registry (all `ckptsrv.*` counters) on `/metrics` and `/trace`.
struct StoreStatus(Arc<Shared>);

impl ServeSource for StoreStatus {
    fn status_json(&self) -> String {
        use std::fmt::Write as _;
        let buckets = lock(&self.0.buckets);
        let mut out = String::from("{\"buckets\":[");
        for (i, (name, store)) in buckets.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            // Bucket names pass `valid_token`, so no JSON escaping needed.
            let _ = write!(
                out,
                "{{\"name\":\"{name}\",\"checkpoints\":{},\"resident_bytes\":{}}}",
                store.list().len(),
                store.resident_bytes()
            );
        }
        let _ = write!(
            out,
            "],\"puts\":{},\"gets_tensors\":{}}}",
            swt_obs::counter!("ckptsrv.puts").get(),
            swt_obs::counter!("ckptsrv.gets_tensors").get()
        );
        out
    }

    fn metrics_text(&self) -> String {
        RegistrySource.metrics_text()
    }

    fn trace_json(&self) -> String {
        RegistrySource.trace_json()
    }
}

/// Handle to a running checkpoint server; `stop()` (or drop) shuts down
/// the listener and every open session.
pub struct CkptServer {
    addr: SocketAddr,
    shared: Arc<Shared>,
    accept_handle: Option<thread::JoinHandle<()>>,
    obs: Option<ObsServer>,
}

impl CkptServer {
    /// Bind and start serving on a background thread.
    pub fn start(cfg: ServerConfig) -> io::Result<CkptServer> {
        std::fs::create_dir_all(&cfg.spill_dir)?;
        let listener = TcpListener::bind(&cfg.bind)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let serve_bind = cfg.serve.clone();
        let shared = Arc::new(Shared {
            cfg,
            buckets: Mutex::new(HashMap::new()),
            conns: Mutex::new(Vec::new()),
            stop: AtomicBool::new(false),
        });
        let obs = match serve_bind {
            Some(bind) => {
                Some(ObsServer::start(&bind, Arc::new(StoreStatus(Arc::clone(&shared))))?)
            }
            None => None,
        };
        let accept_shared = Arc::clone(&shared);
        let accept_handle = thread::spawn(move || accept_loop(&listener, &accept_shared));
        swt_obs::info!("ckptsrv", "checkpoint server listening on {addr}");
        Ok(CkptServer { addr, shared, accept_handle: Some(accept_handle), obs })
    }

    /// The bound address (useful with an ephemeral port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stop accepting, shut down every open session, and join the accept
    /// loop. Spilled state stays on disk; a later `start` over the same
    /// `spill_dir` serves it again.
    pub fn stop(&mut self) {
        self.shared.stop.store(true, Ordering::Relaxed);
        for conn in lock(&self.shared.conns).drain(..) {
            let _ = conn.shutdown(std::net::Shutdown::Both);
        }
        if let Some(handle) = self.accept_handle.take() {
            let _ = handle.join();
        }
        if let Some(mut obs) = self.obs.take() {
            obs.stop();
        }
    }
}

impl Drop for CkptServer {
    fn drop(&mut self) {
        self.stop();
    }
}

fn accept_loop(listener: &TcpListener, shared: &Arc<Shared>) {
    while !shared.stop.load(Ordering::Relaxed) {
        match listener.accept() {
            Ok((stream, _)) => {
                swt_obs::counter!("ckptsrv.conns").inc();
                if let Ok(tracked) = stream.try_clone() {
                    lock(&shared.conns).push(tracked);
                }
                let conn_shared = Arc::clone(shared);
                thread::spawn(move || {
                    if let Err(e) = serve_conn(&conn_shared, stream) {
                        swt_obs::debug!("ckptsrv", "session ended: {e}");
                    }
                });
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                thread::sleep(Duration::from_millis(10));
            }
            Err(_) => thread::sleep(Duration::from_millis(10)),
        }
    }
}

fn send(stream: &mut TcpStream, msg: &StoreMsg) -> Result<(), WireError> {
    let (ty, payload) = msg.encode()?;
    write_frame(stream, ty, &payload)
}

fn send_err(stream: &mut TcpStream, code: ErrCode, message: impl Into<String>) {
    swt_obs::counter!("ckptsrv.errors").inc();
    let _ = send(stream, &StoreMsg::Err { code, message: message.into() });
}

/// Map a store-layer failure onto an application error frame.
fn err_of(e: &io::Error) -> (ErrCode, String) {
    match e.kind() {
        io::ErrorKind::NotFound => (ErrCode::NotFound, e.to_string()),
        io::ErrorKind::InvalidData => (ErrCode::BadRequest, e.to_string()),
        _ => (ErrCode::Internal, e.to_string()),
    }
}

fn serve_conn(shared: &Arc<Shared>, mut stream: TcpStream) -> Result<(), WireError> {
    stream.set_nodelay(true).ok();
    let mut buf = Vec::new();

    // --- Hello: the only frame accepted on a fresh session. Anything
    // unreadable is dropped with a counter bump, mirroring the dist
    // joiner's malformed-Hello hardening: garbage on the store port must
    // never panic, allocate unboundedly, or occupy the accept loop.
    let hello = read_frame(&mut stream, &mut buf).and_then(|ty| StoreMsg::decode(ty, &buf));
    let (version, bucket, nonce, mac) = match hello {
        Ok(StoreMsg::Hello { version, bucket, nonce, mac }) => (version, bucket, nonce, mac),
        Ok(other) => {
            swt_obs::counter!("ckptsrv.bad_hello").inc();
            swt_obs::warn!("ckptsrv", "first frame was {other:?}, not Hello; dropping");
            return Ok(());
        }
        Err(e) => {
            swt_obs::counter!("ckptsrv.bad_hello").inc();
            swt_obs::warn!("ckptsrv", "unreadable Hello dropped: {e}");
            return Ok(());
        }
    };
    if version != STORE_PROTOCOL_VERSION {
        send_err(
            &mut stream,
            ErrCode::BadRequest,
            format!(
            "store protocol version mismatch: server {STORE_PROTOCOL_VERSION}, client {version}"
        ),
        );
        return Ok(());
    }
    if !valid_token(&bucket) {
        send_err(&mut stream, ErrCode::BadRequest, "invalid bucket name");
        return Ok(());
    }
    if !shared.cfg.secret.is_empty() {
        let expected = hello_mac(&shared.cfg.secret, version, &bucket, &nonce);
        if !ct_eq(&expected, &mac) {
            swt_obs::counter!("ckptsrv.auth_failures").inc();
            send_err(&mut stream, ErrCode::Unauthorized, "hello authentication failed");
            return Ok(());
        }
    }
    let store = match shared.bucket(&bucket) {
        Ok(store) => store,
        Err(e) => {
            let (code, msg) = err_of(&e);
            send_err(&mut stream, code, msg);
            return Ok(());
        }
    };
    send(&mut stream, &StoreMsg::HelloAck { version: STORE_PROTOCOL_VERSION })?;

    // --- Session loop: one request, one response (possibly chunked).
    loop {
        let msg = match read_frame(&mut stream, &mut buf).and_then(|ty| StoreMsg::decode(ty, &buf))
        {
            Ok(msg) => msg,
            Err(WireError::Io(e))
                if matches!(
                    e.kind(),
                    io::ErrorKind::UnexpectedEof
                        | io::ErrorKind::ConnectionReset
                        | io::ErrorKind::ConnectionAborted
                ) =>
            {
                return Ok(()); // peer went away: the normal end of a session
            }
            Err(e) => return Err(e),
        };
        match msg {
            StoreMsg::Put { id, total_len } => handle_put(&mut stream, &store, &id, total_len)?,
            StoreMsg::GetIndex { id } => handle_get_index(&mut stream, &store, &id)?,
            StoreMsg::GetTensors { id, names } => {
                handle_get_tensors(&mut stream, &store, &id, &names)?
            }
            StoreMsg::GetRaw { id } => handle_get_raw(&mut stream, &store, &id)?,
            StoreMsg::Exists { id } => {
                if !valid_token(&id) {
                    send_err(&mut stream, ErrCode::BadRequest, "invalid checkpoint id");
                    continue;
                }
                let size = store.size_bytes(&id);
                send(
                    &mut stream,
                    &StoreMsg::ExistsResp { exists: size.is_some(), size: size.unwrap_or(0) },
                )?;
            }
            StoreMsg::List => {
                let mut ids = store.list();
                ids.sort();
                ids.truncate(MAX_LIST_IDS);
                send(&mut stream, &StoreMsg::ListResp { ids })?;
            }
            StoreMsg::Delete { id } => {
                if !valid_token(&id) {
                    send_err(&mut stream, ErrCode::BadRequest, "invalid checkpoint id");
                    continue;
                }
                let existed = store.delete(&id);
                send(&mut stream, &StoreMsg::DeleteResp { existed })?;
            }
            other => {
                // A response frame (or second Hello) arriving as a request
                // is a state violation; the session cannot be trusted.
                return Err(WireError::Protocol(format!("unexpected request frame {other:?}")));
            }
        }
    }
}

fn handle_put(
    stream: &mut TcpStream,
    store: &BucketStore,
    id: &str,
    total_len: u64,
) -> Result<(), WireError> {
    // The chunk stream follows unconditionally, so drain it before
    // reporting any application error — otherwise the frames would be
    // misread as the next request.
    let bytes = recv_chunks(total_len, |buf| read_frame(stream, buf))?;
    if !valid_token(id) {
        send_err(stream, ErrCode::BadRequest, "invalid checkpoint id");
        return Ok(());
    }
    // Validate the container before it can enter the store: a corrupt Put
    // must fail here, not on some later reader.
    if let Err(e) = parse_index(&bytes) {
        send_err(stream, ErrCode::BadRequest, format!("not a valid checkpoint container: {e}"));
        return Ok(());
    }
    match store.save_raw(id, &bytes) {
        Ok(n) => {
            swt_obs::counter!("ckptsrv.puts").inc();
            swt_obs::counter!("ckptsrv.put_bytes").add(n);
            send(stream, &StoreMsg::PutAck { bytes: n })
        }
        Err(e) => {
            let (code, msg) = err_of(&e);
            send_err(stream, code, msg);
            Ok(())
        }
    }
}

fn handle_get_index(
    stream: &mut TcpStream,
    store: &BucketStore,
    id: &str,
) -> Result<(), WireError> {
    if !valid_token(id) {
        send_err(stream, ErrCode::BadRequest, "invalid checkpoint id");
        return Ok(());
    }
    let (raw, index) = match store.raw_and_index(id) {
        Ok(pair) => pair,
        Err(e) => {
            let (code, msg) = err_of(&e);
            send_err(stream, code, msg);
            return Ok(());
        }
    };
    // WTC2 payloads all sit after the self-contained header (fixed head +
    // TOC + TOC checksum), so the header prefix — which ends where the
    // first payload begins — is everything `parse_index` needs. WTC1
    // interleaves headers with payloads; ship the whole container.
    let header_len = if index.version() == 2 {
        index.tensors().iter().map(|m| m.offset).min().unwrap_or(raw.len() as u64) as usize
    } else {
        raw.len()
    };
    let header = &raw[..header_len.min(raw.len())];
    swt_obs::counter!("ckptsrv.gets_index").inc();
    swt_obs::counter!("ckptsrv.index_bytes_tx").add(header.len() as u64);
    send(stream, &StoreMsg::IndexResp { total_len: header.len() as u64 })?;
    send_chunks(header, |ty, chunk| write_frame(stream, ty, chunk))
}

fn handle_get_tensors(
    stream: &mut TcpStream,
    store: &BucketStore,
    id: &str,
    names: &[String],
) -> Result<(), WireError> {
    if !valid_token(id) {
        send_err(stream, ErrCode::BadRequest, "invalid checkpoint id");
        return Ok(());
    }
    let (raw, index) = match store.raw_and_index(id) {
        Ok(pair) => pair,
        Err(e) => {
            let (code, msg) = err_of(&e);
            send_err(stream, code, msg);
            return Ok(());
        }
    };
    let want: std::collections::HashSet<&str> = names.iter().map(String::as_str).collect();
    let mut resp_names = Vec::new();
    let mut rows = Vec::new();
    let mut payload = Vec::new();
    for meta in index.tensors().iter().filter(|m| want.contains(m.name.as_str())) {
        let start = meta.offset as usize;
        let len = meta.size_bytes() as usize;
        let Some(slice) = raw.get(start..start.saturating_add(len)) else {
            send_err(stream, ErrCode::Internal, "stored container shorter than its index");
            return Ok(());
        };
        rows.push(RangeRow {
            name_idx: resp_names.len() as u16,
            dims: meta.dims.clone(),
            checksum: meta.checksum,
            payload_len: len as u64,
        });
        resp_names.push(meta.name.clone());
        payload.extend_from_slice(slice);
    }
    if payload.len() as u64 > MAX_TRANSFER_LEN {
        send_err(stream, ErrCode::BadRequest, "requested tensor payloads exceed the transfer cap");
        return Ok(());
    }
    swt_obs::counter!("ckptsrv.gets_tensors").inc();
    swt_obs::counter!("ckptsrv.tensor_bytes_tx").add(payload.len() as u64);
    send(stream, &StoreMsg::Ranges { version: index.version(), names: resp_names, rows })?;
    send_chunks(&payload, |ty, chunk| write_frame(stream, ty, chunk))
}

fn handle_get_raw(stream: &mut TcpStream, store: &BucketStore, id: &str) -> Result<(), WireError> {
    if !valid_token(id) {
        send_err(stream, ErrCode::BadRequest, "invalid checkpoint id");
        return Ok(());
    }
    let raw = match store.load_raw(id) {
        Ok(raw) => raw,
        Err(e) => {
            let (code, msg) = err_of(&e);
            send_err(stream, code, msg);
            return Ok(());
        }
    };
    swt_obs::counter!("ckptsrv.gets_raw").inc();
    swt_obs::counter!("ckptsrv.full_bytes_tx").add(raw.len() as u64);
    send(stream, &StoreMsg::Blob { total_len: raw.len() as u64 })?;
    send_chunks(&raw, |ty, chunk| write_frame(stream, ty, chunk))
}
