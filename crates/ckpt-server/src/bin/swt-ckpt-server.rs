//! Standalone checkpoint-server binary.
//!
//! `swt ckpt-server` embeds the same server behind the main CLI; this thin
//! binary exists so a storage host needs nothing but `swt-ckpt-server` on
//! it. The shared secret comes from `SWT_CKPT_SECRET` (never argv, which
//! `ps` would show).

use std::path::PathBuf;
use std::process::ExitCode;
use swt_ckpt_server::{CkptServer, ServerConfig};

const USAGE: &str = "usage: swt-ckpt-server --bind HOST:PORT --spill DIR \
[--cache-bytes N] [--serve HOST:PORT] [--max-seconds N]
  env: SWT_CKPT_SECRET  shared HMAC secret (empty/unset = open mode)";

fn run() -> Result<(), String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        println!("{USAGE}");
        return Ok(());
    }
    let opt = |name: &str| -> Option<String> {
        args.iter().position(|a| a == name).and_then(|i| args.get(i + 1).cloned())
    };
    let bind = opt("--bind").unwrap_or_else(|| "127.0.0.1:7421".to_string());
    let spill: PathBuf = opt("--spill").ok_or(format!("--spill is required\n{USAGE}"))?.into();
    let mut cfg = ServerConfig::new(bind, spill);
    if let Some(v) = opt("--cache-bytes") {
        cfg.cache_bytes = v.parse().map_err(|e| format!("--cache-bytes: {e}"))?;
    }
    cfg.serve = opt("--serve");
    cfg.secret = std::env::var("SWT_CKPT_SECRET").unwrap_or_default();
    let max_seconds: Option<u64> = match opt("--max-seconds") {
        Some(v) => Some(v.parse().map_err(|e| format!("--max-seconds: {e}"))?),
        None => None,
    };

    let mut server = CkptServer::start(cfg).map_err(|e| format!("start: {e}"))?;
    println!("ckpt-server listening on {}", server.addr());
    match max_seconds {
        Some(secs) => std::thread::sleep(std::time::Duration::from_secs(secs)),
        None => loop {
            std::thread::sleep(std::time::Duration::from_secs(3600));
        },
    }
    server.stop();
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("{msg}");
            ExitCode::FAILURE
        }
    }
}
